// Store: the full columnar-relation substrate around imprints through
// the lazy Query API — a table with mixed-width numeric columns and a
// dictionary-encoded string column, per-column imprint indexes,
// predicate trees with late materialization, EXPLAIN plans, streaming
// row iteration, batch appends, in-place updates, deletes and the
// maintenance policy, in one lifecycle.
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	imprints "repro"
	"repro/table"
)

var warehouses = []string{
	"Amsterdam", "Antwerp", "Berlin", "Hamburg", "Lisbon",
	"London", "Lyon", "Madrid", "Milan", "Paris", "Prague", "Rotterdam",
}

func main() {
	rng := rand.New(rand.NewPCG(20, 26))

	// An orders table: quantity (int64 walk), price (float64), status
	// (uint8 categorical, deliberately left unindexed), and warehouse
	// city (string, dictionary-encoded with a code imprint).
	const n = 500_000
	qty := make([]int64, n)
	price := make([]float64, n)
	status := make([]uint8, n)
	city := make([]string, n)
	v := int64(5000)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		qty[i] = v
		price[i] = rng.Float64() * 1000
		status[i] = uint8(rng.IntN(4))
		// Orders arrive in warehouse bursts: locally clustered strings,
		// the shape imprints exploit.
		city[i] = warehouses[(i/512+rng.IntN(2))%len(warehouses)]
	}

	tb := table.New("orders")
	must(table.AddColumn(tb, "qty", qty, table.Imprints, imprints.Options{Seed: 1}))
	must(table.AddColumn(tb, "price", price, table.Imprints, imprints.Options{Seed: 2}))
	must(table.AddColumn(tb, "status", status, table.NoIndex, imprints.Options{}))
	must(tb.AddStringColumn("city", city, table.Imprints, imprints.Options{Seed: 3}))
	fmt.Printf("table %s: %d rows, %.1f MB data, %.2f MB indexes (%.1f%%)\n",
		tb.Name(), tb.Rows(),
		float64(tb.SizeBytes())/(1<<20), float64(tb.IndexBytes())/(1<<20),
		100*float64(tb.IndexBytes())/float64(tb.SizeBytes()))

	// A predicate tree mixing numeric and string leaves:
	// (qty in [4900,5100) AND price < 250 AND city in ["Lisbon","Milan"])
	// OR (status == 3 AND NOT city prefix "A").
	pred := table.Or(
		table.And(
			table.Range[int64]("qty", 4900, 5100),
			table.LessThan[float64]("price", 250),
			table.StrRange("city", "Lisbon", "Milan"),
		),
		table.AndNot(
			table.Equals[uint8]("status", 3),
			table.StrPrefix("city", "A"),
		),
	)

	// EXPLAIN first: the per-leaf plan — imprints probe vs scan, the
	// estimated selectivity behind each choice, candidate-run stats.
	plan, err := tb.Select("qty", "price", "city").Where(pred).Explain()
	must(err)
	fmt.Printf("\n%s\n", plan)

	t0 := time.Now()
	ids, st, err := tb.Select().Where(pred).IDs()
	must(err)
	fmt.Printf("predicate tree: %d rows in %v (%d index probes, %d value checks)\n",
		len(ids), time.Since(t0).Round(time.Microsecond), st.Probes, st.Comparisons)

	// Verify against a hand-written scan.
	count := 0
	for i := 0; i < n; i++ {
		a := qty[i] >= 4900 && qty[i] < 5100 && price[i] < 250 &&
			city[i] >= "Lisbon" && city[i] <= "Milan"
		b := status[i] == 3 && city[i][0] != 'A'
		if a || b {
			count++
		}
	}
	fmt.Printf("hand-written scan agrees: %v (%d rows)\n", count == len(ids), count)

	// Streaming rows: late materialization end to end — only projected
	// columns of qualifying rows are fetched, and breaking out early
	// does no wasted work.
	fmt.Println("\nfirst 3 matches (streamed):")
	shown := 0
	q := tb.Select("qty", "price", "city").Where(pred)
	for id, row := range q.Rows() {
		fmt.Printf("  row %6d: %s\n", id, row)
		if shown++; shown == 3 {
			break
		}
	}
	must(q.Err())

	// Daily load: batch append across all columns atomically.
	batch := tb.NewBatch()
	newN := 50_000
	nq := make([]int64, newN)
	np := make([]float64, newN)
	ns := make([]uint8, newN)
	nc := make([]string, newN)
	for i := 0; i < newN; i++ {
		v += int64(rng.IntN(21)) - 10
		nq[i] = v
		np[i] = rng.Float64() * 1000
		ns[i] = uint8(rng.IntN(4))
		nc[i] = warehouses[rng.IntN(len(warehouses))]
	}
	must(table.Append(batch, "qty", nq))
	must(table.Append(batch, "price", np))
	must(table.Append(batch, "status", ns))
	must(batch.AppendStrings("city", nc))
	must(batch.Commit())
	fmt.Printf("\nafter batch append: %d rows\n", tb.Rows())

	// Point corrections and cancellations.
	for u := 0; u < 1000; u++ {
		id := rng.IntN(tb.Rows())
		must(table.Update(tb, "price", id, rng.Float64()*1000))
	}
	must(tb.UpdateString("city", 7, "Porto")) // novel string: re-encode
	for d := 0; d < 30_000; d++ {
		must(tb.Delete(rng.IntN(tb.Rows())))
	}
	fmt.Printf("after updates+deletes: %d live rows of %d\n", tb.LiveRows(), tb.Rows())

	cnt, _, err := tb.Select().Where(table.LessThan[float64]("price", 100)).Count()
	must(err)
	fmt.Printf("cheap orders (price < 100) among live rows: %d\n", cnt)

	// IN-lists — numeric and string — are answered in one index pass.
	inIDs, _, err := tb.Select().Where(table.And(
		table.In[uint8]("status", 0, 3),
		table.StrIn("city", "Paris", "London", "Porto"),
	)).IDs()
	must(err)
	fmt.Printf("status IN (0,3) AND city IN (Paris,London,Porto): %d rows\n", len(inIDs))

	// Tuple reconstruction: ids back to rows.
	if len(inIDs) > 0 {
		row, err := tb.ReadRow(int(inIDs[0]))
		must(err)
		fmt.Printf("first match: qty=%v price=%.2f status=%v city=%v\n",
			row["qty"], row["price"], row["status"], row["city"])
	}

	// Maintenance: compaction kicks in past the deleted-fraction limit.
	rep := tb.Maintain(table.MaintainOptions{DeletedFraction: 0.05})
	fmt.Printf("maintenance: %s; now %d rows, all live\n", rep, tb.Rows())

	// Prepared serving loop: compile the request shape once — columns
	// validated, static leaves translated up front — then bind the
	// per-request parameters and execute. The statement is safe for
	// concurrent executions, and it never recompiles: plans resolve the
	// table's segments live, so batch appends and compactions under it
	// are picked up on the next execution (string translations are
	// cached per segment and refresh only when that segment re-encodes).
	prepared, err := tb.Prepare(table.And(
		table.RangeP("qty", table.Param[int64]("lo"), table.Param[int64]("hi")),
		table.EqualsP("city", table.StrParam("city")),
		table.LessThan[float64]("price", 800), // static: translated once
	), table.SelectOptions{})
	must(err)
	fmt.Println("\nprepared serving loop (qty in [$lo,$hi) AND city == $city AND price < 800):")
	t0 = time.Now()
	served := 0
	for req := 0; req < 1000; req++ {
		lo := v - 400 + int64(req)
		cnt, _, err := prepared.Bind("lo", lo).Bind("hi", lo+150).
			Bind("city", warehouses[req%len(warehouses)]).Count()
		must(err)
		served += int(cnt)
	}
	fmt.Printf("  1000 executions, %d rows matched, %v total\n",
		served, time.Since(t0).Round(time.Microsecond))
	bplan, err := prepared.Bind("lo", v-400).Bind("hi", v-250).
		Bind("city", "Paris").Explain()
	must(err)
	fmt.Printf("  bound-parameter plan:\n%s\n", bplan)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
