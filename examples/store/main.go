// Store: the full columnar-relation substrate around imprints — a table
// with mixed-width columns, per-column imprint indexes, batch appends,
// predicate trees with late materialization, in-place updates, deletes
// and the maintenance policy, in one lifecycle.
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	imprints "repro"
	"repro/table"
)

func main() {
	rng := rand.New(rand.NewPCG(20, 26))

	// An orders table: quantity (int64 walk), price (float64), status
	// (uint8 categorical, deliberately left unindexed).
	const n = 500_000
	qty := make([]int64, n)
	price := make([]float64, n)
	status := make([]uint8, n)
	v := int64(5000)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		qty[i] = v
		price[i] = rng.Float64() * 1000
		status[i] = uint8(rng.IntN(4))
	}

	tb := table.New("orders")
	must(table.AddColumn(tb, "qty", qty, table.Imprints, imprints.Options{Seed: 1}))
	must(table.AddColumn(tb, "price", price, table.Imprints, imprints.Options{Seed: 2}))
	must(table.AddColumn(tb, "status", status, table.NoIndex, imprints.Options{}))
	fmt.Printf("table %s: %d rows, %.1f MB data, %.2f MB indexes (%.1f%%)\n",
		tb.Name(), tb.Rows(),
		float64(tb.SizeBytes())/(1<<20), float64(tb.IndexBytes())/(1<<20),
		100*float64(tb.IndexBytes())/float64(tb.SizeBytes()))

	// A predicate tree: (qty in [4900,5100) AND price < 250) OR
	// (status == 3 AND NOT qty in [5000, 5050)).
	pred := table.Or(
		table.And(
			table.Range[int64]("qty", 4900, 5100),
			table.LessThan[float64]("price", 250),
		),
		table.AndNot(
			table.Equals[uint8]("status", 3),
			table.Range[int64]("qty", 5000, 5050),
		),
	)
	t0 := time.Now()
	ids, st, err := tb.Select(pred, table.SelectOptions{})
	must(err)
	fmt.Printf("\npredicate tree: %d rows in %v (%d index probes, %d value checks)\n",
		len(ids), time.Since(t0).Round(time.Microsecond), st.Probes, st.Comparisons)

	// Verify against a hand-written scan.
	count := 0
	for i := 0; i < n; i++ {
		a := qty[i] >= 4900 && qty[i] < 5100 && price[i] < 250
		b := status[i] == 3 && !(qty[i] >= 5000 && qty[i] < 5050)
		if a || b {
			count++
		}
	}
	fmt.Printf("hand-written scan agrees: %v (%d rows)\n", count == len(ids), count)

	// Daily load: batch append across all columns atomically.
	batch := tb.NewBatch()
	newN := 50_000
	nq := make([]int64, newN)
	np := make([]float64, newN)
	ns := make([]uint8, newN)
	for i := 0; i < newN; i++ {
		v += int64(rng.IntN(21)) - 10
		nq[i] = v
		np[i] = rng.Float64() * 1000
		ns[i] = uint8(rng.IntN(4))
	}
	must(table.Append(batch, "qty", nq))
	must(table.Append(batch, "price", np))
	must(table.Append(batch, "status", ns))
	must(batch.Commit())
	fmt.Printf("\nafter batch append: %d rows\n", tb.Rows())

	// Point corrections and cancellations.
	for u := 0; u < 1000; u++ {
		id := rng.IntN(tb.Rows())
		must(table.Update(tb, "price", id, rng.Float64()*1000))
	}
	for d := 0; d < 30_000; d++ {
		must(tb.Delete(rng.IntN(tb.Rows())))
	}
	fmt.Printf("after updates+deletes: %d live rows of %d\n", tb.LiveRows(), tb.Rows())

	cnt, _, err := tb.Count(table.LessThan[float64]("price", 100), table.SelectOptions{})
	must(err)
	fmt.Printf("cheap orders (price < 100) among live rows: %d\n", cnt)

	// IN-lists are answered in a single index pass.
	inIDs, _, err := tb.Select(table.In[uint8]("status", 0, 3), table.SelectOptions{})
	must(err)
	fmt.Printf("status IN (0,3): %d rows\n", len(inIDs))

	// Tuple reconstruction: ids back to rows.
	if len(inIDs) > 0 {
		row, err := tb.ReadRow(int(inIDs[0]))
		must(err)
		fmt.Printf("first match: qty=%v price=%.2f status=%v\n",
			row["qty"], row["price"], row["status"])
	}

	// Maintenance: compaction kicks in past the deleted-fraction limit.
	rebuilt := tb.Maintain(0.05)
	fmt.Printf("maintenance: %v; now %d rows, all live\n", rebuilt, tb.Rows())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
