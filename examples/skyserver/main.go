// Skyserver: the paper's adversarial SDSS workload — high-cardinality,
// uniformly distributed scientific doubles with no local clustering.
// Compares all four evaluation strategies (scan, imprints, zonemap, WAH
// bitmap) on storage overhead and query latency across the selectivity
// sweep, reproducing the paper's headline robustness result: imprints
// stay around ~12% storage overhead where WAH approaches 100%.
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	imprints "repro"
)

func main() {
	const n = 2_000_000
	rng := rand.New(rand.NewPCG(3, 9))
	// photoprofile.profMean: uniform reals, the paper's Figure 3 column.
	col := make([]float64, n)
	for i := range col {
		col[i] = rng.Float64() * 30
	}

	ix := imprints.Build(col, imprints.Options{Seed: 1})
	zm := imprints.BuildZonemap(col)
	wb := imprints.BuildWAHShared(col, ix) // same binning as the imprint

	colBytes := float64(8 * n)
	fmt.Printf("column: %d uniform float64 (%.0f MB), entropy %.3f\n",
		n, colBytes/(1<<20), ix.Entropy())
	fmt.Printf("storage overhead: imprints %.1f%% | zonemap %.1f%% | wah %.1f%%\n\n",
		100*float64(ix.SizeBytes())/colBytes,
		100*float64(zm.SizeBytes())/colBytes,
		100*float64(wb.SizeBytes())/colBytes)

	fmt.Println("selectivity  scan(ms)  imprints(ms)  zonemap(ms)  wah(ms)  results")
	res := make([]uint32, 0, n)
	for _, sel := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9} {
		lo := rng.Float64() * 30 * (1 - sel)
		hi := lo + 30*sel

		t0 := time.Now()
		ids, _ := imprints.ScanRange(col, lo, hi, res[:0])
		tScan := time.Since(t0)
		nres := len(ids)

		t0 = time.Now()
		res, _ = ix.RangeIDs(lo, hi, res[:0])
		tImp := time.Since(t0)

		t0 = time.Now()
		res, _ = zm.RangeIDs(lo, hi, res[:0])
		tZm := time.Since(t0)

		t0 = time.Now()
		res, _ = wb.RangeIDs(lo, hi, res[:0])
		tWah := time.Since(t0)

		fmt.Printf("%-12.2f %-9.2f %-13.2f %-12.2f %-8.2f %d\n",
			sel, ms(tScan), ms(tImp), ms(tZm), ms(tWah), nres)
	}

	fmt.Println("\nNote the paper's crossover: on uniform data the imprint wins at")
	fmt.Println("high selectivity and converges to scan cost as selectivity drops,")
	fmt.Println("while WAH pays its decompression overhead everywhere.")
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
