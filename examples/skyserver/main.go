// Skyserver: the paper's adversarial SDSS workload — high-cardinality,
// uniformly distributed scientific doubles with no local clustering.
// Compares all four evaluation strategies (scan, imprints via the Query
// API, zonemap, WAH bitmap) on storage overhead and query latency
// across the selectivity sweep, reproducing the paper's headline
// robustness result: imprints stay around ~12% storage overhead where
// WAH approaches 100%. The Query planner's cost-based access path shows
// up at the unselective end of the sweep, where Explain reports the
// leaf falling back to a scan.
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	imprints "repro"
	"repro/table"
)

func main() {
	const n = 2_000_000
	rng := rand.New(rand.NewPCG(3, 9))
	// photoprofile.profMean: uniform reals, the paper's Figure 3 column.
	col := make([]float64, n)
	for i := range col {
		col[i] = rng.Float64() * 30
	}

	tb := table.New("photoprofile")
	if err := table.AddColumn(tb, "profMean", col, table.Imprints, imprints.Options{Seed: 1}); err != nil {
		panic(err)
	}
	// Raw whole-column imprint for the comparators (the table keeps one
	// per segment; WAH shares the raw index's binning).
	ix := imprints.Build(col, imprints.Options{Seed: 1})
	zm := imprints.BuildZonemap(col)
	wb := imprints.BuildWAHShared(col, ix) // same binning as the imprint

	colBytes := float64(8 * n)
	fmt.Printf("column: %d uniform float64 (%.0f MB), entropy %.3f\n",
		n, colBytes/(1<<20), ix.Entropy())
	fmt.Printf("storage overhead: imprints %.1f%% | zonemap %.1f%% | wah %.1f%%\n\n",
		100*float64(tb.IndexBytes())/colBytes,
		100*float64(zm.SizeBytes())/colBytes,
		100*float64(wb.SizeBytes())/colBytes)

	fmt.Println("selectivity  scan(ms)  imprints(ms)  zonemap(ms)  wah(ms)  results")
	res := make([]uint32, 0, n)
	// Force probing when cross-checking through the planner, so the
	// query answer stays index-backed even where it would prefer a scan.
	probe := table.SelectOptions{ScanThreshold: 2}
	for _, sel := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9} {
		lo := rng.Float64() * 30 * (1 - sel)
		hi := lo + 30*sel
		pred := table.Range[float64]("profMean", lo, hi)

		t0 := time.Now()
		ids, _ := imprints.ScanRange(col, lo, hi, res[:0])
		tScan := time.Since(t0)
		nres := len(ids)

		// Time the raw index with the same reused buffer as the other
		// strategies (like for like); the Query API answer is
		// cross-checked outside the timed region.
		t0 = time.Now()
		res, _ = ix.RangeIDs(lo, hi, res[:0])
		tImp := time.Since(t0)
		if len(res) != nres {
			panic("imprints disagree with scan")
		}
		qids, _, err := tb.Select().Where(pred).Options(probe).IDs()
		if err != nil {
			panic(err)
		}
		if len(qids) != nres {
			panic("query disagrees with scan")
		}

		t0 = time.Now()
		res, _ = zm.RangeIDs(lo, hi, res[:0])
		tZm := time.Since(t0)

		t0 = time.Now()
		res, _ = wb.RangeIDs(lo, hi, res[:0])
		tWah := time.Since(t0)

		fmt.Printf("%-12.2f %-9.2f %-13.2f %-12.2f %-8.2f %d\n",
			sel, ms(tScan), ms(tImp), ms(tZm), ms(tWah), nres)
	}

	// With the default options, the planner refuses to probe an
	// unselective leaf in the first place: Explain shows the fallback.
	plan, err := tb.Select().Where(table.Range[float64]("profMean", 0.1, 29.9)).Explain()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nplanner on an unselective box (default options):\n%s", plan)

	fmt.Println("\nNote the paper's crossover: on uniform data the imprint wins at")
	fmt.Println("high selectivity and converges to scan cost as selectivity drops,")
	fmt.Println("while WAH pays its decompression overhead everywhere.")
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
