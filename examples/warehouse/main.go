// Warehouse: the paper's update story (Section 4) on an Airtraffic-style
// workload — monthly batch appends extend the imprint without touching
// existing vectors, point updates go through a delta structure merged at
// query time, saturation marking eventually triggers a rebuild, and the
// index round-trips through its binary serialization for reuse across
// restarts.
package main

import (
	"bytes"
	"fmt"
	"math/rand/v2"

	imprints "repro"
)

func main() {
	rng := rand.New(rand.NewPCG(11, 13))

	// Month 0 load: delay minutes, skewed around small values.
	col := genMonth(rng, nil, 200_000)
	ix := imprints.Build(col, imprints.Options{Seed: 5})
	fmt.Printf("initial load: %d rows, %d stored vectors\n", ix.Len(), ix.StoredVectors())

	// Twelve monthly appends (Section 4.1): no existing vector changes.
	for m := 1; m <= 12; m++ {
		col = genMonth(rng, col, 200_000)
		ix.Append(col)
	}
	fmt.Printf("after 12 appends: %d rows, %d stored vectors, saturation %.3f\n",
		ix.Len(), ix.StoredVectors(), ix.Saturation())

	// Query: heavily delayed flights (delay >= 180 minutes).
	ids, st := ix.AtLeast(180, nil)
	fmt.Printf("delay >= 180min: %d flights, %d cachelines skipped\n\n",
		len(ids), st.CachelinesSkipped)

	// Point updates via the delta (Section 4.2): corrections come in,
	// queries merge them, and nothing is rewritten in place.
	delta := imprints.NewDelta[int16]()
	for u := 0; u < 5_000; u++ {
		id := uint32(rng.IntN(len(col)))
		delta.Update(id, int16(rng.IntN(600)-60))
	}
	ids2, _ := ix.RangeIDsDelta(180, 600, delta, nil)
	fmt.Printf("after 5000 corrections (delta): %d flights in [180,600)\n", len(ids2))

	// The imprint can also absorb updates in place by widening vectors —
	// at the cost of saturation.
	before := ix.Saturation()
	for u := 0; u < 30_000; u++ {
		id := rng.IntN(len(col))
		v := int16(rng.IntN(600) - 60)
		col[id] = v
		ix.MarkUpdated(id, v)
	}
	fmt.Printf("saturation after in-place marking: %.3f -> %.3f (extra bits: %d)\n",
		before, ix.Saturation(), ix.ExtraBits())

	if ix.NeedsRebuild(0.25, delta.Len(), 0.01) {
		fmt.Println("rebuild heuristic fired; rebuilding during next scan...")
		ix = ix.Rebuild()
		fmt.Printf("rebuilt: saturation back to %.3f\n", ix.Saturation())
	}

	// Persist and reload (the index reattaches to the column).
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		panic(err)
	}
	serialized := buf.Len()
	loaded, err := imprints.ReadIndex[int16](&buf, col)
	if err != nil {
		panic(err)
	}
	a, _ := ix.RangeIDs(120, 240, nil)
	b, _ := loaded.RangeIDs(120, 240, nil)
	fmt.Printf("serialized %d bytes; reloaded index agrees on %d results: %v\n",
		serialized, len(a), len(a) == len(b))
}

// genMonth appends one month of skewed delay data to col.
func genMonth(rng *rand.Rand, col []int16, rows int) []int16 {
	for i := 0; i < rows; i++ {
		d := rng.NormFloat64()*12 - 3
		if rng.IntN(20) == 0 {
			d += float64(rng.IntN(300))
		}
		if d < -60 {
			d = -60
		}
		col = append(col, int16(d))
	}
	return col
}
