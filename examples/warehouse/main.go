// Warehouse: the paper's update story (Section 4) on an Airtraffic-
// style workload, driven through the Table/Query API — monthly batch
// appends extend the imprint without touching existing vectors, carrier
// codes live in a dictionary-encoded string column, point updates widen
// the covering vectors until the saturation heuristic fires, Maintain
// rebuilds, and the whole table round-trips through its binary
// serialization for reuse across restarts. The query-time delta
// structure of Section 4.2 remains available on the raw index facade.
package main

import (
	"bytes"
	"fmt"
	"math/rand/v2"

	imprints "repro"
	"repro/table"
)

var carriers = []string{"AA", "AF", "BA", "DL", "KL", "LH", "UA", "US", "WN"}

func main() {
	rng := rand.New(rand.NewPCG(11, 13))

	// Month 0 load: delay minutes (skewed around small values) plus the
	// operating carrier.
	delay := genMonth(rng, nil, 200_000)
	carrier := genCarriers(rng, nil, 200_000)
	tb := table.New("airtraffic")
	must(table.AddColumn(tb, "delay", delay, table.Imprints, imprints.Options{Seed: 5}))
	must(tb.AddStringColumn("carrier", carrier, table.Imprints, imprints.Options{Seed: 6}))
	stats, err := tb.IndexStats("delay")
	must(err)
	fmt.Printf("initial load: %d rows in %d segments, %d stored vectors\n",
		tb.Rows(), stats.Segments, stats.StoredVectors)

	// Twelve monthly appends (Section 4.1): rows land in the active
	// tail segment, sealing it and opening fresh ones as it fills — no
	// sealed segment's vectors ever change.
	for m := 1; m <= 12; m++ {
		b := tb.NewBatch()
		must(table.Append(b, "delay", genMonth(rng, nil, 200_000)))
		must(b.AppendStrings("carrier", genCarriers(rng, nil, 200_000)))
		must(b.Commit())
	}
	stats, err = tb.IndexStats("delay")
	must(err)
	fmt.Printf("after 12 appends: %d rows in %d segments, %d stored vectors, mean saturation %.3f\n",
		tb.Rows(), stats.Segments, stats.StoredVectors, stats.Saturation)

	// Query: heavily delayed KLM flights. Explain shows both leaves
	// probing their imprints (the string leaf through its code range).
	pred := table.And(
		table.AtLeast[int16]("delay", 180),
		table.StrEquals("carrier", "KL"),
	)
	plan, err := tb.Select("delay", "carrier").Where(pred).Explain()
	must(err)
	fmt.Printf("\n%s\n", plan)

	// The aggregates run inside the segment workers: count, worst and
	// mean delay in one pass, no ids materialized.
	agg, st, err := tb.Select().Where(pred).Aggregate(
		table.CountAll(), table.Max("delay"), table.Avg("delay"))
	must(err)
	fmt.Printf("delay >= 180min on KL: %d flights, worst %dmin, mean %.0fmin (%d cachelines skipped)\n",
		agg.Int(0), agg.Int(1), agg.Float(2), st.CachelinesSkipped)

	// Grouped: the same heavy-delay band broken down per carrier, keyed
	// on the dictionary-encoded string column (per-segment codes are
	// remapped to carrier names at merge).
	grp, _, err := tb.Select().Where(table.AtLeast[int16]("delay", 180)).
		GroupBy("carrier").Aggregate(table.CountAll(), table.Avg("delay"))
	must(err)
	fmt.Printf("heavy delays per carrier:")
	for _, g := range grp.Groups {
		fmt.Printf(" %s=%d(%.0fmin)", g.Key, g.Rows, g.Aggs[1].Float)
	}
	fmt.Println()

	// Top-k: the three worst delays overall, via per-segment bounded
	// heaps — no full sort, no full materialization.
	fmt.Printf("worst delays:")
	for id, row := range tb.Select("delay", "carrier").OrderBy(table.Desc("delay")).Limit(3).Rows() {
		fmt.Printf(" #%d %vmin on %v", id, row.Get("delay"), row.Get("carrier"))
	}
	fmt.Println()
	fmt.Println()

	// In-place corrections (Section 4.2): each covering segment imprint
	// absorbs updates by widening vectors — at the cost of saturation.
	before := stats.Saturation
	for u := 0; u < 1_200_000; u++ {
		id := rng.IntN(tb.Rows())
		must(table.Update(tb, "delay", id, int16(rng.IntN(600)-60)))
	}
	stats, err = tb.IndexStats("delay")
	must(err)
	fmt.Printf("mean saturation after in-place marking: %.3f -> %.3f\n",
		before, stats.Saturation)

	// Maintain applies the rebuild heuristic segment by segment; this
	// workload rebuilds at a stricter saturation limit than the 0.5
	// default, and only the saturated segments are rebuilt.
	rep := tb.Maintain(table.MaintainOptions{SaturationLimit: 0.25})
	fmt.Printf("maintenance: %s\n", rep)
	stats, err = tb.IndexStats("delay")
	must(err)
	fmt.Printf("mean saturation after rebuild: %.3f\n", stats.Saturation)

	// Alternatively, corrections can stay out of the index entirely via
	// the query-time delta of Section 4.2 (raw facade, whole column).
	col, err := table.Column[int16](tb, "delay")
	must(err)
	ix := imprints.Build(col, imprints.Options{Seed: 5})
	delta := imprints.NewDelta[int16]()
	for u := 0; u < 5_000; u++ {
		delta.Update(uint32(rng.IntN(len(col))), int16(rng.IntN(600)-60))
	}
	ids2, _ := ix.RangeIDsDelta(180, 600, delta, nil)
	fmt.Printf("with a 5000-entry query-time delta: %d flights in [180,600)\n\n", len(ids2))

	// Persist and reload the whole table (indexes travel along).
	var buf bytes.Buffer
	must(tb.Write(&buf))
	serialized := buf.Len()
	loaded, err := table.Read(&buf)
	must(err)
	a, _, err := tb.Select().Where(pred).IDs()
	must(err)
	b, _, err := loaded.Select().Where(pred).IDs()
	must(err)
	fmt.Printf("serialized %d bytes; reloaded table agrees on %d results: %v\n",
		serialized, len(a), len(a) == len(b))
}

// genMonth appends one month of skewed delay data to col.
func genMonth(rng *rand.Rand, col []int16, rows int) []int16 {
	for i := 0; i < rows; i++ {
		d := rng.NormFloat64()*12 - 3
		if rng.IntN(20) == 0 {
			d += float64(rng.IntN(300))
		}
		if d < -60 {
			d = -60
		}
		col = append(col, int16(d))
	}
	return col
}

// genCarriers appends one month of carrier codes, in bursts (flights
// cluster by airline in the log, which the code imprint exploits).
func genCarriers(rng *rand.Rand, col []string, rows int) []string {
	for i := 0; i < rows; i++ {
		col = append(col, carriers[(i/256+rng.IntN(2))%len(carriers)])
	}
	return col
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
