// Trips: the paper's Routing workload — GPS trip logs filtered by a
// bounding box over (lat, lon) — through the Query API. Each column's
// imprint reduces the query to candidate blocks, the candidate lists
// are merge-joined, and only surviving blocks are fetched and checked
// (the late materialization of Section 3); Explain shows the plan. The
// same box also runs against the raw-index facade and a scan to verify
// all strategies agree.
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	imprints "repro"
	"repro/table"
)

func main() {
	// Simulate trips: continuous random walks over the Netherlands.
	const n = 2_000_000
	rng := rand.New(rand.NewPCG(7, 7))
	lat := make([]float64, n)
	lon := make([]float64, n)
	la, lo := 52.37, 4.89
	for i := 0; i < n; i++ {
		if rng.IntN(300) == 0 { // new trip: jump to a new area
			la = 50.8 + rng.Float64()*2.4
			lo = 3.4 + rng.Float64()*3.7
		}
		la += (rng.Float64() - 0.5) * 0.001
		lo += (rng.Float64() - 0.5) * 0.001
		lat[i] = la
		lon[i] = lo
	}

	tb := table.New("trips")
	must(table.AddColumn(tb, "lat", lat, table.Imprints, imprints.Options{Seed: 1}))
	must(table.AddColumn(tb, "lon", lon, table.Imprints, imprints.Options{Seed: 2}))
	// Raw whole-column indexes for the naive-intersection comparison
	// below (the table itself keeps one imprint per 64K-row segment).
	ixLat := imprints.Build(lat, imprints.Options{Seed: 1})
	ixLon := imprints.Build(lon, imprints.Options{Seed: 2})
	fmt.Printf("indexed %d GPS points in %d segments; lat entropy %.3f, lon entropy %.3f\n",
		n, tb.Segments(), ixLat.Entropy(), ixLon.Entropy())

	// Bounding box around Utrecht.
	latLo, latHi := 52.05, 52.12
	lonLo, lonHi := 5.08, 5.18
	box := table.And(
		table.Range[float64]("lat", latLo, latHi),
		table.Range[float64]("lon", lonLo, lonHi),
	)

	// The plan: both leaves probe their imprint, the AND merge-joins
	// the candidate lists before any value is touched.
	plan, err := tb.Select().Where(box).Explain()
	must(err)
	fmt.Printf("\n%s\n", plan)

	// Late materialization through the Query API.
	t0 := time.Now()
	ids, stats, err := tb.Select().Where(box).IDs()
	must(err)
	tLate := time.Since(t0)

	// Naive alternative: materialize both id lists, intersect.
	t0 = time.Now()
	idsLat, _ := ixLat.RangeIDs(latLo, latHi, nil)
	idsLon, _ := ixLon.RangeIDs(lonLo, lonHi, nil)
	naive := intersect(idsLat, idsLon)
	tNaive := time.Since(t0)

	// Baseline: double-predicate scan.
	t0 = time.Now()
	count := 0
	for i := 0; i < n; i++ {
		if lat[i] >= latLo && lat[i] < latHi && lon[i] >= lonLo && lon[i] < lonHi {
			count++
		}
	}
	tScan := time.Since(t0)

	fmt.Printf("bounding box [%.2f,%.2f) x [%.2f,%.2f):\n", latLo, latHi, lonLo, lonHi)
	fmt.Printf("  query (late materialization): %6d points in %8v (%d residual comparisons)\n",
		len(ids), tLate, stats.Comparisons)
	fmt.Printf("  naive intersection:           %6d points in %8v\n", len(naive), tNaive)
	fmt.Printf("  full scan:                    %6d points in %8v\n", count, tScan)

	if len(ids) != len(naive) || len(ids) != count {
		panic("result mismatch between evaluation strategies")
	}
	fmt.Println("\nall three strategies agree.")

	// Box statistics in one segment-parallel pass — the aggregates fold
	// inside the segment workers, replacing the hand-rolled loops the
	// example used to need (count(*) and the lat extremes come without
	// materializing a single id).
	agg, _, err := tb.Select().Where(box).Aggregate(
		table.CountAll(),
		table.Min("lat"), table.Max("lat"),
		table.Avg("lon"))
	must(err)
	fmt.Printf("\nbox stats: %s\n", agg)

	// Top-k: the five northernmost points in the box via per-segment
	// bounded heaps, streamed in rank order.
	fmt.Printf("northernmost points:")
	for id, row := range tb.Select("lat", "lon").Where(box).
		OrderBy(table.Desc("lat")).Limit(5).Rows() {
		fmt.Printf(" #%d(%.4f,%.4f)", id, row.Get("lat"), row.Get("lon"))
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func intersect(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
