// Trips: the paper's Routing workload — GPS trip logs filtered by a
// bounding box over (lat, lon). Demonstrates multi-attribute conjunction
// with late materialization (Section 3): each column's imprint reduces
// the query to candidate cachelines, the candidate lists are merge-joined,
// and only surviving cachelines are fetched and checked.
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	imprints "repro"
)

func main() {
	// Simulate trips: continuous random walks over the Netherlands.
	const n = 2_000_000
	rng := rand.New(rand.NewPCG(7, 7))
	lat := make([]float64, n)
	lon := make([]float64, n)
	la, lo := 52.37, 4.89
	for i := 0; i < n; i++ {
		if rng.IntN(300) == 0 { // new trip: jump to a new area
			la = 50.8 + rng.Float64()*2.4
			lo = 3.4 + rng.Float64()*3.7
		}
		la += (rng.Float64() - 0.5) * 0.001
		lo += (rng.Float64() - 0.5) * 0.001
		lat[i] = la
		lon[i] = lo
	}

	ixLat := imprints.Build(lat, imprints.Options{Seed: 1})
	ixLon := imprints.Build(lon, imprints.Options{Seed: 2})
	fmt.Printf("indexed %d GPS points; lat entropy %.3f, lon entropy %.3f\n",
		n, ixLat.Entropy(), ixLon.Entropy())

	// Bounding box around Utrecht.
	latLo, latHi := 52.05, 52.12
	lonLo, lonHi := 5.08, 5.18

	// Late materialization: merge-join candidate cachelines first.
	t0 := time.Now()
	ids, stats := imprints.EvaluateAnd(nil,
		imprints.NewRangeConjunct(ixLat, latLo, latHi),
		imprints.NewRangeConjunct(ixLon, lonLo, lonHi),
	)
	tLate := time.Since(t0)

	// Naive alternative: materialize both id lists, intersect.
	t0 = time.Now()
	idsLat, _ := ixLat.RangeIDs(latLo, latHi, nil)
	idsLon, _ := ixLon.RangeIDs(lonLo, lonHi, nil)
	naive := intersect(idsLat, idsLon)
	tNaive := time.Since(t0)

	// Baseline: double-predicate scan.
	t0 = time.Now()
	count := 0
	for i := 0; i < n; i++ {
		if lat[i] >= latLo && lat[i] < latHi && lon[i] >= lonLo && lon[i] < lonHi {
			count++
		}
	}
	tScan := time.Since(t0)

	fmt.Printf("\nbounding box [%.2f,%.2f) x [%.2f,%.2f):\n", latLo, latHi, lonLo, lonHi)
	fmt.Printf("  late materialization: %6d points in %8v (%d residual comparisons)\n",
		len(ids), tLate, stats.Comparisons)
	fmt.Printf("  naive intersection:   %6d points in %8v\n", len(naive), tNaive)
	fmt.Printf("  full scan:            %6d points in %8v\n", count, tScan)

	if len(ids) != len(naive) || len(ids) != count {
		panic("result mismatch between evaluation strategies")
	}
	fmt.Println("\nall three strategies agree.")
}

func intersect(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
