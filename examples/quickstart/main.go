// Quickstart: put a column into a table, run a range query through the
// lazy Query API, and inspect what the index did — the plan via
// Explain, the work via QueryStats, and the underlying imprint
// structure via the facade.
package main

import (
	"fmt"
	"math/rand/v2"

	imprints "repro"
	"repro/table"
)

func main() {
	// A column of 1M "sensor readings": a slow random walk, i.e. the
	// locally clustered data the paper targets.
	rng := rand.New(rand.NewPCG(1, 2))
	col := make([]int64, 1_000_000)
	v := int64(20_000)
	for i := range col {
		v += int64(rng.IntN(21)) - 10
		col[i] = v
	}

	// A one-column table. Options{} follows the paper's defaults:
	// 2048-value sample, up to 64 histogram bins, one imprint vector
	// per 64-byte cacheline.
	tb := table.New("sensor")
	if err := table.AddColumn(tb, "reading", col, table.Imprints, imprints.Options{}); err != nil {
		panic(err)
	}
	ixStats, err := tb.IndexStats("reading")
	if err != nil {
		panic(err)
	}
	fmt.Printf("table: %d rows in %d segments of %d (stored vectors across segments: %d)\n",
		tb.Rows(), ixStats.Segments, tb.SegmentRows(), ixStats.StoredVectors)

	// The raw imprint structure, via the facade (one index over the
	// whole column; the table maintains one like it per segment).
	ix := imprints.Build(col, imprints.Options{})
	fmt.Printf("indexed %d values in %d cachelines\n", ix.Len(), ix.Cachelines())
	fmt.Printf("stored vectors: %d (compression ratio %.4f)\n",
		ix.StoredVectors(), ix.CompressionRatio())
	fmt.Printf("index size: %d bytes = %.2f%% of the column\n",
		ix.SizeBytes(), 100*float64(ix.SizeBytes())/float64(8*len(col)))
	fmt.Printf("column entropy: %.3f\n\n", ix.Entropy())

	// A lazy query: ids of all values in [19000, 19500). Explain shows
	// the plan before anything is materialized.
	q := tb.Select().Where(table.Range[int64]("reading", 19_000, 19_500))
	plan, err := q.Explain()
	if err != nil {
		panic(err)
	}
	fmt.Println(plan)

	ids, stats, err := q.IDs()
	if err != nil {
		panic(err)
	}
	fmt.Printf("query [19000,19500): %d matches\n", len(ids))
	fmt.Printf("  cachelines skipped: %d, checked: %d, emitted wholesale: %d\n",
		stats.CachelinesSkipped, stats.CachelinesScanned, stats.CachelinesExact)
	fmt.Printf("  index probes: %d, value comparisons: %d (vs %d for a scan)\n",
		stats.Probes, stats.Comparisons, len(col))

	// Cross-check against the sequential scan baseline.
	want, _ := imprints.ScanRange(col, 19_000, 19_500, nil)
	fmt.Printf("  scan agrees: %v\n", equal(ids, want))

	// Streaming access: the first few matches, no id slice in sight.
	// Always check Err after ranging: plan errors (a typo'd column,
	// say) yield no rows instead of panicking.
	fmt.Println("\nfirst 3 matches (streamed):")
	shown := 0
	for id, row := range q.Rows() {
		fmt.Printf("  row %d: %s\n", id, row)
		if shown++; shown == 3 {
			break
		}
	}
	if err := q.Err(); err != nil {
		panic(err)
	}

	// The first few lines of the imprint, Figure 3 style.
	fmt.Printf("\nimprint fingerprint (first 8 cachelines):\n%s", ix.Fingerprint(8))
}

func equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
