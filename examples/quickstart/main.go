// Quickstart: build a column imprints index over an integer column, run
// a range query, and inspect what the index did.
package main

import (
	"fmt"
	"math/rand/v2"

	imprints "repro"
)

func main() {
	// A column of 1M "sensor readings": a slow random walk, i.e. the
	// locally clustered data the paper targets.
	rng := rand.New(rand.NewPCG(1, 2))
	col := make([]int64, 1_000_000)
	v := int64(20_000)
	for i := range col {
		v += int64(rng.IntN(21)) - 10
		col[i] = v
	}

	// Build the index. Options{} follows the paper's defaults: 2048-value
	// sample, up to 64 histogram bins, one imprint vector per 64-byte
	// cacheline.
	ix := imprints.Build(col, imprints.Options{})

	fmt.Printf("indexed %d values in %d cachelines\n", ix.Len(), ix.Cachelines())
	fmt.Printf("stored vectors: %d (compression ratio %.4f)\n",
		ix.StoredVectors(), ix.CompressionRatio())
	fmt.Printf("index size: %d bytes = %.2f%% of the column\n",
		ix.SizeBytes(), 100*float64(ix.SizeBytes())/float64(8*len(col)))
	fmt.Printf("column entropy: %.3f\n\n", ix.Entropy())

	// Range query: ids of all values in [19000, 19500).
	ids, stats := ix.RangeIDs(19_000, 19_500, nil)
	fmt.Printf("query [19000,19500): %d matches\n", len(ids))
	fmt.Printf("  cachelines skipped: %d, checked: %d, emitted wholesale: %d\n",
		stats.CachelinesSkipped, stats.CachelinesScanned, stats.CachelinesExact)
	fmt.Printf("  index probes: %d, value comparisons: %d (vs %d for a scan)\n",
		stats.Probes, stats.Comparisons, len(col))

	// Cross-check against the sequential scan baseline.
	want, _ := imprints.ScanRange(col, 19_000, 19_500, nil)
	fmt.Printf("  scan agrees: %v\n", equal(ids, want))

	// The first few lines of the imprint, Figure 3 style.
	fmt.Printf("\nimprint fingerprint (first 8 cachelines):\n%s", ix.Fingerprint(8))
}

func equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
