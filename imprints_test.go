package imprints

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func mkCol(n int, seed uint64) []int64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	col := make([]int64, n)
	v := int64(1 << 20)
	for i := range col {
		v += int64(rng.IntN(201)) - 100
		col[i] = v
	}
	return col
}

func TestFacadeBuildAndQuery(t *testing.T) {
	col := mkCol(10000, 1)
	ix := Build(col, Options{Seed: 3})
	ids, st := ix.RangeIDs(1<<20, 1<<20+3000, nil)
	want, _ := ScanRange(col, 1<<20, 1<<20+3000, nil)
	if len(ids) != len(want) {
		t.Fatalf("facade query: %d ids, scan %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("id %d differs", i)
		}
	}
	if st.Probes == 0 {
		t.Error("no probes recorded")
	}
}

func TestFacadeComparators(t *testing.T) {
	col := mkCol(8000, 2)
	low, high := int64(1<<20), int64(1<<20+2000)
	want, _ := ScanRange(col, low, high, nil)

	zm := BuildZonemap(col)
	zIDs, _ := zm.RangeIDs(low, high, nil)
	if len(zIDs) != len(want) {
		t.Errorf("zonemap disagrees: %d vs %d", len(zIDs), len(want))
	}

	wb := BuildWAH(col, Options{Seed: 3})
	wIDs, _ := wb.RangeIDs(low, high, nil)
	if len(wIDs) != len(want) {
		t.Errorf("wah disagrees: %d vs %d", len(wIDs), len(want))
	}

	ix := Build(col, Options{Seed: 3})
	shared := BuildWAHShared(col, ix)
	if shared.Histogram() != ix.Histogram() {
		t.Error("BuildWAHShared did not share the histogram")
	}
}

func TestFacadeParallelAndTwoLevel(t *testing.T) {
	col := mkCol(20000, 3)
	seq := Build(col, Options{Seed: 1})
	par := BuildParallel(col, Options{Seed: 1}, 4)
	a, _ := seq.RangeIDs(1<<20, 1<<20+500, nil)
	b, _ := par.RangeIDs(1<<20, 1<<20+500, nil)
	if len(a) != len(b) {
		t.Fatal("parallel facade build differs")
	}
	tl := NewTwoLevel(seq, 16)
	c, _ := tl.RangeIDs(1<<20, 1<<20+500, nil)
	if len(c) != len(a) {
		t.Fatal("two-level facade differs")
	}
}

func TestFacadeSerialization(t *testing.T) {
	col := mkCol(5000, 4)
	ix := Build(col, Options{Seed: 9})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex[int64](&buf, col)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ix.RangeIDs(1<<20, 1<<21, nil)
	b, _ := got.RangeIDs(1<<20, 1<<21, nil)
	if len(a) != len(b) {
		t.Fatal("deserialized facade index differs")
	}
}

func TestFacadeConjunction(t *testing.T) {
	n := 4000
	rng := rand.New(rand.NewPCG(5, 5))
	a := make([]int64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(rng.IntN(1000))
		b[i] = rng.Float64() * 100
	}
	ixA := Build(a, Options{Seed: 1})
	ixB := Build(b, Options{Seed: 2})
	ids, _ := EvaluateAnd(nil,
		NewRangeConjunct(ixA, 100, 500),
		NewRangeConjunct(ixB, 25.0, 75.0),
	)
	var want int
	for i := 0; i < n; i++ {
		if a[i] >= 100 && a[i] < 500 && b[i] >= 25 && b[i] < 75 {
			want++
		}
	}
	if len(ids) != want {
		t.Errorf("conjunction returned %d ids, want %d", len(ids), want)
	}
}

func TestFacadeDelta(t *testing.T) {
	col := mkCol(3000, 6)
	ix := Build(col, Options{Seed: 1})
	d := NewDelta[int64]()
	d.Delete(0)
	d.Insert(uint32(len(col)), 1<<20+10)
	ids, _ := ix.RangeIDsDelta(1<<20, 1<<20+100000, d, nil)
	base, _ := ScanRange(col, 1<<20, 1<<20+100000, nil)
	// The deleted row leaves the result iff it qualified; the inserted
	// row (value inside the range) always joins it.
	wantLen := len(base) + 1
	if col[0] >= 1<<20 && col[0] < 1<<20+100000 {
		wantLen--
	}
	if len(ids) != wantLen {
		t.Errorf("delta query: %d ids, want %d", len(ids), wantLen)
	}
}

func TestFacadeStrings(t *testing.T) {
	vals := []string{"delta", "alpha", "charlie", "bravo", "alpha", "echo"}
	dict := EncodeStrings("s", vals)
	codes := dict.Codes().Values()
	ix := Build(codes, Options{Seed: 1})
	lo, hi, ok := dict.CodeRange("alpha", "charlie")
	if !ok {
		t.Fatal("CodeRange failed")
	}
	ids, _ := ix.RangeIDs(lo, hi, nil)
	// alpha(1,4), bravo(3), charlie(2): rows 1,2,3,4.
	if len(ids) != 4 {
		t.Errorf("string range returned %d ids: %v", len(ids), ids)
	}
}

func TestFacadeEntropyAndFingerprint(t *testing.T) {
	col := mkCol(5000, 7)
	ix := Build(col, Options{Seed: 1})
	if e := ix.Entropy(); e < 0 || e > 1 {
		t.Errorf("entropy %v", e)
	}
	if fp := ix.Fingerprint(5); fp == "" {
		t.Error("empty fingerprint")
	}
}
