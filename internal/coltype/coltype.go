// Package coltype defines the set of column value types supported by the
// column-imprints reproduction and small helpers over them.
//
// The paper's C implementation is macro-expanded once per "coltype" (char,
// short, int, long, float, double, ...). In Go we use a single type
// parameter constrained by Value instead. All supported types have a fixed
// width of 1, 2, 4 or 8 bytes, which determines how many values fit in one
// 64-byte cacheline (the granularity at which an imprint vector is built).
package coltype

import (
	"math"
	"reflect"
)

// CachelineBytes is the cacheline size assumed throughout the paper
// (Section 2.3: "we assume the commonly used size of 64 bytes").
const CachelineBytes = 64

// Value enumerates the column element types an imprints index can cover:
// all fixed-width signed/unsigned integers and both floating point widths.
// Strings are supported indirectly through dictionary encoding (see package
// column).
type Value interface {
	~int8 | ~int16 | ~int32 | ~int64 |
		~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Width returns the size of V in bytes (1, 2, 4 or 8).
func Width[V Value]() int {
	var v V
	return int(reflect.TypeOf(v).Size())
}

// ValuesPerCacheline returns how many V values fit in one 64-byte
// cacheline: 8 for 8-byte types up to 64 for 1-byte types.
func ValuesPerCacheline[V Value]() int {
	return CachelineBytes / Width[V]()
}

// MaxOf returns the maximum representable value of V. It is used to pad
// unused histogram bin borders, mirroring the paper's coltype_MAX default
// (Algorithm 2).
func MaxOf[V Value]() V {
	var v V
	switch reflect.TypeOf(v).Kind() {
	case reflect.Int8:
		i := int64(math.MaxInt8)
		return V(i)
	case reflect.Int16:
		i := int64(math.MaxInt16)
		return V(i)
	case reflect.Int32:
		i := int64(math.MaxInt32)
		return V(i)
	case reflect.Int64:
		i := int64(math.MaxInt64)
		return V(i)
	case reflect.Uint8:
		u := uint64(math.MaxUint8)
		return V(u)
	case reflect.Uint16:
		u := uint64(math.MaxUint16)
		return V(u)
	case reflect.Uint32:
		u := uint64(math.MaxUint32)
		return V(u)
	case reflect.Uint64:
		u := uint64(math.MaxUint64)
		return V(u)
	case reflect.Float32:
		f := float64(math.MaxFloat32)
		return V(f)
	case reflect.Float64:
		f := math.MaxFloat64
		return V(f)
	}
	panic("coltype: unsupported value kind")
}

// MinOf returns the minimum representable value of V (the "-infinity" end
// of the domain D in the paper's bin description).
func MinOf[V Value]() V {
	var v V
	switch reflect.TypeOf(v).Kind() {
	case reflect.Int8:
		i := int64(math.MinInt8)
		return V(i)
	case reflect.Int16:
		i := int64(math.MinInt16)
		return V(i)
	case reflect.Int32:
		i := int64(math.MinInt32)
		return V(i)
	case reflect.Int64:
		i := int64(math.MinInt64)
		return V(i)
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u := uint64(0)
		return V(u)
	case reflect.Float32:
		f := float64(-math.MaxFloat32)
		return V(f)
	case reflect.Float64:
		f := -math.MaxFloat64
		return V(f)
	}
	panic("coltype: unsupported value kind")
}

// IsFloat reports whether V is a floating point type.
func IsFloat[V Value]() bool {
	var v V
	k := reflect.TypeOf(v).Kind()
	return k == reflect.Float32 || k == reflect.Float64
}

// TypeName returns a short name for V suitable for reports ("int32",
// "float64", ...). Named types report their underlying kind.
func TypeName[V Value]() string {
	var v V
	return reflect.TypeOf(v).Kind().String()
}
