package coltype

import (
	"math"
	"testing"
)

func TestWidth(t *testing.T) {
	if got := Width[int8](); got != 1 {
		t.Errorf("Width[int8] = %d, want 1", got)
	}
	if got := Width[uint8](); got != 1 {
		t.Errorf("Width[uint8] = %d, want 1", got)
	}
	if got := Width[int16](); got != 2 {
		t.Errorf("Width[int16] = %d, want 2", got)
	}
	if got := Width[int32](); got != 4 {
		t.Errorf("Width[int32] = %d, want 4", got)
	}
	if got := Width[float32](); got != 4 {
		t.Errorf("Width[float32] = %d, want 4", got)
	}
	if got := Width[int64](); got != 8 {
		t.Errorf("Width[int64] = %d, want 8", got)
	}
	if got := Width[float64](); got != 8 {
		t.Errorf("Width[float64] = %d, want 8", got)
	}
}

func TestValuesPerCacheline(t *testing.T) {
	if got := ValuesPerCacheline[int8](); got != 64 {
		t.Errorf("ValuesPerCacheline[int8] = %d, want 64", got)
	}
	if got := ValuesPerCacheline[int16](); got != 32 {
		t.Errorf("ValuesPerCacheline[int16] = %d, want 32", got)
	}
	if got := ValuesPerCacheline[int32](); got != 16 {
		t.Errorf("ValuesPerCacheline[int32] = %d, want 16", got)
	}
	if got := ValuesPerCacheline[float64](); got != 8 {
		t.Errorf("ValuesPerCacheline[float64] = %d, want 8", got)
	}
}

func TestMaxOf(t *testing.T) {
	if got := MaxOf[int8](); got != math.MaxInt8 {
		t.Errorf("MaxOf[int8] = %d", got)
	}
	if got := MaxOf[int16](); got != math.MaxInt16 {
		t.Errorf("MaxOf[int16] = %d", got)
	}
	if got := MaxOf[int32](); got != math.MaxInt32 {
		t.Errorf("MaxOf[int32] = %d", got)
	}
	if got := MaxOf[int64](); got != math.MaxInt64 {
		t.Errorf("MaxOf[int64] = %d", got)
	}
	if got := MaxOf[uint8](); got != math.MaxUint8 {
		t.Errorf("MaxOf[uint8] = %d", got)
	}
	if got := MaxOf[uint64](); got != math.MaxUint64 {
		t.Errorf("MaxOf[uint64] = %d", got)
	}
	if got := MaxOf[float32](); got != math.MaxFloat32 {
		t.Errorf("MaxOf[float32] = %v", got)
	}
	if got := MaxOf[float64](); got != math.MaxFloat64 {
		t.Errorf("MaxOf[float64] = %v", got)
	}
}

func TestMinOf(t *testing.T) {
	if got := MinOf[int8](); got != math.MinInt8 {
		t.Errorf("MinOf[int8] = %d", got)
	}
	if got := MinOf[int64](); got != math.MinInt64 {
		t.Errorf("MinOf[int64] = %d", got)
	}
	if got := MinOf[uint32](); got != 0 {
		t.Errorf("MinOf[uint32] = %d", got)
	}
	if got := MinOf[float64](); got != -math.MaxFloat64 {
		t.Errorf("MinOf[float64] = %v", got)
	}
}

// TestMaxOfNamedType checks that named types with supported underlying
// types work: the constraint uses approximation (~int32 etc).
func TestMaxOfNamedType(t *testing.T) {
	type myInt int32
	if got := MaxOf[myInt](); got != math.MaxInt32 {
		t.Errorf("MaxOf[myInt] = %d, want %d", got, math.MaxInt32)
	}
	if got := Width[myInt](); got != 4 {
		t.Errorf("Width[myInt] = %d, want 4", got)
	}
}

func TestIsFloat(t *testing.T) {
	if IsFloat[int32]() {
		t.Error("IsFloat[int32] = true")
	}
	if !IsFloat[float32]() {
		t.Error("IsFloat[float32] = false")
	}
	if !IsFloat[float64]() {
		t.Error("IsFloat[float64] = false")
	}
}

func TestTypeName(t *testing.T) {
	if got := TypeName[int64](); got != "int64" {
		t.Errorf("TypeName[int64] = %q", got)
	}
	if got := TypeName[float32](); got != "float32" {
		t.Errorf("TypeName[float32] = %q", got)
	}
}

func TestMaxGreaterThanMin(t *testing.T) {
	// Ordering sanity for every supported type.
	if !(MaxOf[int8]() > MinOf[int8]()) {
		t.Error("int8 max <= min")
	}
	if !(MaxOf[uint16]() > MinOf[uint16]()) {
		t.Error("uint16 max <= min")
	}
	if !(MaxOf[float32]() > MinOf[float32]()) {
		t.Error("float32 max <= min")
	}
}
