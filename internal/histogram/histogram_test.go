package histogram

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/coltype"
)

func TestLowCardinalityExactMapping(t *testing.T) {
	// 7 unique values -> 8 bins, value unique[i] maps to bin i+1.
	col := []int32{10, 20, 30, 40, 50, 60, 70, 10, 20, 30}
	h := Build(col, Options{})
	if h.Bins != 8 {
		t.Fatalf("Bins = %d, want 8", h.Bins)
	}
	if h.SampledUnique != 7 {
		t.Fatalf("SampledUnique = %d, want 7", h.SampledUnique)
	}
	for i, v := range []int32{10, 20, 30, 40, 50, 60, 70} {
		if got := h.Bin(v); got != i+1 {
			t.Errorf("Bin(%d) = %d, want %d", v, got, i+1)
		}
	}
	// Below the smallest sampled value: overflow bin 0.
	if got := h.Bin(5); got != 0 {
		t.Errorf("Bin(5) = %d, want 0", got)
	}
	// Above the largest sampled value: last populated bin (7).
	if got := h.Bin(100); got != 7 {
		t.Errorf("Bin(100) = %d, want 7", got)
	}
	// Between two sampled values: the bin of the upper border.
	if got := h.Bin(25); got != 2 {
		t.Errorf("Bin(25) = %d, want 2", got)
	}
}

func TestBinsRounding(t *testing.T) {
	mk := func(nUnique int) *Histogram[int32] {
		col := make([]int32, nUnique)
		for i := range col {
			col[i] = int32(i * 3)
		}
		return Build(col, Options{})
	}
	cases := []struct{ unique, wantBins int }{
		{1, 8}, {7, 8}, {8, 16}, {15, 16}, {16, 32}, {31, 32}, {32, 64},
		{63, 64}, {64, 64}, {100, 64},
	}
	for _, c := range cases {
		if got := mk(c.unique).Bins; got != c.wantBins {
			t.Errorf("unique=%d: Bins = %d, want %d", c.unique, got, c.wantBins)
		}
	}
}

func TestPaperBorderExample(t *testing.T) {
	// "if b[3] = 10 and b[4] = 13, all values that are equal or greater
	// than 10 but less than 13 fall into the 4th bin ... while value 13
	// falls into the 5th bin."
	var h Histogram[int64]
	h.Bins = 8
	borders := []int64{1, 4, 7, 10, 13, 16, 19}
	copy(h.Borders[:], borders)
	for i := len(borders); i < MaxBins; i++ {
		h.Borders[i] = coltype.MaxOf[int64]()
	}
	if got := h.Bin(10); got != 4 {
		t.Errorf("Bin(10) = %d, want 4", got)
	}
	if got := h.Bin(12); got != 4 {
		t.Errorf("Bin(12) = %d, want 4", got)
	}
	if got := h.Bin(13); got != 5 {
		t.Errorf("Bin(13) = %d, want 5", got)
	}
}

func TestHighCardinality64Bins(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	col := make([]float64, 10000)
	for i := range col {
		col[i] = rng.Float64() * 1000
	}
	h := Build(col, Options{Seed: 3})
	if h.Bins != 64 {
		t.Fatalf("Bins = %d, want 64", h.Bins)
	}
	// First border is the sample minimum; values below it map to bin 0.
	below := h.Borders[0] - 1
	if got := h.Bin(below); got != 0 {
		t.Errorf("Bin(min-1) = %d, want 0", got)
	}
	// Values above the largest border map to the last bin.
	if got := h.Bin(1e18); got != 63 {
		t.Errorf("Bin(huge) = %d, want 63", got)
	}
	// Borders must be non-decreasing.
	for i := 1; i < MaxBins; i++ {
		if h.Borders[i] < h.Borders[i-1] {
			t.Fatalf("borders not sorted at %d: %v < %v", i, h.Borders[i], h.Borders[i-1])
		}
	}
}

func TestEquiHeightRoughlyBalanced(t *testing.T) {
	// On uniform data every bin of a 64-bin histogram should receive a
	// comparable share of the column. Allow generous tolerance: the
	// histogram is approximate by design.
	rng := rand.New(rand.NewPCG(7, 7))
	col := make([]int64, 100000)
	for i := range col {
		col[i] = rng.Int64N(1 << 40)
	}
	h := Build(col, Options{Seed: 1})
	counts := make([]int, h.Bins)
	for _, v := range col {
		counts[h.Bin(v)]++
	}
	// Interior bins (1..62) should each hold between 0.2x and 5x the
	// fair share.
	fair := float64(len(col)) / 62.0
	for i := 1; i < 63; i++ {
		if float64(counts[i]) < 0.2*fair || float64(counts[i]) > 5*fair {
			t.Errorf("bin %d count %d far from fair share %.0f", i, counts[i], fair)
		}
	}
}

func TestMaxValueClamped(t *testing.T) {
	col := []uint8{0, 255, 3, 17}
	h := Build(col, Options{})
	got := h.Bin(255)
	if got < 0 || got >= h.Bins {
		t.Fatalf("Bin(MaxUint8) = %d out of range [0,%d)", got, h.Bins)
	}
	// And the reference implementation agrees.
	if want := h.binLinear(255); got != want {
		t.Fatalf("Bin(255) = %d, binLinear = %d", got, want)
	}
}

func TestNaNMapsToBinZero(t *testing.T) {
	col := []float64{1, 2, 3, 4}
	h := Build(col, Options{})
	if got := h.Bin(math.NaN()); got != 0 {
		t.Errorf("Bin(NaN) = %d, want 0", got)
	}
}

func TestBinMatchesLinearReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(5000)
		card := 1 + rng.IntN(200)
		col := make([]int32, n)
		for i := range col {
			col[i] = int32(rng.IntN(card) * 7)
		}
		h := Build(col, Options{Seed: uint64(trial)})
		for i := 0; i < 500; i++ {
			v := int32(rng.IntN(card*7+20) - 10)
			if got, want := h.Bin(v), h.binLinear(v); got != want {
				t.Fatalf("trial %d: Bin(%d) = %d, want %d (bins=%d)", trial, v, got, want, h.Bins)
			}
		}
	}
}

// Property: Bin is monotonic non-decreasing in its argument.
func TestQuickBinMonotonic(t *testing.T) {
	f := func(seed uint64, a, b int64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		col := make([]int64, 512)
		for i := range col {
			col[i] = rng.Int64N(1 << 30)
		}
		h := Build(col, Options{Seed: seed})
		if a > b {
			a, b = b, a
		}
		return h.Bin(a) <= h.Bin(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: every value of the construction column maps to a valid bin
// and the value lies inside the bounds reported by BinBounds.
func TestQuickBinWithinBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		col := make([]float32, 1+rng.IntN(3000))
		for i := range col {
			col[i] = rng.Float32() * 100
		}
		h := Build(col, Options{Seed: seed})
		for _, v := range col {
			b := h.Bin(v)
			if b < 0 || b >= h.Bins {
				return false
			}
			lo, hi, loU, hiU := h.BinBounds(b)
			if !loU && v < lo {
				return false
			}
			if !hiU && v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	col := make([]int64, 50000)
	for i := range col {
		col[i] = rng.Int64N(1 << 50)
	}
	h1 := Build(col, Options{Seed: 99})
	h2 := Build(col, Options{Seed: 99})
	if !h1.Equal(h2) {
		t.Error("same seed produced different histograms")
	}
}

func TestCountDuplicatesBorderStructure(t *testing.T) {
	// Column where value 1000 is extremely frequent among otherwise
	// uniform values. With CountDuplicates the equal-mass division walks
	// the sorted sample *with* duplicates, so several consecutive borders
	// land on the hot value (empty bins hugging it); the Algorithm 2
	// variant dedups first, so its borders stay strictly increasing.
	rng := rand.New(rand.NewPCG(5, 5))
	col := make([]int64, 60000)
	for i := range col {
		if i%2 == 0 {
			col[i] = 1000
		} else {
			col[i] = rng.Int64N(100000)
		}
	}
	hDup := Build(col, Options{Seed: 1, CountDuplicates: true})
	hDed := Build(col, Options{Seed: 1})
	if hDup.Bins != 64 || hDed.Bins != 64 {
		t.Fatalf("expected 64 bins, got %d / %d", hDup.Bins, hDed.Bins)
	}
	hot := 0
	for i := 0; i < hDup.Bins-1; i++ {
		if hDup.Borders[i] == 1000 {
			hot++
		}
	}
	if hot < 2 {
		t.Errorf("CountDuplicates: want >=2 borders equal to the hot value, got %d", hot)
	}
	for i := 1; i < hDed.Bins-1; i++ {
		if hDed.Borders[i] <= hDed.Borders[i-1] {
			t.Errorf("dedup variant borders not strictly increasing at %d", i)
		}
	}
	// Both variants must still map every value to a valid bin.
	for _, h := range []*Histogram[int64]{hDup, hDed} {
		for _, v := range col[:1000] {
			if b := h.Bin(v); b < 0 || b >= h.Bins {
				t.Fatalf("Bin(%d) = %d out of range", v, b)
			}
		}
	}
}

func TestVectorBytes(t *testing.T) {
	cases := []struct{ unique, want int }{{3, 1}, {10, 2}, {20, 4}, {40, 8}, {200, 8}}
	for _, c := range cases {
		col := make([]int32, 4000)
		for i := range col {
			col[i] = int32(i % c.unique)
		}
		h := Build(col, Options{})
		if got := h.VectorBytes(); got != c.want {
			t.Errorf("unique=%d: VectorBytes = %d, want %d", c.unique, got, c.want)
		}
	}
}

func TestBinBoundsPanicsOutOfRange(t *testing.T) {
	h := Build([]int32{1, 2, 3}, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.BinBounds(h.Bins)
}

func TestEmptyColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build([]int32{}, Options{})
}

func TestSampleSmallerThanColumnStillCoversRange(t *testing.T) {
	// Large column, small sample: the overflow bins must absorb
	// out-of-sample extremes without panicking.
	rng := rand.New(rand.NewPCG(21, 4))
	col := make([]int32, 300000)
	for i := range col {
		col[i] = int32(rng.IntN(1 << 28))
	}
	h := Build(col, Options{SampleSize: 128, Seed: 6})
	sort.Slice(col, func(i, j int) bool { return col[i] < col[j] })
	if got := h.Bin(col[0] - 1); got != 0 {
		t.Errorf("Bin(belowMin) = %d, want 0", got)
	}
	if got := h.Bin(col[len(col)-1] + 1); got != h.Bins-1 {
		t.Errorf("Bin(aboveMax) = %d, want %d", got, h.Bins-1)
	}
}
