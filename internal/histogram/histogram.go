// Package histogram implements the sampling-based binning of the column
// imprints paper (Algorithm 2, "binning()") together with the
// cache-conscious bin lookup ("get_bin()", Section 2.5).
//
// A histogram divides the value domain of a column into at most 64 ranges
// ("bins"). Only the right borders of the bins are stored. The first bin
// always covers (-inf, b[0]) — everything below the smallest sampled
// value — and the last bin is open-ended upward, so both act as overflow
// bins for values outside the sampled active domain (Section 4.1).
//
// Bin ranges are inclusive on the left and exclusive on the right: with
// b[3] = 10 and b[4] = 13, values in [10, 13) fall into bin 4 and value 13
// falls into bin 5, exactly as the paper's running example.
package histogram

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/coltype"
)

// DefaultSampleSize is the number of values sampled from a column to
// approximate its histogram ("not more than 2048 in our implementation",
// Section 2.4).
const DefaultSampleSize = 2048

// MaxBins is the largest number of bins (and therefore imprint-vector
// bits) supported: one bit per bin, at most one 64-bit word per vector.
const MaxBins = 64

// Histogram holds the bin borders for one column. Borders is always fully
// populated: unused trailing entries are padded with the maximum value of
// the domain so that the branch-free search in Bin stays correct.
type Histogram[V coltype.Value] struct {
	// Borders[i] is the exclusive upper border of bin i. Borders are
	// non-decreasing; entries at index >= Bins-1 equal MaxOf[V].
	Borders [MaxBins]V
	// Bins is the number of usable bins: 8, 16, 32 or 64, following the
	// rounding rule of Algorithm 2.
	Bins int
	// SampledUnique records how many unique values the construction
	// sample contained (diagnostics: < 64 means the per-value mapping of
	// low-cardinality columns is in effect).
	SampledUnique int
}

// Options configures histogram construction.
type Options struct {
	// SampleSize is the number of uniformly sampled values used to derive
	// the borders. Zero means DefaultSampleSize.
	SampleSize int
	// Seed makes sampling deterministic. Two builds of the same column
	// with the same seed produce identical histograms.
	Seed uint64
	// CountDuplicates selects the equi-height variant described in the
	// prose of Section 2.4: bin borders are drawn from the sorted sample
	// *including* duplicate values, so frequent values get narrower bins.
	// The default (false) follows the pseudocode of Algorithm 2, which
	// eliminates duplicates before dividing the domain. The ablation
	// bench BenchmarkAblationBinning compares the two.
	CountDuplicates bool
}

// Build samples col and constructs its histogram per Algorithm 2.
// It panics if col is empty: an imprint over an empty column is
// meaningless and the paper's construction requires at least one value.
func Build[V coltype.Value](col []V, opts Options) *Histogram[V] {
	if len(col) == 0 {
		panic("histogram: empty column")
	}
	size := opts.SampleSize
	if size <= 0 {
		size = DefaultSampleSize
	}
	sample := make([]V, 0, size)
	if len(col) <= size {
		sample = append(sample, col...)
	} else {
		rng := rand.New(rand.NewPCG(opts.Seed, 0x1d9))
		for i := 0; i < size; i++ {
			sample = append(sample, col[rng.IntN(len(col))])
		}
	}
	return FromSample(sample, opts.CountDuplicates)
}

// FromSample builds a histogram from an explicit sample. The sample is
// modified (sorted) in place.
func FromSample[V coltype.Value](sample []V, countDuplicates bool) *Histogram[V] {
	if len(sample) == 0 {
		panic("histogram: empty sample")
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })

	// Duplicate elimination. Deduping into a fresh slice keeps the sorted
	// sample intact for the CountDuplicates variant below.
	unique := make([]V, 1, len(sample))
	unique[0] = sample[0]
	for _, v := range sample[1:] {
		if v != unique[len(unique)-1] {
			unique = append(unique, v)
		}
	}

	h := &Histogram[V]{SampledUnique: len(unique)}
	maxV := coltype.MaxOf[V]()

	if len(unique) < MaxBins {
		// Low cardinality: one unique value per bin border. Bin 0 holds
		// everything below the smallest sampled value; value unique[i]
		// falls into bin i+1.
		copy(h.Borders[:], unique)
		switch {
		case len(unique) < 8:
			h.Bins = 8
		case len(unique) < 16:
			h.Bins = 16
		case len(unique) < 32:
			h.Bins = 32
		default:
			h.Bins = 64
		}
		for i := len(unique); i < MaxBins; i++ {
			h.Borders[i] = maxV
		}
		return h
	}

	// High cardinality: divide into 62 ranges of (approximately) equal
	// sample mass. ystep is kept as float64 to guarantee an even spread
	// (Section 2.5's discussion of the 1.2-step example).
	src := unique
	if countDuplicates {
		src = sample
	}
	h.Bins = MaxBins
	ystep := float64(len(src)) / 62.0
	y := 0.0
	for i := 0; i < MaxBins-1; i++ {
		idx := int(y)
		if idx >= len(src) {
			idx = len(src) - 1
		}
		h.Borders[i] = src[idx]
		y += ystep
	}
	h.Borders[MaxBins-1] = maxV
	// CountDuplicates can introduce repeated borders; that only makes
	// some bins empty, which is harmless for correctness.
	return h
}

// Bin returns the bin index of v in [0, h.Bins). It implements the
// cache-conscious binary search of Section 2.5 as a branch-free six-level
// descent over the fully padded 64-entry border array (the Go compiler
// turns the data-dependent ifs into conditional moves, serving the same
// purpose as the paper's unrolled if-chains without else branches).
//
// Bin is equivalent to "the number of borders <= v", clamped to Bins-1:
// bin 0 is (-inf, b[0]), bin i is [b[i-1], b[i]), the last bin is
// open-ended. Floating point NaN maps to bin 0.
func (h *Histogram[V]) Bin(v V) int {
	b := &h.Borders
	i := 0
	if v >= b[i+32] {
		i += 32
	}
	if v >= b[i+16] {
		i += 16
	}
	if v >= b[i+8] {
		i += 8
	}
	if v >= b[i+4] {
		i += 4
	}
	if v >= b[i+2] {
		i += 2
	}
	if v >= b[i+1] {
		i++
	}
	if v >= b[0] {
		i++
	}
	if i >= h.Bins {
		i = h.Bins - 1
	}
	return i
}

// binLinear is the obviously-correct reference implementation of Bin,
// kept for tests and documentation.
func (h *Histogram[V]) binLinear(v V) int {
	n := 0
	for i := 0; i < MaxBins; i++ {
		if h.Borders[i] <= v {
			n++
		}
	}
	if n >= h.Bins {
		n = h.Bins - 1
	}
	return n
}

// BinBounds returns the half-open interval [lo, hi) covered by bin i.
// loUnbounded is true for bin 0 (the interval extends to -inf) and
// hiUnbounded is true for the last bin (extends to +inf); in those cases
// the corresponding bound value is meaningless.
func (h *Histogram[V]) BinBounds(i int) (lo, hi V, loUnbounded, hiUnbounded bool) {
	if i < 0 || i >= h.Bins {
		panic(fmt.Sprintf("histogram: bin %d out of range [0,%d)", i, h.Bins))
	}
	if i == 0 {
		loUnbounded = true
	} else {
		lo = h.Borders[i-1]
	}
	if i == h.Bins-1 {
		hiUnbounded = true
	} else {
		hi = h.Borders[i]
	}
	return lo, hi, loUnbounded, hiUnbounded
}

// VectorBytes returns the storage width in bytes of one imprint vector
// built over this histogram: Bins/8, i.e. 1, 2, 4 or 8.
func (h *Histogram[V]) VectorBytes() int { return h.Bins / 8 }

// Equal reports whether two histograms describe identical binnings.
func (h *Histogram[V]) Equal(o *Histogram[V]) bool {
	if h.Bins != o.Bins {
		return false
	}
	return h.Borders == o.Borders
}
