package histogram

import (
	"sort"

	"repro/internal/coltype"
)

// Alternative bin-search implementations, kept for the ablation study of
// Section 2.5. The paper reports that explicitly unrolling the binary
// search into independent if-statements without else-branches made the
// search "three times faster, or even more" than a loop; Bin (in
// histogram.go) is our production variant — a branch-free six-level
// descent the compiler turns into conditional moves. BinPaper mirrors
// the paper's macro-expanded right/middle/left structure, and BinLoop
// and BinStdlib are the naive baselines. BenchmarkAblationGetBin
// compares all four.

// BinPaper locates the bin with the paper's unrolled scheme: at each of
// the six levels the candidate range is halved by three independent,
// else-free comparisons (the right, middle and left macros). Every
// if-statement may fire; the last assignment wins, which is why the
// search proceeds from the highest bin downward.
func (h *Histogram[V]) BinPaper(v V) int {
	b := &h.Borders
	res := 0
	// Level by level, each test is independent of the previous one's
	// outcome (no else), exactly like the paper's macro expansion.
	lo, hi := 0, MaxBins // candidate border window [lo, hi)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		// right: v in [b[mid], +inf) -> continue right half
		if v >= b[mid] {
			lo = mid
		}
		// left: v below the window start border -> continue left half
		if v < b[mid] {
			hi = mid
		}
	}
	// lo is the largest border index with b[lo] <= v, unless v < b[0].
	if v >= b[lo] {
		res = lo + 1
	}
	if res >= h.Bins {
		res = h.Bins - 1
	}
	return res
}

// BinLoop is the textbook loop-based binary search (the implementation
// the paper's unrolling is measured against).
func (h *Histogram[V]) BinLoop(v V) int {
	lo, hi := 0, MaxBins // first border index with b[i] > v lies in [lo, hi]
	for lo < hi {
		mid := (lo + hi) / 2
		if h.Borders[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= h.Bins {
		lo = h.Bins - 1
	}
	return lo
}

// BinStdlib uses sort.Search, the idiomatic but closure-indirected
// variant.
func (h *Histogram[V]) BinStdlib(v V) int {
	n := sort.Search(MaxBins, func(i int) bool { return h.Borders[i] > v })
	if n >= h.Bins {
		n = h.Bins - 1
	}
	return n
}

// Compile-time interface sanity: all variants share the signature.
var _ = func() bool {
	h := &Histogram[int64]{Bins: 8}
	h.Borders[0] = 1
	for i := 1; i < MaxBins; i++ {
		h.Borders[i] = coltype.MaxOf[int64]()
	}
	return h.Bin(0) == h.BinPaper(0) && h.Bin(0) == h.BinLoop(0) && h.Bin(0) == h.BinStdlib(0)
}()
