package histogram

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// All bin-search variants must agree with the linear reference on every
// input, across cardinality regimes.
func TestBinVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 30; trial++ {
		card := 1 + rng.IntN(300)
		col := make([]int64, 2000)
		for i := range col {
			col[i] = int64(rng.IntN(card) * 11)
		}
		h := Build(col, Options{Seed: uint64(trial)})
		for probe := 0; probe < 400; probe++ {
			v := int64(rng.IntN(card*11+40) - 20)
			want := h.binLinear(v)
			if got := h.Bin(v); got != want {
				t.Fatalf("Bin(%d) = %d, want %d", v, got, want)
			}
			if got := h.BinPaper(v); got != want {
				t.Fatalf("BinPaper(%d) = %d, want %d", v, got, want)
			}
			if got := h.BinLoop(v); got != want {
				t.Fatalf("BinLoop(%d) = %d, want %d", v, got, want)
			}
			if got := h.BinStdlib(v); got != want {
				t.Fatalf("BinStdlib(%d) = %d, want %d", v, got, want)
			}
		}
	}
}

func TestQuickBinVariantsAgreeFloats(t *testing.T) {
	f := func(seed uint64, v float64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		col := make([]float64, 1500)
		for i := range col {
			col[i] = rng.Float64() * 1000
		}
		h := Build(col, Options{Seed: seed})
		want := h.Bin(v)
		return h.BinPaper(v) == want && h.BinLoop(v) == want && h.BinStdlib(v) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// BenchmarkAblationGetBin reproduces the paper's Section 2.5 comparison
// of bin search implementations.
func BenchmarkAblationGetBin(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	col := make([]int64, 1<<16)
	for i := range col {
		col[i] = rng.Int64N(1 << 40)
	}
	h := Build(col, Options{Seed: 1})
	probes := make([]int64, 4096)
	for i := range probes {
		probes[i] = rng.Int64N(1 << 40)
	}
	sink := 0
	b.Run("branchless", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += h.Bin(probes[i&4095])
		}
	})
	b.Run("paper-unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += h.BinPaper(probes[i&4095])
		}
	})
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += h.BinLoop(probes[i&4095])
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += h.BinStdlib(probes[i&4095])
		}
	})
	_ = sink
}
