package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// collect replays dir into a slice of payload copies.
func collect(t *testing.T, fs faultfs.FS, dir string) ([][]byte, ReplayStats) {
	t.Helper()
	var got [][]byte
	stats, err := Replay(fs, dir, func(seq uint64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, stats
}

// Records written across several rolled segments replay in order.
func TestAppendReplayAcrossSegments(t *testing.T) {
	fs := faultfs.NewMemFS()
	l, err := Open("w", Options{FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%02d-%s", i, "xxxxxxxxxxxxxxxx"))
		want = append(want, p)
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, stats := collect(t, fs, "w")
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d (stats %+v)", len(got), len(want), stats)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if stats.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", stats.Segments)
	}
	if stats.TornRecords != 0 || stats.BytesTruncated != 0 {
		t.Fatalf("unexpected tear: %+v", stats)
	}
}

// A crash between Append and fsync tears the tail; replay truncates it
// durably and keeps the acknowledged prefix. A second replay sees no
// tear.
func TestTornTailTruncated(t *testing.T) {
	fs := faultfs.NewMemFS()
	l, err := Open("w", Options{FS: fs, Policy: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append([]byte("durable-one"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// Appended but never synced: lost by the crash entirely — MemFS
	// drops unsynced bytes, which is a clean (non-torn) loss.
	if _, err := l.Append([]byte("volatile-two")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, stats := collect(t, fs, "w")
	if len(got) != 1 || string(got[0]) != "durable-one" {
		t.Fatalf("replay after crash = %q (stats %+v)", got, stats)
	}

	// Now a genuinely torn frame: valid prefix + garbage tail.
	f, err := fs.Open("w/" + segName(1))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	path := "w/" + segName(1)
	af, err := appendRaw(fs, path, []byte{9, 0, 0, 0, 1, 2, 3, 4, 'p', 'a', 'r'})
	if err != nil {
		t.Fatal(err)
	}
	_ = af
	got, stats = collect(t, fs, "w")
	if len(got) != 1 || string(got[0]) != "durable-one" {
		t.Fatalf("replay with torn tail = %q", got)
	}
	if stats.TornRecords != 1 || stats.BytesTruncated != 11 {
		t.Fatalf("tear not counted: %+v", stats)
	}
	// The tear was physically removed: replaying again is clean.
	got, stats = collect(t, fs, "w")
	if len(got) != 1 || stats.TornRecords != 0 || stats.BytesTruncated != 0 {
		t.Fatalf("tear resurrected on second replay: %q %+v", got, stats)
	}
}

// appendRaw appends raw bytes to an existing MemFS file by re-writing
// it (MemFS Create truncates, so copy out first).
func appendRaw(fs *faultfs.MemFS, path string, tail []byte) (faultfs.File, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 256)
	tmp := make([]byte, 64)
	for {
		n, err := f.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	f.Close()
	w, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(append(buf, tail...)); err != nil {
		return nil, err
	}
	if err := w.Sync(); err != nil {
		return nil, err
	}
	return w, w.Close()
}

// A bad frame in a non-final segment is corruption, not a tear.
func TestCorruptInteriorSegment(t *testing.T) {
	fs := faultfs.NewMemFS()
	l, err := Open("w", Options{FS: fs, SegmentBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("rec-%d-aaaaaaaaaaaa", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if _, err := appendRaw(fs, "w/"+segName(1), []byte{0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(fs, "w", func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption error = %v, want ErrCorrupt", err)
	}
}

// Cut + TruncateBefore drops covered segments; replay afterwards sees
// only the checkpoint and post-cut records.
func TestCheckpointTruncates(t *testing.T) {
	fs := faultfs.NewMemFS()
	l, err := Open("w", Options{FS: fs, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("old-%d-aaaaaaaaaaaaaaaa", i))); err != nil {
			t.Fatal(err)
		}
	}
	keep, err := l.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("new-after-cut")); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(keep, []byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, _ := collect(t, fs, "w")
	var names []string
	for _, g := range got {
		names = append(names, string(g))
	}
	if len(got) != 2 || names[0] != "new-after-cut" || names[1] != "ckpt" {
		t.Fatalf("after checkpoint replay = %v", names)
	}
}

// Group commit: concurrent committers share fsyncs and all observe
// durability; a crash loses nothing acknowledged.
func TestGroupCommitConcurrent(t *testing.T) {
	fs := faultfs.NewMemFS()
	l, err := Open("w", Options{FS: fs, Policy: SyncGroup, GroupWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append([]byte(fmt.Sprintf("g-%02d", i)))
			if err == nil {
				err = l.WaitDurable(lsn)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	fs.Crash()
	got, _ := collect(t, fs, "w")
	if len(got) != n {
		t.Fatalf("replayed %d acknowledged group commits, want %d", len(got), n)
	}
}

// A sync failure is sticky: the log fail-stops.
func TestSyncErrorFailStop(t *testing.T) {
	mem := faultfs.NewMemFS()
	in := faultfs.NewInjector(mem)
	l, err := Open("w", Options{FS: in, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Next ops: write (1), sync (2) — fail the sync with ENOSPC.
	in.Arm(2, faultfs.FailENOSPC)
	if _, err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("append with failing sync succeeded")
	}
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("append after sticky sync error succeeded")
	}
	if l.Err() == nil {
		t.Fatal("sticky error not exposed")
	}
	if err := l.WaitDurable(1); err == nil {
		t.Fatal("WaitDurable after sticky error succeeded")
	}
}

// Open never appends to an existing segment: a fresh Open after a
// crash starts a new file, leaving history replay-only.
func TestOpenStartsFreshSegment(t *testing.T) {
	fs := faultfs.NewMemFS()
	l, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := l.Append([]byte("one"))
	l.WaitDurable(lsn)
	l.Close()
	fs.Crash()
	l2, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if l2.segSeq != 2 {
		t.Fatalf("second Open segment = %d, want 2", l2.segSeq)
	}
	lsn, _ = l2.Append([]byte("two"))
	l2.WaitDurable(lsn)
	l2.Close()
	fs.Crash()
	got, stats := collect(t, fs, "w")
	if len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("replay = %q (stats %+v)", got, stats)
	}
}

// ParsePolicy round-trips the flag spellings.
func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"", SyncAlways}, {"group", SyncGroup}, {"off", SyncOff}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
