package wal

import (
	"bytes"
	"hash/crc32"
	"testing"

	"repro/internal/faultfs"
)

// FuzzWALReplay feeds arbitrary bytes to Replay as the contents of a
// final segment: it must never panic, and whatever it accepts must be
// stable — a second replay after the torn-tail repair yields the same
// records with no further damage reported.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{9, 0, 0, 0, 1, 2, 3, 4, 'x'})
	// One valid frame ("hi") followed by garbage.
	valid := []byte{2, 0, 0, 0}
	valid = append(valid, crcBytes([]byte("hi"))...)
	valid = append(valid, 'h', 'i', 0xde, 0xad)
	f.Add(valid)
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := faultfs.NewMemFS()
		if err := fs.MkdirAll("w"); err != nil {
			t.Fatal(err)
		}
		w, err := fs.Create("w/" + segName(1))
		if err != nil {
			t.Fatal(err)
		}
		w.Write(data)
		w.Sync()
		w.Close()
		fs.SyncDir("w")

		var first [][]byte
		stats, err := Replay(fs, "w", func(seq uint64, p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			return // corrupt is a legal outcome; panics are not
		}
		var second [][]byte
		stats2, err := Replay(fs, "w", func(seq uint64, p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("second replay failed after repair: %v", err)
		}
		if stats2.TornRecords != 0 || stats2.BytesTruncated != 0 {
			t.Fatalf("tear survived repair: first %+v second %+v", stats, stats2)
		}
		if len(first) != len(second) {
			t.Fatalf("replay not stable: %d then %d records", len(first), len(second))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d changed across replays", i)
			}
		}
	})
}

// crcBytes returns the little-endian CRC-32C of p.
func crcBytes(p []byte) []byte {
	b := make([]byte, 4)
	putU32(b, crc32.Checksum(p, crcTable))
	return b
}
