package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/faultfs"
)

// ReplayStats summarizes one recovery pass over a log directory.
type ReplayStats struct {
	// Segments is the number of segment files visited.
	Segments int
	// Records is the number of intact records delivered to the apply
	// callback.
	Records int
	// TornRecords counts trailing frames discarded as torn (0 or 1:
	// everything from the first bad frame of the final segment is one
	// tear).
	TornRecords int
	// BytesTruncated is the number of torn tail bytes physically
	// removed from the final segment.
	BytesTruncated int64
}

// ErrCorrupt marks replay failures that are not a tolerable torn tail:
// a bad frame in a non-final segment means history was damaged after
// it was acknowledged, and replaying past it could resurrect rows out
// of order.
var ErrCorrupt = errors.New("wal: corrupt log")

// Replay scans dir's segments in sequence order and hands every intact
// payload to apply. A bad frame (impossible length, checksum mismatch,
// or truncated tail) in the final segment is treated as a torn write:
// the segment is physically truncated at the first bad byte — durably,
// so the tear cannot return — and replay succeeds with the damage
// counted in ReplayStats. A bad frame anywhere else fails with
// ErrCorrupt. A missing directory is an empty log.
func Replay(fsys faultfs.FS, dir string, apply func(seq uint64, payload []byte) error) (ReplayStats, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	var stats ReplayStats
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return stats, nil // no directory: nothing logged yet
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseSegName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	// ReadDir returns sorted names and segment names are fixed-width,
	// so seqs is already ascending.
	for i, seq := range seqs {
		final := i == len(seqs)-1
		path := dir + "/" + segName(seq)
		data, err := readAll(fsys, path)
		if err != nil {
			return stats, fmt.Errorf("wal: read %s: %w", path, err)
		}
		stats.Segments++
		off := 0
		for off < len(data) {
			n, payload := nextFrame(data[off:])
			if n < 0 {
				if !final {
					return stats, fmt.Errorf("%w: bad frame at %s offset %d (not the final segment)", ErrCorrupt, segName(seq), off)
				}
				stats.TornRecords++
				stats.BytesTruncated = int64(len(data) - off)
				if err := fsys.Truncate(path, int64(off)); err != nil {
					return stats, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
				}
				off = len(data)
				continue
			}
			if err := apply(seq, payload); err != nil {
				return stats, err
			}
			stats.Records++
			off += n
		}
	}
	return stats, nil
}

// nextFrame decodes one frame from the head of b. It returns the total
// frame length and the payload, or n < 0 if the bytes at the head are
// not an intact frame (truncated, impossible length, or checksum
// mismatch).
func nextFrame(b []byte) (n int, payload []byte) {
	if len(b) < frameHeader {
		return -1, nil
	}
	ln := int(getU32(b))
	if ln == 0 || ln > MaxRecord || ln > len(b)-frameHeader {
		return -1, nil
	}
	payload = b[frameHeader : frameHeader+ln]
	if crc32.Checksum(payload, crcTable) != getU32(b[4:]) {
		return -1, nil
	}
	return frameHeader + ln, payload
}

// readAll slurps one segment file.
func readAll(fsys faultfs.FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
