// Package wal implements a segment-rolling, CRC32C-framed write-ahead
// log. The table layer logs raw ingest records (commits, updates,
// deletes) through it before acknowledging them; on restart the log is
// replayed to rebuild everything the in-memory delta store lost. The
// paper's economics make this the whole durability story: imprints are
// ~1-2% of column size and rebuilt cheaply from slabs, so the log
// never needs to contain index state — only rows.
//
// Frame format, repeated back to back inside each segment file:
//
//	u32 payload length (little endian, 1 .. MaxRecord)
//	u32 CRC-32C (Castagnoli) of the payload
//	payload bytes
//
// Segments are named wal-%08d.log with a monotonically increasing
// sequence number. A log never appends to a pre-existing segment: Open
// always starts a fresh one, so a tail torn by a crash is repaired
// exactly once (by Replay) and never written past. Checkpoints (see
// Log.Cut and Log.TruncateBefore) let the owner drop segments fully
// covered by a persisted image.
//
// Durability is governed by a SyncPolicy: SyncAlways fsyncs inside
// every Append, SyncGroup batches concurrent commits into one fsync
// after at most GroupWindow, SyncOff never fsyncs (bounded data loss,
// maximal throughput). Any write or sync error is sticky and fails all
// subsequent operations: once durability is in doubt the log refuses
// to acknowledge anything more (fail-stop, per fsyncgate semantics).
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"repro/internal/faultfs"
)

// SyncPolicy selects when appended records are made durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Append returns.
	SyncAlways SyncPolicy = iota
	// SyncGroup batches commits: WaitDurable waiters share one fsync
	// issued after at most Options.GroupWindow.
	SyncGroup
	// SyncOff never fsyncs; a crash loses everything since the last
	// OS writeback. WaitDurable returns immediately.
	SyncOff
)

// String names the policy the way the -fsync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy converts a -fsync flag value into a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, group or off)", s)
}

const (
	// MaxRecord bounds a single payload; larger length prefixes are
	// treated as torn/corrupt during replay.
	MaxRecord = 1 << 28
	// DefaultSegmentBytes is the roll threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 4 << 20
	frameHeader         = 8
)

var (
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// crcTable is the Castagnoli polynomial (CRC-32C), hardware
	// accelerated on amd64/arm64.
	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// GroupWindow is the max extra latency one commit absorbs waiting
	// for companions under SyncGroup. Zero means sync immediately (the
	// group is whatever appended concurrently).
	GroupWindow time.Duration
	// SegmentBytes is the roll threshold (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// FS is the filesystem to write through (nil = the real OS).
	FS faultfs.FS
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	fs   faultfs.FS
	dir  string
	opts Options

	// syncMu serializes group-commit sync rounds; held across the
	// fsync itself so a checkpoint can exclude in-flight syncs by
	// acquiring it.
	syncMu sync.Mutex

	mu       sync.Mutex // guards the fields below
	seg      faultfs.File
	segSeq   uint64
	segBytes int64
	lsn      int64 // total framed bytes appended, across all segments
	durable  int64 // prefix of lsn known durable
	retired  []faultfs.File
	sticky   error
	closed   bool
}

// segName formats the file name of segment seq.
func segName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err != nil {
		return 0, false
	}
	if segName(seq) != name {
		return 0, false
	}
	return seq, true
}

// Open creates (or reuses) dir and starts a fresh segment numbered one
// past the highest existing segment. It never appends to an existing
// file: pre-existing segments are replay-only history. The new
// segment's directory entry is made durable before Open returns.
func Open(dir string, opts Options) (*Log, error) {
	if opts.FS == nil {
		opts.FS = faultfs.OS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	maxSeq := uint64(0)
	names, err := opts.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan %s: %w", dir, err)
	}
	for _, name := range names {
		if seq, ok := parseSegName(name); ok && seq > maxSeq {
			maxSeq = seq
		}
	}
	l := &Log{fs: opts.FS, dir: dir, opts: opts}
	if err := l.openSegmentLocked(maxSeq + 1); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegmentLocked creates segment seq, makes its directory entry
// durable, and installs it as the active segment. Callers hold mu (or
// own the log exclusively during Open).
func (l *Log) openSegmentLocked(seq uint64) error {
	path := l.dir + "/" + segName(seq)
	f, err := l.fs.Create(path)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", path, err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncdir %s: %w", l.dir, err)
	}
	if l.seg != nil {
		l.retired = append(l.retired, l.seg)
	}
	l.seg = f
	l.segSeq = seq
	l.segBytes = 0
	return nil
}

// Append frames payload and writes it to the active segment, returning
// the record's end LSN — the token WaitDurable accepts. Under
// SyncAlways the record is durable when Append returns; under
// SyncGroup/SyncOff it is buffered. A payload must be 1..MaxRecord
// bytes.
func (l *Log) Append(payload []byte) (int64, error) {
	if len(payload) == 0 || len(payload) > MaxRecord {
		return 0, fmt.Errorf("wal: payload size %d out of range [1, %d]", len(payload), MaxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.sticky != nil {
		return 0, l.sticky
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			l.sticky = err
			return 0, err
		}
	}
	frame := make([]byte, frameHeader+len(payload))
	putU32(frame[0:], uint32(len(payload)))
	putU32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	if _, err := l.seg.Write(frame); err != nil {
		// The tail may now hold a partial frame; nothing after it could
		// be replayed, so refuse all further appends.
		l.sticky = fmt.Errorf("wal: append: %w", err)
		return 0, l.sticky
	}
	l.lsn += int64(len(frame))
	l.segBytes += int64(len(frame))
	if l.opts.Policy == SyncAlways {
		if err := l.seg.Sync(); err != nil {
			l.sticky = fmt.Errorf("wal: sync: %w", err)
			return 0, l.sticky
		}
		l.durable = l.lsn
	}
	return l.lsn, nil
}

// rollLocked syncs and retires the active segment and starts the next
// one. Callers hold mu. The old segment is synced first so that the
// invariant "every byte outside the active segment is durable" holds
// (WaitDurable only ever syncs the active segment).
func (l *Log) rollLocked() error {
	if l.opts.Policy != SyncOff {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: sync on roll: %w", err)
		}
		l.durable = l.lsn
	}
	return l.openSegmentLocked(l.segSeq + 1)
}

// WaitDurable blocks until the record ending at lsn is durable under
// the log's policy: returns immediately under SyncOff and (normally)
// SyncAlways; under SyncGroup it joins the in-flight group commit or
// leads a new one after GroupWindow.
func (l *Log) WaitDurable(lsn int64) error {
	if l.opts.Policy == SyncOff {
		return nil
	}
	for {
		l.mu.Lock()
		err, done := l.sticky, l.durable >= lsn
		l.mu.Unlock()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		l.syncRound(lsn)
	}
}

// syncRound performs (or piggybacks on) one group-commit fsync.
// Waiters serialize on syncMu: the leader sleeps the group window,
// snapshots the append frontier, syncs the active segment and
// publishes the new durable LSN; followers acquiring syncMu afterwards
// see their LSN already durable and return without syncing.
func (l *Log) syncRound(lsn int64) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	skip := l.sticky != nil || l.durable >= lsn
	l.mu.Unlock()
	if skip {
		return
	}
	if l.opts.Policy == SyncGroup && l.opts.GroupWindow > 0 {
		time.Sleep(l.opts.GroupWindow)
	}
	l.mu.Lock()
	f, target := l.seg, l.lsn
	l.mu.Unlock()
	err := f.Sync()
	l.mu.Lock()
	if err != nil {
		l.sticky = fmt.Errorf("wal: sync: %w", err)
	} else if target > l.durable {
		l.durable = target
	}
	l.mu.Unlock()
}

// Sync forces everything appended so far durable, regardless of
// policy (SyncOff included — Close uses it for a best-effort flush).
func (l *Log) Sync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.sticky != nil {
		err := l.sticky
		l.mu.Unlock()
		return err
	}
	f, target := l.seg, l.lsn
	l.mu.Unlock()
	err := f.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.sticky = fmt.Errorf("wal: sync: %w", err)
		return l.sticky
	}
	if target > l.durable {
		l.durable = target
	}
	return nil
}

// Cut syncs and rolls to a fresh segment, returning its sequence
// number. Records appended after Cut land in segments >= the returned
// sequence, so a caller that snapshots state and then persists it can
// later drop everything older with TruncateBefore. Holding syncMu
// excludes in-flight group syncs while the active segment changes.
func (l *Log) Cut() (uint64, error) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.sticky != nil {
		return 0, l.sticky
	}
	if err := l.seg.Sync(); err != nil {
		l.sticky = fmt.Errorf("wal: sync on cut: %w", err)
		return 0, l.sticky
	}
	l.durable = l.lsn
	if err := l.openSegmentLocked(l.segSeq + 1); err != nil {
		l.sticky = err
		return 0, err
	}
	return l.segSeq, nil
}

// TruncateBefore appends checkpoint (an opaque payload recorded like
// any other, typically encoding the persisted row watermark), makes it
// durable, then removes every segment with sequence < keepSeq and
// syncs the directory. Used after a successful image save: keepSeq is
// the sequence returned by the Cut taken while the image's contents
// were frozen.
func (l *Log) TruncateBefore(keepSeq uint64, checkpoint []byte) error {
	if len(checkpoint) > 0 {
		lsn, err := l.Append(checkpoint)
		if err != nil {
			return err
		}
		if err := l.WaitDurable(lsn); err != nil {
			return err
		}
		if l.opts.Policy == SyncOff {
			if err := l.Sync(); err != nil {
				return err
			}
		}
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: scan %s: %w", l.dir, err)
	}
	removed := false
	for _, name := range names {
		seq, ok := parseSegName(name)
		if !ok || seq >= keepSeq || seq == l.segSeq {
			continue
		}
		if err := l.fs.Remove(l.dir + "/" + name); err != nil {
			return fmt.Errorf("wal: remove %s: %w", name, err)
		}
		removed = true
	}
	for _, f := range l.retired {
		f.Close()
	}
	l.retired = nil
	if removed {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return fmt.Errorf("wal: syncdir %s: %w", l.dir, err)
		}
	}
	return nil
}

// LSN returns the append frontier (total framed bytes logged).
func (l *Log) LSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Err returns the sticky failure, if any. A non-nil result means the
// log has fail-stopped and no further records can be acknowledged.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sticky
}

// Close flushes (best effort under a sticky error) and closes the log.
func (l *Log) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	if l.sticky == nil && l.durable < l.lsn {
		if err := l.seg.Sync(); err != nil {
			first = err
		} else {
			l.durable = l.lsn
		}
	}
	for _, f := range l.retired {
		f.Close()
	}
	l.retired = nil
	if err := l.seg.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// putU32 encodes v little-endian into b[0:4].
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// getU32 decodes a little-endian u32 from b[0:4].
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
