// Package faultfs abstracts the small slice of filesystem behavior the
// durability layer depends on — create/rename/remove/truncate, file
// sync and directory-entry sync — behind an interface so tests can
// substitute an in-memory filesystem with an explicit crash model
// (MemFS) and inject faults at every write-path operation (Injector).
//
// The production implementation (OS) forwards to package os. The
// durability code in internal/wal and table persistence is written
// against FS exclusively, which is what makes the crash-point oracle
// possible: the same code path runs against MemFS, is killed at an
// arbitrary operation, "crashes" (volatile state reverts to the
// durable image), and recovers.
package faultfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is an open file handle. Writes always append (the durability
// layer never seeks); Sync persists previously written bytes the way
// fsync does.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes every byte written before the call durable. After a
	// Sync error the file's durable state is unknown; callers are
	// expected to fail-stop (fsyncgate semantics) rather than retry.
	Sync() error
}

// FS is the filesystem surface the durability layer uses. Directory
// entries created by Create or moved by Rename are NOT durable until
// SyncDir is called on the parent directory — exactly the POSIX
// contract, and exactly what MemFS models.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname's file. The new
	// entry is volatile until SyncDir on the parent.
	Rename(oldname, newname string) error
	// Remove unlinks name.
	Remove(name string) error
	// MkdirAll creates the directory path and any missing parents.
	MkdirAll(name string) error
	// ReadDir lists the entry names of a directory, sorted.
	ReadDir(name string) ([]string, error)
	// Truncate cuts the named file to size bytes. Used by WAL recovery
	// to physically discard a torn tail; implementations make the
	// truncation durable before returning.
	Truncate(name string, size int64) error
	// SyncDir makes the directory's current entries (creations,
	// renames, removals) durable.
	SyncDir(name string) error
	// Size reports the current length of the named file.
	Size(name string) (int64, error)
}

// OS is the production FS backed by package os.
type OS struct{}

type osFile struct{ *os.File }

// Create implements FS.
func (OS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(name string) error { return os.MkdirAll(name, 0o755) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]string, error) {
	ents, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Truncate implements FS. The shortened length is made durable by
// re-syncing the file, so a torn WAL tail discarded during recovery
// cannot resurrect after the next crash.
func (OS) Truncate(name string, size int64) error {
	if err := os.Truncate(name, size); err != nil {
		return err
	}
	f, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// SyncDir implements FS by fsyncing the directory inode.
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Size implements FS.
func (OS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// clean normalizes a path for use as a map key in MemFS.
func clean(name string) string { return filepath.Clean(name) }

// parentOf returns the directory containing name.
func parentOf(name string) string { return filepath.Dir(clean(name)) }

// childOf reports whether path sits directly inside dir.
func childOf(dir, path string) bool {
	return parentOf(path) == clean(dir) && clean(path) != clean(dir)
}

// baseOf returns the last element of the path.
func baseOf(name string) string {
	if i := strings.LastIndexByte(clean(name), '/'); i >= 0 {
		return clean(name)[i+1:]
	}
	return clean(name)
}
