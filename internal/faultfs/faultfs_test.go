package faultfs

import (
	"errors"
	"io"
	"syscall"
	"testing"
)

func writeFile(t *testing.T, fs FS, name, data string, sync bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %s: %v", name, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", name, err)
	}
}

func readFile(t *testing.T, fs FS, name string) string {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

// Unsynced file contents do not survive a crash; synced contents do.
func TestMemFSCrashContents(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, "d/a", "hello", true)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("d/b")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("volatile"))
	f.Close()

	// a gains unsynced extra bytes.
	g, err := fs.Open("d/a")
	_ = g
	if err != nil {
		t.Fatal(err)
	}
	h, err := fs.Create("d/c")
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("synced-but-unlinked"))
	h.Sync()
	h.Close()

	fs.Crash()
	if got := readFile(t, fs, "d/a"); got != "hello" {
		t.Fatalf("a after crash = %q, want hello", got)
	}
	if _, err := fs.Open("d/b"); err == nil {
		t.Fatal("unsynced-dir file b survived crash")
	}
	if _, err := fs.Open("d/c"); err == nil {
		t.Fatal("file c created after SyncDir survived crash without a second SyncDir")
	}
}

// A rename is volatile until SyncDir: crash before it reverts to the
// old name, crash after it keeps the new name.
func TestMemFSCrashRename(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("d")
	writeFile(t, fs, "d/old", "v1", true)
	fs.SyncDir("d")
	writeFile(t, fs, "d/old.tmp", "v2", true)
	fs.SyncDir("d")
	if err := fs.Rename("d/old.tmp", "d/old"); err != nil {
		t.Fatal(err)
	}

	// Crash before SyncDir: the rename rolls back.
	fs.Crash()
	if got := readFile(t, fs, "d/old"); got != "v1" {
		t.Fatalf("old after crash = %q, want v1", got)
	}
	if got := readFile(t, fs, "d/old.tmp"); got != "v2" {
		t.Fatalf("old.tmp after crash = %q, want v2", got)
	}

	// Redo with SyncDir: the rename sticks.
	if err := fs.Rename("d/old.tmp", "d/old"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if got := readFile(t, fs, "d/old"); got != "v2" {
		t.Fatalf("old after synced rename + crash = %q, want v2", got)
	}
	if _, err := fs.Open("d/old.tmp"); err == nil {
		t.Fatal("old.tmp survived synced rename")
	}
}

// Create over an existing durable file truncates the durable image:
// an in-place overwrite that crashes loses the previous contents.
func TestMemFSCreateTruncatesDurable(t *testing.T) {
	fs := NewMemFS()
	writeFile(t, fs, "a", "good image", true)
	fs.SyncDir(".")
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("half-writ"))
	f.Close()
	fs.Crash()
	if got := readFile(t, fs, "a"); got != "" {
		t.Fatalf("in-place overwrite survived crash with %q; want empty (old image destroyed)", got)
	}
}

// Truncate is durable immediately and bounds the persisted prefix.
func TestMemFSTruncate(t *testing.T) {
	fs := NewMemFS()
	writeFile(t, fs, "a", "0123456789", true)
	fs.SyncDir(".")
	if err := fs.Truncate("a", 4); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "a"); got != "0123" {
		t.Fatalf("after truncate = %q", got)
	}
	fs.Crash()
	if got := readFile(t, fs, "a"); got != "0123" {
		t.Fatalf("after truncate+crash = %q", got)
	}
}

// The injector fails the armed op, tears writes in torn mode, and
// stays failed (fail-stop) afterwards.
func TestInjectorModes(t *testing.T) {
	mem := NewMemFS()
	in := NewInjector(mem)

	// Count a tiny workload: create(1) + write(2) + sync(3) + syncdir(4).
	writeFile(t, in, "a", "abcdefgh", true)
	in.SyncDir(".")
	if got := in.Ops(); got != 4 {
		t.Fatalf("ops = %d, want 4", got)
	}

	// Torn write: arm the write (op 2).
	in.Arm(2, FailTorn)
	f, err := in.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdefgh")); err == nil {
		t.Fatal("armed write succeeded")
	}
	if got := readFile(t, mem, "b"); got != "abcd" {
		t.Fatalf("torn write left %q, want abcd", got)
	}
	if !in.Fired() {
		t.Fatal("injector did not record firing")
	}
	// Fail-stop: everything after the fault fails too.
	if err := f.Sync(); err == nil {
		t.Fatal("sync after fault succeeded")
	}
	if _, err := in.Create("c"); err == nil {
		t.Fatal("create after fault succeeded")
	}

	// ENOSPC mode surfaces syscall.ENOSPC via errors.Is.
	in.Arm(1, FailENOSPC)
	if _, err := in.Create("d"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC mode error = %v", err)
	}
	if !errors.Is(injectErr("x", FailError), ErrInjected) {
		t.Fatal("injectErr does not wrap ErrInjected")
	}
}
