package faultfs

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
)

// ErrInjected is the base error returned by an armed Injector once it
// fires (and, fail-stop, for every mutating operation afterwards).
var ErrInjected = errors.New("faultfs: injected fault")

// Mode selects how an armed Injector fails the chosen operation.
type Mode int

const (
	// FailError fails the operation cleanly: no bytes written, error
	// returned.
	FailError Mode = iota
	// FailTorn fails a Write after persisting only a prefix of the
	// buffer — the torn-tail case a crashed append leaves behind. For
	// non-write operations it behaves like FailError.
	FailTorn
	// FailENOSPC fails with an error wrapping syscall.ENOSPC.
	FailENOSPC
)

// Injector wraps an FS and fails the Nth mutating operation. Every
// Create, Rename, Remove, Truncate, SyncDir, File.Write and File.Sync
// counts as one injection point; reads never fail. After firing the
// injector is sticky: all further mutating operations fail too,
// modeling a process that must fail-stop once durability is in doubt
// (the fsyncgate lesson — retrying a failed fsync silently drops
// writes on most filesystems).
//
// Typical use: run a workload once unarmed and read Ops() to learn the
// injection-point count, then re-run it once per point with
// Arm(k, mode) and crash at the first error.
type Injector struct {
	inner FS

	mu     sync.Mutex
	ops    int
	failAt int
	mode   Mode
	fired  bool
}

// NewInjector wraps fs with an unarmed injector (counts operations,
// never fails).
func NewInjector(fs FS) *Injector { return &Injector{inner: fs} }

// Arm schedules the failAt-th mutating operation from now (1-based) to
// fail with the given mode, and resets the operation counter.
func (in *Injector) Arm(failAt int, mode Mode) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops = 0
	in.failAt = failAt
	in.mode = mode
	in.fired = false
}

// Ops reports the number of mutating operations observed since the
// injector was created or last armed.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Fired reports whether the armed fault has triggered.
func (in *Injector) Fired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// step counts one mutating operation and reports whether it must fail
// and how.
func (in *Injector) step() (fail bool, mode Mode) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fired {
		return true, FailError
	}
	in.ops++
	if in.failAt > 0 && in.ops == in.failAt {
		in.fired = true
		return true, in.mode
	}
	return false, 0
}

// injectErr builds the error for a failed operation.
func injectErr(op string, mode Mode) error {
	if mode == FailENOSPC {
		return fmt.Errorf("%w: %s: %w", ErrInjected, op, syscall.ENOSPC)
	}
	return fmt.Errorf("%w: %s", ErrInjected, op)
}

// Create implements FS.
func (in *Injector) Create(name string) (File, error) {
	if fail, mode := in.step(); fail {
		return nil, injectErr("create "+name, mode)
	}
	f, err := in.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{in: in, f: f, name: name}, nil
}

// Open implements FS (never fails by injection).
func (in *Injector) Open(name string) (File, error) { return in.inner.Open(name) }

// Rename implements FS.
func (in *Injector) Rename(oldname, newname string) error {
	if fail, mode := in.step(); fail {
		return injectErr("rename "+oldname, mode)
	}
	return in.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if fail, mode := in.step(); fail {
		return injectErr("remove "+name, mode)
	}
	return in.inner.Remove(name)
}

// MkdirAll implements FS (not an injection point: directory creation
// happens once at startup, before any data is at risk).
func (in *Injector) MkdirAll(name string) error { return in.inner.MkdirAll(name) }

// ReadDir implements FS (never fails by injection).
func (in *Injector) ReadDir(name string) ([]string, error) { return in.inner.ReadDir(name) }

// Truncate implements FS.
func (in *Injector) Truncate(name string, size int64) error {
	if fail, mode := in.step(); fail {
		return injectErr("truncate "+name, mode)
	}
	return in.inner.Truncate(name, size)
}

// SyncDir implements FS.
func (in *Injector) SyncDir(name string) error {
	if fail, mode := in.step(); fail {
		return injectErr("syncdir "+name, mode)
	}
	return in.inner.SyncDir(name)
}

// Size implements FS (never fails by injection).
func (in *Injector) Size(name string) (int64, error) { return in.inner.Size(name) }

type injectFile struct {
	in   *Injector
	f    File
	name string
}

// Read implements io.Reader (never fails by injection).
func (g *injectFile) Read(p []byte) (int, error) { return g.f.Read(p) }

// Write implements io.Writer; FailTorn persists a prefix first.
func (g *injectFile) Write(p []byte) (int, error) {
	if fail, mode := g.in.step(); fail {
		if mode == FailTorn && len(p) > 1 {
			n, _ := g.f.Write(p[:len(p)/2])
			return n, injectErr("write "+g.name, mode)
		}
		return 0, injectErr("write "+g.name, mode)
	}
	return g.f.Write(p)
}

// Sync implements File.
func (g *injectFile) Sync() error {
	if fail, mode := g.in.step(); fail {
		return injectErr("sync "+g.name, mode)
	}
	return g.f.Sync()
}

// Close implements io.Closer (never fails by injection).
func (g *injectFile) Close() error { return g.f.Close() }
