package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"sort"
	"sync"
)

// MemFS is an in-memory FS with an explicit crash model. It tracks two
// views of every file:
//
//   - the volatile view: what reads observe while the process lives —
//     every write is immediately visible;
//   - the durable view: what survives Crash — file contents as of the
//     last successful Sync, and directory entries (creations, renames,
//     removals) as of the last SyncDir on the parent.
//
// Crash discards the volatile view: files whose directory entry was
// never SyncDir'd vanish entirely; surviving files revert to their
// last-synced contents; un-dirsynced renames roll back to the old
// name. Create over an existing file pessimistically truncates the
// durable view too (the truncate may reach disk before any new data),
// which is exactly what makes a non-atomic save visibly destroy the
// previous good image under the crash oracle.
//
// Directories themselves are modeled as durable on creation; only file
// entries within them are volatile. That keeps the model focused on
// the failure class the durability layer must defend against
// (un-synced data and entries) without simulating full dentry trees.
type MemFS struct {
	mu      sync.Mutex
	dirs    map[string]bool
	live    map[string]*memInode // volatile namespace
	durable map[string]*memInode // crash-surviving namespace
}

// memInode carries a file's volatile contents and the prefix of them
// made durable by Sync.
type memInode struct {
	data      []byte
	persisted []byte
}

// NewMemFS returns an empty MemFS whose root directory "." exists.
func NewMemFS() *MemFS {
	return &MemFS{
		dirs:    map[string]bool{".": true, "/": true},
		live:    map[string]*memInode{},
		durable: map[string]*memInode{},
	}
}

type memHandle struct {
	fs  *MemFS
	ino *memInode
	pos int
	ro  bool
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if !m.dirs[parentOf(name)] {
		return nil, &fs.PathError{Op: "create", Path: name, Err: fs.ErrNotExist}
	}
	if m.dirs[name] {
		return nil, &fs.PathError{Op: "create", Path: name, Err: fs.ErrInvalid}
	}
	ino := m.live[name]
	if ino == nil {
		ino = &memInode{}
		m.live[name] = ino
	} else {
		// O_TRUNC over an existing file: the truncation may hit disk at
		// any point before the next sync, so the pessimistic durable
		// image is the empty file.
		ino.data = nil
		ino.persisted = nil
	}
	return &memHandle{fs: m, ino: ino}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.live[clean(name)]
	if ino == nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memHandle{fs: m, ino: ino, ro: true}, nil
}

// Rename implements FS. The moved entry is volatile until SyncDir.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = clean(oldname), clean(newname)
	ino := m.live[oldname]
	if ino == nil {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	if !m.dirs[parentOf(newname)] {
		return &fs.PathError{Op: "rename", Path: newname, Err: fs.ErrNotExist}
	}
	delete(m.live, oldname)
	m.live[newname] = ino
	return nil
}

// Remove implements FS. The removal is volatile until SyncDir.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if m.live[name] == nil {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.live, name)
	return nil
}

// MkdirAll implements FS. Directories are durable on creation (see the
// type comment for the modeling choice).
func (m *MemFS) MkdirAll(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	for p := name; ; p = parentOf(p) {
		if m.live[p] != nil {
			return &fs.PathError{Op: "mkdir", Path: p, Err: fs.ErrInvalid}
		}
		m.dirs[p] = true
		if p == parentOf(p) || parentOf(p) == "." || parentOf(p) == "/" {
			break
		}
	}
	m.dirs["."] = true
	m.dirs["/"] = true
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(name string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if !m.dirs[name] {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrNotExist}
	}
	var names []string
	for p := range m.live {
		if childOf(name, p) {
			names = append(names, baseOf(p))
		}
	}
	for p := range m.dirs {
		if childOf(name, p) {
			names = append(names, baseOf(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Truncate implements FS. Like OS.Truncate it makes the shortened
// length durable immediately.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.live[clean(name)]
	if ino == nil {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(ino.data)) {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrInvalid}
	}
	ino.data = ino.data[:size]
	if int64(len(ino.persisted)) > size {
		ino.persisted = ino.persisted[:size]
	}
	return nil
}

// SyncDir implements FS: every live entry of the directory becomes
// durable (pointing at its current inode), and durably recorded
// entries that were removed or renamed away are durably forgotten.
func (m *MemFS) SyncDir(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if !m.dirs[name] {
		return &fs.PathError{Op: "syncdir", Path: name, Err: fs.ErrNotExist}
	}
	for p := range m.durable {
		if childOf(name, p) && m.live[p] == nil {
			delete(m.durable, p)
		}
	}
	for p, ino := range m.live {
		if childOf(name, p) {
			m.durable[p] = ino
		}
	}
	return nil
}

// Size implements FS.
func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.live[clean(name)]
	if ino == nil {
		return 0, &fs.PathError{Op: "size", Path: name, Err: fs.ErrNotExist}
	}
	return int64(len(ino.data)), nil
}

// Crash simulates a machine crash: the volatile namespace is replaced
// by the durable one and every surviving file reverts to its
// last-synced contents. Handles open across a Crash keep writing to
// orphaned inodes; tests are expected to discard them.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live = map[string]*memInode{}
	names := make([]string, 0, len(m.durable))
	for p := range m.durable {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		ino := m.durable[p]
		ino.data = append([]byte(nil), ino.persisted...)
		m.live[p] = ino
	}
}

// DumpDurable lists the durable namespace with per-file durable sizes,
// for test diagnostics.
func (m *MemFS) DumpDurable() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for p := range m.durable {
		names = append(names, p)
	}
	sort.Strings(names)
	s := ""
	for _, p := range names {
		s += fmt.Sprintf("%s (%d bytes)\n", p, len(m.durable[p].persisted))
	}
	return s
}

// Read implements io.Reader over the volatile contents.
func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.pos >= len(h.ino.data) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[h.pos:])
	h.pos += n
	return n, nil
}

// Write appends to the volatile contents.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.ro {
		return 0, fs.ErrInvalid
	}
	h.ino.data = append(h.ino.data, p...)
	return len(p), nil
}

// Sync makes the volatile contents durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.ro {
		return nil
	}
	h.ino.persisted = append([]byte(nil), h.ino.data...)
	return nil
}

// Close implements io.Closer.
func (h *memHandle) Close() error { return nil }
