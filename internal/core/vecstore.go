package core

import "fmt"

// vecstore is a packed array of imprint vectors. The paper points out
// that a column with low sampled cardinality needs only 8-, 16- or 32-bit
// imprint vectors instead of full 64-bit ones (Section 2.4); storing them
// at their true width keeps the reported index sizes honest. Vectors are
// packed inside a []uint64 arena; widths always divide 64, so a vector
// never straddles a word boundary.
//
// All geometry is powers of two, so indexing compiles to shifts and
// masks — get() is on the query hot path (one call per index probe).
type vecstore struct {
	words []uint64
	n     int    // number of vectors stored
	width uint   // vector width in bits: 8, 16, 32 or 64
	mask  uint64 // width low bits set

	perShift uint // log2(vectors per word)
	slotMask uint // vectors per word - 1
	bitShift uint // log2(width)
}

func newVecstore(widthBits int) vecstore {
	var bitShift uint
	switch widthBits {
	case 8:
		bitShift = 3
	case 16:
		bitShift = 4
	case 32:
		bitShift = 5
	case 64:
		bitShift = 6
	default:
		panic(fmt.Sprintf("core: invalid imprint vector width %d", widthBits))
	}
	var mask uint64
	if widthBits == 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1) << uint(widthBits)) - 1
	}
	perShift := 6 - bitShift // 64/width = 2^(6-bitShift)
	return vecstore{
		width:    uint(widthBits),
		mask:     mask,
		perShift: perShift,
		slotMask: (1 << perShift) - 1,
		bitShift: bitShift,
	}
}

// perWord returns how many vectors fit in one backing word.
func (s *vecstore) perWord() int { return 1 << s.perShift }

// append stores vector v (which must fit in the configured width).
func (s *vecstore) append(v uint64) {
	if v&^s.mask != 0 {
		panic(fmt.Sprintf("core: imprint vector %#x exceeds width %d", v, s.width))
	}
	slot := uint(s.n) & s.slotMask
	if slot == 0 {
		s.words = append(s.words, 0)
	}
	s.words[len(s.words)-1] |= v << (slot << s.bitShift)
	s.n++
}

// get returns vector i.
func (s *vecstore) get(i int) uint64 {
	w := s.words[uint(i)>>s.perShift]
	shift := (uint(i) & s.slotMask) << s.bitShift
	return (w >> shift) & s.mask
}

// set overwrites vector i (used by saturation marking, Section 4.2).
func (s *vecstore) set(i int, v uint64) {
	if v&^s.mask != 0 {
		panic(fmt.Sprintf("core: imprint vector %#x exceeds width %d", v, s.width))
	}
	shift := (uint(i) & s.slotMask) << s.bitShift
	w := &s.words[uint(i)>>s.perShift]
	*w = (*w &^ (s.mask << shift)) | v<<shift
}

// last returns the most recently appended vector. It returns 0 when the
// store is empty; imprint vectors of real cachelines are never zero (every
// value sets at least one bin bit), so 0 doubles as "no previous vector".
func (s *vecstore) last() uint64 {
	if s.n == 0 {
		return 0
	}
	return s.get(s.n - 1)
}

// len returns the number of stored vectors.
func (s *vecstore) len() int { return s.n }

// sizeBytes returns the payload footprint: n vectors at width bits each,
// rounded up to whole words as allocated.
func (s *vecstore) sizeBytes() int64 { return int64(len(s.words)) * 8 }
