package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRangeIDsAgainstScan(t *testing.T) {
	cases := map[string][]int64{
		"sorted":    sortedCol(3000),
		"random":    randomCol(3000, 100000, 1),
		"clustered": clusteredCol(3000, 2),
		"skewed":    skewedCol(3000, 3),
		"constant":  constantCol(3000),
		"partial":   randomCol(3001, 5000, 4),
		"tiny":      randomCol(3, 50, 5),
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for name, col := range cases {
		ix := Build(col, Options{Seed: 11})
		lo, hi := col[0], col[0]
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for q := 0; q < 50; q++ {
			span := hi - lo + 1
			low := lo + rng.Int64N(span)
			high := low + rng.Int64N(span-(low-lo))
			got, _ := ix.RangeIDs(low, high, nil)
			equalIDs(t, got, scanIDs(col, low, high), name)
		}
		// Degenerate ranges.
		if got, _ := ix.RangeIDs(5, 5, nil); len(got) != 0 {
			t.Errorf("%s: empty range returned %d ids", name, len(got))
		}
		// Full range.
		got, _ := ix.RangeIDs(lo, hi+1, nil)
		equalIDs(t, got, scanIDs(col, lo, hi+1), name+"/full")
	}
}

func TestRangeIDsFloats(t *testing.T) {
	col := uniformFloats(5000, 13)
	ix := Build(col, Options{Seed: 13})
	rng := rand.New(rand.NewPCG(1, 1))
	for q := 0; q < 50; q++ {
		low := rng.Float64() * 1e6
		high := low + rng.Float64()*(1e6-low)
		got, _ := ix.RangeIDs(low, high, nil)
		equalIDs(t, got, scanIDs(col, low, high), "floats")
	}
}

func TestRangeIDsUint8(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	col := make([]uint8, 7777)
	for i := range col {
		col[i] = uint8(rng.IntN(256))
	}
	ix := Build(col, Options{Seed: 5})
	if ix.ValuesPerCacheline() != 64 {
		t.Fatalf("vpc = %d, want 64", ix.ValuesPerCacheline())
	}
	for q := 0; q < 40; q++ {
		low := uint8(rng.IntN(250))
		high := low + uint8(rng.IntN(int(255-low))) + 1
		got, _ := ix.RangeIDs(low, high, nil)
		equalIDs(t, got, scanIDs(col, low, high), "uint8")
	}
}

func TestClosedRange(t *testing.T) {
	col := []int32{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 20, 20}
	ix := Build(col, Options{Seed: 1})
	got, _ := ix.RangeIDsClosed(20, 40, nil)
	want := []uint32{1, 2, 3, 10, 11}
	equalIDs(t, got, want, "closed")
	// Closed differs from half-open at the upper border.
	gotHalf, _ := ix.RangeIDs(20, 40, nil)
	wantHalf := []uint32{1, 2, 10, 11}
	equalIDs(t, gotHalf, wantHalf, "half-open")
}

func TestAtLeastLessThan(t *testing.T) {
	col := randomCol(2000, 1000, 21)
	ix := Build(col, Options{Seed: 3})
	got, _ := ix.AtLeast(700, nil)
	var want []uint32
	for i, v := range col {
		if v >= 700 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "atleast")

	got, _ = ix.LessThan(300, nil)
	want = nil
	for i, v := range col {
		if v < 300 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "lessthan")
}

func TestPointQuery(t *testing.T) {
	col := randomCol(5000, 50, 31)
	ix := Build(col, Options{Seed: 31})
	for _, target := range []int64{0, 17, 49} {
		got, _ := ix.PointIDs(target, nil)
		var want []uint32
		for i, v := range col {
			if v == target {
				want = append(want, uint32(i))
			}
		}
		equalIDs(t, got, want, "point")
	}
	// Absent value.
	if got, _ := ix.PointIDs(999, nil); len(got) != 0 {
		t.Errorf("absent point query returned %d ids", len(got))
	}
}

func TestCountRangeMatchesRangeIDs(t *testing.T) {
	col := clusteredCol(6000, 17)
	ix := Build(col, Options{Seed: 17})
	rng := rand.New(rand.NewPCG(4, 4))
	for q := 0; q < 30; q++ {
		low := int64(rng.IntN(1000000))
		high := low + int64(rng.IntN(100000))
		ids, _ := ix.RangeIDs(low, high, nil)
		cnt, _ := ix.CountRange(low, high)
		if uint64(len(ids)) != cnt {
			t.Fatalf("CountRange = %d, RangeIDs len = %d", cnt, len(ids))
		}
	}
}

func TestResultBufferReuse(t *testing.T) {
	col := randomCol(1000, 100, 41)
	ix := Build(col, Options{Seed: 41})
	buf := make([]uint32, 0, 1024)
	got1, _ := ix.RangeIDs(0, 50, buf)
	want := scanIDs(col, 0, 50)
	equalIDs(t, got1, want, "reused buffer")
	// Reusing the same backing buffer again.
	got2, _ := ix.RangeIDs(0, 50, got1[:0])
	equalIDs(t, got2, want, "reused twice")
}

// The innermask optimization must never change results, only skip work.
func TestInnermaskSkipsComparisonsOnWideRanges(t *testing.T) {
	col := sortedCol(80000)
	ix := Build(col, Options{Seed: 2})
	lo, hi := col[0], col[len(col)-1]
	// A range covering almost everything: most bins are fully inside, so
	// most cachelines should be emitted without comparisons.
	ids, st := ix.RangeIDs(lo, hi+1, nil)
	if len(ids) != len(col) {
		t.Fatalf("full range returned %d ids", len(ids))
	}
	if st.CachelinesExact == 0 {
		t.Error("no exact cachelines on a full-range query over sorted data")
	}
	if st.Comparisons >= uint64(len(col)) {
		t.Errorf("comparisons = %d, want far fewer than %d", st.Comparisons, len(col))
	}
}

func TestStatsAccounting(t *testing.T) {
	col := randomCol(8000, 1<<40, 19)
	ix := Build(col, Options{Seed: 19})
	_, st := ix.RangeIDs(0, 1<<39, nil)
	total := st.CachelinesExact + st.CachelinesScanned + st.CachelinesSkipped
	if total != uint64(ix.Cachelines()) {
		t.Errorf("cacheline accounting: %d+%d+%d != %d",
			st.CachelinesExact, st.CachelinesScanned, st.CachelinesSkipped, ix.Cachelines())
	}
	if st.Probes == 0 {
		t.Error("no probes recorded")
	}
	// Probes equal stored vectors visited plus one per repeat entry plus
	// pending; at minimum they cannot exceed total cachelines + 1.
	if st.Probes > uint64(ix.Cachelines())+1 {
		t.Errorf("probes %d exceed cachelines %d", st.Probes, ix.Cachelines())
	}
}

func TestImprintsFilterSkewedDataWhereZonemapsFail(t *testing.T) {
	// Section 2.2: each cacheline holds min, max and a random value —
	// zonemaps are useless, imprints still filter. Verify imprints skip
	// cachelines for a range between the extremes that hits few bins.
	// The narrow range sits mid-domain, away from the bins holding the
	// per-cacheline min (0) and max (1<<40), so it masks only a bin or
	// two out of 64 and most cachelines' random values miss it.
	col := skewedCol(64000, 23)
	ix := Build(col, Options{Seed: 23})
	low, high := int64(1)<<39, int64(1)<<39+int64(1)<<34
	_, st := ix.RangeIDs(low, high, nil)
	if st.CachelinesSkipped == 0 {
		t.Error("imprints skipped no cachelines on skewed data")
	}
	got, _ := ix.RangeIDs(low, high, nil)
	equalIDs(t, got, scanIDs(col, low, high), "skewed-narrow")
}

func TestQueryPendingTailOnly(t *testing.T) {
	// Column smaller than one cacheline: all values pending.
	col := []int64{5, 10, 15}
	ix := Build(col, Options{Seed: 1})
	got, st := ix.RangeIDs(6, 16, nil)
	equalIDs(t, got, []uint32{1, 2}, "pending only")
	if st.Probes != 1 {
		t.Errorf("probes = %d, want 1", st.Probes)
	}
	// A range below the smallest sampled value maps to the empty overflow
	// bin 0, so the pending vector misses the mask entirely.
	got, st = ix.RangeIDs(0, 5, nil)
	if len(got) != 0 {
		t.Errorf("miss query returned ids: %v", got)
	}
	if st.CachelinesSkipped != 1 {
		t.Errorf("pending cacheline not skipped: %+v", st)
	}
}

// Property: RangeIDs equals the scan oracle for arbitrary ranges over
// arbitrary int16 columns (narrow type exercises 32-value cachelines).
func TestQuickRangeEqualsScan(t *testing.T) {
	f := func(seed uint64, a, b int16) bool {
		rng := rand.New(rand.NewPCG(seed, 0xbeef))
		n := 1 + rng.IntN(4000)
		col := make([]int16, n)
		card := 1 + rng.IntN(5000)
		for i := range col {
			col[i] = int16(rng.IntN(card) - card/2)
		}
		ix := Build(col, Options{Seed: seed})
		if a > b {
			a, b = b, a
		}
		got, _ := ix.RangeIDs(a, b, nil)
		want := scanIDs(col, a, b)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: results are always sorted and unique.
func TestQuickResultsSortedUnique(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xcafe))
		col := uniformFloats(1+rng.IntN(3000), seed)
		ix := Build(col, Options{Seed: seed})
		low := rng.Float64() * 1e6
		high := low + rng.Float64()*1e5
		ids, _ := ix.RangeIDs(low, high, nil)
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMasksProperties(t *testing.T) {
	col := randomCol(4000, 1000000, 29)
	ix := Build(col, Options{Seed: 29})
	rng := rand.New(rand.NewPCG(2, 8))
	for q := 0; q < 200; q++ {
		low := int64(rng.IntN(1000000))
		high := low + int64(rng.IntN(1000000-int(low))+1)
		p := pred[int64]{low: low, high: high, lowIncl: true}
		mask, inner := ix.masks(&p)
		// Inner is always a subset of mask.
		if inner&^mask != 0 {
			t.Fatalf("inner %#x not subset of mask %#x", inner, mask)
		}
		// Every column value inside the range must have its bin in mask
		// (no false negatives).
		for _, v := range col[:200] {
			if v >= low && v < high {
				if mask&(1<<uint(ix.hist.Bin(v))) == 0 {
					t.Fatalf("value %d in range but bin %d unmasked", v, ix.hist.Bin(v))
				}
			}
			// Every value whose bin is in inner must qualify.
			if inner&(1<<uint(ix.hist.Bin(v))) != 0 {
				if !(v >= low && v < high) {
					t.Fatalf("value %d has inner bin %d but fails predicate [%d,%d)",
						v, ix.hist.Bin(v), low, high)
				}
			}
		}
	}
}

func TestUnboundedMasksCoverEverything(t *testing.T) {
	col := randomCol(2000, 10000, 37)
	ix := Build(col, Options{Seed: 37})
	p := pred[int64]{lowUnb: true, highUnb: true}
	mask, inner := ix.masks(&p)
	full := uint64(1)<<uint(ix.Bins()) - 1
	if ix.Bins() == 64 {
		full = ^uint64(0)
	}
	if mask != full {
		t.Errorf("unbounded mask = %#x, want %#x", mask, full)
	}
	if inner != full {
		t.Errorf("unbounded inner = %#x, want %#x", inner, full)
	}
}
