package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBuildParallelIdenticalToSequential(t *testing.T) {
	cols := map[string][]int64{
		"clustered": clusteredCol(50000, 1),
		"random":    randomCol(50000, 1<<40, 2),
		"sorted":    sortedCol(50000),
		"constant":  constantCol(50000),
		"skewed":    skewedCol(50000, 3),
		"partial":   randomCol(50003, 100000, 4),
	}
	for name, col := range cols {
		seq := Build(col, Options{Seed: 77})
		for _, workers := range []int{2, 3, 4, 8} {
			par := BuildParallel(col, Options{Seed: 77}, workers)
			equalIndexes(t, seq, par, name)
		}
	}
}

func TestBuildParallelSmallColumnFallsBack(t *testing.T) {
	col := randomCol(20, 100, 5)
	seq := Build(col, Options{Seed: 1})
	par := BuildParallel(col, Options{Seed: 1}, 8)
	equalIndexes(t, seq, par, "small fallback")
}

func TestBuildParallelSingleWorker(t *testing.T) {
	col := clusteredCol(10000, 6)
	seq := Build(col, Options{Seed: 2})
	par := BuildParallel(col, Options{Seed: 2}, 1)
	equalIndexes(t, seq, par, "one worker")
}

func TestBuildParallelEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildParallel([]int64{}, Options{}, 4)
}

func TestBuildParallelQueries(t *testing.T) {
	col := clusteredCol(30000, 7)
	par := BuildParallel(col, Options{Seed: 3}, 6)
	rng := rand.New(rand.NewPCG(1, 1))
	for q := 0; q < 30; q++ {
		low := int64(rng.IntN(1000000))
		high := low + int64(rng.IntN(100000))
		got, _ := par.RangeIDs(low, high, nil)
		equalIDs(t, got, scanIDs(col, low, high), "parallel query")
	}
}

// Property: parallel equals sequential for arbitrary sizes and worker
// counts, including run-heavy columns that stress boundary stitching.
func TestQuickParallelEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xff))
		n := 64 + rng.IntN(20000)
		col := make([]int64, n)
		// Run-heavy data: long stretches of a single value.
		v := int64(rng.IntN(100))
		for i := range col {
			if rng.IntN(200) == 0 {
				v = int64(rng.IntN(100))
			}
			col[i] = v
		}
		workers := 2 + rng.IntN(7)
		seq := Build(col, Options{Seed: seed})
		par := BuildParallel(col, Options{Seed: seed}, workers)
		if seq.n != par.n || seq.committed != par.committed ||
			seq.pendingVec != par.pendingVec || seq.pendingCount != par.pendingCount {
			return false
		}
		if len(seq.dict) != len(par.dict) || seq.vecs.n != par.vecs.n {
			return false
		}
		for i := range seq.dict {
			if seq.dict[i] != par.dict[i] {
				return false
			}
		}
		for i := 0; i < seq.vecs.n; i++ {
			if seq.vecs.get(i) != par.vecs.get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
