package core

import "sort"

// Multi-range queries: a disjunction of ranges over the SAME column is
// answered in a single pass by OR-ing the per-range masks — one probe
// per imprint vector regardless of how many ranges the predicate has.
// This is the imprint analogue of the IN-list handling of bitmap
// indexes and is strictly cheaper than evaluating each range separately
// and unioning ids.

// MultiRangeIDs returns ascending ids of values falling in any of the
// half-open [low, high) ranges. Overlapping or unsorted ranges are
// allowed.
func (ix *Index[V]) MultiRangeIDs(ranges [][2]V, res []uint32) ([]uint32, QueryStats) {
	var st QueryStats
	if len(ranges) == 0 {
		return res, st
	}
	// Union of per-range masks; inner bits are valid if the bin is fully
	// inside at least one range.
	var mask, inner uint64
	preds := make([]pred[V], 0, len(ranges))
	for _, r := range ranges {
		p := pred[V]{low: r[0], high: r[1], lowIncl: true}
		m, in := ix.masks(&p)
		mask |= m
		inner |= in
		preds = append(preds, p)
	}
	match := func(v V) bool {
		for i := range preds {
			if preds[i].match(v) {
				return true
			}
		}
		return false
	}

	col := ix.col
	vpc := ix.vpc
	emit := func(vec uint64, fromCl, cls int) {
		if vec&mask == 0 {
			st.CachelinesSkipped += uint64(cls)
			return
		}
		from := fromCl * vpc
		to := (fromCl + cls) * vpc
		if to > ix.n {
			to = ix.n
		}
		if vec&^inner == 0 {
			st.CachelinesExact += uint64(cls)
			for id := from; id < to; id++ {
				res = append(res, uint32(id))
			}
			return
		}
		st.CachelinesScanned += uint64(cls)
		for id := from; id < to; id++ {
			st.Comparisons++
			if match(col[id]) {
				res = append(res, uint32(id))
			}
		}
	}

	iVec, cl := 0, 0
	for _, e := range ix.dict {
		cnt := int(e.Count())
		if e.Repeat() {
			st.Probes++
			emit(ix.vecs.get(iVec), cl, cnt)
			iVec++
			cl += cnt
		} else {
			for j := 0; j < cnt; j++ {
				st.Probes++
				emit(ix.vecs.get(iVec), cl, 1)
				iVec++
				cl++
			}
		}
	}
	if ix.pendingCount > 0 {
		st.Probes++
		emit(ix.pendingVec, ix.committed, 1)
	}
	return res, st
}

// InSetIDs returns ascending ids of values equal to any element of set
// (an IN-list), answered in one index pass. Duplicate set elements are
// harmless.
func (ix *Index[V]) InSetIDs(set []V, res []uint32) ([]uint32, QueryStats) {
	var st QueryStats
	if len(set) == 0 {
		return res, st
	}
	sorted := append([]V(nil), set...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// One mask with the bin bit of every set member. Equality predicates
	// are never "inner" (a bin may hold neighbors), so every matching
	// cacheline is checked — but membership testing uses binary search
	// over the sorted set.
	var mask uint64
	for _, v := range sorted {
		mask |= 1 << uint(ix.hist.Bin(v))
	}
	member := func(v V) bool {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
		return i < len(sorted) && sorted[i] == v
	}

	col := ix.col
	vpc := ix.vpc
	emit := func(vec uint64, fromCl, cls int) {
		if vec&mask == 0 {
			st.CachelinesSkipped += uint64(cls)
			return
		}
		from := fromCl * vpc
		to := (fromCl + cls) * vpc
		if to > ix.n {
			to = ix.n
		}
		st.CachelinesScanned += uint64(cls)
		for id := from; id < to; id++ {
			st.Comparisons++
			if member(col[id]) {
				res = append(res, uint32(id))
			}
		}
	}

	iVec, cl := 0, 0
	for _, e := range ix.dict {
		cnt := int(e.Count())
		if e.Repeat() {
			st.Probes++
			emit(ix.vecs.get(iVec), cl, cnt)
			iVec++
			cl += cnt
		} else {
			for j := 0; j < cnt; j++ {
				st.Probes++
				emit(ix.vecs.get(iVec), cl, 1)
				iVec++
				cl++
			}
		}
	}
	if ix.pendingCount > 0 {
		st.Probes++
		emit(ix.pendingVec, ix.committed, 1)
	}
	return res, st
}

// InSetCachelines reduces an IN-list to candidate cachelines for late
// materialization.
func (ix *Index[V]) InSetCachelines(set []V) ([]CandidateRun, QueryStats) {
	return ix.InSetCachelinesInto(nil, set)
}

// InSetCachelinesInto is InSetCachelines appending into dst.
func (ix *Index[V]) InSetCachelinesInto(dst []CandidateRun, set []V) ([]CandidateRun, QueryStats) {
	var st QueryStats
	runs := dst
	if len(set) == 0 {
		return runs, st
	}
	var mask uint64
	for _, v := range set {
		mask |= 1 << uint(ix.hist.Bin(v))
	}
	push := func(cl, cnt int) {
		if n := len(runs); n > 0 {
			last := &runs[n-1]
			if !last.Exact && last.Start+last.Count == uint32(cl) {
				last.Count += uint32(cnt)
				return
			}
		}
		runs = append(runs, CandidateRun{Start: uint32(cl), Count: uint32(cnt)})
	}
	iVec, cl := 0, 0
	for _, e := range ix.dict {
		cnt := int(e.Count())
		if e.Repeat() {
			st.Probes++
			if ix.vecs.get(iVec)&mask != 0 {
				st.CachelinesScanned += uint64(cnt)
				push(cl, cnt)
			} else {
				st.CachelinesSkipped += uint64(cnt)
			}
			iVec++
			cl += cnt
		} else {
			for j := 0; j < cnt; j++ {
				st.Probes++
				if ix.vecs.get(iVec)&mask != 0 {
					st.CachelinesScanned++
					push(cl, 1)
				} else {
					st.CachelinesSkipped++
				}
				iVec++
				cl++
			}
		}
	}
	if ix.pendingCount > 0 {
		st.Probes++
		if ix.pendingVec&mask != 0 {
			st.CachelinesScanned++
			push(ix.committed, 1)
		} else {
			st.CachelinesSkipped++
		}
	}
	return runs, st
}
