package core

import (
	"bytes"
	"testing"
)

// FuzzReadIndex hardens deserialization against arbitrary input: it must
// reject or load — never panic, never over-allocate absurdly.
func FuzzReadIndex(f *testing.F) {
	// Seed with a valid image and a few mutations.
	col := make([]int64, 100)
	for i := range col {
		col[i] = int64(i * 37 % 1000)
	}
	ix := Build(col, Options{Seed: 1})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CIMP"))
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIndex[int64](bytes.NewReader(data), col)
		if err != nil {
			return
		}
		// A successfully loaded index must answer queries without
		// panicking and within bounds.
		ids, _ := got.RangeIDs(0, 1000, nil)
		for _, id := range ids {
			if int(id) >= len(col) {
				t.Fatalf("id %d out of range", id)
			}
		}
	})
}

// FuzzRangeQuery checks the query path against the scan oracle for
// arbitrary column bytes and bounds.
func FuzzRangeQuery(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, int64(2), int64(7))
	f.Add([]byte{255, 0, 255, 0}, int64(-5), int64(300))
	f.Add([]byte{}, int64(0), int64(0))

	f.Fuzz(func(t *testing.T, data []byte, low, high int64) {
		if len(data) == 0 {
			return
		}
		col := make([]int64, len(data))
		for i, b := range data {
			col[i] = int64(b) * 7
		}
		ix := Build(col, Options{Seed: 42})
		got, _ := ix.RangeIDs(low, high, nil)
		want := scanIDs(col, low, high)
		if len(got) != len(want) {
			t.Fatalf("RangeIDs %d results, scan %d (low=%d high=%d)", len(got), len(want), low, high)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("id[%d] = %d, scan %d", i, got[i], want[i])
			}
		}
	})
}
