package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/column"
)

func TestAppendEqualsBulkBuild(t *testing.T) {
	full := clusteredCol(10000, 1)
	for _, split := range []int{1, 7, 8, 4096, 9999} {
		// Build over the prefix, then append the rest.
		incr := Build(full[:split], Options{Seed: 3})
		incr.Append(full)
		bulk := Build(full, Options{Seed: 3})
		// Histograms differ (sampled from different prefixes), so compare
		// dictionary/vectors only when sampling saw the same data; what
		// MUST agree regardless is query results.
		rng := rand.New(rand.NewPCG(1, 2))
		for q := 0; q < 20; q++ {
			low := int64(rng.IntN(1000000))
			high := low + int64(rng.IntN(100000))
			got, _ := incr.RangeIDs(low, high, nil)
			want, _ := bulk.RangeIDs(low, high, nil)
			equalIDs(t, got, want, "append-vs-bulk")
		}
		if incr.Len() != bulk.Len() || incr.Cachelines() != bulk.Cachelines() {
			t.Fatalf("split %d: geometry mismatch", split)
		}
	}
}

func TestAppendSameHistogramIsIdentical(t *testing.T) {
	// When the histogram is shared, incremental append must produce a
	// bit-identical index to the bulk build.
	full := clusteredCol(20000, 2)
	bulk := Build(full, Options{Seed: 9})
	incr := BuildWithHistogram(full[:777], bulk.Histogram(), Options{Seed: 9})
	incr.Append(full[:12345])
	incr.Append(full)
	equalIndexes(t, incr, bulk, "append-shared-hist")
}

func TestAppendManySmallBatches(t *testing.T) {
	full := randomCol(3000, 500, 3)
	bulk := Build(full, Options{Seed: 4})
	incr := BuildWithHistogram(full[:1], bulk.Histogram(), Options{Seed: 4})
	for i := 1; i < len(full); i += 13 {
		end := i + 13
		if end > len(full) {
			end = len(full)
		}
		incr.Append(full[:end])
	}
	equalIndexes(t, incr, bulk, "small-batches")
}

func TestAppendShorterPanics(t *testing.T) {
	ix := Build(randomCol(100, 10, 5), Options{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.Append(make([]int64, 50))
}

func TestAppendNeverTouchesExistingVectors(t *testing.T) {
	// Section 4.1's key claim. Snapshot the stored vectors, append, and
	// verify the prefix is unchanged.
	full := clusteredCol(20000, 7)
	ix := Build(full[:10000], Options{Seed: 5})
	before := make([]uint64, ix.StoredVectors())
	for i := range before {
		before[i] = ix.vecs.get(i)
	}
	dictBefore := append([]DictEntry(nil), ix.dict...)
	ix.Append(full)
	for i, v := range before {
		if ix.vecs.get(i) != v {
			t.Fatalf("stored vector %d changed after append", i)
		}
	}
	// All dictionary entries except possibly the last are untouched.
	for i := 0; i < len(dictBefore)-1; i++ {
		if ix.dict[i] != dictBefore[i] {
			t.Fatalf("dict entry %d changed after append", i)
		}
	}
}

func TestMarkUpdatedKeepsQueriesSound(t *testing.T) {
	col := randomCol(4000, 100000, 11)
	ix := Build(col, Options{Seed: 11})
	rng := rand.New(rand.NewPCG(6, 6))
	// Simulate in-place updates: change values, mark the imprint.
	for u := 0; u < 200; u++ {
		id := rng.IntN(len(col))
		nv := int64(rng.IntN(100000))
		col[id] = nv
		ix.MarkUpdated(id, nv)
	}
	for q := 0; q < 40; q++ {
		low := int64(rng.IntN(90000))
		high := low + int64(rng.IntN(10000))
		got, _ := ix.RangeIDs(low, high, nil)
		equalIDs(t, got, scanIDs(col, low, high), "after updates")
	}
	if ix.ExtraBits() == 0 {
		t.Error("no extra bits recorded despite 200 updates")
	}
}

func TestMarkUpdatedPendingTail(t *testing.T) {
	col := randomCol(1003, 1000, 13)
	ix := Build(col, Options{Seed: 13})
	// Update a value in the trailing partial cacheline.
	col[1002] = 999999 // outside the sampled domain: overflow bin
	ix.MarkUpdated(1002, 999999)
	got, _ := ix.RangeIDs(999998, 1000000, nil)
	equalIDs(t, got, []uint32{1002}, "pending update")
}

func TestMarkUpdatedOutOfRangePanics(t *testing.T) {
	ix := Build(randomCol(100, 10, 1), Options{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.MarkUpdated(100, 5)
}

func TestSaturationMonotone(t *testing.T) {
	col := clusteredCol(8000, 17)
	ix := Build(col, Options{Seed: 17})
	s0 := ix.Saturation()
	if s0 <= 0 || s0 >= 1 {
		t.Fatalf("initial saturation %v out of (0,1)", s0)
	}
	rng := rand.New(rand.NewPCG(8, 8))
	prev := s0
	for round := 0; round < 5; round++ {
		for u := 0; u < 300; u++ {
			id := rng.IntN(len(col))
			ix.MarkUpdated(id, int64(rng.IntN(1000000)))
		}
		s := ix.Saturation()
		if s < prev {
			t.Fatalf("saturation decreased: %v -> %v", prev, s)
		}
		prev = s
	}
	if prev <= s0 {
		t.Errorf("saturation did not grow: %v -> %v", s0, prev)
	}
}

func TestNeedsRebuild(t *testing.T) {
	// Sorted data yields sparse imprints (1-2 bits each), so spraying
	// random update marks visibly saturates them.
	col := sortedCol(8000)
	ix := Build(col, Options{Seed: 1})
	if ix.NeedsRebuild(0.5, 0, 0.1) {
		t.Error("fresh index should not need rebuild")
	}
	// Delta-driven trigger.
	if !ix.NeedsRebuild(0.5, 800, 0.1) {
		t.Error("10% delta should trigger rebuild")
	}
	// Saturation-driven trigger: spray updates across all bins.
	rng := rand.New(rand.NewPCG(9, 9))
	for u := 0; u < 4000; u++ {
		ix.MarkUpdated(rng.IntN(len(col)), col[rng.IntN(len(col))])
	}
	if !ix.NeedsRebuild(0.3, 0, 0) {
		t.Errorf("saturation %v with %d extra bits should trigger rebuild",
			ix.Saturation(), ix.ExtraBits())
	}
	fresh := ix.Rebuild()
	if fresh.ExtraBits() != 0 {
		t.Error("rebuilt index carries extra bits")
	}
	if fresh.Saturation() >= ix.Saturation() {
		t.Errorf("rebuild did not reduce saturation: %v -> %v",
			ix.Saturation(), fresh.Saturation())
	}
}

func TestRangeIDsDelta(t *testing.T) {
	col := randomCol(5000, 10000, 19)
	ix := Build(col, Options{Seed: 19})
	delta := column.NewDelta[int64]()
	rng := rand.New(rand.NewPCG(10, 10))
	// Track expected state in a shadow copy. Note Delta ids may exceed
	// the base length (freshly inserted rows).
	shadow := make(map[uint32]int64)
	for i, v := range col {
		shadow[uint32(i)] = v
	}
	for u := 0; u < 300; u++ {
		switch rng.IntN(3) {
		case 0:
			id := uint32(rng.IntN(len(col)))
			delta.Delete(id)
			delete(shadow, id)
		case 1:
			id := uint32(len(col) + rng.IntN(500))
			v := int64(rng.IntN(10000))
			delta.Insert(id, v)
			shadow[id] = v
		case 2:
			id := uint32(rng.IntN(len(col)))
			v := int64(rng.IntN(10000))
			delta.Update(id, v)
			shadow[id] = v
		}
	}
	for q := 0; q < 30; q++ {
		low := int64(rng.IntN(9000))
		high := low + int64(rng.IntN(1000))
		got, _ := ix.RangeIDsDelta(low, high, delta, nil)
		var want []uint32
		for id := uint32(0); id < uint32(len(col)+500); id++ {
			if v, ok := shadow[id]; ok && v >= low && v < high {
				want = append(want, id)
			}
		}
		equalIDs(t, got, want, "delta query")
	}
}

func TestRangeIDsDeltaNil(t *testing.T) {
	col := randomCol(1000, 100, 23)
	ix := Build(col, Options{Seed: 23})
	got, _ := ix.RangeIDsDelta(0, 50, nil, nil)
	equalIDs(t, got, scanIDs(col, 0, 50), "nil delta")
}

// Property: appending in two arbitrary chunks equals bulk building, for
// query purposes, when the histogram is shared.
func TestQuickAppendEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xadd))
		n := 16 + rng.IntN(2000)
		col := make([]int64, n)
		for i := range col {
			col[i] = int64(rng.IntN(5000))
		}
		cut := 1 + rng.IntN(n-1)
		bulk := Build(col, Options{Seed: seed})
		incr := BuildWithHistogram(col[:cut], bulk.Histogram(), Options{Seed: seed})
		incr.Append(col)
		if incr.n != bulk.n || incr.committed != bulk.committed ||
			incr.pendingVec != bulk.pendingVec || incr.pendingCount != bulk.pendingCount {
			return false
		}
		if len(incr.dict) != len(bulk.dict) || incr.vecs.n != bulk.vecs.n {
			return false
		}
		for i := range incr.dict {
			if incr.dict[i] != bulk.dict[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
