package core

import "math/bits"

// Min returns the smallest value in the column using the imprint to
// restrict the search: the global minimum must live in a cacheline
// whose vector sets the lowest truly-occupied bin, so only cachelines
// carrying the candidate bin bit are read. Imprint bits are a superset
// of the occupied bins (updates only add bits, Section 4.2), so after
// scanning the candidate cachelines the result is accepted only if some
// scanned value actually falls into a bin at or below the candidate —
// otherwise the bit was stale and the search advances to the next
// occupied bin. On clustered, unmodified data the first candidate bin
// wins and a tiny fraction of the column is touched.
func (ix *Index[V]) Min() (V, QueryStats) {
	return ix.extreme(true)
}

// Max returns the largest value in the column, symmetric to Min.
func (ix *Index[V]) Max() (V, QueryStats) {
	return ix.extreme(false)
}

func (ix *Index[V]) extreme(min bool) (V, QueryStats) {
	var st QueryStats
	// Pass 1: the union of all vectors gives the candidate bins.
	var all uint64
	ix.runs(func(vec uint64, _ int) bool {
		st.Probes++
		all |= vec
		return true
	})
	if ix.pendingCount > 0 {
		st.Probes++
		all |= ix.pendingVec
	}
	var best V
	if all == 0 {
		return best, st // unreachable for a built index
	}

	col := ix.col
	vpc := ix.vpc
	found := false
	// scanMatching reads every cacheline whose vector intersects bitMask
	// and folds its values into best.
	scanMatching := func(bitMask uint64) {
		consider := func(fromCl, cls int) {
			from := fromCl * vpc
			to := (fromCl + cls) * vpc
			if to > ix.n {
				to = ix.n
			}
			st.CachelinesScanned += uint64(cls)
			for id := from; id < to; id++ {
				st.Comparisons++
				v := col[id]
				if !found || (min && v < best) || (!min && v > best) {
					best = v
					found = true
				}
			}
		}
		iVec, cl := 0, 0
		for _, e := range ix.dict {
			cnt := int(e.Count())
			if e.Repeat() {
				st.Probes++
				if ix.vecs.get(iVec)&bitMask != 0 {
					consider(cl, cnt)
				} else {
					st.CachelinesSkipped += uint64(cnt)
				}
				iVec++
				cl += cnt
			} else {
				for j := 0; j < cnt; j++ {
					st.Probes++
					if ix.vecs.get(iVec)&bitMask != 0 {
						consider(cl, 1)
					} else {
						st.CachelinesSkipped++
					}
					iVec++
					cl++
				}
			}
		}
		if ix.pendingCount > 0 {
			st.Probes++
			if ix.pendingVec&bitMask != 0 {
				consider(ix.committed, 1)
			} else {
				st.CachelinesSkipped++
			}
		}
	}

	// Walk candidate bins from the extreme end. The scan for bin b is
	// conclusive once some scanned value truly lies at or beyond bin b
	// (unscanned cachelines cannot hold anything more extreme: a missing
	// bit guarantees an empty bin). Stale bits — possible after
	// MarkUpdated — just push the walk to the next occupied bin.
	remaining := all
	var tried uint64
	for remaining != 0 {
		var b int
		if min {
			b = bits.TrailingZeros64(remaining)
		} else {
			b = 63 - bits.LeadingZeros64(remaining)
		}
		bit := uint64(1) << uint(b)
		remaining &^= bit
		tried |= bit
		scanMatching(bit)
		if found {
			bb := ix.hist.Bin(best)
			if (min && bb <= b) || (!min && bb >= b) {
				return best, st
			}
		}
	}
	// All bits were stale beyond their bins (possible only after heavy
	// update marking); best still holds the extreme of everything
	// scanned, which at this point covers every non-empty cacheline
	// carrying any occupied bit — i.e. the whole column.
	return best, st
}
