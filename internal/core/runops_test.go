package core

import (
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func runsOf(pairs ...[3]uint32) []CandidateRun {
	var out []CandidateRun
	for _, p := range pairs {
		out = append(out, CandidateRun{Start: p[0], Count: p[1], Exact: p[2] == 1})
	}
	return out
}

func TestUnionRunsBasic(t *testing.T) {
	a := runsOf([3]uint32{0, 5, 1}, [3]uint32{20, 5, 0})
	b := runsOf([3]uint32{3, 10, 0})
	got := UnionRuns(a, b)
	// [0,3) exact, [3,5) exact|inexact = exact, [5,13) inexact, [20,25) inexact.
	want := runsOf([3]uint32{0, 5, 1}, [3]uint32{5, 8, 0}, [3]uint32{20, 5, 0})
	if !slices.Equal(got, want) {
		t.Fatalf("UnionRuns = %+v, want %+v", got, want)
	}
}

func TestUnionRunsDisjointAndEmpty(t *testing.T) {
	a := runsOf([3]uint32{0, 2, 0})
	b := runsOf([3]uint32{5, 2, 1})
	got := UnionRuns(a, b)
	want := runsOf([3]uint32{0, 2, 0}, [3]uint32{5, 2, 1})
	if !slices.Equal(got, want) {
		t.Fatalf("UnionRuns = %+v, want %+v", got, want)
	}
	if got := UnionRuns(nil, b); !slices.Equal(got, b) {
		t.Fatalf("union with empty = %+v", got)
	}
	if got := UnionRuns(a, nil); !slices.Equal(got, a) {
		t.Fatalf("union with empty = %+v", got)
	}
	if got := UnionRuns(nil, nil); len(got) != 0 {
		t.Fatalf("union of empties = %+v", got)
	}
}

func TestDiffRunsBasic(t *testing.T) {
	a := runsOf([3]uint32{0, 10, 1})
	b := runsOf([3]uint32{2, 3, 1}, [3]uint32{7, 2, 0})
	got := DiffRuns(a, b)
	// [0,2) survives exact; [2,5) dropped (b exact); [5,7) exact;
	// [7,9) inexact (b candidates but not exact); [9,10) exact.
	want := runsOf([3]uint32{0, 2, 1}, [3]uint32{5, 2, 1}, [3]uint32{7, 2, 0}, [3]uint32{9, 1, 1})
	if !slices.Equal(got, want) {
		t.Fatalf("DiffRuns = %+v, want %+v", got, want)
	}
}

func TestDiffRunsNoOverlap(t *testing.T) {
	a := runsOf([3]uint32{0, 3, 0})
	b := runsOf([3]uint32{10, 3, 1})
	if got := DiffRuns(a, b); !slices.Equal(got, a) {
		t.Fatalf("DiffRuns = %+v", got)
	}
	if got := DiffRuns(a, nil); !slices.Equal(got, a) {
		t.Fatalf("DiffRuns empty b = %+v", got)
	}
	if got := DiffRuns(nil, b); len(got) != 0 {
		t.Fatalf("DiffRuns empty a = %+v", got)
	}
}

// model-based checks: per-cacheline maps.
func runModel(runs []CandidateRun) map[uint32]bool {
	m := map[uint32]bool{}
	for _, r := range runs {
		for i := uint32(0); i < r.Count; i++ {
			m[r.Start+i] = r.Exact
		}
	}
	return m
}

func randomRuns(rng *rand.Rand) []CandidateRun {
	var runs []CandidateRun
	cl := uint32(0)
	for k := 0; k < 1+rng.IntN(6); k++ {
		cl += uint32(rng.IntN(4))
		cnt := uint32(1 + rng.IntN(6))
		exact := rng.IntN(2) == 0
		if n := len(runs); n > 0 && runs[n-1].Start+runs[n-1].Count == cl && runs[n-1].Exact == exact {
			runs[n-1].Count += cnt
		} else {
			runs = append(runs, CandidateRun{Start: cl, Count: cnt, Exact: exact})
		}
		cl += cnt
	}
	return runs
}

func wellFormed(runs []CandidateRun) bool {
	for i, r := range runs {
		if r.Count == 0 {
			return false
		}
		if i > 0 {
			prev := runs[i-1]
			if r.Start < prev.Start+prev.Count {
				return false
			}
			if r.Start == prev.Start+prev.Count && r.Exact == prev.Exact {
				return false // should have merged
			}
		}
	}
	return true
}

func TestQuickUnionRunsModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xabcd))
		a, b := randomRuns(rng), randomRuns(rng)
		got := UnionRuns(a, b)
		if !wellFormed(got) {
			return false
		}
		ma, mb, mg := runModel(a), runModel(b), runModel(got)
		for cl, ea := range ma {
			eb, inB := mb[cl]
			want := ea || (inB && eb)
			if g, ok := mg[cl]; !ok || g != want {
				return false
			}
		}
		for cl, eb := range mb {
			ea, inA := ma[cl]
			want := eb || (inA && ea)
			if g, ok := mg[cl]; !ok || g != want {
				return false
			}
		}
		for cl := range mg {
			if _, inA := ma[cl]; !inA {
				if _, inB := mb[cl]; !inB {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDiffRunsModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xdcba))
		a, b := randomRuns(rng), randomRuns(rng)
		got := DiffRuns(a, b)
		if !wellFormed(got) {
			return false
		}
		mg := runModel(got)
		ma, mb := runModel(a), runModel(b)
		for cl, ea := range ma {
			eb, inB := mb[cl]
			switch {
			case !inB: // survives unchanged
				if g, ok := mg[cl]; !ok || g != ea {
					return false
				}
			case eb: // dropped
				if _, ok := mg[cl]; ok {
					return false
				}
			default: // survives inexact
				if g, ok := mg[cl]; !ok || g {
					return false
				}
			}
		}
		for cl := range mg {
			if _, inA := ma[cl]; !inA {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
