package core

// Inter-column candidate-list operations (Section 4.2 sketches unions
// and differences applied directly to cacheline dictionaries; this file
// provides them over candidate run lists, which is the same granularity
// after query evaluation). Together with IntersectRuns they make
// arbitrary AND/OR/AND-NOT predicate trees evaluable before any value
// is materialized.

// UnionRuns merges two sorted candidate run lists, keeping cachelines
// present in either. A cacheline is Exact in the union if it is exact
// on at least one side (every value qualifies for that disjunct, hence
// for the disjunction).
func UnionRuns(a, b []CandidateRun) []CandidateRun {
	return UnionRunsInto(nil, a, b)
}

// UnionRunsInto is UnionRuns appending into dst, which must not alias a
// or b.
func UnionRunsInto(dst, a, b []CandidateRun) []CandidateRun {
	out := dst
	push := func(start, count uint32, exact bool) {
		if count == 0 {
			return
		}
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Exact == exact && last.Start+last.Count == start {
				last.Count += count
				return
			}
		}
		out = append(out, CandidateRun{Start: start, Count: count, Exact: exact})
	}
	// Sweep cacheline space in order, emitting segment by segment.
	i, j := 0, 0
	var cur uint32 // next cacheline not yet emitted
	for i < len(a) || j < len(b) {
		// Find the earliest run start at or after cur.
		switch {
		case i >= len(a):
			r := clip(b[j], cur)
			push(r.Start, r.Count, r.Exact)
			cur = r.Start + r.Count
			j++
		case j >= len(b):
			r := clip(a[i], cur)
			push(r.Start, r.Count, r.Exact)
			cur = r.Start + r.Count
			i++
		default:
			ra, rb := clip(a[i], cur), clip(b[j], cur)
			aEnd, bEnd := ra.Start+ra.Count, rb.Start+rb.Count
			if ra.Count == 0 {
				i++
				continue
			}
			if rb.Count == 0 {
				j++
				continue
			}
			if aEnd <= rb.Start {
				push(ra.Start, ra.Count, ra.Exact)
				cur = aEnd
				i++
				continue
			}
			if bEnd <= ra.Start {
				push(rb.Start, rb.Count, rb.Exact)
				cur = bEnd
				j++
				continue
			}
			// Overlapping. Emit the disjoint prefix, then the shared
			// piece with OR-ed exactness.
			lo := min(ra.Start, rb.Start)
			hi := max(ra.Start, rb.Start)
			if lo < hi {
				if ra.Start < rb.Start {
					push(lo, hi-lo, ra.Exact)
				} else {
					push(lo, hi-lo, rb.Exact)
				}
			}
			sharedEnd := min(aEnd, bEnd)
			push(hi, sharedEnd-hi, ra.Exact || rb.Exact)
			cur = sharedEnd
			if aEnd == sharedEnd {
				i++
			}
			if bEnd == sharedEnd {
				j++
			}
		}
	}
	return out
}

// clip trims the front of r so it starts at or after cur.
func clip(r CandidateRun, cur uint32) CandidateRun {
	if r.Start >= cur {
		return r
	}
	cut := cur - r.Start
	if cut >= r.Count {
		return CandidateRun{Start: cur, Count: 0, Exact: r.Exact}
	}
	return CandidateRun{Start: cur, Count: r.Count - cut, Exact: r.Exact}
}

// DiffRuns returns the cachelines of a that may hold rows NOT excluded
// by b, for evaluating "P AND NOT Q" at cacheline granularity:
//
//   - cachelines of a absent from b survive unchanged;
//   - cachelines present in both survive as inexact (some rows may
//     match Q, so values must be re-checked) UNLESS b is exact there —
//     every row matches Q — in which case the cacheline is dropped.
func DiffRuns(a, b []CandidateRun) []CandidateRun {
	return DiffRunsInto(nil, a, b)
}

// DiffRunsInto is DiffRuns appending into dst, which must not alias a
// or b.
func DiffRunsInto(dst, a, b []CandidateRun) []CandidateRun {
	out := dst
	push := func(start, count uint32, exact bool) {
		if count == 0 {
			return
		}
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Exact == exact && last.Start+last.Count == start {
				last.Count += count
				return
			}
		}
		out = append(out, CandidateRun{Start: start, Count: count, Exact: exact})
	}
	j := 0
	for _, ra := range a {
		cur := ra.Start
		end := ra.Start + ra.Count
		for cur < end {
			// Advance b past runs that end before cur.
			for j < len(b) && b[j].Start+b[j].Count <= cur {
				j++
			}
			if j >= len(b) || b[j].Start >= end {
				// No overlap ahead within this run.
				push(cur, end-cur, ra.Exact)
				break
			}
			rb := b[j]
			if rb.Start > cur {
				push(cur, rb.Start-cur, ra.Exact)
				cur = rb.Start
			}
			ovEnd := min(end, rb.Start+rb.Count)
			if !rb.Exact {
				// Some rows of these cachelines may survive NOT Q.
				push(cur, ovEnd-cur, false)
			}
			cur = ovEnd
		}
	}
	return out
}
