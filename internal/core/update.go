package core

import (
	"math/bits"

	"repro/internal/column"
)

// Append extends the index over newly appended rows (Section 4.1: "data
// appends simply cause new imprint vectors to be appended to the end of
// the existing ones, without the need of accessing any of the previous
// imprint vectors"). col must be the complete column — the previously
// indexed prefix followed by the new rows; the index retains the new
// slice reference (the caller's append may have reallocated it).
//
// The histogram borders are NOT readjusted: the paper argues the
// overflow bins at both ends absorb outliers and only a dramatic
// distribution change would warrant a rebuild.
func (ix *Index[V]) Append(col []V) {
	if len(col) < ix.n {
		panic("core: Append column shorter than the indexed prefix")
	}
	ix.col = col
	ix.extend(col[ix.n:])
}

// MarkUpdated widens the imprint covering row id so that it also maps
// value v. This is the Section 4.2 treatment of in-place updates and
// mid-table insertions: deletions are ignored (imprints may yield false
// positives, never false negatives), while insertions set additional
// bits. Under compression the widened vector may be shared by a whole
// repeat run — conservative but correct. Repeated marking saturates the
// index; see Saturation and NeedsRebuild.
func (ix *Index[V]) MarkUpdated(id int, v V) {
	if id < 0 || id >= ix.n {
		panic("core: MarkUpdated id out of range")
	}
	bit := uint64(1) << uint(ix.hist.Bin(v))
	cl := id / ix.vpc
	if cl >= ix.committed {
		if ix.pendingVec&bit == 0 {
			ix.pendingVec |= bit
			ix.extraBits++
		}
		return
	}
	// Locate the stored vector covering cacheline cl.
	iVec, at := 0, 0
	for _, e := range ix.dict {
		cnt := int(e.Count())
		if cl < at+cnt {
			if !e.Repeat() {
				iVec += cl - at
			}
			old := ix.vecs.get(iVec)
			if old&bit == 0 {
				ix.vecs.set(iVec, old|bit)
				ix.extraBits++
			}
			return
		}
		at += cnt
		if e.Repeat() {
			iVec++
		} else {
			iVec += cnt
		}
	}
	panic("core: dictionary does not cover cacheline") // unreachable
}

// Saturation returns the mean fraction of set bits per stored imprint
// vector. A freshly built imprint over well-clustered data is sparse;
// update marking (MarkUpdated) only ever adds bits, so saturation grows
// monotonically toward 1, at which point the index filters nothing.
func (ix *Index[V]) Saturation() float64 {
	if ix.vecs.len() == 0 && ix.pendingCount == 0 {
		return 0
	}
	var set, total uint64
	for i := 0; i < ix.vecs.len(); i++ {
		set += uint64(bits.OnesCount64(ix.vecs.get(i)))
		total += uint64(ix.hist.Bins)
	}
	if ix.pendingCount > 0 {
		set += uint64(bits.OnesCount64(ix.pendingVec))
		total += uint64(ix.hist.Bins)
	}
	return float64(set) / float64(total)
}

// ExtraBits returns how many imprint bits were added by MarkUpdated
// since construction.
func (ix *Index[V]) ExtraBits() int { return ix.extraBits }

// NeedsRebuild applies the Section 4.2 heuristic: once updates have
// saturated the imprint (or the delta outgrows deltaRatio of the base),
// the secondary index should be discarded and rebuilt during the next
// scan. saturationLimit and deltaRatio are fractions in (0, 1]; typical
// values are 0.5 and 0.1.
func (ix *Index[V]) NeedsRebuild(saturationLimit float64, deltaLen int, deltaRatio float64) bool {
	if saturationLimit > 0 && ix.Saturation() >= saturationLimit && ix.extraBits > 0 {
		return true
	}
	if deltaRatio > 0 && ix.n > 0 && float64(deltaLen)/float64(ix.n) >= deltaRatio {
		return true
	}
	return false
}

// Rebuild reconstructs the index from its current column reference,
// resampling the histogram. It returns the fresh index (the receiver is
// left untouched so callers can swap atomically).
func (ix *Index[V]) Rebuild() *Index[V] {
	return Build(ix.col, ix.opts)
}

// RangeIDsDelta evaluates [low, high) against the base index and merges
// the pending delta (Section 4.2): deleted rows are removed, overridden
// and inserted rows are re-qualified against their current values.
func (ix *Index[V]) RangeIDsDelta(low, high V, delta *column.Delta[V], res []uint32) ([]uint32, QueryStats) {
	ids, st := ix.RangeIDs(low, high, res)
	if delta == nil || delta.Len() == 0 {
		return ids, st
	}
	merged := delta.Merge(ids, low, high)
	st.Comparisons += uint64(delta.Len())
	return merged, st
}
