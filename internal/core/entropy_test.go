package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEntropyBounds(t *testing.T) {
	cols := map[string][]int64{
		"sorted":    sortedCol(20000),
		"random":    randomCol(20000, 1<<40, 1),
		"clustered": clusteredCol(20000, 2),
		"skewed":    skewedCol(20000, 3),
		"constant":  constantCol(20000),
	}
	for name, col := range cols {
		ix := Build(col, Options{Seed: 1})
		e := ix.Entropy()
		if e < 0 || e > 1 {
			t.Errorf("%s: entropy %v out of [0,1]", name, e)
		}
	}
}

func TestEntropyOrderingAcrossRegimes(t *testing.T) {
	// The paper's qualitative result (Figure 3): random/uniform columns
	// have high entropy (~0.8), clustered walks low (~0.3), constant ~0.
	n := 50000
	eConst := Build(constantCol(n), Options{Seed: 1}).Entropy()
	eSorted := Build(sortedCol(n), Options{Seed: 1}).Entropy()
	eClustered := Build(clusteredCol(n, 2), Options{Seed: 1}).Entropy()
	eRandom := Build(randomCol(n, 1<<40, 3), Options{Seed: 1}).Entropy()
	if eConst != 0 {
		t.Errorf("constant entropy = %v, want 0", eConst)
	}
	if !(eSorted < eClustered && eClustered < eRandom) {
		t.Errorf("entropy ordering violated: sorted %v, clustered %v, random %v",
			eSorted, eClustered, eRandom)
	}
	if eRandom < 0.5 {
		t.Errorf("uniform random entropy %v unexpectedly low", eRandom)
	}
	if eSorted > 0.2 {
		t.Errorf("sorted entropy %v unexpectedly high", eSorted)
	}
}

func TestEntropySingleCacheline(t *testing.T) {
	// One cacheline: no transitions, entropy 0.
	ix := Build([]int64{1, 2, 3, 4, 5, 6, 7, 8}, Options{Seed: 1})
	if e := ix.Entropy(); e != 0 {
		t.Errorf("single-cacheline entropy = %v, want 0", e)
	}
}

func TestEntropyIncludesPendingTail(t *testing.T) {
	// Two "cachelines" where the second is partial and very different:
	// entropy must be nonzero.
	col := []int64{1, 1, 1, 1, 1, 1, 1, 1, 1 << 40, 1 << 41, 1 << 42}
	ix := Build(col, Options{Seed: 1})
	if e := ix.Entropy(); e == 0 {
		t.Error("entropy ignored the pending tail")
	}
}

// Property: entropy is always within [0,1] — the edit distance between
// two vectors never exceeds the sum of their popcounts.
func TestQuickEntropyBounds(t *testing.T) {
	f := func(seed uint64) bool {
		col := clusteredCol(500+int(seed%3000), seed)
		ix := Build(col, Options{Seed: seed})
		e := ix.Entropy()
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFingerprintRendering(t *testing.T) {
	col := []int64{10, 20, 30, 40, 50, 60, 70, 10, // cacheline 1
		10, 10, 10, 10, 10, 10, 10, 10} // cacheline 2
	ix := Build(col, Options{Seed: 1})
	fp := ix.Fingerprint(0)
	lines := strings.Split(strings.TrimRight(fp, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("fingerprint has %d lines, want 2:\n%s", len(lines), fp)
	}
	for _, ln := range lines {
		if len(ln) != ix.Bins() {
			t.Errorf("line width %d, want %d", len(ln), ix.Bins())
		}
		for _, c := range ln {
			if c != 'x' && c != '.' {
				t.Errorf("unexpected rune %q", c)
			}
		}
	}
	// Cacheline 1 has 7 distinct values = 7 bits; cacheline 2 exactly 1.
	if got := strings.Count(lines[0], "x"); got != 7 {
		t.Errorf("line 1 has %d x's, want 7", got)
	}
	if got := strings.Count(lines[1], "x"); got != 1 {
		t.Errorf("line 2 has %d x's, want 1", got)
	}
}

func TestFingerprintMaxLines(t *testing.T) {
	col := randomCol(10000, 100000, 4)
	ix := Build(col, Options{Seed: 4})
	fp := ix.Fingerprint(10)
	if got := strings.Count(fp, "\n"); got != 10 {
		t.Errorf("fingerprint emitted %d lines, want 10", got)
	}
}

func TestFingerprintIncludesPending(t *testing.T) {
	col := randomCol(12, 1000, 5) // 1 full cacheline + 4 pending
	ix := Build(col, Options{Seed: 5})
	fp := ix.Fingerprint(0)
	if got := strings.Count(fp, "\n"); got != 2 {
		t.Errorf("fingerprint emitted %d lines, want 2 (incl. pending)", got)
	}
}
