package core

import (
	"sync"
	"testing"
)

// An Index is immutable after construction (absent Append/MarkUpdated),
// so any number of goroutines may query it concurrently. This test is
// meaningful under -race.
func TestConcurrentQueries(t *testing.T) {
	col := clusteredCol(20000, 71)
	ix := Build(col, Options{Seed: 71})
	tl := NewTwoLevel(ix, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := make([]uint32, 0, len(col))
			for q := 0; q < 50; q++ {
				low := int64(q * 10000)
				high := low + 50000
				a, _ := ix.RangeIDs(low, high, res[:0])
				want := scanIDs(col, low, high)
				if len(a) != len(want) {
					t.Errorf("worker %d: %d ids, want %d", w, len(a), len(want))
					return
				}
				if _, st := ix.CountRange(low, high); st.Probes == 0 {
					t.Errorf("worker %d: no probes", w)
					return
				}
				b, _ := tl.RangeIDs(low, high, nil)
				if len(b) != len(want) {
					t.Errorf("worker %d: two-level %d ids, want %d", w, len(b), len(want))
					return
				}
				_ = ix.Entropy()
				runs, _ := ix.RangeCachelines(low, high)
				_ = TotalCachelines(runs)
			}
		}(w)
	}
	wg.Wait()
}

// BuildParallel's internal workers must not race; meaningful under -race.
func TestConcurrentBuilds(t *testing.T) {
	col := clusteredCol(30000, 72)
	var wg sync.WaitGroup
	results := make([]*Index[int64], 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = BuildParallel(col, Options{Seed: 5}, 4)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i].StoredVectors() != results[0].StoredVectors() {
			t.Errorf("build %d differs", i)
		}
	}
}
