package core

import (
	"sync"

	"repro/internal/coltype"
	"repro/internal/histogram"
)

// BuildParallel constructs the same index as Build but distributes the
// expensive per-value binning across `workers` goroutines (the paper's
// Section 7: "Column imprints can be extended to exploit multi-core
// platforms during the construction phase"). Each worker compresses a
// cacheline-aligned slice of the column against the shared histogram;
// the per-part compressed streams are then replayed, in order, into a
// master dictionary, which stitches runs across part boundaries so the
// result is bit-identical to the sequential build.
func BuildParallel[V coltype.Value](col []V, opts Options, workers int) *Index[V] {
	if len(col) == 0 {
		panic("core: cannot build an imprint over an empty column")
	}
	hist := histogram.Build(col, histogram.Options{
		SampleSize:      opts.SampleSize,
		Seed:            opts.Seed,
		CountDuplicates: opts.CountDuplicates,
	})
	clampBins(hist, opts.MaxBins)
	master := newWithHistogram(col, hist, opts)

	ncl := len(col) / master.vpc
	if workers <= 1 || ncl < workers*4 {
		master.extend(col)
		return master
	}

	// Partition at cacheline boundaries; the last part also absorbs the
	// partial tail.
	parts := make([]*Index[V], workers)
	per := ncl / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * per * master.vpc
		end := (w + 1) * per * master.vpc
		if w == workers-1 {
			end = len(col)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			sub := newWithHistogram(col[start:end], hist, opts)
			sub.extend(col[start:end])
			parts[w] = sub
		}(w, start, end)
	}
	wg.Wait()

	// Replay the per-part compressed streams into the master dictionary.
	for _, part := range parts {
		part.runs(func(vec uint64, count int) bool {
			master.commitRun(vec, count)
			return true
		})
	}
	last := parts[workers-1]
	master.pendingVec, master.pendingCount = last.pendingVec, last.pendingCount
	master.n = len(col)
	return master
}
