package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestTwoLevelMatchesBase(t *testing.T) {
	cols := map[string][]int64{
		"clustered": clusteredCol(40000, 1),
		"random":    randomCol(40000, 1<<30, 2),
		"sorted":    sortedCol(40000),
		"partial":   clusteredCol(40005, 3),
		"tiny":      randomCol(5, 10, 4),
		"oneblock":  randomCol(64, 1000, 5),
	}
	rng := rand.New(rand.NewPCG(2, 2))
	for name, col := range cols {
		base := Build(col, Options{Seed: 21})
		for _, bs := range []int{1, 4, 32, 1000} {
			tl := NewTwoLevel(base, bs)
			for q := 0; q < 20; q++ {
				low := int64(rng.IntN(1 << 30))
				high := low + int64(rng.IntN(1<<25))
				got, _ := tl.RangeIDs(low, high, nil)
				want, _ := base.RangeIDs(low, high, nil)
				equalIDs(t, got, want, name)
			}
		}
	}
}

func TestTwoLevelBlockCount(t *testing.T) {
	col := randomCol(8000, 100000, 6) // 1000 cachelines
	base := Build(col, Options{Seed: 1})
	tl := NewTwoLevel(base, 100)
	if tl.Blocks() != 10 {
		t.Errorf("Blocks = %d, want 10", tl.Blocks())
	}
	if tl.BlockSize() != 100 {
		t.Errorf("BlockSize = %d", tl.BlockSize())
	}
	if tl.Base() != base {
		t.Error("Base() does not return the underlying index")
	}
	if tl.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}

func TestTwoLevelDefaultBlockSize(t *testing.T) {
	col := randomCol(8000, 1000, 7)
	tl := NewTwoLevel(Build(col, Options{Seed: 1}), 0)
	if tl.BlockSize() != DefaultBlockSize {
		t.Errorf("BlockSize = %d, want default %d", tl.BlockSize(), DefaultBlockSize)
	}
}

func TestTwoLevelSkipsBlocksOnWalkData(t *testing.T) {
	// The second level pays off on data with block-scale locality but
	// cacheline-scale variation: consecutive imprints differ (so the
	// dictionary cannot run-length compress them and the base index
	// probes every cacheline), yet blocks cover a narrow value region
	// (so a selective query prunes whole blocks). A coarse random walk
	// has exactly that shape.
	rng := rand.New(rand.NewPCG(3, 3))
	col := make([]int64, 80000) // 10000 cachelines
	v := int64(1 << 29)
	for i := range col {
		v += int64(rng.IntN(10001)) - 5000
		col[i] = v
	}
	base := Build(col, Options{Seed: 2})
	tl := NewTwoLevel(base, 64)
	lo, _ := col[0], col[0]
	for _, x := range col {
		if x < lo {
			lo = x
		}
	}
	low, high := lo+1000, lo+30000 // narrow interior range
	_, stBase := base.RangeIDs(low, high, nil)
	gotTL, stTL := tl.RangeIDs(low, high, nil)
	equalIDs(t, gotTL, scanIDs(col, low, high), "two-level walk")
	if stTL.Probes >= stBase.Probes {
		t.Errorf("two-level probes %d not fewer than base %d", stTL.Probes, stBase.Probes)
	}
}

func TestTwoLevelPendingOwnBlock(t *testing.T) {
	// Committed cachelines fill blocks exactly; the pending tail opens a
	// fresh block.
	col := randomCol(8*4+3, 100, 8) // 4 cachelines + 3 pending values
	base := Build(col, Options{Seed: 1})
	tl := NewTwoLevel(base, 4)
	if tl.Blocks() != 2 {
		t.Fatalf("Blocks = %d, want 2", tl.Blocks())
	}
	got, _ := tl.RangeIDs(0, 100, nil)
	equalIDs(t, got, scanIDs(col, 0, 100), "pending block")
}

// Property: two-level results equal base results for arbitrary geometry.
func TestQuickTwoLevelEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x2e))
		n := 1 + rng.IntN(5000)
		col := make([]int64, n)
		for i := range col {
			col[i] = int64(rng.IntN(10000))
		}
		base := Build(col, Options{Seed: seed})
		tl := NewTwoLevel(base, 1+rng.IntN(50))
		low := int64(rng.IntN(10000))
		high := low + int64(rng.IntN(3000))
		got, _ := tl.RangeIDs(low, high, nil)
		want, _ := base.RangeIDs(low, high, nil)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
