package core

import "iter"

// EvaluateOr evaluates a disjunction of range predicates with late
// materialization: the per-conjunct candidate cacheline lists are
// unioned, and rows of non-exact cachelines are checked against the
// residual predicates (a row qualifies if any disjunct accepts it).
// All conjuncts must cover columns of identical geometry.
func EvaluateOr(res []uint32, conjs ...Conjunct) ([]uint32, QueryStats) {
	if len(conjs) == 0 {
		return res, QueryStats{}
	}
	var st QueryStats
	vpc0, n0 := conjs[0].Geometry()
	runs, s := conjs[0].Runs()
	st.Add(s)
	for _, c := range conjs[1:] {
		vpc, n := c.Geometry()
		if vpc != vpc0 || n != n0 {
			panic("core: disjunction over misaligned columns")
		}
		r, s := c.Runs()
		st.Add(s)
		runs = UnionRuns(runs, r)
	}
	checks := make([]CheckFunc, len(conjs))
	for i, c := range conjs {
		checks[i] = c.Check()
	}
	for _, r := range runs {
		from := int(r.Start) * vpc0
		to := (int(r.Start) + int(r.Count)) * vpc0
		if to > n0 {
			to = n0
		}
		if r.Exact {
			for id := from; id < to; id++ {
				res = append(res, uint32(id))
			}
			continue
		}
		for id := from; id < to; id++ {
			for _, c := range checks {
				st.Comparisons++
				if c(uint32(id)) {
					res = append(res, uint32(id))
					break
				}
			}
		}
	}
	return res, st
}

// EvaluateAndNot evaluates "p AND NOT q" with late materialization:
// q's exact cachelines are subtracted wholesale from p's candidates and
// the remainder is checked row by row.
func EvaluateAndNot(res []uint32, p, q Conjunct) ([]uint32, QueryStats) {
	var st QueryStats
	vpcP, nP := p.Geometry()
	vpcQ, nQ := q.Geometry()
	if vpcP != vpcQ || nP != nQ {
		panic("core: and-not over misaligned columns")
	}
	pr, s := p.Runs()
	st.Add(s)
	qr, s := q.Runs()
	st.Add(s)
	runs := DiffRuns(pr, qr)
	pCheck, qCheck := p.Check(), q.Check()
	for _, r := range runs {
		from := int(r.Start) * vpcP
		to := (int(r.Start) + int(r.Count)) * vpcP
		if to > nP {
			to = nP
		}
		for id := from; id < to; id++ {
			st.Comparisons++
			if !pCheck(uint32(id)) {
				continue
			}
			st.Comparisons++
			if qCheck(uint32(id)) {
				continue
			}
			res = append(res, uint32(id))
		}
	}
	return res, st
}

// Range returns a streaming iterator over the ascending ids of values
// in [low, high). It evaluates lazily — useful when the consumer may
// stop early (LIMIT-style queries) or wants to avoid materializing
// large id lists.
func (ix *Index[V]) Range(low, high V) iter.Seq[uint32] {
	return func(yield func(uint32) bool) {
		p := pred[V]{low: low, high: high, lowIncl: true}
		mask, inner := ix.masks(&p)
		col := ix.col
		vpc := ix.vpc

		emit := func(vec uint64, fromCl, cls int) bool {
			if vec&mask == 0 {
				return true
			}
			from := fromCl * vpc
			to := (fromCl + cls) * vpc
			if to > ix.n {
				to = ix.n
			}
			if vec&^inner == 0 {
				for id := from; id < to; id++ {
					if !yield(uint32(id)) {
						return false
					}
				}
				return true
			}
			for id := from; id < to; id++ {
				v := col[id]
				if v >= low && v < high {
					if !yield(uint32(id)) {
						return false
					}
				}
			}
			return true
		}

		iVec, cl := 0, 0
		for _, e := range ix.dict {
			cnt := int(e.Count())
			if e.Repeat() {
				if !emit(ix.vecs.get(iVec), cl, cnt) {
					return
				}
				iVec++
				cl += cnt
			} else {
				for j := 0; j < cnt; j++ {
					if !emit(ix.vecs.get(iVec), cl, 1) {
						return
					}
					iVec++
					cl++
				}
			}
		}
		if ix.pendingCount > 0 {
			emit(ix.pendingVec, ix.committed, 1)
		}
	}
}

// EstimateSelectivity predicts the fraction of rows in [low, high)
// using the equi-height assumption of the sampled histogram: each bin
// holds ~1/Bins of the rows; border bins contribute linearly
// interpolated fractions. It needs no data access and is the input to
// cost-based access path selection (package table).
func (ix *Index[V]) EstimateSelectivity(low, high V) float64 {
	if high <= low {
		return 0
	}
	h := ix.hist
	perBin := 1.0 / float64(h.Bins)
	total := 0.0
	for i := 0; i < h.Bins; i++ {
		lo, hi, loUnb, hiUnb := h.BinBounds(i)
		if !hiUnb && hi <= low {
			continue
		}
		if !loUnb && lo >= high {
			break
		}
		// Overlapping bin: estimate the covered fraction.
		if loUnb || hiUnb || hi <= lo {
			// Overflow or degenerate bins: count fully (conservative).
			total += perBin
			continue
		}
		width := float64(hi) - float64(lo)
		covLo := float64(lo)
		if float64(low) > covLo {
			covLo = float64(low)
		}
		covHi := float64(hi)
		if float64(high) < covHi {
			covHi = float64(high)
		}
		frac := (covHi - covLo) / width
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		total += perBin * frac
	}
	if total > 1 {
		total = 1
	}
	return total
}
