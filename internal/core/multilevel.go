package core

import "repro/internal/coltype"

// TwoLevel augments a column imprint with a second, coarser level: one
// summary vector per block of cachelines, computed as the bitwise OR of
// the block's imprint vectors. Queries probe the summary first and skip
// whole blocks whose summary misses the query mask, trading a little
// extra space for fewer probes on very large columns. This implements
// the "multi-level imprints organization" sketched as future work in
// Section 7 of the paper.
type TwoLevel[V coltype.Value] struct {
	base      *Index[V]
	blockSize int // cachelines per level-2 block
	l2        []uint64
	anchors   []cursor // stream position of each block's first cacheline
}

// cursor is a resumable position in the compressed per-cacheline vector
// stream.
type cursor struct {
	entry  int // dictionary entry index
	offset int // cachelines already consumed inside the entry
	vec    int // index of the entry's first stored vector
}

// advanceCursor moves c forward by k cachelines of ix's stream.
func advanceCursor[V coltype.Value](c *cursor, ix *Index[V], k int) {
	for k > 0 {
		e := ix.dict[c.entry]
		cnt := int(e.Count())
		left := cnt - c.offset
		step := k
		if step > left {
			step = left
		}
		c.offset += step
		k -= step
		if c.offset == cnt {
			c.entry++
			c.offset = 0
			if e.Repeat() {
				c.vec++
			} else {
				c.vec += cnt
			}
		}
	}
}

// cursorVec returns the imprint vector at c without advancing.
func cursorVec[V coltype.Value](c *cursor, ix *Index[V]) uint64 {
	e := ix.dict[c.entry]
	if e.Repeat() {
		return ix.vecs.get(c.vec)
	}
	return ix.vecs.get(c.vec + c.offset)
}

// DefaultBlockSize is a reasonable level-2 granularity: with 64-bit
// values one block summarizes 32 cachelines = 2 KiB of data.
const DefaultBlockSize = 32

// NewTwoLevel builds the second level over an existing index.
// blockSize <= 0 selects DefaultBlockSize.
func NewTwoLevel[V coltype.Value](base *Index[V], blockSize int) *TwoLevel[V] {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	t := &TwoLevel[V]{base: base, blockSize: blockSize}
	var cur cursor
	clInBlock := 0
	var acc uint64
	needAnchor := true
	base.decompress(func(_ int, vec uint64) bool {
		if needAnchor {
			t.anchors = append(t.anchors, cur)
			needAnchor = false
		}
		acc |= vec
		clInBlock++
		advanceCursor(&cur, base, 1)
		if clInBlock == blockSize {
			t.l2 = append(t.l2, acc)
			acc, clInBlock = 0, 0
			needAnchor = true
		}
		return true
	})
	if clInBlock > 0 {
		t.l2 = append(t.l2, acc)
	}
	if base.pendingCount > 0 {
		if clInBlock > 0 {
			// Fold the partial tail into the open last block.
			t.l2[len(t.l2)-1] |= base.pendingVec
		} else {
			// The tail starts its own block; its anchor is past the end
			// of the dictionary and is never dereferenced.
			t.anchors = append(t.anchors, cur)
			t.l2 = append(t.l2, base.pendingVec)
		}
	}
	return t
}

// Base returns the underlying single-level index.
func (t *TwoLevel[V]) Base() *Index[V] { return t.base }

// Blocks returns the number of level-2 blocks.
func (t *TwoLevel[V]) Blocks() int { return len(t.l2) }

// BlockSize returns the cachelines summarized per block.
func (t *TwoLevel[V]) BlockSize() int { return t.blockSize }

// SizeBytes returns the extra footprint of the second level.
func (t *TwoLevel[V]) SizeBytes() int64 {
	return int64(len(t.l2))*8 + int64(len(t.anchors))*24
}

// RangeIDs evaluates [low, high) like Index.RangeIDs but skips whole
// blocks via the level-2 summaries. Probes counts level-2 probes plus
// the level-1 probes inside surviving blocks.
func (t *TwoLevel[V]) RangeIDs(low, high V, res []uint32) ([]uint32, QueryStats) {
	var st QueryStats
	ix := t.base
	p := pred[V]{low: low, high: high, lowIncl: true}
	mask, inner := ix.masks(&p)
	col := ix.col
	vpc := ix.vpc
	total := ix.Cachelines()

	for b, summary := range t.l2 {
		st.Probes++
		firstCl := b * t.blockSize
		lastCl := firstCl + t.blockSize // exclusive
		if lastCl > total {
			lastCl = total
		}
		if summary&mask == 0 {
			st.CachelinesSkipped += uint64(lastCl - firstCl)
			continue
		}
		// Walk the block's cachelines through level 1.
		cur := t.anchors[b]
		for cl := firstCl; cl < lastCl; cl++ {
			var vec uint64
			if cl < ix.committed {
				vec = cursorVec(&cur, ix)
				advanceCursor(&cur, ix, 1)
			} else {
				vec = ix.pendingVec
			}
			st.Probes++
			if vec&mask == 0 {
				st.CachelinesSkipped++
				continue
			}
			from := cl * vpc
			to := from + vpc
			if to > ix.n {
				to = ix.n
			}
			if vec&^inner == 0 && to == from+vpc {
				st.CachelinesExact++
				for id := from; id < to; id++ {
					res = append(res, uint32(id))
				}
				continue
			}
			st.CachelinesScanned++
			for id := from; id < to; id++ {
				st.Comparisons++
				if p.match(col[id]) {
					res = append(res, uint32(id))
				}
			}
		}
	}
	return res, st
}
