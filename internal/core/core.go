// Package core implements column imprints, the secondary index structure
// of Sidirourgos & Kersten, "Column Imprints: A Secondary Index
// Structure", SIGMOD 2013.
//
// A column imprint summarizes each 64-byte cacheline of a column with a
// small bit vector: bit b is set iff at least one value in the cacheline
// falls into bin b of a sampled, approximately equi-height histogram of
// at most 64 bins (package histogram). Consecutive identical imprint
// vectors are run-length compressed through a cacheline dictionary
// (DictEntry). Range queries intersect a query bit mask with the imprint
// vectors to decide — at cacheline granularity — which parts of the
// column must be fetched; an inner mask detects cachelines whose every
// value is guaranteed to qualify so false-positive checks can be skipped
// (Algorithms 1–3 of the paper).
package core

import (
	"repro/internal/coltype"
	"repro/internal/histogram"
)

// Options configures index construction.
type Options struct {
	// SampleSize is the histogram sample size; 0 means the paper default
	// of 2048 values.
	SampleSize int
	// Seed drives the deterministic sampling.
	Seed uint64
	// CountDuplicates selects the equi-height binning variant that keeps
	// duplicate sample values (see histogram.Options).
	CountDuplicates bool
	// ValuesPerCacheline overrides how many values one imprint vector
	// covers. 0 derives it from the 64-byte cacheline: 64/sizeof(V).
	// The paper (Section 2.3) notes that the access granularity of the
	// engine — e.g. the vector size of a vectorized executor — is the
	// right unit; this knob models that choice and feeds the granularity
	// ablation benchmark.
	ValuesPerCacheline int
	// MaxBins caps the number of histogram bins (and imprint vector
	// bits) below the default 64. Must be 0 (default), 8, 16, 32 or 64.
	MaxBins int
}

// Index is a column imprints secondary index over a column of V values.
// The index references, but does not own, the indexed column.
type Index[V coltype.Value] struct {
	col  []V
	hist *histogram.Histogram[V]
	vecs vecstore
	dict []DictEntry

	vpc       int // values covered per imprint vector
	n         int // total values covered (committed + pending)
	committed int // full cachelines pushed through the dictionary

	// Trailing partial cacheline, kept out of the dictionary so appends
	// never have to rewrite committed state (Section 4.1).
	pendingVec   uint64
	pendingCount int

	// extraBits counts imprint bits set after construction by saturation
	// marking (Section 4.2); it drives the rebuild heuristic.
	extraBits int

	opts Options
}

// Build constructs a column imprints index over col (Algorithm 1,
// "imprints()"). It panics if col is empty.
func Build[V coltype.Value](col []V, opts Options) *Index[V] {
	if len(col) == 0 {
		panic("core: cannot build an imprint over an empty column")
	}
	hist := histogram.Build(col, histogram.Options{
		SampleSize:      opts.SampleSize,
		Seed:            opts.Seed,
		CountDuplicates: opts.CountDuplicates,
	})
	clampBins(hist, opts.MaxBins)
	ix := newWithHistogram(col, hist, opts)
	ix.extend(col)
	return ix
}

// BuildWithHistogram constructs an index using a pre-built histogram.
// The paper's bit-binned WAH comparator shares the imprint binning this
// way (Section 6: "the bins used are identical to those used for the
// imprints index").
func BuildWithHistogram[V coltype.Value](col []V, hist *histogram.Histogram[V], opts Options) *Index[V] {
	if len(col) == 0 {
		panic("core: cannot build an imprint over an empty column")
	}
	ix := newWithHistogram(col, hist, opts)
	ix.extend(col)
	return ix
}

func newWithHistogram[V coltype.Value](col []V, hist *histogram.Histogram[V], opts Options) *Index[V] {
	vpc := opts.ValuesPerCacheline
	if vpc <= 0 {
		vpc = coltype.ValuesPerCacheline[V]()
	}
	return &Index[V]{
		col:  col,
		hist: hist,
		vecs: newVecstore(vectorWidth(hist.Bins)),
		vpc:  vpc,
		opts: opts,
	}
}

// clampBins reduces a histogram to at most maxBins bins by merging the
// top bins into the last kept one.
func clampBins[V coltype.Value](h *histogram.Histogram[V], maxBins int) {
	switch maxBins {
	case 0, 8, 16, 32, 64:
	default:
		panic("core: MaxBins must be 0, 8, 16, 32 or 64")
	}
	if maxBins == 0 || h.Bins <= maxBins {
		return
	}
	mx := coltype.MaxOf[V]()
	for i := maxBins - 1; i < histogram.MaxBins; i++ {
		h.Borders[i] = mx
	}
	h.Bins = maxBins
}

// vectorWidth rounds a bin count up to a storable vector width.
func vectorWidth(bins int) int {
	switch {
	case bins <= 8:
		return 8
	case bins <= 16:
		return 16
	case bins <= 32:
		return 32
	default:
		return 64
	}
}

// extend feeds values into the imprint builder, committing a dictionary
// update per completed cacheline.
func (ix *Index[V]) extend(vals []V) {
	vec := ix.pendingVec
	fill := ix.pendingCount
	for _, v := range vals {
		vec |= 1 << uint(ix.hist.Bin(v))
		fill++
		if fill == ix.vpc {
			ix.commit(vec)
			vec, fill = 0, 0
		}
	}
	ix.pendingVec, ix.pendingCount = vec, fill
	ix.n += len(vals)
}

// Len returns the number of values the index covers.
func (ix *Index[V]) Len() int { return ix.n }

// Column returns the indexed column slice.
func (ix *Index[V]) Column() []V { return ix.col }

// Bins returns the number of histogram bins backing the imprint vectors.
func (ix *Index[V]) Bins() int { return ix.hist.Bins }

// Histogram exposes the bin borders (shared with the WAH comparator).
func (ix *Index[V]) Histogram() *histogram.Histogram[V] { return ix.hist }

// ValuesPerCacheline returns how many values one imprint vector covers.
func (ix *Index[V]) ValuesPerCacheline() int { return ix.vpc }

// Cachelines returns the total number of cachelines covered, including a
// trailing partial one.
func (ix *Index[V]) Cachelines() int {
	if ix.pendingCount > 0 {
		return ix.committed + 1
	}
	return ix.committed
}

// DictEntries returns the number of cacheline dictionary entries.
func (ix *Index[V]) DictEntries() int { return len(ix.dict) }

// StoredVectors returns the number of imprint vectors physically stored
// after compression.
func (ix *Index[V]) StoredVectors() int { return ix.vecs.len() }

// PendingVector returns the imprint vector of the trailing partial
// cacheline and the number of values it covers (0 if none).
func (ix *Index[V]) PendingVector() (vec uint64, count int) {
	return ix.pendingVec, ix.pendingCount
}

// SizeBytes returns the index memory footprint: packed imprint vectors,
// cacheline dictionary and histogram borders. This matches what the
// paper charges imprints for in Figures 5–7.
func (ix *Index[V]) SizeBytes() int64 {
	borders := int64(histogram.MaxBins * coltype.Width[V]())
	return ix.vecs.sizeBytes() + int64(len(ix.dict))*4 + borders
}

// CompressionRatio returns stored vectors / committed cachelines — the
// fraction of imprint vectors that survived run-length compression
// (lower is better; 1.0 means nothing compressed).
func (ix *Index[V]) CompressionRatio() float64 {
	if ix.committed == 0 {
		return 1
	}
	return float64(ix.vecs.len()) / float64(ix.committed)
}
