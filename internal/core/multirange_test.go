package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMultiRangeIDs(t *testing.T) {
	col := randomCol(6000, 100000, 51)
	ix := Build(col, Options{Seed: 51})
	ranges := [][2]int64{{1000, 5000}, {40000, 45000}, {90000, 95000}}
	got, st := ix.MultiRangeIDs(ranges, nil)
	var want []uint32
	for i, v := range col {
		for _, r := range ranges {
			if v >= r[0] && v < r[1] {
				want = append(want, uint32(i))
				break
			}
		}
	}
	equalIDs(t, got, want, "multi-range")
	if st.Probes == 0 {
		t.Error("no probes recorded")
	}
}

func TestMultiRangeOverlappingAndEmpty(t *testing.T) {
	col := randomCol(3000, 1000, 52)
	ix := Build(col, Options{Seed: 52})
	// Overlapping ranges must not duplicate ids.
	got, _ := ix.MultiRangeIDs([][2]int64{{100, 500}, {300, 700}}, nil)
	want := scanIDs(col, 100, 700)
	equalIDs(t, got, want, "overlapping")
	// No ranges -> no results.
	if got, _ := ix.MultiRangeIDs(nil, nil); len(got) != 0 {
		t.Error("empty range list returned ids")
	}
}

func TestMultiRangeSinglePassProbes(t *testing.T) {
	// The whole point: K ranges cost the same probes as one.
	col := clusteredCol(20000, 53)
	ix := Build(col, Options{Seed: 53})
	_, st1 := ix.RangeIDs(100000, 200000, nil)
	_, stK := ix.MultiRangeIDs([][2]int64{
		{100000, 200000}, {400000, 450000}, {700000, 800000},
	}, nil)
	if stK.Probes != st1.Probes {
		t.Errorf("multi-range probes %d != single-range probes %d", stK.Probes, st1.Probes)
	}
}

func TestInSetIDs(t *testing.T) {
	col := randomCol(8000, 50, 54) // low cardinality: IN-lists shine
	ix := Build(col, Options{Seed: 54})
	set := []int64{3, 17, 42, 17} // duplicate member on purpose
	got, _ := ix.InSetIDs(set, nil)
	var want []uint32
	for i, v := range col {
		if v == 3 || v == 17 || v == 42 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "in-set")
	// Empty set.
	if got, _ := ix.InSetIDs(nil, nil); len(got) != 0 {
		t.Error("empty set returned ids")
	}
	// All-absent set: every cacheline whose bins miss is skipped.
	got, st := ix.InSetIDs([]int64{999999}, nil)
	if len(got) != 0 {
		t.Errorf("absent member matched %d rows", len(got))
	}
	if st.CachelinesSkipped == 0 {
		t.Error("absent member skipped nothing")
	}
}

func TestInSetCachelinesConsistent(t *testing.T) {
	col := randomCol(5000, 30, 55)
	ix := Build(col, Options{Seed: 55})
	set := []int64{5, 12, 25}
	runs, _ := ix.InSetCachelines(set)
	member := map[int64]bool{5: true, 12: true, 25: true}
	check := func(id uint32) bool { return member[col[id]] }
	ids, _ := MaterializeRuns(runs, ix.ValuesPerCacheline(), ix.Len(), nil, check)
	want, _ := ix.InSetIDs(set, nil)
	equalIDs(t, ids, want, "in-set runs")
}

// Property: MultiRangeIDs equals unioning per-range scans.
func TestQuickMultiRangeEqualsUnion(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x517))
		n := 100 + rng.IntN(3000)
		col := make([]int64, n)
		for i := range col {
			col[i] = int64(rng.IntN(10000))
		}
		ix := Build(col, Options{Seed: seed})
		k := 1 + rng.IntN(4)
		ranges := make([][2]int64, k)
		inAny := func(v int64) bool {
			for _, r := range ranges {
				if v >= r[0] && v < r[1] {
					return true
				}
			}
			return false
		}
		for i := range ranges {
			lo := int64(rng.IntN(10000))
			ranges[i] = [2]int64{lo, lo + int64(rng.IntN(2000))}
		}
		got, _ := ix.MultiRangeIDs(ranges, nil)
		var want []uint32
		for i, v := range col {
			if inAny(v) {
				want = append(want, uint32(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: InSetIDs equals the naive membership scan.
func TestQuickInSetEqualsScan(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x5e7))
		n := 100 + rng.IntN(3000)
		card := 1 + rng.IntN(100)
		col := make([]int64, n)
		for i := range col {
			col[i] = int64(rng.IntN(card))
		}
		ix := Build(col, Options{Seed: seed})
		set := make([]int64, 1+rng.IntN(8))
		member := map[int64]bool{}
		for i := range set {
			set[i] = int64(rng.IntN(card + 10))
			member[set[i]] = true
		}
		got, _ := ix.InSetIDs(set, nil)
		var want []uint32
		for i, v := range col {
			if member[v] {
				want = append(want, uint32(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
