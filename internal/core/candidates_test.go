package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRangeCachelinesConsistentWithRangeIDs(t *testing.T) {
	cols := map[string][]int64{
		"clustered": clusteredCol(5000, 1),
		"random":    randomCol(5000, 100000, 2),
		"partial":   randomCol(5003, 1000, 3),
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for name, col := range cols {
		ix := Build(col, Options{Seed: 7})
		for q := 0; q < 30; q++ {
			low := int64(rng.IntN(1000000))
			high := low + int64(rng.IntN(100000))
			runs, _ := ix.RangeCachelines(low, high)
			check := ix.RangeCheck(low, high)
			ids, _ := MaterializeRuns(runs, ix.ValuesPerCacheline(), ix.Len(), nil, check)
			want, _ := ix.RangeIDs(low, high, nil)
			equalIDs(t, ids, want, name)
		}
	}
}

func TestCandidateRunsAreSortedDisjointMerged(t *testing.T) {
	col := clusteredCol(8000, 5)
	ix := Build(col, Options{Seed: 5})
	runs, _ := ix.RangeCachelines(100000, 900000)
	for i := 1; i < len(runs); i++ {
		prevEnd := runs[i-1].Start + runs[i-1].Count
		if runs[i].Start < prevEnd {
			t.Fatalf("overlapping runs at %d", i)
		}
		if runs[i].Start == prevEnd && runs[i].Exact == runs[i-1].Exact {
			t.Fatalf("adjacent runs with same exactness not merged at %d", i)
		}
	}
	for _, r := range runs {
		if r.Count == 0 {
			t.Fatal("zero-length run")
		}
	}
}

func TestIntersectRunsBasic(t *testing.T) {
	a := []CandidateRun{{Start: 0, Count: 10, Exact: true}, {Start: 20, Count: 5, Exact: false}}
	b := []CandidateRun{{Start: 5, Count: 18, Exact: true}}
	got := IntersectRuns(a, b)
	// Overlap: [5,10) exact&exact=true, [20,23) false&true=false.
	if len(got) != 2 {
		t.Fatalf("got %d runs: %+v", len(got), got)
	}
	if got[0] != (CandidateRun{Start: 5, Count: 5, Exact: true}) {
		t.Errorf("run0 = %+v", got[0])
	}
	if got[1] != (CandidateRun{Start: 20, Count: 3, Exact: false}) {
		t.Errorf("run1 = %+v", got[1])
	}
}

func TestIntersectRunsEmpty(t *testing.T) {
	a := []CandidateRun{{Start: 0, Count: 5}}
	if got := IntersectRuns(a, nil); len(got) != 0 {
		t.Errorf("intersection with empty = %+v", got)
	}
	b := []CandidateRun{{Start: 5, Count: 5}}
	if got := IntersectRuns(a, b); len(got) != 0 {
		t.Errorf("disjoint intersection = %+v", got)
	}
}

// Property: IntersectRuns equals per-cacheline set intersection.
func TestQuickIntersectRunsModel(t *testing.T) {
	mkRuns := func(rng *rand.Rand) ([]CandidateRun, map[uint32]bool) {
		var runs []CandidateRun
		model := make(map[uint32]bool) // cl -> exact
		cl := uint32(0)
		for len(runs) < 5 {
			cl += uint32(rng.IntN(4))
			cnt := uint32(1 + rng.IntN(6))
			exact := rng.IntN(2) == 0
			if n := len(runs); n > 0 && runs[n-1].Start+runs[n-1].Count == cl && runs[n-1].Exact == exact {
				runs[n-1].Count += cnt
			} else {
				runs = append(runs, CandidateRun{Start: cl, Count: cnt, Exact: exact})
			}
			for i := uint32(0); i < cnt; i++ {
				model[cl+i] = exact
			}
			cl += cnt
		}
		return runs, model
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xf00d))
		ra, ma := mkRuns(rng)
		rb, mb := mkRuns(rng)
		got := IntersectRuns(ra, rb)
		gotModel := make(map[uint32]bool)
		for _, r := range got {
			for i := uint32(0); i < r.Count; i++ {
				if _, dup := gotModel[r.Start+i]; dup {
					return false // runs overlap
				}
				gotModel[r.Start+i] = r.Exact
			}
		}
		for cl, ea := range ma {
			eb, ok := mb[cl]
			if !ok {
				if _, bad := gotModel[cl]; bad {
					return false
				}
				continue
			}
			ge, ok := gotModel[cl]
			if !ok || ge != (ea && eb) {
				return false
			}
		}
		for cl := range gotModel {
			if _, ok := ma[cl]; !ok {
				return false
			}
			if _, ok := mb[cl]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTotalCachelines(t *testing.T) {
	runs := []CandidateRun{{Start: 0, Count: 3}, {Start: 10, Count: 7}}
	if got := TotalCachelines(runs); got != 10 {
		t.Errorf("TotalCachelines = %d", got)
	}
}

func TestEvaluateAndTwoColumns(t *testing.T) {
	// Two attributes of the same relation; conjunction via late
	// materialization must equal the naive double-predicate scan.
	n := 6000
	rng := rand.New(rand.NewPCG(10, 20))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(rng.IntN(10000))
		b[i] = int64(rng.IntN(10000))
	}
	ixA := Build(a, Options{Seed: 1})
	ixB := Build(b, Options{Seed: 2})
	for q := 0; q < 25; q++ {
		aLo := int64(rng.IntN(9000))
		aHi := aLo + int64(rng.IntN(2000))
		bLo := int64(rng.IntN(9000))
		bHi := bLo + int64(rng.IntN(2000))
		got, st := EvaluateAnd(nil,
			NewRangeConjunct(ixA, aLo, aHi),
			NewRangeConjunct(ixB, bLo, bHi),
		)
		var want []uint32
		for i := 0; i < n; i++ {
			if a[i] >= aLo && a[i] < aHi && b[i] >= bLo && b[i] < bHi {
				want = append(want, uint32(i))
			}
		}
		equalIDs(t, got, want, "conjunction")
		if st.Probes == 0 {
			t.Error("conjunction recorded no probes")
		}
	}
}

func TestEvaluateAndThreeColumns(t *testing.T) {
	n := 4000
	rng := rand.New(rand.NewPCG(30, 40))
	cols := make([][]int64, 3)
	ixs := make([]*Index[int64], 3)
	for c := range cols {
		cols[c] = make([]int64, n)
		for i := range cols[c] {
			cols[c][i] = int64(rng.IntN(1000))
		}
		ixs[c] = Build(cols[c], Options{Seed: uint64(c)})
	}
	got, _ := EvaluateAnd(nil,
		NewRangeConjunct(ixs[0], 100, 800),
		NewRangeConjunct(ixs[1], 200, 900),
		NewRangeConjunct(ixs[2], 0, 500),
	)
	var want []uint32
	for i := 0; i < n; i++ {
		if cols[0][i] >= 100 && cols[0][i] < 800 &&
			cols[1][i] >= 200 && cols[1][i] < 900 &&
			cols[2][i] < 500 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "3-way conjunction")
}

func TestEvaluateAndEmptyAndMisaligned(t *testing.T) {
	got, st := EvaluateAnd(nil)
	if len(got) != 0 || st.Probes != 0 {
		t.Error("empty conjunction should be empty")
	}
	a := Build(randomCol(100, 10, 1), Options{Seed: 1})
	b := Build(randomCol(200, 10, 2), Options{Seed: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned conjunction")
		}
	}()
	EvaluateAnd(nil, NewRangeConjunct(a, 0, 5), NewRangeConjunct(b, 0, 5))
}

func TestConjunctionSelectivityImprovesWork(t *testing.T) {
	// Late materialization should check at most as many values as the
	// most selective single conjunct scans.
	n := 64000
	rng := rand.New(rand.NewPCG(50, 60))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(rng.IntN(1 << 30))
		b[i] = int64(rng.IntN(1 << 30))
	}
	ixA := Build(a, Options{Seed: 1})
	ixB := Build(b, Options{Seed: 2})
	// Each predicate ~10% selective; conjunction ~1%.
	aHi := int64(1 << 30 / 10)
	bHi := int64(1 << 30 / 10)
	_, stAnd := EvaluateAnd(nil,
		NewRangeConjunct(ixA, 0, aHi), NewRangeConjunct(ixB, 0, bHi))
	_, stA := ixA.RangeIDs(0, aHi, nil)
	// The conjunction's residual comparisons are bounded by the checks
	// the run intersection allows; with two ~10% predicates, it must do
	// less value work than 2x a full single-predicate evaluation.
	if stAnd.Comparisons > 2*(stA.Comparisons+uint64(n)/4) {
		t.Errorf("conjunction comparisons %d suspiciously high (single: %d)",
			stAnd.Comparisons, stA.Comparisons)
	}
}
