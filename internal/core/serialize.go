package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"reflect"

	"repro/internal/coltype"
	"repro/internal/histogram"
)

// Serialization format (little endian):
//
//	magic   "CIMP"                     4 bytes
//	version uint16                     currently 1
//	kind    uint8                      reflect.Kind of V
//	vpc     uint32
//	n       uint64
//	bins    uint16
//	sampledUnique uint32
//	borders 64 × uint64                value bit patterns
//	dictLen uint64, dict entries uint32 each
//	vecN    uint64, vecWidth uint8
//	wordLen uint64, words uint64 each
//	pendingVec uint64, pendingCount uint32
//	extraBits  uint64
//	crc32   uint32                     IEEE, over everything above
//
// The column itself is not serialized: imprints are a secondary index and
// reattach to the column at load time (ReadIndex takes the column).

const (
	serialMagic   = "CIMP"
	serialVersion = 1
)

// ErrCorrupt is returned when a serialized index fails validation.
var ErrCorrupt = errors.New("core: corrupt serialized imprint")

// encodeValue converts a value to a stable 64-bit pattern.
func encodeValue[V coltype.Value](v V) uint64 {
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return uint64(rv.Int())
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return rv.Uint()
	case reflect.Float32, reflect.Float64:
		return math.Float64bits(rv.Float())
	}
	panic("core: unsupported value kind")
}

// decodeValue inverts encodeValue.
func decodeValue[V coltype.Value](u uint64) V {
	var v V
	switch reflect.TypeOf(v).Kind() {
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		i := int64(u)
		return V(i)
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return V(u)
	case reflect.Float32, reflect.Float64:
		f := math.Float64frombits(u)
		return V(f)
	}
	panic("core: unsupported value kind")
}

type crcWriter struct {
	w       io.Writer
	crc     uint32
	err     error
	scratch [8]byte
}

func (cw *crcWriter) bytes(b []byte) {
	if cw.err != nil {
		return
	}
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, b)
	_, cw.err = cw.w.Write(b)
}

func (cw *crcWriter) u8(v uint8) {
	cw.scratch[0] = v
	cw.bytes(cw.scratch[:1])
}

func (cw *crcWriter) u16(v uint16) {
	binary.LittleEndian.PutUint16(cw.scratch[:2], v)
	cw.bytes(cw.scratch[:2])
}

func (cw *crcWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(cw.scratch[:4], v)
	cw.bytes(cw.scratch[:4])
}

func (cw *crcWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(cw.scratch[:8], v)
	cw.bytes(cw.scratch[:8])
}

// Write serializes the index to w.
func (ix *Index[V]) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}

	cw.bytes([]byte(serialMagic))
	cw.u16(serialVersion)
	var v V
	cw.u8(uint8(reflect.TypeOf(v).Kind()))
	cw.u32(uint32(ix.vpc))
	cw.u64(uint64(ix.n))
	cw.u16(uint16(ix.hist.Bins))
	cw.u32(uint32(ix.hist.SampledUnique))
	for _, b := range ix.hist.Borders {
		cw.u64(encodeValue(b))
	}
	cw.u64(uint64(len(ix.dict)))
	for _, e := range ix.dict {
		cw.u32(uint32(e))
	}
	cw.u64(uint64(ix.vecs.n))
	cw.u8(uint8(ix.vecs.width))
	cw.u64(uint64(len(ix.vecs.words)))
	for _, w := range ix.vecs.words {
		cw.u64(w)
	}
	cw.u64(ix.pendingVec)
	cw.u32(uint32(ix.pendingCount))
	cw.u64(uint64(ix.extraBits))
	if cw.err != nil {
		return cw.err
	}
	// Trailing CRC (not itself checksummed).
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], cw.crc)
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

type crcReader struct {
	r       io.Reader
	crc     uint32
	err     error
	scratch [8]byte
}

// bytes reads n bytes; for n <= 8 the internal scratch buffer is reused
// (the caller must consume the result before the next read).
func (cr *crcReader) bytes(n int) []byte {
	var b []byte
	if n <= len(cr.scratch) {
		b = cr.scratch[:n]
		for i := range b {
			b[i] = 0
		}
	} else {
		b = make([]byte, n)
	}
	if cr.err != nil {
		return b
	}
	if _, err := io.ReadFull(cr.r, b); err != nil {
		cr.err = err
		return b
	}
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, b)
	return b
}

func (cr *crcReader) u8() uint8   { return cr.bytes(1)[0] }
func (cr *crcReader) u16() uint16 { return binary.LittleEndian.Uint16(cr.bytes(2)) }
func (cr *crcReader) u32() uint32 { return binary.LittleEndian.Uint32(cr.bytes(4)) }
func (cr *crcReader) u64() uint64 { return binary.LittleEndian.Uint64(cr.bytes(8)) }

// sane upper bounds against hostile length fields.
const maxSerialSlice = 1 << 40

// ReadIndex deserializes an index and reattaches it to col, which must
// be the same column contents the index was built over (only its length
// is validated here; a mismatched column silently yields wrong query
// results, exactly like any detached secondary index).
func ReadIndex[V coltype.Value](r io.Reader, col []V) (*Index[V], error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	if string(cr.bytes(4)) != serialMagic {
		if cr.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, cr.err)
		}
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := cr.u16(); v != serialVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	var zero V
	if k := reflect.Kind(cr.u8()); k != reflect.TypeOf(zero).Kind() {
		return nil, fmt.Errorf("%w: value kind mismatch: file has %v, want %v",
			ErrCorrupt, k, reflect.TypeOf(zero).Kind())
	}
	vpc := int(cr.u32())
	n := int(cr.u64())
	bins := int(cr.u16())
	sampled := int(cr.u32())
	hist := &histogram.Histogram[V]{Bins: bins, SampledUnique: sampled}
	for i := range hist.Borders {
		hist.Borders[i] = decodeValue[V](cr.u64())
	}
	dictLen := cr.u64()
	if dictLen > maxSerialSlice {
		return nil, fmt.Errorf("%w: absurd dictionary length", ErrCorrupt)
	}
	dict := make([]DictEntry, dictLen)
	for i := range dict {
		dict[i] = DictEntry(cr.u32())
	}
	vecN := int(cr.u64())
	width := int(cr.u8())
	switch width {
	case 8, 16, 32, 64:
	default:
		return nil, fmt.Errorf("%w: invalid vector width %d", ErrCorrupt, width)
	}
	wordLen := cr.u64()
	if wordLen > maxSerialSlice {
		return nil, fmt.Errorf("%w: absurd vector arena length", ErrCorrupt)
	}
	vecs := newVecstore(width)
	vecs.n = vecN
	vecs.words = make([]uint64, wordLen)
	for i := range vecs.words {
		vecs.words[i] = cr.u64()
	}
	pendingVec := cr.u64()
	pendingCount := int(cr.u32())
	extraBits := int(cr.u64())
	if cr.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, cr.err)
	}
	wantCRC := cr.crc
	var buf [4]byte
	if _, err := io.ReadFull(cr.r, buf[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	// Structural validation.
	if bins < 1 || bins > histogram.MaxBins || bins > width {
		return nil, fmt.Errorf("%w: bins %d incompatible with width %d", ErrCorrupt, bins, width)
	}
	if vpc <= 0 {
		return nil, fmt.Errorf("%w: invalid values-per-cacheline", ErrCorrupt)
	}
	var committed, stored uint64
	for _, e := range dict {
		committed += uint64(e.Count())
		if e.Repeat() {
			stored++
		} else {
			stored += uint64(e.Count())
		}
	}
	if stored != uint64(vecN) {
		return nil, fmt.Errorf("%w: dictionary implies %d vectors, file has %d", ErrCorrupt, stored, vecN)
	}
	if (uint64(vecN)+uint64(vecs.perWord())-1)/uint64(vecs.perWord()) != wordLen {
		return nil, fmt.Errorf("%w: vector arena length mismatch", ErrCorrupt)
	}
	if pendingCount < 0 || pendingCount >= vpc {
		return nil, fmt.Errorf("%w: invalid pending count", ErrCorrupt)
	}
	if committed*uint64(vpc)+uint64(pendingCount) != uint64(n) {
		return nil, fmt.Errorf("%w: dictionary covers %d values, header says %d",
			ErrCorrupt, committed*uint64(vpc)+uint64(pendingCount), n)
	}
	if len(col) != n {
		return nil, fmt.Errorf("core: column has %d rows but index covers %d", len(col), n)
	}
	return &Index[V]{
		col:          col,
		hist:         hist,
		vecs:         vecs,
		dict:         dict,
		vpc:          vpc,
		n:            n,
		committed:    int(committed),
		pendingVec:   pendingVec,
		pendingCount: pendingCount,
		extraBits:    extraBits,
	}, nil
}
