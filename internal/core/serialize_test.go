package core

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
)

func roundTrip[V interface{ int64 | float64 | uint8 }](t *testing.T, col []V) *Index[V] {
	t.Helper()
	ix := Build(col, Options{Seed: 7})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadIndex[V](&buf, col)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	equalIndexes(t, ix, got, "roundtrip")
	return got
}

func TestSerializeRoundTripInt64(t *testing.T) {
	got := roundTrip(t, clusteredCol(12345, 1))
	// Queries over the deserialized index work.
	col := got.Column()
	ids, _ := got.RangeIDs(100000, 900000, nil)
	equalIDs(t, ids, scanIDs(col, 100000, 900000), "deserialized query")
}

func TestSerializeRoundTripFloat64(t *testing.T) {
	roundTrip(t, uniformFloats(5000, 2))
}

func TestSerializeRoundTripUint8(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	col := make([]uint8, 3001)
	for i := range col {
		col[i] = uint8(rng.IntN(200))
	}
	roundTrip(t, col)
}

func TestSerializeNegativeBorders(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	col := make([]int64, 4000)
	for i := range col {
		col[i] = int64(rng.IntN(2000000)) - 1000000
	}
	ix := roundTrip(t, col)
	ids, _ := ix.RangeIDs(-500000, 500000, nil)
	equalIDs(t, ids, scanIDs(col, -500000, 500000), "negative domain")
}

func TestSerializeKindMismatch(t *testing.T) {
	col := clusteredCol(1000, 3)
	ix := Build(col, Options{Seed: 1})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	fcol := make([]float64, len(col))
	_, err := ReadIndex[float64](&buf, fcol)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("kind mismatch: err = %v, want ErrCorrupt", err)
	}
}

func TestSerializeColumnLengthMismatch(t *testing.T) {
	col := clusteredCol(1000, 4)
	ix := Build(col, Options{Seed: 1})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex[int64](&buf, col[:999]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSerializeDetectsBitFlips(t *testing.T) {
	col := clusteredCol(3000, 5)
	ix := Build(col, Options{Seed: 1})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 50; trial++ {
		corrupted := append([]byte(nil), raw...)
		pos := rng.IntN(len(corrupted))
		corrupted[pos] ^= 1 << uint(rng.IntN(8))
		_, err := ReadIndex[int64](bytes.NewReader(corrupted), col)
		if err == nil {
			t.Fatalf("bit flip at byte %d went undetected", pos)
		}
	}
}

func TestSerializeDetectsTruncation(t *testing.T) {
	col := clusteredCol(3000, 6)
	ix := Build(col, Options{Seed: 1})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 1, 3, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadIndex[int64](bytes.NewReader(raw[:cut]), col); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSerializeGarbageRejected(t *testing.T) {
	garbage := []byte("this is not an imprint index at all, not even close")
	if _, err := ReadIndex[int64](bytes.NewReader(garbage), make([]int64, 10)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage accepted: %v", err)
	}
}

func TestSerializePreservesPendingAndExtraBits(t *testing.T) {
	col := randomCol(1003, 1000, 7)
	ix := Build(col, Options{Seed: 1})
	ix.MarkUpdated(5, 999)
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex[int64](&buf, col)
	if err != nil {
		t.Fatal(err)
	}
	if got.ExtraBits() != ix.ExtraBits() {
		t.Errorf("ExtraBits = %d, want %d", got.ExtraBits(), ix.ExtraBits())
	}
	gv, gc := got.PendingVector()
	wv, wc := ix.PendingVector()
	if gv != wv || gc != wc {
		t.Errorf("pending = %#x/%d, want %#x/%d", gv, gc, wv, wc)
	}
	// Appends continue to work after deserialization.
	more := append(append([]int64(nil), col...), randomCol(500, 1000, 8)...)
	got.Append(more)
	ids, _ := got.RangeIDs(0, 500, nil)
	equalIDs(t, ids, scanIDs(more, 0, 500), "append after load")
}
