package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/coltype"
)

// scanIDs is the sequential-scan oracle: ids of values in [low, high).
func scanIDs[V coltype.Value](col []V, low, high V) []uint32 {
	var ids []uint32
	for i, v := range col {
		if v >= low && v < high {
			ids = append(ids, uint32(i))
		}
	}
	return ids
}

func equalIDs(t *testing.T, got, want []uint32, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: id[%d] = %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

// Column generators covering the paper's data regimes.

func sortedCol(n int) []int64 {
	col := make([]int64, n)
	for i := range col {
		col[i] = int64(i * 3)
	}
	return col
}

func randomCol(n, card int, seed uint64) []int64 {
	rng := rand.New(rand.NewPCG(seed, 0xabc))
	col := make([]int64, n)
	for i := range col {
		col[i] = int64(rng.IntN(card))
	}
	return col
}

// clusteredCol emulates the locally-clustered "secondary data" the paper
// observes: a random walk with occasional jumps.
func clusteredCol(n int, seed uint64) []int64 {
	rng := rand.New(rand.NewPCG(seed, 0xdef))
	col := make([]int64, n)
	v := int64(500000)
	for i := range col {
		if rng.IntN(1000) == 0 {
			v = int64(rng.IntN(1000000))
		}
		v += int64(rng.IntN(11)) - 5
		col[i] = v
	}
	return col
}

// skewedCol is the zonemap-killer of Section 2.2: each cacheline holds
// the domain minimum, the maximum and random values in between.
func skewedCol(n int, seed uint64) []int64 {
	rng := rand.New(rand.NewPCG(seed, 0x777))
	col := make([]int64, n)
	vpc := coltype.ValuesPerCacheline[int64]()
	for i := range col {
		switch i % vpc {
		case 0:
			col[i] = 0
		case 1:
			col[i] = 1 << 40
		default:
			col[i] = int64(rng.IntN(1 << 40))
		}
	}
	return col
}

func constantCol(n int) []int64 {
	col := make([]int64, n)
	for i := range col {
		col[i] = 42
	}
	return col
}

func uniformFloats(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 0x123))
	col := make([]float64, n)
	for i := range col {
		col[i] = rng.Float64() * 1e6
	}
	return col
}

// equalIndexes compares complete index state (used by parallel and
// serialization tests).
func equalIndexes[V coltype.Value](t *testing.T, a, b *Index[V], ctx string) {
	t.Helper()
	if a.n != b.n || a.committed != b.committed || a.vpc != b.vpc {
		t.Fatalf("%s: geometry differs: n %d/%d committed %d/%d vpc %d/%d",
			ctx, a.n, b.n, a.committed, b.committed, a.vpc, b.vpc)
	}
	if a.pendingVec != b.pendingVec || a.pendingCount != b.pendingCount {
		t.Fatalf("%s: pending differs: %#x/%d vs %#x/%d",
			ctx, a.pendingVec, a.pendingCount, b.pendingVec, b.pendingCount)
	}
	if len(a.dict) != len(b.dict) {
		t.Fatalf("%s: dict length %d vs %d", ctx, len(a.dict), len(b.dict))
	}
	for i := range a.dict {
		if a.dict[i] != b.dict[i] {
			t.Fatalf("%s: dict[%d] = %v vs %v", ctx, i, a.dict[i], b.dict[i])
		}
	}
	if a.vecs.n != b.vecs.n || a.vecs.width != b.vecs.width {
		t.Fatalf("%s: vecstore geometry differs", ctx)
	}
	for i := 0; i < a.vecs.n; i++ {
		if a.vecs.get(i) != b.vecs.get(i) {
			t.Fatalf("%s: vector %d = %#x vs %#x", ctx, i, a.vecs.get(i), b.vecs.get(i))
		}
	}
	if !a.hist.Equal(b.hist) {
		t.Fatalf("%s: histograms differ", ctx)
	}
}
