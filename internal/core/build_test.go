package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBuildEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build([]int64{}, Options{})
}

func TestBuildGeometry(t *testing.T) {
	col := randomCol(1000, 100, 1)
	ix := Build(col, Options{Seed: 1})
	if ix.Len() != 1000 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.ValuesPerCacheline() != 8 { // int64: 64/8
		t.Errorf("ValuesPerCacheline = %d", ix.ValuesPerCacheline())
	}
	if ix.Cachelines() != 125 { // 1000/8, exact
		t.Errorf("Cachelines = %d", ix.Cachelines())
	}
	if _, cnt := ix.PendingVector(); cnt != 0 {
		t.Errorf("pending count = %d, want 0", cnt)
	}
}

func TestBuildPartialTail(t *testing.T) {
	col := randomCol(1003, 100, 2) // 125 full cachelines + 3 values
	ix := Build(col, Options{Seed: 1})
	if ix.Cachelines() != 126 {
		t.Errorf("Cachelines = %d, want 126", ix.Cachelines())
	}
	vec, cnt := ix.PendingVector()
	if cnt != 3 {
		t.Errorf("pending count = %d, want 3", cnt)
	}
	if vec == 0 {
		t.Error("pending vector empty despite 3 values")
	}
}

// Dictionary invariant: counts cover exactly the committed cachelines and
// the stored vector count matches what the entries imply.
func TestDictInvariants(t *testing.T) {
	cols := map[string][]int64{
		"sorted":    sortedCol(4096),
		"random":    randomCol(4096, 1000000, 3),
		"clustered": clusteredCol(4096, 4),
		"skewed":    skewedCol(4096, 5),
		"constant":  constantCol(4096),
		"tiny":      randomCol(5, 3, 6),
		"oneline":   randomCol(8, 100, 7),
	}
	for name, col := range cols {
		ix := Build(col, Options{Seed: 1})
		var covered, stored uint64
		for _, e := range ix.dict {
			if e.Count() == 0 {
				t.Errorf("%s: zero-count dictionary entry", name)
			}
			covered += uint64(e.Count())
			if e.Repeat() {
				stored++
			} else {
				stored += uint64(e.Count())
			}
		}
		if covered != uint64(ix.committed) {
			t.Errorf("%s: dict covers %d cachelines, committed %d", name, covered, ix.committed)
		}
		if stored != uint64(ix.StoredVectors()) {
			t.Errorf("%s: dict implies %d vectors, stored %d", name, stored, ix.StoredVectors())
		}
		wantCommitted := len(col) / ix.vpc
		if ix.committed != wantCommitted {
			t.Errorf("%s: committed %d, want %d", name, ix.committed, wantCommitted)
		}
	}
}

// The imprint of each cacheline must be exactly the OR of its values'
// bin bits (non-dense property of Section 2.2: one bit per occupied bin).
func TestImprintBitsMatchValues(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		col := clusteredCol(2048, seed)
		ix := Build(col, Options{Seed: seed})
		vpc := ix.vpc
		ix.decompress(func(cl int, vec uint64) bool {
			var want uint64
			for i := cl * vpc; i < (cl+1)*vpc; i++ {
				want |= 1 << uint(ix.hist.Bin(col[i]))
			}
			if vec != want {
				t.Fatalf("seed %d cacheline %d: vec %#x, want %#x", seed, cl, vec, want)
			}
			return true
		})
	}
}

func TestConstantColumnFullyCompresses(t *testing.T) {
	col := constantCol(80000) // 10000 cachelines, all identical imprints
	ix := Build(col, Options{Seed: 1})
	if got := ix.StoredVectors(); got != 1 {
		t.Errorf("StoredVectors = %d, want 1", got)
	}
	if got := ix.DictEntries(); got != 1 {
		t.Errorf("DictEntries = %d, want 1", got)
	}
	if r := ix.CompressionRatio(); r > 0.001 {
		t.Errorf("CompressionRatio = %v, want ~0", r)
	}
}

func TestSortedCompressesBetterThanRandom(t *testing.T) {
	n := 100000
	sorted := Build(sortedCol(n), Options{Seed: 1})
	random := Build(randomCol(n, 1<<40, 2), Options{Seed: 1})
	if sorted.CompressionRatio() >= random.CompressionRatio() {
		t.Errorf("sorted ratio %v >= random ratio %v",
			sorted.CompressionRatio(), random.CompressionRatio())
	}
	if sorted.SizeBytes() >= random.SizeBytes() {
		t.Errorf("sorted size %d >= random size %d", sorted.SizeBytes(), random.SizeBytes())
	}
}

func TestLowCardinalityNarrowVectors(t *testing.T) {
	col := randomCol(10000, 5, 3) // 5 distinct values -> 8 bins -> 1-byte vectors
	ix := Build(col, Options{Seed: 1})
	if ix.Bins() != 8 {
		t.Fatalf("Bins = %d, want 8", ix.Bins())
	}
	if ix.vecs.width != 8 {
		t.Fatalf("vector width = %d bits, want 8", ix.vecs.width)
	}
	// A 64-bin imprint over the same data would be 8x larger in vectors.
	wide := Build(col, Options{Seed: 1, SampleSize: 4}) // tiny sample can't see all values
	_ = wide
}

func TestMaxBinsClamp(t *testing.T) {
	col := randomCol(10000, 1000000, 4)
	ix := Build(col, Options{Seed: 1, MaxBins: 16})
	if ix.Bins() != 16 {
		t.Fatalf("Bins = %d, want 16", ix.Bins())
	}
	// Queries remain correct under the clamp.
	got, _ := ix.RangeIDs(1000, 500000, nil)
	equalIDs(t, got, scanIDs(col, 1000, 500000), "clamped")
}

func TestOptionValuesPerCacheline(t *testing.T) {
	col := randomCol(1024, 100, 5)
	ix := Build(col, Options{Seed: 1, ValuesPerCacheline: 32})
	if ix.ValuesPerCacheline() != 32 {
		t.Fatalf("vpc = %d", ix.ValuesPerCacheline())
	}
	if ix.Cachelines() != 32 {
		t.Fatalf("Cachelines = %d, want 32", ix.Cachelines())
	}
	got, _ := ix.RangeIDs(10, 50, nil)
	equalIDs(t, got, scanIDs(col, 10, 50), "vpc32")
}

func TestVecstoreWidths(t *testing.T) {
	for _, w := range []int{8, 16, 32, 64} {
		s := newVecstore(w)
		vals := []uint64{1, 0x7f, 0xff}
		if w == 64 {
			vals = append(vals, 1<<63)
		}
		for _, v := range vals {
			s.append(v & s.mask)
		}
		for i, v := range vals {
			if got := s.get(i); got != v&s.mask {
				t.Errorf("width %d: get(%d) = %#x, want %#x", w, i, got, v&s.mask)
			}
		}
		if s.len() != len(vals) {
			t.Errorf("width %d: len = %d", w, s.len())
		}
	}
}

func TestVecstoreSetAndOverflowPanic(t *testing.T) {
	s := newVecstore(8)
	s.append(0x0f)
	s.append(0xf0)
	s.set(0, 0xaa)
	if s.get(0) != 0xaa || s.get(1) != 0xf0 {
		t.Errorf("set corrupted neighbors: %#x %#x", s.get(0), s.get(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	s.append(0x100)
}

func TestVecstorePacking(t *testing.T) {
	s := newVecstore(8)
	for i := 0; i < 16; i++ {
		s.append(uint64(i + 1))
	}
	// 16 8-bit vectors must occupy exactly 2 words.
	if got := s.sizeBytes(); got != 16 {
		t.Errorf("sizeBytes = %d, want 16", got)
	}
}

func TestDictEntryEncoding(t *testing.T) {
	e := makeEntry(12345, true)
	if e.Count() != 12345 || !e.Repeat() {
		t.Errorf("entry roundtrip failed: %v", e)
	}
	e = makeEntry(MaxCount, false)
	if e.Count() != MaxCount || e.Repeat() {
		t.Errorf("max count roundtrip failed: %v", e)
	}
	if e.String() != "16777215×distinct" {
		t.Errorf("String = %q", e.String())
	}
	if makeEntry(3, true).String() != "3×repeat" {
		t.Errorf("repeat String = %q", makeEntry(3, true).String())
	}
}

func TestMakeEntryOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	makeEntry(MaxCount+1, false)
}

// Property: commitRun(vec, k) produces exactly the same index state as k
// sequential commit(vec) calls, across random vector streams.
func TestQuickCommitRunEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x5ca1e))
		type run struct {
			vec uint64
			cnt int
		}
		var runList []run
		for i := 0; i < 1+rng.IntN(20); i++ {
			runList = append(runList, run{
				vec: uint64(1 + rng.IntN(255)),
				cnt: 1 + rng.IntN(50),
			})
		}
		a := &Index[int64]{vecs: newVecstore(8), vpc: 8}
		b := &Index[int64]{vecs: newVecstore(8), vpc: 8}
		for _, r := range runList {
			for i := 0; i < r.cnt; i++ {
				a.commit(r.vec)
			}
			b.commitRun(r.vec, r.cnt)
		}
		if a.committed != b.committed || len(a.dict) != len(b.dict) || a.vecs.n != b.vecs.n {
			return false
		}
		for i := range a.dict {
			if a.dict[i] != b.dict[i] {
				return false
			}
		}
		for i := 0; i < a.vecs.n; i++ {
			if a.vecs.get(i) != b.vecs.get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The paper's Figure 2 walkthrough: 7 distinct vectors, then 13 identical
// cachelines, then 3 distinct vectors -> dictionary (7,distinct),
// (13,repeat), (3,distinct) with 11 stored vectors.
func TestFigure2Walkthrough(t *testing.T) {
	ix := &Index[int64]{vecs: newVecstore(16), vpc: 8}
	for i := 0; i < 7; i++ {
		ix.commit(uint64(0x100 + i)) // 7 distinct
	}
	for i := 0; i < 13; i++ {
		ix.commit(0x2aaa) // 13 identical
	}
	for i := 0; i < 3; i++ {
		ix.commit(uint64(0x300 + i)) // 3 distinct
	}
	if len(ix.dict) != 3 {
		t.Fatalf("dict entries = %d, want 3 (%v)", len(ix.dict), ix.dict)
	}
	if ix.dict[0] != makeEntry(7, false) {
		t.Errorf("dict[0] = %v, want 7×distinct", ix.dict[0])
	}
	if ix.dict[1] != makeEntry(13, true) {
		t.Errorf("dict[1] = %v, want 13×repeat", ix.dict[1])
	}
	if ix.dict[2] != makeEntry(3, false) {
		t.Errorf("dict[2] = %v, want 3×distinct", ix.dict[2])
	}
	if ix.StoredVectors() != 11 {
		t.Errorf("stored vectors = %d, want 11", ix.StoredVectors())
	}
	if ix.committed != 23 {
		t.Errorf("committed = %d, want 23", ix.committed)
	}
}

func TestDecompressRoundTrip(t *testing.T) {
	col := clusteredCol(4096, 9)
	ix := Build(col, Options{Seed: 9})
	// Reconstruct per-cacheline vectors directly from values.
	var want []uint64
	vpc := ix.vpc
	for cl := 0; cl < ix.committed; cl++ {
		var v uint64
		for i := cl * vpc; i < (cl+1)*vpc; i++ {
			v |= 1 << uint(ix.hist.Bin(col[i]))
		}
		want = append(want, v)
	}
	var got []uint64
	ix.decompress(func(_ int, vec uint64) bool {
		got = append(got, vec)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("decompress yielded %d vectors, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vector %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestDecompressEarlyStop(t *testing.T) {
	col := randomCol(800, 1000, 10)
	ix := Build(col, Options{Seed: 10})
	n := 0
	ix.decompress(func(_ int, _ uint64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d vectors", n)
	}
}

func TestBuildDeterministic(t *testing.T) {
	col := clusteredCol(10000, 11)
	a := Build(col, Options{Seed: 42})
	b := Build(col, Options{Seed: 42})
	equalIndexes(t, a, b, "deterministic")
}

func TestCompressionRatioEmptyishIndex(t *testing.T) {
	// Fewer values than one cacheline: everything pending, ratio defined.
	ix := Build([]int64{1, 2, 3}, Options{Seed: 1})
	if got := ix.CompressionRatio(); got != 1 {
		t.Errorf("CompressionRatio = %v, want 1", got)
	}
	if ix.Cachelines() != 1 {
		t.Errorf("Cachelines = %d, want 1", ix.Cachelines())
	}
}
