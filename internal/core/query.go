package core

import "repro/internal/coltype"

// QueryStats instruments one query evaluation. Probes and Comparisons
// are the implementation-independent counters behind Figure 11 of the
// paper: Probes counts index structure inspections (imprint vectors
// checked here; zones or WAH words for the comparators) and Comparisons
// counts value comparisons spent weeding out false positives.
type QueryStats struct {
	Probes            uint64
	Comparisons       uint64
	CachelinesScanned uint64 // cachelines whose values were examined
	CachelinesExact   uint64 // cachelines emitted wholesale via innermask
	CachelinesSkipped uint64 // cachelines pruned by the imprint
	// FastCountedRows counts rows a Count execution tallied wholesale
	// from exact candidate runs (span minus a deleted-bitmap popcount)
	// instead of visiting them one by one.
	FastCountedRows uint64
	// ScratchReused counts pooled candidate-id scratch buffers the
	// evaluator reused (capacity recycled from an earlier query) instead
	// of growing a fresh one.
	ScratchReused uint64
	// SummaryAggRows counts per-aggregate row contributions answered
	// straight from a segment summary or the deleted-bitmap popcount —
	// the value slab was never touched. Counted once per (aggregate,
	// row), so three summary-answered aggregates over a 100-row segment
	// add 300.
	SummaryAggRows uint64
	// WholesaleAggRows counts per-aggregate row contributions folded
	// wholesale out of exact candidate runs: a tight loop over the value
	// slab with no residual predicate check and no deleted-bitmap test.
	WholesaleAggRows uint64
	// BlocksVectorized counts 64-row blocks whose residual predicate was
	// evaluated through a block-at-a-time selection-mask kernel (the
	// vectorized executor) instead of row-at-a-time check closures.
	// Comparisons keeps its Figure-11 meaning either way: one comparison
	// per evaluated live lane, counted via popcount of the block's live
	// mask.
	BlocksVectorized uint64
	// DeltaRowsScanned counts live in-memory delta rows the execution
	// evaluated exactly (row-at-a-time, no index) to union the unsealed
	// write buffer with the sealed-segment results.
	DeltaRowsScanned uint64
}

// Add accumulates o into s.
func (s *QueryStats) Add(o QueryStats) {
	s.Probes += o.Probes
	s.Comparisons += o.Comparisons
	s.CachelinesScanned += o.CachelinesScanned
	s.CachelinesExact += o.CachelinesExact
	s.CachelinesSkipped += o.CachelinesSkipped
	s.FastCountedRows += o.FastCountedRows
	s.ScratchReused += o.ScratchReused
	s.SummaryAggRows += o.SummaryAggRows
	s.WholesaleAggRows += o.WholesaleAggRows
	s.BlocksVectorized += o.BlocksVectorized
	s.DeltaRowsScanned += o.DeltaRowsScanned
}

// pred is a range predicate with optional unbounded and inclusive ends.
// The canonical paper query is [low, high): lowIncl=true, highIncl=false
// (Algorithm 3 checks "col[id] < high AND col[id] >= low").
type pred[V coltype.Value] struct {
	low, high         V
	lowUnb, highUnb   bool
	lowIncl, highIncl bool
}

func (p *pred[V]) match(v V) bool {
	if !p.lowUnb {
		if p.lowIncl {
			if v < p.low {
				return false
			}
		} else if v <= p.low {
			return false
		}
	}
	if !p.highUnb {
		if p.highIncl {
			if v > p.high {
				return false
			}
		} else if v >= p.high {
			return false
		}
	}
	return true
}

// masks builds the query mask and innermask of Algorithm 3. mask has a
// bit for every bin that may contain qualifying values (conservatively
// over-approximated at the borders); innermask has a bit only for bins
// that lie entirely inside the query range (conservatively
// under-approximated), so that an imprint vector with no bits outside
// innermask guarantees every value in the cacheline qualifies.
func (ix *Index[V]) masks(p *pred[V]) (mask, inner uint64) {
	h := ix.hist
	for i := 0; i < h.Bins; i++ {
		lo, hi, loUnb, hiUnb := h.BinBounds(i)

		// Overlap: some value in [lo, hi) may satisfy p.
		overlap := true
		if !p.highUnb && !loUnb {
			if p.highIncl {
				overlap = lo <= p.high
			} else {
				overlap = lo < p.high
			}
		}
		if overlap && !p.lowUnb && !hiUnb {
			// Need a value >= / > low inside [lo, hi): hi must exceed low.
			overlap = hi > p.low
		}
		if overlap {
			mask |= 1 << uint(i)
		}

		// Containment: every value in [lo, hi) satisfies p.
		contained := true
		if !p.lowUnb {
			if loUnb {
				contained = false
			} else if p.lowIncl {
				contained = lo >= p.low
			} else {
				contained = lo > p.low
			}
		}
		if contained && !p.highUnb {
			if hiUnb {
				contained = false
			} else {
				// All bin values are < hi; hi <= high suffices for both
				// inclusive and exclusive upper query bounds.
				contained = hi <= p.high
			}
		}
		if contained {
			inner |= 1 << uint(i)
		}
	}
	return mask, inner
}

// RangeIDs returns the ascending ids of all values in the half-open
// range [low, high), appended to res (pass nil to allocate). This is
// Algorithm 3 of the paper.
func (ix *Index[V]) RangeIDs(low, high V, res []uint32) ([]uint32, QueryStats) {
	p := pred[V]{low: low, high: high, lowIncl: true}
	return ix.queryPred(&p, res)
}

// RangeIDsClosed returns ids of values in the closed range [low, high],
// the "low <= v <= high" formulation of Section 3.
func (ix *Index[V]) RangeIDsClosed(low, high V, res []uint32) ([]uint32, QueryStats) {
	p := pred[V]{low: low, high: high, lowIncl: true, highIncl: true}
	return ix.queryPred(&p, res)
}

// AtLeast returns ids of values >= low.
func (ix *Index[V]) AtLeast(low V, res []uint32) ([]uint32, QueryStats) {
	p := pred[V]{low: low, lowIncl: true, highUnb: true}
	return ix.queryPred(&p, res)
}

// LessThan returns ids of values < high.
func (ix *Index[V]) LessThan(high V, res []uint32) ([]uint32, QueryStats) {
	p := pred[V]{high: high, lowUnb: true}
	return ix.queryPred(&p, res)
}

// PointIDs returns ids of values equal to v (a point query).
func (ix *Index[V]) PointIDs(v V, res []uint32) ([]uint32, QueryStats) {
	p := pred[V]{low: v, high: v, lowIncl: true, highIncl: true}
	return ix.queryPred(&p, res)
}

// queryPred drives Algorithm 3 over the cacheline dictionary.
func (ix *Index[V]) queryPred(p *pred[V], res []uint32) ([]uint32, QueryStats) {
	var st QueryStats
	mask, inner := ix.masks(p)
	col := ix.col
	vpc := ix.vpc

	emitAll := func(from, to int) { // [from, to) ids, all qualify
		for id := from; id < to; id++ {
			res = append(res, uint32(id))
		}
	}
	// The canonical [low, high) query gets a branch-lean check loop; the
	// generic matcher handles unbounded/inclusive variants.
	fastRange := !p.lowUnb && !p.highUnb && p.lowIncl && !p.highIncl
	low, high := p.low, p.high
	emitChecked := func(from, to int) {
		st.Comparisons += uint64(to - from)
		if fastRange {
			for id := from; id < to; id++ {
				v := col[id]
				if v >= low && v < high {
					res = append(res, uint32(id))
				}
			}
			return
		}
		for id := from; id < to; id++ {
			if p.match(col[id]) {
				res = append(res, uint32(id))
			}
		}
	}

	iVec, cl := 0, 0
	for _, e := range ix.dict {
		cnt := int(e.Count())
		if e.Repeat() {
			// One imprint vector describes the next cnt cachelines.
			st.Probes++
			vec := ix.vecs.get(iVec)
			iVec++
			if vec&mask != 0 {
				if vec&^inner == 0 {
					st.CachelinesExact += uint64(cnt)
					emitAll(cl*vpc, (cl+cnt)*vpc)
				} else {
					st.CachelinesScanned += uint64(cnt)
					emitChecked(cl*vpc, (cl+cnt)*vpc)
				}
			} else {
				st.CachelinesSkipped += uint64(cnt)
			}
			cl += cnt
		} else {
			// cnt distinct imprint vectors, one cacheline each.
			for j := 0; j < cnt; j++ {
				st.Probes++
				vec := ix.vecs.get(iVec)
				iVec++
				if vec&mask != 0 {
					if vec&^inner == 0 {
						st.CachelinesExact++
						emitAll(cl*vpc, (cl+1)*vpc)
					} else {
						st.CachelinesScanned++
						emitChecked(cl*vpc, (cl+1)*vpc)
					}
				} else {
					st.CachelinesSkipped++
				}
				cl++
			}
		}
	}

	// Trailing partial cacheline (not covered by the dictionary).
	if ix.pendingCount > 0 {
		st.Probes++
		if ix.pendingVec&mask != 0 {
			from := ix.committed * vpc
			if ix.pendingVec&^inner == 0 {
				st.CachelinesExact++
				emitAll(from, ix.n)
			} else {
				st.CachelinesScanned++
				emitChecked(from, ix.n)
			}
		} else {
			st.CachelinesSkipped++
		}
	}
	return res, st
}

// CountRange returns the number of values in [low, high) without
// materializing ids.
func (ix *Index[V]) CountRange(low, high V) (uint64, QueryStats) {
	var st QueryStats
	p := pred[V]{low: low, high: high, lowIncl: true}
	mask, inner := ix.masks(&p)
	col := ix.col
	vpc := ix.vpc
	var count uint64

	countChecked := func(from, to int) {
		for id := from; id < to; id++ {
			st.Comparisons++
			if p.match(col[id]) {
				count++
			}
		}
	}

	iVec, cl := 0, 0
	for _, e := range ix.dict {
		cnt := int(e.Count())
		if e.Repeat() {
			st.Probes++
			vec := ix.vecs.get(iVec)
			iVec++
			if vec&mask != 0 {
				if vec&^inner == 0 {
					st.CachelinesExact += uint64(cnt)
					count += uint64(cnt * vpc)
				} else {
					st.CachelinesScanned += uint64(cnt)
					countChecked(cl*vpc, (cl+cnt)*vpc)
				}
			} else {
				st.CachelinesSkipped += uint64(cnt)
			}
			cl += cnt
		} else {
			for j := 0; j < cnt; j++ {
				st.Probes++
				vec := ix.vecs.get(iVec)
				iVec++
				if vec&mask != 0 {
					if vec&^inner == 0 {
						st.CachelinesExact++
						count += uint64(vpc)
					} else {
						st.CachelinesScanned++
						countChecked(cl*vpc, (cl+1)*vpc)
					}
				} else {
					st.CachelinesSkipped++
				}
				cl++
			}
		}
	}
	if ix.pendingCount > 0 {
		st.Probes++
		if ix.pendingVec&mask != 0 {
			from := ix.committed * vpc
			if ix.pendingVec&^inner == 0 {
				st.CachelinesExact++
				count += uint64(ix.n - from)
			} else {
				st.CachelinesScanned++
				countChecked(from, ix.n)
			}
		} else {
			st.CachelinesSkipped++
		}
	}
	return count, st
}
