package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEvaluateOrTwoColumns(t *testing.T) {
	n := 6000
	rng := rand.New(rand.NewPCG(41, 42))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(rng.IntN(10000))
		b[i] = int64(rng.IntN(10000))
	}
	ixA := Build(a, Options{Seed: 1})
	ixB := Build(b, Options{Seed: 2})
	for q := 0; q < 25; q++ {
		aLo := int64(rng.IntN(9000))
		aHi := aLo + int64(rng.IntN(2000))
		bLo := int64(rng.IntN(9000))
		bHi := bLo + int64(rng.IntN(2000))
		got, st := EvaluateOr(nil,
			NewRangeConjunct(ixA, aLo, aHi),
			NewRangeConjunct(ixB, bLo, bHi),
		)
		var want []uint32
		for i := 0; i < n; i++ {
			if (a[i] >= aLo && a[i] < aHi) || (b[i] >= bLo && b[i] < bHi) {
				want = append(want, uint32(i))
			}
		}
		equalIDs(t, got, want, "disjunction")
		if st.Probes == 0 {
			t.Error("no probes recorded")
		}
	}
}

func TestEvaluateOrEmptyAndMisaligned(t *testing.T) {
	got, _ := EvaluateOr(nil)
	if len(got) != 0 {
		t.Error("empty disjunction not empty")
	}
	a := Build(randomCol(100, 10, 1), Options{Seed: 1})
	b := Build(randomCol(200, 10, 2), Options{Seed: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvaluateOr(nil, NewRangeConjunct(a, 0, 5), NewRangeConjunct(b, 0, 5))
}

func TestEvaluateAndNot(t *testing.T) {
	n := 6000
	rng := rand.New(rand.NewPCG(43, 44))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(rng.IntN(10000))
		b[i] = int64(rng.IntN(10000))
	}
	ixA := Build(a, Options{Seed: 1})
	ixB := Build(b, Options{Seed: 2})
	for q := 0; q < 25; q++ {
		aLo := int64(rng.IntN(9000))
		aHi := aLo + int64(rng.IntN(3000))
		bLo := int64(rng.IntN(9000))
		bHi := bLo + int64(rng.IntN(3000))
		got, _ := EvaluateAndNot(nil,
			NewRangeConjunct(ixA, aLo, aHi),
			NewRangeConjunct(ixB, bLo, bHi),
		)
		var want []uint32
		for i := 0; i < n; i++ {
			if a[i] >= aLo && a[i] < aHi && !(b[i] >= bLo && b[i] < bHi) {
				want = append(want, uint32(i))
			}
		}
		equalIDs(t, got, want, "and-not")
	}
}

func TestEvaluateAndNotSameColumn(t *testing.T) {
	// "v in [0, 1000) AND NOT v in [200, 300)" over one column.
	col := randomCol(4000, 1000, 45)
	ix := Build(col, Options{Seed: 1})
	got, _ := EvaluateAndNot(nil,
		NewRangeConjunct(ix, 0, 1000),
		NewRangeConjunct(ix, 200, 300),
	)
	var want []uint32
	for i, v := range col {
		if v < 1000 && !(v >= 200 && v < 300) {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "same-column and-not")
}

func TestRangeIteratorMatchesRangeIDs(t *testing.T) {
	cols := map[string][]int64{
		"clustered": clusteredCol(5000, 1),
		"random":    randomCol(5000, 100000, 2),
		"partial":   randomCol(5003, 1000, 3),
		"tiny":      randomCol(3, 50, 4),
	}
	rng := rand.New(rand.NewPCG(5, 5))
	for name, col := range cols {
		ix := Build(col, Options{Seed: 7})
		for q := 0; q < 20; q++ {
			low := int64(rng.IntN(1000000))
			high := low + int64(rng.IntN(100000))
			var got []uint32
			for id := range ix.Range(low, high) {
				got = append(got, id)
			}
			want, _ := ix.RangeIDs(low, high, nil)
			equalIDs(t, got, want, name)
		}
	}
}

func TestRangeIteratorEarlyStop(t *testing.T) {
	col := sortedCol(10000)
	ix := Build(col, Options{Seed: 1})
	// LIMIT 5 over a huge result.
	var got []uint32
	for id := range ix.Range(0, 1<<40) {
		got = append(got, id)
		if len(got) == 5 {
			break
		}
	}
	if len(got) != 5 {
		t.Fatalf("collected %d ids", len(got))
	}
	for i, id := range got {
		if id != uint32(i) {
			t.Fatalf("got[%d] = %d", i, id)
		}
	}
}

func TestEstimateSelectivity(t *testing.T) {
	// Uniform data: the estimate should track the true selectivity
	// closely across the sweep.
	rng := rand.New(rand.NewPCG(6, 6))
	col := make([]int64, 100000)
	for i := range col {
		col[i] = int64(rng.IntN(1 << 30))
	}
	ix := Build(col, Options{Seed: 1})
	for _, sel := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		low := int64(0)
		high := int64(sel * float64(int64(1)<<30))
		est := ix.EstimateSelectivity(low, high)
		truth := float64(len(scanIDs(col, low, high))) / float64(len(col))
		if diff := est - truth; diff < -0.08 || diff > 0.08 {
			t.Errorf("sel %.2f: estimate %.3f, truth %.3f", sel, est, truth)
		}
	}
	// Degenerate and full ranges.
	if got := ix.EstimateSelectivity(5, 5); got != 0 {
		t.Errorf("empty range estimate %v", got)
	}
	if got := ix.EstimateSelectivity(0, 1<<30); got < 0.9 {
		t.Errorf("full range estimate %v", got)
	}
}

func TestEstimateSelectivityBounds(t *testing.T) {
	f := func(seed uint64, a, b int64) bool {
		col := clusteredCol(2000, seed)
		ix := Build(col, Options{Seed: seed})
		if a > b {
			a, b = b, a
		}
		est := ix.EstimateSelectivity(a, b)
		return est >= 0 && est <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
