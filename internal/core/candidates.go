package core

import (
	"math/bits"

	"repro/internal/coltype"
)

// CandidateRun is a maximal run of consecutive cachelines that may
// contain qualifying values. Exact runs are cachelines whose every value
// is guaranteed to qualify (the innermask fast path), so materialization
// can skip the false-positive check. Candidate runs are the currency of
// the late-materialization strategy of Section 3: for multi-attribute
// conjunctions the per-column runs are merge-joined *before* any value is
// touched, and only the surviving cachelines are checked.
type CandidateRun struct {
	Start uint32 // first cacheline number of the run
	Count uint32 // number of consecutive cachelines
	Exact bool   // every value in the run qualifies
}

// RangeCachelines evaluates [low, high) down to a candidate cacheline
// list without materializing ids.
func (ix *Index[V]) RangeCachelines(low, high V) ([]CandidateRun, QueryStats) {
	return ix.RangeCachelinesInto(nil, low, high)
}

// RangeCachelinesInto is RangeCachelines appending into dst (pass a
// recycled buffer truncated to length 0 to avoid the allocation).
func (ix *Index[V]) RangeCachelinesInto(dst []CandidateRun, low, high V) ([]CandidateRun, QueryStats) {
	p := pred[V]{low: low, high: high, lowIncl: true}
	return ix.cachelinesPred(&p, dst)
}

// AtLeastCachelines evaluates v >= low down to candidate cachelines.
func (ix *Index[V]) AtLeastCachelines(low V) ([]CandidateRun, QueryStats) {
	return ix.AtLeastCachelinesInto(nil, low)
}

// AtLeastCachelinesInto is AtLeastCachelines appending into dst.
func (ix *Index[V]) AtLeastCachelinesInto(dst []CandidateRun, low V) ([]CandidateRun, QueryStats) {
	p := pred[V]{low: low, lowIncl: true, highUnb: true}
	return ix.cachelinesPred(&p, dst)
}

// LessThanCachelines evaluates v < high down to candidate cachelines.
func (ix *Index[V]) LessThanCachelines(high V) ([]CandidateRun, QueryStats) {
	return ix.LessThanCachelinesInto(nil, high)
}

// LessThanCachelinesInto is LessThanCachelines appending into dst.
func (ix *Index[V]) LessThanCachelinesInto(dst []CandidateRun, high V) ([]CandidateRun, QueryStats) {
	p := pred[V]{high: high, lowUnb: true}
	return ix.cachelinesPred(&p, dst)
}

// PointCachelines evaluates v == x down to candidate cachelines.
func (ix *Index[V]) PointCachelines(x V) ([]CandidateRun, QueryStats) {
	return ix.PointCachelinesInto(nil, x)
}

// PointCachelinesInto is PointCachelines appending into dst.
func (ix *Index[V]) PointCachelinesInto(dst []CandidateRun, x V) ([]CandidateRun, QueryStats) {
	p := pred[V]{low: x, high: x, lowIncl: true, highIncl: true}
	return ix.cachelinesPred(&p, dst)
}

func (ix *Index[V]) cachelinesPred(p *pred[V], dst []CandidateRun) ([]CandidateRun, QueryStats) {
	var st QueryStats
	mask, inner := ix.masks(p)
	runs := dst

	push := func(cl, cnt int, exact bool) {
		if n := len(runs); n > 0 {
			last := &runs[n-1]
			if last.Exact == exact && last.Start+last.Count == uint32(cl) {
				last.Count += uint32(cnt)
				return
			}
		}
		runs = append(runs, CandidateRun{Start: uint32(cl), Count: uint32(cnt), Exact: exact})
	}

	iVec, cl := 0, 0
	for _, e := range ix.dict {
		cnt := int(e.Count())
		if e.Repeat() {
			st.Probes++
			vec := ix.vecs.get(iVec)
			iVec++
			if vec&mask != 0 {
				exact := vec&^inner == 0
				if exact {
					st.CachelinesExact += uint64(cnt)
				} else {
					st.CachelinesScanned += uint64(cnt)
				}
				push(cl, cnt, exact)
			} else {
				st.CachelinesSkipped += uint64(cnt)
			}
			cl += cnt
		} else {
			for j := 0; j < cnt; j++ {
				st.Probes++
				vec := ix.vecs.get(iVec)
				iVec++
				if vec&mask != 0 {
					exact := vec&^inner == 0
					if exact {
						st.CachelinesExact++
					} else {
						st.CachelinesScanned++
					}
					push(cl, 1, exact)
				} else {
					st.CachelinesSkipped++
				}
				cl++
			}
		}
	}
	if ix.pendingCount > 0 {
		st.Probes++
		if ix.pendingVec&mask != 0 {
			// The partial tail is never exact: its cacheline is not full.
			st.CachelinesScanned++
			push(ix.committed, 1, false)
		} else {
			st.CachelinesSkipped++
		}
	}
	return runs, st
}

// IntersectRuns merge-joins two sorted candidate run lists, keeping only
// cachelines present in both. An output cacheline is Exact only when it
// is exact on both sides; otherwise values must be re-checked during
// materialization.
func IntersectRuns(a, b []CandidateRun) []CandidateRun {
	return IntersectRunsInto(nil, a, b)
}

// IntersectRunsInto is IntersectRuns appending into dst, which must not
// alias a or b.
func IntersectRunsInto(dst, a, b []CandidateRun) []CandidateRun {
	out := dst
	push := func(start, count uint32, exact bool) {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Exact == exact && last.Start+last.Count == start {
				last.Count += count
				return
			}
		}
		out = append(out, CandidateRun{Start: start, Count: count, Exact: exact})
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ra, rb := a[i], b[j]
		aEnd := ra.Start + ra.Count
		bEnd := rb.Start + rb.Count
		lo := max(ra.Start, rb.Start)
		hi := min(aEnd, bEnd)
		if lo < hi {
			push(lo, hi-lo, ra.Exact && rb.Exact)
		}
		if aEnd <= bEnd {
			i++
		}
		if bEnd <= aEnd {
			j++
		}
	}
	return out
}

// TotalCachelines sums the cachelines covered by a run list.
func TotalCachelines(runs []CandidateRun) uint64 {
	var t uint64
	for _, r := range runs {
		t += uint64(r.Count)
	}
	return t
}

// CheckFunc reports whether row id satisfies a conjunct's predicate on
// its own base column.
type CheckFunc func(id uint32) bool

// RangeCheck returns a CheckFunc testing ix's column against [low, high);
// it is the per-conjunct residual predicate applied after merge-joining
// candidate runs.
func (ix *Index[V]) RangeCheck(low, high V) CheckFunc {
	col := ix.col
	return func(id uint32) bool {
		v := col[id]
		return v >= low && v < high
	}
}

// AppendMaskIDs appends base+i, in ascending order, for every set bit i
// of a 64-row selection mask. It is the one expansion step from
// selection masks back to row ids, shared by the vectorized table
// executors and MaterializeRuns.
//
//imprintvet:hotpath
func AppendMaskIDs(dst []uint32, base uint32, mask uint64) []uint32 {
	for mask != 0 {
		dst = append(dst, base+uint32(bits.TrailingZeros64(mask)))
		mask &= mask - 1
	}
	return dst
}

// MaterializeRuns converts a candidate run list into ascending ids,
// applying every check to rows of non-exact runs (exact runs are emitted
// wholesale). vpc is the values-per-cacheline of the indexes that
// produced the runs (they must agree), and n bounds ids of the trailing
// partial cacheline. comparisons reports how many residual predicate
// evaluations were spent.
//
// Evaluation is block-at-a-time, mirroring the table layer's vectorized
// walk: each run is consumed in chunks of up to 64 rows folded into a
// selection mask — exact chunks fill the mask wholesale, checked chunks
// set one bit per surviving row (checks still short-circuit per row, so
// the comparison count is unchanged) — and the mask expands to ids
// through AppendMaskIDs.
func MaterializeRuns(runs []CandidateRun, vpc, n int, res []uint32, checks ...CheckFunc) (ids []uint32, comparisons uint64) {
	for _, r := range runs {
		from := int(r.Start) * vpc
		to := (int(r.Start) + int(r.Count)) * vpc
		if to > n {
			to = n
		}
		for b := from; b < to; b += 64 {
			be := b + 64
			if be > to {
				be = to
			}
			var m uint64
			if r.Exact {
				m = ^uint64(0) >> (64 - uint(be-b))
			} else {
				for id := b; id < be; id++ {
					ok := true
					for _, c := range checks {
						comparisons++
						if !c(uint32(id)) {
							ok = false
							break
						}
					}
					if ok {
						m |= 1 << uint(id-b)
					}
				}
			}
			res = AppendMaskIDs(res, uint32(b), m)
		}
	}
	return res, comparisons
}

// Conjunct pairs an index with a range so multi-attribute conjunctions
// can be expressed over columns of different value types.
type Conjunct interface {
	// Runs evaluates the conjunct to its candidate cacheline list.
	Runs() ([]CandidateRun, QueryStats)
	// Check is the residual predicate on the conjunct's base column.
	Check() CheckFunc
	// Geometry returns the values-per-cacheline and column length, which
	// must agree across all conjuncts of one conjunction.
	Geometry() (vpc, n int)
}

// rangeConjunct is the Conjunct for a [low, high) predicate over an
// imprints index.
type rangeConjunct[V coltype.Value] struct {
	ix        *Index[V]
	low, high V
}

// NewRangeConjunct builds a Conjunct for low <= ix.Column()[id] < high.
func NewRangeConjunct[V coltype.Value](ix *Index[V], low, high V) Conjunct {
	return &rangeConjunct[V]{ix: ix, low: low, high: high}
}

func (c *rangeConjunct[V]) Runs() ([]CandidateRun, QueryStats) {
	return c.ix.RangeCachelines(c.low, c.high)
}

func (c *rangeConjunct[V]) Check() CheckFunc { return c.ix.RangeCheck(c.low, c.high) }

func (c *rangeConjunct[V]) Geometry() (int, int) { return c.ix.vpc, c.ix.n }

// EvaluateAnd evaluates a conjunction of range predicates with late
// materialization: each conjunct is reduced to candidate cachelines, the
// lists are merge-joined, and only then are the surviving rows checked
// against the residual predicates (Section 3's multi-attribute
// evaluation). All conjuncts must cover columns of identical length and
// cacheline geometry.
func EvaluateAnd(res []uint32, conjs ...Conjunct) ([]uint32, QueryStats) {
	if len(conjs) == 0 {
		return res, QueryStats{}
	}
	var st QueryStats
	vpc0, n0 := conjs[0].Geometry()
	runs, s := conjs[0].Runs()
	st.Add(s)
	for _, c := range conjs[1:] {
		vpc, n := c.Geometry()
		if vpc != vpc0 || n != n0 {
			panic("core: conjunction over misaligned columns")
		}
		r, s := c.Runs()
		st.Add(s)
		runs = IntersectRuns(runs, r)
		if len(runs) == 0 {
			return res, st
		}
	}
	checks := make([]CheckFunc, len(conjs))
	for i, c := range conjs {
		checks[i] = c.Check()
	}
	ids, comparisons := MaterializeRuns(runs, vpc0, n0, res, checks...)
	st.Comparisons += comparisons
	return ids, st
}
