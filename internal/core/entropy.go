package core

import (
	"math/bits"
	"strings"
)

// Entropy computes the column entropy E of Section 6.1:
//
//	E = sum_{i=2..n} d(i, i-1) / (2 * sum_{i=1..n} b(i))
//
// where d is the edit distance between consecutive per-cacheline imprint
// vectors (bits to set plus bits to unset, i.e. popcount of the XOR) and
// b(i) is the number of set bits of vector i. E is 0 for perfectly
// clustered/ordered columns and approaches 1 for random ones.
func (ix *Index[V]) Entropy() float64 {
	var num, den uint64
	var prev uint64
	first := true
	ix.runs(func(vec uint64, count int) bool {
		if !first {
			num += uint64(bits.OnesCount64(prev ^ vec))
		}
		// Transitions inside a repeat run have distance 0.
		den += uint64(count) * uint64(bits.OnesCount64(vec))
		prev = vec
		first = false
		return true
	})
	if ix.pendingCount > 0 {
		if !first {
			num += uint64(bits.OnesCount64(prev ^ ix.pendingVec))
		}
		den += uint64(bits.OnesCount64(ix.pendingVec))
	}
	if den == 0 {
		return 0
	}
	return float64(num) / (2 * float64(den))
}

// Fingerprint renders up to maxLines per-cacheline imprint vectors as
// 'x'/'.' rows, reproducing the prints of Figure 3. Each line is Bins
// characters wide; bit 0 (the lowest bin) is leftmost. maxLines <= 0
// renders everything.
func (ix *Index[V]) Fingerprint(maxLines int) string {
	if maxLines <= 0 {
		maxLines = ix.Cachelines()
	}
	var sb strings.Builder
	bins := ix.hist.Bins
	line := make([]byte, bins+1)
	line[bins] = '\n'
	emitted := 0
	render := func(vec uint64) bool {
		for b := 0; b < bins; b++ {
			if vec&(1<<uint(b)) != 0 {
				line[b] = 'x'
			} else {
				line[b] = '.'
			}
		}
		sb.Write(line)
		emitted++
		return emitted < maxLines
	}
	cont := true
	ix.decompress(func(_ int, vec uint64) bool {
		cont = render(vec)
		return cont
	})
	if cont && ix.pendingCount > 0 {
		render(ix.pendingVec)
	}
	return sb.String()
}
