package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMinMax(t *testing.T) {
	cols := map[string][]int64{
		"sorted":    sortedCol(5000),
		"random":    randomCol(5000, 1000000, 81),
		"clustered": clusteredCol(5000, 82),
		"skewed":    skewedCol(5000, 83),
		"constant":  constantCol(5000),
		"tiny":      randomCol(3, 100, 84),
		"partial":   randomCol(5003, 100000, 85),
	}
	for name, col := range cols {
		ix := Build(col, Options{Seed: 9})
		wantMin, wantMax := col[0], col[0]
		for _, v := range col {
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		gotMin, _ := ix.Min()
		gotMax, _ := ix.Max()
		if gotMin != wantMin {
			t.Errorf("%s: Min = %d, want %d", name, gotMin, wantMin)
		}
		if gotMax != wantMax {
			t.Errorf("%s: Max = %d, want %d", name, gotMax, wantMax)
		}
	}
}

func TestMinMaxSkipsCachelines(t *testing.T) {
	// Clustered data: the extreme bin occupies few cachelines, so the
	// aggregate reads a fraction of the column.
	col := sortedCol(100000)
	ix := Build(col, Options{Seed: 9})
	_, st := ix.Min()
	if st.CachelinesSkipped == 0 {
		t.Error("Min skipped nothing on sorted data")
	}
	if st.Comparisons >= uint64(len(col))/2 {
		t.Errorf("Min compared %d values of %d", st.Comparisons, len(col))
	}
}

func TestMinMaxFloats(t *testing.T) {
	col := uniformFloats(8000, 86)
	ix := Build(col, Options{Seed: 3})
	wantMin, wantMax := col[0], col[0]
	for _, v := range col {
		if v < wantMin {
			wantMin = v
		}
		if v > wantMax {
			wantMax = v
		}
	}
	if got, _ := ix.Min(); got != wantMin {
		t.Errorf("Min = %v, want %v", got, wantMin)
	}
	if got, _ := ix.Max(); got != wantMax {
		t.Errorf("Max = %v, want %v", got, wantMax)
	}
}

func TestQuickMinMax(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xa99))
		n := 1 + rng.IntN(3000)
		col := make([]int32, n)
		for i := range col {
			col[i] = int32(rng.IntN(100000) - 50000)
		}
		ix := Build(col, Options{Seed: seed})
		wantMin, wantMax := col[0], col[0]
		for _, v := range col {
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		gotMin, _ := ix.Min()
		gotMax, _ := ix.Max()
		return gotMin == wantMin && gotMax == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Deliberate stale-bit trap: the unique global minimum is updated away
// to a large value. Its old bin bit stays set (MarkUpdated only adds
// bits), so the lowest occupied bit points at a cacheline that no
// longer holds any low value — Min must detect the stale bin and walk
// on to the true minimum in a different cacheline.
func TestMinMaxStaleBitTrap(t *testing.T) {
	col := make([]int64, 4096)
	for i := range col {
		col[i] = 500000 + int64(i%1000)
	}
	col[17] = 3 // unique global min, cacheline 2
	ix := Build(col, Options{Seed: 5})
	// Replace the min in place; the imprint keeps the stale low bit.
	col[17] = 900000
	ix.MarkUpdated(17, 900000)
	wantMin := col[0]
	for _, v := range col {
		if v < wantMin {
			wantMin = v
		}
	}
	if got, _ := ix.Min(); got != wantMin {
		t.Fatalf("Min with stale bit = %d, want %d", got, wantMin)
	}
	// Symmetric trap for Max.
	col2 := make([]int64, 4096)
	for i := range col2 {
		col2[i] = 1000 + int64(i%1000)
	}
	col2[33] = 99_000_000
	ix2 := Build(col2, Options{Seed: 6})
	col2[33] = 5
	ix2.MarkUpdated(33, 5)
	wantMax := col2[0]
	for _, v := range col2 {
		if v > wantMax {
			wantMax = v
		}
	}
	if got, _ := ix2.Max(); got != wantMax {
		t.Fatalf("Max with stale bit = %d, want %d", got, wantMax)
	}
}

// After in-place update marking, Min/Max may widen their candidate set
// but must still be correct for the CURRENT column contents.
func TestMinMaxAfterUpdates(t *testing.T) {
	col := randomCol(4000, 1000, 87)
	ix := Build(col, Options{Seed: 4})
	rng := rand.New(rand.NewPCG(88, 88))
	for u := 0; u < 100; u++ {
		id := rng.IntN(len(col))
		nv := int64(rng.IntN(2000) - 500)
		col[id] = nv
		ix.MarkUpdated(id, nv)
	}
	wantMin, wantMax := col[0], col[0]
	for _, v := range col {
		if v < wantMin {
			wantMin = v
		}
		if v > wantMax {
			wantMax = v
		}
	}
	if got, _ := ix.Min(); got != wantMin {
		t.Errorf("Min after updates = %d, want %d", got, wantMin)
	}
	if got, _ := ix.Max(); got != wantMax {
		t.Errorf("Max after updates = %d, want %d", got, wantMax)
	}
}
