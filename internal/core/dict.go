package core

import "fmt"

// DictEntry is one entry of the cacheline dictionary (the paper's
// cache_dict struct): a 32-bit value packing a 24-bit cacheline counter,
// the repeat flag, and 7 unused flag bits reserved for future use.
//
// With repeat unset, the next Count() cachelines each map to their own
// stored imprint vector (Count vectors consumed). With repeat set, the
// next Count() cachelines all share one stored imprint vector.
type DictEntry uint32

// MaxCount is the largest cacheline count a single dictionary entry can
// hold (2^24 - 1); longer runs simply span several entries.
const MaxCount = 1<<24 - 1

const repeatBit = 1 << 24

// makeEntry builds an entry from a count and repeat flag.
func makeEntry(count uint32, repeat bool) DictEntry {
	if count > MaxCount {
		panic(fmt.Sprintf("core: dictionary count %d exceeds 24 bits", count))
	}
	e := DictEntry(count)
	if repeat {
		e |= repeatBit
	}
	return e
}

// Count returns the number of cachelines this entry covers.
func (e DictEntry) Count() uint32 { return uint32(e) & MaxCount }

// Repeat reports whether the covered cachelines share one imprint vector.
func (e DictEntry) Repeat() bool { return e&repeatBit != 0 }

// String renders the entry for debugging: "7×distinct" or "13×repeat".
func (e DictEntry) String() string {
	if e.Repeat() {
		return fmt.Sprintf("%d×repeat", e.Count())
	}
	return fmt.Sprintf("%d×distinct", e.Count())
}

// commit pushes the imprint vector of one completed cacheline through the
// compression state machine of Algorithm 1. It either extends the current
// dictionary entry or opens a new one, storing the vector only when it
// differs from the previous cacheline's vector (or when a counter
// saturates).
func (ix *Index[V]) commit(vec uint64) {
	if len(ix.dict) == 0 {
		ix.vecs.append(vec)
		ix.dict = append(ix.dict, makeEntry(1, false))
		ix.committed++
		return
	}
	d := len(ix.dict) - 1
	e := ix.dict[d]
	if vec == ix.vecs.last() && e.Count() < MaxCount {
		// Same imprint as the previous cacheline: fold into a repeat run.
		if !e.Repeat() {
			if e.Count() != 1 {
				// The previous cacheline leaves the distinct group and
				// seeds a fresh repeat entry.
				ix.dict[d] = makeEntry(e.Count()-1, false)
				ix.dict = append(ix.dict, makeEntry(1, true))
				d++
			} else {
				ix.dict[d] = makeEntry(1, true)
			}
		}
		ix.dict[d] = makeEntry(ix.dict[d].Count()+1, true)
	} else {
		// Different imprint (or a saturated counter): store the vector.
		ix.vecs.append(vec)
		if !e.Repeat() && e.Count() < MaxCount {
			ix.dict[d] = makeEntry(e.Count()+1, false)
		} else {
			ix.dict = append(ix.dict, makeEntry(1, false))
		}
	}
	ix.committed++
}

// commitRun is equivalent to calling commit(vec) count times but runs in
// O(1) amortized per run. It is the workhorse of parallel construction,
// where per-part compressed streams are replayed into a master index.
func (ix *Index[V]) commitRun(vec uint64, count int) {
	if count <= 0 {
		return
	}
	// First cacheline goes through the full state machine.
	ix.commit(vec)
	count--
	if count == 0 {
		return
	}
	// All remaining cachelines repeat the last committed vector. Extend
	// the tail entry, chunking at the 24-bit counter limit.
	for count > 0 {
		d := len(ix.dict) - 1
		e := ix.dict[d]
		if e.Count() >= MaxCount {
			// Saturated: sequential commit would store the vector again
			// and open a distinct entry, which subsequent repeats then
			// convert; replicate the end state directly.
			ix.vecs.append(vec)
			ix.dict = append(ix.dict, makeEntry(1, false))
			ix.committed++
			count--
			continue
		}
		if !e.Repeat() {
			if e.Count() != 1 {
				ix.dict[d] = makeEntry(e.Count()-1, false)
				ix.dict = append(ix.dict, makeEntry(1, true))
				d++
			} else {
				ix.dict[d] = makeEntry(1, true)
			}
			e = ix.dict[d]
		}
		add := uint32(count)
		if room := MaxCount - e.Count(); add > room {
			add = room
		}
		ix.dict[d] = makeEntry(e.Count()+add, true)
		ix.committed += int(add)
		count -= int(add)
	}
}

// decompress iterates the per-cacheline imprint vector stream hidden
// behind the dictionary compression, calling f(cacheline, vec) for every
// committed cacheline in order. It stops early if f returns false.
// The trailing partial cacheline (if any) is NOT visited; use
// PendingVector for it.
func (ix *Index[V]) decompress(f func(cl int, vec uint64) bool) {
	iVec, cl := 0, 0
	for _, e := range ix.dict {
		cnt := int(e.Count())
		if e.Repeat() {
			vec := ix.vecs.get(iVec)
			iVec++
			for j := 0; j < cnt; j++ {
				if !f(cl, vec) {
					return
				}
				cl++
			}
		} else {
			for j := 0; j < cnt; j++ {
				if !f(cl, ix.vecs.get(iVec)) {
					return
				}
				iVec++
				cl++
			}
		}
	}
}

// runs iterates the compressed stream as (vec, runLength) pairs: each
// repeat entry yields one run; each distinct group yields Count runs of
// length 1. Used by entropy computation and the two-level index.
func (ix *Index[V]) runs(f func(vec uint64, count int) bool) {
	iVec := 0
	for _, e := range ix.dict {
		cnt := int(e.Count())
		if e.Repeat() {
			if !f(ix.vecs.get(iVec), cnt) {
				return
			}
			iVec++
		} else {
			for j := 0; j < cnt; j++ {
				if !f(ix.vecs.get(iVec), 1) {
					return
				}
				iVec++
			}
		}
	}
}
