package analyzers

import (
	"go/ast"
	"go/token"
)

// Locksafe enforces the engine's lock discipline on every function:
//
//   - every Lock/RLock is released on every return path (directly or
//     by a deferred unlock);
//   - no RLock -> Lock upgrade on the same mutex (an upgrade
//     self-deadlocks under sync.RWMutex);
//   - no re-acquisition of a lock class already held (sync mutexes are
//     not reentrant);
//   - acquisitions respect the declared //imprintvet:lockorder;
//   - calls into //imprintvet:locks held= functions happen with the
//     required locks held.
//
// Functions annotated returns-held=/releases= transfer ownership and
// are checked in loose mode (order + upgrades only).
var Locksafe = &Analyzer{
	Name: "locksafe",
	Doc:  "check lock balance, upgrades, and the declared lock order",
	Run:  runLocksafe,
}

func runLocksafe(p *Pass) {
	for _, fd := range funcDecls(p.Files, p.Info) {
		ann := p.Idx.FuncAnnOf(fd.obj)
		var locks *FuncLocks
		if ann != nil {
			locks = ann.Locks
		}
		lockScope(p, fd.decl.Body, locks, nil)
	}
}

// lockScope interprets one function scope (declaration or literal).
// lexical is the lock state captured at a literal's creation point —
// holds the literal can rely on but does not own.
func lockScope(p *Pass, body *ast.BlockStmt, locks *FuncLocks, lexical lockState) {
	loose := locks != nil && locks.Loose()
	tr := &tracer{info: p.Info, idx: p.Idx, loose: loose}

	seed := lexical.clone()
	if locks != nil {
		seed = append(seed, seedState(locks.Held, body.Pos())...)
	}

	tr.onAcquire = func(pos token.Pos, nl heldLock, held lockState) {
		checkAcquire(p, pos, nl, held, loose)
	}
	tr.onBadRelease = func(pos token.Pos, key string, read bool) {
		op := "Unlock"
		if read {
			op = "RUnlock"
		}
		p.Reportf(pos, "%s of %s which is not held on this path", op, key)
	}
	tr.onExit = func(pos token.Pos, leaked lockState) {
		if loose {
			return
		}
		for _, l := range leaked {
			p.Reportf(l.pos, "%s is locked here but not released on the return path at line %d",
				l.key, p.Fset.Position(pos).Line)
		}
	}
	tr.onMismatch = func(pos token.Pos, what string, a, b lockState) {
		p.Reportf(pos, "lock state diverges across %s: %s vs %s (annotate returns-held=/releases= if ownership transfer is intended)",
			what, describe(a), describe(b))
	}
	tr.onCallReq = func(pos token.Pos, callee string, req LockRef, ok bool) {
		if !ok {
			p.Reportf(pos, "call to %s requires %s held (//imprintvet:locks held=%s) but it is not on this path",
				callee, req, req)
		}
	}
	tr.onUnhandled = func(pos token.Pos, what string) {
		p.Reportf(pos, "locksafe cannot follow %s", what)
	}
	tr.onFuncLit = func(lit *ast.FuncLit, st lockState) {
		// A literal's body is its own scope: it may rely on the locks
		// lexically held where it was created (segment callbacks run
		// under the coordinator's read lock) but must balance its own.
		inherited := st.clone()
		for i := range inherited {
			inherited[i].seeded = true
		}
		lockScope(p, lit.Body, nil, inherited)
	}

	tr.run(body, seed)
}

// checkAcquire validates one acquisition (direct or summarized)
// against the current holds: upgrades, re-entry, and declared order.
func checkAcquire(p *Pass, pos token.Pos, nl heldLock, held lockState, loose bool) {
	for _, h := range held {
		if h.key == nl.key {
			if h.read && !nl.read {
				p.Reportf(pos, "lock upgrade: %s is read-locked and Lock would deadlock; release the read lock first", nl.key)
			} else {
				p.Reportf(pos, "%s is already held (acquired at line %d); sync mutexes are not reentrant",
					nl.key, p.Fset.Position(h.pos).Line)
			}
			return
		}
	}
	for _, h := range held {
		if h.class == nl.class {
			// Two holds of one class are distinct instances only in
			// ownership-transfer code (the shard kid loops) — loose
			// scopes suppress this, everything else reports.
			if !loose {
				p.Reportf(pos, "acquiring %s while %s of the same lock class %q is held", nl.key, h.key, nl.class)
				return
			}
			continue
		}
		hp, np := p.Idx.OrderPos(h.class), p.Idx.OrderPos(nl.class)
		if hp >= 0 && np >= 0 && np < hp {
			p.Reportf(pos, "lock order violation: acquiring %s (class %s) while holding %s (class %s); declared order is %s before %s",
				nl.key, nl.class, h.key, h.class, nl.class, h.class)
			return
		}
	}
}
