// Locksafe fixture: balance, upgrades, ordering, held= requirements,
// and ownership transfer.
//
//imprintvet:lockorder a,mu
package fixture

import "sync"

type T struct {
	a  sync.Mutex
	mu sync.RWMutex
}

func (t *T) leaks(cond bool) {
	t.mu.Lock() // want "t\.mu is locked here but not released on the return path"
	if cond {
		return
	}
	t.mu.Unlock()
}

func (t *T) balanced() {
	t.mu.Lock()
	defer t.mu.Unlock()
}

func (t *T) upgrade() {
	t.mu.RLock()
	t.mu.Lock() // want "lock upgrade: t\.mu is read-locked"
	t.mu.Unlock()
	t.mu.RUnlock()
}

func (t *T) wrongOrder() {
	t.mu.Lock()
	t.a.Lock() // want "lock order violation: acquiring t\.a \(class a\) while holding t\.mu \(class mu\)"
	t.a.Unlock()
	t.mu.Unlock()
}

func (t *T) rightOrder() {
	t.a.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	t.a.Unlock()
}

// useLocked reads state the caller must have locked.
//
//imprintvet:locks held=mu.R
func (t *T) useLocked() int { return 0 }

func (t *T) callsWithout() int {
	return t.useLocked() // want "call to useLocked requires mu\.R held"
}

func (t *T) callsWith() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.useLocked()
}

// acquireRead hands its read lock to the caller.
//
//imprintvet:locks returns-held=mu.R
func (t *T) acquireRead() { t.mu.RLock() }

func (t *T) usesTransfer() int {
	t.acquireRead()
	n := t.useLocked()
	t.mu.RUnlock()
	return n
}

func (t *T) diverges(cond bool) {
	if cond { // want "lock state diverges across if/else branches"
		t.mu.Lock()
	}
	t.mu.Unlock()
}

func (t *T) unlocksUnheld() {
	t.mu.Unlock() // want "Unlock of t\.mu which is not held on this path"
}

type U struct{ mu sync.Mutex }

func two(x, y *U) {
	x.mu.Lock()
	y.mu.Lock() // want "acquiring y\.mu while x\.mu of the same lock class .mu. is held"
	y.mu.Unlock()
	x.mu.Unlock()
}

// column mimics the engine's anyColumn: held= contracts live on the
// interface methods, so calls through the interface are checked.
type column interface {
	// install appends under the table's write lock.
	//
	//imprintvet:locks held=mu
	install(v int)
}

func (t *T) installsWithout(c column) {
	c.install(1) // want "call to install requires mu held"
}

func (t *T) installsWith(c column) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c.install(1)
}

func (t *T) tryOK() {
	if t.mu.TryLock() {
		t.mu.Unlock()
	}
}

func (t *T) tryNeg() bool {
	if !t.mu.TryLock() {
		return false
	}
	t.mu.Unlock()
	return true
}
