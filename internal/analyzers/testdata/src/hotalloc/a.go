// Hotalloc fixture: per-call allocations inside annotated hot paths;
// pooled scratch and unannotated functions stay quiet.
package fixture

import "fmt"

type cursor struct {
	scratch []int64
}

//imprintvet:hotpath
func hotCount(vals []int64, lo, hi int64) int {
	n := 0
	for _, v := range vals {
		if v >= lo && v < hi {
			n++
		}
	}
	return n
}

//imprintvet:hotpath
func (c *cursor) hotIDs(vals []int64, lo int64) []int64 {
	c.scratch = c.scratch[:0]
	for i, v := range vals {
		if v >= lo {
			c.scratch = append(c.scratch, int64(i))
		}
	}
	return c.scratch
}

//imprintvet:hotpath
func hotBad(vals []int64) []int64 {
	out := make([]int64, 0, len(vals)) // want "make allocates in a hot path"
	for _, v := range vals {
		out = append(out, v) // want "append to function-local out can grow per call"
	}
	return out
}

//imprintvet:hotpath
func hotClosure(vals []int64, f func(int64)) {
	g := func(v int64) { f(v) } // want "function literal in hot path allocates a closure"
	for _, v := range vals {
		g(v)
	}
}

//imprintvet:hotpath
func hotFmt(v int64) string {
	return fmt.Sprintf("%d", v) // want "fmt\.Sprintf allocates"
}

func coldFmt(v int64) string {
	return fmt.Sprintf("%d", v)
}

//imprintvet:hotpath
func hotConvert(b []byte) string {
	return string(b) // want "conversion copies and allocates"
}

//imprintvet:hotpath
func hotComposite(v int64) []int64 {
	return []int64{v} // want "slice literal allocates in a hot path"
}

//imprintvet:hotpath
func hotConcat(a, b string) string {
	return a + b // want "string concatenation allocates in a hot path"
}
