// Snapshotsafe fixture: guarded-field access under held locks,
// held= annotations, snapshot functions, and closures.
//
//imprintvet:lockorder mu
package fixture

import "sync"

type Table struct {
	mu   sync.RWMutex
	segs []int //imprintvet:guarded by=mu
}

func (t *Table) bad() int {
	return len(t.segs) // want "access to t\.segs guarded by .mu. without the lock held"
}

func (t *Table) locked() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segs)
}

// helper runs under the caller's read lock.
//
//imprintvet:locks held=mu.R
func (t *Table) helper() int { return len(t.segs) }

// snapshotted works on state captured under the lock.
//
//imprintvet:snapshot
func (t *Table) snapshotted() int { return len(t.segs) }

func (t *Table) writeUnderRead() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.segs = append(t.segs, 1) // want "write to t\.segs guarded by .mu. without the write lock held"
}

func (t *Table) writeUnderWrite() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.segs = append(t.segs, 1)
}

func (t *Table) closureUnderLock() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f := func() int { return len(t.segs) }
	return f()
}

func (t *Table) closureUnlocked() func() int {
	return func() int {
		return len(t.segs) // want "access to t\.segs guarded by .mu. without the lock held"
	}
}
