// Allow fixture, run through the full suite: a justified suppression
// silences its diagnostic, a stale one is itself reported, and
// malformed directives are caught.
package fixture

import "fmt"

//imprintvet:hotpath
func allowedFmt(v int64) string {
	//imprintvet:allow hotalloc cold error formatting is intentional here
	return fmt.Sprintf("%d", v)
}

//imprintvet:hotpath
func staleAllow(v int64) int64 {
	//imprintvet:allow hotalloc nothing allocates on this line // want "stale //imprintvet:allow hotalloc"
	return v + 1
}

//imprintvet:hotpath
func unknownName(v int64) int64 {
	//imprintvet:allow nosuchcheck because reasons // want "names unknown analyzer"
	return v + 3
}
