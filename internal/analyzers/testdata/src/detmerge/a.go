// Detmerge fixture: map-ordered accumulation with and without a
// downstream sort.
package fixture

import "sort"

func unsortedEmit(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "out accumulates map-iteration-ordered values"
	}
	return out
}

func sortedEmit(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortSliceEmit(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func perIterScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

type bucket struct{ rows []string }

func fieldSink(m map[string]int, b *bucket) {
	for k := range m {
		b.rows = append(b.rows, k) // want "b\.rows accumulates map-iteration-ordered values"
	}
}

func sliceRange(vs []string) []string {
	var out []string
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}
