// Package analyzers implements imprintvet, a static-analysis suite
// enforcing the engine's project-specific invariants — the documented
// lock order and lock balance (locksafe), snapshot discipline over
// guarded fields (snapshotsafe), deterministic merge output
// (detmerge), and allocation-free hot paths (hotalloc).
//
// The suite is built directly on go/ast and go/types (the build
// environment vendors no external modules), exposing the same shape as
// golang.org/x/tools/go/analysis: an Analyzer runs over one
// type-checked package through a Pass and reports position-anchored
// diagnostics. cmd/imprintvet adapts the suite to the `go vet
// -vettool` protocol so it runs over every package in CI.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Pass carries one package's worth of inputs to an analyzer and
// collects its diagnostics.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Idx   *Index

	analyzer string
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the analyzers in their canonical order.
func Suite() []*Analyzer {
	return []*Analyzer{Locksafe, Snapshotsafe, Detmerge, Hotalloc}
}

func knownAnalyzer(name string) bool {
	for _, a := range Suite() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// RunPackage runs the full suite over one type-checked package:
// test files are excluded, //imprintvet:allow suppressions are
// honored (and must each suppress something — a stale allow is itself
// a diagnostic), and malformed directives are reported. Diagnostics
// come back sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	files = nonTestFiles(fset, files)
	ix := buildIndex(fset, files, info)

	var all []Diagnostic
	for _, a := range Suite() {
		all = append(all, runOne(a, fset, files, pkg, info, ix)...)
	}
	all = applyAllows(all, ix)

	for _, pr := range ix.Problems {
		all = append(all, Diagnostic{Pos: fset.Position(pr.pos), Analyzer: "imprintvet", Message: pr.msg})
	}
	for _, al := range ix.Allows {
		if !al.Used {
			all = append(all, Diagnostic{
				Pos:      fset.Position(al.Pos),
				Analyzer: "imprintvet",
				Message:  fmt.Sprintf("stale //imprintvet:allow %s: no %s diagnostic here anymore — remove it", al.Analyzer, al.Analyzer),
			})
		}
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Message < all[j].Message
	})
	return all
}

// RunAnalyzer runs a single analyzer without suppression filtering —
// the raw view the fixture tests assert against.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	files = nonTestFiles(fset, files)
	ix := buildIndex(fset, files, info)
	return runOne(a, fset, files, pkg, info, ix)
}

func runOne(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, ix *Index) []Diagnostic {
	p := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, Idx: ix, analyzer: a.Name}
	a.Run(p)
	return p.diags
}

// applyAllows drops diagnostics covered by an //imprintvet:allow on
// the same line or the line directly above, marking the allows used.
func applyAllows(diags []Diagnostic, ix *Index) []Diagnostic {
	if len(ix.Allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, al := range ix.Allows {
			if al.Analyzer != d.Analyzer || al.File != d.Pos.Filename {
				continue
			}
			if al.Line == d.Pos.Line || al.Line == d.Pos.Line-1 {
				al.Used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	kept := make([]*ast.File, 0, len(files))
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// funcDecls yields every function declaration with a body, paired with
// its types object.
func funcDecls(files []*ast.File, info *types.Info) []funcDecl {
	var out []funcDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcDecl{decl: fd, obj: info.Defs[fd.Name]})
		}
	}
	return out
}

type funcDecl struct {
	decl *ast.FuncDecl
	obj  types.Object
}
