// Package analyzertest runs analyzer fixtures: small packages under
// testdata/src annotated with `// want "regexp"` comments naming the
// diagnostics each line must produce. It mirrors the x/tools
// analysistest contract on the stdlib toolchain — fixtures are
// type-checked with the source importer so no compiled stdlib or
// module cache is needed.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analyzers"
)

var (
	loadMu sync.Mutex
	fset   = token.NewFileSet()
	srcImp types.Importer
)

// Run type-checks the fixture package in dir and asserts that one
// analyzer's raw diagnostics (no suppression) match its want
// comments.
func Run(t *testing.T, an *analyzers.Analyzer, dir string) {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()
	files, pkg, info := load(t, dir)
	compare(t, files, analyzers.RunAnalyzer(an, fset, files, pkg, info))
}

// RunSuite runs the full suite with suppression and directive
// validation (analyzers.RunPackage) over the fixture — the mode that
// exercises //imprintvet:allow handling.
func RunSuite(t *testing.T, dir string) {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()
	files, pkg, info := load(t, dir)
	compare(t, files, analyzers.RunPackage(fset, files, pkg, info))
}

func load(t *testing.T, dir string) ([]*ast.File, *types.Package, *types.Info) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	if srcImp == nil {
		srcImp = importer.ForCompiler(fset, "source", nil)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: srcImp}
	pkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return files, pkg, info
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	used bool
}

var quoted = regexp.MustCompile(`"([^"]*)"`)

// wants extracts the expectations: a comment of the form
// `// want "re"` (or any comment with a trailing `// want "re"`,
// so directive comments can carry expectations too). Backslashes in
// the pattern are regexp syntax, taken verbatim.
func wants(t *testing.T, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var spec string
				if s, ok := strings.CutPrefix(text, "want "); ok {
					spec = s
				} else if i := strings.Index(text, "// want "); i >= 0 {
					spec = text[i+len("// want "):]
				} else {
					continue
				}
				ms := quoted.FindAllStringSubmatch(spec, -1)
				if len(ms) == 0 {
					t.Fatalf(`%s: malformed want comment %q (need "regexp")`, fset.Position(c.Pos()), c.Text)
				}
				pos := fset.Position(c.Pos())
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, src: m[1]})
				}
			}
		}
	}
	return out
}

func compare(t *testing.T, files []*ast.File, diags []analyzers.Diagnostic) {
	t.Helper()
	ws := wants(t, files)
	var surplus []string
	for _, d := range diags {
		matched := false
		for _, w := range ws {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			surplus = append(surplus, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range ws {
		if !w.used {
			surplus = append(surplus, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.src))
		}
	}
	sort.Strings(surplus)
	for _, s := range surplus {
		t.Error(s)
	}
}
