package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc type-checks one import-free source text and runs the full
// suite over it.
func checkSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return RunPackage(fset, []*ast.File{f}, pkg, info)
}

// TestDirectiveValidation pins the meta checks: malformed or dangling
// //imprintvet: directives are diagnostics in their own right, so a
// typo cannot silently disable an invariant.
func TestDirectiveValidation(t *testing.T) {
	diags := checkSrc(t, `package p

//imprintvet:allow locksafe

//imprintvet:bogus x

var x int //imprintvet:hotpath

type s struct {
	f int //imprintvet:guarded by=
}

//imprintvet:locks held=
func g() {}
`)
	wantSubstrings := []string{
		"needs a justification",
		`unknown imprintvet directive "bogus"`,
		"imprintvet:hotpath directive is not attached to a declaration",
		"bad imprintvet:guarded directive",
		"bad imprintvet:locks directive",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if d.Analyzer == "imprintvet" && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no imprintvet diagnostic containing %q in %v", want, diags)
		}
	}
	if len(diags) != len(wantSubstrings) {
		t.Errorf("got %d diagnostics, want %d: %v", len(diags), len(wantSubstrings), diags)
	}
}

// TestLockOrderValidation pins duplicate/empty lockorder handling.
func TestLockOrderValidation(t *testing.T) {
	diags := checkSrc(t, `package p

//imprintvet:lockorder a,b

//imprintvet:lockorder c,d
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "duplicate imprintvet:lockorder") {
		t.Errorf("want one duplicate-lockorder diagnostic, got %v", diags)
	}

	diags = checkSrc(t, `package p

//imprintvet:lockorder a,a
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "class a repeats") {
		t.Errorf("want one repeated-class diagnostic, got %v", diags)
	}
}

// TestTestFilesExcluded verifies _test.go files are neither analyzed
// nor allowed to carry suppressions.
func TestTestFilesExcluded(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p_test.go", `package p

//imprintvet:hotpath
func hot() []int {
	return make([]int, 1)
}
`, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	if diags := RunPackage(fset, []*ast.File{f}, pkg, info); len(diags) != 0 {
		t.Errorf("test file produced diagnostics: %v", diags)
	}
}
