package analyzers_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoVetClean builds the imprintvet vettool and runs it over the
// whole module, asserting zero diagnostics. This is the enforcement
// point for the suite's invariants in CI, and — because a stale
// //imprintvet:allow is itself reported as a diagnostic — it also
// guarantees every suppression in the tree still matches a real
// finding: deleting the code an allow was written for makes this test
// fail until the allow is deleted too.
func TestRepoVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and vets the whole module")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "imprintvet")

	build := exec.Command("go", "build", "-o", tool, "./cmd/imprintvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported diagnostics (stale allows count):\n%s", out)
	}
}

// moduleRoot walks up from the test's working directory to the
// directory holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
