package analyzers

import (
	"go/ast"
	"go/types"
)

// Snapshotsafe makes "one snapshot per read-lock acquisition" a
// checked property. Fields annotated //imprintvet:guarded by=<class>
// (segment lists, the delta handle, the delete bitmap) may only be
// touched while the guard class is held — tracked by the same lock
// interpreter locksafe uses — or inside a function annotated
// //imprintvet:snapshot, which declares that it operates on state
// captured while the lock was held (a deltaView, a sealed segment
// handed to a builder). Writes additionally require the write lock.
var Snapshotsafe = &Analyzer{
	Name: "snapshotsafe",
	Doc:  "check guarded-field access against held locks and snapshot annotations",
	Run:  runSnapshotsafe,
}

func runSnapshotsafe(p *Pass) {
	if len(p.Idx.Guards) == 0 {
		return
	}
	for _, fd := range funcDecls(p.Files, p.Info) {
		ann := p.Idx.FuncAnnOf(fd.obj)
		if ann != nil && ann.Snapshot {
			continue
		}
		var locks *FuncLocks
		if ann != nil {
			locks = ann.Locks
		}
		snapshotScope(p, fd.decl.Body, locks, nil)
	}
}

func snapshotScope(p *Pass, body *ast.BlockStmt, locks *FuncLocks, lexical lockState) {
	tr := &tracer{info: p.Info, idx: p.Idx, loose: true} // balance is locksafe's job
	seed := lexical.clone()
	if locks != nil {
		seed = append(seed, seedState(locks.Held, body.Pos())...)
	}
	tr.onStmt = func(n ast.Node, held lockState) {
		checkGuardedUses(p, n, held)
	}
	tr.onFuncLit = func(lit *ast.FuncLit, st lockState) {
		// Callbacks run while their creator's locks are held (segment
		// visitors execute under the coordinator's read lock), so the
		// lexical state carries into the literal.
		snapshotScope(p, lit.Body, nil, st)
	}
	tr.run(body, seed)
}

// checkGuardedUses inspects the expression operands of one leaf
// statement for guarded-field access.
func checkGuardedUses(p *Pass, n ast.Node, held lockState) {
	switch s := n.(type) {
	case *ast.ExprStmt:
		guardedExpr(p, s.X, held, false)
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			guardedExpr(p, lhs, held, true)
		}
		for _, rhs := range s.Rhs {
			guardedExpr(p, rhs, held, false)
		}
	case *ast.IncDecStmt:
		guardedExpr(p, s.X, held, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			guardedExpr(p, r, held, false)
		}
	case *ast.IfStmt:
		guardedExpr(p, s.Cond, held, false)
	case *ast.ForStmt:
		if s.Cond != nil {
			guardedExpr(p, s.Cond, held, false)
		}
	case *ast.RangeStmt:
		guardedExpr(p, s.X, held, false)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			guardedExpr(p, s.Tag, held, false)
		}
	case *ast.SendStmt:
		guardedExpr(p, s.Chan, held, false)
		guardedExpr(p, s.Value, held, false)
	case *ast.GoStmt:
		guardedExpr(p, s.Call, held, false)
	case *ast.DeferStmt:
		guardedExpr(p, s.Call, held, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						guardedExpr(p, v, held, false)
					}
				}
			}
		}
	}
}

// guardedExpr reports guarded-field selectors in one expression tree,
// skipping nested function literals (they are their own scopes).
func guardedExpr(p *Pass, x ast.Expr, held lockState, write bool) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			field := fieldOf(p.Info, n)
			guard := p.Idx.GuardOf(field)
			if guard == "" {
				return true
			}
			expr := types.ExprString(n)
			switch {
			case write && n == rootOf(x) && !held.holdsClassWrite(guard):
				p.Reportf(n.Pos(), "write to %s guarded by %q without the write lock held", expr, guard)
			case !held.holdsClass(guard):
				p.Reportf(n.Pos(), "access to %s guarded by %q without the lock held (hold %s, or annotate the function //imprintvet:locks held=%s or //imprintvet:snapshot)",
					expr, guard, guard, guard)
			}
		}
		return true
	})
}

// rootOf unwraps index/star/paren wrappers to the selector a write
// lands on: `cs.segs[i] = x` writes through cs.segs.
func rootOf(x ast.Expr) ast.Expr {
	for {
		switch w := x.(type) {
		case *ast.IndexExpr:
			x = w.X
		case *ast.StarExpr:
			x = w.X
		case *ast.ParenExpr:
			x = w.X
		default:
			return x
		}
	}
}

// fieldOf resolves a selector to the struct field it names, nil for
// methods, package selectors, and unresolved expressions.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}
