package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detmerge guards the byte-identity invariant: results must not
// depend on Go's randomized map iteration order. It flags a `range`
// over a map whose body appends to a slice declared outside the loop,
// unless the slice is sorted later in the same function — the
// canonical guarded shape is groupby's "collect keys, sort.Slice,
// emit". Order-insensitive sinks (feeding a map, counting) are not
// flagged; intentional exceptions carry //imprintvet:allow detmerge.
var Detmerge = &Analyzer{
	Name: "detmerge",
	Doc:  "check that map-ordered iteration cannot reach result slices unsorted",
	Run:  runDetmerge,
}

func runDetmerge(p *Pass) {
	for _, fd := range funcDecls(p.Files, p.Info) {
		checkDetmerge(p, fd.decl.Body)
	}
}

func checkDetmerge(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := p.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
			return true
		}
		for _, tgt := range mapOrderAppends(p, rs) {
			if !sortedAfter(p, body, rs, tgt) {
				p.Reportf(tgt.pos.Pos(), "%s accumulates map-iteration-ordered values from the range at line %d and is never sorted in this function; sort it before it reaches a result",
					tgt.name, p.Fset.Position(rs.Pos()).Line)
			}
		}
		return true
	})
}

// appendTarget is one `v = append(v, ...)` sink inside a map range.
type appendTarget struct {
	name string       // rendered target expression
	obj  types.Object // non-nil for plain identifiers
	pos  ast.Node     // the append assignment, for reporting
}

// mapOrderAppends collects appends inside the range body whose target
// outlives the loop.
func mapOrderAppends(p *Pass, rs *ast.RangeStmt) []appendTarget {
	var out []appendTarget
	seen := map[string]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p.Info, call) {
				continue
			}
			tgt, ok := appendTargetOf(p, as.Lhs[i], rs)
			if !ok || seen[tgt.name] {
				continue
			}
			seen[tgt.name] = true
			tgt.pos = as
			out = append(out, tgt)
		}
		return true
	})
	return out
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendTargetOf resolves an append's destination, rejecting targets
// scoped inside the loop body (per-iteration slices are fine).
func appendTargetOf(p *Pass, lhs ast.Expr, rs *ast.RangeStmt) (appendTarget, bool) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := p.Info.ObjectOf(lhs)
		if obj == nil || lhs.Name == "_" {
			return appendTarget{}, false
		}
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
			return appendTarget{}, false
		}
		return appendTarget{name: lhs.Name, obj: obj}, true
	case *ast.SelectorExpr, *ast.IndexExpr:
		return appendTarget{name: types.ExprString(lhs)}, true
	}
	return appendTarget{}, false
}

// sortedAfter reports whether a sort call over the target appears
// after the range statement in the same function.
func sortedAfter(p *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, tgt appendTarget) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(p, arg, tgt) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes the sort and slices ordering entry points.
func isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch pkg.Name {
	case "sort":
		return true // sort.Slice, sort.Sort, sort.Strings, ...
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}

// refersTo reports whether an expression mentions the append target
// (by object for identifiers, by rendered text otherwise).
func refersTo(p *Pass, x ast.Expr, tgt appendTarget) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if tgt.obj != nil && p.Info.ObjectOf(n) == tgt.obj {
				found = true
			}
		case *ast.SelectorExpr:
			if tgt.obj == nil && types.ExprString(n) == tgt.name {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
