package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analyzertest"
)

func TestLocksafeFixture(t *testing.T) {
	analyzertest.Run(t, analyzers.Locksafe, "testdata/src/locksafe")
}

func TestSnapshotsafeFixture(t *testing.T) {
	analyzertest.Run(t, analyzers.Snapshotsafe, "testdata/src/snapshotsafe")
}

func TestDetmergeFixture(t *testing.T) {
	analyzertest.Run(t, analyzers.Detmerge, "testdata/src/detmerge")
}

func TestHotallocFixture(t *testing.T) {
	analyzertest.Run(t, analyzers.Hotalloc, "testdata/src/hotalloc")
}

func TestAllowSuppression(t *testing.T) {
	analyzertest.RunSuite(t, "testdata/src/allow")
}
