package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation grammar. Directives are machine-readable comments (no
// space after //, like //go:build) that wire the engine's concurrency
// and determinism conventions into checkable form:
//
//	//imprintvet:lockorder sealMu,mu,tokens,kid
//	    Package scope: the total acquisition order of lock classes.
//	    Acquiring a class while holding a later one is a violation.
//
//	//imprintvet:locks held=mu.R acquires=sealMu returns-held=tokens releases=tokens
//	    Function scope (doc comment). held= declares locks the caller
//	    must hold on entry (".R" = read lock suffices; a write hold
//	    always satisfies a read requirement). acquires= summarizes
//	    classes the function takes and releases internally (order is
//	    checked at call sites). returns-held= / releases= mark
//	    functions that transfer lock ownership across the call; their
//	    bodies are checked in "loose" mode (order and upgrades only,
//	    no balance accounting).
//
//	//imprintvet:snapshot
//	    Function scope: the function operates on a captured snapshot
//	    (deltaView et al.) — guarded-field reads inside it are exempt.
//
//	//imprintvet:hotpath
//	    Function scope: hotalloc flags heap allocations inside.
//
//	//imprintvet:guarded by=mu
//	    Struct-field scope (field doc or trailing comment): reads and
//	    writes of the field require the named lock class held (writes
//	    require the write lock).
//
//	//imprintvet:allow <analyzer> <reason>
//	    Suppresses diagnostics of one analyzer on the same line or the
//	    line directly below. A reason is mandatory, and unused allows
//	    are themselves diagnostics — stale suppressions fail the build.
//
// Lock classes are derived from the lock expression: the mutex field
// name ("t.mu" -> mu, "sh.tokens[c]" -> tokens, "d.sealMu" -> sealMu).
// One naming convention refines that: expressions rooted at an
// identifier containing "kid" (the shard children; "kid.mu",
// "sh.kids[c]") map class mu to class kid, both for direct Lock calls
// and for annotated-call summaries, so the parent -> tokens -> kid
// hierarchy of shard.go is visible to the order check even though
// parent and kid locks are the same struct field.
const directivePrefix = "//imprintvet:"

// LockRef names one lock class, optionally read-mode ("mu.R").
type LockRef struct {
	Class string
	Read  bool
}

func (r LockRef) String() string {
	if r.Read {
		return r.Class + ".R"
	}
	return r.Class
}

// FuncLocks is a function's parsed //imprintvet:locks directive.
type FuncLocks struct {
	Held        []LockRef
	Acquires    []LockRef
	ReturnsHeld []LockRef
	Releases    []LockRef
}

// Loose reports whether the function transfers lock ownership across
// its boundary, limiting what the balance checker can prove.
func (l *FuncLocks) Loose() bool {
	return len(l.ReturnsHeld) > 0 || len(l.Releases) > 0
}

// FuncAnn is everything annotated on one function.
type FuncAnn struct {
	Locks    *FuncLocks
	Snapshot bool
	Hotpath  bool
}

// Allow is one //imprintvet:allow suppression.
type Allow struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
	Pos      token.Pos
	Used     bool
}

// Index holds a package's parsed annotations.
type Index struct {
	Order    []string // lockorder classes, in declared order
	orderPos map[string]int
	Funcs    map[types.Object]*FuncAnn
	Guards   map[*types.Var]string // field -> guard class
	Allows   []*Allow
	Problems []problem // malformed or dangling directives
}

type problem struct {
	pos token.Pos
	msg string
}

// OrderPos returns a class's position in the declared lock order, or
// -1 when the class is unordered.
func (ix *Index) OrderPos(class string) int {
	if p, ok := ix.orderPos[class]; ok {
		return p
	}
	return -1
}

// FuncAnnOf resolves the annotation of the function a call lands on,
// nil when unannotated (or not resolvable within this package's
// type information).
func (ix *Index) FuncAnnOf(obj types.Object) *FuncAnn {
	if obj == nil {
		return nil
	}
	if f, ok := obj.(*types.Func); ok {
		obj = f.Origin()
	}
	return ix.Funcs[obj]
}

// GuardOf returns the guard class of a struct field, "" when the
// field is unguarded.
func (ix *Index) GuardOf(field *types.Var) string {
	if field == nil {
		return ""
	}
	return ix.Guards[field.Origin()]
}

// buildIndex parses every directive in the package files.
func buildIndex(fset *token.FileSet, files []*ast.File, info *types.Info) *Index {
	ix := &Index{
		orderPos: map[string]int{},
		Funcs:    map[types.Object]*FuncAnn{},
		Guards:   map[*types.Var]string{},
	}
	consumed := map[*ast.Comment]bool{}

	for _, f := range files {
		// Declaration-attached directives: function doc comments and
		// struct-field doc/line comments.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				ix.parseFuncDirectives(n, info, consumed)
			case *ast.StructType:
				for _, field := range n.Fields.List {
					ix.parseFieldDirectives(field, info, consumed)
				}
			case *ast.InterfaceType:
				// Interface methods carry the same function directives as
				// FuncDecls: calls dispatched through the interface resolve
				// to the interface method object, so this is where held=
				// contracts on polymorphic column hooks live.
				for _, m := range n.Methods.List {
					ix.parseMethodDirectives(m, info, consumed)
				}
			}
			return true
		})
		// Free-floating directives: lockorder, allow. Anything else not
		// consumed by a declaration is dangling.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, rest, ok := splitDirective(c.Text)
				if !ok || consumed[c] {
					continue
				}
				switch kind {
				case "lockorder":
					ix.parseLockOrder(c.Pos(), rest)
				case "allow":
					ix.parseAllow(fset, c, rest)
				case "locks", "snapshot", "hotpath", "guarded":
					ix.problemf(c.Pos(), "imprintvet:%s directive is not attached to a declaration", kind)
				default:
					ix.problemf(c.Pos(), "unknown imprintvet directive %q", kind)
				}
			}
		}
	}
	return ix
}

func (ix *Index) problemf(pos token.Pos, format string, args ...any) {
	ix.Problems = append(ix.Problems, problem{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// splitDirective recognizes an //imprintvet: comment and returns its
// kind and argument text.
func splitDirective(text string) (kind, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := strings.TrimPrefix(text, directivePrefix)
	kind, rest, _ = strings.Cut(body, " ")
	return strings.TrimSpace(kind), strings.TrimSpace(rest), true
}

func (ix *Index) parseFuncDirectives(decl *ast.FuncDecl, info *types.Info, consumed map[*ast.Comment]bool) {
	ix.parseFuncAnn(decl.Doc, decl.Name, info, consumed)
}

// parseMethodDirectives handles one interface method (a *ast.Field with
// a function type): its doc comment may carry the same locks/snapshot/
// hotpath directives a FuncDecl doc does.
func (ix *Index) parseMethodDirectives(m *ast.Field, info *types.Info, consumed map[*ast.Comment]bool) {
	if len(m.Names) != 1 {
		return // embedded interface; its own declaration carries directives
	}
	ix.parseFuncAnn(m.Doc, m.Names[0], info, consumed)
	ix.parseFuncAnn(m.Comment, m.Names[0], info, consumed)
}

func (ix *Index) parseFuncAnn(doc *ast.CommentGroup, name *ast.Ident, info *types.Info, consumed map[*ast.Comment]bool) {
	if doc == nil {
		return
	}
	var ann FuncAnn
	found := false
	for _, c := range doc.List {
		kind, rest, ok := splitDirective(c.Text)
		if !ok {
			continue
		}
		consumed[c] = true
		switch kind {
		case "locks":
			locks, err := parseFuncLocks(rest)
			if err != nil {
				ix.problemf(c.Pos(), "bad imprintvet:locks directive: %v", err)
				continue
			}
			ann.Locks = locks
			found = true
		case "snapshot":
			ann.Snapshot = true
			found = true
		case "hotpath":
			ann.Hotpath = true
			found = true
		case "allow", "lockorder":
			consumed[c] = false // handled by the free-floating scan
		default:
			ix.problemf(c.Pos(), "unknown imprintvet directive %q", kind)
		}
	}
	if !found {
		return
	}
	obj := info.Defs[name]
	if obj == nil {
		return
	}
	if prev, ok := ix.Funcs[obj]; ok {
		// Doc and line comments of one interface method merge.
		if ann.Locks != nil {
			prev.Locks = ann.Locks
		}
		prev.Snapshot = prev.Snapshot || ann.Snapshot
		prev.Hotpath = prev.Hotpath || ann.Hotpath
		return
	}
	ix.Funcs[obj] = &ann
}

func parseFuncLocks(rest string) (*FuncLocks, error) {
	if rest == "" {
		return nil, fmt.Errorf("empty locks directive")
	}
	locks := &FuncLocks{}
	for _, item := range strings.Fields(rest) {
		key, val, ok := strings.Cut(item, "=")
		if !ok || val == "" {
			return nil, fmt.Errorf("want key=class[,class...], got %q", item)
		}
		refs, err := parseLockRefs(val)
		if err != nil {
			return nil, err
		}
		switch key {
		case "held":
			locks.Held = append(locks.Held, refs...)
		case "acquires":
			locks.Acquires = append(locks.Acquires, refs...)
		case "returns-held":
			locks.ReturnsHeld = append(locks.ReturnsHeld, refs...)
		case "releases":
			locks.Releases = append(locks.Releases, refs...)
		default:
			return nil, fmt.Errorf("unknown locks key %q", key)
		}
	}
	return locks, nil
}

func parseLockRefs(val string) ([]LockRef, error) {
	var refs []LockRef
	for _, part := range strings.Split(val, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty lock class in %q", val)
		}
		ref := LockRef{Class: part}
		if cls, ok := strings.CutSuffix(part, ".R"); ok {
			ref = LockRef{Class: cls, Read: true}
		}
		if strings.Contains(ref.Class, ".") {
			return nil, fmt.Errorf("lock class %q must be a bare class name (optionally .R)", part)
		}
		refs = append(refs, ref)
	}
	return refs, nil
}

func (ix *Index) parseFieldDirectives(field *ast.Field, info *types.Info, consumed map[*ast.Comment]bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			kind, rest, ok := splitDirective(c.Text)
			if !ok || kind != "guarded" {
				continue
			}
			consumed[c] = true
			val, found := strings.CutPrefix(rest, "by=")
			if !found || val == "" || strings.ContainsAny(val, " .,") {
				ix.problemf(c.Pos(), "bad imprintvet:guarded directive: want by=<class>, got %q", rest)
				continue
			}
			if len(field.Names) == 0 {
				ix.problemf(c.Pos(), "imprintvet:guarded on an embedded field is not supported")
				continue
			}
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					ix.Guards[v] = val
				}
			}
		}
	}
}

func (ix *Index) parseLockOrder(pos token.Pos, rest string) {
	if len(ix.Order) > 0 {
		ix.problemf(pos, "duplicate imprintvet:lockorder (first order wins)")
		return
	}
	for _, cls := range strings.Split(rest, ",") {
		cls = strings.TrimSpace(cls)
		if cls == "" {
			ix.problemf(pos, "bad imprintvet:lockorder %q: empty class", rest)
			return
		}
		if _, dup := ix.orderPos[cls]; dup {
			ix.problemf(pos, "bad imprintvet:lockorder %q: class %s repeats", rest, cls)
			return
		}
		ix.orderPos[cls] = len(ix.Order)
		ix.Order = append(ix.Order, cls)
	}
}

func (ix *Index) parseAllow(fset *token.FileSet, c *ast.Comment, rest string) {
	analyzer, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(reason)
	if analyzer == "" {
		ix.problemf(c.Pos(), "imprintvet:allow needs an analyzer name and a reason")
		return
	}
	if !knownAnalyzer(analyzer) {
		ix.problemf(c.Pos(), "imprintvet:allow names unknown analyzer %q", analyzer)
		return
	}
	if reason == "" {
		ix.problemf(c.Pos(), "imprintvet:allow %s needs a justification", analyzer)
		return
	}
	p := fset.Position(c.Pos())
	ix.Allows = append(ix.Allows, &Allow{
		File:     p.Filename,
		Line:     p.Line,
		Analyzer: analyzer,
		Reason:   reason,
		Pos:      c.Pos(),
	})
}
