package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc locks in the zero-allocation discipline of functions
// annotated //imprintvet:hotpath (the serial prepared-Count spine and
// the pooled-scratch kernels): inside one it flags the constructs
// that heap-allocate per call —
//
//   - make/new and slice/map composite literals,
//   - address-of composite literals (escaping composites),
//   - append to a function-local slice (growth is not amortized by a
//     pool the way field- and parameter-backed scratch is),
//   - function literals (closure capture),
//   - string concatenation and string<->[]byte conversions,
//   - fmt.* calls.
//
// Amortized or intentional allocations carry an
// //imprintvet:allow hotalloc suppression with the justification.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocations inside //imprintvet:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(p *Pass) {
	for _, fd := range funcDecls(p.Files, p.Info) {
		ann := p.Idx.FuncAnnOf(fd.obj)
		if ann == nil || !ann.Hotpath {
			continue
		}
		checkHotalloc(p, fd.decl)
	}
}

func checkHotalloc(p *Pass, fd *ast.FuncDecl) {
	body := fd.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "function literal in hot path allocates a closure per call; hoist it or pass state explicitly")
			return false // the literal runs in its own frame

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "address-of composite literal escapes to the heap in a hot path")
					return false
				}
			}

		case *ast.CompositeLit:
			switch p.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				p.Reportf(n.Pos(), "%s literal allocates in a hot path", typeKind(p.Info.TypeOf(n)))
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(p.Info.TypeOf(n.X)) {
				p.Reportf(n.Pos(), "string concatenation allocates in a hot path")
			}

		case *ast.CallExpr:
			hotallocCall(p, body, n)
		}
		return true
	})
}

func hotallocCall(p *Pass, body *ast.BlockStmt, call *ast.CallExpr) {
	// Conversions: T(x) where T is a type.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := p.Info.TypeOf(call.Fun), p.Info.TypeOf(call.Args[0])
		if isStringBytes(to, from) || isStringBytes(from, to) {
			p.Reportf(call.Pos(), "string/[]byte conversion copies and allocates in a hot path")
		}
		return
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				p.Reportf(call.Pos(), "%s allocates in a hot path; use pooled or preallocated scratch", b.Name())
			case "append":
				if tgt, ok := localAppendTarget(p, body, call); ok {
					p.Reportf(call.Pos(), "append to function-local %s can grow per call in a hot path; back it with pooled or caller-owned scratch", tgt)
				}
			}
		}
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok && pkg.Name == "fmt" {
			if _, isPkg := p.Info.Uses[pkg].(*types.PkgName); isPkg {
				p.Reportf(call.Pos(), "fmt.%s allocates (interface boxing and formatting) in a hot path", fun.Sel.Name)
			}
		}
	}
}

// localAppendTarget reports appends whose destination slice lives only
// in this function — growth there is a per-call allocation, unlike
// appends into caller-owned or pooled field scratch.
func localAppendTarget(p *Pass, body *ast.BlockStmt, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return "", false
	}
	if obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
		return id.Name, true
	}
	return "", false // parameter or field-backed: assumed pooled
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringBytes(a, b types.Type) bool {
	if a == nil || b == nil {
		return false
	}
	if !isString(a) {
		return false
	}
	sl, ok := b.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	el, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (el.Kind() == types.Byte || el.Kind() == types.Rune || el.Kind() == types.Uint8 || el.Kind() == types.Int32)
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
