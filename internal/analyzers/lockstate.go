package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The lock interpreter walks one function body statement by statement,
// tracking the multiset of sync.Mutex / sync.RWMutex holds as an
// abstract state. It is intra-procedural; annotated callees
// (//imprintvet:locks) act as summaries at their call sites. Branches
// are walked with copies of the state and merged at the join; loops
// are walked once and must be lock-balanced. Functions annotated
// returns-held= / releases= transfer ownership across their boundary,
// so their bodies run in "loose" mode: order and upgrade checks stay
// on, balance accounting is off.

// heldLock is one abstract lock hold.
type heldLock struct {
	class  string    // lock class (mu, sealMu, tokens, kid, ...)
	key    string    // rendered source expression, for same-lock upgrade checks
	read   bool      // read-mode hold
	pos    token.Pos // acquisition site
	seeded bool      // from a held= annotation: the caller's hold, never released here
}

type lockState []heldLock

func (st lockState) clone() lockState {
	return append(lockState(nil), st...)
}

// sameShape reports whether two states hold the same multiset of
// (class, read) pairs — the merge-consistency criterion at branch
// joins.
func sameShape(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	counts := map[[2]string]int{}
	mode := func(read bool) string {
		if read {
			return "R"
		}
		return "W"
	}
	for _, l := range a {
		counts[[2]string{l.class, mode(l.read)}]++
	}
	for _, l := range b {
		counts[[2]string{l.class, mode(l.read)}]--
	}
	for _, n := range counts {
		if n != 0 {
			return false
		}
	}
	return true
}

func describe(st lockState) string {
	if len(st) == 0 {
		return "no locks"
	}
	parts := make([]string, len(st))
	for i, l := range st {
		parts[i] = l.key
		if l.read {
			parts[i] += "(R)"
		}
	}
	return strings.Join(parts, ", ")
}

// tracer runs the interpreter over one function. Hooks are optional;
// locksafe wires the violation hooks, snapshotsafe wires onStmt.
type tracer struct {
	info  *types.Info
	idx   *Index
	loose bool

	// deferred unlocks registered so far, applied (best effort, as
	// optional releases) at every exit.
	deferred []heldLock

	onAcquire    func(pos token.Pos, nl heldLock, held lockState)         // before push
	onBadRelease func(pos token.Pos, key string, read bool)               // unlock with no matching hold
	onExit       func(pos token.Pos, leaked lockState)                    // non-seeded holds left at a return
	onMismatch   func(pos token.Pos, what string, a, b lockState)         // branch-join or loop imbalance
	onCallReq    func(pos token.Pos, callee string, req LockRef, ok bool) // held= requirement at a call
	onStmt       func(n ast.Node, held lockState)                         // pre-state of every statement
	onFuncLit    func(lit *ast.FuncLit, held lockState)                   // nested function literal + lexical state
	onUnhandled  func(pos token.Pos, what string)                         // patterns the interpreter cannot follow
}

// run interprets a function body starting from the seed state (the
// held= annotations of the function).
func (tr *tracer) run(body *ast.BlockStmt, seed lockState) {
	st, terminated := tr.stmts(body.List, seed)
	if !terminated {
		tr.exit(body.Rbrace, st)
	}
}

// seedState builds the entry state from a held= annotation.
func seedState(held []LockRef, pos token.Pos) lockState {
	st := make(lockState, 0, len(held))
	for _, h := range held {
		st = append(st, heldLock{class: h.Class, key: "<held=" + h.Class + ">", read: h.Read, pos: pos, seeded: true})
	}
	return st
}

// exit applies deferred unlocks and reports any non-seeded leftovers.
func (tr *tracer) exit(pos token.Pos, st lockState) {
	st = st.clone()
	// Deferred releases run in reverse order; each releases a matching
	// hold if present (a defer guarded by a branch may have nothing to
	// release on this path — that is fine).
	for i := len(tr.deferred) - 1; i >= 0; i-- {
		d := tr.deferred[i]
		if j := st.find(d.key, d.class, d.read); j >= 0 {
			st = append(st[:j], st[j+1:]...)
		}
	}
	var leaked lockState
	for _, l := range st {
		if !l.seeded {
			leaked = append(leaked, l)
		}
	}
	if tr.onExit != nil {
		tr.onExit(pos, leaked)
	}
}

// find locates the hold a release matches: prefer the exact source
// expression, fall back to the class (the same lock reached through an
// alias), newest first.
func (st lockState) find(key, class string, read bool) int {
	for i := len(st) - 1; i >= 0; i-- {
		if st[i].key == key && st[i].read == read && !st[i].seeded {
			return i
		}
	}
	for i := len(st) - 1; i >= 0; i-- {
		if st[i].class == class && st[i].read == read && !st[i].seeded {
			return i
		}
	}
	return -1
}

// stmts interprets a statement list. The returned bool is true when
// every path through the list terminates (return/branch), making the
// fall-through state meaningless.
func (tr *tracer) stmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = tr.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (tr *tracer) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	if s == nil {
		return st, false
	}
	if tr.onStmt != nil {
		tr.onStmt(s, st)
	}

	switch s := s.(type) {
	case *ast.BlockStmt:
		return tr.stmts(s.List, st)

	case *ast.LabeledStmt:
		return tr.stmt(s.Stmt, st)

	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		return tr.calls(s, st), false

	case *ast.DeferStmt:
		tr.funcLits(s.Call, st)
		tr.deferCall(s.Call, st)
		return st, false

	case *ast.GoStmt:
		// The goroutine call itself runs later; only surface a literal
		// body (with its lexical state) to the hook.
		tr.funcLits(s.Call, st)
		return st, false

	case *ast.ReturnStmt:
		st = tr.calls(s, st)
		tr.exit(s.Pos(), st)
		return st, true

	case *ast.BranchStmt:
		// break/continue/goto leave the walked region; treat as a
		// terminator so TryLock-style "if fail { continue }" patterns
		// keep the success state on the fall-through path.
		return st, true

	case *ast.IfStmt:
		return tr.ifStmt(s, st)

	case *ast.ForStmt:
		st = tr.stmtPair(s.Init, st).first()
		body, _ := tr.stmts(s.Body.List, st.clone())
		tr.loopCheck(s.Pos(), st, body)
		return st, false

	case *ast.RangeStmt:
		st = tr.calls(s.X, st)
		body, _ := tr.stmts(s.Body.List, st.clone())
		tr.loopCheck(s.Pos(), st, body)
		return st, false

	case *ast.SwitchStmt:
		st = tr.stmtPair(s.Init, st).first()
		if s.Tag != nil {
			st = tr.calls(s.Tag, st)
		}
		return tr.clauses(s.Body.List, st, s.Pos())

	case *ast.TypeSwitchStmt:
		st = tr.stmtPair(s.Init, st).first()
		return tr.clauses(s.Body.List, st, s.Pos())

	case *ast.SelectStmt:
		return tr.clauses(s.Body.List, st, s.Pos())

	default:
		return st, false
	}
}

// first adapts stmt's (state, terminated) pair for positions where
// termination is impossible (for/switch init statements).
type stPair struct {
	st   lockState
	term bool
}

func (tr *tracer) stmtPair(s ast.Stmt, st lockState) stPair {
	n, t := tr.stmt(s, st)
	return stPair{n, t}
}

func (p stPair) first() lockState { return p.st }

// ifStmt handles branches, including the two supported TryLock forms:
//
//	if x.TryLock() { ...holds x... }
//	if !x.TryLock() { return/continue }  // fall-through holds x
func (tr *tracer) ifStmt(s *ast.IfStmt, st lockState) (lockState, bool) {
	st = tr.stmtPair(s.Init, st).first()

	thenSt := st.clone()
	elseSt := st.clone()
	if op, ok := tr.lockOp(tryCall(s.Cond, false)); ok {
		thenSt = tr.acquire(thenSt, op)
	} else if op, ok := tr.lockOp(tryCall(s.Cond, true)); ok {
		elseSt = tr.acquire(elseSt, op)
	} else {
		st = tr.calls(s.Cond, st)
		thenSt, elseSt = st.clone(), st.clone()
	}

	thenOut, thenTerm := tr.stmts(s.Body.List, thenSt)
	elseOut, elseTerm := elseSt, false
	if s.Else != nil {
		elseOut, elseTerm = tr.stmt(s.Else, elseSt)
	}

	switch {
	case thenTerm && elseTerm:
		return thenOut, true
	case thenTerm:
		return elseOut, false
	case elseTerm:
		return thenOut, false
	default:
		if !tr.loose && !sameShape(thenOut, elseOut) && tr.onMismatch != nil {
			tr.onMismatch(s.Pos(), "if/else branches", thenOut, elseOut)
		}
		return thenOut, false
	}
}

// clauses merges switch/select clause bodies: every non-terminating
// clause must leave the same lock shape.
func (tr *tracer) clauses(list []ast.Stmt, st lockState, pos token.Pos) (lockState, bool) {
	var outs []lockState
	sawClause := false
	for _, cs := range list {
		var body []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			body = cs.Body
		case *ast.CommClause:
			if cs.Comm != nil {
				if tr.onStmt != nil {
					tr.onStmt(cs.Comm, st)
				}
			}
			body = cs.Body
		default:
			continue
		}
		sawClause = true
		out, term := tr.stmts(body, st.clone())
		if !term {
			outs = append(outs, out)
		}
	}
	if !sawClause {
		return st, false
	}
	if len(outs) == 0 {
		// Every clause terminated. A switch without a default can still
		// fall through unmatched; keep the entry state.
		return st, false
	}
	for _, o := range outs[1:] {
		if !tr.loose && !sameShape(outs[0], o) && tr.onMismatch != nil {
			tr.onMismatch(pos, "switch/select clauses", outs[0], o)
			break
		}
	}
	return outs[0], false
}

func (tr *tracer) loopCheck(pos token.Pos, in, out lockState) {
	if !tr.loose && !sameShape(in, out) && tr.onMismatch != nil {
		tr.onMismatch(pos, "loop body (state differs after one iteration)", in, out)
	}
}

// funcLits hands nested function literals (and their lexical lock
// state) to the hook, without descending into them here — their bodies
// are interpreted as their own scopes by the caller.
func (tr *tracer) funcLits(n ast.Node, st lockState) {
	if tr.onFuncLit == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			tr.onFuncLit(lit, st.clone())
			return false
		}
		return true
	})
}

// calls processes every call expression in a leaf statement (or
// expression), in source order, surfacing nested function literals to
// the hook without descending into them.
func (tr *tracer) calls(s ast.Node, st lockState) lockState {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if tr.onFuncLit != nil {
				tr.onFuncLit(n, st.clone())
			}
			return false
		case *ast.CallExpr:
			st = tr.call(n, st)
		}
		return true
	})
	return st
}

// call applies one call's lock effects to the state.
func (tr *tracer) call(call *ast.CallExpr, st lockState) lockState {
	if op, ok := tr.lockOp(call); ok {
		switch op.kind {
		case opLock:
			return tr.acquire(st, op)
		case opUnlock:
			return tr.release(st, op)
		case opTry:
			// A TryLock outside the two supported if-forms: the hold
			// becomes conditional in a way the interpreter cannot track.
			if tr.onUnhandled != nil && !tr.loose {
				tr.onUnhandled(call.Pos(), "TryLock outside `if x.TryLock()` / `if !x.TryLock()`")
			}
			return st
		}
	}
	return tr.summaryCall(call, st)
}

type opKind int

const (
	opNone opKind = iota
	opLock
	opUnlock
	opTry
)

type lockOp struct {
	kind  opKind
	class string
	key   string
	read  bool
	pos   token.Pos
}

// tryCall unwraps `x.TryLock()` (negate=false) or `!x.TryLock()`
// (negate=true) conditions; returns nil otherwise.
func tryCall(cond ast.Expr, negate bool) *ast.CallExpr {
	if negate {
		un, ok := cond.(*ast.UnaryExpr)
		if !ok || un.Op != token.NOT {
			return nil
		}
		cond = un.X
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); !ok || !strings.HasPrefix(sel.Sel.Name, "Try") {
		return nil
	}
	return call
}

// lockOp classifies a call as a sync.(RW)Mutex operation.
func (tr *tracer) lockOp(call *ast.CallExpr) (lockOp, bool) {
	if call == nil {
		return lockOp{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var kind opKind
	var read bool
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "RLock":
		kind, read = opLock, true
	case "Unlock":
		kind = opUnlock
	case "RUnlock":
		kind, read = opUnlock, true
	case "TryLock":
		kind = opTry
	case "TryRLock":
		kind, read = opTry, true
	default:
		return lockOp{}, false
	}
	if !isSyncMutex(tr.info.TypeOf(sel.X)) {
		return lockOp{}, false
	}
	key := types.ExprString(sel.X)
	return lockOp{
		kind:  kind,
		class: lockClass(sel.X, key),
		key:   key,
		read:  read,
		pos:   call.Pos(),
	}, true
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockClass derives the lock class of a mutex expression: the final
// field name, remapped mu->kid for expressions rooted in the shard
// children (see the grammar comment in annotations.go).
func lockClass(x ast.Expr, key string) string {
	name := baseName(x)
	if name == "" {
		name = key
	}
	if isKidExpr(key) && name == "mu" {
		return "kid"
	}
	return name
}

func baseName(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.IndexExpr:
		return baseName(x.X)
	case *ast.ParenExpr:
		return baseName(x.X)
	case *ast.StarExpr:
		return baseName(x.X)
	}
	return ""
}

// isKidExpr reports whether a rendered expression runs through the
// shard children ("kid.mu", "sh.kids[c].mu", "t.shard.kids[0]").
func isKidExpr(key string) bool {
	return strings.HasPrefix(key, "kid.") || key == "kid" || strings.Contains(key, "kids[")
}

// acquire reports order/upgrade violations through the hook, then
// pushes the hold.
func (tr *tracer) acquire(st lockState, op lockOp) lockState {
	nl := heldLock{class: op.class, key: op.key, read: op.read, pos: op.pos}
	if tr.onAcquire != nil {
		tr.onAcquire(op.pos, nl, st)
	}
	return append(st.clone(), nl)
}

// release pops the matching hold, reporting an unmatched unlock.
func (tr *tracer) release(st lockState, op lockOp) lockState {
	if i := st.find(op.key, op.class, op.read); i >= 0 {
		st = st.clone()
		return append(st[:i], st[i+1:]...)
	}
	if tr.onBadRelease != nil && !tr.loose {
		tr.onBadRelease(op.pos, op.key, op.read)
	}
	return st
}

// deferCall registers a deferred mutex unlock, or a deferred call to a
// releases= annotated function.
func (tr *tracer) deferCall(call *ast.CallExpr, st lockState) {
	if op, ok := tr.lockOp(call); ok && op.kind == opUnlock {
		tr.deferred = append(tr.deferred, heldLock{class: op.class, key: op.key, read: op.read, pos: op.pos})
		return
	}
	if ann, kidCall := tr.calleeAnn(call); ann != nil && ann.Locks != nil {
		for _, r := range ann.Locks.Releases {
			r = remapRef(r, kidCall)
			tr.deferred = append(tr.deferred, heldLock{class: r.Class, key: "<releases=" + r.Class + ">", read: r.Read, pos: call.Pos()})
		}
	}
}

// calleeAnn resolves the annotation of a call's target (same-package
// functions and methods only), plus whether the call runs through a
// shard kid receiver.
func (tr *tracer) calleeAnn(call *ast.CallExpr) (*FuncAnn, bool) {
	var obj types.Object
	kidCall := false
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = tr.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = tr.info.Uses[fun.Sel]
		kidCall = isKidExpr(types.ExprString(fun.X))
	default:
		return nil, false
	}
	return tr.idx.FuncAnnOf(obj), kidCall
}

// remapRef applies the kid-receiver class remap to a summary ref.
func remapRef(r LockRef, kidCall bool) LockRef {
	if kidCall && r.Class == "mu" {
		r.Class = "kid"
	}
	return r
}

// summaryCall applies an annotated callee's lock summary: held=
// requirements are checked, acquires= order-checked, returns-held=
// pushed, releases= popped.
func (tr *tracer) summaryCall(call *ast.CallExpr, st lockState) lockState {
	ann, kidCall := tr.calleeAnn(call)
	if ann == nil || ann.Locks == nil {
		return st
	}
	name := calleeName(call)
	for _, req := range ann.Locks.Held {
		req = remapRef(req, kidCall)
		if tr.onCallReq != nil {
			tr.onCallReq(call.Pos(), name, req, st.satisfies(req))
		}
	}
	for _, acq := range ann.Locks.Acquires {
		acq = remapRef(acq, kidCall)
		if tr.onAcquire != nil {
			tr.onAcquire(call.Pos(), heldLock{
				class: acq.Class,
				key:   "<" + name + " acquires=" + acq.Class + ">",
				read:  acq.Read,
				pos:   call.Pos(),
			}, st)
		}
	}
	for _, r := range ann.Locks.Releases {
		r = remapRef(r, kidCall)
		if i := st.find("", r.Class, r.Read); i >= 0 {
			st = st.clone()
			st = append(st[:i], st[i+1:]...)
		} else if tr.onBadRelease != nil && !tr.loose {
			tr.onBadRelease(call.Pos(), name+" releases="+r.Class, r.Read)
		}
	}
	for _, rh := range ann.Locks.ReturnsHeld {
		rh = remapRef(rh, kidCall)
		nl := heldLock{class: rh.Class, key: "<" + name + " returns-held=" + rh.Class + ">", read: rh.Read, pos: call.Pos()}
		if tr.onAcquire != nil {
			tr.onAcquire(call.Pos(), nl, st)
		}
		st = append(st.clone(), nl)
	}
	return st
}

// satisfies reports whether a held= requirement is met: same class,
// and a write hold satisfies a read requirement (never the reverse).
// A kid hold satisfies a mu requirement — the kid class is the same
// struct field, seen through a shard child (see holdsClass).
func (st lockState) satisfies(req LockRef) bool {
	for _, l := range st {
		if l.class != req.Class && !(req.Class == "mu" && l.class == "kid") {
			continue
		}
		if req.Read || !l.read {
			return true
		}
	}
	return false
}

// holdsClass reports whether any hold of the class exists (any mode);
// the kid class counts as holding mu for guard purposes (a kid's lock
// is the same struct field).
func (st lockState) holdsClass(class string) bool {
	for _, l := range st {
		if l.class == class || (class == "mu" && l.class == "kid") {
			return true
		}
	}
	return false
}

func (st lockState) holdsClassWrite(class string) bool {
	for _, l := range st {
		if (l.class == class || (class == "mu" && l.class == "kid")) && !l.read {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}
