// Package scan provides the sequential-scan baseline of the paper's
// evaluation: a full pass over the column with one comparison pair per
// value, materializing the ids of qualifying rows.
package scan

import "repro/internal/coltype"

// Stats counts the work done by a scan. Comparisons always equals the
// column length — the scan looks at every value.
type Stats struct {
	Comparisons uint64
}

// RangeIDs returns ascending ids of values in the half-open range
// [low, high), appended to res.
func RangeIDs[V coltype.Value](col []V, low, high V, res []uint32) ([]uint32, Stats) {
	for i, v := range col {
		if v >= low && v < high {
			res = append(res, uint32(i))
		}
	}
	return res, Stats{Comparisons: uint64(len(col))}
}

// CountRange returns the number of values in [low, high).
func CountRange[V coltype.Value](col []V, low, high V) (uint64, Stats) {
	var n uint64
	for _, v := range col {
		if v >= low && v < high {
			n++
		}
	}
	return n, Stats{Comparisons: uint64(len(col))}
}

// PointIDs returns ascending ids of values equal to v.
func PointIDs[V coltype.Value](col []V, v V, res []uint32) ([]uint32, Stats) {
	for i, x := range col {
		if x == v {
			res = append(res, uint32(i))
		}
	}
	return res, Stats{Comparisons: uint64(len(col))}
}
