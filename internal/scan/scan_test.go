package scan

import (
	"math/rand/v2"
	"testing"
)

func TestRangeIDs(t *testing.T) {
	col := []int32{5, 1, 9, 3, 7, 3}
	ids, st := RangeIDs(col, 3, 8, nil)
	want := []uint32{0, 3, 4, 5}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if st.Comparisons != uint64(len(col)) {
		t.Errorf("Comparisons = %d, want %d", st.Comparisons, len(col))
	}
}

func TestRangeIDsEmpty(t *testing.T) {
	ids, st := RangeIDs([]float64{}, 0, 1, nil)
	if len(ids) != 0 || st.Comparisons != 0 {
		t.Error("empty column scan misbehaved")
	}
}

func TestRangeIDsAppendsToBuffer(t *testing.T) {
	col := []int64{1, 2, 3}
	buf := []uint32{999}
	ids, _ := RangeIDs(col, 2, 4, buf)
	if len(ids) != 3 || ids[0] != 999 || ids[1] != 1 || ids[2] != 2 {
		t.Errorf("ids = %v", ids)
	}
}

func TestCountRangeMatchesRangeIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	col := make([]float32, 5000)
	for i := range col {
		col[i] = rng.Float32() * 100
	}
	for q := 0; q < 20; q++ {
		low := rng.Float32() * 90
		high := low + rng.Float32()*10
		ids, _ := RangeIDs(col, low, high, nil)
		cnt, _ := CountRange(col, low, high)
		if uint64(len(ids)) != cnt {
			t.Fatalf("CountRange = %d, RangeIDs = %d", cnt, len(ids))
		}
	}
}

func TestPointIDs(t *testing.T) {
	col := []uint8{7, 3, 7, 7, 1}
	ids, _ := PointIDs(col, 7, nil)
	want := []uint32{0, 2, 3}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}
