package dataset

import (
	"testing"

	"repro/internal/column"
	"repro/internal/core"
)

const testScale = 0.05

func testCfg() Config { return Config{Scale: testScale, Seed: 42} }

func TestAllDatasetsGenerate(t *testing.T) {
	sets := All(testCfg())
	if len(sets) != 5 {
		t.Fatalf("All generated %d datasets", len(sets))
	}
	names := map[string]bool{}
	for _, d := range sets {
		names[d.Name] = true
		if len(d.Columns) == 0 {
			t.Errorf("%s has no columns", d.Name)
		}
		if d.Rows == 0 {
			t.Errorf("%s has no rows", d.Name)
		}
		if d.SizeBytes() <= 0 {
			t.Errorf("%s has no payload", d.Name)
		}
		if d.Column(d.Representative) == nil {
			t.Errorf("%s: representative column %q missing", d.Name, d.Representative)
		}
		if d.PaperCols == 0 || d.PaperSize == "" || d.PaperRows == "" {
			t.Errorf("%s: paper reference stats missing", d.Name)
		}
		for _, c := range d.Columns {
			if c.Len() == 0 {
				t.Errorf("%s.%s empty", d.Name, c.Name())
			}
		}
	}
	for _, want := range []string{"Routing", "SDSS", "Cnet", "Airtraffic", "TPC-H"} {
		if !names[want] {
			t.Errorf("dataset %s missing", want)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Routing(testCfg())
	b := Routing(testCfg())
	ca := a.Column("trips.lat").(*column.Column[float64])
	cb := b.Column("trips.lat").(*column.Column[float64])
	if ca.Len() != cb.Len() {
		t.Fatal("lengths differ")
	}
	for i := 0; i < ca.Len(); i++ {
		if ca.Get(i) != cb.Get(i) {
			t.Fatalf("row %d differs", i)
		}
	}
	// A different seed changes the data.
	c := Routing(Config{Scale: testScale, Seed: 43})
	cc := c.Column("trips.lat").(*column.Column[float64])
	same := true
	for i := 0; i < min(100, cc.Len()); i++ {
		if ca.Get(i) != cc.Get(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestScaleControlsRows(t *testing.T) {
	small := SDSS(Config{Scale: 0.02, Seed: 1})
	large := SDSS(Config{Scale: 0.08, Seed: 1})
	if large.Rows <= small.Rows {
		t.Errorf("scale had no effect: %d vs %d", small.Rows, large.Rows)
	}
}

func TestTypeMixMatchesPaper(t *testing.T) {
	// Table 1 type statements: Routing has int+long(+double coords),
	// SDSS real/double/long, Airtraffic int/short/char(str), TPC-H
	// int/date/str-ish.
	has := func(d *Dataset, typ string) bool {
		for _, tn := range d.TypeNames() {
			if tn == typ {
				return true
			}
		}
		return false
	}
	r := Routing(testCfg())
	if !has(r, "int32") || !has(r, "int64") || !has(r, "float64") {
		t.Errorf("Routing types = %v", r.TypeNames())
	}
	s := SDSS(testCfg())
	if !has(s, "float32") || !has(s, "float64") || !has(s, "int64") {
		t.Errorf("SDSS types = %v", s.TypeNames())
	}
	a := Airtraffic(testCfg())
	if !has(a, "int16") || !has(a, "uint8") || !has(a, "int32") {
		t.Errorf("Airtraffic types = %v", a.TypeNames())
	}
}

// entropyOf builds an imprint over a typed column and returns E.
func entropyOf(t *testing.T, c column.Any) float64 {
	t.Helper()
	switch col := c.(type) {
	case *column.Column[float64]:
		return core.Build(col.Values(), core.Options{Seed: 1}).Entropy()
	case *column.Column[float32]:
		return core.Build(col.Values(), core.Options{Seed: 1}).Entropy()
	case *column.Column[int16]:
		return core.Build(col.Values(), core.Options{Seed: 1}).Entropy()
	case *column.Column[int32]:
		return core.Build(col.Values(), core.Options{Seed: 1}).Entropy()
	default:
		t.Fatalf("unhandled column type %T", c)
		return 0
	}
}

// TestEntropyProfilesMatchFigure3 checks the qualitative entropy ordering
// of Figure 3: SDSS uniform columns are high-entropy (paper: 0.794),
// while Routing walks, Airtraffic categories, Cnet attributes and the
// TPC-H retail price are all low (0.2-0.35).
func TestEntropyProfilesMatchFigure3(t *testing.T) {
	cfg := Config{Scale: 0.25, Seed: 7} // enough rows for stable entropy
	eSDSS := entropyOf(t, SDSS(cfg).Column("photoprofile.profmean"))
	eRouting := entropyOf(t, Routing(cfg).Column("trips.lat"))
	eAir := entropyOf(t, Airtraffic(cfg).Column("ontime.AirlineID"))
	eCnet := entropyOf(t, Cnet(cfg).Column("cnet.attr18"))
	eTPCH := entropyOf(t, TPCH(cfg).Column("part.p_retailprice"))

	if eSDSS < 0.55 {
		t.Errorf("SDSS entropy %.3f too low; paper ~0.79", eSDSS)
	}
	for name, e := range map[string]float64{
		"Routing": eRouting, "Airtraffic": eAir, "Cnet": eCnet, "TPC-H": eTPCH,
	} {
		if e >= eSDSS {
			t.Errorf("%s entropy %.3f not below SDSS %.3f", name, e, eSDSS)
		}
		if e > 0.6 {
			t.Errorf("%s entropy %.3f unexpectedly high; paper reports 0.2-0.35", name, e)
		}
	}
}

func TestCnetSparsity(t *testing.T) {
	d := Cnet(testCfg())
	c := d.Column("cnet.attr18").(*column.Column[int32])
	zeros := 0
	for _, v := range c.Values() {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(c.Len())
	if frac < 0.5 {
		t.Errorf("cnet.attr18 only %.0f%% sparse; expected mostly absent values", frac*100)
	}
}

func TestRoutingTimestampsMonotone(t *testing.T) {
	d := Routing(testCfg())
	ts := d.Column("trips.timestamp").(*column.Column[int64])
	for i := 1; i < ts.Len(); i++ {
		if ts.Get(i) < ts.Get(i-1) {
			t.Fatalf("timestamp decreased at row %d", i)
		}
	}
}

func TestAirtrafficMonthsOrdered(t *testing.T) {
	d := Airtraffic(testCfg())
	m := d.Column("ontime.Month").(*column.Column[int16])
	for i := 1; i < m.Len(); i++ {
		if m.Get(i) < m.Get(i-1) {
			t.Fatalf("month decreased at row %d", i)
		}
	}
}

func TestTPCHRetailPriceFormula(t *testing.T) {
	d := TPCH(testCfg())
	c := d.Column("part.p_retailprice").(*column.Column[float64])
	// dbgen: for pk=1, price = (90000 + 0 + 100*1)/100 = 901.00
	if got := c.Get(0); got != 901.00 {
		t.Errorf("p_retailprice[pk=1] = %v, want 901.00", got)
	}
	// Range sanity: TPC-H retail prices live in [900, 2100].
	for i := 0; i < c.Len(); i++ {
		if v := c.Get(i); v < 900 || v > 2100 {
			t.Fatalf("p_retailprice[%d] = %v outside [900,2100]", i, v)
		}
	}
}

func TestDatasetString(t *testing.T) {
	d := Routing(testCfg())
	if d.String() == "" {
		t.Error("empty String()")
	}
}
