// Package dataset generates synthetic equivalents of the five real-world
// datasets of the paper's evaluation (Table 1): Routing, SDSS, Cnet,
// Airtraffic and TPC-H 100. The originals are not distributable, so each
// generator reproduces the properties the paper says drive index
// behaviour — per-column entropy profile, cardinality, value type mix
// and local clustering — at a configurable scale. See DESIGN.md for the
// substitution rationale.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/column"
)

// Dataset is a named collection of typed columns (a denormalized slice
// of the original schema).
type Dataset struct {
	// Name identifies the dataset ("Routing", "SDSS", ...).
	Name string
	// Columns holds the generated columns, type-erased.
	Columns []column.Any
	// Rows is the maximum row count across columns (Table 1's "Max rows").
	Rows int
	// Representative names the column printed in Figure 3 for this
	// dataset.
	Representative string
	// PaperSize, PaperCols and PaperRows record the original dataset's
	// Table 1 statistics for side-by-side reporting.
	PaperSize string
	PaperCols int
	PaperRows string
}

// Config controls generation.
type Config struct {
	// Scale multiplies the default row counts. 1.0 generates the default
	// bench scale (a few hundred thousand rows per dataset); tests use
	// much smaller scales.
	Scale float64
	// Seed drives all randomness; identical configs generate identical
	// datasets.
	Seed uint64
}

// rows scales a base row count, keeping at least a handful of rows.
func (c Config) rows(base int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	n := int(float64(base) * s)
	if n < 16 {
		n = 16
	}
	return n
}

// SizeBytes sums the payload bytes of all columns.
func (d *Dataset) SizeBytes() int64 {
	var s int64
	for _, c := range d.Columns {
		s += c.SizeBytes()
	}
	return s
}

// Column returns a column by name, or nil.
func (d *Dataset) Column(name string) column.Any {
	for _, c := range d.Columns {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// TypeNames lists the distinct value type names present, sorted.
func (d *Dataset) TypeNames() []string {
	set := map[string]struct{}{}
	for _, c := range d.Columns {
		set[c.TypeName()] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d columns, %d rows, %.1f MB",
		d.Name, len(d.Columns), d.Rows, float64(d.SizeBytes())/(1<<20))
}

// All generates every dataset at the given config.
func All(cfg Config) []*Dataset {
	return []*Dataset{
		Routing(cfg),
		SDSS(cfg),
		Cnet(cfg),
		Airtraffic(cfg),
		TPCH(cfg),
	}
}
