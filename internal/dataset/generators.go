package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/column"
)

// Routing simulates the GPS trip log: 240M rows of (longitude, latitude,
// trip-id, timestamp) in the original. The log records a small fleet of
// concurrently active trips ordered by arrival time, so rows from a few
// continuous random walks interleave: "trips are continuous without any
// jumps, unless the trip-id changes" (Section 6.1). A handful of active
// areas per cacheline yields the moderate local clustering the paper
// measures (E ≈ 0.31) that makes imprints compress so well here.
func Routing(cfg Config) *Dataset {
	n := cfg.rows(200_000)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x801))

	tripID := make([]int32, n)
	ts := make([]int64, n)
	lat := make([]float64, n)
	lon := make([]float64, n)

	// A few concurrently active trips, each a continuous walk.
	type tripState struct {
		id     int32
		la, lo float64
		speed  float64
		left   int
	}
	const fleet = 8
	nextID := int32(0)
	newTrip := func() tripState {
		nextID++
		return tripState{
			id:    nextID,
			la:    36 + rng.Float64()*24, // somewhere in Europe
			lo:    -9 + rng.Float64()*30,
			speed: 0.00005 + rng.Float64()*0.002, // walking to highway
			left:  50 + rng.IntN(400),
		}
	}
	active := make([]tripState, fleet)
	for i := range active {
		active[i] = newTrip()
	}
	t := int64(1_300_000_000) // epoch seconds, grows monotonically
	for i := 0; i < n; i++ {
		k := rng.IntN(fleet)
		tr := &active[k]
		if tr.left == 0 {
			*tr = newTrip()
		}
		tr.la += (rng.Float64() - 0.5) * 2 * tr.speed
		tr.lo += (rng.Float64() - 0.5) * 2 * tr.speed
		tr.left--
		t += int64(1 + rng.IntN(3))
		tripID[i] = tr.id
		ts[i] = t
		lat[i] = tr.la
		lon[i] = tr.lo
	}
	return &Dataset{
		Name:           "Routing",
		Representative: "trips.lat",
		PaperSize:      "5.4G",
		PaperCols:      4,
		PaperRows:      "240M",
		Rows:           n,
		Columns: []column.Any{
			column.New("trips.trip_id", tripID),
			column.New("trips.timestamp", ts),
			column.New("trips.lat", lat),
			column.New("trips.lon", lon),
		},
	}
}

// SDSS simulates the SkyServer astronomy sample: many double-precision
// and floating point columns "following a uniform distribution, thus
// stressing compression techniques to their limits" (Section 6). These
// are the high-entropy columns (E ≈ 0.79) on which WAH degrades while
// imprints stay within 12% overhead.
func SDSS(cfg Config) *Dataset {
	n := cfg.rows(100_000)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5d55))

	mkF32 := func(scale float64) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(rng.Float64() * scale)
		}
		return v
	}
	mkF64 := func(scale float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * scale
		}
		return v
	}
	// Ordered bigint identifiers: the paper notes ordered primary-key
	// columns were kept in the datasets for completeness (Section 6.2).
	objID := make([]int64, n)
	specID := make([]int64, n)
	base := int64(0x1234_5678_0000)
	for i := range objID {
		base += int64(1 + rng.IntN(8))
		objID[i] = base
		specID[i] = int64(rng.Int64N(1 << 60)) // unordered key: max entropy
	}
	return &Dataset{
		Name:           "SDSS",
		Representative: "photoprofile.profmean",
		PaperSize:      "6.2G",
		PaperCols:      4008,
		PaperRows:      "47M",
		Rows:           n,
		Columns: []column.Any{
			column.New("photoprofile.profmean", mkF32(30)),
			column.New("photoprofile.proferr", mkF32(5)),
			column.New("photoobj.psfmag_r", mkF32(25)),
			column.New("photoobj.sky_u", mkF32(1)),
			column.New("photoobj.ra", mkF64(360)),
			column.New("photoobj.dec", mkF64(180)),
			column.New("photoobj.rowv", mkF64(10)),
			column.New("specobj.z", mkF64(7)),
			column.New("photoobj.objid", objID),
			column.New("specobj.specobjid", specID),
		},
	}
}

// Cnet simulates the CNET e-commerce catalog: one very wide table of
// sparse categorical product attributes. Rows arrive grouped by product
// category, so each attribute is long runs of "absent" (zero) broken by
// clusters of small-cardinality values — the best case for compression
// (E ≈ 0.20, < 10% storage overhead for both imprints and WAH).
func Cnet(cfg Config) *Dataset {
	n := cfg.rows(80_000)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc4e7))

	ds := &Dataset{
		Name:           "Cnet",
		Representative: "cnet.attr18",
		PaperSize:      "12G",
		PaperCols:      2991,
		PaperRows:      "1M",
		Rows:           n,
	}
	// Category blocks: consecutive rows belong to one product category.
	categories := make([]int, n)
	cat := 0
	for i := 0; i < n; {
		blockLen := 200 + rng.IntN(2000)
		for j := 0; j < blockLen && i < n; j++ {
			categories[i] = cat
			i++
		}
		cat++
	}
	nCats := cat + 1

	// int32 attributes: populated only within a few categories.
	for a := 0; a < 20; a++ {
		card := 2 + rng.IntN(38)
		// Each attribute applies to ~15% of categories.
		applies := make(map[int]bool)
		for c := 0; c < nCats; c++ {
			if rng.Float64() < 0.15 {
				applies[c] = true
			}
		}
		vals := make([]int32, n)
		for i := 0; i < n; i++ {
			if applies[categories[i]] && rng.Float64() < 0.9 {
				vals[i] = int32(1 + rng.IntN(card))
			}
		}
		ds.Columns = append(ds.Columns, column.New(fmt.Sprintf("cnet.attr%d", a+1), vals))
	}
	// uint8 flag attributes.
	for a := 0; a < 10; a++ {
		vals := make([]uint8, n)
		applies := make(map[int]bool)
		for c := 0; c < nCats; c++ {
			if rng.Float64() < 0.2 {
				applies[c] = true
			}
		}
		for i := 0; i < n; i++ {
			if applies[categories[i]] {
				vals[i] = uint8(1 + rng.IntN(3))
			}
		}
		ds.Columns = append(ds.Columns, column.New(fmt.Sprintf("cnet.flag%d", a+1), vals))
	}
	return ds
}

// Airtraffic simulates the flight-delay warehouse: "data are updated per
// month, leading to many time-ordered clustered sequences" (Section 6).
// Categorical columns of moderate cardinality with monthly cluster
// structure (E ≈ 0.35).
func Airtraffic(cfg Config) *Dataset {
	n := cfg.rows(150_000)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xa117))

	month := make([]int16, n)
	day := make([]uint8, n)
	airline := make([]int16, n)
	depDelay := make([]int16, n)
	arrDelay := make([]int16, n)
	distance := make([]int32, n)
	cancelled := make([]uint8, n)
	flightNum := make([]int32, n)

	// ~20 carriers with slowly drifting market share per month; a fixed
	// set of ~500 routes.
	const nCarriers = 20
	routes := make([]int32, 500)
	for i := range routes {
		routes[i] = int32(100 + rng.IntN(4800))
	}
	origins := []string{"ATL", "ORD", "DFW", "DEN", "LAX", "JFK", "SFO", "SEA", "MIA", "PHX",
		"IAH", "CLT", "EWR", "MSP", "DTW", "BOS", "LGA", "FLL", "BWI", "SLC"}
	originVals := make([]string, n)

	rowsPerMonth := n/60 + 1 // five years of months
	m := int16(0)
	inMonth := 0
	carrierBias := rng.IntN(nCarriers)
	for i := 0; i < n; i++ {
		if inMonth == rowsPerMonth {
			m++
			inMonth = 0
			if rng.IntN(3) == 0 {
				carrierBias = rng.IntN(nCarriers)
			}
		}
		month[i] = m
		day[i] = uint8(1 + (inMonth*31)/rowsPerMonth)
		// Carrier mix: biased toward the month's dominant carrier.
		if rng.IntN(3) == 0 {
			airline[i] = int16(carrierBias)
		} else {
			airline[i] = int16(rng.IntN(nCarriers))
		}
		// Delay: mostly small, heavy right tail.
		d := rng.NormFloat64()*12 - 3
		if rng.IntN(20) == 0 {
			d += float64(rng.IntN(300))
		}
		if d < -60 {
			d = -60
		}
		depDelay[i] = int16(d)
		arrDelay[i] = int16(d + rng.NormFloat64()*8)
		distance[i] = routes[rng.IntN(len(routes))]
		if rng.IntN(100) == 0 {
			cancelled[i] = 1
		}
		flightNum[i] = int32(1 + rng.IntN(7000))
		originVals[i] = origins[rng.IntN(len(origins))]
		inMonth++
	}
	originDict := column.EncodeStrings("ontime.Origin", originVals)
	return &Dataset{
		Name:           "Airtraffic",
		Representative: "ontime.AirlineID",
		PaperSize:      "29G",
		PaperCols:      93,
		PaperRows:      "126M",
		Rows:           n,
		Columns: []column.Any{
			column.New("ontime.Month", month),
			column.New("ontime.DayofMonth", day),
			column.New("ontime.AirlineID", airline),
			column.New("ontime.DepDelay", depDelay),
			column.New("ontime.ArrDelay", arrDelay),
			column.New("ontime.Distance", distance),
			column.New("ontime.Cancelled", cancelled),
			column.New("ontime.FlightNum", flightNum),
			originDict.Codes(),
		},
	}
}

// TPCH generates TPC-H columns with dbgen's value formulas at a reduced
// scale. part.p_retailprice is the paper's Figure 3 example of a
// "repeated permutation of an order" — unsorted but cyclic, hence low
// entropy (E ≈ 0.23).
func TPCH(cfg Config) *Dataset {
	nPart := cfg.rows(60_000)
	nLine := cfg.rows(180_000)
	nOrd := cfg.rows(45_000)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x79c4))

	// part.p_retailprice: dbgen's exact formula.
	retail := make([]float64, nPart)
	psize := make([]int32, nPart)
	for i := 0; i < nPart; i++ {
		pk := int64(i + 1)
		retail[i] = float64(90000+(pk/10)%20001+100*(pk%1000)) / 100
		psize[i] = int32(1 + rng.IntN(50))
	}
	// lineitem.
	lQty := make([]int32, nLine)
	lPrice := make([]float64, nLine)
	lShip := make([]int32, nLine) // days since 1992-01-01
	lDisc := make([]float64, nLine)
	for i := 0; i < nLine; i++ {
		q := 1 + rng.IntN(50)
		lQty[i] = int32(q)
		pk := int64(rng.IntN(nPart) + 1)
		lPrice[i] = float64(q) * float64(90000+(pk/10)%20001+100*(pk%1000)) / 100
		orderDate := rng.IntN(2406 - 151)
		lShip[i] = int32(orderDate + 1 + rng.IntN(121))
		lDisc[i] = float64(rng.IntN(11)) / 100
	}
	// lineitem.l_shipmode: dbgen's seven modes, uniformly drawn.
	shipModes := []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	lMode := make([]string, nLine)
	for i := range lMode {
		lMode[i] = shipModes[rng.IntN(len(shipModes))]
	}
	// orders.
	oDate := make([]int32, nOrd)
	oTotal := make([]float64, nOrd)
	oPrio := make([]string, nOrd)
	priorities := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	for i := 0; i < nOrd; i++ {
		oDate[i] = int32(rng.IntN(2406 - 151))
		// Sum of a few line items: right-skewed.
		total := 0.0
		for l := 0; l < 1+rng.IntN(7); l++ {
			total += float64(1+rng.IntN(50)) * (900 + rng.Float64()*1101)
		}
		oTotal[i] = math.Round(total*100) / 100
		oPrio[i] = priorities[rng.IntN(len(priorities))]
	}
	return &Dataset{
		Name:           "TPC-H",
		Representative: "part.p_retailprice",
		PaperSize:      "168G",
		PaperCols:      61,
		PaperRows:      "600M",
		Rows:           nLine,
		Columns: []column.Any{
			column.New("part.p_retailprice", retail),
			column.New("part.p_size", psize),
			column.New("lineitem.l_quantity", lQty),
			column.New("lineitem.l_extendedprice", lPrice),
			column.New("lineitem.l_shipdate", lShip),
			column.New("lineitem.l_discount", lDisc),
			column.EncodeStrings("lineitem.l_shipmode", lMode).Codes(),
			column.New("orders.o_orderdate", oDate),
			column.New("orders.o_totalprice", oTotal),
			column.EncodeStrings("orders.o_orderpriority", oPrio).Codes(),
		},
	}
}
