package sql

import (
	"strconv"
	"strings"
)

// ---- AST ----

// SelectStmt is one parsed SELECT statement, before planning.
type SelectStmt struct {
	Star     bool       // SELECT *
	Cols     []ProjCol  // plain projected columns, in order
	Aggs     []AggExpr  // aggregate projections, in order
	Proj     []ProjItem // full projection in source order (col or agg index)
	Table    string
	TablePos int
	Where    Expr   // nil when absent
	Group    string // GROUP BY column, "" when absent
	GroupPos int
	Order    *OrderExpr
	Limit    int // -1 when absent
	LimitPos int
}

// ProjCol is a plain column in the projection.
type ProjCol struct {
	Name string
	Pos  int
}

// AggExpr is one aggregate projection: count(*) or fn(col).
type AggExpr struct {
	Fn   string // "count", "sum", "min", "max", "avg"
	Col  string // "" for count(*)
	Star bool
	Pos  int
}

// ProjItem points at either a plain column or an aggregate, preserving
// the source order of a mixed projection (GROUP BY key + aggregates).
type ProjItem struct {
	IsAgg bool
	Index int // into Cols or Aggs
}

// OrderExpr is the ORDER BY clause.
type OrderExpr struct {
	Col  string
	Desc bool
	Pos  int
}

// Expr is a WHERE expression node.
type Expr interface{ pos() int }

// BoolExpr is an AND/OR over two or more children.
type BoolExpr struct {
	Op   string // "and" | "or"
	Kids []Expr
	Pos  int
}

// NotExpr negates a child expression.
type NotExpr struct {
	Kid Expr
	Pos int
}

// CmpExpr compares a column with a literal or placeholder:
// col = | != | < | <= | > | >= operand.
type CmpExpr struct {
	Col    string
	Op     string
	Val    Operand
	Pos    int
	ColPos int
}

// InExpr is col IN (literals...) or col IN $name; Neg records NOT IN
// (rejected at plan time with the position).
type InExpr struct {
	Col    string
	Vals   []Operand // literal list form
	Param  string    // placeholder form ("" when literal)
	Neg    bool
	Pos    int
	ColPos int
}

// LikeExpr is col LIKE 'pattern' (literal patterns only); the planner
// accepts only prefix patterns ending in a single '%'.
type LikeExpr struct {
	Col     string
	Pattern string
	Neg     bool
	Pos     int
	ColPos  int
}

func (e *BoolExpr) pos() int { return e.Pos }
func (e *NotExpr) pos() int  { return e.Pos }
func (e *CmpExpr) pos() int  { return e.Pos }
func (e *InExpr) pos() int   { return e.Pos }
func (e *LikeExpr) pos() int { return e.Pos }

// opKind enumerates operand flavors.
type opKind int

const (
	opInt opKind = iota
	opFloat
	opString
	opParam
)

// Operand is a literal or placeholder on the right side of a
// comparison or inside an IN list.
type Operand struct {
	Kind opKind
	Int  int64
	Flt  float64
	Str  string // string literal value, or placeholder name
	Pos  int
}

// ---- parser ----

// Parse lexes and parses one SELECT statement. Errors are *ParseError
// values carrying the 1-based byte position of the offending token.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, errAt(t.pos, "unexpected %s after end of statement", describe(t))
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// keyword reports whether t is the given keyword (case-insensitive).
func isKw(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKw(kw string) (token, error) {
	t := p.peek()
	if !isKw(t, kw) {
		return t, errAt(t.pos, "expected %s, found %s", strings.ToUpper(kw), describe(t))
	}
	return p.next(), nil
}

func (p *parser) acceptKw(kw string) bool {
	if isKw(p.peek(), kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, errAt(t.pos, "expected %s, found %s", k, describe(t))
	}
	return p.next(), nil
}

// columnIdent consumes a non-keyword identifier. Keywords are reserved
// in every identifier position so that Normalize's keyword casing can
// never change a valid statement's meaning.
func (p *parser) columnIdent(what string) (token, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return t, errAt(t.pos, "expected %s, found %s", what, describe(t))
	}
	if keywords[strings.ToLower(t.text)] {
		return t, errAt(t.pos, "expected %s, found keyword %q", what, t.text)
	}
	return t, nil
}

func describe(t token) string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return `"` + t.text + `"`
	case tokString:
		return "string literal"
	case tokParam:
		return "$" + t.text
	default:
		return `"` + t.text + `"`
	}
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if _, err := p.expectKw("select"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	if err := p.projection(st); err != nil {
		return nil, err
	}
	if _, err := p.expectKw("from"); err != nil {
		return nil, err
	}
	tbl, err := p.columnIdent("table name")
	if err != nil {
		return nil, err
	}
	st.Table = tbl.text
	st.TablePos = tbl.pos
	if p.acceptKw("where") {
		st.Where, err = p.orExpr()
		if err != nil {
			return nil, err
		}
	}
	if isKw(p.peek(), "group") {
		g := p.next()
		if _, err := p.expectKw("by"); err != nil {
			return nil, err
		}
		col, err := p.columnIdent("GROUP BY column")
		if err != nil {
			return nil, err
		}
		st.Group = col.text
		st.GroupPos = g.pos
	}
	if isKw(p.peek(), "order") {
		o := p.next()
		if _, err := p.expectKw("by"); err != nil {
			return nil, err
		}
		col, err := p.columnIdent("ORDER BY column")
		if err != nil {
			return nil, err
		}
		ord := &OrderExpr{Col: col.text, Pos: o.pos}
		if p.acceptKw("desc") {
			ord.Desc = true
		} else {
			p.acceptKw("asc")
		}
		st.Order = ord
	}
	if isKw(p.peek(), "limit") {
		l := p.next()
		n, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		v, perr := strconv.ParseInt(n.text, 10, 64)
		if perr != nil || v < 0 {
			return nil, errAt(n.pos, "LIMIT wants a non-negative integer, found %q", n.text)
		}
		st.Limit = int(v)
		st.LimitPos = l.pos
	}
	return st, nil
}

// projection parses '*' or a comma list of columns and aggregates.
func (p *parser) projection(st *SelectStmt) error {
	if p.peek().kind == tokStar {
		p.next()
		st.Star = true
		return nil
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return errAt(t.pos, "expected column or aggregate, found %s", describe(t))
		}
		fn := strings.ToLower(t.text)
		if aggFns[fn] && p.toks[p.i+1].kind == tokLParen {
			p.next() // fn
			p.next() // (
			agg := AggExpr{Fn: fn, Pos: t.pos}
			arg := p.peek()
			switch {
			case arg.kind == tokStar:
				p.next()
				agg.Star = true
				if fn != "count" {
					return errAt(arg.pos, "%s(*) is not supported; %s wants a column", fn, fn)
				}
			case arg.kind == tokIdent:
				if keywords[strings.ToLower(arg.text)] {
					return errAt(arg.pos, "expected column, found keyword %q", arg.text)
				}
				p.next()
				agg.Col = arg.text
				if fn == "count" {
					return errAt(arg.pos, "count wants '*' (there are no NULLs to skip)")
				}
			default:
				return errAt(arg.pos, "expected column or '*', found %s", describe(arg))
			}
			if _, err := p.expect(tokRParen); err != nil {
				return err
			}
			st.Proj = append(st.Proj, ProjItem{IsAgg: true, Index: len(st.Aggs)})
			st.Aggs = append(st.Aggs, agg)
		} else {
			if keywords[fn] {
				return errAt(t.pos, "expected column or aggregate, found keyword %q", t.text)
			}
			p.next()
			st.Proj = append(st.Proj, ProjItem{Index: len(st.Cols)})
			st.Cols = append(st.Cols, ProjCol{Name: t.text, Pos: t.pos})
		}
		if p.peek().kind != tokComma {
			return nil
		}
		p.next()
	}
}

// orExpr := andExpr (OR andExpr)*
func (p *parser) orExpr() (Expr, error) {
	kid, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []Expr{kid}
	pos := kid.pos()
	for isKw(p.peek(), "or") {
		p.next()
		k, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &BoolExpr{Op: "or", Kids: kids, Pos: pos}, nil
}

// andExpr := unaryExpr (AND unaryExpr)*
func (p *parser) andExpr() (Expr, error) {
	kid, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	kids := []Expr{kid}
	pos := kid.pos()
	for isKw(p.peek(), "and") {
		p.next()
		k, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &BoolExpr{Op: "and", Kids: kids, Pos: pos}, nil
}

// unaryExpr := NOT unaryExpr | '(' orExpr ')' | comparison
func (p *parser) unaryExpr() (Expr, error) {
	t := p.peek()
	if isKw(t, "not") {
		p.next()
		kid, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Kid: kid, Pos: t.pos}, nil
	}
	if t.kind == tokLParen {
		p.next()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.comparison()
}

// comparison := ident op operand
//
//	| ident [NOT] IN '(' operand (',' operand)* ')'
//	| ident [NOT] IN $name
//	| ident [NOT] LIKE string
func (p *parser) comparison() (Expr, error) {
	col, err := p.expect(tokIdent)
	if err != nil {
		return nil, errAt(err.(*ParseError).Pos, "expected a condition (column comparison), found %s", describe(p.peek()))
	}
	if keywords[strings.ToLower(col.text)] {
		return nil, errAt(col.pos, "expected a condition (column comparison), found keyword %q", col.text)
	}
	t := p.peek()
	neg := false
	negPos := 0
	if isKw(t, "not") {
		negPos = p.next().pos
		neg = true
		t = p.peek()
		if !isKw(t, "in") && !isKw(t, "like") {
			return nil, errAt(t.pos, "expected IN or LIKE after NOT, found %s", describe(t))
		}
	}
	switch {
	case isKw(t, "in"):
		in := p.next()
		pos := in.pos
		if neg {
			pos = negPos
		}
		e := &InExpr{Col: col.text, Neg: neg, Pos: pos, ColPos: col.pos}
		if p.peek().kind == tokParam {
			e.Param = p.next().text
			return e, nil
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		for {
			o, err := p.operand()
			if err != nil {
				return nil, err
			}
			e.Vals = append(e.Vals, o)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case isKw(t, "like"):
		like := p.next()
		pos := like.pos
		if neg {
			pos = negPos
		}
		pat := p.peek()
		if pat.kind != tokString {
			return nil, errAt(pat.pos, "LIKE wants a string literal pattern, found %s", describe(pat))
		}
		p.next()
		return &LikeExpr{Col: col.text, Pattern: pat.text, Neg: neg, Pos: pos, ColPos: col.pos}, nil
	case t.kind == tokOp:
		op := p.next()
		o, err := p.operand()
		if err != nil {
			return nil, err
		}
		return &CmpExpr{Col: col.text, Op: op.text, Val: o, Pos: op.pos, ColPos: col.pos}, nil
	default:
		return nil, errAt(t.pos, "expected a comparison operator, IN or LIKE, found %s", describe(t))
	}
}

// operand := number | string | $name
func (p *parser) operand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			// Out of int64 range: fall back to the float reading so the
			// planner reports a typed error against the column.
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return Operand{}, errAt(t.pos, "malformed number %q", t.text)
			}
			p.next()
			return Operand{Kind: opFloat, Flt: f, Pos: t.pos}, nil
		}
		p.next()
		return Operand{Kind: opInt, Int: v, Pos: t.pos}, nil
	case tokFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Operand{}, errAt(t.pos, "malformed number %q", t.text)
		}
		p.next()
		return Operand{Kind: opFloat, Flt: f, Pos: t.pos}, nil
	case tokString:
		p.next()
		return Operand{Kind: opString, Str: t.text, Pos: t.pos}, nil
	case tokParam:
		p.next()
		return Operand{Kind: opParam, Str: t.text, Pos: t.pos}, nil
	default:
		return Operand{}, errAt(t.pos, "expected a literal or $placeholder, found %s", describe(t))
	}
}
