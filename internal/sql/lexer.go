// Package sql is the network front-end's query language: a hand-written
// lexer and recursive-descent parser for a small SQL subset, and a
// planner that compiles the parsed statement onto the table package's
// native Query/Prepared/Aggregate/GroupBy/OrderBy API. The subset is
//
//	SELECT * | col[, col...] | agg[, agg...]
//	FROM table
//	[WHERE <predicate>]              -- AND / OR / NOT, comparisons,
//	                                 -- IN (...), IN $name, LIKE 'pfx%'
//	[GROUP BY col]
//	[ORDER BY col [ASC|DESC]]
//	[LIMIT n]
//
// with $name placeholders in comparison and IN positions, so one parsed
// statement prepares once and serves many executions with different
// bindings. Every error carries the 1-based byte position of the
// offending token in the query text.
package sql

import (
	"fmt"
	"strings"
)

// ParseError is a syntax or planning error anchored to a position in
// the query text (1-based byte offset of the offending token).
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: position %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) *ParseError {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// tokKind enumerates lexical token classes. Keywords are not a lexical
// class: the parser matches identifiers case-insensitively against the
// keyword set, so column names that collide with keywords still lex.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt    // integer literal (decimal)
	tokFloat  // literal with '.' or exponent
	tokString // '...' with '' escaping, text holds the decoded value
	tokParam  // $name, text holds the name without '$'
	tokOp     // = != <> < <= > >=
	tokLParen
	tokRParen
	tokComma
	tokStar
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokInt, tokFloat:
		return "number"
	case tokString:
		return "string"
	case tokParam:
		return "placeholder"
	case tokOp:
		return "operator"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokStar:
		return "'*'"
	}
	return "token"
}

// token is one lexical token with its 1-based byte position.
type token struct {
	kind tokKind
	text string // decoded payload: name, digits, operator, string value
	pos  int
}

// lex tokenizes src in one pass. It never panics: malformed input
// returns a positioned error.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	emit := func(k tokKind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos + 1})
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			emit(tokLParen, "(", i)
			i++
		case c == ')':
			emit(tokRParen, ")", i)
			i++
		case c == ',':
			emit(tokComma, ",", i)
			i++
		case c == '*':
			emit(tokStar, "*", i)
			i++
		case c == '=':
			emit(tokOp, "=", i)
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				emit(tokOp, "!=", i)
				i += 2
			} else {
				return nil, errAt(i+1, "unexpected %q (did you mean \"!=\"?)", "!")
			}
		case c == '<':
			switch {
			case i+1 < n && src[i+1] == '=':
				emit(tokOp, "<=", i)
				i += 2
			case i+1 < n && src[i+1] == '>':
				emit(tokOp, "!=", i)
				i += 2
			default:
				emit(tokOp, "<", i)
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(tokOp, ">=", i)
				i += 2
			} else {
				emit(tokOp, ">", i)
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // '' escapes a quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, errAt(start+1, "unterminated string literal")
			}
			emit(tokString, sb.String(), start)
		case c == '$':
			start := i
			i++
			j := i
			for j < n && isIdentByte(src[j], j > i) {
				j++
			}
			if j == i {
				return nil, errAt(start+1, "placeholder needs a name after '$'")
			}
			emit(tokParam, src[i:j], start)
			i = j
		case c >= '0' && c <= '9' || c == '.':
			start := i
			kind := tokInt
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i < n && src[i] == '.' {
				kind = tokFloat
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				kind = tokFloat
				i++
				if i < n && (src[i] == '+' || src[i] == '-') {
					i++
				}
				d := i
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
				if i == d {
					return nil, errAt(start+1, "malformed number %q", src[start:i])
				}
			}
			text := src[start:i]
			if text == "." {
				return nil, errAt(start+1, "unexpected '.'")
			}
			if i < n && isIdentByte(src[i], true) {
				return nil, errAt(start+1, "malformed number %q", src[start:i+1])
			}
			emit(kind, text, start)
		case isIdentByte(c, false):
			start := i
			for i < n && isIdentByte(src[i], true) {
				i++
			}
			emit(tokIdent, src[start:i], start)
		case c == '-':
			// Negative literals lex as one number so operand parsing
			// stays single-token; '-' elsewhere is rejected there.
			start := i
			i++
			if i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				j := i
				for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' ||
					src[j] == 'e' || src[j] == 'E' ||
					(j > i && (src[j] == '+' || src[j] == '-') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
					j++
				}
				sub, err := lex(src[i:j])
				if err != nil || len(sub) != 2 || (sub[0].kind != tokInt && sub[0].kind != tokFloat) {
					return nil, errAt(start+1, "malformed number %q", src[start:j])
				}
				emit(sub[0].kind, "-"+sub[0].text, start)
				i = j
			} else {
				return nil, errAt(start+1, "unexpected %q", "-")
			}
		default:
			return nil, errAt(i+1, "unexpected %q", string(src[i]))
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n + 1})
	return toks, nil
}

func isIdentByte(c byte, rest bool) bool {
	switch {
	case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		return true
	case c >= '0' && c <= '9':
		return rest
	}
	return false
}

// keywords the normalizer renders uppercase. Matching is always
// case-insensitive; the set exists only for canonical rendering.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "in": true, "like": true, "group": true, "by": true,
	"order": true, "asc": true, "desc": true, "limit": true,
	"count": true, "sum": true, "min": true, "max": true, "avg": true,
}

// Normalize renders the query in canonical form — keywords uppercased,
// single spaces, strings requoted — so textually different spellings of
// the same statement share one prepared-statement cache entry. Invalid
// input comes back unchanged (the parser will report the real error).
func Normalize(src string) string {
	toks, err := lex(src)
	if err != nil {
		return src
	}
	var sb strings.Builder
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if i > 0 && needSpace(toks[i-1], t) {
			sb.WriteByte(' ')
		}
		switch t.kind {
		case tokString:
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			sb.WriteByte('\'')
		case tokParam:
			sb.WriteByte('$')
			sb.WriteString(t.text)
		case tokIdent:
			lower := strings.ToLower(t.text)
			switch {
			case aggFns[lower] && toks[i+1].kind == tokLParen:
				// Aggregate functions render lowercase, matching the
				// result column headers ("count(*)", "sum(qty)").
				sb.WriteString(lower)
			case keywords[lower]:
				sb.WriteString(strings.ToUpper(t.text))
			default:
				sb.WriteString(t.text)
			}
		default:
			sb.WriteString(t.text)
		}
	}
	return sb.String()
}

// needSpace reports whether the canonical rendering separates two
// adjacent tokens: everywhere except after '(' and before ')', ',' or
// '(' following a function-style identifier — close enough to idiomatic
// SQL while staying deterministic.
func needSpace(prev, cur token) bool {
	switch cur.kind {
	case tokComma, tokRParen:
		return false
	case tokLParen:
		// count(*): no space between an aggregate keyword and '('.
		return !(prev.kind == tokIdent && aggFns[strings.ToLower(prev.text)])
	}
	switch prev.kind {
	case tokLParen:
		return false
	}
	return true
}

var aggFns = map[string]bool{"count": true, "sum": true, "min": true, "max": true, "avg": true}
