package sql

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/table"
)

// testTable builds a deterministic multi-segment orders table: qty
// (int64), price (float64), pri (uint8), city (string).
func testTable(t testing.TB, rows int) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	cities := []string{"Amsterdam", "Athens", "Berlin", "Bern", "Lisbon", "Madrid", "Oslo", "Paris", "Prague", "Rome"}
	qty := make([]int64, rows)
	price := make([]float64, rows)
	pri := make([]uint8, rows)
	city := make([]string, rows)
	for i := 0; i < rows; i++ {
		qty[i] = int64(rng.Intn(1000))
		price[i] = float64(rng.Intn(10000)) / 100
		pri[i] = uint8(rng.Intn(5))
		city[i] = cities[rng.Intn(len(cities))]
	}
	tb := table.NewWithOptions("orders", table.TableOptions{SegmentRows: 256})
	if err := table.AddColumn(tb, "qty", qty, table.Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := table.AddColumn(tb, "price", price, table.Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := table.AddColumn(tb, "pri", pri, table.Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", city, table.Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNormalize(t *testing.T) {
	cases := [][2]string{
		{"select  *  from orders", "SELECT * FROM orders"},
		{"Select qty,price From orders Where qty>=10 And city='Oslo'",
			"SELECT qty, price FROM orders WHERE qty >= 10 AND city = 'Oslo'"},
		{"select COUNT( * ) from orders", "SELECT count(*) FROM orders"},
		{"select sum(qty) from orders where city in('a','b')",
			"SELECT sum(qty) FROM orders WHERE city IN ('a', 'b')"},
		{"select * from orders where qty <> 5", "SELECT * FROM orders WHERE qty != 5"},
		{"select * from orders where city = 'O''Hare'", "SELECT * FROM orders WHERE city = 'O''Hare'"},
		{"select * from orders where qty = $q limit 3", "SELECT * FROM orders WHERE qty = $q LIMIT 3"},
	}
	for _, c := range cases {
		if got := Normalize(c[0]); got != c[1] {
			t.Errorf("Normalize(%q) = %q, want %q", c[0], got, c[1])
		}
	}
	// Same statement, different spelling: one cache key.
	if Normalize("select * from orders where qty<5") != Normalize("SELECT  *  FROM orders WHERE qty < 5") {
		t.Error("equivalent spellings normalize differently")
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		src string
		pos int
		sub string
	}{
		{"", 1, "expected SELECT"},
		{"frobnicate", 1, "expected SELECT"},
		{"select", 7, "expected column or aggregate"},
		{"select * frm orders", 10, "expected FROM"},
		{"select * from", 14, "expected table name"},
		{"select * from orders where", 27, "expected a condition"},
		{"select * from orders where qty", 31, "comparison operator"},
		{"select * from orders where qty = ", 34, "expected a literal"},
		{"select * from orders where qty = 'x' order", 43, "expected BY"},
		{"select * from orders limit -1", 28, "non-negative integer"},
		{"select * from orders where qty = 5 trailing", 36, "after end of statement"},
		{"select * from orders where city = 'unterminated", 35, "unterminated string"},
		{"select * from orders where qty = $", 34, "placeholder needs a name"},
		{"select * from orders where qty ~ 5", 32, "unexpected"},
		{"select min(*) from orders", 12, "min(*) is not supported"},
		{"select count(qty) from orders", 14, "count wants '*'"},
		{"select * from orders where qty = 12abc", 34, "malformed number"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): no error, want one at position %d", c.src, c.pos)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): error %v is not a *ParseError", c.src, err)
			continue
		}
		if pe.Pos != c.pos || !strings.Contains(pe.Msg, c.sub) {
			t.Errorf("Parse(%q) = pos %d %q, want pos %d containing %q", c.src, pe.Pos, pe.Msg, c.pos, c.sub)
		}
	}
}

func TestCompileErrorsCarryPositions(t *testing.T) {
	tb := testTable(t, 512)
	cases := []struct {
		src string
		pos int
		sub string
	}{
		{"select * from nope", 15, "unknown table"},
		{"select nope from orders", 8, "no column"},
		{"select * from orders where nope = 5", 28, "no column"},
		{"select * from orders where qty = 'x'", 34, "string literal on int64 column"},
		{"select * from orders where qty = 1.5", 34, "float literal"},
		{"select * from orders where pri = 300", 34, "out of range for uint8"},
		{"select * from orders where pri = -1", 34, "out of range for uint8"},
		{"select * from orders where city = 5", 35, "numeric literal on string column"},
		{"select * from orders where qty not in (1,2)", 32, "NOT IN is not supported"},
		{"select * from orders where not city like 'a%'", 37, "NOT LIKE is not supported"},
		{"select * from orders where qty like 'a%'", 32, "LIKE needs a string column"},
		{"select * from orders where city like '%a'", 33, "prefix patterns"},
		{"select * from orders where city like 'a_b%'", 33, "single trailing"},
		{"select * from orders where city in ('a', $p)", 42, "IN lists mix no placeholders"},
		{"select qty from orders group by city", 8, "must appear in GROUP BY"},
		{"select price, count(*) from orders", 8, "must appear in GROUP BY"},
		{"select city, count(*) from orders group by city order by city", 49, "ORDER BY does not combine"},
		{"select city, count(*) from orders group by city limit 5", 49, "LIMIT does not combine"},
		{"select count(*) from orders order by qty", 29, "ORDER BY does not apply"},
		{"select sum(city) from orders", 8, "sum and avg need numeric"},
		{"select price, count(*) from orders group by price", 36, "integer or string"},
		{"select * from orders where qty = $a and city = $a", 48, "used as both"},
	}
	for _, c := range cases {
		_, err := Compile(tb, c.src)
		if err == nil {
			t.Errorf("Compile(%q): no error, want one at position %d", c.src, c.pos)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Compile(%q): error %v is not a *ParseError", c.src, err)
			continue
		}
		if pe.Pos != c.pos || !strings.Contains(pe.Msg, c.sub) {
			t.Errorf("Compile(%q) = pos %d %q, want pos %d containing %q", c.src, pe.Pos, pe.Msg, c.pos, c.sub)
		}
	}
}

// TestExecAgainstNativeCount cross-checks a few fixed statements
// against hand-built native queries.
func TestExecAgainstNativeCount(t *testing.T) {
	tb := testTable(t, 2000)
	check := func(src string, pred table.Predicate) {
		t.Helper()
		st, err := Compile(tb, src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		res, err := st.Exec(nil, table.SelectOptions{})
		if err != nil {
			t.Fatalf("Exec(%q): %v", src, err)
		}
		want, _, err := tb.Select().Where(pred).Count()
		if err != nil {
			t.Fatal(err)
		}
		got := res.Rows[0][0].(int64)
		if uint64(got) != want {
			t.Errorf("%q: sql count %d, native %d", src, got, want)
		}
	}
	check("select count(*) from orders where qty >= 100 and qty < 200",
		table.Range[int64]("qty", 100, 200))
	check("select count(*) from orders where qty > 500",
		table.AndNot(table.AtLeast[int64]("qty", 500), table.Equals[int64]("qty", 500)))
	check("select count(*) from orders where qty <= 500",
		table.Or(table.LessThan[int64]("qty", 500), table.Equals[int64]("qty", 500)))
	check("select count(*) from orders where qty != 500",
		table.Or(table.LessThan[int64]("qty", 500),
			table.AndNot(table.AtLeast[int64]("qty", 500), table.Equals[int64]("qty", 500))))
	check("select count(*) from orders where not qty < 500",
		table.AtLeast[int64]("qty", 500))
	check("select count(*) from orders where not (qty < 500 or city = 'Oslo')",
		table.And(table.AtLeast[int64]("qty", 500),
			table.Or(table.StrLessThan("city", "Oslo"),
				table.AndNot(table.StrAtLeast("city", "Oslo"), table.StrEquals("city", "Oslo")))))
	check("select count(*) from orders where city like 'B%'",
		table.StrPrefix("city", "B"))
	check("select count(*) from orders where qty in (1, 2, 3, 700)",
		table.In[int64]("qty", 1, 2, 3, 700))
	check("select count(*) from orders where city in ('Oslo', 'Rome')",
		table.StrIn("city", "Oslo", "Rome"))
	check("select count(*) from orders where price < 25.5",
		table.LessThan[float64]("price", 25.5))
	check("select count(*) from orders where pri >= 3",
		table.AtLeast[uint8]("pri", 3))
}

func TestExecBindsAndConversion(t *testing.T) {
	tb := testTable(t, 1000)
	st, err := Compile(tb, "select count(*) from orders where qty >= $lo and qty < $hi and city in $cs")
	if err != nil {
		t.Fatal(err)
	}
	want := []ParamInfo{{Name: "cs", Type: "[]string"}, {Name: "hi", Type: "int64"}, {Name: "lo", Type: "int64"}}
	if got := st.Params(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Params() = %v, want %v", got, want)
	}
	native, _, err := tb.Select().Where(table.And(
		table.Range[int64]("qty", 100, 600),
		table.StrIn("city", "Bern", "Paris"),
	)).Count()
	if err != nil {
		t.Fatal(err)
	}
	// Native Go values and decoded-JSON values both convert.
	for _, binds := range []map[string]any{
		{"lo": int64(100), "hi": int64(600), "cs": []string{"Bern", "Paris"}},
		{"lo": json.Number("100"), "hi": json.Number("600"), "cs": []any{"Bern", "Paris"}},
	} {
		res, err := st.Exec(binds, table.SelectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].(int64); uint64(got) != native {
			t.Errorf("binds %v: count %d, native %d", binds, got, native)
		}
	}
	// Unbound, unknown, and ill-typed binds all fail cleanly.
	if _, err := st.Exec(map[string]any{"lo": int64(1), "hi": int64(2)}, table.SelectOptions{}); err == nil || !strings.Contains(err.Error(), "unbound parameter $cs") {
		t.Errorf("missing bind: %v", err)
	}
	if _, err := st.Exec(map[string]any{"lo": int64(1), "hi": int64(2), "cs": []string{}, "zz": 1}, table.SelectOptions{}); err == nil || !strings.Contains(err.Error(), "unknown parameter $zz") {
		t.Errorf("unknown bind: %v", err)
	}
	if _, err := st.Exec(map[string]any{"lo": "x", "hi": int64(2), "cs": []string{}}, table.SelectOptions{}); err == nil || !strings.Contains(err.Error(), "$lo") {
		t.Errorf("ill-typed bind: %v", err)
	}
	// Narrow-typed params range-check at bind time.
	st2, err := Compile(tb, "select count(*) from orders where pri = $p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Exec(map[string]any{"p": json.Number("300")}, table.SelectOptions{}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range bind: %v", err)
	}
	if _, err := st2.Exec(map[string]any{"p": json.Number("3")}, table.SelectOptions{}); err != nil {
		t.Errorf("in-range bind: %v", err)
	}
}

func TestExecRowsOrderLimitAndGroup(t *testing.T) {
	tb := testTable(t, 1500)
	// Top-k rows in order.
	st, err := Compile(tb, "select qty, city from orders where qty >= 900 order by qty desc limit 5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec(nil, table.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Columns, []string{"qty", "city"}) {
		t.Fatalf("columns %v", res.Columns)
	}
	if res.RowCount != 5 || len(res.Rows) != 5 {
		t.Fatalf("rows %d, want 5", res.RowCount)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].(int64) < res.Rows[i][0].(int64) {
			t.Fatalf("rows not descending: %v", res.Rows)
		}
	}
	// Grouped aggregation matches the native grouped result.
	st, err = Compile(tb, "select city, count(*), sum(qty) from orders where qty < 500 group by city")
	if err != nil {
		t.Fatal(err)
	}
	res, err = st.Exec(nil, table.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gr, _, err := tb.Select().Where(table.LessThan[int64]("qty", 500)).
		GroupBy("city").Aggregate(table.CountAll(), table.Sum("qty"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(gr.Groups) {
		t.Fatalf("%d groups, native %d", len(res.Rows), len(gr.Groups))
	}
	for i, g := range gr.Groups {
		row := res.Rows[i]
		if row[0].(string) != g.Key.(string) || row[1].(int64) != g.Aggs[0].Int || row[2].(int64) != g.Aggs[1].Int {
			t.Fatalf("group %d: sql %v, native %+v", i, row, g)
		}
	}
	// Aggregates over zero qualifying rows are null, count is 0.
	st, err = Compile(tb, "select count(*), min(price), avg(qty) from orders where qty > 100000")
	if err != nil {
		t.Fatal(err)
	}
	res, err = st.Exec(nil, table.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 0 || res.Rows[0][1] != nil || res.Rows[0][2] != nil {
		t.Fatalf("zero-row aggregates: %v", res.Rows[0])
	}
}

func TestExplain(t *testing.T) {
	tb := testTable(t, 1000)
	st, err := Compile(tb, "select * from orders where qty >= $lo limit 10")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := st.Explain(map[string]any{"lo": int64(500)}, table.SelectOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("nil plan")
	}
	if _, err := json.Marshal(plan); err != nil {
		t.Fatalf("plan does not marshal: %v", err)
	}
	st, err = Compile(tb, "select sum(price) from orders where city = 'Oslo'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Explain(nil, table.SelectOptions{Parallelism: 1}); err != nil {
		t.Fatalf("aggregate explain: %v", err)
	}
}

// errors.As helper check: Compile of valid SQL on the wrong table.
func TestStatementMetadata(t *testing.T) {
	tb := testTable(t, 300)
	st, err := Compile(tb, "select * from orders where qty = 1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Table() != "orders" {
		t.Errorf("Table() = %q", st.Table())
	}
	if st.SQL != "SELECT * FROM orders WHERE qty = 1" {
		t.Errorf("SQL = %q", st.SQL)
	}
	if fmt.Sprint(st.Params()) != "[]" {
		t.Errorf("Params() = %v", st.Params())
	}
}
