package sql

import (
	"fmt"

	"repro/internal/core"
	"repro/table"
)

// Result is one statement execution's result set in a uniform shape:
// column headers plus value rows. Plain selects stream qualifying rows,
// aggregates produce one row, grouped aggregates one row per group (in
// ascending key order, deterministic at every parallelism level).
type Result struct {
	Table    string   `json:"table"`
	Columns  []string `json:"columns"`
	Rows     [][]any  `json:"rows"`
	RowCount int      `json:"row_count"`
	// Stats reports the index-work counters for aggregate and grouped
	// executions; row-streaming executions omit it (the iterator path
	// does not surface per-query stats).
	Stats *core.QueryStats `json:"stats,omitempty"`
}

// Exec runs one execution of the statement: binds are raw placeholder
// values (native Go values or decoded JSON — json.Number for numbers),
// converted to the exact types the prepared plan requires; opts carries
// the per-execution context and parallelism.
func (s *Statement) Exec(binds map[string]any, opts table.SelectOptions) (*Result, error) {
	q, err := s.start(binds, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Table: s.tbl.Name(), Columns: s.cols, Rows: [][]any{}}
	switch s.kind {
	case kindAgg:
		if s.limit >= 0 {
			q.Limit(s.limit)
		}
		ar, st, err := q.Aggregate(s.aggs...)
		if err != nil {
			return nil, err
		}
		row := make([]any, len(s.ast.Proj))
		for i, p := range s.ast.Proj {
			row[i] = aggJSON(ar.At(p.Index))
		}
		res.Rows = append(res.Rows, row)
		res.Stats = &st
	case kindGroup:
		gr, st, err := q.GroupBy(s.group).Aggregate(s.aggs...)
		if err != nil {
			return nil, err
		}
		for _, g := range gr.Groups {
			row := make([]any, len(s.ast.Proj))
			for i, p := range s.ast.Proj {
				if p.IsAgg {
					row[i] = aggJSON(g.Aggs[p.Index])
				} else {
					row[i] = g.Key
				}
			}
			res.Rows = append(res.Rows, row)
		}
		res.Stats = &st
	default: // kindRows
		if s.order != nil {
			q.OrderBy(*s.order)
		}
		if s.limit >= 0 {
			q.Limit(s.limit)
		}
		for _, r := range q.Rows() {
			row := make([]any, len(s.cols))
			for i := range s.cols {
				row[i] = r.Value(i)
			}
			res.Rows = append(res.Rows, row)
		}
		if err := q.Err(); err != nil {
			return nil, err
		}
	}
	res.RowCount = len(res.Rows)
	return res, nil
}

// Explain returns the native query plan for one execution of the
// statement (aggregate shapes explain their aggregation pushdown; the
// grouped shape explains the same scan without the per-key fold).
func (s *Statement) Explain(binds map[string]any, opts table.SelectOptions) (*table.Plan, error) {
	q, err := s.start(binds, opts)
	if err != nil {
		return nil, err
	}
	switch s.kind {
	case kindAgg, kindGroup:
		return q.ExplainAggregate(s.aggs...)
	default:
		if s.order != nil {
			q.OrderBy(*s.order)
		}
		if s.limit >= 0 {
			q.Limit(s.limit)
		}
		return q.Explain()
	}
}

// start begins one execution: converts and binds placeholder values
// and applies the per-execution options.
func (s *Statement) start(binds map[string]any, opts table.SelectOptions) (*table.Query, error) {
	for name := range binds {
		if _, ok := s.params[name]; !ok {
			return nil, fmt.Errorf("sql: unknown parameter $%s", name)
		}
	}
	q := s.prep.Exec().Options(opts)
	for name, pc := range s.params {
		raw, ok := binds[name]
		if !ok {
			return nil, fmt.Errorf("sql: unbound parameter $%s (wants %s)", name, pc.want())
		}
		v, err := pc.conv(raw)
		if err != nil {
			return nil, fmt.Errorf("sql: parameter $%s: %w", name, err)
		}
		q = q.Bind(name, v)
	}
	return q, nil
}

// aggJSON flattens one typed aggregate value for a JSON row: exact
// int64 for integer results, float64 otherwise, string for string
// min/max, nil when undefined (no qualifying rows).
func aggJSON(v table.AggValue) any {
	switch {
	case !v.Valid:
		return nil
	case v.IsInt:
		return v.Int
	case v.IsStr:
		return v.Str
	default:
		return v.Float
	}
}
