package sql

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/coltype"
	"repro/table"
)

// stmtKind selects the execution shape of a compiled statement.
type stmtKind int

const (
	kindRows  stmtKind = iota // plain projection, optional order/limit
	kindAgg                   // whole-result aggregation
	kindGroup                 // grouped aggregation
)

// ParamInfo describes one placeholder of a compiled statement.
type ParamInfo struct {
	Name string `json:"name"`
	Type string `json:"type"` // bound value type: "int64", "[]string", ...
}

// paramConv converts a raw bind value (native Go or decoded JSON) to
// the exact dynamic type the prepared statement requires.
type paramConv struct {
	typ  string
	list bool
	conv func(v any) (any, error)
}

func (pc *paramConv) want() string {
	if pc.list {
		return "[]" + pc.typ
	}
	return pc.typ
}

// Statement is one compiled SQL statement bound to a table: the parsed
// AST planned onto a table.Prepared plus the projection / aggregation /
// ordering shape around it. A Statement is immutable after Compile and
// safe for concurrent Exec calls — the server caches them by normalized
// query text.
type Statement struct {
	SQL    string // normalized text (cache key)
	ast    *SelectStmt
	tbl    *table.Table
	prep   *table.Prepared
	kind   stmtKind
	cols   []string // result column headers, in projection order
	aggs   []table.AggSpec
	order  *table.OrderSpec
	limit  int // -1 when absent
	group  string
	params map[string]*paramConv
}

// Params lists the statement's placeholders sorted by name.
func (s *Statement) Params() []ParamInfo {
	out := make([]ParamInfo, 0, len(s.params))
	for name, pc := range s.params {
		out = append(out, ParamInfo{Name: name, Type: pc.want()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Table returns the name of the table the statement was compiled for.
func (s *Statement) Table() string { return s.tbl.Name() }

// Compile parses src and plans it onto t's native query API. The
// returned statement has prepared (and type-checked) every predicate
// leaf; executions only bind placeholder values. All errors are
// *ParseError values positioned in the query text.
func Compile(t *table.Table, src string) (*Statement, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return compileAST(t, ast, Normalize(src))
}

func compileAST(t *table.Table, ast *SelectStmt, normalized string) (*Statement, error) {
	if ast.Table != t.Name() {
		return nil, errAt(ast.TablePos, "unknown table %q (serving %q)", ast.Table, t.Name())
	}
	s := &Statement{SQL: normalized, ast: ast, tbl: t, limit: ast.Limit, params: map[string]*paramConv{}}

	var pred table.Predicate
	if ast.Where != nil {
		var err error
		pred, err = s.rewrite(ast.Where, false)
		if err != nil {
			return nil, err
		}
	}
	if err := s.planProjection(); err != nil {
		return nil, err
	}

	prep, err := t.Prepare(pred, table.SelectOptions{})
	if err != nil {
		// Planner checks above should have caught everything positioned;
		// anchor residual table-layer complaints at the statement start.
		return nil, errAt(1, "%v", err)
	}
	if s.kind == kindRows {
		prep.Select(s.cols...)
	}
	s.prep = prep
	return s, nil
}

// planProjection resolves the projection into the statement's execution
// shape: plain rows, whole-result aggregation, or grouped aggregation.
func (s *Statement) planProjection() error {
	ast := s.ast
	t := s.tbl
	if ast.Group != "" {
		s.kind = kindGroup
		s.group = ast.Group
		if ast.Star {
			return errAt(ast.GroupPos, "SELECT * does not combine with GROUP BY; project the key and aggregates")
		}
		if ast.Order != nil {
			return errAt(ast.Order.Pos, "ORDER BY does not combine with GROUP BY")
		}
		if ast.Limit >= 0 {
			return errAt(ast.LimitPos, "LIMIT does not combine with GROUP BY")
		}
		keyType, err := t.ColumnType(ast.Group)
		if err != nil {
			return errAt(ast.GroupPos, "no column %q in table %q", ast.Group, t.Name())
		}
		if strings.HasPrefix(keyType, "float") {
			return errAt(ast.GroupPos, "GROUP BY key %q is %s: keys must be integer or string columns", ast.Group, keyType)
		}
		for _, c := range ast.Cols {
			if c.Name != ast.Group {
				return errAt(c.Pos, "column %q must appear in GROUP BY or inside an aggregate", c.Name)
			}
		}
		if err := s.planAggs(); err != nil {
			return err
		}
		s.cols = s.projHeaders()
		return nil
	}
	if len(ast.Aggs) > 0 {
		s.kind = kindAgg
		if len(ast.Cols) > 0 {
			return errAt(ast.Cols[0].Pos, "column %q must appear in GROUP BY or inside an aggregate", ast.Cols[0].Name)
		}
		if ast.Order != nil {
			return errAt(ast.Order.Pos, "ORDER BY does not apply to an aggregate result")
		}
		if err := s.planAggs(); err != nil {
			return err
		}
		s.cols = s.projHeaders()
		return nil
	}
	s.kind = kindRows
	if ast.Star {
		s.cols = t.Columns()
	} else {
		s.cols = make([]string, len(ast.Cols))
		for i, c := range ast.Cols {
			if _, err := t.ColumnType(c.Name); err != nil {
				return errAt(c.Pos, "no column %q in table %q", c.Name, t.Name())
			}
			s.cols[i] = c.Name
		}
	}
	if ast.Order != nil {
		if _, err := t.ColumnType(ast.Order.Col); err != nil {
			return errAt(ast.Order.Pos, "no column %q in table %q", ast.Order.Col, t.Name())
		}
		var o table.OrderSpec
		if ast.Order.Desc {
			o = table.Desc(ast.Order.Col)
		} else {
			o = table.Asc(ast.Order.Col)
		}
		s.order = &o
	}
	return nil
}

// planAggs validates the aggregate projections and builds their specs.
func (s *Statement) planAggs() error {
	for _, a := range s.ast.Aggs {
		if a.Star { // count(*)
			s.aggs = append(s.aggs, table.CountAll())
			continue
		}
		typ, err := s.tbl.ColumnType(a.Col)
		if err != nil {
			return errAt(a.Pos, "no column %q in table %q", a.Col, s.tbl.Name())
		}
		switch a.Fn {
		case "sum", "avg":
			if typ == "string" {
				return errAt(a.Pos, "%s(%s): column is a string; sum and avg need numeric columns", a.Fn, a.Col)
			}
		}
		switch a.Fn {
		case "sum":
			s.aggs = append(s.aggs, table.Sum(a.Col))
		case "avg":
			s.aggs = append(s.aggs, table.Avg(a.Col))
		case "min":
			s.aggs = append(s.aggs, table.Min(a.Col))
		case "max":
			s.aggs = append(s.aggs, table.Max(a.Col))
		default:
			return errAt(a.Pos, "unsupported aggregate %q", a.Fn)
		}
	}
	return nil
}

// projHeaders renders the result column headers in source projection
// order: plain column names and "fn(col)" / "count(*)" labels.
func (s *Statement) projHeaders() []string {
	out := make([]string, len(s.ast.Proj))
	for i, p := range s.ast.Proj {
		if p.IsAgg {
			a := s.ast.Aggs[p.Index]
			if a.Star {
				out[i] = "count(*)"
			} else {
				out[i] = a.Fn + "(" + a.Col + ")"
			}
		} else {
			out[i] = s.ast.Cols[p.Index].Name
		}
	}
	return out
}

// ---- WHERE rewriting ----

// negOp maps each comparison operator to its negation, so NOT pushes
// down to the leaves (De Morgan for AND/OR, operator flip here).
var negOp = map[string]string{
	"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">",
}

// rewrite lowers a WHERE expression to a table predicate, pushing any
// enclosing NOT down into the leaves. Float columns follow SQL
// comparison semantics except that NaN never matches any operator,
// including '!=' (the rewrite expresses '!=' through ordered
// comparisons, which NaN fails).
func (s *Statement) rewrite(e Expr, neg bool) (table.Predicate, error) {
	switch node := e.(type) {
	case *NotExpr:
		return s.rewrite(node.Kid, !neg)
	case *BoolExpr:
		kids := make([]table.Predicate, len(node.Kids))
		for i, k := range node.Kids {
			p, err := s.rewrite(k, neg)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		op := node.Op
		if neg { // De Morgan
			if op == "and" {
				op = "or"
			} else {
				op = "and"
			}
		}
		if op == "and" {
			return table.And(kids...), nil
		}
		return table.Or(kids...), nil
	case *CmpExpr:
		op := node.Op
		if neg {
			op = negOp[op]
		}
		return s.cmpLeaf(node, op)
	case *InExpr:
		if node.Neg || neg {
			return nil, errAt(node.Pos, "NOT IN is not supported; rewrite with != and AND")
		}
		return s.inLeaf(node)
	case *LikeExpr:
		if node.Neg || neg {
			return nil, errAt(node.Pos, "NOT LIKE is not supported")
		}
		return s.likeLeaf(node)
	}
	return nil, errAt(e.pos(), "unsupported expression")
}

// cmpLeaf lowers one comparison to predicate leaves. The native leaves
// are >= (AtLeast), < (LessThan) and = (Equals); the other operators
// compose them:
//
//	>   ⇒ AtLeast AND NOT Equals
//	<=  ⇒ LessThan OR Equals
//	!=  ⇒ LessThan OR (AtLeast AND NOT Equals)
func (s *Statement) cmpLeaf(node *CmpExpr, op string) (table.Predicate, error) {
	ops, err := s.colOps(node.Col, node.ColPos)
	if err != nil {
		return nil, err
	}
	b, err := s.bound(ops, node.Val, false)
	if err != nil {
		return nil, err
	}
	col := node.Col
	switch op {
	case "=":
		return table.EqualsP(col, b), nil
	case "<":
		return table.LessThanP(col, b), nil
	case ">=":
		return table.AtLeastP(col, b), nil
	case ">":
		return table.AndNot(table.AtLeastP(col, b), table.EqualsP(col, b)), nil
	case "<=":
		return table.Or(table.LessThanP(col, b), table.EqualsP(col, b)), nil
	case "!=":
		return table.Or(
			table.LessThanP(col, b),
			table.AndNot(table.AtLeastP(col, b), table.EqualsP(col, b)),
		), nil
	}
	return nil, errAt(node.Pos, "unsupported operator %q", op)
}

// inLeaf lowers IN: a literal list becomes a translated-once In leaf, a
// $placeholder becomes an InP leaf binding the whole list per execution.
func (s *Statement) inLeaf(node *InExpr) (table.Predicate, error) {
	ops, err := s.colOps(node.Col, node.ColPos)
	if err != nil {
		return nil, err
	}
	if node.Param != "" {
		b := ops.param(node.Param)
		if err := s.noteParam(node.Param, ops, true, node.Pos); err != nil {
			return nil, err
		}
		return table.InP(node.Col, b), nil
	}
	for _, o := range node.Vals {
		if o.Kind == opParam {
			return nil, errAt(o.Pos, "IN lists mix no placeholders; bind the whole list with IN $%s", o.Str)
		}
	}
	return ops.inLits(node.Col, node.Vals)
}

// likeLeaf lowers LIKE: only literal prefix patterns 'abc%' (a single
// trailing '%', no '_' wildcards) are supported, mapping to the
// dictionary-range StrPrefix leaf.
func (s *Statement) likeLeaf(node *LikeExpr) (table.Predicate, error) {
	typ, err := s.tbl.ColumnType(node.Col)
	if err != nil {
		return nil, errAt(node.ColPos, "no column %q in table %q", node.Col, s.tbl.Name())
	}
	if typ != "string" {
		return nil, errAt(node.Pos, "LIKE needs a string column; %q is %s", node.Col, typ)
	}
	pat := node.Pattern
	if !strings.HasSuffix(pat, "%") {
		return nil, errAt(node.Pos, "only prefix patterns are supported: LIKE 'abc%%'")
	}
	prefix := pat[:len(pat)-1]
	if strings.ContainsAny(prefix, "%_") {
		return nil, errAt(node.Pos, "only a single trailing %% wildcard is supported")
	}
	return table.StrPrefix(node.Col, prefix), nil
}

// bound turns one operand into a typed table.Bound for the column.
func (s *Statement) bound(ops *typeOps, o Operand, list bool) (table.Bound, error) {
	if o.Kind == opParam {
		if err := s.noteParam(o.Str, ops, list, o.Pos); err != nil {
			return table.Bound{}, err
		}
		return ops.param(o.Str), nil
	}
	return ops.lit(o)
}

// noteParam records a placeholder's required type, rejecting one name
// used at conflicting types or positions.
func (s *Statement) noteParam(name string, ops *typeOps, list bool, pos int) error {
	want := &paramConv{typ: ops.typ, list: list}
	if list {
		want.conv = ops.convList
	} else {
		want.conv = ops.conv
	}
	if have, dup := s.params[name]; dup {
		if have.typ != want.typ || have.list != want.list {
			return errAt(pos, "placeholder $%s used as both %s and %s", name, have.want(), want.want())
		}
		return nil
	}
	s.params[name] = want
	return nil
}

// colOps resolves a column to its type-specific operand handling.
func (s *Statement) colOps(col string, pos int) (*typeOps, error) {
	typ, err := s.tbl.ColumnType(col)
	if err != nil {
		return nil, errAt(pos, "no column %q in table %q", col, s.tbl.Name())
	}
	ops, ok := opsByType[typ]
	if !ok {
		return nil, errAt(pos, "column %q has unsupported type %s", col, typ)
	}
	return ops, nil
}

// ---- typed operand handling ----

// typeOps adapts one column value type: literal operands to Bounds,
// placeholder Bounds, literal IN lists, and bind-value conversion.
type typeOps struct {
	typ      string
	lit      func(o Operand) (table.Bound, error)
	param    func(name string) table.Bound
	inLits   func(col string, os []Operand) (table.Predicate, error)
	conv     func(v any) (any, error) // raw bind value -> scalar
	convList func(v any) (any, error) // raw bind value -> slice
}

var opsByType = map[string]*typeOps{
	"int8": numOps[int8](), "int16": numOps[int16](), "int32": numOps[int32](), "int64": numOps[int64](),
	"uint8": numOps[uint8](), "uint16": numOps[uint16](), "uint32": numOps[uint32](), "uint64": numOps[uint64](),
	"float32": numOps[float32](), "float64": numOps[float64](),
	"string": strOps(),
}

// numOps builds the adapter for a numeric column type, with exact
// range checks when narrowing literals and bind values.
func numOps[V coltype.Value]() *typeOps {
	typ := coltype.TypeName[V]()
	isFloat := coltype.IsFloat[V]()
	var zero V
	unsigned := zero-1 > zero
	fit := func(o Operand) (V, error) {
		switch o.Kind {
		case opInt:
			if unsigned && o.Int < 0 {
				return zero, errAt(o.Pos, "value %d out of range for %s column", o.Int, typ)
			}
			v := V(o.Int)
			if !isFloat && int64(v) != o.Int {
				return zero, errAt(o.Pos, "value %d out of range for %s column", o.Int, typ)
			}
			return v, nil
		case opFloat:
			if !isFloat {
				return zero, errAt(o.Pos, "float literal %v on %s column", o.Flt, typ)
			}
			return V(o.Flt), nil
		case opString:
			return zero, errAt(o.Pos, "string literal on %s column", typ)
		}
		return zero, errAt(o.Pos, "internal: unexpected operand")
	}
	convScalar := func(x any) (any, error) {
		switch v := x.(type) {
		case V:
			return v, nil
		case json.Number:
			if isFloat {
				f, err := v.Float64()
				if err != nil {
					return nil, fmt.Errorf("wants %s, got %q", typ, v.String())
				}
				return V(f), nil
			}
			i, err := v.Int64()
			if err != nil {
				return nil, fmt.Errorf("wants %s, got %q", typ, v.String())
			}
			return fitInt[V](i, typ, unsigned)
		case int64:
			if isFloat {
				return V(v), nil
			}
			return fitInt[V](v, typ, unsigned)
		case int:
			if isFloat {
				return V(v), nil
			}
			return fitInt[V](int64(v), typ, unsigned)
		case float64:
			if isFloat {
				return V(v), nil
			}
			return nil, fmt.Errorf("wants %s, got float %v", typ, v)
		}
		return nil, fmt.Errorf("wants %s, got %T", typ, x)
	}
	return &typeOps{
		typ: typ,
		lit: func(o Operand) (table.Bound, error) {
			v, err := fit(o)
			if err != nil {
				return table.Bound{}, err
			}
			return table.Val(v), nil
		},
		param: func(name string) table.Bound { return table.Param[V](name) },
		inLits: func(col string, os []Operand) (table.Predicate, error) {
			vals := make([]V, len(os))
			for i, o := range os {
				v, err := fit(o)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			return table.In(col, vals...), nil
		},
		conv: convScalar,
		convList: func(x any) (any, error) {
			switch v := x.(type) {
			case []V:
				return v, nil
			case []any:
				out := make([]V, len(v))
				for i, e := range v {
					c, err := convScalar(e)
					if err != nil {
						return nil, fmt.Errorf("element %d: %w", i, err)
					}
					out[i] = c.(V)
				}
				return out, nil
			}
			return nil, fmt.Errorf("wants a []%s list, got %T", typ, x)
		},
	}
}

// strOps builds the adapter for string columns.
func strOps() *typeOps {
	convScalar := func(x any) (any, error) {
		if v, ok := x.(string); ok {
			return v, nil
		}
		return nil, fmt.Errorf("wants string, got %T", x)
	}
	return &typeOps{
		typ: "string",
		lit: func(o Operand) (table.Bound, error) {
			if o.Kind != opString {
				return table.Bound{}, errAt(o.Pos, "numeric literal on string column")
			}
			return table.StrVal(o.Str), nil
		},
		param: table.StrParam,
		inLits: func(col string, os []Operand) (table.Predicate, error) {
			vals := make([]string, len(os))
			for i, o := range os {
				if o.Kind != opString {
					return nil, errAt(o.Pos, "numeric literal on string column")
				}
				vals[i] = o.Str
			}
			return table.StrIn(col, vals...), nil
		},
		conv: convScalar,
		convList: func(x any) (any, error) {
			switch v := x.(type) {
			case []string:
				return v, nil
			case []any:
				out := make([]string, len(v))
				for i, e := range v {
					c, err := convScalar(e)
					if err != nil {
						return nil, fmt.Errorf("element %d: %w", i, err)
					}
					out[i] = c.(string)
				}
				return out, nil
			}
			return nil, fmt.Errorf("wants a []string list, got %T", x)
		},
	}
}

// fitInt narrows an int64 bind value into V with an exact range check.
func fitInt[V coltype.Value](i int64, typ string, unsigned bool) (any, error) {
	if unsigned && i < 0 {
		return nil, fmt.Errorf("value %d out of range for %s", i, typ)
	}
	v := V(i)
	if int64(v) != i {
		return nil, fmt.Errorf("value %d out of range for %s", i, typ)
	}
	return v, nil
}
