package sql

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParse drives arbitrary input through the lexer and parser: they
// must never panic, and every rejection must be a positioned
// *ParseError anchored inside (or one past) the input. Accepted inputs
// must re-parse after normalization — Normalize is meaning-preserving.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select * from orders",
		"SELECT qty, price FROM orders WHERE qty >= 10 AND city = 'Oslo'",
		"select count(*), sum(qty), avg(price) from orders where pri in (1, 2, 3)",
		"select city, count(*) from orders where qty < 500 group by city",
		"select qty from orders where not (qty < 5 or qty >= 100) order by qty desc limit 10",
		"select * from orders where city like 'Ber%' and price <= 99.5",
		"select * from orders where qty = $lo and city in $cities",
		"select * from orders where qty != -3 or price > 1e2",
		"select * from orders where city = 'O''Hare'",
		"select",
		"select * from orders where",
		"select * from orders where qty = 'unterminated",
		"select min(*) from orders",
		"select * from orders where qty ~ 5",
		"limit select from where $ ''",
		"select * from orders where qty = 99999999999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q): non-ParseError %v", src, err)
			}
			if pe.Pos < 1 || pe.Pos > len(src)+1 {
				t.Fatalf("Parse(%q): position %d outside input (len %d)", src, pe.Pos, len(src))
			}
			if !strings.Contains(err.Error(), "position") {
				t.Fatalf("Parse(%q): error %q does not name a position", src, err)
			}
			return
		}
		if st == nil {
			t.Fatalf("Parse(%q): nil statement without error", src)
		}
		// Normalization of an accepted statement must itself parse.
		norm := Normalize(src)
		if _, err := Parse(norm); err != nil {
			t.Fatalf("Parse(%q) ok but normalized %q fails: %v", src, norm, err)
		}
		// And normalization must be idempotent (a stable cache key).
		if again := Normalize(norm); again != norm {
			t.Fatalf("Normalize not idempotent: %q -> %q -> %q", src, norm, again)
		}
	})
}
