package harness

import (
	"strings"
	"testing"

	"repro/internal/column"
)

func testCfg() Config {
	return Config{Scale: 0.02, Seed: 5, QueriesPerSelectivity: 1}
}

func TestMeasureColumnBasics(t *testing.T) {
	c := column.New("t.x", []int64{5, 9, 1, 7, 3, 8, 2, 6, 4, 0, 11, 12})
	run := MeasureColumn("Test", c, testCfg(), true, 4)
	if run.Dataset != "Test" || run.Column != "t.x" {
		t.Errorf("identity wrong: %+v", run)
	}
	if run.WidthBytes != 8 || run.Rows != 12 || run.ColBytes != 96 {
		t.Errorf("geometry wrong: %+v", run)
	}
	if run.Imprints.SizeBytes <= 0 || run.Zonemap.SizeBytes <= 0 || run.WAH.SizeBytes <= 0 {
		t.Error("index sizes missing")
	}
	if run.Entropy < 0 || run.Entropy > 1 {
		t.Errorf("entropy %v", run.Entropy)
	}
	if len(run.Queries) != 10 { // 10 selectivities x 1 query
		t.Errorf("got %d query measurements", len(run.Queries))
	}
	if run.FingerprintHead == "" {
		t.Error("fingerprint missing")
	}
	for _, q := range run.Queries {
		if q.Selectivity < 0 || q.Selectivity > 1 {
			t.Errorf("selectivity %v", q.Selectivity)
		}
	}
}

func TestMeasureAllCoversDatasets(t *testing.T) {
	runs := MeasureAll(testCfg(), false)
	ds := map[string]int{}
	for _, r := range runs {
		ds[r.Dataset]++
	}
	for _, want := range []string{"Routing", "SDSS", "Cnet", "Airtraffic", "TPC-H"} {
		if ds[want] == 0 {
			t.Errorf("no runs for %s", want)
		}
	}
}

func TestMaxColumnsPerDataset(t *testing.T) {
	cfg := testCfg()
	cfg.MaxColumnsPerDataset = 2
	runs := MeasureAll(cfg, false)
	ds := map[string]int{}
	for _, r := range runs {
		ds[r.Dataset]++
	}
	for name, n := range ds {
		if n > 2 {
			t.Errorf("%s measured %d columns, cap was 2", name, n)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", testCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	cfg := testCfg()
	cfg.MaxColumnsPerDataset = 3
	for _, id := range IDs() {
		exp, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if exp.ID != id {
			t.Errorf("%s: ID = %q", id, exp.ID)
		}
		if exp.Title == "" || len(exp.Text) == 0 {
			t.Errorf("%s: empty output", id)
		}
		if strings.Count(exp.Text, "\n") < 2 {
			t.Errorf("%s: suspiciously short output:\n%s", id, exp.Text)
		}
		// Structured rows are populated and rectangular.
		if len(exp.Header) == 0 || len(exp.Rows) == 0 {
			t.Errorf("%s: no structured rows", id)
			continue
		}
		for i, row := range exp.Rows {
			if len(row) != len(exp.Header) {
				t.Errorf("%s: row %d has %d cells, header has %d",
					id, i, len(row), len(exp.Header))
			}
		}
	}
}

func TestTable1MentionsAllDatasetsAndPaperStats(t *testing.T) {
	exp := Table1(testCfg())
	for _, want := range []string{"Routing", "SDSS", "Cnet", "Airtraffic", "TPC-H",
		"5.4G", "240M", "4008", "168G"} {
		if !strings.Contains(exp.Text, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, exp.Text)
		}
	}
}

func TestFig3ShowsFingerprints(t *testing.T) {
	exp := Fig3(testCfg())
	if !strings.Contains(exp.Text, "E = ") {
		t.Error("Figure 3 missing entropy values")
	}
	if !strings.Contains(exp.Text, "x") || !strings.Contains(exp.Text, ".") {
		t.Error("Figure 3 missing imprint prints")
	}
	for _, col := range []string{"trips.lat", "photoprofile.profmean",
		"ontime.AirlineID", "cnet.attr18", "part.p_retailprice"} {
		if !strings.Contains(exp.Text, col) {
			t.Errorf("Figure 3 missing representative column %s", col)
		}
	}
}

func TestFig4CumulativeMonotone(t *testing.T) {
	runs := MeasureAll(testCfg(), false)
	exp := Fig4(runs)
	lines := strings.Split(strings.TrimSpace(exp.Text), "\n")
	prev := -1
	for _, ln := range lines[1:] {
		fields := strings.Fields(ln)
		if len(fields) != 2 {
			continue
		}
		var n int
		if _, err := fmtSscan(fields[1], &n); err != nil {
			t.Fatalf("bad line %q", ln)
		}
		if n < prev {
			t.Fatalf("CDF not monotone at %q", ln)
		}
		prev = n
	}
	// The last threshold (1.0) must count every column.
	var total int
	if _, err := fmtSscan(strings.Fields(lines[len(lines)-1])[1], &total); err != nil {
		t.Fatal(err)
	}
	if total != len(runs) {
		t.Errorf("CDF totals %d, runs %d", total, len(runs))
	}
}

func TestFig7ImprintsRobustToEntropy(t *testing.T) {
	// The paper's headline size result at our scale: averaged over
	// high-entropy columns, imprints overhead stays far below WAH
	// overhead.
	cfg := Config{Scale: 0.1, Seed: 5}
	runs := MeasureAll(cfg, false)
	var impHi, wahHi, nHi float64
	for _, r := range runs {
		if r.Entropy >= 0.5 {
			impHi += pct(r.Imprints.SizeBytes, r.ColBytes)
			wahHi += pct(r.WAH.SizeBytes, r.ColBytes)
			nHi++
		}
	}
	if nHi == 0 {
		t.Fatal("no high-entropy columns measured")
	}
	impHi /= nHi
	wahHi /= nHi
	if impHi >= wahHi {
		t.Errorf("high-entropy: imprints %.1f%% not below WAH %.1f%%", impHi, wahHi)
	}
	if impHi > 25 {
		t.Errorf("high-entropy imprints overhead %.1f%% far above the paper's ~12%%", impHi)
	}
}

func TestFig8And10ShapesHold(t *testing.T) {
	// Shape assertions on the query experiments via the deterministic
	// work counters (wall clock at unit-test scale is noise; the paper
	// itself excludes columns below 1MB). On selective queries, the
	// imprint must do far fewer value comparisons than the scan's
	// one-per-row.
	cfg := Config{Scale: 0.08, Seed: 5, QueriesPerSelectivity: 2, MaxColumnsPerDataset: 3}
	runs := MeasureAll(cfg, true)
	qs := allQueries(runs)
	if len(qs) == 0 {
		t.Fatal("no queries measured")
	}
	var impLessWork, total int
	for _, q := range qs {
		if q.Selectivity <= 0.2 {
			total++
			if q.ImpComparisons+q.ImpProbes < uint64(q.Rows) {
				impLessWork++
			}
		}
	}
	if total == 0 {
		t.Fatal("no selective queries measured")
	}
	if float64(impLessWork)/float64(total) < 0.8 {
		t.Errorf("imprints did less work than scan on only %d/%d selective queries",
			impLessWork, total)
	}
}

func TestImprintsBeatScanWallClockOnLargeColumn(t *testing.T) {
	// One paper-scale column (8MB) where the wall-clock margin is far
	// beyond timer noise: a clustered int64 column with a ~1% query.
	if testing.Short() {
		t.Skip("large column test")
	}
	n := 1_000_000
	col := make([]int64, n)
	v := int64(1 << 30)
	seed := uint64(12345)
	for i := range col {
		// xorshift-style cheap deterministic walk
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		v += int64(seed%2001) - 1000
		col[i] = v
	}
	run := MeasureColumn("big", column.New("big.walk", col), Config{Seed: 1, QueriesPerSelectivity: 2}, true, 0)
	var impWins, total int
	for _, q := range run.Queries {
		if q.Selectivity <= 0.15 {
			total++
			if q.ImpNs < q.ScanNs {
				impWins++
			}
		}
	}
	if total == 0 {
		t.Fatal("no selective queries")
	}
	// Require a clear majority rather than a clean sweep: other test
	// packages may be running on the same cores and perturb individual
	// timings.
	if impWins*4 < total*3 {
		t.Errorf("imprints beat scan on only %d/%d selective queries over an 8MB column", impWins, total)
	}
}

func TestFig11ProbeRelations(t *testing.T) {
	// Zonemap probes are exactly one per zone; imprint probes never
	// exceed zonemap probes (compression can only reduce them); WAH
	// probes are the largest of all, per the paper.
	cfg := Config{Scale: 0.05, Seed: 5, QueriesPerSelectivity: 2, MaxColumnsPerDataset: 3}
	runs := MeasureAll(cfg, true)
	for _, r := range runs {
		for _, q := range r.Queries {
			if q.ImpProbes > q.ZmProbes+1 {
				t.Errorf("%s.%s: imprint probes %d exceed zonemap probes %d",
					r.Dataset, r.Column, q.ImpProbes, q.ZmProbes)
			}
		}
	}
}

// fmtSscan is a tiny wrapper so the test file does not import fmt for a
// single call site.
func fmtSscan(s string, v *int) (int, error) {
	n := 0
	neg := false
	for i, c := range s {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	*v = n
	return 1, nil
}

var errBadInt = errInvalid{}

type errInvalid struct{}

func (errInvalid) Error() string { return "invalid integer" }
