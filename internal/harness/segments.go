package harness

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	tbl "repro/table"
)

// SegmentsExp measures the segmented-storage execution path: a
// multi-segment table (default 64K-row segments) queried at increasing
// SelectOptions.Parallelism. Two workloads bracket the design space:
//
//   - "price band count": an unclustered ~25%-selective range whose
//     cost is residual checks — the work the worker pool actually
//     spreads across segments (wall-clock speedup with cores).
//   - "qty band ids": a narrow band over a clustered walk column, where
//     per-segment min/max summaries prune most segments before any
//     probe (reported as pruned/total).
//
// Reported per workload and parallelism level: executions, total and
// per-execution wall time, speedup vs parallelism 1, matched row count,
// and segments pruned. Results are identical across parallelism levels
// by construction (in-order merge); the harness asserts it.
func SegmentsExp(cfg Config) *Experiment {
	n := int(600_000 * cfg.Scale)
	if n < 200_000 {
		n = 200_000
	}
	execs := 30
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5e61))
	qty := make([]int64, n)
	price := make([]float64, n)
	v := int64(100_000)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		qty[i] = v
		price[i] = rng.Float64() * 1000
	}
	t := tbl.New("segorders")
	must(tbl.AddColumn(t, "qty", qty, tbl.Imprints, core.Options{Seed: cfg.Seed}))
	must(tbl.AddColumn(t, "price", price, tbl.Imprints, core.Options{Seed: cfg.Seed + 1}))

	type workload struct {
		name string
		pred tbl.Predicate
		ids  bool // IDs when set, Count otherwise
	}
	workloads := []workload{
		{"price band count", tbl.Range[float64]("price", 250, 500), false},
		{"price band ids", tbl.Range[float64]("price", 250, 500), true},
		{"qty band ids (pruned)", tbl.Range[int64]("qty", v-400, v-100), true},
	}

	header := []string{"workload", "segments", "pruned", "parallelism", "execs",
		"total", "ms/exec", "speedup", "rows"}
	var rows [][]string
	for _, w := range workloads {
		plan, err := t.Select().Where(w.pred).Explain()
		must(err)
		var base time.Duration
		for _, par := range []int{1, 2, 4, 8} {
			opts := tbl.SelectOptions{Parallelism: par}
			q := t.Select().Where(w.pred).Options(opts)
			var matched uint64
			start := time.Now()
			for e := 0; e < execs; e++ {
				if w.ids {
					ids, _, err := q.IDs()
					must(err)
					matched = uint64(len(ids))
				} else {
					c, _, err := q.Count()
					must(err)
					matched = c
				}
			}
			elapsed := time.Since(start)
			if par == 1 {
				base = elapsed
			}
			rows = append(rows, []string{
				w.name,
				d(plan.Segments), d(plan.SegmentsPruned), d(par), d(execs),
				elapsed.Round(time.Millisecond).String(),
				f2(float64(elapsed.Microseconds()) / float64(execs) / 1000),
				f2(float64(base.Nanoseconds()) / float64(elapsed.Nanoseconds())),
				d(int(matched)),
			})
		}
		// Cross-check determinism across parallelism levels once per
		// workload.
		a, _, err := t.Select().Where(w.pred).Options(tbl.SelectOptions{Parallelism: 1}).IDs()
		must(err)
		b, _, err := t.Select().Where(w.pred).Options(tbl.SelectOptions{Parallelism: 8}).IDs()
		must(err)
		if len(a) != len(b) {
			panic(fmt.Sprintf("segments experiment: parallelism changed results (%d vs %d ids)", len(a), len(b)))
		}
		for i := range a {
			if a[i] != b[i] {
				panic("segments experiment: parallelism changed result order")
			}
		}
	}
	return tabular("segments",
		"Segmented storage: parallel segment fan-out and summary pruning",
		header, rows)
}
