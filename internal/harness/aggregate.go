package harness

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	tbl "repro/table"
)

// AggregateExp measures the segment-parallel aggregation pipeline: the
// same multi-segment table as the segments experiment, aggregated at
// increasing SelectOptions.Parallelism, with the pushdown hit-rates of
// each tier reported per workload:
//
//   - "agg all rows": no predicate — Min/Max/count(*) answer straight
//     from segment summaries (summary%), Sum folds exact runs
//     wholesale (wholesale%); nothing is scanned.
//   - "agg price band": an unclustered ~25%-selective range — inexact
//     candidate runs force the row-by-row scan tier.
//   - "agg qty band (pruned)": a narrow band over a clustered walk —
//     per-segment summaries prune most segments before any probe.
//   - "group city" / "topk price": grouped aggregation over the
//     dictionary-encoded city column and a bounded top-k by price.
//
// summary%/wholesale%/scanned% are fractions of per-aggregate row
// contributions (QueryStats.SummaryAggRows and friends) over rows ×
// aggregates. Results are identical across parallelism levels by
// construction; the harness asserts it.
func AggregateExp(cfg Config) *Experiment {
	n := int(600_000 * cfg.Scale)
	if n < 200_000 {
		n = 200_000
	}
	execs := 30
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xa66))
	qty := make([]int64, n)
	price := make([]float64, n)
	city := make([]string, n)
	cities := []string{"Amsterdam", "Berlin", "Cairo", "Delft", "Essen", "Faro", "Ghent", "Haarlem"}
	v := int64(100_000)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		qty[i] = v
		price[i] = rng.Float64() * 1000
		city[i] = cities[(i/512+rng.IntN(2))%len(cities)]
	}
	t := tbl.New("aggorders")
	must(tbl.AddColumn(t, "qty", qty, tbl.Imprints, core.Options{Seed: cfg.Seed}))
	must(tbl.AddColumn(t, "price", price, tbl.Imprints, core.Options{Seed: cfg.Seed + 1}))
	must(t.AddStringColumn("city", city, tbl.Imprints, core.Options{Seed: cfg.Seed + 2}))

	specs := []tbl.AggSpec{tbl.Sum("price"), tbl.Min("qty"), tbl.Max("qty"), tbl.CountAll()}
	type workload struct {
		name string
		pred tbl.Predicate
		kind string // "agg", "group", "topk"
	}
	workloads := []workload{
		{"agg all rows", nil, "agg"},
		{"agg price band", tbl.Range[float64]("price", 250, 500), "agg"},
		{"agg qty band (pruned)", tbl.Range[int64]("qty", v-400, v-100), "agg"},
		{"group city", nil, "group"},
		{"topk price k=10", tbl.Range[float64]("price", 250, 500), "topk"},
	}

	header := []string{"workload", "segments", "parallelism", "execs",
		"total", "ms/exec", "speedup", "rows", "summary%", "wholesale%", "scanned%"}
	var rows [][]string
	for _, w := range workloads {
		var base time.Duration
		for _, par := range []int{1, 2, 4, 8} {
			opts := tbl.SelectOptions{Parallelism: par}
			var matched uint64
			var st core.QueryStats
			start := time.Now()
			for e := 0; e < execs; e++ {
				q := t.Select().Where(w.pred).Options(opts)
				switch w.kind {
				case "agg":
					res, s, err := q.Aggregate(specs...)
					must(err)
					matched, st = res.Rows, s
				case "group":
					res, s, err := q.GroupBy("city").Aggregate(specs...)
					must(err)
					matched, st = uint64(len(res.Groups)), s
				case "topk":
					ids, s, err := q.OrderBy(tbl.Desc("price")).Limit(10).IDs()
					must(err)
					matched, st = uint64(len(ids)), s
				}
			}
			elapsed := time.Since(start)
			if par == 1 {
				base = elapsed
			}
			// Tier fractions over the per-aggregate contributions of the
			// qualifying rows (segments pruned outright contribute
			// nothing to any tier).
			sumPct, wholePct, scanPct := 0.0, 0.0, 0.0
			if w.kind == "agg" && matched > 0 {
				denom := float64(matched * uint64(len(specs)))
				sumPct = 100 * float64(st.SummaryAggRows) / denom
				wholePct = 100 * float64(st.WholesaleAggRows) / denom
				scanPct = 100 - sumPct - wholePct
			}
			rows = append(rows, []string{
				w.name,
				d(t.Segments()), d(par), d(execs),
				elapsed.Round(time.Millisecond).String(),
				f2(float64(elapsed.Microseconds()) / float64(execs) / 1000),
				f2(float64(base.Nanoseconds()) / float64(elapsed.Nanoseconds())),
				d(int(matched)),
				f1(sumPct),
				f1(wholePct),
				f1(scanPct),
			})
		}
		assertAggDeterminism(t, w.pred, w.kind, specs)
	}
	return tabular("aggregate",
		"Segment-parallel aggregation: pushdown tiers and parallelism sweep",
		header, rows)
}

// assertAggDeterminism cross-checks that parallelism 1 and 8 produce
// identical results for one workload.
func assertAggDeterminism(t *tbl.Table, pred tbl.Predicate, kind string, specs []tbl.AggSpec) {
	o1 := tbl.SelectOptions{Parallelism: 1}
	o8 := tbl.SelectOptions{Parallelism: 8}
	switch kind {
	case "agg":
		a, _, err := t.Select().Where(pred).Options(o1).Aggregate(specs...)
		must(err)
		b, _, err := t.Select().Where(pred).Options(o8).Aggregate(specs...)
		must(err)
		if a.String() != b.String() {
			panic(fmt.Sprintf("aggregate experiment: parallelism changed aggregates (%s vs %s)", a, b))
		}
	case "group":
		a, _, err := t.Select().Where(pred).Options(o1).GroupBy("city").Aggregate(specs...)
		must(err)
		b, _, err := t.Select().Where(pred).Options(o8).GroupBy("city").Aggregate(specs...)
		must(err)
		if fmt.Sprint(a.Groups) != fmt.Sprint(b.Groups) {
			panic("aggregate experiment: parallelism changed groups")
		}
	case "topk":
		a, _, err := t.Select().Where(pred).Options(o1).OrderBy(tbl.Desc("price")).Limit(10).IDs()
		must(err)
		b, _, err := t.Select().Where(pred).Options(o8).OrderBy(tbl.Desc("price")).Limit(10).IDs()
		must(err)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			panic("aggregate experiment: parallelism changed top-k")
		}
	}
}
