package harness

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	tbl "repro/table"
)

// PreparedExp measures what the compile-once Prepare API amortizes in a
// serving loop: the same parameterized predicate executed N times with
// fresh bindings, once through ad-hoc planning (the predicate tree is
// rebuilt and every leaf re-translated per request) and once through a
// prepared statement (leaves translated at Prepare; only placeholder
// leaves re-translate per execution). Reported per predicate shape:
// total and per-execution time for both paths and the speedup factor.
func PreparedExp(cfg Config) *Experiment {
	n := int(200_000 * cfg.Scale)
	if n < 4096 {
		n = 4096
	}
	execs := 2000
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x98e4))
	qty := make([]int64, n)
	price := make([]float64, n)
	city := make([]string, n)
	vocab := []string{
		"amsterdam", "antwerp", "athens", "berlin", "bern", "lisbon",
		"london", "lyon", "madrid", "milan", "paris", "porto", "prague",
	}
	v := int64(10_000)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		qty[i] = v
		price[i] = rng.Float64() * 1000
		city[i] = vocab[(i/199+rng.IntN(2))%len(vocab)]
	}
	t := tbl.New("orders")
	must(tbl.AddColumn(t, "qty", qty, tbl.Imprints, core.Options{Seed: cfg.Seed}))
	must(tbl.AddColumn(t, "price", price, tbl.Imprints, core.Options{Seed: cfg.Seed + 1}))
	must(t.AddStringColumn("city", city, tbl.Imprints, core.Options{Seed: cfg.Seed + 2}))

	shapes := []struct {
		name  string
		par   tbl.Predicate
		adhoc func(i int) tbl.Predicate
		binds func(q *tbl.Query, i int) *tbl.Query
	}{
		{
			name: "qty band",
			par:  tbl.RangeP("qty", tbl.Param[int64]("lo"), tbl.Param[int64]("hi")),
			adhoc: func(i int) tbl.Predicate {
				lo := v - 500 + int64(i%1000)
				return tbl.Range[int64]("qty", lo, lo+100)
			},
			binds: func(q *tbl.Query, i int) *tbl.Query {
				lo := v - 500 + int64(i%1000)
				return q.Bind("lo", lo).Bind("hi", lo+100)
			},
		},
		{
			name: "band and city",
			par: tbl.And(
				tbl.RangeP("qty", tbl.Param[int64]("lo"), tbl.Param[int64]("hi")),
				tbl.EqualsP("city", tbl.StrParam("city")),
				tbl.LessThan[float64]("price", 800), // static leaf: compiled once
			),
			adhoc: func(i int) tbl.Predicate {
				lo := v - 500 + int64(i%1000)
				return tbl.And(
					tbl.Range[int64]("qty", lo, lo+200),
					tbl.StrEquals("city", vocab[i%len(vocab)]),
					tbl.LessThan[float64]("price", 800),
				)
			},
			binds: func(q *tbl.Query, i int) *tbl.Query {
				lo := v - 500 + int64(i%1000)
				return q.Bind("lo", lo).Bind("hi", lo+200).Bind("city", vocab[i%len(vocab)])
			},
		},
	}

	// A serving shape with a heavy fixed IN-list: ad-hoc planning
	// re-types the 512 values and rebuilds the membership map on every
	// request, while Prepare translates the static leaf once and only
	// the two band placeholders per execution.
	inList := make([]int64, 512)
	for i := range inList {
		inList[i] = v - 256 + int64(i)
	}
	shapes = append(shapes, struct {
		name  string
		par   tbl.Predicate
		adhoc func(i int) tbl.Predicate
		binds func(q *tbl.Query, i int) *tbl.Query
	}{
		name: "wide IN and band",
		par: tbl.And(
			tbl.In("qty", inList...),
			tbl.RangeP("price", tbl.Param[float64]("lo"), tbl.Param[float64]("hi")),
		),
		adhoc: func(i int) tbl.Predicate {
			lo := float64(i % 900)
			return tbl.And(
				tbl.In("qty", inList...),
				tbl.Range[float64]("price", lo, lo+100),
			)
		},
		binds: func(q *tbl.Query, i int) *tbl.Query {
			lo := float64(i % 900)
			return q.Bind("lo", lo).Bind("hi", lo+100)
		},
	})

	header := []string{"predicate", "execs", "adhoc total", "prepared total",
		"adhoc µs/exec", "prepared µs/exec", "speedup"}
	var rows [][]string
	for _, s := range shapes {
		start := time.Now()
		var nAdhoc uint64
		for i := 0; i < execs; i++ {
			c, _, err := t.Select().Where(s.adhoc(i)).Count()
			must(err)
			nAdhoc += c
		}
		adhoc := time.Since(start)

		p, err := t.Prepare(s.par, tbl.SelectOptions{})
		must(err)
		start = time.Now()
		var nPrep uint64
		for i := 0; i < execs; i++ {
			c, _, err := s.binds(p.Exec(), i).Count()
			must(err)
			nPrep += c
		}
		prep := time.Since(start)
		if nAdhoc != nPrep {
			panic(fmt.Sprintf("prepared experiment: adhoc counted %d rows, prepared %d", nAdhoc, nPrep))
		}

		rows = append(rows, []string{
			s.name, d(execs),
			adhoc.Round(time.Millisecond).String(), prep.Round(time.Millisecond).String(),
			f1(float64(adhoc.Microseconds()) / float64(execs)),
			f1(float64(prep.Microseconds()) / float64(execs)),
			f2(float64(adhoc.Nanoseconds()) / float64(prep.Nanoseconds())),
		})
	}
	return tabular("prepared", "Prepared statements: amortized prepare-once/execute-N vs plan-per-query", header, rows)
}
