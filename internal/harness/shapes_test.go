package harness

// Shape regression tests: the qualitative findings of the paper's
// figures, asserted against the structured experiment rows so a future
// code change that silently breaks a reproduced result fails CI.

import (
	"strconv"
	"testing"
)

func shapeCfg() Config { return Config{Scale: 0.1, Seed: 42} }

func cell(t *testing.T, row []string, header []string, name string) float64 {
	t.Helper()
	for i, h := range header {
		if h == name {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				t.Fatalf("cell %s = %q: %v", name, row[i], err)
			}
			return v
		}
	}
	t.Fatalf("no column %q in %v", name, header)
	return 0
}

// Figure 6's headline: imprints total overhead stays in the "few
// percent" regime for every dataset, never above the ~12.5% ceiling
// plus dictionary slack.
func TestShapeFig6ImprintsCeiling(t *testing.T) {
	exp := Fig6(MeasureAll(shapeCfg(), false))
	totals := 0
	for _, row := range exp.Rows {
		if row[1] != "(total)" {
			continue
		}
		totals++
		imp := cell(t, row, exp.Header, "imprints%")
		if imp > 14 {
			t.Errorf("%s: imprints overhead %.1f%% above ceiling", row[0], imp)
		}
		zm := cell(t, row, exp.Header, "zonemap%")
		if imp > zm+1 {
			t.Errorf("%s: imprints %.1f%% above zonemap %.1f%%", row[0], imp, zm)
		}
	}
	if totals != 5 {
		t.Fatalf("expected 5 dataset totals, saw %d", totals)
	}
}

// Figure 7's headline: on high-entropy columns WAH deteriorates far
// beyond imprints, which stay flat.
func TestShapeFig7Robustness(t *testing.T) {
	exp := Fig7(MeasureAll(shapeCfg(), false))
	var hi int
	for _, row := range exp.Rows {
		e := cell(t, row, exp.Header, "entropy")
		imp := cell(t, row, exp.Header, "imprints%")
		if e < 0.6 {
			continue
		}
		hi++
		wah := cell(t, row, exp.Header, "wah%")
		if imp > 14 {
			t.Errorf("high-entropy %s: imprints %.1f%%", row[1], imp)
		}
		if wah < 2*imp {
			t.Errorf("high-entropy %s: WAH %.1f%% not well above imprints %.1f%%", row[1], wah, imp)
		}
	}
	if hi == 0 {
		t.Fatal("no high-entropy columns in sweep")
	}
}

// Figure 4's headline: the majority of columns are low-entropy but a
// meaningful high-entropy tail exists.
func TestShapeFig4Distribution(t *testing.T) {
	runs := MeasureAll(shapeCfg(), false)
	low, high := 0, 0
	for _, r := range runs {
		if r.Entropy <= 0.4 {
			low++
		}
		if r.Entropy >= 0.6 {
			high++
		}
	}
	if low <= len(runs)/2 {
		t.Errorf("only %d/%d columns low-entropy; paper: clear majority", low, len(runs))
	}
	if high == 0 {
		t.Error("no high-entropy tail; the robustness experiments need one")
	}
}

// Table 1 shape: five datasets with the paper's type mixes.
func TestShapeTable1(t *testing.T) {
	exp := Table1(shapeCfg())
	if len(exp.Rows) != 5 {
		t.Fatalf("Table 1 has %d rows", len(exp.Rows))
	}
}
