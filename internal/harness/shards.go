package harness

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	tbl "repro/table"
)

// ShardsExp measures the sharded-table write path: a writers × shards
// sweep (1/2/4/8 writers against 1/2/4/8 shards) where every writer
// commits pre-built append batches flat out — the loop body is the
// commit itself, so the measured rate is the commit path, not batch
// generation — while two concurrent readers run imprint-indexed band
// counts. Each commit routes to one shard and serializes only on that
// shard's delta lock, so on multi-core hosts the aggregate write rate
// scales with min(writers, shards, cores); per-shard background
// sealers drain each shard's delta independently. The experiment
// reports the aggregate write rate, reader p50/p99 latency observed
// during the write storm, and the seal lag (delta rows still buffered
// when the writers stop, worst shard in parentheses' place as its own
// column). The single-shard rows are the baseline the sharded rows are
// judged against.
func ShardsExp(cfg Config) *Experiment {
	n := int(100_000 * cfg.Scale)
	if n < 16_384 {
		n = 16_384
	}
	batchesPerWriter := int(400 * cfg.Scale)
	if batchesPerWriter < 40 {
		batchesPerWriter = 40
	}
	const batchRows = 1024
	cities := []string{
		"amsterdam", "athens", "berlin", "bern", "lisbon",
		"madrid", "oslo", "paris", "prague", "rome",
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x54a5))
	qty := make([]int64, n)
	city := make([]string, n)
	for i := 0; i < n; i++ {
		qty[i] = rng.Int64N(1_000_000)
		city[i] = cities[rng.IntN(len(cities))]
	}
	// One pre-built batch payload, committed over and over: the writers
	// measure the commit path alone.
	bq := make([]int64, batchRows)
	bc := make([]string, batchRows)
	for i := range bq {
		bq[i] = rng.Int64N(1_000_000)
		bc[i] = cities[rng.IntN(len(cities))]
	}

	header := []string{"shards", "writers", "write rows/s", "read p50 (us)",
		"read p99 (us)", "reads", "seal lag rows", "hottest shard"}
	var rows [][]string
	for _, shards := range []int{1, 2, 4, 8} {
		for _, writers := range []int{1, 2, 4, 8} {
			t := tbl.NewWithOptions("shards", tbl.TableOptions{SegmentRows: 8192, Shards: shards})
			must(tbl.AddColumn(t, "qty", qty, tbl.Imprints, core.Options{Seed: cfg.Seed}))
			must(t.AddStringColumn("city", city, tbl.Imprints, core.Options{Seed: cfg.Seed + 1}))
			must(t.EnableDeltaIngest(tbl.IngestOptions{AutoSeal: true, MaxSealSegments: 1}))

			var written atomic.Int64
			var wwg, rwg sync.WaitGroup
			stop := make(chan struct{})
			start := time.Now()
			for w := 0; w < writers; w++ {
				wwg.Add(1)
				go func() {
					defer wwg.Done()
					for i := 0; i < batchesPerWriter; i++ {
						b := t.NewBatch()
						must(tbl.Append(b, "qty", bq))
						must(b.AppendStrings("city", bc))
						must(b.Commit())
						written.Add(batchRows)
					}
				}()
			}
			// Two readers probe band counts for the whole write storm;
			// their latencies sample the read path under ingest pressure.
			lats := make([][]time.Duration, 2)
			for r := range lats {
				rwg.Add(1)
				go func(r int) {
					defer rwg.Done()
					prng := rand.New(rand.NewPCG(cfg.Seed, uint64(0x0dd+r)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						lo := prng.Int64N(950_000)
						q := t.Select().Where(tbl.Range[int64]("qty", lo, lo+25_000)).
							Options(tbl.SelectOptions{Parallelism: 1})
						qs := time.Now()
						_, _, err := q.Count()
						must(err)
						lats[r] = append(lats[r], time.Since(qs))
					}
				}(r)
			}
			wwg.Wait()
			elapsed := time.Since(start)
			close(stop)
			rwg.Wait()
			st := t.IngestStats()
			must(t.Close())

			var all []time.Duration
			for _, l := range lats {
				all = append(all, l...)
			}
			rows = append(rows, []string{
				d(shards), d(writers),
				fmt.Sprintf("%.0f", float64(written.Load())/elapsed.Seconds()),
				fmt.Sprint(percentile(all, 0.50).Microseconds()),
				fmt.Sprint(percentile(all, 0.99).Microseconds()),
				d(len(all)),
				d(st.DeltaRows),
				d(st.MaxShardDeltaRows()),
			})
		}
	}
	return tabular("shards",
		"Sharded ingest: aggregate write rate and read latency, writers x shards",
		header, rows)
}
