package harness

import (
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
	tbl "repro/table"
)

// IngestRecoverExp measures what crash safety costs and what recovery
// buys: the same paced commit workload runs once per WAL fsync policy
// (always, group, off), reporting achieved ingest throughput and
// per-commit latency — the price of the durability guarantee — and
// then reopens each log cold and replays it, reporting recovery time
// and replayed row throughput. The trade the table quantifies: fsync
// always pays one disk sync per commit for zero loss on kill -9,
// group amortizes syncs across concurrent commits into ~disk-sync
// latency per *window*, and off is the no-WAL upper bound that loses
// the unsynced tail. Imprint indexes are never logged; replay streams
// rows through the ordinary seal path and rebuilds them, so recovery
// speed is bounded by sequential log read + index rebuild, not by
// random index IO.
func IngestRecoverExp(cfg Config) *Experiment {
	n := int(50_000 * cfg.Scale)
	if n < 10_000 {
		n = 10_000
	}
	const batch = 500

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x4ec0))
	cities := []string{
		"amsterdam", "athens", "berlin", "bern", "lisbon",
		"madrid", "oslo", "paris", "prague", "rome",
	}
	qty := make([]int64, n)
	price := make([]float64, n)
	city := make([]string, n)
	for i := 0; i < n; i++ {
		qty[i] = rng.Int64N(1_000_000)
		price[i] = rng.Float64() * 1000
		city[i] = cities[rng.IntN(len(cities))]
	}

	mkEmpty := func() *tbl.Table {
		t := tbl.NewWithOptions("recover", tbl.TableOptions{SegmentRows: 8192})
		must(tbl.AddColumn(t, "qty", []int64{}, tbl.Imprints, core.Options{Seed: cfg.Seed}))
		must(tbl.AddColumn(t, "price", []float64{}, tbl.Imprints, core.Options{Seed: cfg.Seed + 1}))
		must(t.AddStringColumn("city", []string{}, tbl.Imprints, core.Options{Seed: cfg.Seed + 2}))
		must(t.EnableDeltaIngest(tbl.IngestOptions{AutoSeal: true, MaxSealSegments: 1}))
		return t
	}

	root, err := os.MkdirTemp("", "ingest-recover-")
	must(err)
	defer os.RemoveAll(root)

	header := []string{"fsync", "rows", "batches", "ingest rows/s",
		"commit p50 (us)", "commit p99 (us)", "replay ms", "replay rows/s", "rows recovered"}
	var rows [][]string
	for _, pc := range []struct {
		name   string
		policy wal.SyncPolicy
	}{
		{"always", wal.SyncAlways},
		{"group", wal.SyncGroup},
		{"off", wal.SyncOff},
	} {
		dir := root + "/" + pc.name

		// Ingest pass: commit n rows in fixed batches through the log.
		t := mkEmpty()
		_, err := t.EnableWAL(tbl.WALOptions{Dir: dir, Policy: pc.policy, GroupWindow: 2 * time.Millisecond})
		must(err)
		lat := make([]time.Duration, 0, n/batch)
		start := time.Now()
		for off := 0; off < n; off += batch {
			end := off + batch
			if end > n {
				end = n
			}
			b := t.NewBatch()
			must(tbl.Append(b, "qty", qty[off:end]))
			must(tbl.Append(b, "price", price[off:end]))
			must(b.AppendStrings("city", city[off:end]))
			c0 := time.Now()
			must(b.Commit())
			lat = append(lat, time.Since(c0))
		}
		elapsed := time.Since(start)
		// Close flushes the log tail (SyncOff included), so the replay
		// pass below measures full-log recovery for every policy.
		must(t.Close())

		// Recovery pass: cold reopen, replay, indexes rebuilt via seal.
		r := mkEmpty()
		r0 := time.Now()
		rep, err := r.EnableWAL(tbl.WALOptions{Dir: dir, Policy: pc.policy})
		must(err)
		replay := time.Since(r0)
		must(r.Close())

		replayRate := "-"
		if s := replay.Seconds(); s > 0 {
			replayRate = fmt.Sprintf("%.0f", float64(rep.RowsReplayed)/s)
		}
		rows = append(rows, []string{
			pc.name, d(n), d(len(lat)),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds()),
			fmt.Sprint(percentile(lat, 0.50).Microseconds()),
			fmt.Sprint(percentile(lat, 0.99).Microseconds()),
			fmt.Sprint(replay.Milliseconds()),
			replayRate,
			d(rep.RowsReplayed),
		})
	}
	return &Experiment{
		ID:     "ingest-recover",
		Title:  "Crash-safe ingest: WAL fsync policies and recovery replay",
		Header: header,
		Rows:   rows,
		Text:   renderRows(header, rows),
	}
}
