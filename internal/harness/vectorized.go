package harness

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	tbl "repro/table"
)

// VectorizedExp measures the block-at-a-time selection-mask executor
// against its scalar (row-at-a-time closure) baseline, the workload of
// the vectorization acceptance criterion:
//
//   - uniform random data (inexact-run heavy: almost every candidate
//     block needs residual evaluation, the worst case the kernels are
//     built for), swept across selectivities from 0.1% to 50% and
//     parallelism 1/2/8, for both IDs and Count;
//   - a clustered near-sorted workload whose candidate runs are mostly
//     exact (the count fast path), pinning that vectorization does not
//     regress exact-run-dominated executions.
//
// Reported per (workload, selectivity, op, parallelism): scalar and
// kernel ms/exec, the kernel speedup, matched rows, and the kernel
// blocks the vectorized run evaluated (QueryStats.BlocksVectorized).
// The harness asserts scalar and vectorized ids are identical before
// timing anything.
func VectorizedExp(cfg Config) *Experiment {
	n := int(600_000 * cfg.Scale)
	if n < 200_000 {
		n = 200_000
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5ec))
	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = rng.Int64N(1_000_000)
	}
	clustered := make([]int64, n)
	v := int64(0)
	for i := range clustered {
		v += int64(rng.IntN(5))
		clustered[i] = v
	}
	t := tbl.New("vectorized")
	must(tbl.AddColumn(t, "u", uniform, tbl.Imprints, core.Options{Seed: cfg.Seed}))
	must(tbl.AddColumn(t, "c", clustered, tbl.Imprints, core.Options{Seed: cfg.Seed + 1}))

	type workload struct {
		name string
		sel  string
		pred tbl.Predicate
	}
	var workloads []workload
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5} {
		width := int64(1_000_000 * sel)
		lo := (1_000_000 - width) / 2
		workloads = append(workloads, workload{
			name: "uniform",
			sel:  fmt.Sprintf("%g%%", sel*100),
			pred: tbl.Range[int64]("u", lo, lo+width),
		})
	}
	// Exact-run-dominated: a contiguous ~25% slice of the clustered walk.
	workloads = append(workloads, workload{
		name: "clustered(exact)",
		sel:  "25%",
		pred: tbl.Range[int64]("c", v/2, v/2+v/4),
	})

	const execs = 12
	header := []string{"workload", "sel", "op", "parallelism",
		"scalar ms/exec", "kernel ms/exec", "speedup", "rows", "kernel blocks"}
	var rows [][]string
	for _, w := range workloads {
		// Correctness cross-check before timing: scalar ≡ kernel ids.
		a, _, err := t.Select().Where(w.pred).Options(tbl.SelectOptions{Parallelism: 1, Scalar: true}).IDs()
		must(err)
		b, stv, err := t.Select().Where(w.pred).Options(tbl.SelectOptions{Parallelism: 1}).IDs()
		must(err)
		if len(a) != len(b) {
			panic(fmt.Sprintf("vectorized experiment: scalar %d ids, kernel %d ids", len(a), len(b)))
		}
		for i := range a {
			if a[i] != b[i] {
				panic("vectorized experiment: scalar and kernel ids diverge")
			}
		}
		for _, op := range []string{"ids", "count"} {
			for _, par := range []int{1, 2, 8} {
				var elapsed [2]time.Duration
				var matched uint64
				for mode, scalar := range []bool{true, false} {
					opts := tbl.SelectOptions{Parallelism: par, Scalar: scalar}
					q := t.Select().Where(w.pred).Options(opts)
					// One untimed exec warms scratch pools, kernel caches
					// and the CPU caches, so sub-millisecond workloads are
					// not dominated by first-touch effects.
					if _, _, err := q.Count(); err != nil {
						panic(err)
					}
					start := time.Now()
					for e := 0; e < execs; e++ {
						if op == "ids" {
							ids, _, err := q.IDs()
							must(err)
							matched = uint64(len(ids))
						} else {
							c, _, err := q.Count()
							must(err)
							matched = c
						}
					}
					elapsed[mode] = time.Since(start)
				}
				scalarMS := float64(elapsed[0].Microseconds()) / float64(execs) / 1000
				kernelMS := float64(elapsed[1].Microseconds()) / float64(execs) / 1000
				rows = append(rows, []string{
					w.name, w.sel, op, d(par),
					f2(scalarMS), f2(kernelMS),
					f2(float64(elapsed[0].Nanoseconds()) / float64(elapsed[1].Nanoseconds())),
					d(int(matched)), d(int(stv.BlocksVectorized)),
				})
			}
		}
	}
	return tabular("vectorized",
		"Vectorized execution: selection-mask kernels vs scalar residual checks",
		header, rows)
}
