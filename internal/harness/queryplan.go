package harness

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	tbl "repro/table"
)

// QueryPlan exercises the table package's lazy Query API over a mixed
// relation — an int64 walk under an imprint, a near-sorted int64 column
// under a zonemap, a uniform float64 under an imprint, and a string
// column under a code imprint — and reports, per predicate, the access
// path the planner chose (imprints probe, zonemap, or scan fallback for
// unselective leaves), the estimated selectivity behind that choice,
// the candidate-block statistics, and the measured result.
func QueryPlan(cfg Config) *Experiment {
	n := int(200_000 * cfg.Scale)
	if n < 4096 {
		n = 4096
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e7a))
	qty := make([]int64, n)
	ts := make([]int64, n)
	price := make([]float64, n)
	city := make([]string, n)
	vocab := []string{
		"amsterdam", "antwerp", "athens", "berlin", "bern", "lisbon",
		"london", "lyon", "madrid", "milan", "paris", "porto", "prague",
	}
	v := int64(10_000)
	w := int64(0)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		w += int64(rng.IntN(5))
		qty[i] = v
		ts[i] = w
		price[i] = rng.Float64() * 1000
		city[i] = vocab[(i/199+rng.IntN(2))%len(vocab)]
	}
	t := tbl.New("orders")
	must(tbl.AddColumn(t, "qty", qty, tbl.Imprints, core.Options{Seed: cfg.Seed}))
	must(tbl.AddColumn(t, "ts", ts, tbl.Zonemap, core.Options{}))
	must(tbl.AddColumn(t, "price", price, tbl.Imprints, core.Options{Seed: cfg.Seed + 1}))
	must(t.AddStringColumn("city", city, tbl.Imprints, core.Options{Seed: cfg.Seed + 2}))

	preds := []struct {
		name string
		pred tbl.Predicate
	}{
		{"qty selective range", tbl.Range[int64]("qty", v-100, v+100)},
		{"qty unselective range", tbl.AtLeast[int64]("qty", v-1_000_000)},
		{"ts zonemap range", tbl.Range[int64]("ts", w/4, w/2)},
		{"price point band", tbl.Range[float64]("price", 100, 120)},
		{"city prefix", tbl.StrPrefix("city", "p")},
		{"mixed conjunction", tbl.And(
			tbl.Range[int64]("qty", v-400, v+400),
			tbl.StrRange("city", "berlin", "madrid"),
			tbl.LessThan[float64]("price", 500),
		)},
	}

	header := []string{"predicate", "access", "est sel", "cand blocks", "exact", "probes", "rows", "time"}
	var rows [][]string
	for _, p := range preds {
		q := t.Select().Where(p.pred)
		plan, err := q.Explain()
		must(err)
		start := time.Now()
		ids, _, err := q.IDs()
		must(err)
		elapsed := time.Since(start)
		// For a single leaf report its access path; conjunctions report
		// the root op with each child's path.
		access, est := planAccess(plan.Root)
		rows = append(rows, []string{
			p.name, access, est,
			fmt.Sprintf("%d/%d", plan.Root.CandidateBlocks, plan.TotalBlocks),
			fmt.Sprintf("%d", plan.Root.ExactBlocks),
			fmt.Sprintf("%d", plan.Stats.Probes),
			fmt.Sprintf("%d", len(ids)),
			elapsed.Round(time.Microsecond).String(),
		})
	}
	return tabular("queryplan", "Query API: per-leaf access-path plans (EXPLAIN)", header, rows)
}

// planAccess summarizes a plan subtree's access paths and estimates.
func planAccess(n *tbl.PlanNode) (access, est string) {
	if len(n.Children) == 0 {
		a := n.Access
		if n.Reason != "" {
			a += "(" + n.Reason + ")"
		}
		if n.Selectivity < 0 {
			return a, "-"
		}
		return a, fmt.Sprintf("%.3f", n.Selectivity)
	}
	access = n.Op + "("
	for i, kid := range n.Children {
		if i > 0 {
			access += ","
		}
		ka, _ := planAccess(kid)
		access += ka
	}
	return access + ")", "-"
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
