package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/dataset"
)

// Experiment is one regenerated table or figure: structured rows for
// machine consumption (CSV export, tests) plus a text rendering for the
// CLI and EXPERIMENTS.md. Free-form experiments (Figure 3's prints)
// carry only Text.
type Experiment struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Text   string
}

// IDs lists all experiment identifiers in paper order.
func IDs() []string {
	return []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "queryplan", "prepared", "segments", "aggregate", "vectorized", "serve", "ingest", "shards", "ingest-recover"}
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Experiment, error) {
	switch id {
	case "table1":
		return Table1(cfg), nil
	case "fig3":
		return Fig3(cfg), nil
	case "fig4":
		return Fig4(MeasureAll(cfg, false)), nil
	case "fig5":
		return Fig5(MeasureAll(cfg, false)), nil
	case "fig6":
		return Fig6(MeasureAll(cfg, false)), nil
	case "fig7":
		return Fig7(MeasureAll(cfg, false)), nil
	case "fig8":
		return Fig8(MeasureAll(cfg, true)), nil
	case "fig9":
		return Fig9(MeasureAll(cfg, true)), nil
	case "fig10":
		return Fig10(MeasureAll(cfg, true)), nil
	case "fig11":
		return Fig11(MeasureAll(cfg, true)), nil
	case "queryplan":
		return QueryPlan(cfg), nil
	case "prepared":
		return PreparedExp(cfg), nil
	case "segments":
		return SegmentsExp(cfg), nil
	case "aggregate":
		return AggregateExp(cfg), nil
	case "vectorized":
		return VectorizedExp(cfg), nil
	case "serve":
		return ServeExp(cfg), nil
	case "ingest":
		return IngestExp(cfg), nil
	case "shards":
		return ShardsExp(cfg), nil
	case "ingest-recover":
		return IngestRecoverExp(cfg), nil
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (want one of %s)", id, strings.Join(IDs(), ", "))
}

// RunAll executes every experiment, sharing the expensive measurement
// passes.
func RunAll(cfg Config) []*Experiment {
	sizeRuns := MeasureAll(cfg, false)
	queryRuns := MeasureAll(cfg, true)
	return []*Experiment{
		Table1(cfg),
		Fig3(cfg),
		Fig4(sizeRuns),
		Fig5(sizeRuns),
		Fig6(sizeRuns),
		Fig7(sizeRuns),
		Fig8(queryRuns),
		Fig9(queryRuns),
		Fig10(queryRuns),
		Fig11(queryRuns),
		QueryPlan(cfg),
		PreparedExp(cfg),
		SegmentsExp(cfg),
		AggregateExp(cfg),
		VectorizedExp(cfg),
		ServeExp(cfg),
		IngestExp(cfg),
		ShardsExp(cfg),
	}
}

func table(f func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	f(w)
	if err := w.Flush(); err != nil {
		// strings.Builder writes cannot fail, so a flush error here can
		// only be a tabwriter usage bug — surface it, don't render a
		// silently truncated table.
		panic(err)
	}
	return sb.String()
}

// renderRows renders a header and rows as an aligned text table.
func renderRows(header []string, rows [][]string) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, strings.Join(header, "\t"))
		for _, r := range rows {
			fmt.Fprintln(w, strings.Join(r, "\t"))
		}
	})
}

// tabular assembles an Experiment from structured rows.
func tabular(id, title string, header []string, rows [][]string) *Experiment {
	return &Experiment{
		ID:     id,
		Title:  title,
		Header: header,
		Rows:   rows,
		Text:   renderRows(header, rows),
	}
}

func mb(b int64) string { return fmt.Sprintf("%.2fMB", float64(b)/(1<<20)) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }

// Table1 reproduces the dataset statistics table, side by side with the
// original paper values.
func Table1(cfg Config) *Experiment {
	header := []string{"dataset", "size", "cols", "value types", "max rows",
		"paper size", "paper cols", "paper rows"}
	var rows [][]string
	for _, ds := range dataset.All(dataset.Config{Scale: cfg.Scale, Seed: cfg.Seed}) {
		rows = append(rows, []string{
			ds.Name, mb(ds.SizeBytes()), d(len(ds.Columns)),
			strings.Join(ds.TypeNames(), " "), d(ds.Rows),
			ds.PaperSize, d(ds.PaperCols), ds.PaperRows,
		})
	}
	return tabular("table1", "Table 1: Dataset statistics", header, rows)
}

// Fig3 prints the imprint fingerprints and entropy of the representative
// column of each dataset.
func Fig3(cfg Config) *Experiment {
	const lines = 24
	var sb strings.Builder
	var rows [][]string
	for _, ds := range dataset.All(dataset.Config{Scale: cfg.Scale, Seed: cfg.Seed}) {
		c := ds.Column(ds.Representative)
		run := MeasureColumn(ds.Name, c, cfg, false, lines)
		fmt.Fprintf(&sb, "%s %s\nE = %f\n%s\n", ds.Name, ds.Representative, run.Entropy, run.FingerprintHead)
		rows = append(rows, []string{ds.Name, ds.Representative, f3(run.Entropy)})
	}
	return &Experiment{
		ID:     "fig3",
		Title:  "Figure 3: Imprint prints and column entropy",
		Header: []string{"dataset", "column", "entropy"},
		Rows:   rows,
		Text:   sb.String(),
	}
}

// Fig4 renders the cumulative distribution of column entropy.
func Fig4(runs []*ColumnRun) *Experiment {
	es := make([]float64, 0, len(runs))
	for _, r := range runs {
		es = append(es, r.Entropy)
	}
	sort.Float64s(es)
	header := []string{"entropy<=", "columns (cumulative)"}
	var rows [][]string
	for _, th := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		n := sort.SearchFloat64s(es, th+1e-12)
		rows = append(rows, []string{f2(th), d(n)})
	}
	return tabular("fig4", "Figure 4: Cumulative distribution of column entropy", header, rows)
}

// Fig5 renders index size and creation time per column, grouped by value
// width as in the paper's four panel columns.
func Fig5(runs []*ColumnRun) *Experiment {
	sorted := append([]*ColumnRun(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].WidthBytes != sorted[j].WidthBytes {
			return sorted[i].WidthBytes < sorted[j].WidthBytes
		}
		return sorted[i].ColBytes < sorted[j].ColBytes
	})
	header := []string{"width", "column", "col size", "imprints", "zonemap", "wah",
		"imp build", "zm build", "wah build"}
	var rows [][]string
	for _, r := range sorted {
		rows = append(rows, []string{
			d(r.WidthBytes), r.Dataset + "." + r.Column, mb(r.ColBytes),
			mb(r.Imprints.SizeBytes), mb(r.Zonemap.SizeBytes), mb(r.WAH.SizeBytes),
			r.Imprints.BuildTime.Round(10e3).String(),
			r.Zonemap.BuildTime.Round(10e3).String(),
			r.WAH.BuildTime.Round(10e3).String(),
		})
	}
	return tabular("fig5", "Figure 5: Index size and creation time by value width", header, rows)
}

// Fig6 renders index size as a percentage of column size, per column and
// summed per dataset.
func Fig6(runs []*ColumnRun) *Experiment {
	header := []string{"dataset", "column", "imprints%", "zonemap%", "wah%"}
	var rows [][]string
	for _, r := range runs {
		rows = append(rows, []string{
			r.Dataset, r.Column,
			f1(pct(r.Imprints.SizeBytes, r.ColBytes)),
			f1(pct(r.Zonemap.SizeBytes, r.ColBytes)),
			f1(pct(r.WAH.SizeBytes, r.ColBytes)),
		})
	}
	for _, ds := range datasetsOf(runs) {
		var imp, zm, wah, col int64
		for _, r := range runs {
			if r.Dataset != ds {
				continue
			}
			imp += r.Imprints.SizeBytes
			zm += r.Zonemap.SizeBytes
			wah += r.WAH.SizeBytes
			col += r.ColBytes
		}
		rows = append(rows, []string{
			ds, "(total)", f1(pct(imp, col)), f1(pct(zm, col)), f1(pct(wah, col)),
		})
	}
	return tabular("fig6", "Figure 6: Index size overhead % per dataset", header, rows)
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func datasetsOf(runs []*ColumnRun) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range runs {
		if !seen[r.Dataset] {
			seen[r.Dataset] = true
			out = append(out, r.Dataset)
		}
	}
	return out
}

// Fig7 renders index size overhead against column entropy, the paper's
// key robustness result: imprints stay flat (<~12.5%) as entropy grows
// while WAH deteriorates.
func Fig7(runs []*ColumnRun) *Experiment {
	sorted := append([]*ColumnRun(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Entropy < sorted[j].Entropy })
	header := []string{"entropy", "column", "imprints%", "wah%"}
	var rows [][]string
	for _, r := range sorted {
		rows = append(rows, []string{
			f3(r.Entropy), r.Dataset + "." + r.Column,
			f1(pct(r.Imprints.SizeBytes, r.ColBytes)),
			f1(pct(r.WAH.SizeBytes, r.ColBytes)),
		})
	}
	return tabular("fig7", "Figure 7: Index size overhead % over column entropy", header, rows)
}

// selectivityBucket maps an achieved selectivity to its decile step.
func selectivityBucket(s float64) int {
	b := int(s * 10)
	if b > 9 {
		b = 9
	}
	return b
}

func allQueries(runs []*ColumnRun) []QueryMeasurement {
	var qs []QueryMeasurement
	for _, r := range runs {
		qs = append(qs, r.Queries...)
	}
	return qs
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	sort.Float64s(v)
	m := len(v) / 2
	if len(v)%2 == 1 {
		return v[m]
	}
	return (v[m-1] + v[m]) / 2
}

func bucketLabel(i int) string {
	return fmt.Sprintf("%.1f-%.1f", float64(i)/10, float64(i+1)/10)
}

// Fig8 renders query time against selectivity for all four evaluators.
func Fig8(runs []*ColumnRun) *Experiment {
	qs := allQueries(runs)
	type bucket struct{ scan, imp, zm, wah []float64 }
	buckets := make([]bucket, 10)
	for _, q := range qs {
		b := &buckets[selectivityBucket(q.Selectivity)]
		b.scan = append(b.scan, float64(q.ScanNs)/1e6)
		b.imp = append(b.imp, float64(q.ImpNs)/1e6)
		b.zm = append(b.zm, float64(q.ZmNs)/1e6)
		b.wah = append(b.wah, float64(q.WahNs)/1e6)
	}
	header := []string{"selectivity", "queries", "scan ms", "imprints ms", "zonemap ms", "wah ms"}
	var rows [][]string
	for i, b := range buckets {
		if len(b.scan) == 0 {
			continue
		}
		rows = append(rows, []string{
			bucketLabel(i), d(len(b.scan)),
			f4(median(b.scan)), f4(median(b.imp)), f4(median(b.zm)), f4(median(b.wah)),
		})
	}
	return tabular("fig8", "Figure 8: Query time for decreasing selectivity (median ms)", header, rows)
}

// Fig9 renders the cumulative distribution of query times.
func Fig9(runs []*ColumnRun) *Experiment {
	qs := allQueries(runs)
	thresholds := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 1000}
	count := func(get func(QueryMeasurement) int64, th float64) int {
		n := 0
		for _, q := range qs {
			if float64(get(q))/1e6 <= th {
				n++
			}
		}
		return n
	}
	header := []string{"time<=ms", "scan", "imprints", "zonemap", "wah"}
	var rows [][]string
	for _, th := range thresholds {
		rows = append(rows, []string{
			fmt.Sprintf("%g", th),
			d(count(func(q QueryMeasurement) int64 { return q.ScanNs }, th)),
			d(count(func(q QueryMeasurement) int64 { return q.ImpNs }, th)),
			d(count(func(q QueryMeasurement) int64 { return q.ZmNs }, th)),
			d(count(func(q QueryMeasurement) int64 { return q.WahNs }, th)),
		})
	}
	return tabular("fig9",
		fmt.Sprintf("Figure 9: Cumulative distribution of query times (%d queries)", len(qs)),
		header, rows)
}

// Fig10 renders the factor of improvement of imprints and WAH over the
// sequential scan and zonemap baselines.
func Fig10(runs []*ColumnRun) *Experiment {
	qs := allQueries(runs)
	type bucket struct{ scanImp, scanWah, zmImp, zmWah []float64 }
	buckets := make([]bucket, 10)
	for _, q := range qs {
		if q.ImpNs == 0 || q.WahNs == 0 {
			continue
		}
		b := &buckets[selectivityBucket(q.Selectivity)]
		b.scanImp = append(b.scanImp, float64(q.ScanNs)/float64(q.ImpNs))
		b.scanWah = append(b.scanWah, float64(q.ScanNs)/float64(q.WahNs))
		b.zmImp = append(b.zmImp, float64(q.ZmNs)/float64(q.ImpNs))
		b.zmWah = append(b.zmWah, float64(q.ZmNs)/float64(q.WahNs))
	}
	header := []string{"selectivity", "scan/imprints", "scan/wah", "zonemap/imprints", "zonemap/wah"}
	var rows [][]string
	for i, b := range buckets {
		if len(b.scanImp) == 0 {
			continue
		}
		rows = append(rows, []string{
			bucketLabel(i),
			f2(median(b.scanImp)), f2(median(b.scanWah)),
			f2(median(b.zmImp)), f2(median(b.zmWah)),
		})
	}
	return tabular("fig10", "Figure 10: Factor of improvement over scan and zonemap (median)", header, rows)
}

// Fig11 renders normalized index probes and value comparisons for the
// 0.4-0.5 selectivity band, bucketed by column entropy as in the paper.
func Fig11(runs []*ColumnRun) *Experiment {
	type acc struct {
		n                                int
		impP, impC, zmP, zmC, wahP, wahC float64
	}
	// Bucket by entropy in steps of 0.2.
	buckets := make([]acc, 5)
	for _, r := range runs {
		for _, q := range r.Queries {
			if q.Selectivity < 0.4 || q.Selectivity > 0.5 {
				continue
			}
			bi := int(r.Entropy / 0.2)
			if bi > 4 {
				bi = 4
			}
			b := &buckets[bi]
			rows := float64(q.Rows)
			b.n++
			b.impP += float64(q.ImpProbes) / rows
			b.impC += float64(q.ImpComparisons) / rows
			b.zmP += float64(q.ZmProbes) / rows
			b.zmC += float64(q.ZmComparisons) / rows
			b.wahP += float64(q.WahProbes) / rows
			b.wahC += float64(q.WahComparisons) / rows
		}
	}
	header := []string{"entropy", "queries", "imp probes", "zm probes", "wah probes",
		"imp cmps", "zm cmps", "wah cmps"}
	var rows [][]string
	for i, b := range buckets {
		if b.n == 0 {
			continue
		}
		n := float64(b.n)
		rows = append(rows, []string{
			fmt.Sprintf("%.1f-%.1f", float64(i)*0.2, float64(i+1)*0.2), d(b.n),
			f4(b.impP / n), f4(b.zmP / n), f4(b.wahP / n),
			f4(b.impC / n), f4(b.zmC / n), f4(b.wahC / n),
		})
	}
	return tabular("fig11",
		"Figure 11: Normalized index probes and comparisons (selectivity 0.4-0.5)",
		header, rows)
}
