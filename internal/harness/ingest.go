package harness

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	tbl "repro/table"
)

// IngestExp measures the LSM-style ingest subsystem end to end: a
// writer streams append batches into the in-memory delta store while
// concurrent readers run imprint-indexed band queries, with the
// background sealer cutting the delta into immutable indexed segments
// off the query path. For 1/2/8 concurrent readers the experiment
// reports a read-only baseline (writer idle) and a mixed pass (writer
// streaming): reader p50/p99 latency, achieved write throughput, and
// the seal lag (delta rows still buffered when the writer stops). The
// acceptance criterion behind the table: readers never block on
// writers, so mixed p99 stays within a small factor of the baseline,
// and sealed segments keep answering through the vectorized kernels
// (the harness asserts BlocksVectorized > 0 under the mixed workload).
func IngestExp(cfg Config) *Experiment {
	n := int(200_000 * cfg.Scale)
	if n < 32_768 {
		n = 32_768
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x1267))
	cities := []string{
		"amsterdam", "athens", "berlin", "bern", "lisbon",
		"madrid", "oslo", "paris", "prague", "rome",
	}
	qty := make([]int64, n)
	price := make([]float64, n)
	city := make([]string, n)
	for i := 0; i < n; i++ {
		qty[i] = rng.Int64N(1_000_000)
		price[i] = rng.Float64() * 1000
		city[i] = cities[rng.IntN(len(cities))]
	}
	// Small segments keep each background seal build short (a few ms of
	// CPU), so reader tail latency stays tight even on one core.
	t := tbl.NewWithOptions("ingest", tbl.TableOptions{SegmentRows: 8192})
	must(tbl.AddColumn(t, "qty", qty, tbl.Imprints, core.Options{Seed: cfg.Seed}))
	must(tbl.AddColumn(t, "price", price, tbl.Imprints, core.Options{Seed: cfg.Seed + 1}))
	must(t.AddStringColumn("city", city, tbl.Imprints, core.Options{Seed: cfg.Seed + 2}))
	// Single-segment seal chunks keep each off-lock build short, so
	// reader goroutines interleave with the sealer even on one core.
	must(t.EnableDeltaIngest(tbl.IngestOptions{AutoSeal: true, MaxSealSegments: 1}))
	defer t.Close()

	totalQueries := int(9600 * cfg.Scale)
	if totalQueries < 1920 {
		totalQueries = 1920
	}

	// readerPass drives `readers` goroutines splitting totalQueries band
	// queries (alternating Count and IDs) at query parallelism 1 —
	// concurrency comes from the readers, like a serving deployment —
	// so every level does the same total work and overlaps the writer
	// for a comparable span.
	readerPass := func(readers int) []time.Duration {
		results := make([][]time.Duration, readers)
		queries := totalQueries / readers
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				prng := rand.New(rand.NewPCG(cfg.Seed, uint64(0xbeef+r)))
				lat := make([]time.Duration, 0, queries)
				for i := 0; i < queries; i++ {
					lo := prng.Int64N(950_000)
					q := t.Select().Where(tbl.Range[int64]("qty", lo, lo+25_000)).
						Options(tbl.SelectOptions{Parallelism: 1})
					start := time.Now()
					var err error
					if i%2 == 0 {
						_, _, err = q.Count()
					} else {
						_, _, err = q.IDs()
					}
					must(err)
					lat = append(lat, time.Since(start))
				}
				results[r] = lat
			}(r)
		}
		wg.Wait()
		var all []time.Duration
		for _, l := range results {
			all = append(all, l...)
		}
		return all
	}

	// Warm scratch pools, kernel caches and the CPU caches before any
	// timed pass so the first baseline is not dominated by first-touch
	// effects.
	readerPass(1)

	header := []string{"readers", "mode", "queries", "p50 (us)", "p99 (us)",
		"write rows/s", "delta rows", "vect blocks"}
	var rows [][]string
	for _, readers := range []int{1, 2, 8} {
		base := readerPass(readers)
		rows = append(rows, []string{
			d(readers), "read-only", d(len(base)),
			fmt.Sprint(percentile(base, 0.50).Microseconds()),
			fmt.Sprint(percentile(base, 0.99).Microseconds()),
			"-", "-", "-",
		})

		// Mixed pass: one writer streams paced append batches (a fixed
		// offered rate, like a real ingest feed — a tight loop would
		// measure single-core scheduler saturation, not the write path)
		// until the readers finish; commits go through the delta store's
		// own lock, so they never block the reader fan-out.
		stop := make(chan struct{})
		var written atomic.Int64
		var wwg sync.WaitGroup
		wwg.Add(1)
		writeStart := time.Now()
		go func() {
			defer wwg.Done()
			wrng := rand.New(rand.NewPCG(cfg.Seed, uint64(0xfeed+readers)))
			const batch = 256
			tick := time.NewTicker(2 * time.Millisecond) // ~128k rows/s offered
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				bq := make([]int64, batch)
				bp := make([]float64, batch)
				bc := make([]string, batch)
				for i := 0; i < batch; i++ {
					bq[i] = wrng.Int64N(1_000_000)
					bp[i] = wrng.Float64() * 1000
					bc[i] = cities[wrng.IntN(len(cities))]
				}
				b := t.NewBatch()
				must(tbl.Append(b, "qty", bq))
				must(tbl.Append(b, "price", bp))
				must(b.AppendStrings("city", bc))
				must(b.Commit())
				written.Add(batch)
			}
		}()
		mixed := readerPass(readers)
		close(stop)
		wwg.Wait()
		writeElapsed := time.Since(writeStart)
		writeRate := float64(written.Load()) / writeElapsed.Seconds()
		st := t.IngestStats()

		// Sealed segments must still answer through the vectorized block
		// kernels while the delta absorbs writes — the mixed-workload
		// acceptance criterion.
		_, qst, err := t.Select().Where(tbl.Range[int64]("qty", 400_000, 600_000)).
			Options(tbl.SelectOptions{Parallelism: 1}).Count()
		must(err)
		if qst.BlocksVectorized == 0 {
			panic("ingest experiment: no vectorized blocks under mixed workload")
		}

		rows = append(rows, []string{
			d(readers), "mixed", d(len(mixed)),
			fmt.Sprint(percentile(mixed, 0.50).Microseconds()),
			fmt.Sprint(percentile(mixed, 0.99).Microseconds()),
			fmt.Sprintf("%.0f", writeRate),
			d(st.DeltaRows),
			d(int(qst.BlocksVectorized)),
		})
	}
	return tabular("ingest",
		"LSM-style ingest: reader latency, write throughput and seal lag under streaming appends",
		header, rows)
}
