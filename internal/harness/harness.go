// Package harness orchestrates the paper's experimental evaluation
// (Section 6): it builds imprints, zonemaps and WAH bitmaps over every
// column of the five (synthetic) datasets, runs the selectivity-sweep
// query workload against all of them plus a sequential scan, and renders
// each table and figure of the paper as text. EXPERIMENTS.md records the
// paper-vs-measured comparison produced from these runs.
package harness

import (
	"fmt"
	"time"

	"repro/internal/coltype"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/scan"
	"repro/internal/wah"
	"repro/internal/workload"
	"repro/internal/zonemap"
)

// Config controls the evaluation scale.
type Config struct {
	// Scale is the dataset scale factor (see dataset.Config).
	Scale float64
	// Seed drives dataset generation, sampling and workloads.
	Seed uint64
	// QueriesPerSelectivity is the number of queries generated per
	// selectivity step per column (default 3).
	QueriesPerSelectivity int
	// MaxColumnsPerDataset bounds per-dataset work in query experiments
	// (0 = all columns).
	MaxColumnsPerDataset int
}

func (c Config) queriesPerSel() int {
	if c.QueriesPerSelectivity <= 0 {
		return 3
	}
	return c.QueriesPerSelectivity
}

// IndexBuild records construction cost and footprint of one index over
// one column.
type IndexBuild struct {
	SizeBytes int64
	BuildTime time.Duration
}

// QueryMeasurement is one range query evaluated by all four methods.
type QueryMeasurement struct {
	Dataset, Column string
	Rows            int
	Selectivity     float64 // achieved
	ResultCount     int

	ScanNs, ImpNs, ZmNs, WahNs int64

	ImpProbes, ImpComparisons uint64
	ZmProbes, ZmComparisons   uint64
	WahProbes, WahComparisons uint64
}

// ColumnRun is the full measurement record of one column.
type ColumnRun struct {
	Dataset, Column, TypeName string
	WidthBytes, Rows          int
	ColBytes                  int64
	Entropy                   float64

	Imprints, Zonemap, WAH IndexBuild

	Queries []QueryMeasurement

	// FingerprintHead holds the first lines of the imprint print
	// (Figure 3) when requested.
	FingerprintHead string
}

// measure builds the three indexes over one typed column, computes its
// entropy, and optionally runs the query workload.
func measure[V coltype.Value](dsName string, col *column.Column[V], cfg Config, withQueries bool, fingerprintLines int) *ColumnRun {
	vals := col.Values()
	run := &ColumnRun{
		Dataset:    dsName,
		Column:     col.Name(),
		TypeName:   col.TypeName(),
		WidthBytes: col.WidthBytes(),
		Rows:       col.Len(),
		ColBytes:   col.SizeBytes(),
	}

	t0 := time.Now()
	imp := core.Build(vals, core.Options{Seed: cfg.Seed})
	run.Imprints = IndexBuild{SizeBytes: imp.SizeBytes(), BuildTime: time.Since(t0)}

	t0 = time.Now()
	zm := zonemap.Build(vals, zonemap.Options{})
	run.Zonemap = IndexBuild{SizeBytes: zm.SizeBytes(), BuildTime: time.Since(t0)}

	t0 = time.Now()
	wb := wah.BuildWithHistogram(vals, imp.Histogram())
	run.WAH = IndexBuild{SizeBytes: wb.SizeBytes(), BuildTime: time.Since(t0)}

	run.Entropy = imp.Entropy()
	if fingerprintLines > 0 {
		run.FingerprintHead = imp.Fingerprint(fingerprintLines)
	}

	if withQueries {
		queries := workload.Ranges(vals, workload.DefaultSelectivities(), cfg.queriesPerSel(), cfg.Seed+uint64(len(vals)))
		res := make([]uint32, 0, len(vals))
		for _, q := range queries {
			m := QueryMeasurement{
				Dataset:     dsName,
				Column:      col.Name(),
				Rows:        col.Len(),
				Selectivity: q.Achieved,
			}

			t0 = time.Now()
			ids, _ := scan.RangeIDs(vals, q.Low, q.High, res[:0])
			m.ScanNs = time.Since(t0).Nanoseconds()
			m.ResultCount = len(ids)

			t0 = time.Now()
			_, ist := imp.RangeIDs(q.Low, q.High, res[:0])
			m.ImpNs = time.Since(t0).Nanoseconds()
			m.ImpProbes, m.ImpComparisons = ist.Probes, ist.Comparisons

			t0 = time.Now()
			_, zst := zm.RangeIDs(q.Low, q.High, res[:0])
			m.ZmNs = time.Since(t0).Nanoseconds()
			m.ZmProbes, m.ZmComparisons = zst.Probes, zst.Comparisons

			t0 = time.Now()
			_, wst := wb.RangeIDs(q.Low, q.High, res[:0])
			m.WahNs = time.Since(t0).Nanoseconds()
			m.WahProbes, m.WahComparisons = wst.Probes, wst.Comparisons

			run.Queries = append(run.Queries, m)
		}
	}
	return run
}

// MeasureColumn dispatches a type-erased column to the generic measure.
func MeasureColumn(dsName string, c column.Any, cfg Config, withQueries bool, fingerprintLines int) *ColumnRun {
	switch col := c.(type) {
	case *column.Column[int8]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	case *column.Column[int16]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	case *column.Column[int32]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	case *column.Column[int64]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	case *column.Column[uint8]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	case *column.Column[uint16]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	case *column.Column[uint32]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	case *column.Column[uint64]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	case *column.Column[float32]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	case *column.Column[float64]:
		return measure(dsName, col, cfg, withQueries, fingerprintLines)
	}
	panic(fmt.Sprintf("harness: unsupported column type %T", c))
}

// MeasureAll runs MeasureColumn over every column of every dataset.
// Results are grouped per dataset in generation order.
func MeasureAll(cfg Config, withQueries bool) []*ColumnRun {
	var runs []*ColumnRun
	for _, ds := range dataset.All(dataset.Config{Scale: cfg.Scale, Seed: cfg.Seed}) {
		cols := ds.Columns
		if cfg.MaxColumnsPerDataset > 0 && len(cols) > cfg.MaxColumnsPerDataset {
			cols = cols[:cfg.MaxColumnsPerDataset]
		}
		for _, c := range cols {
			runs = append(runs, MeasureColumn(ds.Name, c, cfg, withQueries, 0))
		}
	}
	return runs
}
