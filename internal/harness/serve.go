package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	tbl "repro/table"
)

// ServeExp load-tests the imprintd serving stack end to end: SQL text
// through the lexer/parser/planner, the normalized-text statement LRU,
// the bounded worker pool, and the table layer's segment fan-out —
// all over real HTTP. A fixed mix of parameterized statements is
// driven at 1, 8 and 64 concurrent clients against a small worker pool
// (4 executing, 8 queued), reporting per-level p50/p99 latency,
// throughput, the statement-cache hit rate, and how many requests
// admission control turned away with 429. Whether rejections occur
// depends on how much offered concurrency the host lets through at
// once (the deterministic admission-control behavior is pinned by the
// server package's tests); the rejected column reports what happened.
func ServeExp(cfg Config) *Experiment {
	n := int(100_000 * cfg.Scale)
	if n < 8192 {
		n = 8192
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5e47))
	cities := []string{
		"amsterdam", "antwerp", "athens", "berlin", "bern", "lisbon",
		"london", "lyon", "madrid", "milan", "paris", "porto", "prague",
	}
	qty := make([]int64, n)
	price := make([]float64, n)
	city := make([]string, n)
	for i := 0; i < n; i++ {
		qty[i] = int64(rng.IntN(100_000))
		price[i] = rng.Float64() * 1000
		city[i] = cities[rng.IntN(len(cities))]
	}
	t := tbl.NewWithOptions("orders", tbl.TableOptions{SegmentRows: 16384})
	must(tbl.AddColumn(t, "qty", qty, tbl.Imprints, core.Options{Seed: cfg.Seed}))
	must(tbl.AddColumn(t, "price", price, tbl.Imprints, core.Options{Seed: cfg.Seed + 1}))
	must(t.AddStringColumn("city", city, tbl.Imprints, core.Options{Seed: cfg.Seed + 2}))

	srv, err := server.New(server.Config{
		Table:       t,
		Workers:     4,
		QueueDepth:  8,
		CacheSize:   64,
		Parallelism: 1,
	})
	must(err)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The serving mix: every statement is parameterized so repeat
	// requests re-bind against the cached compilation rather than
	// re-compiling; each statement sends exactly the parameters it
	// declares (extra bindings are an error by design). One statement
	// is spelled two ways to exercise normalization folding both onto
	// one cache entry.
	statements := []servedStatement{
		{"select count(*) from orders where qty >= $lo and qty < $hi", bandParams},
		{"SELECT COUNT(*) FROM orders WHERE qty >= $lo AND qty < $hi", bandParams},
		{"select sum(qty), count(*) from orders where city = $c", cityParams},
		{"select qty, price from orders where qty >= $lo and qty < $hi order by qty desc limit 10", bandParams},
		{"select city, count(*) from orders where qty < $hi group by city", hiParams},
	}

	requests := 600
	header := []string{"clients", "requests", "ok", "rejected", "p50 (us)", "p99 (us)", "qps", "cache hit rate"}
	var rows [][]string
	for _, clients := range []int{1, 8, 64} {
		before := srv.Stats()
		lat, okN, rejected := drive(ts.URL, statements, clients, requests, cfg.Seed)
		after := srv.Stats()
		hits := after.Cache.Hits - before.Cache.Hits
		misses := after.Cache.Misses - before.Cache.Misses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		var elapsed time.Duration
		for _, d := range lat {
			elapsed += d
		}
		qps := 0.0
		if elapsed > 0 {
			// Aggregate client-side request time divided by concurrency
			// approximates wall time under a closed loadgen loop.
			qps = float64(okN) / (elapsed.Seconds() / float64(clients))
		}
		rows = append(rows, []string{
			fmt.Sprint(clients),
			fmt.Sprint(requests),
			fmt.Sprint(okN),
			fmt.Sprint(rejected),
			fmt.Sprint(percentile(lat, 0.50).Microseconds()),
			fmt.Sprint(percentile(lat, 0.99).Microseconds()),
			fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.1f%%", 100*hitRate),
		})
	}
	return tabular("serve", "imprintd serving: latency, admission control and statement cache under concurrent SQL clients", header, rows)
}

// servedStatement pairs SQL text with a binder producing exactly the
// parameters the statement declares.
type servedStatement struct {
	sql    string
	params func(rng *rand.Rand) map[string]any
}

func bandParams(rng *rand.Rand) map[string]any {
	lo := int64(rng.IntN(90_000))
	return map[string]any{"lo": lo, "hi": lo + 5_000}
}

func hiParams(rng *rand.Rand) map[string]any {
	return map[string]any{"hi": int64(10_000 + rng.IntN(80_000))}
}

func cityParams(rng *rand.Rand) map[string]any {
	return map[string]any{"c": []string{"berlin", "lisbon", "paris"}[rng.IntN(3)]}
}

// drive runs a closed-loop load generation pass: `clients` goroutines
// splitting `total` requests, each POSTing one statement from the mix
// with fresh parameter bindings. Returns per-request latencies for
// 200s, the 200 count, and the 429 count.
func drive(baseURL string, statements []servedStatement, clients, total int, seed uint64) ([]time.Duration, int, int) {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	type result struct {
		lat      []time.Duration
		ok       int
		rejected int
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		share := total / clients
		if c < total%clients {
			share++
		}
		wg.Add(1)
		go func(c, share int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(c)))
			res := &results[c]
			for i := 0; i < share; i++ {
				stmt := statements[rng.IntN(len(statements))]
				body, _ := json.Marshal(map[string]any{
					"query":  stmt.sql,
					"params": stmt.params(rng),
				})
				start := time.Now()
				resp, err := client.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				d := time.Since(start)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					res.lat = append(res.lat, d)
					res.ok++
				case http.StatusTooManyRequests:
					res.rejected++
				}
			}
		}(c, share)
	}
	wg.Wait()
	var lat []time.Duration
	ok, rejected := 0, 0
	for i := range results {
		lat = append(lat, results[i].lat...)
		ok += results[i].ok
		rejected += results[i].rejected
	}
	return lat, ok, rejected
}

// percentile returns the p-quantile of the latency sample.
func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
