package wah

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/coltype"
	"repro/internal/histogram"
)

func scanIDs[V coltype.Value](col []V, low, high V) []uint32 {
	var ids []uint32
	for i, v := range col {
		if v >= low && v < high {
			ids = append(ids, uint32(i))
		}
	}
	return ids
}

func equalIDs(t *testing.T, got, want []uint32, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: id[%d] = %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

func TestBitmapEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build([]int64{}, Options{})
}

func TestBitmapOneBitPerRow(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	col := make([]int64, 5000)
	for i := range col {
		col[i] = int64(rng.IntN(100000))
	}
	ix := Build(col, Options{Seed: 3})
	var total uint64
	for b := 0; b < ix.Bins(); b++ {
		vec := ix.BinVector(b)
		if err := vec.Validate(); err != nil {
			t.Fatalf("bin %d: %v", b, err)
		}
		if vec.Len() != uint64(len(col)) {
			t.Fatalf("bin %d padded to %d bits, want %d", b, vec.Len(), len(col))
		}
		total += vec.Count()
	}
	if total != uint64(len(col)) {
		t.Errorf("bins hold %d set bits, want exactly %d (dense mapping)", total, len(col))
	}
}

func TestBitmapRangeAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	cases := map[string][]int64{}
	random := make([]int64, 6000)
	sorted := make([]int64, 6000)
	lowCard := make([]int64, 6000)
	for i := range random {
		random[i] = int64(rng.IntN(1 << 30))
		sorted[i] = int64(i * 5)
		lowCard[i] = int64(rng.IntN(6))
	}
	cases["random"] = random
	cases["sorted"] = sorted
	cases["lowCard"] = lowCard
	cases["partial"] = random[:5987]
	for name, col := range cases {
		ix := Build(col, Options{Seed: 7})
		for q := 0; q < 40; q++ {
			low := int64(rng.IntN(1 << 30))
			high := low + int64(rng.IntN(1<<28))
			got, _ := ix.RangeIDs(low, high, nil)
			equalIDs(t, got, scanIDs(col, low, high), name)
		}
		// Full and empty ranges.
		got, _ := ix.RangeIDs(0, 1<<31, nil)
		equalIDs(t, got, scanIDs(col, 0, 1<<31), name+"/full")
		if got, _ := ix.RangeIDs(5, 5, nil); len(got) != 0 {
			t.Errorf("%s: empty range returned ids", name)
		}
	}
}

func TestBitmapSharedHistogramMatchesImprintBinning(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	col := make([]float64, 4000)
	for i := range col {
		col[i] = rng.Float64() * 100
	}
	hist := histogram.Build(col, histogram.Options{Seed: 9})
	ix := BuildWithHistogram(col, hist)
	if ix.Histogram() != hist {
		t.Error("histogram not shared")
	}
	got, _ := ix.RangeIDs(10, 20, nil)
	equalIDs(t, got, scanIDs(col, 10, 20), "shared hist")
}

func TestBitmapFullyContainedBinsSkipChecks(t *testing.T) {
	// A range spanning many interior bins: most results come from "sure"
	// bins; comparisons should be far fewer than result size.
	rng := rand.New(rand.NewPCG(4, 4))
	col := make([]int64, 50000)
	for i := range col {
		col[i] = int64(rng.IntN(1 << 30))
	}
	ix := Build(col, Options{Seed: 5})
	low, high := int64(1<<27), int64(1<<29)
	ids, st := ix.RangeIDs(low, high, nil)
	if len(ids) == 0 {
		t.Fatal("no results")
	}
	if st.Comparisons >= uint64(len(ids)) {
		t.Errorf("comparisons %d >= results %d; contained bins not exploited",
			st.Comparisons, len(ids))
	}
	if st.BinsProbed == 0 || st.Probes == 0 {
		t.Error("stats not recorded")
	}
}

func TestBitmapSizeSortedVsRandom(t *testing.T) {
	// Figures 5-7: WAH compresses sorted/clustered data well but blows up
	// on high-entropy data (~1 word per value with 64 bins).
	n := 100000
	rng := rand.New(rand.NewPCG(5, 5))
	sorted := make([]int64, n)
	random := make([]int64, n)
	for i := 0; i < n; i++ {
		sorted[i] = int64(i)
		random[i] = int64(rng.IntN(1 << 40))
	}
	szSorted := Build(sorted, Options{Seed: 1}).SizeBytes()
	szRandom := Build(random, Options{Seed: 1}).SizeBytes()
	if szSorted >= szRandom {
		t.Errorf("sorted WAH %d >= random WAH %d", szSorted, szRandom)
	}
	// On random data, WAH approaches (or exceeds) ~1 literal word per
	// value: must be larger than 2 bytes/value here.
	if szRandom < int64(n)*2 {
		t.Errorf("random WAH suspiciously small: %d bytes for %d values", szRandom, n)
	}
}

func TestBitmapCountRange(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	col := make([]int32, 3000)
	for i := range col {
		col[i] = int32(rng.IntN(10000))
	}
	ix := Build(col, Options{Seed: 2})
	cnt, _ := ix.CountRange(1000, 5000)
	if cnt != uint64(len(scanIDs(col, 1000, 5000))) {
		t.Errorf("CountRange = %d", cnt)
	}
}

// Property: bitmap results equal the scan oracle on uint16 columns.
func TestQuickBitmapEqualsScan(t *testing.T) {
	f := func(seed uint64, a, b uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 0x9)) //nolint
		n := 1 + rng.IntN(2500)
		col := make([]uint16, n)
		card := 1 + rng.IntN(2000)
		for i := range col {
			col[i] = uint16(rng.IntN(card))
		}
		ix := Build(col, Options{Seed: seed})
		if a > b {
			a, b = b, a
		}
		got, _ := ix.RangeIDs(a, b, nil)
		want := scanIDs(col, a, b)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
