package wah

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// decodeAll returns the positions of all set bits.
func decodeAll(v *Vector) []uint64 {
	var out []uint64
	v.ForEachSet(func(pos uint64) { out = append(out, pos) })
	return out
}

func TestAppendBitRoundTrip(t *testing.T) {
	var v Vector
	want := []uint64{0, 5, 30, 31, 62, 93, 100}
	next := uint64(0)
	for _, p := range want {
		for ; next < p; next++ {
			v.AppendBit(false)
		}
		v.AppendBit(true)
		next = p + 1
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	got := decodeAll(&v)
	if len(got) != len(want) {
		t.Fatalf("decoded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decoded %v, want %v", got, want)
		}
	}
}

func TestLongZeroRunCompresses(t *testing.T) {
	var v Vector
	v.AppendRun(31*1000000, false)
	v.AppendBit(true)
	if v.Words() > 2 {
		t.Errorf("31M zero run used %d words, want <= 2", v.Words())
	}
	got := decodeAll(&v)
	if len(got) != 1 || got[0] != 31*1000000 {
		t.Errorf("decoded %v", got)
	}
}

func TestLongOneRunCompresses(t *testing.T) {
	var v Vector
	v.AppendRun(31*100000, true)
	if v.Words() > 1 {
		t.Errorf("one-fill used %d words", v.Words())
	}
	if v.Count() != 31*100000 {
		t.Errorf("Count = %d", v.Count())
	}
}

func TestAllOnesLiteralBecomesFill(t *testing.T) {
	var v Vector
	for i := 0; i < 62; i++ {
		v.AppendBit(true)
	}
	if v.Words() != 1 {
		t.Errorf("62 ones used %d words, want 1 merged fill", v.Words())
	}
}

func TestFillCounterSaturation(t *testing.T) {
	var v Vector
	// More groups than one fill word can count.
	groups := uint64(maxGroups) + 5
	v.AppendRun(groups*31, false)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.Words() != 2 {
		t.Errorf("oversized fill used %d words, want 2", v.Words())
	}
	if v.Len() != groups*31 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestPendingLiteralVisible(t *testing.T) {
	var v Vector
	v.AppendBit(true)
	v.AppendBit(false)
	v.AppendBit(true)
	got := decodeAll(&v)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("decoded %v", got)
	}
	if v.Len() != 3 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestOrIntoMatchesForEachSet(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	var v Vector
	n := uint64(5000)
	for i := uint64(0); i < n; i++ {
		v.AppendBit(rng.IntN(7) == 0)
	}
	dst := make([]uint64, (n+63)/64)
	v.OrInto(dst)
	want := decodeAll(&v)
	var got []uint64
	for wi, w := range dst {
		for b := 0; b < 64; b++ {
			if w&(1<<uint(b)) != 0 {
				got = append(got, uint64(wi*64+b))
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("OrInto decoded %d bits, ForEachSet %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// Property: encode/decode round-trips against a dense model under random
// AppendBit/AppendRun sequences.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x3a))
		var v Vector
		var model []bool
		for op := 0; op < 30; op++ {
			bit := rng.IntN(2) == 1
			if rng.IntN(2) == 0 {
				v.AppendBit(bit)
				model = append(model, bit)
			} else {
				n := rng.IntN(200)
				v.AppendRun(uint64(n), bit)
				for i := 0; i < n; i++ {
					model = append(model, bit)
				}
			}
		}
		if v.Validate() != nil {
			return false
		}
		if v.Len() != uint64(len(model)) {
			return false
		}
		decoded := make([]bool, len(model))
		v.ForEachSet(func(pos uint64) { decoded[pos] = true })
		for i := range model {
			if decoded[i] != model[i] {
				return false
			}
		}
		var wantCount uint64
		for _, b := range model {
			if b {
				wantCount++
			}
		}
		return v.Count() == wantCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: OrInto over multiple vectors equals the union of their sets.
func TestQuickOrIntoUnion(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x44))
		n := uint64(1 + rng.IntN(3000))
		vecs := make([]Vector, 3)
		model := make([]bool, n)
		for k := range vecs {
			for i := uint64(0); i < n; i++ {
				bit := rng.IntN(11) == 0
				vecs[k].AppendBit(bit)
				if bit {
					model[i] = true
				}
			}
		}
		dst := make([]uint64, (n+63)/64)
		for k := range vecs {
			vecs[k].OrInto(dst)
		}
		for i := uint64(0); i < n; i++ {
			got := dst[i>>6]&(1<<(i&63)) != 0
			if got != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOrPayloadStraddle(t *testing.T) {
	// Force a literal payload to straddle a 64-bit word boundary: bits
	// 31..61 land in word 0, the next literal 62..92 straddles into
	// word 1.
	var v Vector
	v.AppendRun(62, false)
	v.AppendBit(true) // bit 62
	v.AppendRun(29, false)
	v.AppendBit(true) // bit 92
	dst := make([]uint64, 2)
	v.OrInto(dst)
	if dst[0]&(1<<62) == 0 {
		t.Error("bit 62 missing")
	}
	if dst[1]&(1<<(92-64)) == 0 {
		t.Error("bit 92 missing")
	}
}
