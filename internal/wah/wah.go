// Package wah implements the Word-Aligned Hybrid compressed bitmap of
// Wu, Otoo & Shoshani (reference [23] of the column imprints paper) with
// 32-bit words, plus the bit-binned bitmap index the paper benchmarks
// against: one WAH-compressed bit vector per histogram bin, using the
// exact same binning as the imprints index (Section 6: "the bins used
// are identical to those used for the imprints index").
package wah

import (
	"fmt"
	"math/bits"
)

// Word layout (32-bit WAH):
//
//	literal: MSB 0, 31 payload bits
//	fill:    MSB 1, bit 30 = fill bit value, bits 0..29 = group count
//	         (one group = 31 bits of the decoded bitmap)
const (
	literalBits = 31
	fillFlag    = uint32(1) << 31
	fillOne     = uint32(1) << 30
	maxGroups   = fillOne - 1       // counter capacity of one fill word
	literalAll  = uint32(1)<<31 - 1 // 31 ones
)

// Vector is an append-only WAH-compressed bit vector.
type Vector struct {
	words      []uint32
	nbits      uint64 // bits represented so far (including pending)
	active     uint32 // pending literal payload
	activeBits int    // bits accumulated in active, in [0, 31)
}

// Len returns the number of bits represented.
func (v *Vector) Len() uint64 { return v.nbits }

// Words returns the number of encoded words, counting the pending
// literal if non-empty. This is the unit of WAH "index probes".
func (v *Vector) Words() int {
	w := len(v.words)
	if v.activeBits > 0 {
		w++
	}
	return w
}

// SizeBytes returns the compressed payload size.
func (v *Vector) SizeBytes() int64 { return int64(v.Words()) * 4 }

// AppendBit appends a single bit.
func (v *Vector) AppendBit(bit bool) {
	if bit {
		v.active |= 1 << uint(v.activeBits)
	}
	v.activeBits++
	v.nbits++
	if v.activeBits == literalBits {
		v.flush()
	}
}

// AppendRun appends count copies of bit. Long runs become fill words.
func (v *Vector) AppendRun(count uint64, bit bool) {
	if count == 0 {
		return
	}
	v.nbits += count
	// Top up the pending literal first.
	for v.activeBits > 0 && count > 0 {
		if bit {
			v.active |= 1 << uint(v.activeBits)
		}
		v.activeBits++
		count--
		if v.activeBits == literalBits {
			v.flush()
		}
	}
	// Whole groups become fills.
	if groups := count / literalBits; groups > 0 {
		v.appendFill(groups, bit)
		count -= groups * literalBits
	}
	// Remainder starts a fresh pending literal.
	for i := uint64(0); i < count; i++ {
		if bit {
			v.active |= 1 << uint(v.activeBits)
		}
		v.activeBits++
	}
}

// flush encodes the (full) pending literal, degrading it to a fill word
// when it is all zeros or all ones.
func (v *Vector) flush() {
	switch v.active {
	case 0:
		v.appendFill(1, false)
	case literalAll:
		v.appendFill(1, true)
	default:
		v.words = append(v.words, v.active)
	}
	v.active = 0
	v.activeBits = 0
}

// appendFill encodes `groups` groups of identical bits, merging with a
// preceding fill of the same polarity.
func (v *Vector) appendFill(groups uint64, bit bool) {
	for groups > 0 {
		g := groups
		if n := len(v.words); n > 0 {
			last := v.words[n-1]
			if last&fillFlag != 0 && (last&fillOne != 0) == bit {
				room := uint64(maxGroups - last&maxGroups)
				if room > 0 {
					add := g
					if add > room {
						add = room
					}
					v.words[n-1] = last + uint32(add)
					g -= add
					groups -= add
					if g == 0 {
						continue
					}
				}
			}
		}
		chunk := g
		if chunk > uint64(maxGroups) {
			chunk = uint64(maxGroups)
		}
		w := fillFlag | uint32(chunk)
		if bit {
			w |= fillOne
		}
		v.words = append(v.words, w)
		groups -= chunk
	}
}

// ForEachSet calls f with every set bit position in ascending order and
// returns the number of words examined (the probe count).
func (v *Vector) ForEachSet(f func(pos uint64)) int {
	probes := 0
	var pos uint64
	for _, w := range v.words {
		probes++
		if w&fillFlag == 0 {
			payload := w
			for payload != 0 {
				tz := bits.TrailingZeros32(payload)
				f(pos + uint64(tz))
				payload &= payload - 1
			}
			pos += literalBits
			continue
		}
		span := uint64(w&maxGroups) * literalBits
		if w&fillOne != 0 {
			for i := uint64(0); i < span; i++ {
				f(pos + i)
			}
		}
		pos += span
	}
	if v.activeBits > 0 {
		probes++
		payload := v.active
		for payload != 0 {
			tz := bits.TrailingZeros32(payload)
			f(pos + uint64(tz))
			payload &= payload - 1
		}
	}
	return probes
}

// OrInto decodes the vector and ORs its bits into dst, a plain word
// bitmap of at least Len() bits. It returns the number of WAH words
// examined. This is the id-aligned result bitvector merge described in
// Section 6.3 of the imprints paper.
func (v *Vector) OrInto(dst []uint64) int {
	probes := 0
	var pos uint64
	for _, w := range v.words {
		probes++
		if w&fillFlag == 0 {
			orPayload(dst, pos, w)
			pos += literalBits
			continue
		}
		span := uint64(w&maxGroups) * literalBits
		if w&fillOne != 0 {
			setRun(dst, pos, span)
		}
		pos += span
	}
	if v.activeBits > 0 {
		probes++
		orPayload(dst, pos, v.active)
	}
	return probes
}

// orPayload ORs a 31-bit literal payload at bit offset pos into dst.
func orPayload(dst []uint64, pos uint64, payload uint32) {
	if payload == 0 {
		return
	}
	w := pos >> 6
	off := pos & 63
	dst[w] |= uint64(payload) << off
	if off > 33 && w+1 < uint64(len(dst)) {
		// 64-off < 31: the payload straddles a word boundary. A pending
		// (partial) literal near the end of the bitmap may nominally
		// straddle past the last word, but its bits there are zero, so
		// skipping the out-of-range word is sound.
		dst[w+1] |= uint64(payload) >> (64 - off)
	}
}

// setRun sets bits [pos, pos+span) in dst.
func setRun(dst []uint64, pos, span uint64) {
	if span == 0 {
		return
	}
	end := pos + span // exclusive
	fw, lw := pos>>6, (end-1)>>6
	fo, lo := pos&63, (end-1)&63
	if fw == lw {
		dst[fw] |= (^uint64(0) << fo) & (^uint64(0) >> (63 - lo))
		return
	}
	dst[fw] |= ^uint64(0) << fo
	for i := fw + 1; i < lw; i++ {
		dst[i] = ^uint64(0)
	}
	dst[lw] |= ^uint64(0) >> (63 - lo)
}

// Count returns the number of set bits.
func (v *Vector) Count() uint64 {
	var c uint64
	for _, w := range v.words {
		if w&fillFlag == 0 {
			c += uint64(bits.OnesCount32(w))
			continue
		}
		if w&fillOne != 0 {
			c += uint64(w&maxGroups) * literalBits
		}
	}
	c += uint64(bits.OnesCount32(v.active))
	return c
}

// Validate checks internal consistency (used by tests and after
// deserialization in future formats).
func (v *Vector) Validate() error {
	var bits uint64
	for _, w := range v.words {
		if w&fillFlag == 0 {
			bits += literalBits
			continue
		}
		if w&maxGroups == 0 {
			return fmt.Errorf("wah: zero-length fill word")
		}
		bits += uint64(w&maxGroups) * literalBits
	}
	bits += uint64(v.activeBits)
	if bits != v.nbits {
		return fmt.Errorf("wah: encoded %d bits, recorded %d", bits, v.nbits)
	}
	return nil
}
