package wah

import (
	"math/bits"

	"repro/internal/coltype"
	"repro/internal/histogram"
)

// BitmapIndex is the bit-binned, WAH-compressed bitmap comparator of the
// paper's evaluation: one compressed bit vector per histogram bin; a
// value sets the bit at its row position in the vector of its bin. The
// binning is identical to the one the imprints index uses.
type BitmapIndex[V coltype.Value] struct {
	col  []V
	hist *histogram.Histogram[V]
	vecs []Vector // one per bin
	n    int
}

// Options configures bitmap construction.
type Options struct {
	// SampleSize, Seed and CountDuplicates configure the shared binning;
	// see histogram.Options.
	SampleSize      int
	Seed            uint64
	CountDuplicates bool
}

// Build constructs the bitmap index over col. It panics if col is empty.
func Build[V coltype.Value](col []V, opts Options) *BitmapIndex[V] {
	if len(col) == 0 {
		panic("wah: empty column")
	}
	hist := histogram.Build(col, histogram.Options{
		SampleSize:      opts.SampleSize,
		Seed:            opts.Seed,
		CountDuplicates: opts.CountDuplicates,
	})
	return BuildWithHistogram(col, hist)
}

// BuildWithHistogram constructs the bitmap index over col using a
// pre-built (typically shared with imprints) histogram.
func BuildWithHistogram[V coltype.Value](col []V, hist *histogram.Histogram[V]) *BitmapIndex[V] {
	if len(col) == 0 {
		panic("wah: empty column")
	}
	ix := &BitmapIndex[V]{
		col:  col,
		hist: hist,
		vecs: make([]Vector, hist.Bins),
		n:    len(col),
	}
	// Each row sets one bit in exactly one bin vector. Every vector
	// tracks its own length, so the zero-gap before each set bit is
	// appended lazily and the vectors stay run-compressed.
	for row, v := range col {
		b := hist.Bin(v)
		vec := &ix.vecs[b]
		vec.AppendRun(uint64(row)-vec.nbits, false)
		vec.AppendBit(true)
	}
	// Pad all vectors to the column length.
	for b := range ix.vecs {
		vec := &ix.vecs[b]
		vec.AppendRun(uint64(len(col))-vec.nbits, false)
	}
	return ix
}

// Len returns the number of rows covered.
func (ix *BitmapIndex[V]) Len() int { return ix.n }

// Bins returns the number of bin vectors.
func (ix *BitmapIndex[V]) Bins() int { return ix.hist.Bins }

// Histogram exposes the shared binning.
func (ix *BitmapIndex[V]) Histogram() *histogram.Histogram[V] { return ix.hist }

// Words returns the total number of encoded WAH words across all bins.
func (ix *BitmapIndex[V]) Words() int {
	w := 0
	for b := range ix.vecs {
		w += ix.vecs[b].Words()
	}
	return w
}

// SizeBytes returns the index footprint: compressed vectors plus the bin
// borders (charged identically to imprints for fairness).
func (ix *BitmapIndex[V]) SizeBytes() int64 {
	s := int64(histogram.MaxBins * coltype.Width[V]())
	for b := range ix.vecs {
		s += ix.vecs[b].SizeBytes()
	}
	return s
}

// QueryStats mirrors core.QueryStats: Probes counts WAH words examined,
// Comparisons counts candidate value checks.
type QueryStats struct {
	Probes      uint64
	Comparisons uint64
	BinsProbed  uint64
}

// RangeIDs returns ascending ids of values in [low, high).
//
// Bins fully inside the range contribute their rows directly; the (at
// most two) border bins contribute candidates that are checked against
// the column. Per-bin results are merged through id-aligned bitvectors
// as Section 6.3 of the imprints paper describes, so ids come out
// ordered without a final sort.
func (ix *BitmapIndex[V]) RangeIDs(low, high V, res []uint32) ([]uint32, QueryStats) {
	var st QueryStats
	words := (ix.n + 63) / 64
	sure := make([]uint64, words)
	check := make([]uint64, words)
	anyCheck := false
	h := ix.hist
	for b := 0; b < h.Bins; b++ {
		lo, hi, loUnb, hiUnb := h.BinBounds(b)
		overlap := (loUnb || lo < high) && (hiUnb || hi > low)
		if !overlap {
			continue
		}
		contained := !loUnb && lo >= low && !hiUnb && hi <= high
		st.BinsProbed++
		if contained {
			st.Probes += uint64(ix.vecs[b].OrInto(sure))
		} else {
			st.Probes += uint64(ix.vecs[b].OrInto(check))
			anyCheck = true
		}
	}
	col := ix.col
	for wi := 0; wi < words; wi++ {
		s := sure[wi]
		var c uint64
		if anyCheck {
			c = check[wi]
		}
		both := s | c
		base := uint32(wi << 6)
		for both != 0 {
			tz := bits.TrailingZeros64(both)
			both &= both - 1
			id := base + uint32(tz)
			if s&(1<<uint(tz)) != 0 {
				res = append(res, id)
				continue
			}
			st.Comparisons++
			v := col[id]
			if v >= low && v < high {
				res = append(res, id)
			}
		}
	}
	return res, st
}

// CountRange returns the number of values in [low, high).
func (ix *BitmapIndex[V]) CountRange(low, high V) (uint64, QueryStats) {
	ids, st := ix.RangeIDs(low, high, nil)
	return uint64(len(ids)), st
}

// BinVector exposes the compressed vector of one bin (for tests and the
// harness's per-structure statistics).
func (ix *BitmapIndex[V]) BinVector(b int) *Vector { return &ix.vecs[b] }
