package bitvec

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	v := New(0)
	if v.Len() != 0 {
		t.Fatalf("Len = %d, want 0", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d, want 0", v.Count())
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		v.Set(i)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Errorf("Count = %d, want %d", v.Count(), len(idx))
	}
	for _, i := range idx {
		v.Clear(i)
	}
	if v.Count() != 0 {
		t.Errorf("Count after clear = %d, want 0", v.Count())
	}
}

func TestSetRunSingleWord(t *testing.T) {
	v := New(64)
	v.SetRun(3, 5) // bits 3..7
	for i := 0; i < 64; i++ {
		want := i >= 3 && i < 8
		if v.Get(i) != want {
			t.Errorf("bit %d = %v, want %v", i, v.Get(i), want)
		}
	}
}

func TestSetRunCrossWord(t *testing.T) {
	v := New(256)
	v.SetRun(60, 140) // bits 60..199
	for i := 0; i < 256; i++ {
		want := i >= 60 && i < 200
		if v.Get(i) != want {
			t.Errorf("bit %d = %v, want %v", i, v.Get(i), want)
		}
	}
	if v.Count() != 140 {
		t.Errorf("Count = %d, want 140", v.Count())
	}
}

func TestSetRunZeroCount(t *testing.T) {
	v := New(10)
	v.SetRun(5, 0)
	if v.Count() != 0 {
		t.Errorf("Count = %d, want 0", v.Count())
	}
}

func TestSetRunOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v := New(10)
	v.SetRun(5, 6)
}

func TestBooleanOps(t *testing.T) {
	a := New(130)
	b := New(130)
	a.Set(0)
	a.Set(100)
	b.Set(100)
	b.Set(129)

	or := New(130)
	or.Or(a)
	or.Or(b)
	if or.Count() != 3 || !or.Get(0) || !or.Get(100) || !or.Get(129) {
		t.Errorf("Or wrong: %v", or)
	}

	and := New(130)
	and.Or(a)
	and.And(b)
	if and.Count() != 1 || !and.Get(100) {
		t.Errorf("And wrong: %v", and)
	}

	andnot := New(130)
	andnot.Or(a)
	andnot.AndNot(b)
	if andnot.Count() != 1 || !andnot.Get(0) {
		t.Errorf("AndNot wrong: %v", andnot)
	}

	xor := New(130)
	xor.Or(a)
	xor.Xor(b)
	if xor.Count() != 2 || !xor.Get(0) || !xor.Get(129) {
		t.Errorf("Xor wrong: %v", xor)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).Or(New(11))
}

func TestForEachSetOrder(t *testing.T) {
	v := New(300)
	want := []int{2, 63, 64, 191, 192, 299}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAppendSetIDs(t *testing.T) {
	v := New(70)
	v.Set(1)
	v.Set(69)
	ids := v.AppendSetIDs(nil, 1000)
	if len(ids) != 2 || ids[0] != 1001 || ids[1] != 1069 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestStringRendering(t *testing.T) {
	v := New(5)
	v.Set(0)
	v.Set(3)
	if got := v.String(); got != "x..x." {
		t.Errorf("String = %q, want %q", got, "x..x.")
	}
}

func TestHammingDistance(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(70)
	b.Set(1)
	b.Set(71)
	if d := a.HammingDistance(b); d != 2 {
		t.Errorf("HammingDistance = %d, want 2", d)
	}
	if d := a.HammingDistance(a); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

func TestEqual(t *testing.T) {
	a := New(100)
	b := New(100)
	if !a.Equal(b) {
		t.Error("empty vectors should be equal")
	}
	a.Set(50)
	if a.Equal(b) {
		t.Error("different vectors reported equal")
	}
	b.Set(50)
	if !a.Equal(b) {
		t.Error("same vectors reported unequal")
	}
	if a.Equal(New(101)) {
		t.Error("different lengths reported equal")
	}
}

func TestReset(t *testing.T) {
	v := New(100)
	v.SetRun(0, 100)
	v.Reset()
	if v.Count() != 0 {
		t.Errorf("Count after Reset = %d", v.Count())
	}
	if v.Len() != 100 {
		t.Errorf("Len after Reset = %d", v.Len())
	}
}

// Property: a Vector agrees with a map-of-bools model under random Set,
// Clear and SetRun operations.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		const n = 257
		v := New(n)
		model := make(map[int]bool)
		for op := 0; op < int(nOps); op++ {
			switch rng.IntN(3) {
			case 0:
				i := rng.IntN(n)
				v.Set(i)
				model[i] = true
			case 1:
				i := rng.IntN(n)
				v.Clear(i)
				delete(model, i)
			case 2:
				from := rng.IntN(n)
				count := rng.IntN(n - from)
				v.SetRun(from, count)
				for i := from; i < from+count; i++ {
					model[i] = true
				}
			}
		}
		if v.Count() != len(model) {
			return false
		}
		for i := 0; i < n; i++ {
			if v.Get(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Count equals the number of positions visited by ForEachSet and
// positions are strictly ascending.
func TestQuickForEachMatchesCount(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		n := 1 + rng.IntN(500)
		v := New(n)
		for i := 0; i < n/3; i++ {
			v.Set(rng.IntN(n))
		}
		prev := -1
		cnt := 0
		ok := true
		v.ForEachSet(func(i int) {
			if i <= prev {
				ok = false
			}
			prev = i
			cnt++
		})
		return ok && cnt == v.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CountRange matches a per-bit count over every random
// subrange, including word-boundary-straddling and empty ones.
func TestQuickCountRange(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 1 + rng.IntN(400)
		v := New(n)
		for i := 0; i < n/2; i++ {
			v.Set(rng.IntN(n))
		}
		for trial := 0; trial < 20; trial++ {
			from := rng.IntN(n + 1)
			to := rng.IntN(n + 1)
			want := 0
			for i := from; i < to; i++ {
				if v.Get(i) {
					want++
				}
			}
			if v.CountRange(from, to) != want {
				return false
			}
		}
		return v.CountRange(0, n) == v.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCountRangeBounds(t *testing.T) {
	v := New(130)
	v.Set(0)
	v.Set(64)
	v.Set(129)
	if got := v.CountRange(0, 130); got != 3 {
		t.Errorf("full CountRange = %d, want 3", got)
	}
	if got := v.CountRange(64, 65); got != 1 {
		t.Errorf("CountRange(64,65) = %d, want 1", got)
	}
	if got := v.CountRange(65, 129); got != 0 {
		t.Errorf("CountRange(65,129) = %d, want 0", got)
	}
	for _, r := range [][2]int{{-1, 10}, {0, 131}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CountRange(%d,%d) did not panic", r[0], r[1])
				}
			}()
			v.CountRange(r[0], r[1])
		}()
	}
}

func TestWord(t *testing.T) {
	v := New(130)
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(129)
	if got := v.Word(0); got != 1|1<<63 {
		t.Errorf("Word(0) = %#x, want %#x", got, uint64(1|1<<63))
	}
	if got := v.Word(1); got != 1 {
		t.Errorf("Word(1) = %#x, want 1", got)
	}
	// Ragged tail word: only bit 129-128=1 set, high bits zero.
	if got := v.Word(2); got != 2 {
		t.Errorf("Word(2) = %#x, want 2", got)
	}
}

func TestLiveMask64(t *testing.T) {
	v := New(150)
	v.Set(3)
	v.Set(64)
	v.Set(149)
	// Full block, one deleted lane.
	if got, want := v.LiveMask64(0, 64), ^uint64(0)&^(1<<3); got != want {
		t.Errorf("LiveMask64(0,64) = %#x, want %#x", got, want)
	}
	// Full block with its first lane deleted.
	if got, want := v.LiveMask64(64, 64), ^uint64(0)&^uint64(1); got != want {
		t.Errorf("LiveMask64(64,64) = %#x, want %#x", got, want)
	}
	// Ragged tail block: 150-128 = 22 lanes, lane 21 deleted.
	if got, want := v.LiveMask64(128, 22), (uint64(1)<<22-1)&^(1<<21); got != want {
		t.Errorf("LiveMask64(128,22) = %#x, want %#x", got, want)
	}
	// Short n inside a full word still masks lanes >= n.
	if got, want := v.LiveMask64(0, 4), uint64(0b0111); got != want {
		t.Errorf("LiveMask64(0,4) = %#x, want %#x", got, want)
	}
	for _, bad := range [][2]int{{1, 64}, {0, 0}, {0, 65}, {128, 23}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LiveMask64(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			v.LiveMask64(bad[0], bad[1])
		}()
	}
}

func TestLiveMask64AgainstGet(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	n := 777
	v := New(n)
	for i := 0; i < n/3; i++ {
		v.Set(rng.IntN(n))
	}
	for from := 0; from < n; from += 64 {
		lanes := min(64, n-from)
		m := v.LiveMask64(from, lanes)
		for i := 0; i < 64; i++ {
			want := i < lanes && !v.Get(from+i)
			if got := m&(1<<uint(i)) != 0; got != want {
				t.Fatalf("LiveMask64(%d,%d) lane %d = %v, want %v", from, lanes, i, got, want)
			}
		}
	}
}
