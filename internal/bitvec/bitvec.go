// Package bitvec provides dense, uncompressed bit vectors backed by
// []uint64 words. They are the workhorse behind the WAH bitmap comparator
// (decode target and id-aligned result merging, Section 6.3 of the paper)
// and are also used for test oracles.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length dense bit vector. The zero value is an empty
// vector; use New to pre-size one.
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// New returns a vector of n bits, all unset.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing words. The caller must not change the length.
func (v *Vector) Words() []uint64 { return v.words }

// SizeBytes returns the memory footprint of the payload in bytes.
func (v *Vector) SizeBytes() int64 { return int64(len(v.words)) * 8 }

// Set sets bit i.
func (v *Vector) Set(i int) {
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear unsets bit i.
func (v *Vector) Clear(i int) {
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Word returns the i-th backing word: bits [64i, 64i+64) of the vector,
// least-significant bit first. For the last word of a vector whose
// length is not a multiple of 64, bits past Len are zero (Set refuses
// them). Word is the word-granular counterpart of Get for callers that
// consume 64 aligned bits per load; LiveMask64 builds the inverted,
// length-clamped variant the vectorized executor folds into selection
// masks.
func (v *Vector) Word(i int) uint64 { return v.words[i] }

// LiveMask64 returns the live-lane mask of the n-row block starting at
// the 64-aligned bit position from: bit i of the result is set iff bit
// from+i of the vector is CLEAR (a live, not-deleted row), for
// 0 <= i < n; bits at and above n are zero. n must be in [1, 64] and
// from+n must not exceed Len — the ragged tail block of a vector simply
// passes its shorter n. One load, one AND-NOT: this is how the deleted
// bitmap folds into a 64-row selection mask.
//
//imprintvet:hotpath
func (v *Vector) LiveMask64(from, n int) uint64 {
	if from&63 != 0 {
		//imprintvet:allow hotalloc formats only on the panic path, never in steady state
		panic(fmt.Sprintf("bitvec: LiveMask64 start %d is not 64-aligned", from))
	}
	if n <= 0 || n > 64 || from+n > v.n {
		//imprintvet:allow hotalloc formats only on the panic path, never in steady state
		panic(fmt.Sprintf("bitvec: LiveMask64 [%d, %d+%d) out of range 0..%d", from, from, n, v.n))
	}
	return (^uint64(0) >> (64 - uint(n))) &^ v.Word(from>>6)
}

// Reset unsets every bit, keeping the allocation.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits in [from, to), one masked
// popcount per word — no per-bit probing. An empty or inverted range
// counts zero.
//
//imprintvet:hotpath
func (v *Vector) CountRange(from, to int) int {
	if from < 0 || to > v.n {
		//imprintvet:allow hotalloc formats only on the panic path, never in steady state
		panic(fmt.Sprintf("bitvec: CountRange [%d, %d) out of range 0..%d", from, to, v.n))
	}
	if from >= to {
		return 0
	}
	fw, lw := from>>6, (to-1)>>6
	loMask := ^uint64(0) << (uint(from) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(to-1) & 63))
	if fw == lw {
		return bits.OnesCount64(v.words[fw] & loMask & hiMask)
	}
	c := bits.OnesCount64(v.words[fw] & loMask)
	for i := fw + 1; i < lw; i++ {
		c += bits.OnesCount64(v.words[i])
	}
	return c + bits.OnesCount64(v.words[lw]&hiMask)
}

// Or sets v = v | o. Both vectors must have the same length.
func (v *Vector) Or(o *Vector) {
	v.checkLen(o)
	for i, w := range o.words {
		v.words[i] |= w
	}
}

// And sets v = v & o. Both vectors must have the same length.
func (v *Vector) And(o *Vector) {
	v.checkLen(o)
	for i, w := range o.words {
		v.words[i] &= w
	}
}

// AndNot sets v = v &^ o. Both vectors must have the same length.
func (v *Vector) AndNot(o *Vector) {
	v.checkLen(o)
	for i, w := range o.words {
		v.words[i] &^= w
	}
}

// Xor sets v = v ^ o. Both vectors must have the same length.
func (v *Vector) Xor(o *Vector) {
	v.checkLen(o)
	for i, w := range o.words {
		v.words[i] ^= w
	}
}

func (v *Vector) checkLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, o.n))
	}
}

// Equal reports whether two vectors have identical length and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// SetRun sets bits [from, from+count).
func (v *Vector) SetRun(from, count int) {
	if count <= 0 {
		return
	}
	to := from + count // exclusive
	if to > v.n {
		panic("bitvec: SetRun out of range")
	}
	fw, lw := from>>6, (to-1)>>6
	fo, lo := uint(from)&63, uint(to-1)&63
	if fw == lw {
		v.words[fw] |= (^uint64(0) << fo) & (^uint64(0) >> (63 - lo))
		return
	}
	v.words[fw] |= ^uint64(0) << fo
	for i := fw + 1; i < lw; i++ {
		v.words[i] = ^uint64(0)
	}
	v.words[lw] |= ^uint64(0) >> (63 - lo)
}

// ForEachSet calls f with the position of every set bit in ascending
// order.
func (v *Vector) ForEachSet(f func(i int)) {
	for wi, w := range v.words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			f(base + tz)
			w &= w - 1
		}
	}
}

// AppendSetIDs appends the position of every set bit, offset by base, to
// dst and returns the extended slice. Positions are appended in ascending
// order.
func (v *Vector) AppendSetIDs(dst []uint32, base uint32) []uint32 {
	for wi, w := range v.words {
		wbase := base + uint32(wi<<6)
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, wbase+uint32(tz))
			w &= w - 1
		}
	}
	return dst
}

// String renders the vector as 'x'/'.' runes, matching the paper's
// Figure 3 rendering convention (least-significant bit first).
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('x')
		} else {
			sb.WriteByte('.')
		}
	}
	return sb.String()
}

// HammingDistance returns the number of differing bits between v and o
// (the paper's "edit distance" between two bit vectors: the bits that need
// to be set plus unset to turn one into the other).
func (v *Vector) HammingDistance(o *Vector) int {
	v.checkLen(o)
	d := 0
	for i, w := range v.words {
		d += bits.OnesCount64(w ^ o.words[i])
	}
	return d
}
