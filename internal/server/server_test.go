package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/table"
)

// ordersData is the raw column data behind a test table, kept for
// brute-force oracle evaluation.
type ordersData struct {
	qty   []int64
	price []float64
	pri   []uint8
	city  []string
}

var oracleCities = []string{"Amsterdam", "Athens", "Berlin", "Bern", "Lisbon", "Madrid", "Oslo", "Paris", "Prague", "Rome"}

// newOrdersTable builds a deterministic multi-segment table and keeps
// the raw data for independent result computation.
func newOrdersTable(t testing.TB, rows int, seed int64) (*table.Table, *ordersData) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := &ordersData{
		qty:   make([]int64, rows),
		price: make([]float64, rows),
		pri:   make([]uint8, rows),
		city:  make([]string, rows),
	}
	for i := 0; i < rows; i++ {
		d.qty[i] = int64(rng.Intn(1000))
		d.price[i] = float64(rng.Intn(10000)) / 100
		d.pri[i] = uint8(rng.Intn(5))
		d.city[i] = oracleCities[rng.Intn(len(oracleCities))]
	}
	tb := table.NewWithOptions("orders", table.TableOptions{SegmentRows: 256})
	if err := table.AddColumn(tb, "qty", d.qty, table.Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := table.AddColumn(tb, "price", d.price, table.Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := table.AddColumn(tb, "pri", d.pri, table.Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", d.city, table.Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	return tb, d
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postQuery runs one POST /query and decodes the response body.
func postQuery(t testing.TB, ts *httptest.Server, req QueryRequest) (int, map[string]json.RawMessage) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fields map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&fields); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, fields
}

func rawString(t testing.TB, raw json.RawMessage) string {
	t.Helper()
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("unmarshal %q: %v", raw, err)
	}
	return s
}

func TestQueryEndpointBasics(t *testing.T) {
	tb, d := newOrdersTable(t, 1000, 1)
	_, ts := newTestServer(t, Config{Table: tb, Workers: 2, Parallelism: 1})

	status, fields := postQuery(t, ts, QueryRequest{Query: "select count(*) from orders where qty < 100"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, fields)
	}
	want := 0
	for _, q := range d.qty {
		if q < 100 {
			want++
		}
	}
	if got := string(fields["rows"]); got != fmt.Sprintf("[[%d]]", want) {
		t.Errorf("rows = %s, want [[%d]]", got, want)
	}
	if got := rawString(t, fields["query"]); got != "SELECT count(*) FROM orders WHERE qty < 100" {
		t.Errorf("normalized query = %q", got)
	}
	if string(fields["cached"]) != "false" {
		t.Errorf("first execution reported cached")
	}
	// A differently-spelled equivalent statement hits the cache.
	status, fields = postQuery(t, ts, QueryRequest{Query: "SELECT   COUNT( * )   FROM orders WHERE qty<100"})
	if status != http.StatusOK || string(fields["cached"]) != "true" {
		t.Errorf("equivalent spelling missed the cache: status %d cached %s", status, fields["cached"])
	}
	// Parameterized query with JSON binds.
	status, fields = postQuery(t, ts, QueryRequest{
		Query:  "select count(*) from orders where city in $cs",
		Params: map[string]any{"cs": []string{"Oslo", "Rome"}},
	})
	if status != http.StatusOK {
		t.Fatalf("param query status %d: %v", status, fields)
	}
	want = 0
	for _, c := range d.city {
		if c == "Oslo" || c == "Rome" {
			want++
		}
	}
	if got := string(fields["rows"]); got != fmt.Sprintf("[[%d]]", want) {
		t.Errorf("param rows = %s, want [[%d]]", got, want)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	tb, _ := newOrdersTable(t, 300, 2)
	_, ts := newTestServer(t, Config{Table: tb, Workers: 1, Parallelism: 1})

	// Parse errors return 400 with a position.
	status, fields := postQuery(t, ts, QueryRequest{Query: "select * from orders where"})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d", status)
	}
	if string(fields["position"]) != "27" {
		t.Errorf("position = %s, want 27", fields["position"])
	}
	// Bind errors return 400.
	status, _ = postQuery(t, ts, QueryRequest{Query: "select * from orders where qty = $q"})
	if status != http.StatusBadRequest {
		t.Errorf("unbound param status %d", status)
	}
	// Malformed body returns 400.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", resp.StatusCode)
	}
	// Wrong method is rejected by the mux.
	resp, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status %d", resp.StatusCode)
	}
}

// TestLRUEvictionOrderAndReprepare pins the statement cache's LRU
// behavior: recency order, eviction of the least recently used entry,
// and transparent re-prepare on miss.
func TestLRUEvictionOrderAndReprepare(t *testing.T) {
	tb, _ := newOrdersTable(t, 300, 3)
	s, ts := newTestServer(t, Config{Table: tb, Workers: 1, CacheSize: 2, Parallelism: 1})

	qA := "select count(*) from orders where qty < 100"
	qB := "select count(*) from orders where qty < 200"
	qC := "select count(*) from orders where qty < 300"
	keyOf := func(q string) string {
		status, fields := postQuery(t, ts, QueryRequest{Query: q})
		if status != http.StatusOK {
			t.Fatalf("query %q status %d", q, status)
		}
		return rawString(t, fields["query"])
	}
	kA, kB := keyOf(qA), keyOf(qB)
	if got := s.cache.keys(); len(got) != 2 || got[0] != kB || got[1] != kA {
		t.Fatalf("cache order %v, want [%s %s]", got, kB, kA)
	}
	// Touching A refreshes it to the front...
	keyOf(qA)
	if got := s.cache.keys(); got[0] != kA || got[1] != kB {
		t.Fatalf("cache order after touch %v", got)
	}
	// ...so inserting C evicts B, the least recently used.
	kC := keyOf(qC)
	if got := s.cache.keys(); len(got) != 2 || got[0] != kC || got[1] != kA {
		t.Fatalf("cache order after eviction %v, want [%s %s]", got, kC, kA)
	}
	st := s.Stats()
	if st.Cache.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Cache.Evictions)
	}
	// B re-prepares on miss and still answers correctly.
	status, fields := postQuery(t, ts, QueryRequest{Query: qB})
	if status != http.StatusOK || string(fields["cached"]) != "false" {
		t.Fatalf("re-prepared B: status %d cached %s", status, fields["cached"])
	}
	if got := s.Stats(); got.Cache.Evictions != 2 || got.Cache.Size != 2 {
		t.Errorf("after reinsert: evictions %d size %d", got.Cache.Evictions, got.Cache.Size)
	}
	// Counter arithmetic: 6 lookups, 1 hit (the A touch).
	if st.Cache.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Cache.Hits)
	}
}

// TestAdmissionControl fills the worker pool and the accept queue,
// then verifies the next query is rejected up front with 429.
func TestAdmissionControl(t *testing.T) {
	tb, _ := newOrdersTable(t, 300, 4)
	s, ts := newTestServer(t, Config{Table: tb, Workers: 1, QueueDepth: 1, Parallelism: 1})

	release := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	// One job occupies the single worker...
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.submit(func() { close(running); <-release })
	}()
	<-running
	// ...and one occupies the single queue slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.submit(func() {})
	}()
	for len(s.jobs) == 0 {
		time.Sleep(time.Millisecond)
	}

	status, fields := postQuery(t, ts, QueryRequest{Query: "select count(*) from orders"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%v)", status, fields)
	}
	if !strings.Contains(rawString(t, fields["error"]), "overloaded") {
		t.Errorf("error body %s", fields["error"])
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	// With capacity back, the same query is served.
	if status, _ := postQuery(t, ts, QueryRequest{Query: "select count(*) from orders"}); status != http.StatusOK {
		t.Errorf("post-release status %d", status)
	}
}

// TestDeadlineCancellation pins the 408 path: a negative timeout_ms
// yields an already-expired deadline, and the execution reports
// cancellation without scanning (the zero-work guarantee itself is
// pinned by the table layer's QueryStats test).
func TestDeadlineCancellation(t *testing.T) {
	tb, _ := newOrdersTable(t, 2000, 5)
	s, ts := newTestServer(t, Config{Table: tb, Workers: 2, Parallelism: 2})

	status, fields := postQuery(t, ts, QueryRequest{
		Query:     "select count(*) from orders where qty < 500",
		TimeoutMs: -1,
	})
	if status != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408 (%v)", status, fields)
	}
	if msg := rawString(t, fields["error"]); !strings.Contains(msg, "deadline") && !strings.Contains(msg, "cancel") {
		t.Errorf("error %q does not mention cancellation", msg)
	}
	if got := s.Stats().Canceled; got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
	// The same query without the timeout succeeds (statement unharmed
	// in the cache).
	status, fields = postQuery(t, ts, QueryRequest{Query: "select count(*) from orders where qty < 500"})
	if status != http.StatusOK || string(fields["cached"]) != "true" {
		t.Errorf("post-cancel status %d cached %s", status, fields["cached"])
	}
}

func TestStatsAndHealthz(t *testing.T) {
	tb, _ := newOrdersTable(t, 300, 6)
	_, ts := newTestServer(t, Config{Table: tb, Workers: 1, Parallelism: 1})
	for i := 0; i < 3; i++ {
		postQuery(t, ts, QueryRequest{Query: "select count(*) from orders"})
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Served != 3 || st.Cache.Hits != 2 || st.Cache.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
	q := st.Endpoints["/query"]
	if q.Count != 3 || len(q.Buckets) != len(BucketLabels) {
		t.Errorf("/query endpoint stats %+v", q)
	}
	var sum uint64
	for _, b := range q.Buckets {
		sum += b
	}
	if sum != q.Count {
		t.Errorf("histogram buckets sum %d != count %d", sum, q.Count)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["status"] != "ok" || hz["table"] != "orders" {
		t.Errorf("healthz %v", hz)
	}
}

// TestGracefulShutdownDrains serves imprintd's shutdown sequence in
// miniature: with the worker busy, an in-flight request is queued,
// Shutdown is initiated, the request still completes with 200, and the
// final stats line reflects it.
func TestGracefulShutdownDrains(t *testing.T) {
	tb, _ := newOrdersTable(t, 300, 7)
	var logged []string
	var logMu sync.Mutex
	s, err := New(Config{Table: tb, Workers: 1, QueueDepth: 4, Parallelism: 1,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			logMu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)

	release := make(chan struct{})
	running := make(chan struct{})
	go s.submit(func() { close(running); <-release })
	<-running

	// The HTTP query sits behind the blocked worker.
	type result struct {
		status int
		body   map[string]json.RawMessage
	}
	resCh := make(chan result, 1)
	go func() {
		st, fields := postQuery(t, hs, QueryRequest{Query: "select count(*) from orders"})
		resCh <- result{st, fields}
	}()
	for len(s.jobs) == 0 {
		time.Sleep(time.Millisecond)
	}

	// Initiate draining, then unblock the worker: the in-flight query
	// must complete.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- hs.Config.Shutdown(ctx)
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)

	r := <-resCh
	if r.status != http.StatusOK {
		t.Fatalf("in-flight query during shutdown: status %d (%v)", r.status, r.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	s.Close()
	s.LogStats()
	logMu.Lock()
	defer logMu.Unlock()
	if len(logged) == 0 || !strings.Contains(logged[len(logged)-1], "served 1 queries") {
		t.Errorf("shutdown stats log %v", logged)
	}
}

// TestShardBacklogShedding pins the sharded admission-control path: a
// query arriving while the hottest shard's delta backlog exceeds
// Config.MaxShardBacklog is shed with 429, and serving resumes once
// sealing drains the backlog below the limit.
func TestShardBacklogShedding(t *testing.T) {
	tb := table.NewWithOptions("orders", table.TableOptions{SegmentRows: 256, Shards: 4})
	if err := table.AddColumn(tb, "qty", []int64{}, table.Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.EnableDeltaIngest(table.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	s, ts := newTestServer(t, Config{Table: tb, Workers: 1, Parallelism: 1, MaxShardBacklog: 100})

	// One serial batch per segment: the first lands whole on one shard,
	// pushing that shard's backlog past the limit.
	b := tb.NewBatch()
	if err := table.Append(b, "qty", make([]int64, 256)); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := tb.IngestStats().MaxShardDeltaRows(); got != 256 {
		t.Fatalf("setup: hottest shard buffers %d rows", got)
	}

	status, fields := postQuery(t, ts, QueryRequest{Query: "select count(*) from orders"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%v)", status, fields)
	}
	if !strings.Contains(rawString(t, fields["error"]), "ingest backlog") {
		t.Errorf("error body %s", fields["error"])
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	// /stats reports the per-shard depths that triggered the shed.
	st := s.Stats()
	if len(st.Ingest.ShardDeltaRows) != 4 || st.Ingest.MaxShardDeltaRows() != 256 {
		t.Errorf("ingest stats %+v", st.Ingest)
	}

	// Sealing drains every shard; the same query is served again.
	tb.SealDelta()
	if got := tb.IngestStats().MaxShardDeltaRows(); got != 0 {
		t.Fatalf("seal left %d buffered rows", got)
	}
	status, fields = postQuery(t, ts, QueryRequest{Query: "select count(*) from orders"})
	if status != http.StatusOK {
		t.Fatalf("post-seal status %d (%v)", status, fields)
	}
}
