package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/table"
)

// POST /insert commits one column-major batch into the served table:
// the body carries one JSON array per column, all the same length, and
// the response is sent only after the batch is committed — with a WAL
// attached, only after it is durable under the configured fsync
// policy. Inserts share the query worker pool, so admission control
// and backlog shedding apply to writes exactly as to reads.

// InsertRequest is the POST /insert body.
type InsertRequest struct {
	// Columns maps column name to its new values, column-major. Every
	// table column must be present and all arrays must agree on length.
	Columns map[string][]any `json:"columns"`
}

// InsertResponse is the POST /insert success body.
type InsertResponse struct {
	Rows      int   `json:"rows"`       // rows committed by this request
	TotalRows int   `json:"total_rows"` // table rows after the commit
	ElapsedUs int64 `json:"elapsed_us"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		s.counters.errors.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if len(req.Columns) == 0 {
		s.counters.errors.Add(1)
		writeError(w, http.StatusBadRequest, errors.New("empty insert: no columns"))
		return
	}
	if limit := s.cfg.MaxShardBacklog; limit > 0 {
		if depth := s.tbl.IngestStats().MaxShardDeltaRows(); depth > limit {
			s.counters.rejected.Add(1)
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("ingest backlog: hottest shard buffers %d delta rows (limit %d)", depth, limit))
			return
		}
	}
	cols := s.tbl.Columns()
	known := map[string]bool{}
	for _, name := range cols {
		known[name] = true
	}
	for name := range req.Columns {
		if !known[name] {
			s.counters.errors.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown column %q", name))
			return
		}
	}
	b := s.tbl.NewBatch()
	rows := -1
	for _, name := range cols {
		vals, ok := req.Columns[name]
		if !ok {
			s.counters.errors.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing column %q", name))
			return
		}
		if rows == -1 {
			rows = len(vals)
		}
		if err := stageColumn(s.tbl, b, name, vals); err != nil {
			s.counters.errors.Add(1)
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	var execErr error
	start := time.Now()
	admitted := s.submit(func() { execErr = b.Commit() })
	if !admitted {
		s.counters.rejected.Add(1)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("server overloaded: %d executing, %d queued", s.cfg.Workers, s.cfg.QueueDepth))
		return
	}
	if execErr != nil {
		s.counters.errors.Add(1)
		writeError(w, http.StatusInternalServerError, execErr)
		return
	}
	s.counters.inserted.Add(uint64(rows))
	writeJSON(w, http.StatusOK, InsertResponse{
		Rows:      rows,
		TotalRows: s.tbl.Rows(),
		ElapsedUs: time.Since(start).Microseconds(),
	})
}

// stageColumn converts one column's JSON values to the column's type
// and stages them on the batch.
func stageColumn(tbl *table.Table, b *table.Batch, name string, vals []any) error {
	typ, err := tbl.ColumnType(name)
	if err != nil {
		return err
	}
	switch typ {
	case "int8":
		return stageInts[int8](b, name, typ, vals)
	case "int16":
		return stageInts[int16](b, name, typ, vals)
	case "int32":
		return stageInts[int32](b, name, typ, vals)
	case "int64":
		return stageInts[int64](b, name, typ, vals)
	case "uint8":
		return stageUints[uint8](b, name, typ, vals)
	case "uint16":
		return stageUints[uint16](b, name, typ, vals)
	case "uint32":
		return stageUints[uint32](b, name, typ, vals)
	case "uint64":
		return stageUints[uint64](b, name, typ, vals)
	case "float32":
		return stageFloats[float32](b, name, typ, vals)
	case "float64":
		return stageFloats[float64](b, name, typ, vals)
	case "string":
		out := make([]string, len(vals))
		for i, v := range vals {
			sv, ok := v.(string)
			if !ok {
				return fmt.Errorf("column %q row %d: wants string, got %T", name, i, v)
			}
			out[i] = sv
		}
		return b.AppendStrings(name, out)
	}
	return fmt.Errorf("column %q has unsupported type %s", name, typ)
}

func stageInts[V int8 | int16 | int32 | int64](b *table.Batch, name, typ string, vals []any) error {
	out := make([]V, len(vals))
	for i, v := range vals {
		n, err := asInt64(v)
		if err != nil {
			return fmt.Errorf("column %q row %d: wants %s: %w", name, i, typ, err)
		}
		out[i] = V(n)
		if int64(out[i]) != n {
			return fmt.Errorf("column %q row %d: value %d out of range for %s", name, i, n, typ)
		}
	}
	return table.Append(b, name, out)
}

func stageUints[V uint8 | uint16 | uint32 | uint64](b *table.Batch, name, typ string, vals []any) error {
	out := make([]V, len(vals))
	for i, v := range vals {
		n, err := asInt64(v)
		if err != nil {
			return fmt.Errorf("column %q row %d: wants %s: %w", name, i, typ, err)
		}
		if n < 0 {
			return fmt.Errorf("column %q row %d: negative value %d for %s", name, i, n, typ)
		}
		out[i] = V(n)
		if uint64(out[i]) != uint64(n) {
			return fmt.Errorf("column %q row %d: value %d out of range for %s", name, i, n, typ)
		}
	}
	return table.Append(b, name, out)
}

func stageFloats[V float32 | float64](b *table.Batch, name, typ string, vals []any) error {
	out := make([]V, len(vals))
	for i, v := range vals {
		f, err := asFloat64(v)
		if err != nil {
			return fmt.Errorf("column %q row %d: wants %s: %w", name, i, typ, err)
		}
		out[i] = V(f)
	}
	return table.Append(b, name, out)
}

func asInt64(v any) (int64, error) {
	switch n := v.(type) {
	case json.Number:
		return n.Int64()
	case int64:
		return n, nil
	case int:
		return int64(n), nil
	}
	return 0, fmt.Errorf("got %T", v)
}

func asFloat64(v any) (float64, error) {
	switch n := v.(type) {
	case json.Number:
		return n.Float64()
	case float64:
		return n, nil
	case int64:
		return float64(n), nil
	case int:
		return float64(n), nil
	}
	return 0, fmt.Errorf("got %T", v)
}
