package server

import (
	"sync/atomic"
	"time"

	"repro/table"
)

// latency histogram bucket upper bounds; the last bucket is unbounded.
var bucketBounds = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// BucketLabels names the histogram buckets in ServerStats JSON.
var BucketLabels = []string{"<=0.1ms", "<=1ms", "<=10ms", "<=100ms", "<=1s", ">1s"}

// histogram is a fixed-bucket latency histogram with atomic counters.
type histogram struct {
	counts [6]atomic.Uint64
	total  atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	h.total.Add(1)
	for i, b := range bucketBounds {
		if d <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(bucketBounds)].Add(1)
}

// EndpointStats is one endpoint's request count and latency histogram.
type EndpointStats struct {
	Count   uint64   `json:"count"`
	Buckets []uint64 `json:"latency_buckets"` // aligned with BucketLabels
}

// CacheStats is the prepared-statement cache's counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// ServerStats is the GET /stats snapshot: cumulative counters since
// the server started, plus the served table's ingest health (delta
// rows buffered, seal and merge progress) when delta ingest is on.
type ServerStats struct {
	Served       uint64                     `json:"queries_served"`
	Errors       uint64                     `json:"query_errors"`
	Rejected     uint64                     `json:"rejected"`
	Canceled     uint64                     `json:"canceled"`
	InsertedRows uint64                     `json:"rows_inserted"`
	Cache        CacheStats                 `json:"statement_cache"`
	Ingest       table.IngestStats          `json:"ingest"`
	Degraded     bool                       `json:"degraded"`
	Quarantined  []table.QuarantinedSegment `json:"quarantined,omitempty"`
	BucketLabels []string                   `json:"latency_bucket_labels"`
	Endpoints    map[string]EndpointStats   `json:"endpoints"`
}

// serverCounters aggregates the live atomic counters behind /stats.
type serverCounters struct {
	served   atomic.Uint64 // successful /query executions
	errors   atomic.Uint64 // failed /query and /insert executions
	rejected atomic.Uint64 // admission-control 429s
	canceled atomic.Uint64 // executions ended by deadline or disconnect
	inserted atomic.Uint64 // rows committed via /insert
	query    histogram
	insert   histogram
	explain  histogram
	stats    histogram
	healthz  histogram
}

func (c *serverCounters) endpoint(path string) *histogram {
	switch path {
	case "/query":
		return &c.query
	case "/insert":
		return &c.insert
	case "/explain":
		return &c.explain
	case "/stats":
		return &c.stats
	default:
		return &c.healthz
	}
}

// snapshot materializes the counters into a ServerStats value.
func (c *serverCounters) snapshot(cache *stmtCache) ServerStats {
	hits, misses, evictions, size, capacity := cache.counters()
	st := ServerStats{
		Served:       c.served.Load(),
		Errors:       c.errors.Load(),
		Rejected:     c.rejected.Load(),
		Canceled:     c.canceled.Load(),
		InsertedRows: c.inserted.Load(),
		Cache: CacheStats{
			Hits: hits, Misses: misses, Evictions: evictions,
			Size: size, Capacity: capacity,
		},
		BucketLabels: BucketLabels,
		Endpoints:    map[string]EndpointStats{},
	}
	for _, ep := range []struct {
		name string
		h    *histogram
	}{
		{"/query", &c.query}, {"/insert", &c.insert}, {"/explain", &c.explain},
		{"/stats", &c.stats}, {"/healthz", &c.healthz},
	} {
		es := EndpointStats{Count: ep.h.total.Load(), Buckets: make([]uint64, len(BucketLabels))}
		for i := range es.Buckets {
			es.Buckets[i] = ep.h.counts[i].Load()
		}
		st.Endpoints[ep.name] = es
	}
	return st
}
