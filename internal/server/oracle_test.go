package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"testing"

	"repro/table"
)

// The randomized oracle: generate queries from a spec that can render
// itself as SQL AND evaluate itself directly over the raw column
// arrays, run the SQL through the full HTTP handler stack
// (lexer → parser → planner → prepared cache → worker pool → table),
// and require the JSON rows to be byte-identical to the independently
// computed ground truth.

// oPred is a WHERE-clause spec: renders to SQL and evaluates rows.
type oPred interface {
	sql() string
	eval(d *ordersData, i int) bool
}

type oCmp struct {
	col   string // qty, price, pri, city
	op    string
	numV  float64 // numeric literal (exact for the int columns' range)
	strV  string
	param string // when non-empty, rendered as $param
}

func (c *oCmp) rhs() string {
	if c.param != "" {
		return "$" + c.param
	}
	if c.col == "city" {
		return "'" + strings.ReplaceAll(c.strV, "'", "''") + "'"
	}
	if c.col == "price" {
		return fmt.Sprintf("%v", c.numV)
	}
	return fmt.Sprintf("%d", int64(c.numV))
}

func (c *oCmp) sql() string { return fmt.Sprintf("%s %s %s", c.col, c.op, c.rhs()) }

func cmpHolds[T int64 | float64 | string](op string, a, b T) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	panic("bad op " + op)
}

func (c *oCmp) eval(d *ordersData, i int) bool {
	switch c.col {
	case "qty":
		return cmpHolds(c.op, d.qty[i], int64(c.numV))
	case "pri":
		return cmpHolds(c.op, int64(d.pri[i]), int64(c.numV))
	case "price":
		return cmpHolds(c.op, d.price[i], c.numV)
	case "city":
		return cmpHolds(c.op, d.city[i], c.strV)
	}
	panic("bad col " + c.col)
}

type oIn struct {
	col   string // qty or city
	nums  []int64
	strs  []string
	param string // when non-empty, IN $param binding the whole list
}

func (c *oIn) sql() string {
	if c.param != "" {
		return fmt.Sprintf("%s in $%s", c.col, c.param)
	}
	var parts []string
	if c.col == "qty" {
		for _, v := range c.nums {
			parts = append(parts, fmt.Sprintf("%d", v))
		}
	} else {
		for _, v := range c.strs {
			parts = append(parts, "'"+v+"'")
		}
	}
	return fmt.Sprintf("%s in (%s)", c.col, strings.Join(parts, ", "))
}

func (c *oIn) eval(d *ordersData, i int) bool {
	if c.col == "qty" {
		for _, v := range c.nums {
			if d.qty[i] == v {
				return true
			}
		}
		return false
	}
	for _, v := range c.strs {
		if d.city[i] == v {
			return true
		}
	}
	return false
}

type oLike struct{ prefix string }

func (c *oLike) sql() string { return "city like '" + c.prefix + "%'" }
func (c *oLike) eval(d *ordersData, i int) bool {
	return strings.HasPrefix(d.city[i], c.prefix)
}

type oBool struct {
	op   string // and | or
	kids []oPred
}

func (c *oBool) sql() string {
	parts := make([]string, len(c.kids))
	for i, k := range c.kids {
		parts[i] = "(" + k.sql() + ")"
	}
	return strings.Join(parts, " "+c.op+" ")
}

func (c *oBool) eval(d *ordersData, i int) bool {
	for _, k := range c.kids {
		hit := k.eval(d, i)
		if c.op == "and" && !hit {
			return false
		}
		if c.op == "or" && hit {
			return true
		}
	}
	return c.op == "and"
}

type oNot struct{ kid oPred }

func (c *oNot) sql() string                    { return "not (" + c.kid.sql() + ")" }
func (c *oNot) eval(d *ordersData, i int) bool { return !c.kid.eval(d, i) }

// oracleGen builds random query specs plus their parameter binds.
type oracleGen struct {
	rng    *rand.Rand
	params map[string]any
	nparam int
}

var cmpOps = []string{"=", "!=", "<", "<=", ">", ">="}

// leaf generates a comparison. underNot restricts to plain
// comparisons: the planner deliberately rejects NOT IN and NOT LIKE,
// so those must not appear beneath a NOT.
func (g *oracleGen) leaf(underNot bool) oPred {
	n := 7
	if underNot {
		n = 4
	}
	switch g.rng.Intn(n) {
	case 0:
		return g.maybeParam(&oCmp{col: "qty", op: cmpOps[g.rng.Intn(len(cmpOps))], numV: float64(g.rng.Intn(1000))})
	case 1:
		return g.maybeParam(&oCmp{col: "price", op: cmpOps[g.rng.Intn(len(cmpOps))], numV: float64(g.rng.Intn(10000)) / 100})
	case 2:
		return g.maybeParam(&oCmp{col: "pri", op: cmpOps[g.rng.Intn(len(cmpOps))], numV: float64(g.rng.Intn(6))})
	case 3:
		return g.maybeParam(&oCmp{col: "city", op: cmpOps[g.rng.Intn(len(cmpOps))], strV: oracleCities[g.rng.Intn(len(oracleCities))]})
	case 4:
		n := 1 + g.rng.Intn(4)
		in := &oIn{col: "qty"}
		for i := 0; i < n; i++ {
			in.nums = append(in.nums, int64(g.rng.Intn(1000)))
		}
		if g.rng.Intn(3) == 0 {
			in.param = g.bindName()
			g.params[in.param] = in.nums
		}
		return in
	case 5:
		n := 1 + g.rng.Intn(3)
		in := &oIn{col: "city"}
		for i := 0; i < n; i++ {
			in.strs = append(in.strs, oracleCities[g.rng.Intn(len(oracleCities))])
		}
		if g.rng.Intn(3) == 0 {
			in.param = g.bindName()
			g.params[in.param] = in.strs
		}
		return in
	default:
		prefixes := []string{"A", "B", "Be", "P", "Osl", "Z", ""}
		return &oLike{prefix: prefixes[g.rng.Intn(len(prefixes))]}
	}
}

func (g *oracleGen) bindName() string {
	g.nparam++
	return fmt.Sprintf("p%d", g.nparam)
}

// maybeParam converts a comparison literal to a placeholder bind some
// of the time, exercising the prepared-parameter path.
func (g *oracleGen) maybeParam(c *oCmp) oPred {
	if g.rng.Intn(3) != 0 {
		return c
	}
	c.param = g.bindName()
	switch c.col {
	case "qty", "pri":
		g.params[c.param] = int64(c.numV)
	case "price":
		g.params[c.param] = c.numV
	case "city":
		g.params[c.param] = c.strV
	}
	return c
}

func (g *oracleGen) pred(depth int, underNot bool) oPred {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.leaf(underNot)
	}
	switch g.rng.Intn(3) {
	case 0:
		return &oNot{kid: g.pred(depth-1, true)}
	default:
		ops := []string{"and", "or"}
		n := 2 + g.rng.Intn(2)
		b := &oBool{op: ops[g.rng.Intn(2)]}
		for i := 0; i < n; i++ {
			b.kids = append(b.kids, g.pred(depth-1, underNot))
		}
		return b
	}
}

// colValue reads one raw column value for brute-force projection.
func colValue(d *ordersData, col string, i int) any {
	switch col {
	case "qty":
		return d.qty[i]
	case "price":
		return d.price[i]
	case "pri":
		return d.pri[i]
	case "city":
		return d.city[i]
	}
	panic("bad col " + col)
}

// numKey returns a column's value as a sortable float64 (exact for the
// integer columns' value ranges) or flags the column as string-keyed.
func sortKey(d *ordersData, col string, i int) (float64, string, bool) {
	switch col {
	case "qty":
		return float64(d.qty[i]), "", false
	case "price":
		return d.price[i], "", false
	case "pri":
		return float64(d.pri[i]), "", false
	case "city":
		return 0, d.city[i], true
	}
	panic("bad col " + col)
}

// aggCompute brute-forces one aggregate over the qualifying ids,
// mirroring the documented result typing: exact int64 for integer
// sum/min/max and count, float64 otherwise, nil over zero rows.
// (Only exact aggregates are generated: sum/avg over the float column
// would compare accumulation orders, not semantics.)
func aggCompute(d *ordersData, fn, col string, ids []int) any {
	if fn == "count" {
		return int64(len(ids))
	}
	if len(ids) == 0 {
		return nil
	}
	intVal := func(i int) int64 {
		if col == "qty" {
			return d.qty[i]
		}
		return int64(d.pri[i])
	}
	switch {
	case fn == "sum" || fn == "avg":
		var sum int64
		for _, i := range ids {
			sum += intVal(i)
		}
		if fn == "avg" {
			return float64(sum) / float64(len(ids))
		}
		return sum
	case col == "city":
		best := d.city[ids[0]]
		for _, i := range ids[1:] {
			if (fn == "min") == (d.city[i] < best) && d.city[i] != best {
				best = d.city[i]
			}
		}
		return best
	case col == "price":
		best := d.price[ids[0]]
		for _, i := range ids[1:] {
			if (fn == "min") == (d.price[i] < best) && d.price[i] != best {
				best = d.price[i]
			}
		}
		return best
	default:
		best := intVal(ids[0])
		for _, i := range ids[1:] {
			v := intVal(i)
			if (fn == "min") == (v < best) && v != best {
				best = v
			}
		}
		return best
	}
}

// oracleCase is one full generated query: SQL text, binds, and the
// brute-forced expected columns and rows.
type oracleCase struct {
	sql     string
	params  map[string]any
	columns []string
	rows    [][]any
}

// exact aggregate candidates: (fn, col). sum/avg restricted to the
// integer columns so brute-force addition matches the engine exactly.
var aggCandidates = [][2]string{
	{"count", "*"}, {"sum", "qty"}, {"avg", "qty"}, {"sum", "pri"}, {"avg", "pri"},
	{"min", "qty"}, {"max", "qty"}, {"min", "price"}, {"max", "price"},
	{"min", "pri"}, {"max", "pri"}, {"min", "city"}, {"max", "city"},
}

func aggSQL(fn, col string) string {
	if fn == "count" {
		return "count(*)"
	}
	return fn + "(" + col + ")"
}

// generate builds one random query and its expected result.
func generate(rng *rand.Rand, d *ordersData) oracleCase {
	g := &oracleGen{rng: rng, params: map[string]any{}}
	var where oPred
	whereSQL := ""
	if rng.Intn(5) > 0 {
		where = g.pred(2, false)
		whereSQL = " where " + where.sql()
	}
	ids := make([]int, 0, len(d.qty))
	for i := range d.qty {
		if where == nil || where.eval(d, i) {
			ids = append(ids, i)
		}
	}
	c := oracleCase{params: g.params}
	allCols := []string{"qty", "price", "pri", "city"}
	switch rng.Intn(3) {
	case 0: // plain rows, optional order/limit
		cols := allCols
		proj := "*"
		if rng.Intn(2) == 0 {
			n := 1 + rng.Intn(3)
			cols = nil
			for i := 0; i < n; i++ {
				cols = append(cols, allCols[rng.Intn(len(allCols))])
			}
			proj = strings.Join(cols, ", ")
		}
		suffix := ""
		if rng.Intn(2) == 0 { // ORDER BY
			oc := allCols[rng.Intn(len(allCols))]
			desc := rng.Intn(2) == 0
			dir := " asc"
			if desc {
				dir = " desc"
			}
			suffix = " order by " + oc + dir
			sorted := append([]int(nil), ids...)
			sort.SliceStable(sorted, func(a, b int) bool {
				ka, sa, isStr := sortKey(d, oc, sorted[a])
				kb, sb, _ := sortKey(d, oc, sorted[b])
				if isStr {
					if sa != sb {
						if desc {
							return sa > sb
						}
						return sa < sb
					}
				} else if ka != kb {
					if desc {
						return ka > kb
					}
					return ka < kb
				}
				return sorted[a] < sorted[b]
			})
			ids = sorted
		}
		if rng.Intn(2) == 0 { // LIMIT
			k := rng.Intn(20)
			suffix += fmt.Sprintf(" limit %d", k)
			if len(ids) > k {
				ids = ids[:k]
			}
		}
		c.sql = "select " + proj + " from orders" + whereSQL + suffix
		c.columns = cols
		for _, i := range ids {
			row := make([]any, len(cols))
			for j, col := range cols {
				row[j] = colValue(d, col, i)
			}
			c.rows = append(c.rows, row)
		}
	case 1: // aggregates
		n := 1 + rng.Intn(3)
		var parts []string
		row := make([]any, n)
		for i := 0; i < n; i++ {
			a := aggCandidates[rng.Intn(len(aggCandidates))]
			parts = append(parts, aggSQL(a[0], a[1]))
			row[i] = aggCompute(d, a[0], a[1], ids)
		}
		c.sql = "select " + strings.Join(parts, ", ") + " from orders" + whereSQL
		c.columns = parts
		c.rows = [][]any{row}
	default: // group by
		key := []string{"city", "pri", "qty"}[rng.Intn(3)]
		n := 1 + rng.Intn(2)
		var aggs [][2]string
		for i := 0; i < n; i++ {
			aggs = append(aggs, aggCandidates[rng.Intn(len(aggCandidates))])
		}
		c.columns = []string{key}
		parts := []string{key}
		for _, a := range aggs {
			parts = append(parts, aggSQL(a[0], a[1]))
			c.columns = append(c.columns, aggSQL(a[0], a[1]))
		}
		c.sql = "select " + strings.Join(parts, ", ") + " from orders" + whereSQL + " group by " + key
		// Partition ids by key, ascending.
		byKey := map[any][]int{}
		for _, i := range ids {
			var k any
			switch key {
			case "city":
				k = d.city[i]
			case "pri":
				k = int64(d.pri[i])
			default:
				k = d.qty[i]
			}
			byKey[k] = append(byKey[k], i)
		}
		keys := make([]any, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if key == "city" {
				return keys[a].(string) < keys[b].(string)
			}
			return keys[a].(int64) < keys[b].(int64)
		})
		for _, k := range keys {
			row := []any{k}
			for _, a := range aggs {
				row = append(row, aggCompute(d, a[0], a[1], byKey[k]))
			}
			c.rows = append(c.rows, row)
		}
	}
	return c
}

// marshalNoEscape matches the server's JSON encoding (no HTML
// escaping) so plan comparisons are byte-exact.
func marshalNoEscape(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSpace(buf.Bytes())
}

// TestRandomizedSQLOracle runs generated queries through the HTTP
// stack and requires byte-identical rows against the brute-forced
// ground truth.
func TestRandomizedSQLOracle(t *testing.T) {
	tb, d := newOrdersTable(t, 1200, 42)
	_, ts := newTestServer(t, Config{Table: tb, Workers: 4, CacheSize: 64, Parallelism: 2})
	rng := rand.New(rand.NewSource(271828))
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for it := 0; it < iters; it++ {
		c := generate(rng, d)
		status, fields := postQuery(t, ts, QueryRequest{Query: c.sql, Params: c.params})
		if status != http.StatusOK {
			t.Fatalf("case %d %q (params %v): status %d: %s", it, c.sql, c.params, status, fields["error"])
		}
		wantCols, err := json.Marshal(c.columns)
		if err != nil {
			t.Fatal(err)
		}
		if c.rows == nil {
			c.rows = [][]any{}
		}
		wantRows, err := json.Marshal(c.rows)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSpace(fields["columns"]), wantCols) {
			t.Fatalf("case %d %q: columns\n got %s\nwant %s", it, c.sql, fields["columns"], wantCols)
		}
		if !bytes.Equal(bytes.TrimSpace(fields["rows"]), wantRows) {
			t.Fatalf("case %d %q (params %v): rows\n got %s\nwant %s", it, c.sql, c.params, fields["rows"], wantRows)
		}
		if got := string(fields["row_count"]); got != fmt.Sprint(len(c.rows)) {
			t.Fatalf("case %d %q: row_count %s, want %d", it, c.sql, got, len(c.rows))
		}
	}
}

// TestExplainOracle mirrors a few statements with natively-built
// queries using the same predicate lowering and requires byte-identical
// Explain plans through GET /explain.
func TestExplainOracle(t *testing.T) {
	tb, _ := newOrdersTable(t, 1200, 42)
	_, ts := newTestServer(t, Config{Table: tb, Workers: 2, Parallelism: 2})
	opts := table.SelectOptions{Parallelism: 2}

	cases := []struct {
		sql    string
		params string
		build  func() (*table.Plan, error)
	}{
		{
			sql: "select * from orders where qty >= 100 and qty < 200",
			build: func() (*table.Plan, error) {
				return tb.Select("qty", "price", "pri", "city").
					Where(table.And(
						table.AtLeastP("qty", table.Val(int64(100))),
						table.LessThanP("qty", table.Val(int64(200))))).
					Options(opts).Explain()
			},
		},
		{
			sql:    "select * from orders where city = $c limit 7",
			params: `{"c": "Oslo"}`,
			build: func() (*table.Plan, error) {
				prep, err := tb.Prepare(table.EqualsP("city", table.StrParam("c")), opts)
				if err != nil {
					return nil, err
				}
				return prep.Select("qty", "price", "pri", "city").
					Bind("c", "Oslo").Limit(7).Explain()
			},
		},
		{
			sql: "select sum(qty), count(*) from orders where city like 'B%'",
			build: func() (*table.Plan, error) {
				return tb.Select().Where(table.StrPrefix("city", "B")).
					Options(opts).ExplainAggregate(table.Sum("qty"), table.CountAll())
			},
		},
		{
			sql: "select qty from orders where pri >= 3 order by qty desc limit 5",
			build: func() (*table.Plan, error) {
				return tb.Select("qty").
					Where(table.AtLeastP("pri", table.Val(uint8(3)))).
					Options(opts).OrderBy(table.Desc("qty")).Limit(5).Explain()
			},
		},
	}
	for _, tc := range cases {
		u := ts.URL + "/explain?q=" + url.QueryEscape(tc.sql)
		if tc.params != "" {
			u += "&params=" + url.QueryEscape(tc.params)
		}
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		var fields map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&fields); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d: %s", tc.sql, resp.StatusCode, fields["error"])
		}
		native, err := tc.build()
		if err != nil {
			t.Fatalf("%q: native explain: %v", tc.sql, err)
		}
		want := marshalNoEscape(t, native)
		if !bytes.Equal(bytes.TrimSpace(fields["plan"]), want) {
			t.Errorf("%q: plan\n got %s\nwant %s", tc.sql, fields["plan"], want)
		}
	}
}
