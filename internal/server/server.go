package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/sql"
	"repro/table"
)

// Config configures a Server.
type Config struct {
	// Table is the served relation (required).
	Table *table.Table
	// Workers bounds concurrent query executions. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds queries admitted but not yet executing; a full
	// queue rejects new queries with 429 instead of building unbounded
	// backlog. 0 means 2×Workers.
	QueueDepth int
	// CacheSize bounds the prepared-statement LRU. 0 means 128;
	// negative disables caching.
	CacheSize int
	// DefaultTimeout caps every query execution that does not set its
	// own timeout_ms. 0 means no default deadline.
	DefaultTimeout time.Duration
	// MaxShardBacklog sheds queries with 429 while the hottest shard's
	// buffered delta backlog exceeds this many rows — sealing has
	// fallen behind, and piling reads onto the deepest delta store
	// only slows the catch-up. 0 disables backlog shedding.
	MaxShardBacklog int
	// Parallelism is the per-query segment fan-out passed to the table
	// layer. 0 lets the table pick (one worker per core); a serving
	// deployment typically wants 1 so concurrency comes from the
	// request pool rather than from each query.
	Parallelism int
	// Logf, when set, receives serving log lines.
	Logf func(format string, args ...any)
}

// Server serves SQL over JSON/HTTP for one table. Create with New,
// mount as an http.Handler, and Close when done to stop the worker
// pool. Endpoints: POST /query, GET /explain, GET /stats, GET /healthz.
type Server struct {
	cfg      Config
	tbl      *table.Table
	mux      *http.ServeMux
	cache    *stmtCache
	counters serverCounters

	jobs    chan *job
	quit    chan struct{}
	workers sync.WaitGroup
	closed  sync.Once
}

// job is one admitted query execution: run executes it on a worker and
// closes done.
type job struct {
	run  func()
	done chan struct{}
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Table == nil {
		return nil, errors.New("server: Config.Table is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	switch {
	case cfg.CacheSize == 0:
		cfg.CacheSize = 128
	case cfg.CacheSize < 0:
		cfg.CacheSize = 0
	}
	s := &Server{
		cfg:   cfg,
		tbl:   cfg.Table,
		mux:   http.NewServeMux(),
		cache: newStmtCache(cfg.CacheSize),
		jobs:  make(chan *job, cfg.QueueDepth),
		quit:  make(chan struct{}),
	}
	s.mux.HandleFunc("POST /query", s.timed("/query", s.handleQuery))
	s.mux.HandleFunc("POST /insert", s.timed("/insert", s.handleInsert))
	s.mux.HandleFunc("GET /explain", s.timed("/explain", s.handleExplain))
	s.mux.HandleFunc("GET /stats", s.timed("/stats", s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.timed("/healthz", s.handleHealthz))
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for {
				select {
				case j := <-s.jobs:
					j.run()
					close(j.done)
				case <-s.quit:
					return
				}
			}
		}()
	}
	return s, nil
}

// ServeHTTP dispatches to the server's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the worker pool. Drain in-flight HTTP requests first
// (http.Server.Shutdown); Close does not wait for unserved requests.
func (s *Server) Close() {
	s.closed.Do(func() {
		close(s.quit)
		s.workers.Wait()
	})
}

// Stats snapshots the serving counters plus the table's ingest health
// (also served at GET /stats). Recovery and quarantine state ride
// along: Ingest carries the WAL replay report, and Quarantined lists
// segments the table loaded degraded without.
func (s *Server) Stats() ServerStats {
	st := s.counters.snapshot(s.cache)
	st.Ingest = s.tbl.IngestStats()
	st.Quarantined = s.tbl.Quarantined()
	st.Degraded = len(st.Quarantined) > 0
	return st
}

// LogStats writes a one-line serving summary through Config.Logf; the
// imprintd shutdown path calls it after draining.
func (s *Server) LogStats() {
	if s.cfg.Logf == nil {
		return
	}
	st := s.Stats()
	s.cfg.Logf("served %d queries (%d errors, %d rejected, %d canceled); statement cache %d/%d entries, %d hits, %d misses, %d evictions",
		st.Served, st.Errors, st.Rejected, st.Canceled,
		st.Cache.Size, st.Cache.Capacity, st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions)
}

// timed wraps a handler with the endpoint's latency histogram.
func (s *Server) timed(path string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.counters.endpoint(path)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.observe(time.Since(start))
	}
}

// ---- request/response shapes ----

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// Query is the SQL text.
	Query string `json:"query"`
	// Params binds the query's $placeholders. Numbers may be JSON
	// numbers (converted with exact range checks); IN-list parameters
	// are JSON arrays.
	Params map[string]any `json:"params,omitempty"`
	// TimeoutMs overrides the server's default per-query deadline:
	// > 0 sets a deadline that many milliseconds out, < 0 sets one
	// already in the past (every execution path reports cancellation
	// before scanning a segment — useful for testing), 0/absent keeps
	// the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	Query string `json:"query"` // normalized statement text
	*sql.Result
	// Cached reports whether the statement came from the LRU.
	Cached    bool  `json:"cached"`
	ElapsedUs int64 `json:"elapsed_us"`
}

// ExplainResponse is the GET /explain success body.
type ExplainResponse struct {
	Query  string          `json:"query"`
	Params []sql.ParamInfo `json:"params"`
	Plan   *table.Plan     `json:"plan"`
	Cached bool            `json:"cached"`
}

// ErrorResponse is every error body: a message, plus the 1-based byte
// position in the query text for parse and planning errors.
type ErrorResponse struct {
	Error    string `json:"error"`
	Position int    `json:"position,omitempty"`
}

// ---- handlers ----

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		s.counters.errors.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if limit := s.cfg.MaxShardBacklog; limit > 0 {
		if depth := s.tbl.IngestStats().MaxShardDeltaRows(); depth > limit {
			s.counters.rejected.Add(1)
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("ingest backlog: hottest shard buffers %d delta rows (limit %d)", depth, limit))
			return
		}
	}
	st, cached, err := s.statement(req.Query)
	if err != nil {
		s.counters.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.queryContext(r.Context(), req.TimeoutMs)
	defer cancel()

	var res *sql.Result
	var execErr error
	start := time.Now()
	admitted := s.submit(func() {
		res, execErr = st.Exec(req.Params, s.selectOptions(ctx))
	})
	if !admitted {
		s.counters.rejected.Add(1)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("server overloaded: %d executing, %d queued", s.cfg.Workers, s.cfg.QueueDepth))
		return
	}
	if execErr != nil {
		if errors.Is(execErr, context.Canceled) || errors.Is(execErr, context.DeadlineExceeded) {
			s.counters.canceled.Add(1)
			writeError(w, http.StatusRequestTimeout, execErr)
			return
		}
		s.counters.errors.Add(1)
		writeError(w, http.StatusBadRequest, execErr)
		return
	}
	s.counters.served.Add(1)
	writeJSON(w, http.StatusOK, QueryResponse{
		Query:     st.SQL,
		Result:    res,
		Cached:    cached,
		ElapsedUs: time.Since(start).Microseconds(),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing ?q= query text"))
		return
	}
	var params map[string]any
	if p := r.URL.Query().Get("params"); p != "" {
		dec := json.NewDecoder(strings.NewReader(p))
		dec.UseNumber()
		if err := dec.Decode(&params); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding ?params=: %w", err))
			return
		}
	}
	st, cached, err := s.statement(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := st.Explain(params, s.selectOptions(r.Context()))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Query: st.SQL, Params: st.Params(), Plan: plan, Cached: cached,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Quarantined segments mean the table is serving with holes marked
	// deleted: alive, but degraded until re-ingested and compacted.
	status := "ok"
	if len(s.tbl.Quarantined()) > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"table":    s.tbl.Name(),
		"rows":     s.tbl.Rows(),
		"segments": s.tbl.Segments(),
	})
}

// ---- execution plumbing ----

// statement resolves query text to a compiled statement through the
// LRU: normalize, look up, compile-and-insert on miss.
func (s *Server) statement(src string) (*sql.Statement, bool, error) {
	key := sql.Normalize(src)
	if st, ok := s.cache.get(key); ok {
		return st, true, nil
	}
	// Compile from the normalized text so one cache key maps to exactly
	// one statement regardless of the original spelling.
	st, err := sql.Compile(s.tbl, key)
	if err != nil {
		return nil, false, err
	}
	s.cache.put(key, st)
	return st, false, nil
}

// queryContext derives the execution context: request cancellation
// (client disconnect) plus the effective per-query deadline.
func (s *Server) queryContext(parent context.Context, timeoutMs int64) (context.Context, context.CancelFunc) {
	switch {
	case timeoutMs > 0:
		return context.WithTimeout(parent, time.Duration(timeoutMs)*time.Millisecond)
	case timeoutMs < 0:
		// Deterministically expired: execution reports cancellation
		// before any segment is scanned.
		return context.WithDeadline(parent, time.Unix(0, 0))
	case s.cfg.DefaultTimeout > 0:
		return context.WithTimeout(parent, s.cfg.DefaultTimeout)
	default:
		return context.WithCancel(parent)
	}
}

// selectOptions builds the per-execution table options.
func (s *Server) selectOptions(ctx context.Context) table.SelectOptions {
	return table.SelectOptions{Ctx: ctx, Parallelism: s.cfg.Parallelism}
}

// submit runs fn on the worker pool, waiting for completion. It
// reports false when the admission queue is full (the caller answers
// 429). Admitted work always runs to completion — cancellation is the
// execution context's job, so a disconnected client's query still
// finishes quickly via ctx instead of leaking a worker.
func (s *Server) submit(fn func()) bool {
	j := &job{run: fn, done: make(chan struct{})}
	select {
	case s.jobs <- j:
	default:
		return false
	}
	<-j.done
	return true
}

// ---- JSON helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	resp := ErrorResponse{Error: err.Error()}
	var pe *sql.ParseError
	if errors.As(err, &pe) {
		resp.Position = pe.Pos
	}
	writeJSON(w, status, resp)
}
