// Package server is imprintd's HTTP front-end: it parses SQL with
// internal/sql, caches compiled statements in an LRU keyed by
// normalized query text, runs executions on a bounded worker pool with
// a bounded admission queue (overflow is rejected up front with 429),
// and propagates per-query deadlines into the table layer's segment
// fan-out so canceled queries stop scanning between segments.
package server

import (
	"container/list"
	"sync"

	"repro/internal/sql"
)

// stmtCache is a concurrency-safe LRU of compiled statements keyed by
// normalized query text. Hits refresh recency; inserting beyond the
// capacity evicts the least recently used entry. A capacity of zero
// disables caching (every query re-compiles).
type stmtCache struct {
	mu        sync.Mutex
	cap       int
	order     *list.List // front = most recently used; values are *cacheEntry
	byKey     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	st  *sql.Statement
}

func newStmtCache(capacity int) *stmtCache {
	return &stmtCache{cap: capacity, order: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached statement for a normalized query, refreshing
// its recency.
func (c *stmtCache) get(key string) (*sql.Statement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).st, true
}

// put inserts a freshly compiled statement, evicting the least
// recently used entry when full. Re-inserting an existing key (two
// concurrent misses) refreshes the entry instead of growing the cache.
func (c *stmtCache) put(key string, st *sql.Statement) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).st = st
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, st: st})
}

// keys lists cached queries from most to least recently used (tests
// pin eviction order with this).
func (c *stmtCache) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// counters snapshots the hit/miss/eviction counters and current size.
func (c *stmtCache) counters() (hits, misses, evictions uint64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.order.Len(), c.cap
}
