package column

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	c := New("qty", []int32{5, 7, 9})
	if c.Name() != "qty" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Get(1) != 7 {
		t.Errorf("Get(1) = %d", c.Get(1))
	}
	if c.WidthBytes() != 4 {
		t.Errorf("WidthBytes = %d", c.WidthBytes())
	}
	if c.TypeName() != "int32" {
		t.Errorf("TypeName = %q", c.TypeName())
	}
	if c.SizeBytes() != 12 {
		t.Errorf("SizeBytes = %d", c.SizeBytes())
	}
}

func TestAppendReturnsFirstID(t *testing.T) {
	c := NewEmpty[int64]("a", 0)
	if id := c.Append(1, 2, 3); id != 0 {
		t.Errorf("first Append id = %d", id)
	}
	if id := c.Append(4); id != 3 {
		t.Errorf("second Append id = %d", id)
	}
	if c.Len() != 4 || c.Get(3) != 4 {
		t.Errorf("column after appends: len=%d", c.Len())
	}
}

func TestMinMax(t *testing.T) {
	c := New("m", []float64{3.5, -1.25, 9.75, 0})
	lo, hi := c.MinMax()
	if lo != -1.25 || hi != 9.75 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestMinMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("e", []int32{}).MinMax()
}

func TestDistinctUpTo(t *testing.T) {
	c := New("d", []int16{1, 1, 2, 2, 3})
	if got := c.DistinctUpTo(10); got != 3 {
		t.Errorf("DistinctUpTo(10) = %d, want 3", got)
	}
	if got := c.DistinctUpTo(2); got != 2 {
		t.Errorf("DistinctUpTo(2) = %d, want 2 (capped)", got)
	}
}

func TestDescribe(t *testing.T) {
	c := New("x", []uint8{1, 2})
	want := "x uint8[2] (2 bytes)"
	if got := Describe(c); got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
}

func TestStringDictRoundTrip(t *testing.T) {
	vals := []string{"ORD", "JFK", "AMS", "JFK", "ORD", "AMS", "AMS"}
	d := EncodeStrings("origin", vals)
	if d.Cardinality() != 3 {
		t.Fatalf("Cardinality = %d", d.Cardinality())
	}
	codes := d.Codes()
	if codes.Len() != len(vals) {
		t.Fatalf("codes len = %d", codes.Len())
	}
	for i, s := range vals {
		if got := d.Symbol(codes.Get(i)); got != s {
			t.Errorf("row %d: decoded %q, want %q", i, got, s)
		}
	}
	// Codes are ordered lexicographically.
	if !(d.Symbol(0) < d.Symbol(1) && d.Symbol(1) < d.Symbol(2)) {
		t.Error("dictionary not lexicographically ordered")
	}
}

func TestStringDictCodeRange(t *testing.T) {
	d := EncodeStrings("s", []string{"apple", "banana", "cherry", "date"})
	lo, hi, ok := d.CodeRange("banana", "cherry")
	if !ok || lo != 1 || hi != 3 {
		t.Errorf("CodeRange = %d,%d,%v; want 1,3,true", lo, hi, ok)
	}
	// Range between entries: covers nothing.
	if _, _, ok := d.CodeRange("aa", "ab"); ok {
		t.Error("empty range reported ok")
	}
	// Open-ended style range covering everything.
	lo, hi, ok = d.CodeRange("a", "zzz")
	if !ok || lo != 0 || hi != 4 {
		t.Errorf("full CodeRange = %d,%d,%v", lo, hi, ok)
	}
}

func TestStringDictSizeBytes(t *testing.T) {
	d := EncodeStrings("s", []string{"ab", "cd", "ab"})
	// 3 int32 codes + 4 bytes of symbols.
	if got := d.SizeBytes(); got != 3*4+4 {
		t.Errorf("SizeBytes = %d, want 16", got)
	}
}

func TestDeltaBasics(t *testing.T) {
	d := NewDelta[int64]()
	if d.Len() != 0 {
		t.Fatalf("empty delta Len = %d", d.Len())
	}
	d.Insert(100, 42)
	d.Delete(5)
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if !d.IsDeleted(5) || d.IsDeleted(6) {
		t.Error("IsDeleted wrong")
	}
	if v, ok := d.Override(100); !ok || v != 42 {
		t.Error("Override wrong")
	}
	// Re-inserting a deleted id revives it.
	d.Insert(5, 7)
	if d.IsDeleted(5) {
		t.Error("insert did not revive deleted id")
	}
	// Deleting an overridden id drops the override.
	d.Delete(100)
	if _, ok := d.Override(100); ok {
		t.Error("delete did not drop override")
	}
}

func TestDeltaMerge(t *testing.T) {
	d := NewDelta[int32]()
	d.Delete(2)
	d.Insert(10, 55) // qualifies for [50,60)
	d.Insert(11, 99) // does not qualify
	d.Update(4, 51)  // override: old row 4 qualified, new value still qualifies
	base := []uint32{1, 2, 4, 7}
	got := d.Merge(base, 50, 60)
	want := []uint32{1, 4, 7, 10}
	if len(got) != len(want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge = %v, want %v", got, want)
		}
	}
}

func TestDeltaMergeEmptyDeltaIsIdentity(t *testing.T) {
	d := NewDelta[int32]()
	base := []uint32{3, 5}
	got := d.Merge(base, 0, 10)
	if &got[0] != &base[0] || len(got) != 2 {
		t.Error("empty delta should return input unchanged")
	}
}

func TestDeltaApplyTo(t *testing.T) {
	d := NewDelta[int16]()
	base := []int16{10, 20, 30, 40}
	d.Delete(1)
	d.Update(2, 35)
	d.Insert(4, 50)
	d.Insert(6, 70) // gap beyond base: appended in id order
	got := d.ApplyTo(base)
	want := []int16{10, 35, 40, 50, 70}
	if len(got) != len(want) {
		t.Fatalf("ApplyTo = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ApplyTo = %v, want %v", got, want)
		}
	}
}

func TestDeltaRatio(t *testing.T) {
	d := NewDelta[int32]()
	d.Insert(0, 1)
	if got := d.Ratio(10); got != 0.1 {
		t.Errorf("Ratio = %v", got)
	}
	if got := d.Ratio(0); got != 1 {
		t.Errorf("Ratio(0) = %v", got)
	}
}

// Property: Merge(baseResult) equals a scan over ApplyTo-materialized
// data restricted to ids (deleted rows keep their ids out; inserted rows
// appear iff their value qualifies).
func TestQuickDeltaMergeMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		n := 50 + rng.IntN(200)
		base := make([]int32, n)
		for i := range base {
			base[i] = int32(rng.IntN(1000))
		}
		d := NewDelta[int32]()
		for k := 0; k < rng.IntN(40); k++ {
			id := uint32(rng.IntN(n + 20))
			switch rng.IntN(3) {
			case 0:
				d.Delete(id)
			case 1:
				d.Insert(id, int32(rng.IntN(1000)))
			case 2:
				d.Update(id, int32(rng.IntN(1000)))
			}
		}
		low := int32(rng.IntN(900))
		high := low + int32(rng.IntN(100)) + 1

		// Base index result: ids of base rows qualifying.
		var baseIDs []uint32
		for id, v := range base {
			if v >= low && v < high {
				baseIDs = append(baseIDs, uint32(id))
			}
		}
		got := d.Merge(baseIDs, low, high)

		// Naive expectation from first principles.
		var want []uint32
		for id := 0; id < n+20; id++ {
			uid := uint32(id)
			if d.IsDeleted(uid) {
				continue
			}
			var v int32
			if ov, ok := d.Override(uid); ok {
				v = ov
			} else if id < n {
				v = base[id]
			} else {
				continue // id beyond base with no insert: row absent
			}
			if v >= low && v < high {
				want = append(want, uid)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
