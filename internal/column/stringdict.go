package column

import "sort"

// StringDict dictionary-encodes a string attribute into an int32 code
// column so that secondary indexes (which operate on fixed-width values)
// can cover it. This mirrors how column stores such as MonetDB handle the
// "str" columns that appear in the paper's Airtraffic and TPC-H datasets.
//
// Codes are assigned in lexicographic order of the distinct strings, so
// range predicates on strings translate directly to range predicates on
// codes.
type StringDict struct {
	codes   *Column[int32]
	symbols []string // sorted; code i maps to symbols[i]
}

// EncodeStrings builds a dictionary-encoded column from vals.
func EncodeStrings(name string, vals []string) *StringDict {
	uniq := make(map[string]int32, 64)
	for _, s := range vals {
		uniq[s] = 0
	}
	symbols := make([]string, 0, len(uniq))
	for s := range uniq {
		symbols = append(symbols, s)
	}
	sort.Strings(symbols)
	for i, s := range symbols {
		uniq[s] = int32(i)
	}
	codes := make([]int32, len(vals))
	for i, s := range vals {
		codes[i] = uniq[s]
	}
	return &StringDict{codes: New(name, codes), symbols: symbols}
}

// Codes returns the int32 code column; build indexes over this.
func (d *StringDict) Codes() *Column[int32] { return d.codes }

// Symbol returns the string for a code.
func (d *StringDict) Symbol(code int32) string { return d.symbols[code] }

// Cardinality returns the number of distinct strings.
func (d *StringDict) Cardinality() int { return len(d.symbols) }

// CodeRange translates an inclusive string range [lo, hi] into a
// half-open code range [loCode, hiCode) suitable for index queries.
// ok is false when no dictionary entry falls inside the range.
func (d *StringDict) CodeRange(lo, hi string) (loCode, hiCode int32, ok bool) {
	l := sort.SearchStrings(d.symbols, lo)
	h := sort.Search(len(d.symbols), func(i int) bool { return d.symbols[i] > hi })
	if l >= h {
		return 0, 0, false
	}
	return int32(l), int32(h), true
}

// CodeRangeExclusive translates the half-open string range [lo, hi)
// into a half-open code range. ok is false when no entry qualifies.
func (d *StringDict) CodeRangeExclusive(lo, hi string) (loCode, hiCode int32, ok bool) {
	l := sort.SearchStrings(d.symbols, lo)
	h := sort.SearchStrings(d.symbols, hi)
	if l >= h {
		return 0, 0, false
	}
	return int32(l), int32(h), true
}

// SizeBytes returns the payload size: codes plus dictionary strings.
func (d *StringDict) SizeBytes() int64 {
	n := d.codes.SizeBytes()
	for _, s := range d.symbols {
		n += int64(len(s))
	}
	return n
}
