package column

import (
	"fmt"
	"sort"
)

// StringDict dictionary-encodes a string attribute into an int32 code
// column so that secondary indexes (which operate on fixed-width values)
// can cover it. This mirrors how column stores such as MonetDB handle the
// "str" columns that appear in the paper's Airtraffic and TPC-H datasets.
//
// Codes are assigned in lexicographic order of the distinct strings, so
// range predicates on strings translate directly to range predicates on
// codes.
type StringDict struct {
	codes   *Column[int32]
	symbols []string // sorted; code i maps to symbols[i]
}

// EncodeStrings builds a dictionary-encoded column from vals.
func EncodeStrings(name string, vals []string) *StringDict {
	uniq := make(map[string]int32, 64)
	for _, s := range vals {
		uniq[s] = 0
	}
	symbols := make([]string, 0, len(uniq))
	for s := range uniq {
		symbols = append(symbols, s)
	}
	sort.Strings(symbols)
	for i, s := range symbols {
		uniq[s] = int32(i)
	}
	codes := make([]int32, len(vals))
	for i, s := range vals {
		codes[i] = uniq[s]
	}
	return &StringDict{codes: New(name, codes), symbols: symbols}
}

// Reconstruct rebuilds a dictionary from persisted parts: the code
// column and the sorted distinct symbols. It validates the invariants
// EncodeStrings guarantees (symbols strictly ascending, codes in range).
func Reconstruct(name string, codes []int32, symbols []string) (*StringDict, error) {
	for i := 1; i < len(symbols); i++ {
		if symbols[i-1] >= symbols[i] {
			return nil, fmt.Errorf("column %s: symbols not strictly sorted at %d", name, i)
		}
	}
	for i, c := range codes {
		if c < 0 || int(c) >= len(symbols) {
			return nil, fmt.Errorf("column %s: code %d at row %d out of range", name, c, i)
		}
	}
	return &StringDict{codes: New(name, codes), symbols: symbols}, nil
}

// Codes returns the int32 code column; build indexes over this.
func (d *StringDict) Codes() *Column[int32] { return d.codes }

// Code returns the code of an exact symbol, or ok=false when the string
// is not in the dictionary.
func (d *StringDict) Code(s string) (int32, bool) {
	i := sort.SearchStrings(d.symbols, s)
	if i < len(d.symbols) && d.symbols[i] == s {
		return int32(i), true
	}
	return 0, false
}

// SearchCode returns the code of the first symbol >= s; it equals
// Cardinality when every symbol sorts before s. Because codes are
// assigned in symbol order, [SearchCode(lo), SearchCode(hi)) is exactly
// the code interval of the string range [lo, hi).
func (d *StringDict) SearchCode(s string) int32 {
	return int32(sort.SearchStrings(d.symbols, s))
}

// Symbol returns the string for a code.
func (d *StringDict) Symbol(code int32) string { return d.symbols[code] }

// Cardinality returns the number of distinct strings.
func (d *StringDict) Cardinality() int { return len(d.symbols) }

// CodeRange translates an inclusive string range [lo, hi] into a
// half-open code range [loCode, hiCode) suitable for index queries.
// ok is false when no dictionary entry falls inside the range.
func (d *StringDict) CodeRange(lo, hi string) (loCode, hiCode int32, ok bool) {
	l := sort.SearchStrings(d.symbols, lo)
	h := sort.Search(len(d.symbols), func(i int) bool { return d.symbols[i] > hi })
	if l >= h {
		return 0, 0, false
	}
	return int32(l), int32(h), true
}

// CodeRangeExclusive translates the half-open string range [lo, hi)
// into a half-open code range. ok is false when no entry qualifies.
func (d *StringDict) CodeRangeExclusive(lo, hi string) (loCode, hiCode int32, ok bool) {
	l := sort.SearchStrings(d.symbols, lo)
	h := sort.SearchStrings(d.symbols, hi)
	if l >= h {
		return 0, 0, false
	}
	return int32(l), int32(h), true
}

// PrefixCodeRange translates a prefix match into the half-open code
// interval [lo, hi) of symbols starting with prefix: matching strings
// form the range [prefix, upper) where upper is prefix with its last
// byte incremented (prefixes ending in 0xFF bytes shorten first; a
// prefix of only 0xFF bytes matches every symbol >= itself). ok is
// false when no symbol matches.
func (d *StringDict) PrefixCodeRange(prefix string) (lo, hi int32, ok bool) {
	card := int32(len(d.symbols))
	if prefix == "" {
		return 0, card, card > 0
	}
	lo = d.SearchCode(prefix)
	upper := []byte(prefix)
	for len(upper) > 0 && upper[len(upper)-1] == 0xFF {
		upper = upper[:len(upper)-1]
	}
	if len(upper) == 0 {
		return lo, card, lo < card
	}
	upper[len(upper)-1]++
	hi = d.SearchCode(string(upper))
	return lo, hi, lo < hi
}

// SizeBytes returns the payload size: codes plus dictionary strings.
func (d *StringDict) SizeBytes() int64 {
	n := d.codes.SizeBytes()
	for _, s := range d.symbols {
		n += int64(len(s))
	}
	return n
}
