// Package column provides the columnar storage substrate assumed by the
// paper (Section 2): a relation decomposed into dense, typed value arrays
// whose ids are implied by position. It also supplies dictionary encoding
// for string attributes and the delta structures of Section 4.2 that
// absorb updates between index rebuilds.
package column

import (
	"fmt"

	"repro/internal/coltype"
)

// Column is a dense, append-only array of fixed-width values. Ids are the
// positions in the array and are never materialized, exactly as in the
// paper's MonetDB setting.
type Column[V coltype.Value] struct {
	name string
	vals []V
}

// New wraps vals (not copied) as a column.
func New[V coltype.Value](name string, vals []V) *Column[V] {
	return &Column[V]{name: name, vals: vals}
}

// NewEmpty returns an empty column with the given capacity hint.
func NewEmpty[V coltype.Value](name string, capacity int) *Column[V] {
	return &Column[V]{name: name, vals: make([]V, 0, capacity)}
}

// Name returns the column name.
func (c *Column[V]) Name() string { return c.name }

// Len returns the number of rows.
func (c *Column[V]) Len() int { return len(c.vals) }

// Values exposes the backing slice. Callers must treat it as read-only;
// indexes hold references into it.
func (c *Column[V]) Values() []V { return c.vals }

// Get returns the value at row id.
func (c *Column[V]) Get(id int) V { return c.vals[id] }

// Append adds rows at the end of the column (the common warehouse update
// pattern of Section 4.1) and returns the id of the first new row.
func (c *Column[V]) Append(vs ...V) int {
	first := len(c.vals)
	c.vals = append(c.vals, vs...)
	return first
}

// WidthBytes returns the value width in bytes.
func (c *Column[V]) WidthBytes() int { return coltype.Width[V]() }

// TypeName returns the short value type name ("int32", "float64", ...).
func (c *Column[V]) TypeName() string { return coltype.TypeName[V]() }

// SizeBytes returns the payload size of the column in bytes.
func (c *Column[V]) SizeBytes() int64 {
	return int64(len(c.vals)) * int64(coltype.Width[V]())
}

// MinMax scans the column and returns its extremes. It panics on an empty
// column.
func (c *Column[V]) MinMax() (lo, hi V) {
	if len(c.vals) == 0 {
		panic("column: MinMax of empty column " + c.name)
	}
	lo, hi = c.vals[0], c.vals[0]
	for _, v := range c.vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// DistinctUpTo counts distinct values, giving up (and returning limit)
// once more than limit are seen. Used by dataset statistics.
func (c *Column[V]) DistinctUpTo(limit int) int {
	seen := make(map[V]struct{}, limit)
	for _, v := range c.vals {
		seen[v] = struct{}{}
		if len(seen) > limit {
			return limit
		}
	}
	return len(seen)
}

// Any is the type-erased view of a column used wherever heterogeneous
// column collections are handled (datasets, the experiment harness).
// Concrete values are always *Column[V] for one of the coltype.Value
// instantiations.
type Any interface {
	Name() string
	Len() int
	WidthBytes() int
	TypeName() string
	SizeBytes() int64
}

// Statically assert a few instantiations satisfy Any.
var (
	_ Any = (*Column[int8])(nil)
	_ Any = (*Column[uint8])(nil)
	_ Any = (*Column[int16])(nil)
	_ Any = (*Column[int32])(nil)
	_ Any = (*Column[int64])(nil)
	_ Any = (*Column[float32])(nil)
	_ Any = (*Column[float64])(nil)
)

// Describe returns a one-line human-readable summary of any column.
func Describe(c Any) string {
	return fmt.Sprintf("%s %s[%d] (%d bytes)", c.Name(), c.TypeName(), c.Len(), c.SizeBytes())
}
