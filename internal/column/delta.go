package column

import (
	"sort"

	"repro/internal/coltype"
)

// Delta is the update side-structure of Section 4.2: columnar stores
// never update in place; instead insertions and deletions accumulate in a
// delta that is merged with index results at query time. When the delta
// grows too large relative to the base column the index is rebuilt during
// the next scan (Section 4.2's "disregard the entire secondary index and
// rebuild it").
//
// Value updates are modeled, as in positional update handling, as a
// delete of the old row plus an insert of the new value under the same
// id.
type Delta[V coltype.Value] struct {
	deleted map[uint32]struct{}
	// inserts maps row id -> value for rows added or overwritten since
	// the index was built. Ids may exceed the base column length (fresh
	// rows) or shadow existing ids (value updates).
	inserts map[uint32]V
}

// NewDelta returns an empty delta.
func NewDelta[V coltype.Value]() *Delta[V] {
	return &Delta[V]{
		deleted: make(map[uint32]struct{}),
		inserts: make(map[uint32]V),
	}
}

// Delete marks row id as deleted.
func (d *Delta[V]) Delete(id uint32) {
	delete(d.inserts, id)
	d.deleted[id] = struct{}{}
}

// Insert records a new or replacement value for row id.
func (d *Delta[V]) Insert(id uint32, v V) {
	delete(d.deleted, id)
	d.inserts[id] = v
}

// Update records an in-place value change for an existing row (delete +
// insert under the same id).
func (d *Delta[V]) Update(id uint32, v V) { d.Insert(id, v) }

// Len returns the number of pending delta entries.
func (d *Delta[V]) Len() int { return len(d.deleted) + len(d.inserts) }

// IsDeleted reports whether id is deleted.
func (d *Delta[V]) IsDeleted(id uint32) bool {
	_, ok := d.deleted[id]
	return ok
}

// Override returns the pending value for id, if any.
func (d *Delta[V]) Override(id uint32) (V, bool) {
	v, ok := d.inserts[id]
	return v, ok
}

// Merge rewrites a sorted id list produced by an index over the base
// column into the delta-consistent result for the half-open range
// [low, high): deleted ids are dropped, overridden ids are re-checked
// against their new value, and qualifying inserted ids are merged in
// id order. The returned slice reuses ids' backing array when possible.
func (d *Delta[V]) Merge(ids []uint32, low, high V) []uint32 {
	if d.Len() == 0 {
		return ids
	}
	// Filter the base result in place.
	out := ids[:0]
	for _, id := range ids {
		if _, del := d.deleted[id]; del {
			continue
		}
		if v, ok := d.inserts[id]; ok {
			// Overridden: the base value qualified but the current value
			// decides; it will be added back from the insert set below,
			// so drop it here to avoid duplicates.
			_ = v
			continue
		}
		out = append(out, id)
	}
	// Collect qualifying inserted/overridden ids.
	var extra []uint32
	for id, v := range d.inserts {
		if v >= low && v < high {
			extra = append(extra, id)
		}
	}
	if len(extra) == 0 {
		return out
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return mergeSorted(out, extra)
}

// mergeSorted merges two ascending id lists into a fresh ascending list.
func mergeSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Ratio returns the delta size relative to the base column length; a
// rebuild policy can compare it against a threshold.
func (d *Delta[V]) Ratio(baseLen int) float64 {
	if baseLen == 0 {
		return 1
	}
	return float64(d.Len()) / float64(baseLen)
}

// ApplyTo materializes base+delta into a fresh value slice (used when
// rebuilding the index after saturation). Deleted rows are dropped;
// overridden rows carry their new value; inserted rows beyond the base
// length are appended in id order.
func (d *Delta[V]) ApplyTo(base []V) []V {
	out := make([]V, 0, len(base)+len(d.inserts))
	for id, v := range base {
		if _, del := d.deleted[uint32(id)]; del {
			continue
		}
		if nv, ok := d.inserts[uint32(id)]; ok {
			out = append(out, nv)
			continue
		}
		out = append(out, v)
	}
	var tail []uint32
	for id := range d.inserts {
		if int(id) >= len(base) {
			tail = append(tail, id)
		}
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	for _, id := range tail {
		out = append(out, d.inserts[id])
	}
	return out
}
