package inspect

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func TestColumnReport(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	col := make([]int64, 10000)
	for i := range col {
		col[i] = int64(rng.IntN(100000))
	}
	r, err := Column("test.col", col, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows != 10000 || r.TypeName != "int64" || r.ColBytes != 80000 {
		t.Errorf("geometry: %+v", r)
	}
	if r.Bins == 0 || r.Cachelines != 1250 || r.VPC != 8 {
		t.Errorf("index geometry: %+v", r)
	}
	if r.Entropy < 0 || r.Entropy > 1 {
		t.Errorf("entropy %v", r.Entropy)
	}
	if r.ImprintsBytes <= 0 || r.ZonemapBytes <= 0 || r.WAHBytes <= 0 {
		t.Error("index sizes missing")
	}
	if strings.Count(r.Fingerprint, "\n") != 8 {
		t.Errorf("fingerprint lines: %q", r.Fingerprint)
	}
	if len(r.Sweep) != 10 {
		t.Errorf("sweep rows = %d", len(r.Sweep))
	}
	for _, row := range r.Sweep {
		if row.Selectivity < 0 || row.Selectivity > 1 {
			t.Errorf("sweep selectivity %v", row.Selectivity)
		}
	}
}

func TestColumnReportNoExtras(t *testing.T) {
	col := []float32{1, 2, 3, 4, 5}
	r, err := Column("tiny", col, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fingerprint != "" || len(r.Sweep) != 0 {
		t.Error("extras generated despite being disabled")
	}
}

func TestColumnReportEmpty(t *testing.T) {
	if _, err := Column("empty", []int64{}, 0, false); err == nil {
		t.Fatal("empty column accepted")
	}
}

func TestRender(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	col := make([]int32, 5000)
	for i := range col {
		col[i] = int32(rng.IntN(1000))
	}
	r, err := Column("render.col", col, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"render.col", "int32", "bins", "entropy",
		"imprints", "zonemap", "wah", "selectivity sweep", "fingerprint"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}
