// Package inspect builds human-readable reports about a single column
// and its candidate secondary indexes. It is the engine behind
// cmd/imprintdump, factored out so the reporting logic is testable.
package inspect

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/coltype"
	"repro/internal/core"
	"repro/internal/scan"
	"repro/internal/wah"
	"repro/internal/workload"
	"repro/internal/zonemap"
)

// Report summarizes one column and the three index structures over it.
type Report struct {
	Name     string
	TypeName string
	Rows     int
	ColBytes int64

	Bins          int
	SampledUnique int
	Cachelines    int
	VPC           int
	DictEntries   int
	StoredVectors int
	Compression   float64
	Entropy       float64
	BuildTime     time.Duration

	ImprintsBytes int64
	ZonemapBytes  int64
	WAHBytes      int64

	Fingerprint string
	Sweep       []SweepRow
}

// SweepRow is one selectivity-sweep measurement.
type SweepRow struct {
	Selectivity                float64
	ScanUs, ImpUs, ZmUs, WahUs int64
	Results                    int
}

// Column builds a report. fingerprintLines <= 0 skips the print;
// withSweep runs the ten-step selectivity workload.
func Column[V coltype.Value](name string, col []V, fingerprintLines int, withSweep bool) (*Report, error) {
	if len(col) == 0 {
		return nil, fmt.Errorf("inspect: column %s is empty", name)
	}
	t0 := time.Now()
	ix := core.Build(col, core.Options{Seed: 42})
	buildTime := time.Since(t0)
	zm := zonemap.Build(col, zonemap.Options{})
	wb := wah.BuildWithHistogram(col, ix.Histogram())

	r := &Report{
		Name:          name,
		TypeName:      coltype.TypeName[V](),
		Rows:          len(col),
		ColBytes:      int64(len(col)) * int64(coltype.Width[V]()),
		Bins:          ix.Bins(),
		SampledUnique: ix.Histogram().SampledUnique,
		Cachelines:    ix.Cachelines(),
		VPC:           ix.ValuesPerCacheline(),
		DictEntries:   ix.DictEntries(),
		StoredVectors: ix.StoredVectors(),
		Compression:   ix.CompressionRatio(),
		Entropy:       ix.Entropy(),
		BuildTime:     buildTime,
		ImprintsBytes: ix.SizeBytes(),
		ZonemapBytes:  zm.SizeBytes(),
		WAHBytes:      wb.SizeBytes(),
	}
	if fingerprintLines > 0 {
		r.Fingerprint = ix.Fingerprint(fingerprintLines)
	}
	if withSweep {
		res := make([]uint32, 0, len(col))
		for _, q := range workload.Ranges(col, workload.DefaultSelectivities(), 1, 7) {
			row := SweepRow{Selectivity: q.Achieved}
			t0 := time.Now()
			ids, _ := scan.RangeIDs(col, q.Low, q.High, res[:0])
			row.ScanUs = time.Since(t0).Microseconds()
			row.Results = len(ids)
			t0 = time.Now()
			res, _ = ix.RangeIDs(q.Low, q.High, res[:0])
			row.ImpUs = time.Since(t0).Microseconds()
			t0 = time.Now()
			res, _ = zm.RangeIDs(q.Low, q.High, res[:0])
			row.ZmUs = time.Since(t0).Microseconds()
			t0 = time.Now()
			res, _ = wb.RangeIDs(q.Low, q.High, res[:0])
			row.WahUs = time.Since(t0).Microseconds()
			r.Sweep = append(r.Sweep, row)
		}
	}
	return r, nil
}

// Render formats the report for the terminal.
func (r *Report) Render() string {
	var sb strings.Builder
	sz := func(b int64) string { return fmt.Sprintf("%.2fMB", float64(b)/(1<<20)) }
	fmt.Fprintf(&sb, "column        %s (%s, %d rows, %s)\n", r.Name, r.TypeName, r.Rows, sz(r.ColBytes))
	fmt.Fprintf(&sb, "bins          %d (%d unique sampled)\n", r.Bins, r.SampledUnique)
	fmt.Fprintf(&sb, "cachelines    %d (%d values each)\n", r.Cachelines, r.VPC)
	fmt.Fprintf(&sb, "dict entries  %d\n", r.DictEntries)
	fmt.Fprintf(&sb, "vectors       %d stored (compression ratio %.4f)\n", r.StoredVectors, r.Compression)
	fmt.Fprintf(&sb, "entropy       %.6f\n", r.Entropy)
	fmt.Fprintf(&sb, "build time    %v\n", r.BuildTime)
	fmt.Fprintf(&sb, "index sizes   imprints %s | zonemap %s | wah %s\n",
		sz(r.ImprintsBytes), sz(r.ZonemapBytes), sz(r.WAHBytes))
	fmt.Fprintf(&sb, "overhead      imprints %.1f%% | zonemap %.1f%% | wah %.1f%%\n",
		100*float64(r.ImprintsBytes)/float64(r.ColBytes),
		100*float64(r.ZonemapBytes)/float64(r.ColBytes),
		100*float64(r.WAHBytes)/float64(r.ColBytes))
	if r.Fingerprint != "" {
		fmt.Fprintf(&sb, "\nimprint fingerprint:\n%s", r.Fingerprint)
	}
	if len(r.Sweep) > 0 {
		sb.WriteString("\nselectivity sweep ([low,high) per step, times in µs):\n")
		sb.WriteString("sel      scan     imprints zonemap  wah      results\n")
		for _, row := range r.Sweep {
			fmt.Fprintf(&sb, "%-8.3f %-8d %-8d %-8d %-8d %d\n",
				row.Selectivity, row.ScanUs, row.ImpUs, row.ZmUs, row.WahUs, row.Results)
		}
	}
	return sb.String()
}
