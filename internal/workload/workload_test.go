package workload

import (
	"math/rand/v2"
	"testing"
)

func TestDefaultSelectivities(t *testing.T) {
	s := DefaultSelectivities()
	if len(s) != 10 {
		t.Fatalf("len = %d, want 10", len(s))
	}
	if s[0] >= 0.1 {
		t.Errorf("first step %v not < 0.1", s[0])
	}
	if s[9] <= 0.9 {
		t.Errorf("last step %v not > 0.9", s[9])
	}
	for i := 1; i < len(s); i++ {
		if d := s[i] - s[i-1]; d < 0.099 || d > 0.101 {
			t.Errorf("step %d delta %v, want 0.1", i, d)
		}
	}
}

func TestRangesAchieveTargets(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	col := make([]int64, 50000)
	for i := range col {
		col[i] = int64(rng.IntN(1 << 30))
	}
	qs := Ranges(col, DefaultSelectivities(), 3, 7)
	if len(qs) != 30 {
		t.Fatalf("generated %d queries, want 30", len(qs))
	}
	for _, q := range qs {
		if q.High < q.Low {
			t.Fatalf("inverted range %v..%v", q.Low, q.High)
		}
		if diff := q.Achieved - q.Target; diff < -0.05 || diff > 0.05 {
			t.Errorf("target %.2f achieved %.3f", q.Target, q.Achieved)
		}
		// Cross-check Achieved against a real scan.
		count := 0
		for _, v := range col {
			if v >= q.Low && v < q.High {
				count++
			}
		}
		got := float64(count) / float64(len(col))
		if got != q.Achieved {
			t.Fatalf("Achieved %v but scan says %v", q.Achieved, got)
		}
	}
}

func TestRangesSkewedColumn(t *testing.T) {
	// 90% of values identical: when both borders land inside the
	// duplicate run the generator must widen the range instead of
	// emitting an empty [v, v). Exact selectivity targeting is
	// impossible when a single value holds most of the mass, but the
	// queries must never be degenerate.
	rng := rand.New(rand.NewPCG(2, 2))
	col := make([]int32, 20000)
	for i := range col {
		if rng.IntN(10) == 0 {
			col[i] = int32(rng.IntN(1000000))
		} else {
			col[i] = 500000
		}
	}
	qs := Ranges(col, []float64{0.25, 0.75}, 5, 3)
	for _, q := range qs {
		if q.Achieved <= 0 {
			t.Errorf("skewed: target %.2f produced an empty range [%d,%d)",
				q.Target, q.Low, q.High)
		}
	}
}

func TestRangesConstantColumn(t *testing.T) {
	col := make([]int64, 1000)
	for i := range col {
		col[i] = 7
	}
	qs := Ranges(col, []float64{0.5}, 3, 5)
	for _, q := range qs {
		if q.Achieved != 1 {
			t.Errorf("constant column: achieved %v, want 1 (whole run)", q.Achieved)
		}
	}
}

func TestRangesMaxValueRun(t *testing.T) {
	// Duplicate run at the float maximum: bumpUp must push the upper
	// border past it.
	col := make([]float64, 100)
	for i := range col {
		col[i] = 123.5
	}
	qs := Ranges(col, []float64{0.9}, 2, 6)
	for _, q := range qs {
		if q.Achieved != 1 {
			t.Errorf("max-run: achieved %v, want 1", q.Achieved)
		}
	}
}

func TestRangesFloatColumn(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	col := make([]float64, 30000)
	for i := range col {
		col[i] = rng.Float64()
	}
	qs := Ranges(col, []float64{0.5}, 10, 11)
	for _, q := range qs {
		if diff := q.Achieved - q.Target; diff < -0.03 || diff > 0.03 {
			t.Errorf("float: target %.2f achieved %.3f", q.Target, q.Achieved)
		}
	}
}

func TestRangesDeterministic(t *testing.T) {
	col := make([]int64, 1000)
	rng := rand.New(rand.NewPCG(4, 4))
	for i := range col {
		col[i] = int64(rng.IntN(100000))
	}
	a := Ranges(col, []float64{0.3}, 5, 9)
	b := Ranges(col, []float64{0.3}, 5, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs between runs", i)
		}
	}
}

func TestRangesTinyColumn(t *testing.T) {
	col := []int64{5}
	qs := Ranges(col, []float64{0.5, 0.95}, 2, 1)
	if len(qs) != 4 {
		t.Fatalf("generated %d queries", len(qs))
	}
	// Must not panic; ranges may be empty but never inverted.
	for _, q := range qs {
		if q.High < q.Low {
			t.Fatal("inverted range on tiny column")
		}
	}
}

func TestRangesEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ranges([]int64{}, []float64{0.5}, 1, 1)
}

func TestSelectivityClamping(t *testing.T) {
	col := make([]int64, 100)
	for i := range col {
		col[i] = int64(i)
	}
	qs := Ranges(col, []float64{-0.5, 1.5}, 1, 1)
	if len(qs) != 2 {
		t.Fatalf("generated %d queries", len(qs))
	}
	if qs[0].Achieved > 0.05 {
		t.Errorf("clamped-to-0 query achieved %v", qs[0].Achieved)
	}
	if qs[1].Achieved < 0.9 {
		t.Errorf("clamped-to-1 query achieved %v", qs[1].Achieved)
	}
}
