// Package workload generates range-query workloads with controlled
// selectivity, reproducing the evaluation protocol of Section 6.3: "For
// each column, ten different range queries with varying selectivity are
// created. The selectivity starts from less than 0.1 and increases each
// time by 0.1, until it surpasses 0.9."
package workload

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/coltype"
)

// Query is one half-open range query [Low, High) with its selectivity
// bookkeeping.
type Query[V coltype.Value] struct {
	Low, High V
	// Target is the selectivity the generator aimed for.
	Target float64
	// Achieved is the exact fraction of column rows in [Low, High).
	Achieved float64
}

// DefaultSelectivities are the ten paper steps: just under 0.1 up to just
// over 0.9.
func DefaultSelectivities() []float64 {
	s := make([]float64, 10)
	for i := range s {
		s[i] = 0.05 + 0.1*float64(i)
	}
	return s
}

// Ranges generates perSel queries per selectivity step. Query borders are
// drawn from the column's own value distribution (via a sorted copy), so
// the achieved selectivity tracks the target even under heavy skew.
func Ranges[V coltype.Value](col []V, selectivities []float64, perSel int, seed uint64) []Query[V] {
	if len(col) == 0 {
		panic("workload: empty column")
	}
	sorted := make([]V, len(col))
	copy(sorted, col)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b9))

	n := len(sorted)
	var out []Query[V]
	for _, sel := range selectivities {
		if sel < 0 {
			sel = 0
		}
		if sel > 1 {
			sel = 1
		}
		k := int(sel * float64(n))
		if k >= n {
			k = n - 1
		}
		for q := 0; q < perSel; q++ {
			start := 0
			if n-k > 0 {
				start = rng.IntN(n - k)
			}
			low := sorted[start]
			high := sorted[start+k] // exclusive end value
			if high < low {
				low, high = high, low
			}
			if high == low {
				// Both borders landed inside one duplicate run; the
				// half-open range would be empty. Extend to the next
				// distinct value so the run itself qualifies.
				j := sort.Search(n, func(i int) bool { return sorted[i] > low })
				if j < n {
					high = sorted[j]
				} else {
					high = bumpUp(low)
				}
			}
			out = append(out, Query[V]{
				Low:      low,
				High:     high,
				Target:   sel,
				Achieved: achieved(sorted, low, high),
			})
		}
	}
	return out
}

// achieved computes |{v : low <= v < high}| / n over the sorted copy.
func achieved[V coltype.Value](sorted []V, low, high V) float64 {
	lo := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= low })
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= high })
	return float64(hi-lo) / float64(len(sorted))
}

// bumpUp returns the smallest representable value above v (or v itself at
// the top of the domain). It lets a half-open range include a run of the
// column's maximum value.
func bumpUp[V coltype.Value](v V) V {
	if v == coltype.MaxOf[V]() {
		return v
	}
	if coltype.IsFloat[V]() {
		if coltype.Width[V]() == 4 {
			f := math.Nextafter32(float32(v), float32(math.Inf(1)))
			return V(f)
		}
		f := math.Nextafter(float64(v), math.Inf(1))
		return V(f)
	}
	return v + 1
}
