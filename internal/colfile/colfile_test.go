package colfile

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/column"
)

func roundTrip[V interface {
	int8 | int16 | int32 | int64 | uint8 | uint16 | uint32 | uint64 | float32 | float64
}](t *testing.T, col []V) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, col); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read[V](&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(col) {
		t.Fatalf("rows %d, want %d", len(got), len(col))
	}
	for i := range col {
		if got[i] != col[i] {
			t.Fatalf("row %d = %v, want %v", i, got[i], col[i])
		}
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	n := 1000
	i8 := make([]int8, n)
	i16 := make([]int16, n)
	i32 := make([]int32, n)
	i64 := make([]int64, n)
	u8 := make([]uint8, n)
	u64 := make([]uint64, n)
	f32 := make([]float32, n)
	f64 := make([]float64, n)
	for i := 0; i < n; i++ {
		i8[i] = int8(rng.IntN(256) - 128)
		i16[i] = int16(rng.IntN(1<<16) - 1<<15)
		i32[i] = int32(rng.IntN(1<<31) - 1<<30)
		i64[i] = rng.Int64() - (1 << 62)
		u8[i] = uint8(rng.IntN(256))
		u64[i] = rng.Uint64()
		f32[i] = rng.Float32()*2e6 - 1e6
		f64[i] = rng.Float64()*2e12 - 1e12
	}
	roundTrip(t, i8)
	roundTrip(t, i16)
	roundTrip(t, i32)
	roundTrip(t, i64)
	roundTrip(t, u8)
	roundTrip(t, u64)
	roundTrip(t, f32)
	roundTrip(t, f64)
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, []int32{})
}

func TestRoundTripSpecialFloats(t *testing.T) {
	col := []float64{0, -0, math.MaxFloat64, -math.MaxFloat64, math.Inf(1), math.Inf(-1)}
	roundTrip(t, col)
}

func TestKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Read[float64](&buf); !errors.Is(err, ErrFormat) {
		t.Fatalf("kind mismatch: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read[int64](bytes.NewReader([]byte("NOPEnopenopenope"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read[int64](bytes.NewReader(raw[:len(raw)-4])); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncation: %v", err)
	}
}

func TestKindPeek(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []float32{1.5}); err != nil {
		t.Fatal(err)
	}
	k, err := Kind(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != reflect.Float32 {
		t.Errorf("Kind = %v", k)
	}
}

func TestWriteAny(t *testing.T) {
	c := column.New("x", []int32{4, 5, 6})
	var buf bytes.Buffer
	if err := WriteAny(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read[int32](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestWriteAnyAllKinds(t *testing.T) {
	cols := []column.Any{
		column.New("a", []int8{1}),
		column.New("b", []int16{2}),
		column.New("c", []int64{3}),
		column.New("d", []uint16{4}),
		column.New("e", []uint32{5}),
		column.New("f", []uint64{6}),
		column.New("g", []float32{7}),
		column.New("h", []float64{8}),
		column.New("i", []uint8{9}),
	}
	for _, c := range cols {
		var buf bytes.Buffer
		if err := WriteAny(&buf, c); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}
