// Package colfile reads and writes typed columns as flat binary files,
// the interchange format of the cmd/ tools (imprintgen writes datasets,
// imprintdump builds indexes over them).
//
// Format (little endian): magic "CCOL", version uint16, kind uint8
// (reflect.Kind), rows uint64, then rows values at native width.
package colfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"

	"repro/internal/coltype"
	"repro/internal/column"
)

const (
	magic   = "CCOL"
	version = 1
)

// ErrFormat reports an invalid column file.
var ErrFormat = errors.New("colfile: invalid column file")

// Write serializes col to w.
func Write[V coltype.Value](w io.Writer, col []V) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var hdr [11]byte
	binary.LittleEndian.PutUint16(hdr[0:2], version)
	var zero V
	hdr[2] = uint8(reflect.TypeOf(zero).Kind())
	binary.LittleEndian.PutUint64(hdr[3:11], uint64(len(col)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	width := coltype.Width[V]()
	var buf [8]byte
	for _, v := range col {
		putValue(buf[:width], v)
		if _, err := bw.Write(buf[:width]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a column of type V from r. It fails if the file
// holds a different value kind.
func Read[V coltype.Value](r io.Reader) ([]V, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+11)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	var zero V
	wantKind := reflect.TypeOf(zero).Kind()
	if k := reflect.Kind(head[6]); k != wantKind {
		return nil, fmt.Errorf("%w: file holds %v, want %v", ErrFormat, k, wantKind)
	}
	n := binary.LittleEndian.Uint64(head[7:15])
	const maxRows = 1 << 40
	if n > maxRows {
		return nil, fmt.Errorf("%w: absurd row count %d", ErrFormat, n)
	}
	width := coltype.Width[V]()
	col := make([]V, n)
	buf := make([]byte, width)
	for i := range col {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated at row %d: %v", ErrFormat, i, err)
		}
		col[i] = getValue[V](buf)
	}
	return col, nil
}

// Kind peeks the value kind of a column file without decoding values.
func Kind(r io.Reader) (reflect.Kind, error) {
	head := make([]byte, 4+11)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if string(head[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	return reflect.Kind(head[6]), nil
}

// WriteAny serializes a type-erased column (any *column.Column[V]
// instantiation) by dispatching to the typed Write.
func WriteAny(w io.Writer, c column.Any) error {
	switch col := c.(type) {
	case *column.Column[int8]:
		return Write(w, col.Values())
	case *column.Column[int16]:
		return Write(w, col.Values())
	case *column.Column[int32]:
		return Write(w, col.Values())
	case *column.Column[int64]:
		return Write(w, col.Values())
	case *column.Column[uint8]:
		return Write(w, col.Values())
	case *column.Column[uint16]:
		return Write(w, col.Values())
	case *column.Column[uint32]:
		return Write(w, col.Values())
	case *column.Column[uint64]:
		return Write(w, col.Values())
	case *column.Column[float32]:
		return Write(w, col.Values())
	case *column.Column[float64]:
		return Write(w, col.Values())
	}
	return fmt.Errorf("colfile: unsupported column type %T", c)
}

func putValue[V coltype.Value](dst []byte, v V) {
	rv := reflect.ValueOf(v)
	var u uint64
	switch rv.Kind() {
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		u = uint64(rv.Int())
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u = rv.Uint()
	case reflect.Float32:
		u = uint64(math.Float32bits(float32(rv.Float())))
	case reflect.Float64:
		u = math.Float64bits(rv.Float())
	}
	switch len(dst) {
	case 1:
		dst[0] = byte(u)
	case 2:
		binary.LittleEndian.PutUint16(dst, uint16(u))
	case 4:
		binary.LittleEndian.PutUint32(dst, uint32(u))
	case 8:
		binary.LittleEndian.PutUint64(dst, u)
	}
}

func getValue[V coltype.Value](src []byte) V {
	var u uint64
	switch len(src) {
	case 1:
		u = uint64(src[0])
	case 2:
		u = uint64(binary.LittleEndian.Uint16(src))
	case 4:
		u = uint64(binary.LittleEndian.Uint32(src))
	case 8:
		u = binary.LittleEndian.Uint64(src)
	}
	var v V
	switch reflect.TypeOf(v).Kind() {
	case reflect.Int8:
		i := int64(int8(u))
		return V(i)
	case reflect.Int16:
		i := int64(int16(u))
		return V(i)
	case reflect.Int32:
		i := int64(int32(u))
		return V(i)
	case reflect.Int64:
		i := int64(u)
		return V(i)
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return V(u)
	case reflect.Float32:
		f := float64(math.Float32frombits(uint32(u)))
		return V(f)
	case reflect.Float64:
		f := math.Float64frombits(u)
		return V(f)
	}
	panic("colfile: unsupported kind")
}
