package delta

import "testing"

func row(vs ...any) []any { return vs }

func TestStoreAppendAndViews(t *testing.T) {
	s := NewStore(100, []string{"a", "b"})
	if s.Len() != 0 || s.Base() != 100 {
		t.Fatalf("fresh store: len=%d base=%d", s.Len(), s.Base())
	}
	if err := s.Append([][]any{row(int64(1))}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := s.Append([][]any{row(int64(1), "x"), row(int64(2), "y")}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.ColIndex("b") != 1 || s.ColIndex("nope") != -1 {
		t.Fatal("ColIndex wrong")
	}
	base, rows := s.View()
	if base != 100 || len(rows) != 2 || rows[1][1] != "y" {
		t.Fatalf("View = %d %v", base, rows)
	}
}

// The generation contract is what makes optimistic off-lock seal builds
// safe: appends must NOT invalidate a captured prefix (they only extend
// it), while Set, Truncate, SetBase and SetCols must.
func TestStoreGenerationContract(t *testing.T) {
	s := NewStore(0, []string{"a"})
	if err := s.Append([][]any{row(int64(1)), row(int64(2)), row(int64(3))}); err != nil {
		t.Fatal(err)
	}
	base, rows, gen := s.CopyPrefix(2)
	if base != 0 || len(rows) != 2 {
		t.Fatalf("CopyPrefix = %d %v", base, rows)
	}
	if !s.Matches(base, gen, 2) {
		t.Fatal("fresh prefix does not match")
	}
	if err := s.Append([][]any{row(int64(4))}); err != nil {
		t.Fatal(err)
	}
	if !s.Matches(base, gen, 2) {
		t.Fatal("append invalidated the prefix")
	}
	s.Set(2, 0, int64(99))
	if s.Matches(base, gen, 2) {
		t.Fatal("Set did not invalidate the prefix")
	}
	// Set is copy-on-write: the captured inner rows are untouched.
	if rows[1][0] != int64(2) {
		t.Fatalf("captured row mutated: %v", rows[1])
	}

	_, _, gen = s.CopyPrefix(4)
	s.Truncate(2)
	if s.Matches(2, gen, 1) {
		t.Fatal("Truncate did not bump the generation")
	}
	if s.Base() != 2 || s.Len() != 2 {
		t.Fatalf("after Truncate: base=%d len=%d", s.Base(), s.Len())
	}
	if _, rows := s.View(); rows[1][0] != int64(4) {
		t.Fatalf("surviving rows wrong: %v", rows)
	}
}

func TestStoreRelayout(t *testing.T) {
	s := NewStore(0, []string{"a"})
	if err := s.Append([][]any{row(int64(1))}); err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"SetCols": func() { s.SetCols([]string{"a", "b"}) },
		"SetBase": func() { s.SetBase(7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on a non-empty store did not panic", name)
				}
			}()
			f()
		}()
	}
	s.Truncate(1)
	s.SetCols([]string{"a", "b"})
	s.SetBase(7)
	if got := s.Cols(); len(got) != 2 || s.Base() != 7 {
		t.Fatalf("relayout: cols=%v base=%d", got, s.Base())
	}
}
