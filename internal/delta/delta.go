// Package delta implements the in-memory write buffer of the table
// layer's LSM-style ingest path: an append-only, row-major, unindexed
// store that absorbs batches without touching the columnar segments.
// Rows live here until a sealer cuts full segment-sized chunks off the
// front (building their indexes off the write path) or a flush folds
// the remainder into the columnar tail.
//
// The store carries its own lock so appends never contend with the
// owning table's reader/writer lock — that separation is what lets
// streaming writers run while readers hold the table lock for whole
// query executions. The locking contract is split between the two
// locks:
//
//   - Append, Set, Truncate, SetBase and CopyPrefix serialize on the
//     store mutex alone.
//   - View returns the live rows slice without copying; the caller
//     must hold the owning table's lock (shared is enough) so that Set
//     and Truncate — which run under the table's exclusive lock — are
//     excluded for the lifetime of the view. Concurrent Appends are
//     safe against a view: they only write beyond the viewed prefix.
//   - Inner row slices are immutable once appended; Set replaces the
//     whole row (copy-on-write), so a background sealer may read rows
//     obtained from CopyPrefix without any lock.
//
// The generation counter makes optimistic off-lock builds safe: Set,
// Truncate and SetBase bump it, and an installer re-checks
// (base, gen) under the table's exclusive lock before committing a
// chunk built from a CopyPrefix snapshot — a stale build is discarded,
// never installed.
package delta

import (
	"fmt"
	"sync"
)

// Store is one table's in-memory delta: rows appended since the last
// seal or flush, in arrival order. Row i holds the values of global
// row base+i, one value per column in layout order.
type Store struct {
	mu   sync.RWMutex
	cols []string
	rows [][]any
	base int
	gen  uint64
}

// NewStore creates an empty store whose first row will be global row
// base, with the given column layout.
func NewStore(base int, cols []string) *Store {
	return &Store{base: base, cols: append([]string(nil), cols...)}
}

// Append adds rows to the store. Every row must carry exactly one
// value per layout column; the outer and inner slices are retained, so
// callers must not reuse them.
func (s *Store) Append(rows [][]any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rows {
		if len(r) != len(s.cols) {
			return fmt.Errorf("delta: row has %d values, layout has %d columns", len(r), len(s.cols))
		}
	}
	s.rows = append(s.rows, rows...)
	return nil
}

// Len returns the number of buffered rows.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rows)
}

// Base returns the global row id of the first buffered row.
func (s *Store) Base() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// Cols returns the column layout (shared; callers must not mutate).
func (s *Store) Cols() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cols
}

// SetCols replaces the column layout. The store must be empty (layout
// changes flush first); callers hold the owning table's exclusive lock.
func (s *Store) SetCols(cols []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rows) != 0 {
		panic("delta: layout change on a non-empty store")
	}
	s.cols = append([]string(nil), cols...)
	s.gen++
}

// ColIndex returns the layout position of a column, or -1.
func (s *Store) ColIndex(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, c := range s.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// View returns the buffered rows without copying. The returned slice
// header is stable — concurrent Appends only ever write beyond its
// length — but element replacement (Set) and Truncate run under the
// owning table's exclusive lock, so callers must hold that table's
// lock (shared suffices) for as long as they read through the view.
func (s *Store) View() (base int, rows [][]any) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base, s.rows
}

// CopyPrefix copies the outer slice headers of up to n buffered rows,
// with the store identity (base, gen) the copy was taken at. The inner
// rows are immutable, so the copy is safe to read without any lock;
// installers must re-check Matches(base, gen) under the owning table's
// exclusive lock before committing work derived from it.
func (s *Store) CopyPrefix(n int) (base int, rows [][]any, gen uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n > len(s.rows) {
		n = len(s.rows)
	}
	return s.base, append([][]any(nil), s.rows[:n]...), s.gen
}

// Matches reports whether the store still has the given identity —
// no Set, Truncate or SetBase happened since it was captured — and at
// least the captured prefix is still buffered.
func (s *Store) Matches(base int, gen uint64, n int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base == base && s.gen == gen && n <= len(s.rows)
}

// Set replaces one value of one buffered row, copy-on-write: the row
// slice is replaced wholesale so concurrent readers of the old row see
// a consistent tuple. Callers hold the owning table's exclusive lock.
func (s *Store) Set(i, col int, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	row := append([]any(nil), s.rows[i]...)
	row[col] = v
	s.rows[i] = row
	s.gen++
}

// Truncate drops the first n buffered rows (they were sealed or
// flushed into columnar storage) and advances base past them. Callers
// hold the owning table's exclusive lock.
func (s *Store) Truncate(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = s.rows[n:]
	s.base += n
	s.gen++
}

// SetBase re-anchors an empty store at a new global row id (the owning
// table compacted or renumbered). Callers hold the table's exclusive
// lock.
func (s *Store) SetBase(base int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rows) != 0 {
		panic("delta: re-anchor of a non-empty store")
	}
	s.base = base
	s.gen++
}
