package zonemap

import (
	"repro/internal/coltype"
	"repro/internal/core"
)

// RangeCachelines evaluates [low, high) down to a candidate cacheline
// run list in the same currency as imprints (core.CandidateRun), so
// multi-attribute conjunctions can mix zonemap- and imprint-indexed
// columns through core.EvaluateAnd/Or/AndNot.
func (ix *Index[V]) RangeCachelines(low, high V) ([]core.CandidateRun, QueryStats) {
	var st QueryStats
	var runs []core.CandidateRun
	push := func(z int, exact bool) {
		if n := len(runs); n > 0 {
			last := &runs[n-1]
			if last.Exact == exact && last.Start+last.Count == uint32(z) {
				last.Count++
				return
			}
		}
		runs = append(runs, core.CandidateRun{Start: uint32(z), Count: 1, Exact: exact})
	}
	for z := 0; z < len(ix.mins); z++ {
		st.Probes++
		zmin, zmax := ix.mins[z], ix.maxs[z]
		if zmax < low || zmin >= high {
			st.ZonesSkipped++
			continue
		}
		if zmin >= low && zmax < high {
			st.ZonesExact++
			push(z, true)
			continue
		}
		st.ZonesScanned++
		push(z, false)
	}
	return runs, st
}

// RangeCheck returns the residual [low, high) predicate over the base
// column (core.CheckFunc).
func (ix *Index[V]) RangeCheck(low, high V) core.CheckFunc {
	col := ix.col
	return func(id uint32) bool {
		v := col[id]
		return v >= low && v < high
	}
}

// cachelinesWhere walks the zones with explicit skip/exact predicates
// over the zone [min, max] interval.
func (ix *Index[V]) cachelinesWhere(skip, exact func(zmin, zmax V) bool) ([]core.CandidateRun, QueryStats) {
	var st QueryStats
	var runs []core.CandidateRun
	push := func(z int, ex bool) {
		if n := len(runs); n > 0 {
			last := &runs[n-1]
			if last.Exact == ex && last.Start+last.Count == uint32(z) {
				last.Count++
				return
			}
		}
		runs = append(runs, core.CandidateRun{Start: uint32(z), Count: 1, Exact: ex})
	}
	for z := 0; z < len(ix.mins); z++ {
		st.Probes++
		zmin, zmax := ix.mins[z], ix.maxs[z]
		if skip(zmin, zmax) {
			st.ZonesSkipped++
			continue
		}
		if exact(zmin, zmax) {
			st.ZonesExact++
			push(z, true)
			continue
		}
		st.ZonesScanned++
		push(z, false)
	}
	return runs, st
}

// AtLeastCachelines evaluates v >= low down to candidate zones.
func (ix *Index[V]) AtLeastCachelines(low V) ([]core.CandidateRun, QueryStats) {
	return ix.cachelinesWhere(
		func(_, zmax V) bool { return zmax < low },
		func(zmin, _ V) bool { return zmin >= low },
	)
}

// LessThanCachelines evaluates v < high down to candidate zones.
func (ix *Index[V]) LessThanCachelines(high V) ([]core.CandidateRun, QueryStats) {
	return ix.cachelinesWhere(
		func(zmin, _ V) bool { return zmin >= high },
		func(_, zmax V) bool { return zmax < high },
	)
}

// InSetCachelines evaluates an IN-list down to candidate zones: a zone
// survives if any member falls inside its [min, max] interval.
func (ix *Index[V]) InSetCachelines(set []V) ([]core.CandidateRun, QueryStats) {
	return ix.cachelinesWhere(
		func(zmin, zmax V) bool {
			for _, v := range set {
				if v >= zmin && v <= zmax {
					return false
				}
			}
			return true
		},
		func(zmin, zmax V) bool {
			// Exact only when the zone is a single value present in set.
			if zmin != zmax {
				return false
			}
			for _, v := range set {
				if v == zmin {
					return true
				}
			}
			return false
		},
	)
}

// PointCachelines evaluates v == x down to candidate zones.
func (ix *Index[V]) PointCachelines(x V) ([]core.CandidateRun, QueryStats) {
	return ix.cachelinesWhere(
		func(zmin, zmax V) bool { return zmax < x || zmin > x },
		func(zmin, zmax V) bool { return zmin == x && zmax == x },
	)
}

// zoneConjunct adapts a zonemap range predicate to core.Conjunct.
type zoneConjunct[V coltype.Value] struct {
	ix        *Index[V]
	low, high V
}

// NewRangeConjunct builds a core.Conjunct over a zonemap so it can
// participate in mixed-index conjunctions. The zonemap's zone geometry
// must match the other conjuncts' cacheline geometry.
func NewRangeConjunct[V coltype.Value](ix *Index[V], low, high V) core.Conjunct {
	return &zoneConjunct[V]{ix: ix, low: low, high: high}
}

func (c *zoneConjunct[V]) Runs() ([]core.CandidateRun, core.QueryStats) {
	runs, st := c.ix.RangeCachelines(c.low, c.high)
	return runs, core.QueryStats{
		Probes:            st.Probes,
		Comparisons:       st.Comparisons,
		CachelinesScanned: st.ZonesScanned,
		CachelinesExact:   st.ZonesExact,
		CachelinesSkipped: st.ZonesSkipped,
	}
}

func (c *zoneConjunct[V]) Check() core.CheckFunc { return c.ix.RangeCheck(c.low, c.high) }

func (c *zoneConjunct[V]) Geometry() (vpc, n int) { return c.ix.vpz, c.ix.n }
