// Package zonemap implements the zonemap comparator of the paper
// (Sections 2.1 and 6): per-zone minimum and maximum value arrays, with
// zone size equal to the cacheline covered by one imprint vector so the
// comparison between the two indexes is apples-to-apples.
package zonemap

import (
	"repro/internal/coltype"
)

// Index is a zonemap over a column: two aligned arrays holding the min
// and max of each zone.
type Index[V coltype.Value] struct {
	col  []V
	mins []V
	maxs []V
	vpz  int // values per zone
	n    int
}

// Options configures zonemap construction.
type Options struct {
	// ValuesPerZone overrides the zone size; 0 derives it from the
	// 64-byte cacheline like imprints do.
	ValuesPerZone int
}

// Build constructs a zonemap over col. It panics if col is empty.
func Build[V coltype.Value](col []V, opts Options) *Index[V] {
	if len(col) == 0 {
		panic("zonemap: empty column")
	}
	vpz := opts.ValuesPerZone
	if vpz <= 0 {
		vpz = coltype.ValuesPerCacheline[V]()
	}
	nz := (len(col) + vpz - 1) / vpz
	ix := &Index[V]{
		col:  col,
		mins: make([]V, 0, nz),
		maxs: make([]V, 0, nz),
		vpz:  vpz,
		n:    len(col),
	}
	for z := 0; z < nz; z++ {
		from := z * vpz
		to := from + vpz
		if to > len(col) {
			to = len(col)
		}
		lo, hi := col[from], col[from]
		for _, v := range col[from+1 : to] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		ix.mins = append(ix.mins, lo)
		ix.maxs = append(ix.maxs, hi)
	}
	return ix
}

// Len returns the number of values covered.
func (ix *Index[V]) Len() int { return ix.n }

// Zones returns the number of zones.
func (ix *Index[V]) Zones() int { return len(ix.mins) }

// ValuesPerZone returns the zone size in values.
func (ix *Index[V]) ValuesPerZone() int { return ix.vpz }

// SizeBytes returns the footprint: two value arrays.
func (ix *Index[V]) SizeBytes() int64 {
	return int64(len(ix.mins)+len(ix.maxs)) * int64(coltype.Width[V]())
}

// QueryStats mirrors core.QueryStats for the comparator: Probes counts
// zone min/max inspections, Comparisons counts per-value checks.
type QueryStats struct {
	Probes       uint64
	Comparisons  uint64
	ZonesScanned uint64
	ZonesExact   uint64
	ZonesSkipped uint64
}

// RangeIDs returns ascending ids of values in [low, high). A zone whose
// [min, max] lies entirely inside the query range is emitted without
// value checks (the same rigidity as the imprints innermask fast path).
func (ix *Index[V]) RangeIDs(low, high V, res []uint32) ([]uint32, QueryStats) {
	var st QueryStats
	col := ix.col
	for z := 0; z < len(ix.mins); z++ {
		st.Probes++
		zmin, zmax := ix.mins[z], ix.maxs[z]
		// Overlap test: [zmin, zmax] vs [low, high).
		if zmax < low || zmin >= high {
			st.ZonesSkipped++
			continue
		}
		from := z * ix.vpz
		to := from + ix.vpz
		if to > ix.n {
			to = ix.n
		}
		if zmin >= low && zmax < high {
			// Fully contained: all values qualify.
			st.ZonesExact++
			for id := from; id < to; id++ {
				res = append(res, uint32(id))
			}
			continue
		}
		st.ZonesScanned++
		for id := from; id < to; id++ {
			st.Comparisons++
			v := col[id]
			if v >= low && v < high {
				res = append(res, uint32(id))
			}
		}
	}
	return res, st
}

// CountRange returns the number of values in [low, high).
func (ix *Index[V]) CountRange(low, high V) (uint64, QueryStats) {
	var st QueryStats
	col := ix.col
	var count uint64
	for z := 0; z < len(ix.mins); z++ {
		st.Probes++
		zmin, zmax := ix.mins[z], ix.maxs[z]
		if zmax < low || zmin >= high {
			st.ZonesSkipped++
			continue
		}
		from := z * ix.vpz
		to := from + ix.vpz
		if to > ix.n {
			to = ix.n
		}
		if zmin >= low && zmax < high {
			st.ZonesExact++
			count += uint64(to - from)
			continue
		}
		st.ZonesScanned++
		for id := from; id < to; id++ {
			st.Comparisons++
			v := col[id]
			if v >= low && v < high {
				count++
			}
		}
	}
	return count, st
}

// Widen grows the zone covering row id so that it also admits value v —
// the zonemap analogue of the imprint's MarkUpdated (Section 4.2):
// queries stay sound (no false negatives) at the cost of looser bounds.
func (ix *Index[V]) Widen(id int, v V) {
	if id < 0 || id >= ix.n {
		panic("zonemap: Widen id out of range")
	}
	z := id / ix.vpz
	if v < ix.mins[z] {
		ix.mins[z] = v
	}
	if v > ix.maxs[z] {
		ix.maxs[z] = v
	}
}

// Append extends the zonemap over newly appended rows; col must be the
// complete column including the indexed prefix.
func (ix *Index[V]) Append(col []V) {
	if len(col) < ix.n {
		panic("zonemap: Append column shorter than the indexed prefix")
	}
	ix.col = col
	// The last zone may have been partial: recompute it.
	if ix.n%ix.vpz != 0 && len(ix.mins) > 0 {
		ix.mins = ix.mins[:len(ix.mins)-1]
		ix.maxs = ix.maxs[:len(ix.maxs)-1]
	}
	start := len(ix.mins) * ix.vpz
	for from := start; from < len(col); from += ix.vpz {
		to := from + ix.vpz
		if to > len(col) {
			to = len(col)
		}
		lo, hi := col[from], col[from]
		for _, v := range col[from+1 : to] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		ix.mins = append(ix.mins, lo)
		ix.maxs = append(ix.maxs, hi)
	}
	ix.n = len(col)
}
