package zonemap

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/coltype"
)

func scanIDs[V coltype.Value](col []V, low, high V) []uint32 {
	var ids []uint32
	for i, v := range col {
		if v >= low && v < high {
			ids = append(ids, uint32(i))
		}
	}
	return ids
}

func equalIDs(t *testing.T, got, want []uint32, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: id[%d] = %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

func TestBuildGeometry(t *testing.T) {
	col := make([]int64, 1000)
	ix := Build(col, Options{})
	if ix.ValuesPerZone() != 8 {
		t.Errorf("ValuesPerZone = %d", ix.ValuesPerZone())
	}
	if ix.Zones() != 125 {
		t.Errorf("Zones = %d", ix.Zones())
	}
	if ix.SizeBytes() != 125*2*8 {
		t.Errorf("SizeBytes = %d", ix.SizeBytes())
	}
}

func TestBuildPartialZone(t *testing.T) {
	col := make([]int64, 1003)
	for i := range col {
		col[i] = int64(i)
	}
	ix := Build(col, Options{})
	if ix.Zones() != 126 {
		t.Errorf("Zones = %d, want 126", ix.Zones())
	}
	got, _ := ix.RangeIDs(1000, 1003, nil)
	equalIDs(t, got, []uint32{1000, 1001, 1002}, "partial tail")
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build([]int64{}, Options{})
}

func TestRangeAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cols := map[string][]int64{}
	sorted := make([]int64, 5000)
	random := make([]int64, 5000)
	for i := range sorted {
		sorted[i] = int64(i * 2)
		random[i] = int64(rng.IntN(100000))
	}
	cols["sorted"] = sorted
	cols["random"] = random
	for name, col := range cols {
		ix := Build(col, Options{})
		for q := 0; q < 50; q++ {
			low := int64(rng.IntN(100000))
			high := low + int64(rng.IntN(20000))
			got, _ := ix.RangeIDs(low, high, nil)
			equalIDs(t, got, scanIDs(col, low, high), name)
		}
	}
}

func TestFullInclusionFastPath(t *testing.T) {
	col := make([]int64, 8000)
	for i := range col {
		col[i] = int64(i)
	}
	ix := Build(col, Options{})
	ids, st := ix.RangeIDs(0, 8000, nil)
	if len(ids) != 8000 {
		t.Fatalf("full range returned %d ids", len(ids))
	}
	if st.ZonesExact != uint64(ix.Zones()) {
		t.Errorf("ZonesExact = %d, want %d", st.ZonesExact, ix.Zones())
	}
	if st.Comparisons != 0 {
		t.Errorf("Comparisons = %d, want 0", st.Comparisons)
	}
}

func TestZonemapUselessOnSkewedData(t *testing.T) {
	// Section 2.2: min+max in every cacheline defeats zonemaps — no zone
	// can ever be skipped for an interior range.
	rng := rand.New(rand.NewPCG(2, 2))
	col := make([]int64, 8000)
	for i := range col {
		switch i % 8 {
		case 0:
			col[i] = 0
		case 1:
			col[i] = 1 << 40
		default:
			col[i] = int64(rng.IntN(1 << 40))
		}
	}
	ix := Build(col, Options{})
	_, st := ix.RangeIDs(1<<39, 1<<39+1<<34, nil)
	if st.ZonesSkipped != 0 {
		t.Errorf("zonemap skipped %d zones on min/max-skewed data", st.ZonesSkipped)
	}
	if st.Comparisons != uint64(len(col)) {
		t.Errorf("Comparisons = %d, want %d (full check)", st.Comparisons, len(col))
	}
}

func TestCountRangeMatchesRangeIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	col := make([]float64, 6000)
	for i := range col {
		col[i] = rng.Float64() * 1000
	}
	ix := Build(col, Options{})
	for q := 0; q < 30; q++ {
		low := rng.Float64() * 900
		high := low + rng.Float64()*100
		ids, _ := ix.RangeIDs(low, high, nil)
		cnt, _ := ix.CountRange(low, high)
		if uint64(len(ids)) != cnt {
			t.Fatalf("CountRange = %d, len(RangeIDs) = %d", cnt, len(ids))
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	col := make([]int32, 16000)
	for i := range col {
		col[i] = int32(rng.IntN(1 << 20))
	}
	ix := Build(col, Options{})
	_, st := ix.RangeIDs(0, 1<<19, nil)
	if st.Probes != uint64(ix.Zones()) {
		t.Errorf("Probes = %d, want %d", st.Probes, ix.Zones())
	}
	if st.ZonesExact+st.ZonesScanned+st.ZonesSkipped != uint64(ix.Zones()) {
		t.Error("zone accounting does not sum")
	}
}

func TestAppend(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	full := make([]int64, 4003)
	for i := range full {
		full[i] = int64(rng.IntN(10000))
	}
	for _, cut := range []int{1, 7, 8, 100, 4000} {
		ix := Build(full[:cut], Options{})
		ix.Append(full)
		bulk := Build(full, Options{})
		if ix.Zones() != bulk.Zones() {
			t.Fatalf("cut %d: zones %d vs %d", cut, ix.Zones(), bulk.Zones())
		}
		got, _ := ix.RangeIDs(2000, 7000, nil)
		want, _ := bulk.RangeIDs(2000, 7000, nil)
		equalIDs(t, got, want, "append")
	}
}

func TestAppendShorterPanics(t *testing.T) {
	ix := Build(make([]int64, 100), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.Append(make([]int64, 50))
}

func TestCustomZoneSize(t *testing.T) {
	col := make([]int64, 1024)
	for i := range col {
		col[i] = int64(i)
	}
	ix := Build(col, Options{ValuesPerZone: 128})
	if ix.Zones() != 8 {
		t.Errorf("Zones = %d, want 8", ix.Zones())
	}
	got, _ := ix.RangeIDs(100, 200, nil)
	equalIDs(t, got, scanIDs(col, 100, 200), "custom zone")
}

// Property: zonemap results equal the scan oracle.
func TestQuickRangeEqualsScan(t *testing.T) {
	f := func(seed uint64, a, b int32) bool {
		rng := rand.New(rand.NewPCG(seed, 0x2222))
		n := 1 + rng.IntN(3000)
		col := make([]int32, n)
		for i := range col {
			col[i] = int32(rng.IntN(10000) - 5000)
		}
		ix := Build(col, Options{})
		if a > b {
			a, b = b, a
		}
		got, _ := ix.RangeIDs(a, b, nil)
		want := scanIDs(col, a, b)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
