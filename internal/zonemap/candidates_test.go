package zonemap

import (
	"math/rand/v2"
	"testing"

	"repro/internal/core"
)

func TestRangeCachelinesConsistent(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	col := make([]int64, 6000)
	for i := range col {
		col[i] = int64(rng.IntN(100000))
	}
	ix := Build(col, Options{})
	for q := 0; q < 30; q++ {
		low := int64(rng.IntN(90000))
		high := low + int64(rng.IntN(10000))
		runs, _ := ix.RangeCachelines(low, high)
		ids, _ := core.MaterializeRuns(runs, ix.ValuesPerZone(), ix.Len(), nil, ix.RangeCheck(low, high))
		want, _ := ix.RangeIDs(low, high, nil)
		equalIDs(t, ids, want, "zonemap runs")
	}
}

func TestMixedIndexConjunction(t *testing.T) {
	// One column indexed with imprints, another with a zonemap: the
	// conjunction still evaluates through candidate run merge-join.
	n := 6000
	rng := rand.New(rand.NewPCG(10, 10))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(rng.IntN(10000))
		b[i] = int64(rng.IntN(10000))
	}
	imp := core.Build(a, core.Options{Seed: 1})
	zm := Build(b, Options{})
	for q := 0; q < 20; q++ {
		aLo := int64(rng.IntN(9000))
		aHi := aLo + int64(rng.IntN(2000))
		bLo := int64(rng.IntN(9000))
		bHi := bLo + int64(rng.IntN(2000))
		got, _ := core.EvaluateAnd(nil,
			core.NewRangeConjunct(imp, aLo, aHi),
			NewRangeConjunct(zm, bLo, bHi),
		)
		var want []uint32
		for i := 0; i < n; i++ {
			if a[i] >= aLo && a[i] < aHi && b[i] >= bLo && b[i] < bHi {
				want = append(want, uint32(i))
			}
		}
		equalIDs(t, got, want, "mixed conjunction")
	}
}

func TestMixedIndexDisjunction(t *testing.T) {
	n := 4000
	rng := rand.New(rand.NewPCG(11, 11))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64() * 100
		b[i] = rng.Float64() * 100
	}
	imp := core.Build(a, core.Options{Seed: 2})
	zm := Build(b, Options{})
	got, _ := core.EvaluateOr(nil,
		core.NewRangeConjunct(imp, 10.0, 20.0),
		NewRangeConjunct(zm, 80.0, 90.0),
	)
	var want []uint32
	for i := 0; i < n; i++ {
		if (a[i] >= 10 && a[i] < 20) || (b[i] >= 80 && b[i] < 90) {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "mixed disjunction")
}
