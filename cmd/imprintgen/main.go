// Command imprintgen materializes the synthetic dataset suite as binary
// column files (one file per column plus a manifest), for use with
// imprintdump or external tooling.
//
// Usage:
//
//	imprintgen [-out dir] [-dataset all|Routing|SDSS|Cnet|Airtraffic|TPC-H]
//	           [-scale 1.0] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/colfile"
	"repro/internal/column"
	"repro/internal/dataset"
)

func main() {
	var (
		out   = flag.String("out", "datasets", "output directory")
		which = flag.String("dataset", "all", "dataset name or 'all'")
		scale = flag.Float64("scale", 1.0, "scale factor")
		seed  = flag.Uint64("seed", 42, "generation seed")
	)
	flag.Parse()

	cfg := dataset.Config{Scale: *scale, Seed: *seed}
	var sets []*dataset.Dataset
	for _, d := range dataset.All(cfg) {
		if *which == "all" || strings.EqualFold(*which, d.Name) {
			sets = append(sets, d)
		}
	}
	if len(sets) == 0 {
		fmt.Fprintf(os.Stderr, "imprintgen: unknown dataset %q\n", *which)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "imprintgen:", err)
		os.Exit(1)
	}
	manifest, err := os.Create(filepath.Join(*out, "MANIFEST"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "imprintgen:", err)
		os.Exit(1)
	}
	for _, d := range sets {
		for _, c := range d.Columns {
			name := fmt.Sprintf("%s.%s.col", strings.ToLower(d.Name), c.Name())
			path := filepath.Join(*out, name)
			if err := writeColumn(path, c); err != nil {
				fmt.Fprintln(os.Stderr, "imprintgen:", err)
				os.Exit(1)
			}
			if _, err := fmt.Fprintf(manifest, "%s\t%s\t%s\t%d rows\t%d bytes\n",
				name, d.Name, c.TypeName(), c.Len(), c.SizeBytes()); err != nil {
				fmt.Fprintln(os.Stderr, "imprintgen: MANIFEST:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("%s\n", d)
	}
	// Close before announcing success: a short write surfacing at close
	// must not leave a truncated MANIFEST reported as written.
	if err := manifest.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "imprintgen: MANIFEST:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s/MANIFEST\n", *out)
}

func writeColumn(path string, c column.Any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := colfile.WriteAny(f, c); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
