package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/colfile"
	"repro/internal/column"
)

func TestWriteColumnRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.col")
	c := column.New("c", []int64{7, 8, 9})
	if err := writeColumn(path, c); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := colfile.Read[int64](f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Fatalf("got %v", got)
	}
}

func TestWriteColumnBadPath(t *testing.T) {
	c := column.New("c", []int64{1})
	if err := writeColumn(filepath.Join(t.TempDir(), "no", "such", "dir", "x.col"), c); err == nil {
		t.Fatal("invalid path accepted")
	}
}
