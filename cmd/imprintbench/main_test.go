package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestEmitCSVToDir(t *testing.T) {
	dir := t.TempDir()
	exp := &harness.Experiment{
		ID:     "fig0",
		Title:  "Test experiment",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	if err := emitCSV(exp, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if string(data) != want {
		t.Errorf("csv = %q, want %q", data, want)
	}
}

func TestEmitCSVEscaping(t *testing.T) {
	dir := t.TempDir()
	exp := &harness.Experiment{
		ID:     "q",
		Header: []string{"name"},
		Rows:   [][]string{{`value,with "quotes"`}},
	}
	if err := emitCSV(exp, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "q.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"value,with ""quotes"""`) {
		t.Errorf("csv escaping wrong: %q", data)
	}
}
