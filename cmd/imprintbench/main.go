// Command imprintbench regenerates the tables and figures of the column
// imprints paper (SIGMOD 2013) over the synthetic dataset suite, plus
// five table-layer experiments: queryplan drives the lazy Query API
// and reports the per-leaf EXPLAIN access paths (imprints probe vs
// zonemap vs scan fallback) over a mixed numeric/string relation,
// prepared measures the amortized prepare-once/execute-N serving loop
// of Table.Prepare against ad-hoc plan-per-query execution, segments
// measures segmented storage — parallel segment fan-out at several
// SelectOptions.Parallelism levels and min/max summary pruning —
// aggregate measures the segment-parallel aggregation pipeline: the
// pushdown hit-rates of the summary-answered / run-wholesale / scanned
// tiers plus grouped and top-k execution across a parallelism sweep —
// vectorized sweeps the block-at-a-time selection-mask kernels
// against the scalar residual path across selectivities (0.1%–50%) and
// parallelism 1/2/8, including an exact-run-dominated control workload,
// and serve load-tests the imprintd SQL serving stack over real HTTP at
// 1/8/64 concurrent clients, reporting p50/p99 latency, statement-cache
// hit rate, and admission-control rejections.
//
// Usage:
//
//	imprintbench [-exp all|table1|fig3|...|fig11|queryplan|prepared|segments|aggregate|vectorized|serve|ingest|shards|ingest-recover[,...]]
//	             [-scale 1.0] [-seed 42] [-queries 3] [-maxcols 0]
//	             [-format text|csv] [-json] [-outdir DIR]
//
// The default output is the text rendering of each experiment: the same
// rows and series the paper reports, regenerated at the configured
// scale. -format csv emits machine-readable rows instead (to stdout, or
// one file per experiment under -outdir), and -json emits one JSON
// document covering every experiment run — id, title, header, rows and
// elapsed milliseconds — for bench-trajectory tooling. EXPERIMENTS.md
// records a reference run against the paper's findings.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(harness.IDs(), ", ")+") or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = a few hundred thousand rows per dataset)")
		seed    = flag.Uint64("seed", 42, "deterministic generation seed")
		queries = flag.Int("queries", 3, "queries per selectivity step per column")
		maxcols = flag.Int("maxcols", 0, "max columns per dataset in query experiments (0 = all)")
		format  = flag.String("format", "text", "output format: text or csv")
		asJSON  = flag.Bool("json", false, "emit one JSON document with every experiment's results (overrides -format)")
		outdir  = flag.String("outdir", "", "with -format csv: write one CSV file per experiment here")
	)
	flag.Parse()

	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "imprintbench: unknown format %q\n", *format)
		os.Exit(2)
	}
	cfg := harness.Config{
		Scale:                 *scale,
		Seed:                  *seed,
		QueriesPerSelectivity: *queries,
		MaxColumnsPerDataset:  *maxcols,
	}

	ids := harness.IDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	var jsonOut []jsonExperiment
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		exp, err := harness.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "imprintbench:", err)
			os.Exit(2)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		switch {
		case *asJSON:
			jsonOut = append(jsonOut, jsonExperiment{
				ID:        exp.ID,
				Title:     exp.Title,
				Header:    exp.Header,
				Rows:      exp.Rows,
				ElapsedMS: elapsed.Milliseconds(),
			})
		case *format == "text":
			fmt.Printf("=== %s (%v)\n%s\n", exp.Title, elapsed, exp.Text)
		case *format == "csv":
			if err := emitCSV(exp, *outdir); err != nil {
				fmt.Fprintln(os.Stderr, "imprintbench:", err)
				os.Exit(1)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "imprintbench:", err)
			os.Exit(1)
		}
	}
}

// jsonExperiment is the machine-readable form one -json run emits per
// experiment.
type jsonExperiment struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Header    []string   `json:"header,omitempty"`
	Rows      [][]string `json:"rows,omitempty"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

// emitCSV writes an experiment's structured rows as CSV: to a per-
// experiment file under dir when set, otherwise to stdout with a
// leading comment line naming the experiment.
func emitCSV(exp *harness.Experiment, dir string) error {
	var w io.Writer = os.Stdout
	var f *os.File
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		var err error
		f, err = os.Create(filepath.Join(dir, exp.ID+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	} else {
		fmt.Fprintf(w, "# %s\n", exp.Title)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(exp.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(exp.Rows); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	// A buffered write can surface its error only at close; report it
	// rather than leaving a silently truncated CSV (the deferred Close
	// above then returns ErrClosed, which is safe to discard).
	if f != nil {
		return f.Close()
	}
	return nil
}
