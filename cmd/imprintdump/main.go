// Command imprintdump builds a column imprints index over a binary
// column file (written by imprintgen) and reports its statistics:
// geometry, compression, entropy, size against zonemap and WAH, and a
// Figure 3 style fingerprint.
//
// Usage:
//
//	imprintdump [-lines 24] [-queries] file.col
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"repro/internal/colfile"
	"repro/internal/coltype"
	"repro/internal/inspect"
)

func main() {
	var (
		lines   = flag.Int("lines", 24, "fingerprint lines to print (0 = none)")
		queries = flag.Bool("queries", false, "run the selectivity sweep and print per-query times")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: imprintdump [-lines N] [-queries] file.col")
		os.Exit(2)
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	kind, err := colfile.Kind(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}

	switch kind {
	case reflect.Int8:
		dump[int8](path, *lines, *queries)
	case reflect.Int16:
		dump[int16](path, *lines, *queries)
	case reflect.Int32:
		dump[int32](path, *lines, *queries)
	case reflect.Int64:
		dump[int64](path, *lines, *queries)
	case reflect.Uint8:
		dump[uint8](path, *lines, *queries)
	case reflect.Uint16:
		dump[uint16](path, *lines, *queries)
	case reflect.Uint32:
		dump[uint32](path, *lines, *queries)
	case reflect.Uint64:
		dump[uint64](path, *lines, *queries)
	case reflect.Float32:
		dump[float32](path, *lines, *queries)
	case reflect.Float64:
		dump[float64](path, *lines, *queries)
	default:
		fatal(fmt.Errorf("unsupported value kind %v", kind))
	}
}

func dump[V coltype.Value](path string, lines int, withQueries bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	col, err := colfile.Read[V](f)
	if err != nil {
		fatal(err)
	}
	report, err := inspect.Column(path, col, lines, withQueries)
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imprintdump:", err)
	os.Exit(1)
}
