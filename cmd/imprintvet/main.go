// Command imprintvet runs the repo's invariant analyzers (locksafe,
// snapshotsafe, detmerge, hotalloc — see internal/analyzers) as a
// `go vet` tool:
//
//	go build -o /tmp/imprintvet ./cmd/imprintvet
//	go vet -vettool=/tmp/imprintvet ./...
//
// It speaks the cmd/go unitchecker protocol directly on the standard
// library: go vet invokes the tool once per package with a vet.cfg
// describing the files and the export data of every dependency
// (already compiled into the build cache), the tool type-checks the
// package against that export data and prints file:line:col
// diagnostics on stderr, exiting nonzero if there are any.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analyzers"
)

// vetConfig is the subset of cmd/go's vet.cfg JSON the tool consumes.
type vetConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	os.Exit(run())
}

func run() int {
	vFlag := flag.String("V", "", "print version and exit (protocol handshake)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flag schema and exit")
	flag.Parse()

	// go vet's handshake: -V=full wants a unique version string (the
	// binary's own hash serves as build ID), -flags wants the JSON
	// schema of tool flags (none).
	if *vFlag == "full" {
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
			filepath.Base(os.Args[0]), selfHash())
		return 0
	}
	if *flagsFlag {
		fmt.Println("[]")
		return 0
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: imprintvet vet.cfg (run via go vet -vettool=imprintvet)")
		return 2
	}
	cfg, err := readConfig(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Every invocation must write its facts file, even for dependency
	// packages analyzed only for export (VetxOnly) — cmd/go caches it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("imprintvet facts v1\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	diags, err := analyze(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return cfg, nil
}

func analyze(cfg *vetConfig) ([]analyzers.Diagnostic, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Dependencies import through the export data files cmd/go listed
	// in PackageFile, with source import paths canonicalized through
	// ImportMap (vendoring, module versions).
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tc := &types.Config{
		Importer: &mapImporter{
			imp:       importer.ForCompiler(fset, compiler, lookup),
			importMap: cfg.ImportMap,
		},
		Sizes: types.SizesFor(compiler, "amd64"),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return analyzers.RunPackage(fset, files, pkg, info), nil
}

type mapImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}

func selfHash() []byte {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	return h.Sum(nil)
}
