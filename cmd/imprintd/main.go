// Command imprintd serves SQL queries over JSON/HTTP against one
// imprint-indexed table. It fronts the table layer with a bounded
// worker pool (admission control: overflow answers 429), an LRU of
// prepared statements keyed by normalized query text, and per-query
// deadlines propagated into the segment fan-out so canceled queries
// stop scanning between segments.
//
// Usage:
//
//	imprintd [-addr :8080] [-load table.ctbl | -sample 100000]
//	         [-seed 42] [-segment-rows 0] [-shards 1]
//	         [-workers 0] [-queue 0] [-cache 128]
//	         [-default-timeout 0] [-parallelism 1]
//	         [-ingest] [-max-shard-backlog 0]
//	         [-wal DIR] [-fsync always|group|off] [-group-window 2ms]
//	         [-quarantine]
//
// Exactly one of -load (a table file written by Table.Write) or
// -sample (a synthetic "orders" table with that many rows) selects the
// served relation; -sample is the default.
//
// With -wal (requires -ingest), every commit, update and delete is
// written to a write-ahead log under DIR before it is acknowledged;
// on startup the log is replayed and the recovery report logged, so a
// crash — kill -9 included — loses no acknowledged write. -fsync
// picks the durability policy, -group-window the group-commit
// latency bound. With -quarantine, a -load image with checksum
// damage confined to individual segments loads degraded (casualties
// in /stats, /healthz reports "degraded") instead of failing.
//
// Endpoints:
//
//	POST /query    {"query": "select ...", "params": {...}, "timeout_ms": 0}
//	POST /insert   {"columns": {"qty": [1,2], "city": ["Oslo","Rome"]}}
//	GET  /explain  ?q=select ...&params={...}
//	GET  /stats    serving counters, latency histograms, recovery report
//	GET  /healthz  liveness plus table identity and degraded state
//
// SIGINT/SIGTERM drains in-flight requests, then logs the serving
// summary (queries served, rejections, cancellations, cache counters).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/table"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		load        = flag.String("load", "", "serve a table file written by Table.Write")
		sample      = flag.Int("sample", 100000, "rows in the synthetic sample table (ignored with -load)")
		seed        = flag.Int64("seed", 42, "sample table generation seed")
		segRows     = flag.Int("segment-rows", 0, "sample table segment size (0 = default)")
		workers     = flag.Int("workers", 0, "concurrent query executions (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
		cacheSize   = flag.Int("cache", 128, "prepared-statement LRU capacity (negative disables)")
		defTimeout  = flag.Duration("default-timeout", 0, "default per-query deadline (0 = none)")
		parallelism = flag.Int("parallelism", 1, "per-query segment fan-out (0 = one worker per core)")
		ingest      = flag.Bool("ingest", false, "enable LSM-style delta ingest (background sealing) on the served table")
		shards      = flag.Int("shards", 1, "sample table shard count (per-shard locks and ingest; ignored with -load)")
		maxBacklog  = flag.Int("max-shard-backlog", 0, "shed queries with 429 while the hottest shard buffers more than this many delta rows (0 = never)")
		walDir      = flag.String("wal", "", "write-ahead log directory (requires -ingest); replayed on startup")
		fsyncPolicy = flag.String("fsync", "always", "WAL durability policy: always, group, or off")
		groupWindow = flag.Duration("group-window", 2*time.Millisecond, "max latency a group commit waits to batch fsyncs (with -fsync group)")
		quarantine  = flag.Bool("quarantine", false, "load past segment-level corruption in -load images (damaged segments served empty, rows marked deleted)")
	)
	flag.Parse()

	tbl, err := loadTable(*load, *sample, *seed, *segRows, *shards, *quarantine)
	if err != nil {
		var cse *table.CorruptSegmentError
		if errors.As(err, &cse) {
			log.Printf("corrupt segment: %v", cse)
		}
		fmt.Fprintln(os.Stderr, "imprintd:", err)
		os.Exit(1)
	}
	if *walDir != "" && !*ingest {
		fmt.Fprintln(os.Stderr, "imprintd: -wal requires -ingest")
		os.Exit(1)
	}
	if *ingest {
		if err := tbl.EnableDeltaIngest(table.IngestOptions{AutoSeal: true}); err != nil {
			fmt.Fprintln(os.Stderr, "imprintd:", err)
			os.Exit(1)
		}
		defer func() {
			if err := tbl.Close(); err != nil {
				log.Printf("table close: %v", err)
			}
		}()
		log.Printf("delta ingest enabled (background sealing)")
	}
	if *walDir != "" {
		policy, err := wal.ParsePolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "imprintd:", err)
			os.Exit(1)
		}
		rep, err := tbl.EnableWAL(table.WALOptions{
			Dir:         *walDir,
			Policy:      policy,
			GroupWindow: *groupWindow,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "imprintd:", err)
			os.Exit(1)
		}
		log.Printf("wal enabled at %s (fsync %s): recovery %s", *walDir, *fsyncPolicy, rep)
	}
	if q := tbl.Quarantined(); len(q) > 0 {
		for _, qs := range q {
			log.Printf("quarantined: %s", qs.Err)
		}
		log.Printf("serving DEGRADED: %d segments quarantined (rows marked deleted)", len(q))
	}
	log.Printf("serving table %q: %d rows, %d segments", tbl.Name(), tbl.Rows(), tbl.Segments())

	srv, err := server.New(server.Config{
		Table:           tbl,
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		DefaultTimeout:  *defTimeout,
		Parallelism:     *parallelism,
		MaxShardBacklog: *maxBacklog,
		Logf:            log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "imprintd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "imprintd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight requests finish, then stop
	// the worker pool and report the serving totals.
	log.Printf("shutdown signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	srv.LogStats()
}

// loadTable reads a persisted table (its shard layout comes from the
// file) or synthesizes the sample "orders" relation (qty int64, price
// float64, pri uint8, city string), sharded when -shards > 1.
func loadTable(path string, rows int, seed int64, segRows, shards int, quarantine bool) (*table.Table, error) {
	if path != "" {
		tbl, rep, err := table.Open(path, table.LoadOptions{Quarantine: quarantine})
		if err != nil {
			return nil, err
		}
		if rep.Degraded() {
			log.Printf("loaded %s degraded: %d segments quarantined", path, len(rep.Quarantined))
		}
		return tbl, nil
	}
	if rows <= 0 {
		return nil, fmt.Errorf("need -load or a positive -sample row count")
	}
	cities := []string{"Amsterdam", "Athens", "Berlin", "Bern", "Lisbon", "Madrid", "Oslo", "Paris", "Prague", "Rome"}
	rng := rand.New(rand.NewSource(seed))
	qty := make([]int64, rows)
	price := make([]float64, rows)
	pri := make([]uint8, rows)
	city := make([]string, rows)
	for i := 0; i < rows; i++ {
		qty[i] = int64(rng.Intn(1000))
		price[i] = float64(rng.Intn(10000)) / 100
		pri[i] = uint8(rng.Intn(5))
		city[i] = cities[rng.Intn(len(cities))]
	}
	tbl := table.NewWithOptions("orders", table.TableOptions{SegmentRows: segRows, Shards: shards})
	if err := table.AddColumn(tbl, "qty", qty, table.Imprints, core.Options{}); err != nil {
		return nil, err
	}
	if err := table.AddColumn(tbl, "price", price, table.Imprints, core.Options{}); err != nil {
		return nil, err
	}
	if err := table.AddColumn(tbl, "pri", pri, table.Imprints, core.Options{}); err != nil {
		return nil, err
	}
	if err := tbl.AddStringColumn("city", city, table.Imprints, core.Options{}); err != nil {
		return nil, err
	}
	return tbl, nil
}
