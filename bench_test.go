package imprints

// One benchmark per table and figure of the paper (see DESIGN.md §5 for
// the experiment index) plus ablations over the design choices. The
// figure-level text renderings live in cmd/imprintbench; these benches
// regenerate the same quantities under `go test -bench` with stable
// timing, reporting the paper's metrics via b.ReportMetric.

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/harness"
	"repro/internal/scan"
	"repro/internal/wah"
	"repro/internal/workload"
	"repro/internal/zonemap"
	"repro/table"
)

const benchScale = 0.1 // dataset scale for harness-level benches

// Shared fixtures, built once.
var fixtures struct {
	once      sync.Once
	clustered []int64 // 1M-row random walk (the "secondary data" regime)
	random    []int64 // 1M-row uniform (the high-entropy regime)
	queries   map[float64][]workload.Query[int64]
}

func fx() *struct {
	once      sync.Once
	clustered []int64
	random    []int64
	queries   map[float64][]workload.Query[int64]
} {
	fixtures.once.Do(func() {
		const n = 1 << 20
		rng := rand.New(rand.NewPCG(42, 42))
		fixtures.clustered = make([]int64, n)
		v := int64(1 << 30)
		for i := range fixtures.clustered {
			v += int64(rng.IntN(2001)) - 1000
			fixtures.clustered[i] = v
		}
		fixtures.random = make([]int64, n)
		for i := range fixtures.random {
			fixtures.random[i] = rng.Int64N(1 << 40)
		}
		fixtures.queries = map[float64][]workload.Query[int64]{}
		for _, sel := range []float64{0.1, 0.5, 0.9} {
			fixtures.queries[sel] = workload.Ranges(fixtures.clustered, []float64{sel}, 4, 7)
		}
	})
	return &fixtures
}

// BenchmarkTable1Datasets measures dataset generation and reports the
// Table 1 statistics as metrics.
func BenchmarkTable1Datasets(b *testing.B) {
	var bytes int64
	var cols int
	for i := 0; i < b.N; i++ {
		bytes, cols = 0, 0
		for _, d := range dataset.All(dataset.Config{Scale: benchScale, Seed: 1}) {
			bytes += d.SizeBytes()
			cols += len(d.Columns)
		}
	}
	b.ReportMetric(float64(bytes)/(1<<20), "MB")
	b.ReportMetric(float64(cols), "columns")
}

// BenchmarkFig3Entropy measures imprint construction plus entropy
// computation on the five representative Figure 3 columns.
func BenchmarkFig3Entropy(b *testing.B) {
	sets := dataset.All(dataset.Config{Scale: benchScale, Seed: 1})
	for _, d := range sets {
		c := d.Column(d.Representative)
		b.Run(d.Name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				run := harness.MeasureColumn(d.Name, c, harness.Config{Seed: 1}, false, 0)
				e = run.Entropy
			}
			b.ReportMetric(e, "entropy")
		})
	}
}

// BenchmarkFig4EntropyCDF measures the full entropy sweep across all
// dataset columns and reports the share of low-entropy columns.
func BenchmarkFig4EntropyCDF(b *testing.B) {
	var low, total int
	for i := 0; i < b.N; i++ {
		runs := harness.MeasureAll(harness.Config{Scale: 0.02, Seed: 1}, false)
		low, total = 0, len(runs)
		for _, r := range runs {
			if r.Entropy < 0.4 {
				low++
			}
		}
	}
	b.ReportMetric(float64(low)/float64(total), "fracE<0.4")
}

// BenchmarkFig5Construction measures index creation time per value for
// each index type over the two data regimes (Figure 5's bottom row; the
// sizes of its top row are reported as bytes/value metrics).
func BenchmarkFig5Construction(b *testing.B) {
	f := fx()
	regimes := map[string][]int64{"clustered": f.clustered, "random": f.random}
	for name, col := range regimes {
		b.Run("imprints/"+name, func(b *testing.B) {
			b.SetBytes(int64(len(col)) * 8)
			var sz int64
			for i := 0; i < b.N; i++ {
				ix := core.Build(col, core.Options{Seed: 1})
				sz = ix.SizeBytes()
			}
			b.ReportMetric(float64(sz)*8/float64(len(col)), "idxbits/val")
		})
		b.Run("zonemap/"+name, func(b *testing.B) {
			b.SetBytes(int64(len(col)) * 8)
			var sz int64
			for i := 0; i < b.N; i++ {
				ix := zonemap.Build(col, zonemap.Options{})
				sz = ix.SizeBytes()
			}
			b.ReportMetric(float64(sz)*8/float64(len(col)), "idxbits/val")
		})
		b.Run("wah/"+name, func(b *testing.B) {
			b.SetBytes(int64(len(col)) * 8)
			var sz int64
			for i := 0; i < b.N; i++ {
				ix := wah.Build(col, wah.Options{Seed: 1})
				sz = ix.SizeBytes()
			}
			b.ReportMetric(float64(sz)*8/float64(len(col)), "idxbits/val")
		})
	}
}

// BenchmarkFig6SizeOverhead reports index size as % of column size per
// dataset (built once per iteration over the generated datasets).
func BenchmarkFig6SizeOverhead(b *testing.B) {
	var imp, zm, wh, colBytes int64
	for i := 0; i < b.N; i++ {
		imp, zm, wh, colBytes = 0, 0, 0, 0
		for _, r := range harness.MeasureAll(harness.Config{Scale: 0.02, Seed: 1}, false) {
			imp += r.Imprints.SizeBytes
			zm += r.Zonemap.SizeBytes
			wh += r.WAH.SizeBytes
			colBytes += r.ColBytes
		}
	}
	b.ReportMetric(100*float64(imp)/float64(colBytes), "imprints%")
	b.ReportMetric(100*float64(zm)/float64(colBytes), "zonemap%")
	b.ReportMetric(100*float64(wh)/float64(colBytes), "wah%")
}

// BenchmarkFig7OverheadVsEntropy contrasts the storage overhead of
// imprints vs WAH on a low-entropy and a high-entropy column — the
// paper's robustness headline (imprints ≤ ~12% everywhere, WAH up to
// ~100% at high entropy).
func BenchmarkFig7OverheadVsEntropy(b *testing.B) {
	f := fx()
	for name, col := range map[string][]int64{"lowE": f.clustered, "highE": f.random} {
		b.Run(name, func(b *testing.B) {
			var impPct, wahPct, e float64
			for i := 0; i < b.N; i++ {
				ix := core.Build(col, core.Options{Seed: 1})
				wb := wah.BuildWithHistogram(col, ix.Histogram())
				colBytes := float64(len(col) * 8)
				impPct = 100 * float64(ix.SizeBytes()) / colBytes
				wahPct = 100 * float64(wb.SizeBytes()) / colBytes
				e = ix.Entropy()
			}
			b.ReportMetric(e, "entropy")
			b.ReportMetric(impPct, "imprints%")
			b.ReportMetric(wahPct, "wah%")
		})
	}
}

// BenchmarkFig8Query measures range query latency per evaluator and
// selectivity step over the 1M-row clustered column.
func BenchmarkFig8Query(b *testing.B) {
	f := fx()
	col := f.clustered
	imp := core.Build(col, core.Options{Seed: 1})
	zm := zonemap.Build(col, zonemap.Options{})
	wb := wah.BuildWithHistogram(col, imp.Histogram())
	res := make([]uint32, 0, len(col))
	for _, sel := range []float64{0.1, 0.5, 0.9} {
		qs := f.queries[sel]
		b.Run(fmt.Sprintf("scan/sel%.1f", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				res, _ = scan.RangeIDs(col, q.Low, q.High, res[:0])
			}
		})
		b.Run(fmt.Sprintf("imprints/sel%.1f", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				res, _ = imp.RangeIDs(q.Low, q.High, res[:0])
			}
		})
		b.Run(fmt.Sprintf("zonemap/sel%.1f", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				res, _ = zm.RangeIDs(q.Low, q.High, res[:0])
			}
		})
		b.Run(fmt.Sprintf("wah/sel%.1f", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				res, _ = wb.RangeIDs(q.Low, q.High, res[:0])
			}
		})
	}
}

// BenchmarkFig9QueryCDF runs the full ten-step selectivity workload per
// iteration and reports how many of the 10 queries each evaluator
// finished under 1ms — the Figure 9 cumulative view in miniature.
func BenchmarkFig9QueryCDF(b *testing.B) {
	f := fx()
	col := f.clustered
	imp := core.Build(col, core.Options{Seed: 1})
	qs := workload.Ranges(col, workload.DefaultSelectivities(), 1, 3)
	res := make([]uint32, 0, len(col))
	var fast float64
	for i := 0; i < b.N; i++ {
		fast = 0
		for _, q := range qs {
			start := testingNano()
			res, _ = imp.RangeIDs(q.Low, q.High, res[:0])
			if testingNano()-start < 1e6 {
				fast++
			}
		}
	}
	b.ReportMetric(fast, "queries<1ms/10")
}

// BenchmarkFig10Improvement reports the imprint improvement factor over
// scan and zonemap at high selectivity (the paper reports up to ~1000x
// over scan, ~100x over zonemap). The best case is time-ordered data —
// a column that is nearly sorted with local noise — where a narrow value
// band maps to a handful of cacheline runs.
func BenchmarkFig10Improvement(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	col := make([]int64, 1<<20)
	for i := range col {
		col[i] = int64(i)*20 + int64(rng.IntN(2000)) // ordered + noise
	}
	imp := core.Build(col, core.Options{Seed: 1})
	zm := zonemap.Build(col, zonemap.Options{})
	// A very selective query: 0.1% of the domain.
	qs := workload.Ranges(col, []float64{0.001}, 4, 9)
	res := make([]uint32, 0, len(col))
	var scanNs, impNs, zmNs int64
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		t0 := testingNano()
		res, _ = scan.RangeIDs(col, q.Low, q.High, res[:0])
		t1 := testingNano()
		res, _ = imp.RangeIDs(q.Low, q.High, res[:0])
		t2 := testingNano()
		res, _ = zm.RangeIDs(q.Low, q.High, res[:0])
		t3 := testingNano()
		scanNs += t1 - t0
		impNs += t2 - t1
		zmNs += t3 - t2
	}
	if impNs > 0 {
		b.ReportMetric(float64(scanNs)/float64(impNs), "scan/imprints")
		b.ReportMetric(float64(zmNs)/float64(impNs), "zonemap/imprints")
	}
}

// BenchmarkFig11ProbesComparisons reports the normalized probe and
// comparison counts of the three indexes for a 0.4-0.5 selectivity
// query (Figure 11's two panels).
func BenchmarkFig11ProbesComparisons(b *testing.B) {
	f := fx()
	col := f.random // high-entropy regime, the interesting case
	imp := core.Build(col, core.Options{Seed: 1})
	zm := zonemap.Build(col, zonemap.Options{})
	wb := wah.BuildWithHistogram(col, imp.Histogram())
	qs := workload.Ranges(col, []float64{0.45}, 2, 5)
	res := make([]uint32, 0, len(col))
	rows := float64(len(col))
	var ist core.QueryStats
	var zst zonemap.QueryStats
	var wst wah.QueryStats
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		res, ist = imp.RangeIDs(q.Low, q.High, res[:0])
		res, zst = zm.RangeIDs(q.Low, q.High, res[:0])
		res, wst = wb.RangeIDs(q.Low, q.High, res[:0])
	}
	b.ReportMetric(float64(ist.Probes)/rows, "imp-probes/row")
	b.ReportMetric(float64(zst.Probes)/rows, "zm-probes/row")
	b.ReportMetric(float64(wst.Probes)/rows, "wah-probes/row")
	b.ReportMetric(float64(ist.Comparisons)/rows, "imp-cmps/row")
	b.ReportMetric(float64(zst.Comparisons)/rows, "zm-cmps/row")
	b.ReportMetric(float64(wst.Comparisons)/rows, "wah-cmps/row")
}

// ---- Ablation benches over DESIGN.md's design choices ----

// BenchmarkAblationBinning contrasts Algorithm 2's dedup binning with
// the prose variant that counts duplicate sample values: comparisons
// per query on a skewed column show the false-positive difference.
func BenchmarkAblationBinning(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 11))
	col := make([]int64, 1<<19)
	for i := range col {
		if rng.IntN(2) == 0 {
			col[i] = 5_000_000
		} else {
			col[i] = rng.Int64N(10_000_000)
		}
	}
	for name, dup := range map[string]bool{"dedup": false, "dupcount": true} {
		b.Run(name, func(b *testing.B) {
			ix := core.Build(col, core.Options{Seed: 1, CountDuplicates: dup})
			qs := workload.Ranges(col, []float64{0.2}, 4, 3)
			res := make([]uint32, 0, len(col))
			var st core.QueryStats
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				res, st = ix.RangeIDs(q.Low, q.High, res[:0])
			}
			b.ReportMetric(float64(st.Comparisons)/float64(len(col)), "cmps/row")
		})
	}
}

// BenchmarkAblationGranularity sweeps the values-per-imprint-vector
// knob (Section 2.3: the engine's access granularity determines it).
func BenchmarkAblationGranularity(b *testing.B) {
	f := fx()
	col := f.clustered
	qs := f.queries[0.1]
	for _, vpc := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("vpc%d", vpc), func(b *testing.B) {
			ix := core.Build(col, core.Options{Seed: 1, ValuesPerCacheline: vpc})
			res := make([]uint32, 0, len(col))
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				res, _ = ix.RangeIDs(q.Low, q.High, res[:0])
			}
			b.ReportMetric(float64(ix.SizeBytes())*8/float64(len(col)), "idxbits/val")
		})
	}
}

// BenchmarkAblationTwoLevel contrasts the flat index with the two-level
// organization on a selective query.
func BenchmarkAblationTwoLevel(b *testing.B) {
	f := fx()
	col := f.clustered
	base := core.Build(col, core.Options{Seed: 1})
	tl := core.NewTwoLevel(base, 64)
	qs := workload.Ranges(col, []float64{0.01}, 4, 13)
	res := make([]uint32, 0, len(col))
	b.Run("flat", func(b *testing.B) {
		var st core.QueryStats
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			res, st = base.RangeIDs(q.Low, q.High, res[:0])
		}
		b.ReportMetric(float64(st.Probes), "probes")
	})
	b.Run("twolevel", func(b *testing.B) {
		var st core.QueryStats
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			res, st = tl.RangeIDs(q.Low, q.High, res[:0])
		}
		b.ReportMetric(float64(st.Probes), "probes")
	})
}

// BenchmarkAblationParallelBuild sweeps worker counts for index
// construction (Section 7 extension).
func BenchmarkAblationParallelBuild(b *testing.B) {
	f := fx()
	col := f.random
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(col)) * 8)
			for i := 0; i < b.N; i++ {
				core.BuildParallel(col, core.Options{Seed: 1}, workers)
			}
		})
	}
}

// BenchmarkAblationLateMaterialization contrasts evaluating a two-column
// conjunction naively (materialize both, intersect) with the candidate
// cacheline merge-join of Section 3.
func BenchmarkAblationLateMaterialization(b *testing.B) {
	f := fx()
	a := f.clustered
	c := f.random
	ixA := core.Build(a, core.Options{Seed: 1})
	ixC := core.Build(c, core.Options{Seed: 2})
	qa := workload.Ranges(a, []float64{0.1}, 1, 3)[0]
	qc := workload.Ranges(c, []float64{0.1}, 1, 3)[0]
	b.Run("naive", func(b *testing.B) {
		r1 := make([]uint32, 0, len(a))
		r2 := make([]uint32, 0, len(a))
		for i := 0; i < b.N; i++ {
			r1, _ = ixA.RangeIDs(qa.Low, qa.High, r1[:0])
			r2, _ = ixC.RangeIDs(qc.Low, qc.High, r2[:0])
			intersectSorted(r1, r2)
		}
	})
	b.Run("late", func(b *testing.B) {
		res := make([]uint32, 0, len(a))
		for i := 0; i < b.N; i++ {
			res, _ = core.EvaluateAnd(res[:0],
				core.NewRangeConjunct(ixA, qa.Low, qa.High),
				core.NewRangeConjunct(ixC, qc.Low, qc.High))
		}
	})
}

// testingNano is a monotonic-enough clock for intra-benchmark deltas.
func testingNano() int64 { return time.Now().UnixNano() }

func intersectSorted(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// BenchmarkSection4Append contrasts appending a batch to an existing
// imprint (Section 4.1: no old vector is touched) against rebuilding
// the whole index — the cost the paper says appends avoid.
func BenchmarkSection4Append(b *testing.B) {
	f := fx()
	base := f.clustered[:len(f.clustered)-65536]
	full := f.clustered
	// Each append iteration needs a fresh index; restoring it from a
	// serialized image keeps the (untimed) per-iteration setup cheap.
	var img bytes.Buffer
	if err := core.Build(base, core.Options{Seed: 1}).Write(&img); err != nil {
		b.Fatal(err)
	}
	raw := img.Bytes()
	b.Run("append64k", func(b *testing.B) {
		b.SetBytes(65536 * 8)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ix, err := core.ReadIndex[int64](bytes.NewReader(raw), base)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			ix.Append(full)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.SetBytes(65536 * 8)
		for i := 0; i < b.N; i++ {
			core.Build(full, core.Options{Seed: 1})
		}
	})
}

// BenchmarkTableSelect measures the relation-level predicate engine on
// a three-column conjunction.
func BenchmarkTableSelect(b *testing.B) {
	f := fx()
	n := 1 << 19
	qty := f.clustered[:n]
	price := f.random[:n]
	status := make([]uint8, n)
	for i := range status {
		status[i] = uint8(i % 5)
	}
	tb := table.New("bench")
	if err := table.AddColumn(tb, "qty", qty, table.Imprints, core.Options{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	if err := table.AddColumn(tb, "price", price, table.Imprints, core.Options{Seed: 2}); err != nil {
		b.Fatal(err)
	}
	if err := table.AddColumn(tb, "status", status, table.NoIndex, core.Options{}); err != nil {
		b.Fatal(err)
	}
	q := workload.Ranges(qty, []float64{0.05}, 1, 3)[0]
	p := workload.Ranges(price, []float64{0.2}, 1, 4)[0]
	pred := table.And(
		table.Range[int64]("qty", q.Low, q.High),
		table.Range[int64]("price", p.Low, p.High),
		table.Equals[uint8]("status", 2),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tb.Select().Where(pred).IDs(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialization measures Write+Read round-trip throughput.
func BenchmarkSerialization(b *testing.B) {
	f := fx()
	ix := core.Build(f.clustered, core.Options{Seed: 1})
	var buf writeCounter
	for i := 0; i < b.N; i++ {
		buf.reset()
		if err := ix.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.n), "bytes")
}

type writeCounter struct{ n int64 }

func (w *writeCounter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }
func (w *writeCounter) reset()                      { w.n = 0 }
