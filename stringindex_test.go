package imprints

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
)

func mkStrings(n int, seed uint64) []string {
	rng := rand.New(rand.NewPCG(seed, 3))
	cities := []string{"amsterdam", "berlin", "boston", "chicago", "denver",
		"frankfurt", "london", "madrid", "paris", "prague", "tokyo", "vienna"}
	out := make([]string, n)
	for i := range out {
		c := cities[rng.IntN(len(cities))]
		if rng.IntN(3) == 0 {
			c = c + fmt.Sprintf("-%d", rng.IntN(20))
		}
		out[i] = c
	}
	return out
}

func stringScan(vals []string, pred func(string) bool) []uint32 {
	var ids []uint32
	for i, v := range vals {
		if pred(v) {
			ids = append(ids, uint32(i))
		}
	}
	return ids
}

func checkIDs(t *testing.T, got, want []uint32, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: id[%d] = %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

func TestStringIndexRange(t *testing.T) {
	vals := mkStrings(5000, 1)
	si := BuildStringIndex("city", vals, Options{Seed: 1})
	if si.Len() != len(vals) {
		t.Fatalf("Len = %d", si.Len())
	}
	got, _ := si.RangeIDs("berlin", "denver", nil)
	want := stringScan(vals, func(v string) bool { return v >= "berlin" && v <= "denver" })
	checkIDs(t, got, want, "closed string range")
	// Empty range between entries.
	if got, _ := si.RangeIDs("aaa", "aab", nil); len(got) != 0 {
		t.Errorf("empty range returned %d ids", len(got))
	}
}

func TestStringIndexEqual(t *testing.T) {
	vals := mkStrings(3000, 2)
	si := BuildStringIndex("city", vals, Options{Seed: 2})
	got, _ := si.EqualIDs("paris", nil)
	want := stringScan(vals, func(v string) bool { return v == "paris" })
	checkIDs(t, got, want, "string equality")
	for _, id := range got[:min(5, len(got))] {
		if si.Symbol(id) != "paris" {
			t.Errorf("Symbol(%d) = %q", id, si.Symbol(id))
		}
	}
}

func TestStringIndexPrefix(t *testing.T) {
	vals := mkStrings(4000, 3)
	si := BuildStringIndex("city", vals, Options{Seed: 3})
	for _, prefix := range []string{"b", "bo", "paris", "tokyo-1", "zzz"} {
		got, _ := si.PrefixIDs(prefix, nil)
		want := stringScan(vals, func(v string) bool { return strings.HasPrefix(v, prefix) })
		checkIDs(t, got, want, "prefix "+prefix)
	}
	// Empty prefix matches everything.
	got, _ := si.PrefixIDs("", nil)
	if len(got) != len(vals) {
		t.Errorf("empty prefix: %d of %d", len(got), len(vals))
	}
}

func TestStringIndexPrefixHighBytes(t *testing.T) {
	vals := []string{"\xff\xffa", "\xff\xff", "plain", "\xfe"}
	si := BuildStringIndex("s", vals, Options{Seed: 4})
	got, _ := si.PrefixIDs("\xff\xff", nil)
	want := stringScan(vals, func(v string) bool { return strings.HasPrefix(v, "\xff\xff") })
	checkIDs(t, got, want, "0xFF prefix")
}

func TestStringIndexSizeAccountsDictionary(t *testing.T) {
	vals := mkStrings(2000, 5)
	si := BuildStringIndex("city", vals, Options{Seed: 5})
	if si.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
	if si.Dict().Cardinality() <= 0 || si.Index() == nil {
		t.Error("accessors broken")
	}
}

// The dictionary guarantees order-preserving codes; double-check so the
// range translation stays valid.
func TestStringDictOrderPreserved(t *testing.T) {
	vals := mkStrings(1000, 6)
	si := BuildStringIndex("city", vals, Options{Seed: 6})
	d := si.Dict()
	var symbols []string
	for c := int32(0); c < int32(d.Cardinality()); c++ {
		symbols = append(symbols, d.Symbol(c))
	}
	if !sort.StringsAreSorted(symbols) {
		t.Error("dictionary symbols not sorted")
	}
}
