package imprints_test

import (
	"fmt"

	imprints "repro"
)

// ExampleBuild demonstrates the core build-and-query loop.
func ExampleBuild() {
	col := []int64{15, 8, 31, 22, 7, 19, 25, 3, 42, 11, 28, 16, 35, 9, 21, 14}
	ix := imprints.Build(col, imprints.Options{Seed: 1})

	ids, _ := ix.RangeIDs(10, 25, nil) // 10 <= v < 25
	for _, id := range ids {
		fmt.Println(id, col[id])
	}
	// Output:
	// 0 15
	// 3 22
	// 5 19
	// 9 11
	// 11 16
	// 14 21
	// 15 14
}

// ExampleIndex_CountRange counts without materializing ids.
func ExampleIndex_CountRange() {
	col := []int32{5, 10, 15, 20, 25, 30, 35, 40}
	ix := imprints.Build(col, imprints.Options{Seed: 1})
	n, _ := ix.CountRange(10, 30)
	fmt.Println(n)
	// Output: 4
}

// ExampleEvaluateAnd shows a two-attribute conjunction with late
// materialization.
func ExampleEvaluateAnd() {
	qty := []int64{5, 50, 10, 60, 20, 70, 30, 80}
	price := []float64{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}
	ixQty := imprints.Build(qty, imprints.Options{Seed: 1})
	ixPrice := imprints.Build(price, imprints.Options{Seed: 2})

	ids, _ := imprints.EvaluateAnd(nil,
		imprints.NewRangeConjunct(ixQty, 40, 100),    // qty in [40, 100)
		imprints.NewRangeConjunct(ixPrice, 3.0, 7.0), // price in [3, 7)
	)
	fmt.Println(ids)
	// Output: [3 5]
}

// ExampleIndex_Range streams results lazily; breaking early stops the
// evaluation (a LIMIT).
func ExampleIndex_Range() {
	col := make([]int64, 1000)
	for i := range col {
		col[i] = int64(i)
	}
	ix := imprints.Build(col, imprints.Options{Seed: 1})
	count := 0
	for id := range ix.Range(100, 900) {
		_ = id
		count++
		if count == 3 {
			break // LIMIT 3
		}
	}
	fmt.Println(count)
	// Output: 3
}

// ExampleBuildStringIndex indexes a string attribute through dictionary
// encoding.
func ExampleBuildStringIndex() {
	cities := []string{"paris", "berlin", "prague", "boston", "paris", "porto"}
	si := imprints.BuildStringIndex("city", cities, imprints.Options{Seed: 1})
	ids, _ := si.PrefixIDs("p", nil)
	for _, id := range ids {
		fmt.Println(id, si.Symbol(id))
	}
	// Output:
	// 0 paris
	// 2 prague
	// 4 paris
	// 5 porto
}
