package imprints

// Integration tests: for every column of every synthetic dataset, all
// four evaluation strategies (scan, imprints, zonemap, WAH) must return
// identical results across the selectivity sweep. This is the
// end-to-end guarantee behind every figure of the evaluation.

import (
	"testing"

	"repro/internal/coltype"
	"repro/internal/column"
	"repro/internal/dataset"
	"repro/internal/scan"
	"repro/internal/wah"
	"repro/internal/workload"
	"repro/internal/zonemap"
)

func crossCheck[V coltype.Value](t *testing.T, ds, name string, vals []V) {
	t.Helper()
	imp := Build(vals, Options{Seed: 99})
	zm := zonemap.Build(vals, zonemap.Options{})
	wb := wah.BuildWithHistogram(vals, imp.Histogram())
	tl := NewTwoLevel(imp, 16)
	queries := workload.Ranges(vals, workload.DefaultSelectivities(), 1, 17)

	res := make([]uint32, 0, len(vals))
	for _, q := range queries {
		want, _ := scan.RangeIDs(vals, q.Low, q.High, nil)

		got, _ := imp.RangeIDs(q.Low, q.High, res[:0])
		compareIDs(t, got, want, ds+"."+name+"/imprints")

		got, _ = zm.RangeIDs(q.Low, q.High, res[:0])
		compareIDs(t, got, want, ds+"."+name+"/zonemap")

		got, _ = wb.RangeIDs(q.Low, q.High, res[:0])
		compareIDs(t, got, want, ds+"."+name+"/wah")

		got, _ = tl.RangeIDs(q.Low, q.High, res[:0])
		compareIDs(t, got, want, ds+"."+name+"/twolevel")

		// Streaming iterator agrees and respects order.
		n := 0
		ok := true
		for id := range imp.Range(q.Low, q.High) {
			if n >= len(want) || id != want[n] {
				ok = false
				break
			}
			n++
		}
		if !ok || n != len(want) {
			t.Fatalf("%s.%s: iterator diverged from scan", ds, name)
		}

		// Counts agree too.
		cnt, _ := imp.CountRange(q.Low, q.High)
		if cnt != uint64(len(want)) {
			t.Fatalf("%s.%s: CountRange %d, scan %d", ds, name, cnt, len(want))
		}
	}
}

func compareIDs(t *testing.T, got, want []uint32, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ids, scan found %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: id[%d] = %d, scan says %d", ctx, i, got[i], want[i])
		}
	}
}

func TestAllEvaluatorsAgreeOnAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	for _, ds := range dataset.All(dataset.Config{Scale: 0.04, Seed: 31}) {
		for _, c := range ds.Columns {
			switch col := c.(type) {
			case *column.Column[int8]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			case *column.Column[int16]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			case *column.Column[int32]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			case *column.Column[int64]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			case *column.Column[uint8]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			case *column.Column[uint16]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			case *column.Column[uint32]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			case *column.Column[uint64]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			case *column.Column[float32]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			case *column.Column[float64]:
				crossCheck(t, ds.Name, col.Name(), col.Values())
			default:
				t.Fatalf("unhandled column type %T", c)
			}
		}
	}
}

// The parallel build must agree with the sequential one on real dataset
// shapes, not just synthetic columns.
func TestParallelBuildAgreesOnDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	ds := dataset.Routing(dataset.Config{Scale: 0.1, Seed: 33})
	lat := ds.Column("trips.lat").(*column.Column[float64]).Values()
	seq := Build(lat, Options{Seed: 3})
	par := BuildParallel(lat, Options{Seed: 3}, 4)
	queries := workload.Ranges(lat, workload.DefaultSelectivities(), 2, 5)
	for _, q := range queries {
		a, _ := seq.RangeIDs(q.Low, q.High, nil)
		b, _ := par.RangeIDs(q.Low, q.High, nil)
		compareIDs(t, b, a, "parallel-vs-sequential")
	}
}
