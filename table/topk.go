package table

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/coltype"
	"repro/internal/core"
)

// OrderBy + Limit executes as a top-k: every segment worker keeps a
// bounded heap of its k best rows (comparing typed values — dictionary
// codes for strings, decoded only when the heap is emitted), and the
// consumer merges the per-segment partials in segment order, ranking
// them globally with ties broken by ascending row id. Without Limit the
// per-segment collectors are unbounded and the merge is a full sort.
// Either way the result is identical at every parallelism level.

// OrderSpec is one ordering of query results, built with Asc or Desc.
type OrderSpec struct {
	col  string
	desc bool
}

// Asc orders results ascending by a numeric or string column (ties by
// ascending row id).
func Asc(col string) OrderSpec { return OrderSpec{col: col} }

// Desc orders results descending by a numeric or string column (ties
// by ascending row id).
func Desc(col string) OrderSpec { return OrderSpec{col: col, desc: true} }

// String renders the spec for plans, e.g. "price desc".
func (o OrderSpec) String() string {
	if o.desc {
		return o.col + " desc"
	}
	return o.col + " asc"
}

// OrderBy orders the rows Rows and IDs return by a column instead of
// by ascending id; combined with Limit(k) it executes as a bounded
// top-k per segment. The ordering column does not have to be
// projected. Count ignores the order; Aggregate and GroupBy reject it.
// Float NaN values rank after every real value in either direction.
func (q *Query) OrderBy(o OrderSpec) *Query {
	q.order = &o
	return q
}

// segTopK collects one segment's candidate rows for an ordered
// execution: a bounded heap when k > 0, everything otherwise.
type segTopK interface {
	push(local, id uint32)
	partial() orderPartial
}

// orderPartial is one segment's opaque typed partial (entries of the
// column's value type), merged by the owning column's topkMerge.
type orderPartial any

// topEntry pairs a sortable value with its global row id.
type topEntry[V coltype.Value] struct {
	v  V
	id uint32
}

// rankBefore reports whether a ranks strictly before b in the result
// order: by value in the requested direction, ties by ascending id —
// a total order, so ranking is deterministic. Float NaNs (the only
// values unequal to themselves) rank after every real value in either
// direction, keeping the order total where raw < and > would make
// every comparison false.
func rankBefore[V coltype.Value](a, b topEntry[V], desc bool) bool {
	aNaN, bNaN := a.v != a.v, b.v != b.v
	if aNaN || bNaN {
		if aNaN != bNaN {
			return bNaN
		}
		return a.id < b.id
	}
	if a.v != b.v {
		if desc {
			return a.v > b.v
		}
		return a.v < b.v
	}
	return a.id < b.id
}

// boundedHeap keeps the k best entries seen, worst at the root so the
// next candidate is compared against it in O(1). k <= 0 keeps
// everything.
type boundedHeap[V coltype.Value] struct {
	desc bool
	k    int
	h    []topEntry[V]
}

// worseAt reports whether entry i ranks after entry j (heap order:
// the root is the worst kept entry).
func (b *boundedHeap[V]) worseAt(i, j int) bool {
	return rankBefore(b.h[j], b.h[i], b.desc)
}

func (b *boundedHeap[V]) push(e topEntry[V]) {
	if b.k <= 0 {
		b.h = append(b.h, e)
		return
	}
	if len(b.h) < b.k {
		b.h = append(b.h, e)
		// Sift up.
		for i := len(b.h) - 1; i > 0; {
			parent := (i - 1) / 2
			if !b.worseAt(i, parent) {
				break
			}
			b.h[i], b.h[parent] = b.h[parent], b.h[i]
			i = parent
		}
		return
	}
	if !rankBefore(e, b.h[0], b.desc) {
		return // not better than the worst kept
	}
	b.h[0] = e
	// Sift down.
	for i := 0; ; {
		worst := i
		if l := 2*i + 1; l < len(b.h) && b.worseAt(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < len(b.h) && b.worseAt(r, worst) {
			worst = r
		}
		if worst == i {
			break
		}
		b.h[i], b.h[worst] = b.h[worst], b.h[i]
		i = worst
	}
}

// mergeEntries ranks entries from every segment partial globally and
// returns the ids of the best k (all of them when k <= 0).
func mergeEntries[V coltype.Value](parts []orderPartial, desc bool, k int) []uint32 {
	var all []topEntry[V]
	for _, p := range parts {
		if p != nil {
			all = append(all, p.([]topEntry[V])...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return rankBefore(all[i], all[j], desc) })
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	ids := make([]uint32, len(all))
	for i, e := range all {
		ids[i] = e.id
	}
	return ids
}

// ---- numeric columns ----

//imprintvet:locks held=mu.R
func (c *colState[V]) topkAcc(s int, desc bool, k int) segTopK {
	return &numTopK[V]{vals: c.segs[s].vals, heap: boundedHeap[V]{desc: desc, k: k}}
}

type numTopK[V coltype.Value] struct {
	vals []V
	heap boundedHeap[V]
}

func (t *numTopK[V]) push(local, id uint32) {
	t.heap.push(topEntry[V]{v: t.vals[local], id: id})
}

func (t *numTopK[V]) partial() orderPartial { return t.heap.h }

func (c *colState[V]) topkMerge(parts []orderPartial, desc bool, k int) []uint32 {
	return mergeEntries[V](parts, desc, k)
}

// ---- string columns ----

// strTopK heaps segment-local dictionary codes (code order is string
// order within a segment) and decodes only the surviving entries.
type strTopK struct {
	seg  *strSegment
	heap boundedHeap[int32]
}

//imprintvet:locks held=mu.R
func (c *strColState) topkAcc(s int, desc bool, k int) segTopK {
	seg := c.segs[s]
	return &strTopK{seg: seg, heap: boundedHeap[int32]{desc: desc, k: k}}
}

func (t *strTopK) push(local, id uint32) {
	t.heap.push(topEntry[int32]{v: t.seg.codes()[local], id: id})
}

// strOrdEntry is a decoded string entry; partials decode before the
// cross-segment merge because codes from different dictionaries are
// not comparable.
type strOrdEntry struct {
	v  string
	id uint32
}

func (t *strTopK) partial() orderPartial {
	out := make([]strOrdEntry, len(t.heap.h))
	for i, e := range t.heap.h {
		out[i] = strOrdEntry{v: t.seg.dict.Symbol(e.v), id: e.id}
	}
	return out
}

func (c *strColState) topkMerge(parts []orderPartial, desc bool, k int) []uint32 {
	var all []strOrdEntry
	for _, p := range parts {
		if p != nil {
			all = append(all, p.([]strOrdEntry)...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.v != b.v {
			if desc {
				return a.v > b.v
			}
			return a.v < b.v
		}
		return a.id < b.id
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	ids := make([]uint32, len(all))
	for i, e := range all {
		ids[i] = e.id
	}
	return ids
}

// ---- execution ----

// orderedIDsLocked executes an OrderBy query down to the ranked row
// ids; the caller holds the table's read lock. Every segment must
// report (a pruned one cheaply), so there is no early cancel; the
// bounded heaps keep per-segment work at O(rows · log k).
//
//imprintvet:locks held=mu.R
func (q *Query) orderedIDsLocked() ([]uint32, core.QueryStats, error) {
	var st core.QueryStats
	col, ok := q.t.cols[q.order.col]
	if !ok {
		return nil, st, fmt.Errorf("table %s: no column %q", q.t.name, q.order.col)
	}
	if q.limited && q.limit == 0 {
		return nil, st, nil
	}
	en, err := q.bind()
	if err != nil {
		return nil, st, err
	}
	k := 0
	if q.limited {
		k = q.limit
	}
	desc := q.order.desc
	nsegs := q.t.segCount()
	parts := make([]orderPartial, nsegs)
	err = q.t.forEachSegment(q.opts.Ctx, nsegs, resolveParallelism(q.opts, nsegs),
		func(s int) segOut {
			var o segOut
			ev := q.t.evalSegment(en, s, q.opts, &o.st, false)
			acc := col.topkAcc(s, desc, k)
			base := uint32(s * q.t.segRows)
			q.t.aggWalk(s, ev, &o.st,
				func(from, to int) {
					for local := from; local < to; local++ {
						acc.push(uint32(local), base+uint32(local))
					}
				},
				func(bb int, mask uint64) {
					for mask != 0 {
						i := bits.TrailingZeros64(mask)
						mask &= mask - 1
						local := uint32(bb + i)
						acc.push(local, base+local)
					}
				})
			releaseEval(&ev)
			o.ord = acc.partial()
			return o
		},
		func(s int, o segOut) bool {
			st.Add(o.st)
			parts[s] = o.ord
			return true
		})
	if err != nil {
		return nil, st, q.t.abortErr(err)
	}
	// Buffered delta rows contribute one extra partial: their ordering
	// values are collected exactly (boxed, unsorted) and ranked by the
	// same typed merge as the per-segment heaps.
	if view := q.t.deltaViewLocked(); view != nil {
		oci := view.colIdx(q.order.col)
		match := view.matcher(en)
		var vals []any
		var ids []uint32
		view.scan(match, &st, func(id int, row []any) bool {
			vals = append(vals, row[oci])
			ids = append(ids, uint32(id))
			return true
		})
		if p := col.deltaOrd(vals, ids); p != nil {
			parts = append(parts, p)
		}
	}
	return col.topkMerge(parts, desc, k), st, nil
}
