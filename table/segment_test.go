package table

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"

	"repro/internal/colfile"
	"repro/internal/core"
)

// mkSegmented builds a multi-segment mixed table with a small segment
// size so every code path crosses segment boundaries: qty (int64 walk,
// imprints), price (float64, imprints), ts (int64 near-sorted,
// zonemap), city (string, per-segment code imprints), tag (string,
// unindexed).
func mkSegmented(t *testing.T, n, segRows int, seed uint64) (*Table, *segModel) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0x5e6))
	m := &segModel{}
	v := int64(1000)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		m.qty = append(m.qty, v)
		m.price = append(m.price, rng.Float64()*100)
		m.ts = append(m.ts, int64(i*3+rng.IntN(3)))
		m.city = append(m.city, cities[(i/71+rng.IntN(2))%len(cities)])
		m.tag = append(m.tag, []string{"new", "seen", "done"}[rng.IntN(3)])
	}
	tb := NewWithOptions("orders", TableOptions{SegmentRows: segRows})
	if tb.SegmentRows() != segRows {
		t.Fatalf("SegmentRows = %d, want %d", tb.SegmentRows(), segRows)
	}
	if err := AddColumn(tb, "qty", m.qty, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "price", m.price, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "ts", m.ts, Zonemap, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", m.city, Imprints, core.Options{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("tag", m.tag, NoIndex, core.Options{}); err != nil {
		t.Fatal(err)
	}
	return tb, m
}

// segModel is the naive-oracle shadow of the segmented test table.
type segModel struct {
	qty     []int64
	price   []float64
	ts      []int64
	city    []string
	tag     []string
	deleted map[int]bool
}

func (m *segModel) oracleIDs(pred func(i int) bool) []uint32 {
	var want []uint32
	for i := range m.qty {
		if m.deleted[i] || !pred(i) {
			continue
		}
		want = append(want, uint32(i))
	}
	return want
}

// randomPred draws a random mixed predicate tree with its oracle.
func (m *segModel) randomPred(rng *rand.Rand) (Predicate, func(i int) bool) {
	leaf := func() (Predicate, func(i int) bool) {
		switch rng.IntN(7) {
		case 0:
			lo := int64(850 + rng.IntN(400))
			hi := lo + int64(rng.IntN(250))
			return Range[int64]("qty", lo, hi), func(i int) bool { return m.qty[i] >= lo && m.qty[i] < hi }
		case 1:
			x := rng.Float64() * 100
			return LessThan[float64]("price", x), func(i int) bool { return m.price[i] < x }
		case 2:
			lo := int64(rng.IntN(3 * len(m.ts)))
			hi := lo + int64(rng.IntN(len(m.ts)))
			return Range[int64]("ts", lo, hi), func(i int) bool { return m.ts[i] >= lo && m.ts[i] < hi }
		case 3:
			c := cities[rng.IntN(len(cities))]
			return StrEquals("city", c), func(i int) bool { return m.city[i] == c }
		case 4:
			p := cities[rng.IntN(len(cities))][:1+rng.IntN(2)]
			return StrPrefix("city", p), func(i int) bool { return strings.HasPrefix(m.city[i], p) }
		case 5:
			s := []string{"new", "seen", "done"}[rng.IntN(3)]
			return StrEquals("tag", s), func(i int) bool { return m.tag[i] == s }
		default:
			a, b := m.qty[rng.IntN(len(m.qty))], m.qty[rng.IntN(len(m.qty))]
			return In("qty", a, b), func(i int) bool { return m.qty[i] == a || m.qty[i] == b }
		}
	}
	p1, f1 := leaf()
	p2, f2 := leaf()
	p3, f3 := leaf()
	switch rng.IntN(3) {
	case 0:
		return And(p1, Or(p2, p3)), func(i int) bool { return f1(i) && (f2(i) || f3(i)) }
	case 1:
		return Or(p1, AndNot(p2, p3)), func(i int) bool { return f1(i) || (f2(i) && !f3(i)) }
	default:
		return AndNot(And(p1, p2), p3), func(i int) bool { return f1(i) && f2(i) && !f3(i) }
	}
}

// TestSegmentedOracle is the randomized equivalence oracle of the
// segmentation refactor: across appends (values straddling segment
// boundaries), updates, deletes and a compact, every random predicate
// tree must return byte-identical ids through parallel segmented
// execution (parallelism 4), serial execution (parallelism 1), a
// prepared statement, and the naive scan oracle — and Count must agree.
func TestSegmentedOracle(t *testing.T) {
	const segRows = 256
	tb, m := mkSegmented(t, 1500, segRows, 77)
	rng := rand.New(rand.NewPCG(78, 78))
	m.deleted = map[int]bool{}

	checkAll := func(phase string) {
		t.Helper()
		for trial := 0; trial < 25; trial++ {
			pred, oracle := m.randomPred(rng)
			want := m.oracleIDs(oracle)

			serial, stVec, err := tb.Select().Where(pred).Options(SelectOptions{Parallelism: 1}).IDs()
			if err != nil {
				t.Fatalf("%s serial: %v", phase, err)
			}
			par, _, err := tb.Select().Where(pred).Options(SelectOptions{Parallelism: 4}).IDs()
			if err != nil {
				t.Fatalf("%s parallel: %v", phase, err)
			}
			equalIDs(t, serial, want, phase+" serial vs oracle")
			equalIDs(t, par, want, phase+" parallel vs oracle")

			// The scalar residual path must match the vectorized default
			// bit for bit — ids and every statistic except the kernel
			// block counter (and pool-dependent scratch reuse).
			for _, spar := range []int{1, 4} {
				scalar, stSca, err := tb.Select().Where(pred).
					Options(SelectOptions{Parallelism: spar, Scalar: true}).IDs()
				if err != nil {
					t.Fatalf("%s scalar: %v", phase, err)
				}
				equalIDs(t, scalar, want, fmt.Sprintf("%s scalar par=%d vs oracle", phase, spar))
				if spar == 1 {
					if stSca.BlocksVectorized != 0 {
						t.Fatalf("%s: scalar run vectorized %d blocks", phase, stSca.BlocksVectorized)
					}
					a, b := stVec, stSca
					a.BlocksVectorized, a.ScratchReused, b.ScratchReused = 0, 0, 0
					if a != b {
						t.Fatalf("%s: scalar vs vectorized stats diverge\nvec %+v\nsca %+v", phase, stVec, stSca)
					}
				}
			}

			p, err := tb.Prepare(pred, SelectOptions{Parallelism: 3})
			if err != nil {
				t.Fatalf("%s prepare: %v", phase, err)
			}
			prepped, _, err := p.Exec().IDs()
			if err != nil {
				t.Fatalf("%s prepared: %v", phase, err)
			}
			equalIDs(t, prepped, want, phase+" prepared vs oracle")

			n, _, err := tb.Select().Where(pred).Options(SelectOptions{Parallelism: 4}).Count()
			if err != nil {
				t.Fatalf("%s count: %v", phase, err)
			}
			if n != uint64(len(want)) {
				t.Fatalf("%s Count = %d, want %d", phase, n, len(want))
			}

			// Limit must return the same prefix at any parallelism.
			if len(want) > 3 {
				lim := 1 + rng.IntN(len(want)-1)
				got, _, err := tb.Select().Where(pred).Limit(lim).Options(SelectOptions{Parallelism: 4}).IDs()
				if err != nil {
					t.Fatalf("%s limit: %v", phase, err)
				}
				equalIDs(t, got, want[:lim], phase+" limited prefix")
			}
		}
	}

	checkAll("initial")

	// Batch append straddling segment boundaries (the table currently
	// has a partial tail; 700 rows crosses at least two boundaries).
	appendRows := func(k int) {
		b := tb.NewBatch()
		var qty []int64
		var price []float64
		var ts []int64
		var city, tag []string
		v := m.qty[len(m.qty)-1]
		lastTs := m.ts[len(m.ts)-1]
		for i := 0; i < k; i++ {
			v += int64(rng.IntN(21)) - 10
			qty = append(qty, v)
			price = append(price, rng.Float64()*100)
			ts = append(ts, lastTs+int64(i*3))
			city = append(city, cities[rng.IntN(len(cities))])
			tag = append(tag, []string{"new", "seen", "done"}[rng.IntN(3)])
		}
		if err := Append(b, "qty", qty); err != nil {
			t.Fatal(err)
		}
		if err := Append(b, "price", price); err != nil {
			t.Fatal(err)
		}
		if err := Append(b, "ts", ts); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendStrings("city", city); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendStrings("tag", tag); err != nil {
			t.Fatal(err)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
		m.qty = append(m.qty, qty...)
		m.price = append(m.price, price...)
		m.ts = append(m.ts, ts...)
		m.city = append(m.city, city...)
		m.tag = append(m.tag, tag...)
	}
	appendRows(700)
	if want := (1500 + 700 + segRows - 1) / segRows; tb.Segments() != want {
		t.Fatalf("Segments = %d, want %d", tb.Segments(), want)
	}
	checkAll("after append")

	// In-place updates, including a novel string (segment-local
	// re-encode).
	for u := 0; u < 200; u++ {
		id := rng.IntN(len(m.qty))
		nv := int64(500 + rng.IntN(1200))
		if err := Update(tb, "qty", id, nv); err != nil {
			t.Fatal(err)
		}
		m.qty[id] = nv
	}
	novelID := rng.IntN(len(m.city))
	if err := tb.UpdateString("city", novelID, "Zagreb"); err != nil {
		t.Fatal(err)
	}
	m.city[novelID] = "Zagreb"
	checkAll("after updates")

	// Deletes.
	for d := 0; d < 400; d++ {
		id := rng.IntN(len(m.qty))
		if err := tb.Delete(id); err != nil {
			t.Fatal(err)
		}
		m.deleted[id] = true
	}
	checkAll("after deletes")

	// Compact renumbers ids; rebuild the oracle model accordingly.
	removed := tb.Compact()
	if removed != len(m.deleted) {
		t.Fatalf("Compact removed %d, want %d", removed, len(m.deleted))
	}
	nm := &segModel{deleted: map[int]bool{}}
	for i := range m.qty {
		if m.deleted[i] {
			continue
		}
		nm.qty = append(nm.qty, m.qty[i])
		nm.price = append(nm.price, m.price[i])
		nm.ts = append(nm.ts, m.ts[i])
		nm.city = append(nm.city, m.city[i])
		nm.tag = append(nm.tag, m.tag[i])
	}
	*m = *nm
	checkAll("after compact")
}

// TestSegmentPruning checks that segments whose summary (or dictionary)
// provably excludes the predicate are skipped without probing, and that
// Explain surfaces them per segment.
func TestSegmentPruning(t *testing.T) {
	// Strictly increasing qty: every segment covers a disjoint range, so
	// a narrow band hits exactly one segment.
	n, segRows := 2048, 256
	qty := make([]int64, n)
	city := make([]string, n)
	for i := range qty {
		qty[i] = int64(i * 10)
		city[i] = cities[i/segRows] // one city per segment
	}
	tb := NewWithOptions("pruned", TableOptions{SegmentRows: segRows})
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", city, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}

	// A band inside segment 3 only.
	lo, hi := int64(3*segRows*10+40), int64(3*segRows*10+400)
	q := tb.Select().Where(Range[int64]("qty", lo, hi)).Options(SelectOptions{Parallelism: 2})
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Segments != n/segRows {
		t.Fatalf("plan.Segments = %d, want %d", plan.Segments, n/segRows)
	}
	if plan.SegmentsPruned != plan.Segments-1 {
		t.Errorf("SegmentsPruned = %d, want %d", plan.SegmentsPruned, plan.Segments-1)
	}
	if len(plan.Root.SegmentDetails) != plan.Segments {
		t.Fatalf("leaf has %d segment details, want %d", len(plan.Root.SegmentDetails), plan.Segments)
	}
	prunedSegs, probes := 0, 0
	for s, sp := range plan.Root.SegmentDetails {
		switch sp.Access {
		case "pruned":
			prunedSegs++
			if sp.Stats.Probes != 0 {
				t.Errorf("pruned segment %d probed %d vectors", s, sp.Stats.Probes)
			}
		default:
			probes += int(sp.Stats.Probes)
			if s != 3 {
				t.Errorf("segment %d not pruned (access %s)", s, sp.Access)
			}
		}
	}
	if prunedSegs != plan.Segments-1 || probes == 0 {
		t.Errorf("pruned %d of %d segments with %d probes elsewhere", prunedSegs, plan.Segments, probes)
	}
	text := plan.String()
	for _, want := range []string{"pruned", "seg 3", "segments of 256"} {
		if !strings.Contains(text, want) {
			t.Errorf("plan text missing %q:\n%s", want, text)
		}
	}
	ids, st, err := q.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 36 { // (400-40)/10
		t.Errorf("band returned %d ids", len(ids))
	}
	_ = st

	// String pruning: a city present only in segment 5's dictionary.
	plan, err = tb.Select().Where(StrEquals("city", cities[5])).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.SegmentsPruned != plan.Segments-1 {
		t.Errorf("string leaf pruned %d segments, want %d", plan.SegmentsPruned, plan.Segments-1)
	}
}

// TestSegmentLocalMaintain pins the bounded-rebuild property: updates
// saturating one segment's imprint rebuild only that segment.
func TestSegmentLocalMaintain(t *testing.T) {
	n, segRows := 1024, 256
	qty := make([]int64, n)
	for i := range qty {
		qty[i] = int64(i) // near-sorted: very sparse imprints
	}
	tb := NewWithOptions("m", TableOptions{SegmentRows: segRows})
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	// Saturate segment 1 only: random values across its own histogram
	// range set many distinct bits per covering vector.
	rng := rand.New(rand.NewPCG(10, 10))
	for u := 0; u < 3000; u++ {
		id := segRows + rng.IntN(segRows)
		if err := Update(tb, "qty", id, int64(segRows+rng.IntN(segRows))); err != nil {
			t.Fatal(err)
		}
	}
	rep := tb.Maintain(MaintainOptions{SaturationLimit: 0.3})
	if len(rep.Rebuilt) != 1 || rep.Rebuilt[0] != "qty" {
		t.Fatalf("Rebuilt = %v", rep.Rebuilt)
	}
	if rep.SegmentsRebuilt != 1 {
		t.Errorf("SegmentsRebuilt = %d, want 1 (segment-local rebuild)", rep.SegmentsRebuilt)
	}
	if !strings.Contains(rep.String(), "rebuilt 1 segment(s)") {
		t.Errorf("report rendering: %s", rep)
	}
}

// TestSegmentScratchReuse pins the pooled candidate-id buffers: a
// second identical query reuses scratch capacity from the first and
// reports it.
func TestSegmentScratchReuse(t *testing.T) {
	tb, m := mkSegmented(t, 1200, 256, 41)
	pred := AtLeast[int64]("qty", m.qty[0]-1000)
	q := tb.Select().Where(pred).Options(SelectOptions{Parallelism: 1})
	if _, _, err := q.IDs(); err != nil {
		t.Fatal(err)
	}
	var reused uint64
	for i := 0; i < 5; i++ {
		_, st, err := q.IDs()
		if err != nil {
			t.Fatal(err)
		}
		reused += st.ScratchReused
	}
	if reused == 0 {
		t.Error("five repeat executions reused no pooled id scratch buffers")
	}
}

// TestSegmentIndexAccessors covers the segment-aware index accessors.
func TestSegmentIndexAccessors(t *testing.T) {
	tb, _ := mkSegmented(t, 1000, 256, 5)
	if _, err := Index[int64](tb, "qty"); err == nil {
		t.Error("Index on a multi-segment column did not error")
	}
	ix, err := SegmentIndex[int64](tb, "qty", 2)
	if err != nil || ix == nil {
		t.Fatalf("SegmentIndex: %v %v", ix, err)
	}
	if ix.Len() != 256 {
		t.Errorf("segment 2 index covers %d rows", ix.Len())
	}
	if _, err := SegmentIndex[int64](tb, "qty", 99); err == nil {
		t.Error("out-of-range segment accepted")
	}
	st, err := tb.IndexStats("qty")
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 4 || st.IndexedSegments != 4 || st.StoredVectors == 0 {
		t.Errorf("IndexStats = %+v", st)
	}
	// Single-segment tables keep the old Index behavior.
	small := New("s")
	if err := AddColumn(small, "v", []int64{1, 2, 3}, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if ix, err := Index[int64](small, "v"); err != nil || ix == nil {
		t.Errorf("single-segment Index: %v %v", ix, err)
	}
}

// TestParallelQueriesWithConcurrentWriters races parallel segmented
// reads against batch writers, updates and maintenance (meaningful
// under -race, and run at -cpu=1,2,4 in CI).
func TestParallelQueriesWithConcurrentWriters(t *testing.T) {
	const segRows = 256
	tb, m := mkSegmented(t, 2000, segRows, 99)
	done := make(chan struct{})
	var readers, writers sync.WaitGroup

	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			rng := rand.New(rand.NewPCG(seed, 7))
			pred := And(AtLeast[int64]("qty", 900), StrPrefix("city", "P"))
			for {
				select {
				case <-done:
					return
				default:
				}
				par := 1 + rng.IntN(4)
				ids, _, err := tb.Select().Where(pred).Options(SelectOptions{Parallelism: par}).IDs()
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				for i := 1; i < len(ids); i++ {
					if ids[i-1] >= ids[i] {
						t.Errorf("ids not ascending at parallelism %d", par)
						return
					}
				}
				n, _, err := tb.Select().Where(pred).Options(SelectOptions{Parallelism: par}).Count()
				if err != nil || n != uint64(len(ids)) {
					// Racing writers may change the table between the two
					// executions; only the error is checkable.
					if err != nil {
						t.Errorf("reader count: %v", err)
						return
					}
				}
			}
		}(uint64(r))
	}

	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewPCG(1234, 8))
		for w := 0; w < 30; w++ {
			b := tb.NewBatch()
			k := 100 + rng.IntN(300)
			qty := make([]int64, k)
			price := make([]float64, k)
			ts := make([]int64, k)
			city := make([]string, k)
			tag := make([]string, k)
			for i := range qty {
				qty[i] = int64(900 + rng.IntN(300))
				price[i] = rng.Float64() * 100
				ts[i] = int64(rng.IntN(10000))
				city[i] = cities[rng.IntN(len(cities))]
				tag[i] = "new"
			}
			if err := Append(b, "qty", qty); err != nil {
				t.Error(err)
				return
			}
			if err := Append(b, "price", price); err != nil {
				t.Error(err)
				return
			}
			if err := Append(b, "ts", ts); err != nil {
				t.Error(err)
				return
			}
			if err := b.AppendStrings("city", city); err != nil {
				t.Error(err)
				return
			}
			if err := b.AppendStrings("tag", tag); err != nil {
				t.Error(err)
				return
			}
			if err := b.Commit(); err != nil {
				t.Error(err)
				return
			}
			for u := 0; u < 20; u++ {
				if err := Update(tb, "qty", rng.IntN(len(m.qty)), int64(rng.IntN(2000))); err != nil {
					t.Error(err)
					return
				}
			}
			if rng.IntN(4) == 0 {
				tb.Maintain(MaintainOptions{SaturationLimit: 0.4})
			}
		}
	}()

	writers.Wait()
	close(done)
	readers.Wait()
}

// TestRowsPanicDrainsWorkers pins the panic-safety of the parallel
// iterator: a panic in the Rows() loop body must stop and drain the
// segment workers before the read lock is released, so a recovering
// caller can immediately write without racing in-flight workers
// (meaningful under -race).
func TestRowsPanicDrainsWorkers(t *testing.T) {
	tb, _ := mkSegmented(t, 2000, 256, 17)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		q := tb.Select("qty").Where(AtLeast[int64]("qty", 0)).Options(SelectOptions{Parallelism: 4})
		for range q.Rows() {
			panic("consumer explodes mid-iteration")
		}
	}()
	// The write lock must be free and no worker may still be reading.
	if err := Update(tb, "qty", 0, int64(1)); err != nil {
		t.Fatal(err)
	}
	b := tb.NewBatch()
	if err := Append(b, "qty", []int64{5}); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "price", []float64{5}); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "ts", []int64{5}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("city", []string{"Paris"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("tag", []string{"new"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistRoundTripSegmented round-trips a multi-segment table
// through the v3 format and checks queries agree.
func TestPersistRoundTripSegmented(t *testing.T) {
	tb, m := mkSegmented(t, 1300, 256, 21)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 1300 || got.Segments() != tb.Segments() || got.SegmentRows() != 256 {
		t.Fatalf("loaded %d rows, %d segments of %d", got.Rows(), got.Segments(), got.SegmentRows())
	}
	pred := Or(And(AtLeast[int64]("qty", 950), StrPrefix("city", "A")), StrEquals("tag", "done"))
	a, _, err := tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	b, st, err := got.Select().Where(pred).Options(SelectOptions{Parallelism: 4}).IDs()
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, b, a, "persisted segmented query")
	if st.Probes == 0 {
		t.Error("persisted per-segment imprints did not probe")
	}
	_ = m
}

// TestV2FormatLoads hand-crafts a legacy version-2 file (monolithic
// payload + one index image per column) and checks it still loads —
// re-chunked into segments — with values and queries intact.
func TestV2FormatLoads(t *testing.T) {
	qty := []int64{5, 10, 15, 20, 25, 30, 35, 40}
	city := []string{"a", "b", "a", "c", "b", "a", "c", "b"}

	var buf bytes.Buffer
	w := &buf
	le := binary.LittleEndian
	buf.WriteString("CTBL")
	binary.Write(w, le, uint16(2)) // legacy version
	binary.Write(w, le, uint16(len("old")))
	buf.WriteString("old")
	binary.Write(w, le, uint64(len(qty)))
	binary.Write(w, le, uint16(2)) // ncols

	// Column "qty": int64, Imprints mode, zero options, payload, no
	// index image (v2 allowed absent images; the loader rebuilds).
	binary.Write(w, le, uint16(len("qty")))
	buf.WriteString("qty")
	buf.Write([]byte{byte(6 /* reflect.Int64 */), byte(Imprints)})
	binary.Write(w, le, uint32(0)) // sampleSize
	binary.Write(w, le, uint64(0)) // seed
	buf.WriteByte(0)               // countDup
	binary.Write(w, le, uint32(0)) // vpc
	binary.Write(w, le, uint32(0)) // maxBins
	if err := colfile.Write(w, qty); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0) // hasIndex = 0

	// Column "city": string with a monolithic dictionary.
	binary.Write(w, le, uint16(len("city")))
	buf.WriteString("city")
	buf.Write([]byte{byte(24 /* reflect.String */), byte(Imprints)})
	binary.Write(w, le, uint32(0))
	binary.Write(w, le, uint64(0))
	buf.WriteByte(0)
	binary.Write(w, le, uint32(0))
	binary.Write(w, le, uint32(0))
	symbols := []string{"a", "b", "c"}
	codeOf := map[string]int32{"a": 0, "b": 1, "c": 2}
	binary.Write(w, le, uint32(len(symbols)))
	for _, s := range symbols {
		binary.Write(w, le, uint32(len(s)))
		buf.WriteString(s)
	}
	codes := make([]int32, len(city))
	for i, s := range city {
		codes[i] = codeOf[s]
	}
	if err := colfile.Write(w, codes); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0) // hasIndex = 0

	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("loading v2 file: %v", err)
	}
	if got.Rows() != len(qty) || got.Name() != "old" {
		t.Fatalf("v2 load: %d rows, name %q", got.Rows(), got.Name())
	}
	vals, err := Column[int64](got, "qty")
	if err != nil {
		t.Fatal(err)
	}
	for i := range qty {
		if vals[i] != qty[i] {
			t.Fatalf("qty[%d] = %d, want %d", i, vals[i], qty[i])
		}
	}
	strs, err := got.StringColumn("city")
	if err != nil {
		t.Fatal(err)
	}
	for i := range city {
		if strs[i] != city[i] {
			t.Fatalf("city[%d] = %q, want %q", i, strs[i], city[i])
		}
	}
	ids, _, err := got.Select().Where(And(AtLeast[int64]("qty", 20), StrEquals("city", "b"))).IDs()
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, ids, []uint32{4, 7}, "query over loaded v2 table")
}

// TestV3RejectsUnderfullSealedSegment pins the loader invariant behind
// id mapping: a v3 file whose non-tail segment is not exactly full
// must be rejected as corrupt (it would otherwise load fine and panic
// on the first point read).
func TestV3RejectsUnderfullSealedSegment(t *testing.T) {
	var buf bytes.Buffer
	w := &buf
	le := binary.LittleEndian
	buf.WriteString("CTBL")
	binary.Write(w, le, uint16(3))
	binary.Write(w, le, uint16(len("bad")))
	buf.WriteString("bad")
	binary.Write(w, le, uint64(127))
	binary.Write(w, le, uint32(64)) // segmentRows
	binary.Write(w, le, uint16(1))  // ncols

	binary.Write(w, le, uint16(len("c")))
	buf.WriteString("c")
	buf.Write([]byte{byte(6 /* reflect.Int64 */), byte(NoIndex)})
	binary.Write(w, le, uint32(0)) // sampleSize
	binary.Write(w, le, uint64(0)) // seed
	buf.WriteByte(0)               // countDup
	binary.Write(w, le, uint32(0)) // vpc
	binary.Write(w, le, uint32(0)) // maxBins
	binary.Write(w, le, uint32(2)) // nsegs
	seg0 := make([]int64, 63)      // sealed segment short by one row
	seg1 := make([]int64, 64)
	if err := colfile.Write(w, seg0); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0) // hasIndex = 0
	if err := colfile.Write(w, seg1); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0)

	if _, err := Read(&buf); err == nil {
		t.Fatal("v3 file with an underfull sealed segment loaded without error")
	}
}

// TestSealedSegmentTranslationsSurviveAppends pins the tentpole's
// segment-granular plan tracking: after a batch append, a prepared
// string leaf keeps its cached translations for sealed segments (their
// generation is unchanged) and only ever translates the tail.
func TestSealedSegmentTranslationsSurviveAppends(t *testing.T) {
	tb, m := mkSegmented(t, 1000, 256, 61)
	cs, err := strCol(tb, "city")
	if err != nil {
		t.Fatal(err)
	}
	gensBefore := make([]uint64, 3)
	for s := 0; s < 3; s++ {
		gensBefore[s] = cs.segs[s].gen
	}

	b := tb.NewBatch()
	if err := Append(b, "qty", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "price", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "ts", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// A novel string lands in the tail segment: only its dictionary
	// re-encodes.
	if err := b.AppendStrings("city", []string{"Novelton", m.city[0], m.city[1]}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("tag", []string{"new", "new", "new"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	for s := 0; s < 3; s++ {
		if cs.segs[s].gen != gensBefore[s] {
			t.Errorf("sealed segment %d generation changed %d -> %d on append",
				s, gensBefore[s], cs.segs[s].gen)
		}
	}
	if tail := cs.segs[len(cs.segs)-1]; tail.gen == 0 {
		t.Error("tail segment has no generation")
	}
	// And the novel value is queryable.
	ids, _, err := tb.Select().Where(StrEquals("city", "Novelton")).IDs()
	if err != nil || len(ids) != 1 || ids[0] != 1000 {
		t.Fatalf("novel string query: %v %v", ids, err)
	}
}

// TestNormalizeSegmentRows pins the rounding rule.
func TestNormalizeSegmentRows(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultSegmentRows},
		{-5, DefaultSegmentRows},
		{64, 64},
		{100, 128},
		{65536, 65536},
	} {
		if got := NewWithOptions("x", TableOptions{SegmentRows: tc.in}).SegmentRows(); got != tc.want {
			t.Errorf("normalizeSegmentRows(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// BenchmarkParallelCount exercises the fan-out on a multi-segment
// table at several parallelism levels.
func BenchmarkParallelCount(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 3))
	n := 512 * 1024
	price := make([]float64, n)
	for i := range price {
		price[i] = rng.Float64() * 1000
	}
	tb := New("bench")
	if err := AddColumn(tb, "price", price, Imprints, core.Options{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			q := tb.Select().Where(Range[float64]("price", 100, 400)).Options(SelectOptions{Parallelism: par})
			for i := 0; i < b.N; i++ {
				if _, _, err := q.Count(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
