package table

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// resolveParallelism turns SelectOptions.Parallelism into the worker
// count for nsegs segments: 0 means GOMAXPROCS, and there is never a
// point in more workers than segments.
func resolveParallelism(opts SelectOptions, nsegs int) int {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return max(1, min(par, nsegs))
}

// segOut is what one segment worker hands back to the merging consumer.
type segOut struct {
	st     core.QueryStats
	ids    *[]uint32 // materialized global ids (IDs/Rows); pooled, consumer returns it
	count  uint64    // qualifying rows (Count, Aggregate)
	fast   uint64    // live rows of exact root runs (Explain's count fast path)
	plan   *PlanNode
	aggs   []aggPartial // per-spec partials (Aggregate)
	groups []groupOut   // per-group partials (GroupBy)
	ord    orderPartial // bounded-heap partial (OrderBy)
}

// forEachSegment evaluates segments 0..nsegs-1 with work, fanning them
// across par workers, and feeds the results to consume in ascending
// segment order (so query results are deterministic regardless of
// parallelism). consume returning false cancels the segments no worker
// has started yet — the early-exit behind Limit — while in-flight
// segments drain before the call returns (workers touch table state
// that is only guarded while the caller holds the read lock).
//
// With one worker (or one segment) everything runs inline on the
// calling goroutine, with a plain early break.
func (t *Table) forEachSegment(nsegs, par int, work func(s int) segOut, consume func(s int, o segOut) bool) {
	if nsegs == 0 {
		return
	}
	if par <= 1 || nsegs == 1 {
		for s := 0; s < nsegs; s++ {
			if !consume(s, work(s)) {
				return
			}
		}
		return
	}

	outs := make([]segOut, nsegs)
	done := make([]chan struct{}, nsegs)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= nsegs {
					return
				}
				if !stop.Load() {
					outs[s] = work(s)
				}
				close(done[s])
			}
		}()
	}
	// Deferred so a panic in consume (e.g. a Rows() yield panicking)
	// still stops and drains the workers before the caller's unwind
	// releases the table read lock — otherwise in-flight workers would
	// race whatever writer runs next. Completed-but-unconsumed segments
	// also get their pooled id buffers recycled here.
	consumed := 0
	defer func() {
		stop.Store(true)
		wg.Wait()
		for s := consumed; s < nsegs; s++ {
			putIDScratch(outs[s].ids)
		}
	}()
	for s := 0; s < nsegs; s++ {
		<-done[s]
		consumed = s + 1
		if !consume(s, outs[s]) {
			return
		}
	}
}

// idScratchPool recycles the per-segment candidate-id buffers the
// evaluator materializes into, so steady-state queries stop growing a
// fresh []uint32 per segment per query. Buffers are returned by the
// merging consumer once their ids are copied out (or yielded).
var idScratchPool = sync.Pool{New: func() any { return new([]uint32) }}

// getIDScratch fetches a pooled id buffer, reporting whether it brought
// usable capacity from a previous query (surfaced as
// QueryStats.ScratchReused). The same *[]uint32 must be handed back to
// putIDScratch so Get and Put exchange one pointer, never re-boxing.
func getIDScratch() (*[]uint32, bool) {
	buf := idScratchPool.Get().(*[]uint32)
	*buf = (*buf)[:0]
	return buf, cap(*buf) > 0
}

func putIDScratch(buf *[]uint32) {
	if buf != nil {
		idScratchPool.Put(buf)
	}
}

// spanAction tells walkRuns how to continue after a run was offered
// wholesale.
type spanAction int

const (
	spanPerRow spanAction = iota // walk the run's rows one by one
	spanDone                     // the run was fully handled wholesale
	spanStop                     // stop the walk
)

// walkRuns is the single definition of the candidate-run walk every
// executor shares: each run is first offered wholesale to span (global
// [from, to) bounds clamped to the segment, plus its exactness); a
// spanPerRow reply walks the run's rows one by one — skipping deleted
// rows and applying the residual check of inexact runs (counting
// comparisons into st) — through visit, which returns false to stop.
// Callers hold the read lock.
func (t *Table) walkRuns(s int, ev evaluated, st *core.QueryStats, span func(from, to int, exact bool) spanAction, visit func(id int) bool) {
	base := s * t.segRows
	end := base + t.segLen(s)
	for _, r := range ev.runs {
		from := base + int(r.Start)*BlockRows
		to := base + (int(r.Start)+int(r.Count))*BlockRows
		if to > end {
			to = end
		}
		if span != nil {
			switch span(from, to, r.Exact) {
			case spanDone:
				continue
			case spanStop:
				return
			}
		}
		for id := from; id < to; id++ {
			if t.deleted != nil && t.deleted.Get(id) {
				continue
			}
			if !r.Exact && ev.check != nil {
				st.Comparisons++
				if !ev.check(uint32(id - base)) {
					continue
				}
			}
			if !visit(id) {
				return
			}
		}
	}
}

// scanSegment walks one segment's candidate runs, handing each
// qualifying row — as a global row id — to visit. Exact runs are
// offered wholesale to visitRun when it is non-nil (Count's fast path)
// as their live row count: the span minus a popcount over the deleted
// bitmap, no per-row work. Either callback returns false to stop.
// Callers hold the read lock.
func (t *Table) scanSegment(s int, ev evaluated, st *core.QueryStats, visitRun func(live int) bool, visit func(id int) bool) {
	var span func(from, to int, exact bool) spanAction
	if visitRun != nil {
		span = func(from, to int, exact bool) spanAction {
			if !exact {
				return spanPerRow
			}
			live := t.liveRows(from, to)
			st.FastCountedRows += uint64(live)
			if !visitRun(live) {
				return spanStop
			}
			return spanDone
		}
	}
	t.walkRuns(s, ev, st, span, visit)
}

// deletedInSpan popcounts the deleted bitmap over [from, to); callers
// hold the read lock.
func (t *Table) deletedInSpan(from, to int) int {
	if t.deleted == nil || t.ndel == 0 {
		return 0
	}
	return t.deleted.CountRange(from, to)
}

// liveRows is the single definition of the Count fast path's wholesale
// tally for one row span: the span minus a popcount over the deleted
// bitmap, no per-row work. scanSegment applies it to exact runs and
// Explain previews it (fastCountRows); callers hold the read lock.
func (t *Table) liveRows(from, to int) int {
	return to - from - t.deletedInSpan(from, to)
}

// fastCountSegment previews the Count fast path's coverage across one
// segment's run list: the live rows of its exact runs. Callers hold the
// read lock.
func (t *Table) fastCountSegment(s int, runs []core.CandidateRun) uint64 {
	base := s * t.segRows
	end := base + t.segLen(s)
	var n uint64
	for _, r := range runs {
		if !r.Exact {
			continue
		}
		from := base + int(r.Start)*BlockRows
		to := base + (int(r.Start)+int(r.Count))*BlockRows
		if to > end {
			to = end
		}
		n += uint64(t.liveRows(from, to))
	}
	return n
}
