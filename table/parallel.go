package table

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ctxErr reports a context's cancellation state, tolerating the nil
// context of an unbounded execution.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// abortErr wraps a cancellation so executors report which table's query
// was cut short while errors.Is still matches context.Canceled /
// context.DeadlineExceeded.
func (t *Table) abortErr(err error) error {
	return fmt.Errorf("table %s: query canceled: %w", t.name, err)
}

// resolveParallelism turns SelectOptions.Parallelism into the worker
// count for nsegs segments: 0 means GOMAXPROCS, and there is never a
// point in more workers than segments.
func resolveParallelism(opts SelectOptions, nsegs int) int {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return max(1, min(par, nsegs))
}

// segOut is what one segment worker hands back to the merging consumer.
type segOut struct {
	st     core.QueryStats
	ids    *[]uint32 // materialized global ids (IDs/Rows); pooled, consumer returns it
	count  uint64    // qualifying rows (Count, Aggregate)
	fast   uint64    // live rows of exact root runs (Explain's count fast path)
	vect   uint64    // blocks of inexact root runs (Explain's vectorized preview)
	plan   *PlanNode
	aggs   []aggPartial // per-spec partials (Aggregate)
	groups []groupOut   // per-group partials (GroupBy)
	ord    orderPartial // bounded-heap partial (OrderBy)
}

// forEachSegment evaluates segments 0..nsegs-1 with work, fanning them
// across par workers, and feeds the results to consume in ascending
// segment order (so query results are deterministic regardless of
// parallelism). consume returning false cancels the segments no worker
// has started yet — the early-exit behind Limit — while in-flight
// segments drain before the call returns (workers touch table state
// that is only guarded while the caller holds the read lock).
//
// ctx (nil for unbounded executions) cancels the fan-out between
// segments: serial executions check it before each segment, parallel
// workers before claiming the next one, and the merging consumer before
// each merge — a canceled query returns the context's error promptly
// without evaluating segments no worker has started, discarding any
// partial results. The error comes back unwrapped; executors wrap it
// with abortErr.
//
// With one worker (or one segment) everything runs inline on the
// calling goroutine, with a plain early break.
func (t *Table) forEachSegment(ctx context.Context, nsegs, par int, work func(s int) segOut, consume func(s int, o segOut) bool) error {
	if nsegs == 0 {
		return nil
	}
	if par <= 1 || nsegs == 1 {
		for s := 0; s < nsegs; s++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			if !consume(s, work(s)) {
				return nil
			}
		}
		return nil
	}

	outs := make([]segOut, nsegs)
	done := make([]chan struct{}, nsegs)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= nsegs {
					return
				}
				if !stop.Load() && ctxErr(ctx) == nil {
					outs[s] = work(s)
				}
				close(done[s])
			}
		}()
	}
	// Deferred so a panic in consume (e.g. a Rows() yield panicking)
	// still stops and drains the workers before the caller's unwind
	// releases the table read lock — otherwise in-flight workers would
	// race whatever writer runs next. Completed-but-unconsumed segments
	// also get their pooled id buffers recycled here.
	consumed := 0
	defer func() {
		stop.Store(true)
		wg.Wait()
		for s := consumed; s < nsegs; s++ {
			putIDScratch(outs[s].ids)
		}
	}()
	for s := 0; s < nsegs; s++ {
		<-done[s]
		// Checked before taking ownership of outs[s], so the deferred
		// cleanup recycles the pooled buffers of every unconsumed segment.
		if err := ctxErr(ctx); err != nil {
			return err
		}
		consumed = s + 1
		if !consume(s, outs[s]) {
			return nil
		}
	}
	return nil
}

// idScratchPool recycles the per-segment candidate-id buffers the
// evaluator materializes into, so steady-state queries stop growing a
// fresh []uint32 per segment per query. Buffers are returned by the
// merging consumer once their ids are copied out (or yielded).
var idScratchPool = sync.Pool{New: func() any { return new([]uint32) }}

// getIDScratch fetches a pooled id buffer, reporting whether it brought
// usable capacity from a previous query (surfaced as
// QueryStats.ScratchReused). The same *[]uint32 must be handed back to
// putIDScratch so Get and Put exchange one pointer, never re-boxing.
func getIDScratch() (*[]uint32, bool) {
	buf := idScratchPool.Get().(*[]uint32)
	*buf = (*buf)[:0]
	return buf, cap(*buf) > 0
}

func putIDScratch(buf *[]uint32) {
	if buf != nil {
		idScratchPool.Put(buf)
	}
}

// runScratchPool recycles candidate-run buffers: the per-segment run
// lists index probes produce and predicate composition merges into.
// Together with the pooled id buffers and the per-segment kernel caches
// it makes a steady-state vectorized Count/IDs execution allocation-
// free (pinned by TestVectorizedAllocs).
var runScratchPool = sync.Pool{New: func() any { return new([]core.CandidateRun) }}

func getRunScratch() *[]core.CandidateRun {
	buf := runScratchPool.Get().(*[]core.CandidateRun)
	*buf = (*buf)[:0]
	return buf
}

func putRunScratch(buf *[]core.CandidateRun) {
	if buf != nil {
		runScratchPool.Put(buf)
	}
}

// spanAction tells walkBlocks how to continue after a run was offered
// wholesale.
type spanAction int

const (
	spanPerBlock spanAction = iota // walk the run block by block
	spanDone                       // the run was fully handled wholesale
	spanStop                       // stop the walk
)

// blockOnes returns the all-lanes-set mask of an n-row block, n in
// [1, BlockRows].
func blockOnes(n int) uint64 { return ^uint64(0) >> (64 - uint(n)) }

// liveMask64 returns the live-lane mask of the n-row block starting at
// global row b (64-aligned): bit i set iff row b+i is not deleted,
// lanes >= n zero. One word load folds 64 rows of delete state.
// Callers hold the read lock.
//
//imprintvet:locks held=mu.R
//imprintvet:hotpath
func (t *Table) liveMask64(b, n int) uint64 {
	if t.deleted == nil || t.ndel == 0 {
		return blockOnes(n)
	}
	return t.deleted.LiveMask64(b, n)
}

// walkBlocks is the single definition of the candidate-run walk every
// executor shares. Each run is first offered wholesale to span (global
// [from, to) bounds clamped to the segment, plus its exactness); a
// spanPerBlock reply walks the run BlockRows rows at a time, handing
// block (the consumer) the block's global base row and its 64-lane
// selection mask: deleted lanes are cleared with one word-AND against
// the deleted bitmap, and inexact runs additionally evaluate the
// residual predicate over the block — through the evaluation's
// selection-mask kernel (one branch-light pass over the value slab,
// counted in st.BlocksVectorized) or, when SelectOptions.Scalar forced
// the row-at-a-time path, through the composed check closure per live
// lane. Comparisons counts one comparison per evaluated live lane
// either way (the popcount of the live mask), preserving its Figure-11
// meaning. block returning false stops the walk. Runs start on block
// boundaries and segments hold whole blocks, so every mask is 64-row
// aligned; only a segment's ragged tail yields a shorter block.
// Callers hold the read lock.
//
//imprintvet:locks held=mu.R
//imprintvet:hotpath
func (t *Table) walkBlocks(s int, ev evaluated, st *core.QueryStats, span func(from, to int, exact bool) spanAction, block func(base int, mask uint64) bool) {
	base := s * t.segRows
	end := base + t.segLen(s)
	for _, r := range ev.runs {
		from := base + int(r.Start)*BlockRows
		to := base + (int(r.Start)+int(r.Count))*BlockRows
		if to > end {
			to = end
		}
		if span != nil {
			switch span(from, to, r.Exact) {
			case spanDone:
				continue
			case spanStop:
				return
			}
		}
		if block == nil {
			continue
		}
		residual := !r.Exact && (ev.kern != nil || ev.check != nil)
		for b := from; b < to; b += BlockRows {
			n := BlockRows
			if b+n > to {
				n = to - b
			}
			m := t.liveMask64(b, n)
			if residual {
				st.Comparisons += uint64(bits.OnesCount64(m))
				if ev.kern != nil {
					st.BlocksVectorized++
					m &= ev.kern(b-base, b-base+n)
				} else {
					live := m
					m = 0
					lb := uint32(b - base)
					for live != 0 {
						i := bits.TrailingZeros64(live)
						live &= live - 1
						if ev.check(lb + uint32(i)) {
							m |= 1 << uint(i)
						}
					}
				}
			}
			if m != 0 && !block(b, m) {
				return
			}
		}
	}
}

// deletedInSpan popcounts the deleted bitmap over [from, to); callers
// hold the read lock.
//
//imprintvet:locks held=mu.R
//imprintvet:hotpath
func (t *Table) deletedInSpan(from, to int) int {
	if t.deleted == nil || t.ndel == 0 {
		return 0
	}
	return t.deleted.CountRange(from, to)
}

// liveRows is the single definition of the Count fast path's wholesale
// tally for one row span: the span minus a popcount over the deleted
// bitmap, no per-row work. Count applies it to exact runs and Explain
// previews it (fastCountRows); callers hold the read lock.
//
//imprintvet:locks held=mu.R
//imprintvet:hotpath
func (t *Table) liveRows(from, to int) int {
	return to - from - t.deletedInSpan(from, to)
}

// fastCountSegment previews the Count fast path's coverage across one
// segment's run list: the live rows of its exact runs. Callers hold the
// read lock.
//
//imprintvet:locks held=mu.R
//imprintvet:hotpath
func (t *Table) fastCountSegment(s int, runs []core.CandidateRun) uint64 {
	base := s * t.segRows
	end := base + t.segLen(s)
	var n uint64
	for _, r := range runs {
		if !r.Exact {
			continue
		}
		from := base + int(r.Start)*BlockRows
		to := base + (int(r.Start)+int(r.Count))*BlockRows
		if to > end {
			to = end
		}
		n += uint64(t.liveRows(from, to))
	}
	return n
}

// vectorizedBlocksSegment previews the vectorized residual tier across
// one segment's run list: the 64-row blocks of its inexact runs, which
// an execution would evaluate through selection-mask kernels (and count
// in QueryStats.BlocksVectorized). Callers hold the read lock.
func (t *Table) vectorizedBlocksSegment(s int, runs []core.CandidateRun) uint64 {
	end := t.segLen(s)
	var n uint64
	for _, r := range runs {
		if r.Exact {
			continue
		}
		from := int(r.Start) * BlockRows
		to := from + int(r.Count)*BlockRows
		if to > end {
			to = end
		}
		n += uint64((to - from + BlockRows - 1) / BlockRows)
	}
	return n
}
