package table

import (
	"fmt"

	"repro/internal/coltype"
	"repro/internal/core"
	"repro/internal/zonemap"
)

// BlockRows is the row granularity at which table-level predicates are
// composed. Columns of different value widths cover different numbers
// of rows per imprint vector (8 for 8-byte values up to 64 for 1-byte
// values); normalizing every column's candidate list to blocks of 64
// rows makes run lists from mixed-width columns merge-joinable.
const BlockRows = 64

// Predicate is a node of a selection tree over one table. Build leaves
// with Range/AtLeast/LessThan/Equals/In (numeric columns) and StrRange/
// StrAtLeast/StrLessThan/StrEquals/StrIn/StrPrefix (string columns),
// compose them with And/Or/AndNot, and execute through Table.Select.
type Predicate interface{ isPred() }

type leafKind int

const (
	kindRange leafKind = iota // low <= v < high (strings: low <= v <= high)
	kindAtLeast
	kindLessThan
	kindEquals
	kindIn     // v in set (low holds the []V or []string)
	kindPrefix // string columns only: v starts with low
)

// leafPred holds type-erased bounds; the owning column re-types them.
type leafPred struct {
	col       string
	kind      leafKind
	low, high any
}

func (*leafPred) isPred() {}

// describe renders the leaf for Explain plans.
func (p *leafPred) describe() string {
	switch p.kind {
	case kindRange:
		if _, isStr := p.low.(string); isStr {
			return fmt.Sprintf("%s in [%s, %s]", p.col, bound(p.low), bound(p.high))
		}
		return fmt.Sprintf("%s in [%s, %s)", p.col, bound(p.low), bound(p.high))
	case kindAtLeast:
		return fmt.Sprintf("%s >= %s", p.col, bound(p.low))
	case kindLessThan:
		return fmt.Sprintf("%s < %s", p.col, bound(p.high))
	case kindEquals:
		return fmt.Sprintf("%s == %s", p.col, bound(p.low))
	case kindIn:
		return fmt.Sprintf("%s in %s", p.col, bound(p.low))
	case kindPrefix:
		return fmt.Sprintf("%s prefix %s", p.col, bound(p.low))
	}
	return fmt.Sprintf("%s ?", p.col)
}

// bound renders one predicate bound, quoting strings so empty or
// space-bearing values stay visible in plans.
func bound(x any) string {
	switch v := x.(type) {
	case string:
		return fmt.Sprintf("%q", v)
	case []string:
		return fmt.Sprintf("%q", v)
	}
	return fmt.Sprintf("%v", x)
}

type andPred struct{ kids []Predicate }
type orPred struct{ kids []Predicate }
type andNotPred struct{ p, q Predicate }

func (*andPred) isPred()    {}
func (*orPred) isPred()     {}
func (*andNotPred) isPred() {}

// Range selects rows with low <= column < high.
func Range[V coltype.Value](col string, low, high V) Predicate {
	return &leafPred{col: col, kind: kindRange, low: low, high: high}
}

// AtLeast selects rows with column >= low.
func AtLeast[V coltype.Value](col string, low V) Predicate {
	return &leafPred{col: col, kind: kindAtLeast, low: low}
}

// LessThan selects rows with column < high.
func LessThan[V coltype.Value](col string, high V) Predicate {
	return &leafPred{col: col, kind: kindLessThan, high: high}
}

// Equals selects rows with column == v.
func Equals[V coltype.Value](col string, v V) Predicate {
	return &leafPred{col: col, kind: kindEquals, low: v}
}

// In selects rows whose column equals any of the given values (an
// IN-list, answered in a single index pass). The values are copied, so
// a caller-reused backing slice cannot change the predicate later.
func In[V coltype.Value](col string, values ...V) Predicate {
	return &leafPred{col: col, kind: kindIn, low: append([]V(nil), values...)}
}

// StrRange selects rows of a string column with low <= v <= high.
// String ranges are inclusive on both ends (the dictionary maps them to
// a half-open code range internally).
func StrRange(col, low, high string) Predicate {
	return &leafPred{col: col, kind: kindRange, low: low, high: high}
}

// StrAtLeast selects rows of a string column with v >= low.
func StrAtLeast(col, low string) Predicate {
	return &leafPred{col: col, kind: kindAtLeast, low: low}
}

// StrLessThan selects rows of a string column with v < high.
func StrLessThan(col, high string) Predicate {
	return &leafPred{col: col, kind: kindLessThan, high: high}
}

// StrEquals selects rows of a string column equal to v.
func StrEquals(col, v string) Predicate {
	return &leafPred{col: col, kind: kindEquals, low: v}
}

// StrIn selects rows of a string column equal to any of the given
// values (strings absent from the column select nothing).
func StrIn(col string, values ...string) Predicate {
	return &leafPred{col: col, kind: kindIn, low: append([]string(nil), values...)}
}

// StrPrefix selects rows of a string column starting with prefix.
// Matching strings form a contiguous dictionary range, so the leaf is
// answered in a single index pass like any other range.
func StrPrefix(col, prefix string) Predicate {
	return &leafPred{col: col, kind: kindPrefix, low: prefix}
}

// And selects rows satisfying every child predicate.
func And(ps ...Predicate) Predicate { return &andPred{kids: ps} }

// Or selects rows satisfying at least one child predicate.
func Or(ps ...Predicate) Predicate { return &orPred{kids: ps} }

// AndNot selects rows satisfying p but not q.
func AndNot(p, q Predicate) Predicate { return &andNotPred{p: p, q: q} }

// SelectOptions tunes evaluation.
type SelectOptions struct {
	// ScanThreshold disables index probing for a leaf whose estimated
	// selectivity is above it (the paper's optimizer remark: prefer a
	// scan for unselective predicates). 0 means the default of 0.95;
	// set above 1 to always probe.
	ScanThreshold float64
}

func (o SelectOptions) threshold() float64 {
	if o.ScanThreshold == 0 {
		return 0.95
	}
	return o.ScanThreshold
}

// evaluated is the composable form of a predicate subtree: candidate
// row-block runs, the exact residual row check, and the plan node that
// records how the subtree was evaluated (for Explain).
type evaluated struct {
	runs  []core.CandidateRun // in BlockRows units
	check core.CheckFunc
	plan  *PlanNode
}

// eval recursively evaluates a predicate subtree; callers hold the
// table's read lock.
func (t *Table) eval(p Predicate, opts SelectOptions, st *core.QueryStats) (evaluated, error) {
	switch node := p.(type) {
	case *leafPred:
		return t.evalLeaf(node, opts, st)
	case *andPred:
		if len(node.kids) == 0 {
			return evaluated{}, fmt.Errorf("table %s: empty AND", t.name)
		}
		acc, err := t.eval(node.kids[0], opts, st)
		if err != nil {
			return evaluated{}, err
		}
		checks := []core.CheckFunc{acc.check}
		kids := []*PlanNode{acc.plan}
		for _, kid := range node.kids[1:] {
			ev, err := t.eval(kid, opts, st)
			if err != nil {
				return evaluated{}, err
			}
			acc.runs = core.IntersectRuns(acc.runs, ev.runs)
			checks = append(checks, ev.check)
			kids = append(kids, ev.plan)
		}
		acc.check = allOf(checks)
		acc.plan = opNode("and", acc.runs, kids)
		return acc, nil
	case *orPred:
		if len(node.kids) == 0 {
			return evaluated{}, fmt.Errorf("table %s: empty OR", t.name)
		}
		acc, err := t.eval(node.kids[0], opts, st)
		if err != nil {
			return evaluated{}, err
		}
		checks := []core.CheckFunc{acc.check}
		kids := []*PlanNode{acc.plan}
		for _, kid := range node.kids[1:] {
			ev, err := t.eval(kid, opts, st)
			if err != nil {
				return evaluated{}, err
			}
			acc.runs = core.UnionRuns(acc.runs, ev.runs)
			checks = append(checks, ev.check)
			kids = append(kids, ev.plan)
		}
		acc.check = anyOf(checks)
		acc.plan = opNode("or", acc.runs, kids)
		return acc, nil
	case *andNotPred:
		evP, err := t.eval(node.p, opts, st)
		if err != nil {
			return evaluated{}, err
		}
		evQ, err := t.eval(node.q, opts, st)
		if err != nil {
			return evaluated{}, err
		}
		pc, qc := evP.check, evQ.check
		runs := core.DiffRuns(evP.runs, evQ.runs)
		return evaluated{
			runs:  runs,
			check: func(id uint32) bool { return pc(id) && !qc(id) },
			plan:  opNode("andnot", runs, []*PlanNode{evP.plan, evQ.plan}),
		}, nil
	}
	return evaluated{}, fmt.Errorf("table %s: unknown predicate %T", t.name, p)
}

func (t *Table) evalLeaf(p *leafPred, opts SelectOptions, st *core.QueryStats) (evaluated, error) {
	c, ok := t.cols[p.col]
	if !ok {
		return evaluated{}, fmt.Errorf("table %s: no column %q", t.name, p.col)
	}
	check, err := c.leafCheck(p)
	if err != nil {
		return evaluated{}, err
	}
	node := &PlanNode{Op: "leaf", Column: p.col, Pred: p.describe(), Access: c.indexKind(), Selectivity: -1}
	// Cost-based access path: skip index probing for unselective leaves.
	// Only imprint-backed columns yield an estimate (negative means
	// none); zonemap leaves are always probed — their per-zone cost is
	// two comparisons, so a scan fallback buys nothing.
	if est, err := c.estimate(p); err == nil && est >= 0 {
		// est >= 0 implies an imprint-backed leaf, so Access here is
		// always "imprints".
		node.Selectivity = est
		if est > opts.threshold() {
			node.Access = "scan"
			node.Reason = "unselective"
			runs := t.fullSpan()
			node.setRuns(runs)
			return evaluated{runs: runs, check: check, plan: node}, nil
		}
	}
	runs, s, err := c.leafRuns(p)
	if err != nil {
		return evaluated{}, err
	}
	st.Add(s)
	node.Stats = s
	node.setRuns(runs)
	return evaluated{runs: runs, check: check, plan: node}, nil
}

// blockSpanRuns covers every block of an n-row column in one run:
// inexact for scan fallbacks (rows must still pass the residual
// check), exact for a query with no predicate at all.
func blockSpanRuns(n int, exact bool) []core.CandidateRun {
	blocks := (n + BlockRows - 1) / BlockRows
	if blocks == 0 {
		return nil
	}
	return []core.CandidateRun{{Start: 0, Count: uint32(blocks), Exact: exact}}
}

func (t *Table) span(exact bool) []core.CandidateRun { return blockSpanRuns(t.rows, exact) }

// fullSpan covers every row block, inexactly.
func (t *Table) fullSpan() []core.CandidateRun { return t.span(false) }

// matchAll covers every row block exactly (a query with no predicate).
func (t *Table) matchAll() []core.CandidateRun { return t.span(true) }

func allOf(checks []core.CheckFunc) core.CheckFunc {
	return func(id uint32) bool {
		for _, c := range checks {
			if !c(id) {
				return false
			}
		}
		return true
	}
}

func anyOf(checks []core.CheckFunc) core.CheckFunc {
	return func(id uint32) bool {
		for _, c := range checks {
			if c(id) {
				return true
			}
		}
		return false
	}
}

// ---- typed leaf evaluation on colState ----

func leafBounds[V coltype.Value](c *colState[V], p *leafPred) (low, high V, err error) {
	cast := func(x any) (V, error) {
		if x == nil {
			var zero V
			return zero, nil
		}
		v, ok := x.(V)
		if !ok {
			return v, fmt.Errorf("column %q is %s but predicate bound is %T",
				c.name, coltype.TypeName[V](), x)
		}
		return v, nil
	}
	if low, err = cast(p.low); err != nil {
		return low, high, err
	}
	high, err = cast(p.high)
	return low, high, err
}

func (c *colState[V]) inSet(p *leafPred) ([]V, error) {
	set, ok := p.low.([]V)
	if !ok {
		return nil, fmt.Errorf("column %q is %s but IN-list holds %T",
			c.name, coltype.TypeName[V](), p.low)
	}
	return set, nil
}

func (c *colState[V]) leafCheck(p *leafPred) (core.CheckFunc, error) {
	vals := c.vals
	if p.kind == kindPrefix {
		return nil, fmt.Errorf("column %q is %s: prefix predicates need a string column",
			c.name, coltype.TypeName[V]())
	}
	if p.kind == kindIn {
		set, err := c.inSet(p)
		if err != nil {
			return nil, err
		}
		member := make(map[V]struct{}, len(set))
		for _, v := range set {
			member[v] = struct{}{}
		}
		return func(id uint32) bool { _, ok := member[vals[id]]; return ok }, nil
	}
	low, high, err := leafBounds(c, p)
	if err != nil {
		return nil, err
	}
	switch p.kind {
	case kindRange:
		return func(id uint32) bool { v := vals[id]; return v >= low && v < high }, nil
	case kindAtLeast:
		return func(id uint32) bool { return vals[id] >= low }, nil
	case kindLessThan:
		return func(id uint32) bool { return vals[id] < high }, nil
	case kindEquals:
		return func(id uint32) bool { return vals[id] == low }, nil
	}
	return nil, fmt.Errorf("column %q: unknown leaf kind %d", c.name, p.kind)
}

func (c *colState[V]) leafRuns(p *leafPred) ([]core.CandidateRun, core.QueryStats, error) {
	if c.ix == nil && c.zm == nil {
		// Scan-only column: every block is a candidate, but the bounds
		// (or IN-list) must still type-check — and an empty IN-list
		// provably selects nothing.
		if p.kind == kindIn {
			set, err := c.inSet(p)
			if err != nil {
				return nil, core.QueryStats{}, err
			}
			if len(set) == 0 {
				return nil, core.QueryStats{}, nil
			}
		} else if _, _, err := leafBounds(c, p); err != nil {
			return nil, core.QueryStats{}, err
		}
		return blockSpanRuns(len(c.vals), false), core.QueryStats{}, nil
	}
	var runs []core.CandidateRun
	var st core.QueryStats
	var vpc int
	if c.ix != nil {
		vpc = c.ix.ValuesPerCacheline()
		if p.kind == kindIn {
			set, err := c.inSet(p)
			if err != nil {
				return nil, st, err
			}
			runs, st = c.ix.InSetCachelines(set)
		} else {
			low, high, err := leafBounds(c, p)
			if err != nil {
				return nil, st, err
			}
			switch p.kind {
			case kindRange:
				runs, st = c.ix.RangeCachelines(low, high)
			case kindAtLeast:
				runs, st = c.ix.AtLeastCachelines(low)
			case kindLessThan:
				runs, st = c.ix.LessThanCachelines(high)
			case kindEquals:
				runs, st = c.ix.PointCachelines(low)
			default:
				return nil, st, fmt.Errorf("column %q: unknown leaf kind %d", c.name, p.kind)
			}
		}
	} else {
		vpc = c.zm.ValuesPerZone()
		var zst zonemap.QueryStats
		if p.kind == kindIn {
			set, err := c.inSet(p)
			if err != nil {
				return nil, st, err
			}
			runs, zst = c.zm.InSetCachelines(set)
		} else {
			low, high, err := leafBounds(c, p)
			if err != nil {
				return nil, st, err
			}
			switch p.kind {
			case kindRange:
				runs, zst = c.zm.RangeCachelines(low, high)
			case kindAtLeast:
				runs, zst = c.zm.AtLeastCachelines(low)
			case kindLessThan:
				runs, zst = c.zm.LessThanCachelines(high)
			case kindEquals:
				runs, zst = c.zm.PointCachelines(low)
			default:
				return nil, st, fmt.Errorf("column %q: unknown leaf kind %d", c.name, p.kind)
			}
		}
		st = core.QueryStats{
			Probes:            zst.Probes,
			Comparisons:       zst.Comparisons,
			CachelinesScanned: zst.ZonesScanned,
			CachelinesExact:   zst.ZonesExact,
			CachelinesSkipped: zst.ZonesSkipped,
		}
	}
	cls := (len(c.vals) + vpc - 1) / vpc
	return blocksFromCachelines(runs, BlockRows/vpc, cls), st, nil
}

// estimate returns the imprint-histogram selectivity estimate of a
// leaf, or a negative value when the column has no imprint to estimate
// from (scan-only and zonemap columns).
func (c *colState[V]) estimate(p *leafPred) (float64, error) {
	if c.ix == nil {
		return -1, nil
	}
	if p.kind == kindPrefix {
		return 0, fmt.Errorf("column %q is %s: prefix predicates need a string column",
			c.name, coltype.TypeName[V]())
	}
	if p.kind == kindIn {
		set, err := c.inSet(p)
		if err != nil {
			return 0, err
		}
		est := float64(len(set)) / float64(c.ix.Bins())
		if est > 1 {
			est = 1
		}
		return est, nil
	}
	low, high, err := leafBounds(c, p)
	if err != nil {
		return 0, err
	}
	switch p.kind {
	case kindRange:
		return c.ix.EstimateSelectivity(low, high), nil
	case kindAtLeast:
		return c.ix.EstimateSelectivity(low, coltype.MaxOf[V]()), nil
	case kindLessThan:
		return c.ix.EstimateSelectivity(coltype.MinOf[V](), high), nil
	case kindEquals:
		// Crude point estimate: one bin's share.
		return 1 / float64(c.ix.Bins()), nil
	}
	return -1, nil
}

// blocksFromCachelines renormalizes a cacheline run list (vpc rows per
// cacheline) into BlockRows blocks: f = cachelines per block. A block is
// a candidate if any of its cachelines is, and exact only if every one
// of its (existing) cachelines is covered exactly — exactness may only
// shrink under coarsening, candidacy may only grow; both directions are
// sound (false positives are re-checked, exact rows truly all qualify).
//
// Runs spanning many whole blocks are translated in O(1); only the
// partial head/tail blocks of each run need accumulation.
func blocksFromCachelines(runs []core.CandidateRun, f int, totalCl int) []core.CandidateRun {
	if f == 1 || len(runs) == 0 {
		return runs
	}
	var out []core.CandidateRun
	push := func(start, count uint32, exact bool) {
		if count == 0 {
			return
		}
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Exact == exact && last.Start+last.Count == start {
				last.Count += count
				return
			}
		}
		out = append(out, core.CandidateRun{Start: start, Count: count, Exact: exact})
	}

	// Accumulator for the block currently being assembled from partial
	// run pieces.
	accBlock := -1
	accCovered := 0
	accExact := true
	blockLen := func(b int) int {
		l := totalCl - b*f
		if l > f {
			l = f
		}
		return l
	}
	flush := func() {
		if accBlock < 0 {
			return
		}
		push(uint32(accBlock), 1, accExact && accCovered == blockLen(accBlock))
		accBlock = -1
	}
	addPiece := func(b, covered int, exact bool) {
		if accBlock != b {
			flush()
			accBlock = b
			accCovered = 0
			accExact = true
		}
		accCovered += covered
		accExact = accExact && exact
	}

	for _, r := range runs {
		clStart := int(r.Start)
		clEnd := clStart + int(r.Count)
		b0 := clStart / f
		b1 := (clEnd - 1) / f // last block touched
		if b0 == b1 {
			addPiece(b0, clEnd-clStart, r.Exact)
			continue
		}
		// Head partial (or full) block.
		headEnd := (b0 + 1) * f
		addPiece(b0, headEnd-clStart, r.Exact)
		flush()
		// Middle whole blocks in one go.
		mb1 := clEnd / f // first block NOT fully covered
		if mb1 > b0+1 {
			push(uint32(b0+1), uint32(mb1-(b0+1)), r.Exact)
		}
		// Tail partial block.
		if tail := clEnd - mb1*f; tail > 0 {
			addPiece(mb1, tail, r.Exact)
		}
	}
	flush()
	return out
}
