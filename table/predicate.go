package table

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/coltype"
	"repro/internal/core"
	"repro/internal/zonemap"
)

// BlockRows is the row granularity at which table-level predicates are
// composed. Columns of different value widths cover different numbers
// of rows per imprint vector (8 for 8-byte values up to 64 for 1-byte
// values); normalizing every column's candidate list to blocks of 64
// rows makes run lists from mixed-width columns merge-joinable.
const BlockRows = 64

// Predicate is a node of a selection tree over one table. Build leaves
// with Range/AtLeast/LessThan/Equals/In (numeric columns) and StrRange/
// StrAtLeast/StrLessThan/StrEquals/StrIn/StrPrefix (string columns) —
// or their parameterized P-suffixed variants taking Bound placeholders —
// compose them with And/Or/AndNot, and execute through Table.Select or
// compile once with Table.Prepare.
type Predicate interface{ isPred() }

type leafKind int

const (
	kindRange leafKind = iota // low <= v < high (strings: low <= v <= high)
	kindAtLeast
	kindLessThan
	kindEquals
	kindIn     // v in set (low holds the []V or []string)
	kindPrefix // string columns only: v starts with low
)

// leafPred holds type-erased bounds; the owning column types them once,
// in compileLeaf. A bound is either a plain value ([]V / []string for
// kindIn) or a Bound placeholder resolved before compilation.
type leafPred struct {
	col       string
	kind      leafKind
	low, high any
}

func (*leafPred) isPred() {}

// describe renders the leaf for Explain plans. binds, when non-nil,
// annotates parameter placeholders with their bound values.
func (p *leafPred) describe(binds map[string]any) string {
	switch p.kind {
	case kindRange:
		if isStringBound(p.low) {
			return fmt.Sprintf("%s in [%s, %s]", p.col, bound(p.low, binds), bound(p.high, binds))
		}
		return fmt.Sprintf("%s in [%s, %s)", p.col, bound(p.low, binds), bound(p.high, binds))
	case kindAtLeast:
		return fmt.Sprintf("%s >= %s", p.col, bound(p.low, binds))
	case kindLessThan:
		return fmt.Sprintf("%s < %s", p.col, bound(p.high, binds))
	case kindEquals:
		return fmt.Sprintf("%s == %s", p.col, bound(p.low, binds))
	case kindIn:
		return fmt.Sprintf("%s in %s", p.col, bound(p.low, binds))
	case kindPrefix:
		return fmt.Sprintf("%s prefix %s", p.col, bound(p.low, binds))
	}
	return fmt.Sprintf("%s ?", p.col)
}

// isStringBound reports whether a leaf bound holds (or declares) a
// string, which flips range rendering to the inclusive convention.
func isStringBound(x any) bool {
	if b, ok := x.(Bound); ok {
		return b.typ == "string"
	}
	_, ok := x.(string)
	return ok
}

// bound renders one predicate bound, quoting strings so empty or
// space-bearing values stay visible in plans. Placeholders render as
// $name, or $name=value once bound.
func bound(x any, binds map[string]any) string {
	if b, ok := x.(Bound); ok {
		if b.name == "" {
			return bound(b.lit, nil)
		}
		if v, bnd := binds[b.name]; bnd {
			return fmt.Sprintf("$%s=%s", b.name, bound(v, nil))
		}
		return "$" + b.name
	}
	switch v := x.(type) {
	case string:
		return fmt.Sprintf("%q", v)
	case []string:
		return fmt.Sprintf("%q", v)
	}
	return fmt.Sprintf("%v", x)
}

type andPred struct{ kids []Predicate }
type orPred struct{ kids []Predicate }
type andNotPred struct{ p, q Predicate }

func (*andPred) isPred()    {}
func (*orPred) isPred()     {}
func (*andNotPred) isPred() {}

// Range selects rows with low <= column < high.
func Range[V coltype.Value](col string, low, high V) Predicate {
	return &leafPred{col: col, kind: kindRange, low: low, high: high}
}

// AtLeast selects rows with column >= low.
func AtLeast[V coltype.Value](col string, low V) Predicate {
	return &leafPred{col: col, kind: kindAtLeast, low: low}
}

// LessThan selects rows with column < high.
func LessThan[V coltype.Value](col string, high V) Predicate {
	return &leafPred{col: col, kind: kindLessThan, high: high}
}

// Equals selects rows with column == v.
func Equals[V coltype.Value](col string, v V) Predicate {
	return &leafPred{col: col, kind: kindEquals, low: v}
}

// In selects rows whose column equals any of the given values (an
// IN-list, answered in a single index pass). The values are copied, so
// a caller-reused backing slice cannot change the predicate later.
func In[V coltype.Value](col string, values ...V) Predicate {
	return &leafPred{col: col, kind: kindIn, low: append([]V(nil), values...)}
}

// StrRange selects rows of a string column with low <= v <= high.
// String ranges are inclusive on both ends (the dictionary maps them to
// a half-open code range internally).
func StrRange(col, low, high string) Predicate {
	return &leafPred{col: col, kind: kindRange, low: low, high: high}
}

// StrAtLeast selects rows of a string column with v >= low.
func StrAtLeast(col, low string) Predicate {
	return &leafPred{col: col, kind: kindAtLeast, low: low}
}

// StrLessThan selects rows of a string column with v < high.
func StrLessThan(col, high string) Predicate {
	return &leafPred{col: col, kind: kindLessThan, high: high}
}

// StrEquals selects rows of a string column equal to v.
func StrEquals(col, v string) Predicate {
	return &leafPred{col: col, kind: kindEquals, low: v}
}

// StrIn selects rows of a string column equal to any of the given
// values (strings absent from the column select nothing).
func StrIn(col string, values ...string) Predicate {
	return &leafPred{col: col, kind: kindIn, low: append([]string(nil), values...)}
}

// StrPrefix selects rows of a string column starting with prefix.
// Matching strings form a contiguous dictionary range, so the leaf is
// answered in a single index pass like any other range.
func StrPrefix(col, prefix string) Predicate {
	return &leafPred{col: col, kind: kindPrefix, low: prefix}
}

// And selects rows satisfying every child predicate.
func And(ps ...Predicate) Predicate { return &andPred{kids: ps} }

// Or selects rows satisfying at least one child predicate.
func Or(ps ...Predicate) Predicate { return &orPred{kids: ps} }

// AndNot selects rows satisfying p but not q.
func AndNot(p, q Predicate) Predicate { return &andNotPred{p: p, q: q} }

// ---- parameterized bounds ----

// Bound is one side of a predicate leaf built with the P-suffixed
// constructors (RangeP, EqualsP, ...): either a literal wrapped by
// Val/StrVal, or a named placeholder created by Param/StrParam whose
// value is supplied per execution via Prepared.Bind. The zero Bound is
// invalid and rejected at compile time.
type Bound struct {
	name     string // placeholder name; "" for literals
	lit      any    // literal value when name == ""
	typ      string // declared value type ("int64", "string", ...)
	isParam  bool
	scalarOK func(any) bool // reports whether x is one declared value
	listOK   func(any) bool // reports whether x is a slice of them (IN)
}

// Param returns a named placeholder for a numeric bound of type V. The
// placeholder's type is checked against the column at Prepare time and
// against the supplied value at Bind time.
func Param[V coltype.Value](name string) Bound {
	return Bound{
		name:     name,
		typ:      coltype.TypeName[V](),
		isParam:  true,
		scalarOK: func(x any) bool { _, ok := x.(V); return ok },
		listOK:   func(x any) bool { _, ok := x.([]V); return ok },
	}
}

// StrParam returns a named placeholder for a string bound. In an InP
// leaf it binds to a []string.
func StrParam(name string) Bound {
	return Bound{
		name:     name,
		typ:      "string",
		isParam:  true,
		scalarOK: func(x any) bool { _, ok := x.(string); return ok },
		listOK:   func(x any) bool { _, ok := x.([]string); return ok },
	}
}

// Val wraps a numeric literal as a Bound, for mixing fixed and
// parameterized bounds in one P-suffixed leaf.
func Val[V coltype.Value](v V) Bound {
	return Bound{lit: v, typ: coltype.TypeName[V]()}
}

// StrVal wraps a string literal as a Bound.
func StrVal(s string) Bound {
	return Bound{lit: s, typ: "string"}
}

// RangeP selects rows with low <= column < high (numeric) or
// low <= column <= high (string), with either bound a literal (Val,
// StrVal) or a placeholder (Param, StrParam).
func RangeP(col string, low, high Bound) Predicate {
	return &leafPred{col: col, kind: kindRange, low: low, high: high}
}

// AtLeastP selects rows with column >= low.
func AtLeastP(col string, low Bound) Predicate {
	return &leafPred{col: col, kind: kindAtLeast, low: low}
}

// LessThanP selects rows with column < high.
func LessThanP(col string, high Bound) Predicate {
	return &leafPred{col: col, kind: kindLessThan, high: high}
}

// EqualsP selects rows with column == v.
func EqualsP(col string, v Bound) Predicate {
	return &leafPred{col: col, kind: kindEquals, low: v}
}

// InP selects rows whose column equals any value of an IN-list bound at
// execution time: the placeholder binds to a []V (Param) or []string
// (StrParam). The bound must be a placeholder — literal IN-lists are
// expressed with In/StrIn.
func InP(col string, set Bound) Predicate {
	return &leafPred{col: col, kind: kindIn, low: set}
}

// PrefixP selects rows of a string column starting with a prefix bound
// at execution time.
func PrefixP(col string, prefix Bound) Predicate {
	return &leafPred{col: col, kind: kindPrefix, low: prefix}
}

// resolveBound substitutes a literal or bound parameter value for a
// Bound placeholder; non-Bound values pass through.
func resolveBound(col string, x any, binds map[string]any) (any, bool, error) {
	b, ok := x.(Bound)
	if !ok {
		return x, false, nil
	}
	if b.name == "" {
		return b.lit, true, nil
	}
	v, bnd := binds[b.name]
	if !bnd {
		return nil, false, fmt.Errorf("column %q: parameter $%s is not bound (prepare the query and Bind it)", col, b.name)
	}
	return v, true, nil
}

// resolveLeaf substitutes every Bound of a leaf, returning a leaf whose
// bounds are plain values ready for compileLeaf. Placeholder-free
// leaves resolve to themselves.
func resolveLeaf(p *leafPred, binds map[string]any) (*leafPred, error) {
	lo, ch1, err := resolveBound(p.col, p.low, binds)
	if err != nil {
		return nil, err
	}
	hi, ch2, err := resolveBound(p.col, p.high, binds)
	if err != nil {
		return nil, err
	}
	if !ch1 && !ch2 {
		return p, nil
	}
	r := *p
	r.low, r.high = lo, hi
	return &r, nil
}

// leafHasParams reports whether a leaf carries named placeholders.
func leafHasParams(p *leafPred) bool {
	return boundParamName(p.low) != "" || boundParamName(p.high) != ""
}

func boundParamName(x any) string {
	if b, ok := x.(Bound); ok {
		return b.name
	}
	return ""
}

// checkLeafBounds validates a leaf's shape against its column — the
// declared Bound types and the string-only kinds — so Prepare rejects
// mismatches before any value is bound. The InP rule — the IN-list
// must be a placeholder — lives here too.
func checkLeafBounds(p *leafPred, c anyColumn) error {
	if p.kind == kindPrefix && c.colType() != "string" {
		return fmt.Errorf("column %q is %s: prefix predicates need a string column", p.col, c.colType())
	}
	for _, x := range []any{p.low, p.high} {
		b, ok := x.(Bound)
		if !ok {
			continue
		}
		if b.isParam && b.name == "" {
			return fmt.Errorf("column %q: parameter with empty name", p.col)
		}
		if !b.isParam && b.typ == "" {
			return fmt.Errorf("column %q: invalid zero Bound (use Val/StrVal/Param/StrParam)", p.col)
		}
		if b.typ != "" && b.typ != c.colType() {
			what := "bound"
			if b.name != "" {
				what = "parameter $" + b.name
			}
			return fmt.Errorf("column %q is %s but %s is %s", p.col, c.colType(), what, b.typ)
		}
		if p.kind == kindIn && !b.isParam {
			return fmt.Errorf("column %q: InP needs a Param/StrParam IN-list (use In/StrIn for literals)", p.col)
		}
	}
	return nil
}

// SelectOptions tunes evaluation.
type SelectOptions struct {
	// Ctx cancels the execution: the segment fan-out checks it between
	// segments (serial executions between iterations, parallel workers
	// before claiming the next segment), so a canceled or deadline-expired
	// query returns promptly without evaluating segments no worker has
	// started — in-flight segments drain first, their partial results are
	// discarded, and the executor reports the context's error (wrapped, so
	// errors.Is(err, context.Canceled / context.DeadlineExceeded) works).
	// A query whose deadline already expired does no per-segment work at
	// all. nil means no cancellation.
	Ctx context.Context
	// ScanThreshold disables index probing for a segment of a leaf whose
	// estimated selectivity is above it (the paper's optimizer remark:
	// prefer a scan for unselective predicates; resolved per segment
	// from that segment's imprint histogram). 0 means the default of
	// 0.95; set above 1 to always probe.
	ScanThreshold float64
	// Parallelism bounds the worker pool that fans segments out during
	// query execution. 0 means GOMAXPROCS; 1 forces serial execution.
	// Results are merged in segment order either way, so parallelism
	// never changes what a query returns.
	Parallelism int
	// ReuseRows makes Rows reuse one value buffer across all yielded
	// Row values instead of allocating a fresh one per row. Opt in only
	// when the loop body does not retain a Row (or anything reachable
	// from Row.Value/Get/Lookup) past the yield: the next row overwrites
	// the shared buffer.
	ReuseRows bool
	// Scalar forces row-at-a-time residual evaluation through composed
	// check closures instead of the default block-at-a-time selection-
	// mask kernels (64 rows folded into a bitmask per dynamic call, with
	// And/Or/AndNot combined word-wise). Results and statistics are
	// identical either way — QueryStats.BlocksVectorized stays zero under
	// Scalar; the option exists for benchmarking the vectorized executor
	// against its scalar baseline and for oracle cross-checks.
	Scalar bool
}

func (o SelectOptions) threshold() float64 {
	if o.ScanThreshold == 0 {
		return 0.95
	}
	return o.ScanThreshold
}

// ---- compiled predicate trees ----

// blockKernel is the vectorized residual evaluator of one predicate
// subtree over one segment: it evaluates rows [from, to) of the
// segment's value slab — segment-local ids, to-from <= BlockRows — into
// a selection bitmask whose bit i is set iff row from+i satisfies the
// predicate (bits at and above to-from are zero). The mask travels by
// value, keeping every block evaluation on the stack. Leaf kernels are
// monomorphized comparison loops over the slab; And/Or/AndNot combine
// child masks word-wise, so a whole tree costs one dynamic call per
// 64-row block instead of one (or one per leaf) per row.
type blockKernel func(from, to int) uint64

// zeroMask is the kernel of a subtree that matches nothing in the
// segment (a pruned leaf under OR). A package-level func converts to a
// blockKernel without allocating.
func zeroMask(from, to int) uint64 { return 0 }

// leafPlan is one predicate leaf translated against its column exactly
// once: typed bounds and IN-sets come from that single translation.
// Execution is per segment — the plan resolves the column's segments
// live, so a plan stays valid across appends, updates and compactions
// (string dictionary translations are cached per segment, keyed by the
// segment's generation).
type leafPlan interface {
	// segEstimate is the selectivity estimate within segment s; negative
	// when that segment has no imprint.
	segEstimate(s int) float64
	// prune reports that segment s provably contains no qualifying row
	// (min/max summary or dictionary excludes the predicate), so the
	// segment can be skipped without probing.
	prune(s int) bool
	// segRuns probes segment s's index down to candidate runs in
	// BlockRows units, local to the segment, appended into dst (pass a
	// pooled buffer truncated to length 0 to keep probing alloc-free).
	segRuns(s int, dst []core.CandidateRun) ([]core.CandidateRun, core.QueryStats)
	// segCheck is the exact residual test for rows of segment s,
	// addressed by segment-local id (the scalar path).
	segCheck(s int) core.CheckFunc
	// segKernel is the vectorized residual evaluator for segment s.
	// Kernels are cached per segment (re-derived when the segment's
	// value slab or dictionary generation changes), so steady-state
	// executions fetch a closure instead of building one.
	segKernel(s int) blockKernel
	// access names the column's index kind ("imprints", "zonemap",
	// "scan"); per-segment deviations (pruned, scan fallback) are
	// decided during evaluation.
	access() string
	// rowCheck is the exact value-level test of the leaf over boxed row
	// values — the delta-scan path, where rows have no segment, no
	// value slab and no dictionary. Semantics match segCheck (strings:
	// the raw-string form of the dictionary translation).
	rowCheck() func(v any) bool
}

// ---- monomorphized leaf kernels ----

// Each kernel folds up to 64 rows of a typed value slab into a
// selection mask with a branch-light loop: the per-lane bit is computed
// with a conditional assignment (compiled to a flag-set, not a branch)
// and OR-ed into the accumulator, so selectivity does not stall the
// branch predictor the way per-row check closures do.

// intRangeKernel answers low <= v < high over an integer slab with one
// unsigned wrap-around compare per lane: for integer values,
// low <= v && v < high  ⟺  uint64(v-low) < uint64(high-low) (arithmetic
// mod 2^64, valid for every signed and unsigned width once widened to
// 64 bits), which compiles to a single flag-set instead of two
// mispredicting branches. Callers guarantee an integer V; an empty
// range short-circuits to zeroMask.
func intRangeKernel[V coltype.Value](vals []V, low, high V) blockKernel {
	if high <= low {
		return zeroMask
	}
	lo64 := int64(low)
	span := uint64(int64(high) - lo64)
	return func(from, to int) uint64 {
		var acc uint64
		blk := vals[from:to]
		for i := range blk {
			bit := uint64(0)
			if uint64(int64(blk[i])-lo64) < span {
				bit = 1
			}
			acc |= bit << uint(i)
		}
		return acc
	}
}

// rangeKernel answers low <= v < high for value types where the
// wrap-around trick does not apply (floats; NaN fails both compares,
// matching the scalar check).
func rangeKernel[V coltype.Value](vals []V, low, high V) blockKernel {
	return func(from, to int) uint64 {
		var acc uint64
		blk := vals[from:to]
		for i := range blk {
			ge, lt := uint64(0), uint64(0)
			if blk[i] >= low {
				ge = 1
			}
			if blk[i] < high {
				lt = 1
			}
			acc |= (ge & lt) << uint(i)
		}
		return acc
	}
}

func atLeastKernel[V coltype.Value](vals []V, low V) blockKernel {
	return func(from, to int) uint64 {
		var acc uint64
		blk := vals[from:to]
		for i := range blk {
			bit := uint64(0)
			if blk[i] >= low {
				bit = 1
			}
			acc |= bit << uint(i)
		}
		return acc
	}
}

func lessThanKernel[V coltype.Value](vals []V, high V) blockKernel {
	return func(from, to int) uint64 {
		var acc uint64
		blk := vals[from:to]
		for i := range blk {
			bit := uint64(0)
			if blk[i] < high {
				bit = 1
			}
			acc |= bit << uint(i)
		}
		return acc
	}
}

func equalsKernel[V coltype.Value](vals []V, v V) blockKernel {
	return func(from, to int) uint64 {
		var acc uint64
		blk := vals[from:to]
		for i := range blk {
			bit := uint64(0)
			if blk[i] == v {
				bit = 1
			}
			acc |= bit << uint(i)
		}
		return acc
	}
}

// inKernel tests set membership per lane. Small IN-lists compare
// against the sorted unique values directly (a handful of flag-sets per
// lane beats a map probe); larger ones fall back to the member map the
// scalar check uses.
func inKernel[V coltype.Value](vals []V, set []V, member map[V]struct{}) blockKernel {
	if len(set) <= 4 {
		small := append([]V(nil), set...)
		return func(from, to int) uint64 {
			var acc uint64
			blk := vals[from:to]
			for i := range blk {
				bit := uint64(0)
				for _, s := range small {
					if blk[i] == s {
						bit = 1
					}
				}
				acc |= bit << uint(i)
			}
			return acc
		}
	}
	return func(from, to int) uint64 {
		var acc uint64
		blk := vals[from:to]
		for i := range blk {
			if _, ok := member[blk[i]]; ok {
				acc |= 1 << uint(i)
			}
		}
		return acc
	}
}

// ---- word-wise mask composition ----

// andKernels combines child masks with word-AND, short-circuiting the
// remaining children once the accumulator is empty (the block analogue
// of allOf's per-row short-circuit).
func andKernels(ks []blockKernel) blockKernel {
	return func(from, to int) uint64 {
		acc := ks[0](from, to)
		for _, k := range ks[1:] {
			if acc == 0 {
				return 0
			}
			acc &= k(from, to)
		}
		return acc
	}
}

// orKernels combines child masks with word-OR, short-circuiting once
// every lane of the block is set.
func orKernels(ks []blockKernel) blockKernel {
	return func(from, to int) uint64 {
		full := blockOnes(to - from)
		acc := ks[0](from, to)
		for _, k := range ks[1:] {
			if acc == full {
				return acc
			}
			acc |= k(from, to)
		}
		return acc
	}
}

// andNotKernel computes p &^ q, skipping q when no p lane survives.
func andNotKernel(p, q blockKernel) blockKernel {
	return func(from, to int) uint64 {
		acc := p(from, to)
		if acc == 0 {
			return 0
		}
		return acc &^ q(from, to)
	}
}

// compileLeafCalls counts leaf translations, so tests can assert that
// each leaf is translated exactly once per compile (and that prepared
// executions of static leaves translate zero times).
var compileLeafCalls atomic.Uint64

// compiledNode is the compiled form of a predicate subtree: every leaf
// is bound to its column, and leaves without placeholders carry their
// one-time translation. A compiled tree is immutable and safe for
// concurrent executions; it stays valid for the lifetime of the table
// because plans resolve segment state live at execution time.
type compiledNode struct {
	op   string // "leaf", "and", "or", "andnot"
	leaf *leafPred
	col  anyColumn
	plan leafPlan // non-nil when the leaf has no placeholders
	kids []*compiledNode
}

// compile validates a predicate tree against the table and translates
// every placeholder-free leaf exactly once. Callers hold the table's
// read lock.
func (t *Table) compile(p Predicate) (*compiledNode, error) {
	switch node := p.(type) {
	case *leafPred:
		c, ok := t.cols[node.col]
		if !ok {
			return nil, fmt.Errorf("table %s: no column %q", t.name, node.col)
		}
		if err := checkLeafBounds(node, c); err != nil {
			return nil, fmt.Errorf("table %s: %w", t.name, err)
		}
		cn := &compiledNode{op: "leaf", leaf: node, col: c}
		if !leafHasParams(node) {
			resolved, err := resolveLeaf(node, nil)
			if err != nil {
				return nil, err
			}
			compileLeafCalls.Add(1)
			plan, err := c.compileLeaf(resolved)
			if err != nil {
				return nil, err
			}
			cn.plan = plan
		}
		return cn, nil
	case *andPred:
		if len(node.kids) == 0 {
			return nil, fmt.Errorf("table %s: empty AND", t.name)
		}
		return t.compileKids("and", node.kids)
	case *orPred:
		if len(node.kids) == 0 {
			return nil, fmt.Errorf("table %s: empty OR", t.name)
		}
		return t.compileKids("or", node.kids)
	case *andNotPred:
		return t.compileKids("andnot", []Predicate{node.p, node.q})
	}
	return nil, fmt.Errorf("table %s: unknown predicate %T", t.name, p)
}

func (t *Table) compileKids(op string, preds []Predicate) (*compiledNode, error) {
	cn := &compiledNode{op: op, kids: make([]*compiledNode, len(preds))}
	for i, kid := range preds {
		k, err := t.compile(kid)
		if err != nil {
			return nil, err
		}
		cn.kids[i] = k
	}
	return cn, nil
}

// execNode is one execution of a compiled subtree: parameters are
// resolved and every leaf carries a ready leafPlan (static leaves reuse
// the compile-time translation, parameterized ones are translated once
// per execution from the bound values). An execNode is immutable during
// the execution, so segment workers share it freely.
type execNode struct {
	op    string
	leaf  *leafPred
	plan  leafPlan
	binds map[string]any // for Explain's bound-parameter rendering
	kids  []*execNode
}

// bindTree resolves one execution's parameters against a compiled tree.
// Callers hold the table's read lock.
func (t *Table) bindTree(cn *compiledNode, binds map[string]any) (*execNode, error) {
	en := &execNode{op: cn.op, leaf: cn.leaf, plan: cn.plan, binds: binds}
	if cn.op == "leaf" && en.plan == nil {
		resolved, err := resolveLeaf(cn.leaf, binds)
		if err != nil {
			return nil, fmt.Errorf("table %s: %w", t.name, err)
		}
		compileLeafCalls.Add(1)
		if en.plan, err = cn.col.compileLeaf(resolved); err != nil {
			return nil, err
		}
	}
	for _, kid := range cn.kids {
		k, err := t.bindTree(kid, binds)
		if err != nil {
			return nil, err
		}
		en.kids = append(en.kids, k)
	}
	return en, nil
}

// evaluated is the composable per-segment form of a predicate subtree:
// candidate row-block runs local to the segment, the residual evaluator
// for rows of inexact runs — a selection-mask kernel (the vectorized
// default) or a check closure addressed by segment-local id (under
// SelectOptions.Scalar) — and (when plan recording is on) the plan node
// describing how the subtree was evaluated there.
type evaluated struct {
	runs  []core.CandidateRun // in BlockRows units, segment-local
	kern  blockKernel         // vectorized residual (nil under Scalar or match-all)
	check core.CheckFunc      // scalar residual (nil when kern is set or match-all)
	plan  *PlanNode
	owner *[]core.CandidateRun // pooled backing of runs; released by releaseEval
}

// releaseEval returns an evaluation's pooled run buffer to the scratch
// pool. Executors call it once the runs have been fully consumed; the
// evaluation must not be walked afterwards.
func releaseEval(ev *evaluated) {
	putRunScratch(ev.owner)
	ev.owner, ev.runs = nil, nil
}

// mergeRuns composes two child run lists with merge into a fresh pooled
// buffer and releases both children's buffers.
func mergeRuns(a, b *evaluated, merge func(dst, x, y []core.CandidateRun) []core.CandidateRun) ([]core.CandidateRun, *[]core.CandidateRun) {
	buf := getRunScratch()
	*buf = merge((*buf)[:0], a.runs, b.runs)
	releaseEval(a)
	releaseEval(b)
	return *buf, buf
}

// evalSegment evaluates one execution tree against segment s: the
// single evaluator behind both ad-hoc queries and prepared statements,
// run by each segment worker. A nil tree matches every row of the
// segment exactly. The returned evaluation's run list lives in a pooled
// buffer — the executor must releaseEval it after the walk. Callers
// hold the table's read lock.
func (t *Table) evalSegment(en *execNode, s int, opts SelectOptions, st *core.QueryStats, record bool) evaluated {
	if en == nil {
		buf := getRunScratch()
		*buf = blockSpanRunsInto((*buf)[:0], t.segLen(s), true)
		var node *PlanNode
		if record {
			node = &PlanNode{Op: "all", Pred: "true"}
			node.setRuns(*buf)
		}
		return evaluated{runs: *buf, plan: node, owner: buf}
	}
	switch en.op {
	case "leaf":
		return t.evalSegmentLeaf(en, s, opts, st, record)
	case "and":
		acc := t.evalSegment(en.kids[0], s, opts, st, record)
		kerns, checks := residuals(acc, opts, nil, nil)
		var kids []*PlanNode
		if record {
			kids = []*PlanNode{acc.plan}
		}
		for _, kid := range en.kids[1:] {
			ev := t.evalSegment(kid, s, opts, st, record)
			kerns, checks = residuals(ev, opts, kerns, checks)
			acc.runs, acc.owner = mergeRuns(&acc, &ev, core.IntersectRunsInto)
			if record {
				kids = append(kids, ev.plan)
			}
		}
		if opts.Scalar {
			acc.check = allOf(checks)
		} else {
			acc.kern = andKernels(kerns)
		}
		if record {
			acc.plan = opNode("and", acc.runs, kids)
		}
		return acc
	case "or":
		acc := t.evalSegment(en.kids[0], s, opts, st, record)
		kerns, checks := residuals(acc, opts, nil, nil)
		var kids []*PlanNode
		if record {
			kids = []*PlanNode{acc.plan}
		}
		for _, kid := range en.kids[1:] {
			ev := t.evalSegment(kid, s, opts, st, record)
			kerns, checks = residuals(ev, opts, kerns, checks)
			acc.runs, acc.owner = mergeRuns(&acc, &ev, core.UnionRunsInto)
			if record {
				kids = append(kids, ev.plan)
			}
		}
		if opts.Scalar {
			acc.check = anyOf(checks)
		} else {
			acc.kern = orKernels(kerns)
		}
		if record {
			acc.plan = opNode("or", acc.runs, kids)
		}
		return acc
	case "andnot":
		evP := t.evalSegment(en.kids[0], s, opts, st, record)
		evQ := t.evalSegment(en.kids[1], s, opts, st, record)
		out := evaluated{}
		if opts.Scalar {
			pc, qc := evP.check, evQ.check
			out.check = func(id uint32) bool { return pc(id) && !qc(id) }
		} else {
			out.kern = andNotKernel(evP.kern, evQ.kern)
		}
		var plans []*PlanNode
		if record {
			plans = []*PlanNode{evP.plan, evQ.plan}
		}
		out.runs, out.owner = mergeRuns(&evP, &evQ, core.DiffRunsInto)
		if record {
			out.plan = opNode("andnot", out.runs, plans)
		}
		return out
	}
	panic("table: unknown execution op " + en.op)
}

// residuals collects one child evaluation's residual evaluator into the
// mode-matching list (kernels when vectorizing, checks under Scalar).
func residuals(ev evaluated, opts SelectOptions, kerns []blockKernel, checks []core.CheckFunc) ([]blockKernel, []core.CheckFunc) {
	if opts.Scalar {
		return kerns, append(checks, ev.check)
	}
	return append(kerns, ev.kern), checks
}

// neverMatch is the residual check of a pruned leaf: no row of the
// segment satisfies it (needed under OR, where sibling runs may still
// cover the segment's rows).
func neverMatch(uint32) bool { return false }

// evalSegmentLeaf runs one leaf against one segment. Pruning comes
// first — a segment whose summary (or dictionary) provably excludes the
// predicate is skipped without probing. The data-dependent access-path
// choice — probe the index or fall back to a scan when the segment's
// estimated selectivity crosses the threshold — is resolved per segment
// on every execution.
func (t *Table) evalSegmentLeaf(en *execNode, s int, opts SelectOptions, st *core.QueryStats, record bool) evaluated {
	plan := en.plan
	var node *PlanNode
	if record {
		node = &PlanNode{Op: "leaf", Column: en.leaf.col, Pred: en.leaf.describe(en.binds),
			Access: plan.access(), Selectivity: -1}
	}
	if plan.prune(s) {
		if record {
			node.Access = "pruned"
			node.Reason = "summary excludes"
		}
		if opts.Scalar {
			return evaluated{check: neverMatch, plan: node}
		}
		return evaluated{kern: zeroMask, plan: node}
	}
	// residual attaches the leaf's residual evaluator in the mode the
	// options selected: the cached per-segment selection-mask kernel, or
	// the check closure under Scalar.
	residual := func(ev evaluated) evaluated {
		if opts.Scalar {
			ev.check = plan.segCheck(s)
		} else {
			ev.kern = plan.segKernel(s)
		}
		return ev
	}
	// Cost-based access path: skip index probing for segments where the
	// leaf is unselective. Only imprint-backed segments yield an
	// estimate (negative means none); zonemap leaves are always probed —
	// their per-zone cost is two comparisons, so a scan buys nothing.
	if est := plan.segEstimate(s); est >= 0 {
		if record {
			node.Selectivity = est
		}
		if est > opts.threshold() {
			buf := getRunScratch()
			*buf = blockSpanRunsInto((*buf)[:0], t.segLen(s), false)
			if record {
				node.Access = "scan"
				node.Reason = "unselective"
				node.setRuns(*buf)
			}
			return residual(evaluated{runs: *buf, plan: node, owner: buf})
		}
	}
	buf := getRunScratch()
	runs, s1 := plan.segRuns(s, (*buf)[:0])
	*buf = runs
	st.Add(s1)
	if record {
		node.Stats = s1
		node.setRuns(runs)
	}
	return residual(evaluated{runs: runs, plan: node, owner: buf})
}

// blockSpanRunsInto appends one run covering every block of an n-row
// segment to dst: inexact for scan fallbacks (rows must still pass the
// residual evaluator), exact for a query with no predicate at all.
func blockSpanRunsInto(dst []core.CandidateRun, n int, exact bool) []core.CandidateRun {
	blocks := (n + BlockRows - 1) / BlockRows
	if blocks == 0 {
		return dst
	}
	return append(dst, core.CandidateRun{Start: 0, Count: uint32(blocks), Exact: exact})
}

func allOf(checks []core.CheckFunc) core.CheckFunc {
	return func(id uint32) bool {
		for _, c := range checks {
			if !c(id) {
				return false
			}
		}
		return true
	}
}

func anyOf(checks []core.CheckFunc) core.CheckFunc {
	return func(id uint32) bool {
		for _, c := range checks {
			if c(id) {
				return true
			}
		}
		return false
	}
}

// ---- typed leaf compilation on colState ----

func leafBounds[V coltype.Value](c *colState[V], p *leafPred) (low, high V, err error) {
	cast := func(x any) (V, error) {
		if x == nil {
			var zero V
			return zero, nil
		}
		v, ok := x.(V)
		if !ok {
			return v, fmt.Errorf("column %q is %s but predicate bound is %T",
				c.name, coltype.TypeName[V](), x)
		}
		return v, nil
	}
	if low, err = cast(p.low); err != nil {
		return low, high, err
	}
	high, err = cast(p.high)
	return low, high, err
}

func (c *colState[V]) inSet(p *leafPred) ([]V, error) {
	set, ok := p.low.([]V)
	if !ok {
		return nil, fmt.Errorf("column %q is %s but IN-list holds %T",
			c.name, coltype.TypeName[V](), p.low)
	}
	return set, nil
}

// numLeafPlan is the compiled form of a numeric leaf: bounds typed
// once, IN-set materialized once (slice for index probes, map for the
// residual check, [setLo, setHi] for segment pruning). Segments are
// resolved through the column state at execution time, so the plan
// stays valid across appends, updates, rebuilds and compactions.
type numLeafPlan[V coltype.Value] struct {
	c            *colState[V]
	kind         leafKind
	low, high    V
	set          []V            // kindIn
	member       map[V]struct{} // kindIn
	setLo, setHi V              // kindIn summary bounds (meaningless when empty)

	// Per-segment selection-mask kernels, cached so steady-state
	// executions reuse one closure per segment instead of building one
	// per execution. An entry is valid while it reads the segment's
	// current value slab (same backing array, same length): in-place
	// updates keep it, appends and rebuilds that move or grow the slab
	// re-derive it.
	cacheMu sync.Mutex
	kerns   []numKernEntry[V]
}

// numKernEntry is one cached kernel with the slab identity it reads.
type numKernEntry[V coltype.Value] struct {
	vals *V // first element of the slab the kernel captured
	n    int
	k    blockKernel
}

func (c *colState[V]) compileLeaf(p *leafPred) (leafPlan, error) {
	pl := &numLeafPlan[V]{c: c, kind: p.kind}
	switch p.kind {
	case kindPrefix:
		return nil, fmt.Errorf("column %q is %s: prefix predicates need a string column",
			c.name, coltype.TypeName[V]())
	case kindIn:
		set, err := c.inSet(p)
		if err != nil {
			return nil, err
		}
		pl.set = set
		pl.member = make(map[V]struct{}, len(set))
		for i, v := range set {
			pl.member[v] = struct{}{}
			if i == 0 {
				pl.setLo, pl.setHi = v, v
				continue
			}
			pl.setLo, pl.setHi = min(pl.setLo, v), max(pl.setHi, v)
		}
		return pl, nil
	case kindRange, kindAtLeast, kindLessThan, kindEquals:
		var err error
		if pl.low, pl.high, err = leafBounds(c, p); err != nil {
			return nil, err
		}
		return pl, nil
	}
	return nil, fmt.Errorf("column %q: unknown leaf kind %d", c.name, p.kind)
}

func (pl *numLeafPlan[V]) access() string { return pl.c.indexKind() }

// prune applies the segment's [min, max] summary: true when no value of
// the segment can satisfy the leaf. Sound under updates (widen grows
// the summary) and deletes (summary only over-covers).
//
//imprintvet:locks held=mu.R
func (pl *numLeafPlan[V]) prune(s int) bool {
	seg := pl.c.segs[s]
	if len(seg.vals) == 0 {
		return true
	}
	switch pl.kind {
	case kindRange:
		return seg.max < pl.low || seg.min >= pl.high
	case kindAtLeast:
		return seg.max < pl.low
	case kindLessThan:
		return seg.min >= pl.high
	case kindEquals:
		return pl.low < seg.min || pl.low > seg.max
	case kindIn:
		return len(pl.set) == 0 || pl.setHi < seg.min || pl.setLo > seg.max
	}
	return false
}

//imprintvet:locks held=mu.R
func (pl *numLeafPlan[V]) segCheck(s int) core.CheckFunc {
	vals := pl.c.segs[s].vals
	switch pl.kind {
	case kindIn:
		member := pl.member
		return func(id uint32) bool { _, ok := member[vals[id]]; return ok }
	case kindRange:
		low, high := pl.low, pl.high
		return func(id uint32) bool { v := vals[id]; return v >= low && v < high }
	case kindAtLeast:
		low := pl.low
		return func(id uint32) bool { return vals[id] >= low }
	case kindLessThan:
		high := pl.high
		return func(id uint32) bool { return vals[id] < high }
	default: // kindEquals; compileLeaf rejected every other kind
		low := pl.low
		return func(id uint32) bool { return vals[id] == low }
	}
}

func (pl *numLeafPlan[V]) rowCheck() func(v any) bool {
	switch pl.kind {
	case kindIn:
		member := pl.member
		return func(v any) bool { _, ok := member[v.(V)]; return ok }
	case kindRange:
		low, high := pl.low, pl.high
		return func(v any) bool { x := v.(V); return x >= low && x < high }
	case kindAtLeast:
		low := pl.low
		return func(v any) bool { return v.(V) >= low }
	case kindLessThan:
		high := pl.high
		return func(v any) bool { return v.(V) < high }
	default: // kindEquals; compileLeaf rejected every other kind
		low := pl.low
		return func(v any) bool { return v.(V) == low }
	}
}

//imprintvet:locks held=mu.R
func (pl *numLeafPlan[V]) segRuns(s int, dst []core.CandidateRun) ([]core.CandidateRun, core.QueryStats) {
	seg := pl.c.segs[s]
	if seg.ix == nil && seg.zm == nil {
		// Scan-only segment: every block is a candidate.
		return blockSpanRunsInto(dst, len(seg.vals), false), core.QueryStats{}
	}
	var runs []core.CandidateRun
	var st core.QueryStats
	var vpc int
	// Cacheline-granular probe output lands in a pooled temp and is
	// renormalized to BlockRows blocks appended into dst.
	tmp := getRunScratch()
	cl := (*tmp)[:0]
	if seg.ix != nil {
		vpc = seg.ix.ValuesPerCacheline()
		switch pl.kind {
		case kindIn:
			cl, st = seg.ix.InSetCachelinesInto(cl, pl.set)
		case kindRange:
			cl, st = seg.ix.RangeCachelinesInto(cl, pl.low, pl.high)
		case kindAtLeast:
			cl, st = seg.ix.AtLeastCachelinesInto(cl, pl.low)
		case kindLessThan:
			cl, st = seg.ix.LessThanCachelinesInto(cl, pl.high)
		case kindEquals:
			cl, st = seg.ix.PointCachelinesInto(cl, pl.low)
		}
	} else {
		vpc = seg.zm.ValuesPerZone()
		var zst zonemap.QueryStats
		switch pl.kind {
		case kindIn:
			cl, zst = seg.zm.InSetCachelines(pl.set)
		case kindRange:
			cl, zst = seg.zm.RangeCachelines(pl.low, pl.high)
		case kindAtLeast:
			cl, zst = seg.zm.AtLeastCachelines(pl.low)
		case kindLessThan:
			cl, zst = seg.zm.LessThanCachelines(pl.high)
		case kindEquals:
			cl, zst = seg.zm.PointCachelines(pl.low)
		}
		st = core.QueryStats{
			Probes:            zst.Probes,
			Comparisons:       zst.Comparisons,
			CachelinesScanned: zst.ZonesScanned,
			CachelinesExact:   zst.ZonesExact,
			CachelinesSkipped: zst.ZonesSkipped,
		}
	}
	cls := (len(seg.vals) + vpc - 1) / vpc
	runs = blocksFromCachelinesInto(dst, cl, BlockRows/vpc, cls)
	*tmp = cl[:0]
	putRunScratch(tmp)
	return runs, st
}

// segKernel returns the leaf's cached selection-mask kernel for segment
// s, deriving a fresh monomorphized one when the segment's slab changed
// since it was cached.
//
//imprintvet:locks held=mu.R
func (pl *numLeafPlan[V]) segKernel(s int) blockKernel {
	vals := pl.c.segs[s].vals
	if len(vals) == 0 {
		return zeroMask
	}
	pl.cacheMu.Lock()
	defer pl.cacheMu.Unlock()
	for len(pl.kerns) <= s {
		pl.kerns = append(pl.kerns, numKernEntry[V]{})
	}
	e := &pl.kerns[s]
	if e.k != nil && e.vals == &vals[0] && e.n == len(vals) {
		return e.k
	}
	e.vals, e.n = &vals[0], len(vals)
	switch pl.kind {
	case kindIn:
		e.k = inKernel(vals, pl.set, pl.member)
	case kindRange:
		if isIntType[V]() {
			e.k = intRangeKernel(vals, pl.low, pl.high)
		} else {
			e.k = rangeKernel(vals, pl.low, pl.high)
		}
	case kindAtLeast:
		e.k = atLeastKernel(vals, pl.low)
	case kindLessThan:
		e.k = lessThanKernel(vals, pl.high)
	default: // kindEquals; compileLeaf rejected every other kind
		e.k = equalsKernel(vals, pl.low)
	}
	return e.k
}

// segEstimate returns the leaf's selectivity estimate within segment s
// from that segment's imprint histogram, or a negative value when the
// segment has no imprint to estimate from.
//
//imprintvet:locks held=mu.R
func (pl *numLeafPlan[V]) segEstimate(s int) float64 {
	ix := pl.c.segs[s].ix
	if ix == nil {
		return -1
	}
	switch pl.kind {
	case kindIn:
		return min(float64(len(pl.set))/float64(ix.Bins()), 1)
	case kindRange:
		return ix.EstimateSelectivity(pl.low, pl.high)
	case kindAtLeast:
		return ix.EstimateSelectivity(pl.low, coltype.MaxOf[V]())
	case kindLessThan:
		return ix.EstimateSelectivity(coltype.MinOf[V](), pl.high)
	case kindEquals:
		// Crude point estimate: one bin's share.
		return 1 / float64(ix.Bins())
	}
	return -1
}

// blocksFromCachelines renormalizes a cacheline run list (vpc rows per
// cacheline) into BlockRows blocks: f = cachelines per block. A block is
// a candidate if any of its cachelines is, and exact only if every one
// of its (existing) cachelines is covered exactly — exactness may only
// shrink under coarsening, candidacy may only grow; both directions are
// sound (false positives are re-checked, exact rows truly all qualify).
//
// Runs spanning many whole blocks are translated in O(1); only the
// partial head/tail blocks of each run need accumulation.
func blocksFromCachelines(runs []core.CandidateRun, f int, totalCl int) []core.CandidateRun {
	if f == 1 || len(runs) == 0 {
		return runs
	}
	return blocksFromCachelinesInto(nil, runs, f, totalCl)
}

// blocksFromCachelinesInto is blocksFromCachelines appending into dst
// (which must not alias runs); an f of 1 copies, so the caller may
// recycle runs' buffer either way.
func blocksFromCachelinesInto(dst, runs []core.CandidateRun, f int, totalCl int) []core.CandidateRun {
	if f == 1 || len(runs) == 0 {
		return append(dst, runs...)
	}
	out := dst
	push := func(start, count uint32, exact bool) {
		if count == 0 {
			return
		}
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Exact == exact && last.Start+last.Count == start {
				last.Count += count
				return
			}
		}
		out = append(out, core.CandidateRun{Start: start, Count: count, Exact: exact})
	}

	// Accumulator for the block currently being assembled from partial
	// run pieces.
	accBlock := -1
	accCovered := 0
	accExact := true
	blockLen := func(b int) int {
		l := totalCl - b*f
		if l > f {
			l = f
		}
		return l
	}
	flush := func() {
		if accBlock < 0 {
			return
		}
		push(uint32(accBlock), 1, accExact && accCovered == blockLen(accBlock))
		accBlock = -1
	}
	addPiece := func(b, covered int, exact bool) {
		if accBlock != b {
			flush()
			accBlock = b
			accCovered = 0
			accExact = true
		}
		accCovered += covered
		accExact = accExact && exact
	}

	for _, r := range runs {
		clStart := int(r.Start)
		clEnd := clStart + int(r.Count)
		b0 := clStart / f
		b1 := (clEnd - 1) / f // last block touched
		if b0 == b1 {
			addPiece(b0, clEnd-clStart, r.Exact)
			continue
		}
		// Head partial (or full) block.
		headEnd := (b0 + 1) * f
		addPiece(b0, headEnd-clStart, r.Exact)
		flush()
		// Middle whole blocks in one go.
		mb1 := clEnd / f // first block NOT fully covered
		if mb1 > b0+1 {
			push(uint32(b0+1), uint32(mb1-(b0+1)), r.Exact)
		}
		// Tail partial block.
		if tail := clEnd - mb1*f; tail > 0 {
			addPiece(mb1, tail, r.Exact)
		}
	}
	flush()
	return out
}
