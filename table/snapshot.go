package table

import (
	"repro/internal/core"
)

// Snapshot reads (the LSM-style write path's read side): an execution
// captures, under the read lock it already holds, the sealed-segment
// epoch (the segment list at t.rows) plus a delta watermark — the
// buffered rows visible at capture time. Sealed segments evaluate
// through the unchanged vectorized block walk; the delta rows are
// scanned exactly, row at a time, with the same compiled leaf
// semantics (leafPlan.rowCheck). Concurrent appends land beyond the
// watermark and concurrent seal installs re-home rows the execution
// reads from the delta — either way the union each executor produces
// is the table as of capture, so readers get stable results while
// writers stream.

// deltaView is one execution's delta watermark: the buffered rows
// visible to it, addressed by global id base+i. Valid only while the
// capturing execution holds the table's read lock (the view aliases
// the store's live slice; see delta.Store.View).
type deltaView struct {
	t    *Table
	base int
	rows [][]any
	cols []string
}

// deltaViewLocked captures the delta watermark for one execution; nil
// when the table has no delta ingest or nothing is buffered. Callers
// hold the read lock for the view's lifetime.
//
//imprintvet:locks held=mu.R
func (t *Table) deltaViewLocked() *deltaView {
	d := t.delta
	if d == nil {
		return nil
	}
	base, rows := d.store.View()
	if len(rows) == 0 {
		return nil
	}
	return &deltaView{t: t, base: base, rows: rows, cols: d.store.Cols()}
}

// colIdx returns a column's position in the delta row layout, or -1.
func (v *deltaView) colIdx(name string) int {
	for i, c := range v.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// matcher compiles an execution tree into an exact row-at-a-time test
// over delta rows, composing each leaf's rowCheck under the same
// and/or/andnot semantics the segment evaluator applies. A nil tree
// matches every row.
func (v *deltaView) matcher(en *execNode) func(row []any) bool {
	if en == nil {
		return nil
	}
	switch en.op {
	case "leaf":
		ci := v.colIdx(en.leaf.col)
		if ci < 0 {
			// Cannot happen: executions bind against table columns and
			// the delta layout mirrors t.order. Fail closed.
			return func([]any) bool { return false }
		}
		check := en.plan.rowCheck()
		return func(row []any) bool { return check(row[ci]) }
	case "and":
		kids := v.matchKids(en)
		return func(row []any) bool {
			for _, k := range kids {
				if !k(row) {
					return false
				}
			}
			return true
		}
	case "or":
		kids := v.matchKids(en)
		return func(row []any) bool {
			for _, k := range kids {
				if k(row) {
					return true
				}
			}
			return false
		}
	default: // "andnot" — binary: p and not q
		p, q := v.matcher(en.kids[0]), v.matcher(en.kids[1])
		return func(row []any) bool { return p(row) && !q(row) }
	}
}

func (v *deltaView) matchKids(en *execNode) []func(row []any) bool {
	kids := make([]func(row []any) bool, len(en.kids))
	for i, kid := range en.kids {
		kids[i] = v.matcher(kid)
	}
	return kids
}

// scan walks the view's live rows in id order, evaluating match (nil
// matches all) exactly and visiting qualifying rows until visit
// returns false. It reports whether the walk ran to completion and
// counts evaluated rows into st.DeltaRowsScanned.
//
//imprintvet:locks held=mu.R
func (v *deltaView) scan(match func(row []any) bool, st *core.QueryStats, visit func(id int, row []any) bool) bool {
	for i, row := range v.rows {
		id := v.base + i
		if v.t.deletedAt(id) {
			continue
		}
		st.DeltaRowsScanned++
		if match != nil && !match(row) {
			continue
		}
		if !visit(id, row) {
			return false
		}
	}
	return true
}
