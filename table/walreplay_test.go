package table

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// newWALTable builds an empty ingest-enabled qty/city table and
// attaches a WAL under dir on fs. AutoSeal stays off so tests control
// sealing deterministically.
func newWALTable(t *testing.T, fs faultfs.FS, dir string, policy wal.SyncPolicy) (*Table, *RecoveryReport) {
	t.Helper()
	tb := NewWithOptions("orders", TableOptions{SegmentRows: 64})
	if err := AddColumn(tb, "qty", []int64{}, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", []string{}, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.EnableDeltaIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	rep, err := tb.EnableWAL(WALOptions{Dir: dir, Policy: policy, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	return tb, rep
}

// commitQC commits one qty/city batch.
func commitQC(tb *Table, qty []int64, city []string) error {
	b := tb.NewBatch()
	if err := Append(b, "qty", qty); err != nil {
		return err
	}
	if err := b.AppendStrings("city", city); err != nil {
		return err
	}
	return b.Commit()
}

// seqRows builds n deterministic rows starting at value base.
func seqRows(base, n int) ([]int64, []string) {
	qty := make([]int64, n)
	city := make([]string, n)
	for i := 0; i < n; i++ {
		qty[i] = int64(base + i)
		city[i] = fmt.Sprintf("c%d", (base+i)%7)
	}
	return qty, city
}

// dumpTable renders the table's complete logical contents (ids, live
// values, tombstones) for equality comparison across recoveries.
func dumpTable(t *testing.T, tb *Table) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "rows=%d live=%d\n", tb.Rows(), tb.LiveRows())
	for id := 0; id < tb.Rows(); id++ {
		if tb.IsDeleted(id) {
			fmt.Fprintf(&sb, "%d D\n", id)
			continue
		}
		row, err := tb.ReadRow(id)
		if err != nil {
			t.Fatalf("ReadRow(%d): %v", id, err)
		}
		fmt.Fprintf(&sb, "%d %v %v\n", id, row["qty"], row["city"])
	}
	return sb.String()
}

// TestWALReplayRoundTrip runs commits, point updates, deletes and a
// compaction through a WAL, crashes, and asserts recovery rebuilds the
// exact pre-crash table and reports what it replayed.
func TestWALReplayRoundTrip(t *testing.T) {
	mem := faultfs.NewMemFS()
	tb, rep := newWALTable(t, mem, "wal", wal.SyncAlways)
	if rep.Records != 0 {
		t.Fatalf("fresh log replayed %d records", rep.Records)
	}

	q, c := seqRows(0, 100)
	if err := commitQC(tb, q, c); err != nil {
		t.Fatal(err)
	}
	tb.SealDelta() // indexes seal; replay must cross the seal boundary
	if err := Update(tb, "qty", 5, int64(9999)); err != nil {
		t.Fatal(err)
	}
	if err := tb.UpdateString("city", 12, "Reykjavik"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(3); err != nil {
		t.Fatal(err)
	}
	q, c = seqRows(100, 50)
	if err := commitQC(tb, q, c); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(120); err != nil {
		t.Fatal(err)
	}
	tb.Compact() // logs 'P'; ids renumber
	q, c = seqRows(150, 10)
	if err := commitQC(tb, q, c); err != nil {
		t.Fatal(err)
	}
	want := dumpTable(t, tb)

	mem.Crash() // kill -9: only synced state survives

	rec, rep2 := newWALTable(t, mem, "wal", wal.SyncAlways)
	if got := dumpTable(t, rec); got != want {
		t.Errorf("recovered table differs from pre-crash table:\n--- want\n%s--- got\n%s", want, got)
	}
	if rep2.RowsReplayed != 160 {
		t.Errorf("RowsReplayed = %d, want 160", rep2.RowsReplayed)
	}
	if rep2.UpdatesReplayed != 2 || rep2.DeletesReplayed != 2 {
		t.Errorf("replayed %d updates / %d deletes, want 2 / 2", rep2.UpdatesReplayed, rep2.DeletesReplayed)
	}
	if rep2.TornRecords != 0 {
		t.Errorf("clean log reported %d torn records", rep2.TornRecords)
	}
	st := rec.IngestStats()
	if !st.WALEnabled || st.Recovery == nil {
		t.Errorf("IngestStats does not surface recovery: %+v", st)
	}
	if st.Recovery.RowsReplayed != rep2.RowsReplayed {
		t.Errorf("IngestStats.Recovery = %+v, want %+v", st.Recovery, rep2)
	}

	// The recovered table keeps serving writes through the same log.
	q, c = seqRows(160, 5)
	if err := commitQC(rec, q, c); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if rec.Rows() != tb.Rows()+5 {
		t.Errorf("rows after post-recovery commit = %d, want %d", rec.Rows(), tb.Rows()+5)
	}
}

// TestWALRecoverySealsReplayedRows asserts recovery pushes replayed
// rows through the ordinary seal path, rebuilding imprint indexes that
// were never logged.
func TestWALRecoverySealsReplayedRows(t *testing.T) {
	mem := faultfs.NewMemFS()
	tb, _ := newWALTable(t, mem, "wal", wal.SyncAlways)
	q, c := seqRows(0, 128) // exactly two seal chunks
	if err := commitQC(tb, q, c); err != nil {
		t.Fatal(err)
	}
	mem.Crash()

	rec, rep := newWALTable(t, mem, "wal", wal.SyncAlways)
	if rep.RowsReplayed != 128 {
		t.Fatalf("RowsReplayed = %d, want 128", rep.RowsReplayed)
	}
	if rep.SegmentsRebuilt != 2 {
		t.Errorf("SegmentsRebuilt = %d, want 2", rep.SegmentsRebuilt)
	}
	if rec.Segments() != 2 {
		t.Errorf("recovered table has %d sealed segments, want 2", rec.Segments())
	}
	if st, err := rec.IndexStats("qty"); err != nil || st.Segments == 0 {
		t.Errorf("qty index not rebuilt after recovery: %+v, %v", st, err)
	}
}

// TestWALCheckpointTruncates saves an image mid-stream and asserts the
// checkpoint confines replay to post-image records: recovery loads the
// image, replays only the suffix, and arrives at the pre-crash state.
func TestWALCheckpointTruncates(t *testing.T) {
	mem := faultfs.NewMemFS()
	tb, _ := newWALTable(t, mem, "wal", wal.SyncAlways)
	q, c := seqRows(0, 100)
	if err := commitQC(tb, q, c); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteFile("orders.ctbl"); err != nil {
		t.Fatal(err)
	}
	q, c = seqRows(100, 30)
	if err := commitQC(tb, q, c); err != nil {
		t.Fatal(err)
	}
	want := dumpTable(t, tb)

	mem.Crash()

	rec, _, err := Open("orders.ctbl", LoadOptions{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Rows() != 100 {
		t.Fatalf("image alone carries %d rows, want 100", rec.Rows())
	}
	if err := rec.EnableDeltaIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	rep, err := rec.EnableWAL(WALOptions{Dir: "wal", Policy: wal.SyncAlways, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if got := dumpTable(t, rec); got != want {
		t.Errorf("recovered table differs:\n--- want\n%s--- got\n%s", want, got)
	}
	// The image covers the first 100 rows; the truncated log must not
	// re-deliver them.
	if rep.RowsReplayed != 30 {
		t.Errorf("RowsReplayed = %d, want 30 (the post-checkpoint suffix)", rep.RowsReplayed)
	}
}

// lastWALSegment returns the path of the newest segment under dir.
func lastWALSegment(t *testing.T, fs faultfs.FS, dir string) string {
	t.Helper()
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".log") {
			segs = append(segs, n)
		}
	}
	if len(segs) == 0 {
		t.Fatalf("no wal segments in %s (entries %v)", dir, names)
	}
	sort.Strings(segs)
	return dir + "/" + segs[len(segs)-1]
}

// TestWALTornTail damages the final record of the log and asserts
// recovery truncates the tear, counts it, loses exactly the torn
// commit, and that the tear cannot come back on the next recovery.
func TestWALTornTail(t *testing.T) {
	mem := faultfs.NewMemFS()
	tb, _ := newWALTable(t, mem, "wal", wal.SyncAlways)
	for i := 0; i < 3; i++ {
		q, c := seqRows(i*10, 10)
		if err := commitQC(tb, q, c); err != nil {
			t.Fatal(err)
		}
	}
	mem.Crash()

	// Shear a few bytes off the last frame, as a torn sector would.
	seg := lastWALSegment(t, mem, "wal")
	size, err := mem.Size(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Truncate(seg, size-3); err != nil {
		t.Fatal(err)
	}

	rec, rep := newWALTable(t, mem, "wal", wal.SyncAlways)
	if rep.TornRecords != 1 {
		t.Errorf("TornRecords = %d, want 1", rep.TornRecords)
	}
	if rep.BytesTruncated == 0 {
		t.Error("BytesTruncated = 0, want > 0")
	}
	if rec.Rows() != 20 {
		t.Errorf("recovered %d rows, want 20 (the torn commit is lost)", rec.Rows())
	}
	if rep.RowsReplayed != 20 {
		t.Errorf("RowsReplayed = %d, want 20", rep.RowsReplayed)
	}

	// The tear was physically truncated; a second recovery sees a clean
	// log with identical contents.
	mem.Crash()
	rec2, rep2 := newWALTable(t, mem, "wal", wal.SyncAlways)
	if rep2.TornRecords != 0 {
		t.Errorf("second recovery reports %d torn records, want 0", rep2.TornRecords)
	}
	if got, want := dumpTable(t, rec2), dumpTable(t, rec); got != want {
		t.Errorf("second recovery differs from first:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestWALGroupAndOffPolicies exercises the two non-always policies end
// to end: both must recover everything that was explicitly synced.
func TestWALGroupAndOffPolicies(t *testing.T) {
	for _, policy := range []wal.SyncPolicy{wal.SyncGroup, wal.SyncOff} {
		mem := faultfs.NewMemFS()
		tb, _ := newWALTable(t, mem, "wal", policy)
		q, c := seqRows(0, 40)
		if err := commitQC(tb, q, c); err != nil {
			t.Fatal(err)
		}
		// Force the tail durable regardless of policy, then crash.
		if lg := tb.walPtr(); lg == nil {
			t.Fatal("no wal attached")
		} else if err := lg.Sync(); err != nil {
			t.Fatal(err)
		}
		want := dumpTable(t, tb)
		mem.Crash()
		rec, _ := newWALTable(t, mem, "wal", policy)
		if got := dumpTable(t, rec); got != want {
			t.Errorf("policy %v: recovered table differs:\n--- want\n%s--- got\n%s", policy, want, got)
		}
	}
}

// FuzzWALReplay feeds arbitrary bytes to the replay path as a segment
// file: recovery may reject or truncate, but must never panic.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real segment produced by a real workload.
	mem := faultfs.NewMemFS()
	tb := NewWithOptions("orders", TableOptions{SegmentRows: 64})
	if err := AddColumn(tb, "qty", []int64{}, Imprints, core.Options{}); err != nil {
		f.Fatal(err)
	}
	if err := tb.AddStringColumn("city", []string{}, Imprints, core.Options{}); err != nil {
		f.Fatal(err)
	}
	if err := tb.EnableDeltaIngest(IngestOptions{}); err != nil {
		f.Fatal(err)
	}
	if _, err := tb.EnableWAL(WALOptions{Dir: "wal", Policy: wal.SyncAlways, FS: mem}); err != nil {
		f.Fatal(err)
	}
	q, c := seqRows(0, 10)
	if err := commitQC(tb, q, c); err != nil {
		f.Fatal(err)
	}
	if err := tb.Delete(2); err != nil {
		f.Fatal(err)
	}
	names, err := mem.ReadDir("wal")
	if err != nil || len(names) == 0 {
		f.Fatalf("no wal segment for seed: %v", err)
	}
	fh, err := mem.Open("wal/" + names[0])
	if err != nil {
		f.Fatal(err)
	}
	seed, err := io.ReadAll(fh)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add(seed[:len(seed)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		mem := faultfs.NewMemFS()
		if err := mem.MkdirAll("wal"); err != nil {
			t.Fatal(err)
		}
		fh, err := mem.Create("wal/wal-00000001.log")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := fh.Sync(); err != nil {
			t.Fatal(err)
		}
		fh.Close()
		if err := mem.SyncDir("wal"); err != nil {
			t.Fatal(err)
		}
		rb := NewWithOptions("orders", TableOptions{SegmentRows: 64})
		if err := AddColumn(rb, "qty", []int64{}, Imprints, core.Options{}); err != nil {
			t.Fatal(err)
		}
		if err := rb.AddStringColumn("city", []string{}, Imprints, core.Options{}); err != nil {
			t.Fatal(err)
		}
		if err := rb.EnableDeltaIngest(IngestOptions{}); err != nil {
			t.Fatal(err)
		}
		// Errors are fine (damaged history must be refused); panics and
		// hangs are the bug class under test.
		_, _ = rb.EnableWAL(WALOptions{Dir: "wal", Policy: wal.SyncAlways, FS: mem})
	})
}
