package table

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/core"
)

// vecTestTable builds an n-row table with a uniform random int64 column
// "v" in [0, 1e6) (inexact-run heavy under narrow ranges) and a second
// float64 column "price".
func vecTestTable(tb testing.TB, n int, opts TableOptions) *Table {
	tb.Helper()
	rng := rand.New(rand.NewPCG(11, 13))
	v := make([]int64, n)
	price := make([]float64, n)
	for i := range v {
		v[i] = rng.Int64N(1_000_000)
		price[i] = rng.Float64() * 1000
	}
	t := NewWithOptions("vec", opts)
	if err := AddColumn(t, "v", v, Imprints, core.Options{Seed: 5}); err != nil {
		tb.Fatal(err)
	}
	if err := AddColumn(t, "price", price, Imprints, core.Options{Seed: 6}); err != nil {
		tb.Fatal(err)
	}
	return t
}

// TestScalarOptionEquivalence pins that SelectOptions.Scalar changes
// nothing observable except BlocksVectorized: ids, counts and every
// other statistic are identical, and only the vectorized run reports
// kernel blocks.
func TestScalarOptionEquivalence(t *testing.T) {
	tb := vecTestTable(t, 30_000, TableOptions{SegmentRows: 8192})
	for i := 0; i < 500; i += 97 {
		if err := tb.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	preds := []Predicate{
		Range[int64]("v", 100_000, 200_000),
		And(Range[int64]("v", 0, 900_000), Range[float64]("price", 100, 120)),
		Or(Range[int64]("v", 0, 50_000), AtLeast[int64]("v", 950_000)),
		AndNot(Range[int64]("v", 0, 500_000), Range[float64]("price", 0, 700)),
	}
	for pi, pred := range preds {
		for _, par := range []int{1, 2, 8} {
			ctx := fmt.Sprintf("pred %d par %d", pi, par)
			vec := SelectOptions{Parallelism: par}
			sca := SelectOptions{Parallelism: par, Scalar: true}
			idsV, stV, err := tb.Select().Where(pred).Options(vec).IDs()
			if err != nil {
				t.Fatal(err)
			}
			idsS, stS, err := tb.Select().Where(pred).Options(sca).IDs()
			if err != nil {
				t.Fatal(err)
			}
			equalIDs(t, idsV, idsS, ctx+": vectorized vs scalar ids")
			if stS.BlocksVectorized != 0 {
				t.Errorf("%s: scalar run reported %d vectorized blocks", ctx, stS.BlocksVectorized)
			}
			if stV.BlocksVectorized == 0 {
				t.Errorf("%s: vectorized run reported no kernel blocks", ctx)
			}
			// ScratchReused depends on sync.Pool warmth, not the plan.
			stV.BlocksVectorized, stV.ScratchReused, stS.ScratchReused = 0, 0, 0
			if stV != stS {
				t.Errorf("%s: stats diverge\nvectorized %+v\nscalar     %+v", ctx, stV, stS)
			}
			nV, cstV, err := tb.Select().Where(pred).Options(vec).Count()
			if err != nil {
				t.Fatal(err)
			}
			nS, cstS, err := tb.Select().Where(pred).Options(sca).Count()
			if err != nil {
				t.Fatal(err)
			}
			if nV != nS || nV != uint64(len(idsV)) {
				t.Errorf("%s: Count vectorized=%d scalar=%d ids=%d", ctx, nV, nS, len(idsV))
			}
			cstV.BlocksVectorized, cstV.ScratchReused, cstS.ScratchReused = 0, 0, 0
			if cstV != cstS {
				t.Errorf("%s: count stats diverge\nvectorized %+v\nscalar     %+v", ctx, cstV, cstS)
			}
		}
	}
}

// TestExplainBlocksVectorizedPreview pins that the plan's vectorized
// preview matches what the execution actually reports, and that the
// rendering mentions it.
func TestExplainBlocksVectorizedPreview(t *testing.T) {
	tb := vecTestTable(t, 20_000, TableOptions{SegmentRows: 8192})
	pred := Range[int64]("v", 100_000, 200_000)
	q := tb.Select().Where(pred).Options(SelectOptions{Parallelism: 2})
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := q.Count()
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksVectorized == 0 {
		t.Fatal("execution vectorized no blocks; test table too selective?")
	}
	if plan.BlocksVectorized != st.BlocksVectorized {
		t.Errorf("Plan.BlocksVectorized = %d, execution reported %d", plan.BlocksVectorized, st.BlocksVectorized)
	}
	if want := fmt.Sprintf("vectorized: %d blocks", plan.BlocksVectorized); !strings.Contains(plan.String(), want) {
		t.Errorf("plan rendering lacks %q:\n%s", want, plan.String())
	}
	scalarPlan, err := tb.Select().Where(pred).Options(SelectOptions{Scalar: true}).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if scalarPlan.BlocksVectorized != 0 {
		t.Errorf("scalar plan previews %d vectorized blocks, want 0", scalarPlan.BlocksVectorized)
	}
}

// TestVectorizedAllocs pins the allocation hygiene of the vectorized
// hot path: with the run-scratch pool, the per-segment kernel caches
// and the prepared statement's static execution tree, a steady-state
// serial Count allocates nothing at all, and IDs allocates exactly its
// result slice.
func TestVectorizedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation pin runs without -race")
	}
	tb := vecTestTable(t, 40_000, TableOptions{SegmentRows: 16384})
	prep, err := tb.Prepare(Range[int64]("v", 100_000, 200_000), SelectOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := prep.Exec()
	if _, _, err := count.Count(); err != nil {
		t.Fatal(err)
	}
	countAllocs := testing.AllocsPerRun(100, func() {
		if _, _, err := count.Count(); err != nil {
			t.Fatal(err)
		}
	})
	if countAllocs != 0 {
		t.Errorf("vectorized Count made %.1f allocs/run, want 0", countAllocs)
	}
	ids := prep.Exec()
	got, _, err := ids.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("selection matched no rows")
	}
	idsAllocs := testing.AllocsPerRun(100, func() {
		if _, _, err := ids.IDs(); err != nil {
			t.Fatal(err)
		}
	})
	if idsAllocs > 1 {
		t.Errorf("vectorized IDs made %.1f allocs/run, want <= 1 (the result slice)", idsAllocs)
	}
}

// TestKernelCacheInvalidation pins that cached kernels follow the data:
// updates in place, appends that grow or move the slab, dictionary
// re-encodes and compactions must all be visible to the next execution
// of an already-prepared statement.
func TestKernelCacheInvalidation(t *testing.T) {
	tb := New("kerncache")
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = int64(i)
	}
	strs := make([]string, 200)
	for i := range strs {
		strs[i] = fmt.Sprintf("city-%03d", i%7)
	}
	if err := AddColumn(tb, "v", vals, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("s", strs, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	prep, err := tb.Prepare(And(Range[int64]("v", 50, 150), StrEquals("s", "city-003")), SelectOptions{ScanThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	naive := func() []uint32 {
		v, _ := Column[int64](tb, "v")
		s, _ := tb.StringColumn("s")
		var want []uint32
		for id := range v {
			if !tb.IsDeleted(id) && v[id] >= 50 && v[id] < 150 && s[id] == "city-003" {
				want = append(want, uint32(id))
			}
		}
		return want
	}
	checkStep := func(step string) {
		t.Helper()
		got, _, err := prep.Exec().IDs()
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		equalIDs(t, got, naive(), step)
	}
	checkStep("initial")

	if err := Update(tb, "v", 10, int64(60)); err != nil { // in-place slab mutation
		t.Fatal(err)
	}
	checkStep("after numeric update")

	if err := tb.UpdateString("s", 11, "city-003"); err != nil { // same dict, code update
		t.Fatal(err)
	}
	checkStep("after string update")

	if err := tb.UpdateString("s", 12, "novel-town"); err != nil { // re-encode, gen bump
		t.Fatal(err)
	}
	checkStep("after dictionary re-encode")

	b := tb.NewBatch() // tail append: slab grows (and may move)
	if err := Append(b, "v", []int64{70, 71, 72}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("s", []string{"city-003", "city-004", "city-003"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	checkStep("after append")

	if err := tb.Delete(60); err != nil {
		t.Fatal(err)
	}
	checkStep("after delete")

	tb.Compact() // segments rebuilt wholesale
	checkStep("after compact")
}

// benchSelectTable is the shared fixture of the vectorized micro-
// benches: 512K uniform rows, one segment per 64K.
func benchSelectTable(b *testing.B) (*Table, Predicate) {
	b.Helper()
	t := vecTestTable(b, 512*1024, TableOptions{})
	// ~10% selectivity over uniform [0, 1e6): inexact-run heavy.
	return t, Range[int64]("v", 450_000, 550_000)
}

// BenchmarkVectorizedSelect compares the block-kernel residual path
// against the scalar closure baseline for IDs and Count at ~10%
// selectivity (single-threaded, the acceptance workload).
func BenchmarkVectorizedSelect(b *testing.B) {
	t, pred := benchSelectTable(b)
	for _, mode := range []struct {
		name string
		opts SelectOptions
	}{
		{"scalar", SelectOptions{Parallelism: 1, Scalar: true}},
		{"kernel", SelectOptions{Parallelism: 1}},
	} {
		b.Run("ids/"+mode.name, func(b *testing.B) {
			q := t.Select().Where(pred).Options(mode.opts)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := q.IDs(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("count/"+mode.name, func(b *testing.B) {
			q := t.Select().Where(pred).Options(mode.opts)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := q.Count(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVectorizedAggregate compares the two residual paths under a
// mask-consuming aggregation (sum+count over a ~10% band).
func BenchmarkVectorizedAggregate(b *testing.B) {
	t, pred := benchSelectTable(b)
	for _, mode := range []struct {
		name string
		opts SelectOptions
	}{
		{"scalar", SelectOptions{Parallelism: 1, Scalar: true}},
		{"kernel", SelectOptions{Parallelism: 1}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			q := t.Select().Where(pred).Options(mode.opts)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := q.Aggregate(Sum("price"), CountAll()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
