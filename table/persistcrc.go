package table

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"reflect"

	"repro/internal/bitvec"
	"repro/internal/colfile"
	"repro/internal/coltype"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/faultfs"
)

// Checksummed persistence (versions 5 and 6): every logical unit of a
// persisted table travels in its own framed section —
//
//	[len uint32][payload][crc32c(payload) uint32]
//
// — so a flipped bit is caught at load time and named (table, shard,
// column, segment, section) instead of surfacing as a wrong query
// answer or a panic deep in deserialization. The v5 layout is the v3
// layout re-framed: a "header" section (name, rows, segment size,
// column count, WAL checkpoint sequence), then per column a "colhdr"
// section (name, kind, mode, build options, segment count) followed
// per segment by a "slab" section (numeric value payload) or a "dict"
// section (string symbols + codes) and an "index" section (optional
// imprint image). Version 6 is the sharded envelope: a checksummed
// header section (name, segment size, shard count), then per shard a
// uint64 byte length and that shard's complete v5 image.
//
// Corruption is fatal by default; with LoadOptions.Quarantine, damage
// confined to a segment's slab/dict/index sections is contained: the
// segment is replaced by a placeholder of the right shape, its rows
// are marked deleted, and the load succeeds degraded with the casualty
// list in the LoadReport. Header and colhdr corruption stays fatal —
// without them nothing downstream can be interpreted. Since Write
// refuses tables with pending deletes, a degraded table cannot be
// re-persisted (and the damage silently laundered) without an explicit
// Compact first.
const (
	tableVersionCRC = 5
	shardVersionCRC = 6
	// maxSectionBytes bounds a section's declared length so a corrupt
	// frame cannot demand an absurd allocation. Sections are at most
	// segment-sized; 1 GiB is generous beyond any real image.
	maxSectionBytes = 1 << 30
)

// Section names as they appear in errors and quarantine reports.
const (
	secHeader = "header"
	secColHdr = "colhdr"
	secSlab   = "slab"
	secDict   = "dict"
	secIndex  = "index"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptSegmentError reports checksum or decode failure in one
// persisted section, pinpointing the storage unit it covers. It
// unwraps to ErrCorrupt, so errors.Is(err, ErrCorrupt) keeps working.
type CorruptSegmentError struct {
	Table   string
	Shard   int    // -1 for unsharded tables
	Column  string // empty for the table header section
	Segment int    // -1 for header/colhdr sections
	Section string // "header", "colhdr", "slab", "dict", "index"
	Got     uint32 // computed checksum; Got == Want when the payload
	Want    uint32 // verified but failed structural decoding
	Err     error
}

func (e *CorruptSegmentError) Error() string {
	loc := fmt.Sprintf("table %s", e.Table)
	if e.Shard >= 0 {
		loc += fmt.Sprintf(", shard %d", e.Shard)
	}
	if e.Column != "" {
		loc += fmt.Sprintf(", column %s", e.Column)
	}
	if e.Segment >= 0 {
		loc += fmt.Sprintf(", segment %d", e.Segment)
	}
	if e.Got != e.Want {
		return fmt.Sprintf("%s: %s section checksum mismatch (got %08x, want %08x): %v",
			loc, e.Section, e.Got, e.Want, e.Err)
	}
	return fmt.Sprintf("%s: %s section invalid: %v", loc, e.Section, e.Err)
}

func (e *CorruptSegmentError) Unwrap() error { return ErrCorrupt }

// QuarantinedSegment describes one segment replaced by a placeholder
// during a Quarantine load; its rows are marked deleted.
type QuarantinedSegment struct {
	Shard   int    `json:"shard"` // -1 for unsharded tables
	Column  string `json:"column"`
	Segment int    `json:"segment"`
	Section string `json:"section"`
	Rows    int    `json:"rows"`
	Err     string `json:"error"`
}

// LoadOptions controls how persisted images are loaded.
type LoadOptions struct {
	// Quarantine loads past segment-level corruption: damaged segments
	// are replaced by placeholders with their rows marked deleted, and
	// reported in the LoadReport instead of failing the load.
	Quarantine bool
	// FS is the filesystem Open reads through (nil means the real one).
	FS faultfs.FS
}

// LoadReport describes what a load had to tolerate.
type LoadReport struct {
	Quarantined []QuarantinedSegment `json:"quarantined,omitempty"`
}

// Degraded reports whether any segment was quarantined.
func (r *LoadReport) Degraded() bool { return r != nil && len(r.Quarantined) > 0 }

// Quarantined returns the casualty list recorded when this table was
// loaded degraded (LoadOptions.Quarantine); empty for healthy tables.
func (t *Table) Quarantined() []QuarantinedSegment {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]QuarantinedSegment(nil), t.quarantined...)
}

// loadCtx threads load policy and provenance (which shard is being
// decoded) through the reader call tree.
type loadCtx struct {
	opts  LoadOptions
	shard int // -1 outside a sharded envelope
	rep   *LoadReport
	table string // outermost table name, for error messages
}

// ---- section framing ----

// writeSection frames one section: the payload produced by fill is
// length-prefixed and trailed by its CRC32-C.
func writeSection(w io.Writer, fill func(*bytes.Buffer) error) error {
	var buf bytes.Buffer
	if err := fill(&buf); err != nil {
		return err
	}
	var word [4]byte
	binary.LittleEndian.PutUint32(word[:], uint32(buf.Len()))
	if _, err := w.Write(word[:]); err != nil {
		return err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(word[:], crc32.Checksum(buf.Bytes(), crcTable))
	_, err := w.Write(word[:])
	return err
}

// crcMismatch is the internal marker readSection returns alongside the
// payload when framing succeeded but the checksum did not verify; the
// caller wraps it with location context (and may quarantine, since the
// stream position is still good).
type crcMismatch struct{ got, want uint32 }

func (e *crcMismatch) Error() string {
	return fmt.Sprintf("checksum mismatch (got %08x, want %08x)", e.got, e.want)
}

// readSection reads one framed section. On a checksum mismatch the
// payload is returned together with a *crcMismatch error — the frame
// was intact, so the caller can skip the section and keep reading. A
// nil payload with a non-nil error means the framing itself failed and
// the stream position is lost (always fatal).
func readSection(r io.Reader) ([]byte, error) {
	var word [4]byte
	if _, err := io.ReadFull(r, word[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(word[:])
	if n > maxSectionBytes {
		return nil, fmt.Errorf("section of %d bytes exceeds limit", n)
	}
	// CopyN grows the buffer as bytes actually arrive, so a corrupt
	// length against a truncated file fails fast instead of allocating
	// the declared size up front.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, word[:]); err != nil {
		return nil, err
	}
	want := binary.LittleEndian.Uint32(word[:])
	if got := crc32.Checksum(buf.Bytes(), crcTable); got != want {
		return buf.Bytes(), &crcMismatch{got: got, want: want}
	}
	return buf.Bytes(), nil
}

// sectionError wraps a readSection/decode failure into a typed
// *CorruptSegmentError with full provenance.
func sectionError(ctx *loadCtx, col string, seg int, section string, err error) *CorruptSegmentError {
	e := &CorruptSegmentError{
		Table: ctx.table, Shard: ctx.shard, Column: col, Segment: seg,
		Section: section, Err: err,
	}
	var cm *crcMismatch
	if errors.As(err, &cm) {
		e.Got, e.Want = cm.got, cm.want
	}
	return e
}

// ---- write side (v5 column payloads) ----

// persistCRC is part of anyColumn: the column's v5 sectioned image.
//
//imprintvet:locks held=mu.R
func (c *colState[V]) persistCRC(w io.Writer) error {
	var zero V
	if err := writeSection(w, func(buf *bytes.Buffer) error {
		return persistHeader(buf, c.name, reflect.TypeOf(zero).Kind(), c.mode, c.vpcOpts, len(c.segs))
	}); err != nil {
		return err
	}
	for _, s := range c.segs {
		if err := writeSection(w, func(buf *bytes.Buffer) error {
			return colfile.Write(buf, s.vals)
		}); err != nil {
			return err
		}
		if err := writeSection(w, func(buf *bytes.Buffer) error {
			return writeIndexImage(buf, s.ix)
		}); err != nil {
			return err
		}
	}
	return nil
}

//imprintvet:locks held=mu.R
func (c *strColState) persistCRC(w io.Writer) error {
	if err := writeSection(w, func(buf *bytes.Buffer) error {
		return persistHeader(buf, c.name, reflect.String, c.mode, c.vpcOpts, len(c.segs))
	}); err != nil {
		return err
	}
	for _, s := range c.segs {
		if err := writeSection(w, func(buf *bytes.Buffer) error {
			return persistDict(buf, s)
		}); err != nil {
			return err
		}
		if err := writeSection(w, func(buf *bytes.Buffer) error {
			return writeIndexImage(buf, s.ix)
		}); err != nil {
			return err
		}
	}
	return nil
}

// persistDict writes one string segment's dictionary: symbol table
// plus code payload (the v3 dict layout, now inside one section).
func persistDict(w io.Writer, s *strSegment) error {
	card := s.dict.Cardinality()
	if err := binary.Write(w, binary.LittleEndian, uint32(card)); err != nil {
		return err
	}
	for code := 0; code < card; code++ {
		sym := s.dict.Symbol(int32(code))
		if err := binary.Write(w, binary.LittleEndian, uint32(len(sym))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, sym); err != nil {
			return err
		}
	}
	return colfile.Write(w, s.codes())
}

// ---- read side (v5) ----

// readV5 loads one v5 table image; the caller consumed magic+version.
func readV5(r io.Reader, ctx *loadCtx) (*Table, error) {
	hdr, err := readSection(r)
	if err != nil {
		return nil, sectionError(ctx, "", -1, secHeader, err)
	}
	hr := bytes.NewReader(hdr)
	name, err := readString(hr)
	if err != nil {
		return nil, sectionError(ctx, "", -1, secHeader, err)
	}
	if ctx.table == "" {
		ctx.table = name
	}
	var rows uint64
	var sr uint32
	var ncols uint16
	var keepSeq uint64
	for _, v := range []any{&rows, &sr, &ncols, &keepSeq} {
		if err := binary.Read(hr, binary.LittleEndian, v); err != nil {
			return nil, sectionError(ctx, "", -1, secHeader, err)
		}
	}
	if hr.Len() != 0 {
		return nil, sectionError(ctx, "", -1, secHeader, fmt.Errorf("%d trailing bytes", hr.Len()))
	}
	t := NewWithOptions(name, TableOptions{SegmentRows: int(sr)})
	if t.segRows != int(sr) {
		return nil, fmt.Errorf("%w: segment size %d is not a whole number of blocks", ErrCorrupt, sr)
	}
	t.walKeepSeq = keepSeq
	nq := 0
	if ctx.rep != nil {
		nq = len(ctx.rep.Quarantined)
	}
	for i := 0; i < int(ncols); i++ {
		if err := readColumnV5(t, r, rows, ctx); err != nil {
			return nil, err
		}
	}
	if t.rows != int(rows) {
		return nil, fmt.Errorf("%w: header says %d rows, columns carry %d", ErrCorrupt, rows, t.rows)
	}
	if ctx.rep != nil && len(ctx.rep.Quarantined) > nq {
		markQuarantined(t, ctx.rep.Quarantined[nq:])
	}
	return t, nil
}

// markQuarantined marks every row of each quarantined segment deleted,
// once per segment even when several columns lost it. The table is
// freshly constructed and unshared, so the lock discipline is vacuous.
func markQuarantined(t *Table, qs []QuarantinedSegment) {
	segs := map[int]int{} // segment index -> rows
	for _, q := range qs {
		segs[q.Segment] = q.Rows
	}
	//imprintvet:allow snapshotsafe loading into a freshly constructed table, not yet shared
	if t.deleted == nil {
		//imprintvet:allow snapshotsafe loading into a freshly constructed table, not yet shared
		t.deleted = bitvec.New(t.rows)
	} else {
		//imprintvet:allow locksafe loading into a freshly constructed table, not yet shared
		t.growDeletedTo(t.rows)
	}
	for seg, rows := range segs {
		base := seg * t.segRows
		for id := base; id < base+rows; id++ {
			//imprintvet:allow snapshotsafe loading into a freshly constructed table, not yet shared
			if !t.deleted.Get(id) {
				//imprintvet:allow snapshotsafe loading into a freshly constructed table, not yet shared
				t.deleted.Set(id)
				t.ndel++
			}
		}
	}
}

// readColumnV5 reads one column: its colhdr section (fatal on any
// damage) and its per-segment sections (quarantinable).
func readColumnV5(t *Table, r io.Reader, rows uint64, ctx *loadCtx) error {
	hdr, err := readSection(r)
	if err != nil {
		return sectionError(ctx, "", -1, secColHdr, err)
	}
	hr := bytes.NewReader(hdr)
	name, err := readString(hr)
	if err != nil {
		return sectionError(ctx, "", -1, secColHdr, err)
	}
	var kindMode [2]byte
	if _, err := io.ReadFull(hr, kindMode[:]); err != nil {
		return sectionError(ctx, name, -1, secColHdr, err)
	}
	mode := IndexMode(kindMode[1])
	if mode != Imprints && mode != NoIndex && mode != Zonemap {
		return sectionError(ctx, name, -1, secColHdr, fmt.Errorf("invalid index mode %d", mode))
	}
	opts, err := readOptions(hr)
	if err != nil {
		return sectionError(ctx, name, -1, secColHdr, err)
	}
	if err := validateOptions(opts); err != nil {
		return sectionError(ctx, name, -1, secColHdr, err)
	}
	var ns uint32
	if err := binary.Read(hr, binary.LittleEndian, &ns); err != nil {
		return sectionError(ctx, name, -1, secColHdr, err)
	}
	if hr.Len() != 0 {
		return sectionError(ctx, name, -1, secColHdr, fmt.Errorf("%d trailing bytes", hr.Len()))
	}
	// v5 pins the segment count to the header row count exactly — that
	// is what makes placeholder shapes computable under quarantine.
	if want := (rows + uint64(t.segRows) - 1) / uint64(t.segRows); uint64(ns) != want {
		return sectionError(ctx, name, -1, secColHdr,
			fmt.Errorf("%d segments, but %d rows at %d rows/segment needs %d", ns, rows, t.segRows, want))
	}
	nsegs := int(ns)
	switch reflect.Kind(kindMode[0]) {
	case reflect.Int8:
		return loadColumnV5[int8](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.Int16:
		return loadColumnV5[int16](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.Int32:
		return loadColumnV5[int32](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.Int64:
		return loadColumnV5[int64](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.Uint8:
		return loadColumnV5[uint8](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.Uint16:
		return loadColumnV5[uint16](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.Uint32:
		return loadColumnV5[uint32](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.Uint64:
		return loadColumnV5[uint64](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.Float32:
		return loadColumnV5[float32](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.Float64:
		return loadColumnV5[float64](t, name, mode, opts, r, rows, nsegs, ctx)
	case reflect.String:
		return loadStringColumnV5(t, name, mode, opts, r, rows, nsegs, ctx)
	}
	return sectionError(ctx, name, -1, secColHdr, fmt.Errorf("unsupported kind %d", kindMode[0]))
}

// segFillV5 returns the rows segment i must hold: full everywhere but
// the tail (guaranteed consistent by the colhdr nsegs validation).
func segFillV5(rows uint64, segRows, i, nsegs int) int {
	if i < nsegs-1 {
		return segRows
	}
	return int(rows) - (nsegs-1)*segRows
}

// quarantineOrFail either records the casualty (Quarantine mode) and
// reports "use a placeholder", or fails the load with the typed error.
func quarantineOrFail(ctx *loadCtx, cse *CorruptSegmentError, rows int) error {
	if !ctx.opts.Quarantine {
		return cse
	}
	ctx.rep.Quarantined = append(ctx.rep.Quarantined, QuarantinedSegment{
		Shard: cse.Shard, Column: cse.Column, Segment: cse.Segment,
		Section: cse.Section, Rows: rows, Err: cse.Error(),
	})
	return nil
}

func loadColumnV5[V coltype.Value](t *Table, name string, mode IndexMode, opts core.Options, r io.Reader, rows uint64, nsegs int, ctx *loadCtx) error {
	cs := &colState[V]{name: name, mode: mode, vpcOpts: opts, segRows: t.segRows}
	n := 0
	for i := 0; i < nsegs; i++ {
		fill := segFillV5(rows, t.segRows, i, nsegs)
		slab, slabErr := readSection(r)
		if slab == nil && slabErr != nil {
			return sectionError(ctx, name, i, secSlab, slabErr)
		}
		image, imageErr := readSection(r)
		if image == nil && imageErr != nil {
			return sectionError(ctx, name, i, secIndex, imageErr)
		}
		s, cse := decodeNumSegment[V](name, i, mode, slab, slabErr, image, imageErr, fill, ctx)
		if cse != nil {
			if err := quarantineOrFail(ctx, cse, fill); err != nil {
				return err
			}
			// Placeholder: right shape, zero values, rows marked deleted
			// by markQuarantined once the table is assembled.
			s = &segment[V]{vals: make([]V, fill)}
			s.rebuild(mode, opts)
		}
		//imprintvet:allow snapshotsafe loading into a freshly constructed column, not yet shared
		cs.segs = append(cs.segs, s)
		n += fill
	}
	return installLoadedColumn(t, name, cs, n)
}

// decodeNumSegment turns verified slab+index payloads into a sealed
// segment, or a *CorruptSegmentError naming the first section at
// fault. Checksum failures surface before decode failures.
func decodeNumSegment[V coltype.Value](name string, i int, mode IndexMode, slab []byte, slabErr error, image []byte, imageErr error, fill int, ctx *loadCtx) (*segment[V], *CorruptSegmentError) {
	if slabErr != nil {
		return nil, sectionError(ctx, name, i, secSlab, slabErr)
	}
	sr := bytes.NewReader(slab)
	vals, err := colfile.Read[V](sr)
	if err != nil {
		return nil, sectionError(ctx, name, i, secSlab, err)
	}
	if sr.Len() != 0 {
		return nil, sectionError(ctx, name, i, secSlab, fmt.Errorf("%d trailing bytes", sr.Len()))
	}
	if len(vals) != fill {
		return nil, sectionError(ctx, name, i, secSlab, fmt.Errorf("segment has %d rows, want %d", len(vals), fill))
	}
	if imageErr != nil {
		return nil, sectionError(ctx, name, i, secIndex, imageErr)
	}
	ir := bytes.NewReader(image)
	ix, err := readIndexImage(ir, name, mode, vals)
	if err != nil {
		return nil, sectionError(ctx, name, i, secIndex, err)
	}
	if ir.Len() != 0 {
		return nil, sectionError(ctx, name, i, secIndex, fmt.Errorf("%d trailing bytes", ir.Len()))
	}
	s := &segment[V]{vals: vals, ix: ix}
	s.min, s.max, _ = summarize(vals)
	if ix == nil {
		s.rebuild(mode, core.Options{})
	}
	return s, nil
}

func loadStringColumnV5(t *Table, name string, mode IndexMode, opts core.Options, r io.Reader, rows uint64, nsegs int, ctx *loadCtx) error {
	if mode == Zonemap {
		return sectionError(ctx, name, -1, secColHdr, fmt.Errorf("string column has zonemap mode"))
	}
	cs := &strColState{name: name, mode: mode, vpcOpts: opts, segRows: t.segRows}
	n := 0
	for i := 0; i < nsegs; i++ {
		fill := segFillV5(rows, t.segRows, i, nsegs)
		dictB, dictErr := readSection(r)
		if dictB == nil && dictErr != nil {
			return sectionError(ctx, name, i, secDict, dictErr)
		}
		image, imageErr := readSection(r)
		if image == nil && imageErr != nil {
			return sectionError(ctx, name, i, secIndex, imageErr)
		}
		s, cse := decodeStrSegment(cs, name, i, mode, dictB, dictErr, image, imageErr, fill, ctx)
		if cse != nil {
			if err := quarantineOrFail(ctx, cse, fill); err != nil {
				return err
			}
			dict, err := column.Reconstruct(name, make([]int32, fill), []string{""})
			if err != nil {
				return fmt.Errorf("%w: column %s: placeholder: %v", ErrCorrupt, name, err)
			}
			s = &strSegment{dict: dict, gen: cs.nextGen()}
			cs.rebuildSegmentIndex(s)
		}
		//imprintvet:allow snapshotsafe loading into a freshly constructed column, not yet shared
		cs.segs = append(cs.segs, s)
		n += fill
	}
	return installLoadedColumn(t, name, cs, n)
}

func decodeStrSegment(cs *strColState, name string, i int, mode IndexMode, dictB []byte, dictErr error, image []byte, imageErr error, fill int, ctx *loadCtx) (*strSegment, *CorruptSegmentError) {
	if dictErr != nil {
		return nil, sectionError(ctx, name, i, secDict, dictErr)
	}
	dr := bytes.NewReader(dictB)
	dict, err := readDict(dr, name, uint64(fill))
	if err != nil {
		return nil, sectionError(ctx, name, i, secDict, err)
	}
	if dr.Len() != 0 {
		return nil, sectionError(ctx, name, i, secDict, fmt.Errorf("%d trailing bytes", dr.Len()))
	}
	if dict.Codes().Len() != fill {
		return nil, sectionError(ctx, name, i, secDict, fmt.Errorf("segment has %d rows, want %d", dict.Codes().Len(), fill))
	}
	if imageErr != nil {
		return nil, sectionError(ctx, name, i, secIndex, imageErr)
	}
	ir := bytes.NewReader(image)
	ix, err := readIndexImage(ir, name, mode, dict.Codes().Values())
	if err != nil {
		return nil, sectionError(ctx, name, i, secIndex, err)
	}
	if ir.Len() != 0 {
		return nil, sectionError(ctx, name, i, secIndex, fmt.Errorf("%d trailing bytes", ir.Len()))
	}
	s := &strSegment{dict: dict, ix: ix, gen: cs.nextGen()}
	if ix == nil {
		cs.rebuildSegmentIndex(s)
	}
	return s, nil
}

// ---- sharded envelope (v6) ----

// writeShardedV6 persists the sharded envelope: a checksummed header
// section, then per shard a length-prefixed complete v5 image.
//
//imprintvet:locks held=mu.R
func (t *Table) writeShardedV6(bw io.Writer) error {
	sh := t.shard
	if err := writeSection(bw, func(buf *bytes.Buffer) error {
		if err := writeString(buf, t.name); err != nil {
			return err
		}
		if err := binary.Write(buf, binary.LittleEndian, uint32(t.segRows)); err != nil {
			return err
		}
		return binary.Write(buf, binary.LittleEndian, uint16(sh.nshards))
	}); err != nil {
		return err
	}
	for c, kid := range sh.kids {
		var buf bytes.Buffer
		if err := kid.Write(&buf); err != nil {
			return fmt.Errorf("table %s, shard %d: %w", t.name, c, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(buf.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// readShardedV6 loads the v6 envelope; the caller consumed
// magic+version.
func readShardedV6(br io.Reader, ctx *loadCtx) (*Table, error) {
	hdr, err := readSection(br)
	if err != nil {
		return nil, sectionError(ctx, "", -1, secHeader, err)
	}
	hr := bytes.NewReader(hdr)
	name, err := readString(hr)
	if err != nil {
		return nil, sectionError(ctx, "", -1, secHeader, err)
	}
	ctx.table = name
	var sr uint32
	if err := binary.Read(hr, binary.LittleEndian, &sr); err != nil {
		return nil, sectionError(ctx, "", -1, secHeader, err)
	}
	var nshards uint16
	if err := binary.Read(hr, binary.LittleEndian, &nshards); err != nil {
		return nil, sectionError(ctx, "", -1, secHeader, err)
	}
	if hr.Len() != 0 {
		return nil, sectionError(ctx, "", -1, secHeader, fmt.Errorf("%d trailing bytes", hr.Len()))
	}
	if nshards < 2 {
		return nil, fmt.Errorf("%w: sharded envelope with %d shards", ErrCorrupt, nshards)
	}
	t := NewWithOptions(name, TableOptions{SegmentRows: int(sr), Shards: int(nshards)})
	if t.segRows != int(sr) {
		return nil, fmt.Errorf("%w: segment size %d is not a whole number of blocks", ErrCorrupt, sr)
	}
	sh := t.shard
	for c := 0; c < int(nshards); c++ {
		var n uint64
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("%w: shard %d: %v", ErrCorrupt, c, err)
		}
		ctx.shard = c
		kid, err := readInternal(io.LimitReader(br, int64(n)), ctx)
		ctx.shard = -1
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", c, err)
		}
		if kid.shard != nil {
			return nil, fmt.Errorf("%w: shard %d is itself sharded", ErrCorrupt, c)
		}
		if kid.name != name || kid.segRows != t.segRows {
			return nil, fmt.Errorf("%w: shard %d image (table %q, %d rows/segment) does not match envelope (%q, %d)",
				ErrCorrupt, c, kid.name, kid.segRows, name, t.segRows)
		}
		if c == 0 {
			t.order = append([]string(nil), kid.order...)
		} else if len(kid.order) != len(t.order) {
			return nil, fmt.Errorf("%w: shard %d carries %d columns, shard 0 carries %d",
				ErrCorrupt, c, len(kid.order), len(t.order))
		} else {
			for i, col := range kid.order {
				if col != t.order[i] {
					return nil, fmt.Errorf("%w: shard %d column %d is %q, shard 0 has %q",
						ErrCorrupt, c, i, col, t.order[i])
				}
			}
		}
		sh.kids[c] = kid
	}
	// The table is still being constructed and has not escaped to any
	// other goroutine, so the commit tokens cannot be contended yet.
	//imprintvet:allow locksafe freshly constructed table, not yet shared
	sh.refreshRowsLocked()
	return t, nil
}

// ---- file-level entry points ----

// fsysOr returns the table's injected filesystem, defaulting to the
// real one.
func (t *Table) fsysOr() faultfs.FS {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.fsys != nil {
		return t.fsys
	}
	return faultfs.OS{}
}

// WriteFile persists the table atomically: the image is written to a
// temp file, fsynced, renamed over the destination, and the parent
// directory fsynced — a crash anywhere leaves either the old image or
// the new one, never a torn mix. Once the rename is durable, the WAL
// checkpoint cut during the drain is applied, truncating log segments
// the image supersedes.
func (t *Table) WriteFile(path string) error {
	fsys := t.fsysOr()
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return err
	}
	t.walCheckpoint()
	return nil
}

// Open loads a table image from a file, optionally through an injected
// filesystem and with quarantine enabled. The returned LoadReport is
// non-nil on success; the table remembers the filesystem for later
// WriteFile/WAL use.
func Open(path string, opts LoadOptions) (*Table, *LoadReport, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	f, err := fsys.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	t, rep, err := ReadWithOptions(f, opts)
	if err != nil {
		return nil, nil, err
	}
	t.fsys = fsys
	return t, rep, nil
}

// ReadWithOptions loads a table persisted with Write, applying the
// given load policy. With Quarantine set, segment-level corruption in
// v5/v6 images is tolerated: the table loads degraded (damaged
// segments emptied, their rows marked deleted) and the report lists
// the casualties.
func ReadWithOptions(r io.Reader, opts LoadOptions) (*Table, *LoadReport, error) {
	ctx := &loadCtx{opts: opts, shard: -1, rep: &LoadReport{}}
	t, err := readInternal(r, ctx)
	if err != nil {
		return nil, nil, err
	}
	t.quarantined = ctx.rep.Quarantined
	return t, ctx.rep, nil
}
