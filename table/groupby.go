package table

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/coltype"
	"repro/internal/core"
)

// GroupBy partitions the qualifying rows by a low-cardinality key
// column — integer or dictionary-encoded string — and aggregates each
// group. Per-segment workers group by a cheap local key (the raw
// integer, or the segment dictionary's int32 code for strings), and
// each segment's groups are remapped to the global key space (the
// decoded symbol) when its partials are emitted, so per-segment
// dictionaries never leak into results. The consumer merges group
// partials in segment order and sorts groups by key, so grouped
// results are identical at every parallelism level.

// GroupedQuery is a Query with a grouping key attached; Aggregate
// executes it.
type GroupedQuery struct {
	q   *Query
	key string
}

// GroupBy attaches a grouping key column to the query. The key must be
// an integer or string column (float keys are rejected — bucket them
// into an integer column instead).
func (q *Query) GroupBy(col string) *GroupedQuery {
	return &GroupedQuery{q: q, key: col}
}

// Group is one key's aggregate results.
type Group struct {
	// Key is the group key: int64 for integer key columns, string for
	// string key columns.
	Key any
	// Rows is the number of qualifying rows in the group.
	Rows uint64
	// Aggs holds one value per requested spec, in request order.
	Aggs []AggValue
}

// GroupedResult is the result of one GroupBy.Aggregate execution,
// sorted ascending by key.
type GroupedResult struct {
	// Key is the grouping column name.
	Key string
	// Groups lists every non-empty group, ascending by key.
	Groups []Group
}

// Find returns the group with the given key (int64 or string,
// matching the key column type).
func (r *GroupedResult) Find(key any) (Group, bool) {
	for _, g := range r.Groups {
		if g.Key == key {
			return g, true
		}
	}
	return Group{}, false
}

// groupKey is a group's identity in the global key space.
type groupKey struct {
	i     int64
	s     string
	isStr bool
}

func (k groupKey) value() any {
	if k.isStr {
		return k.s
	}
	return k.i
}

// less orders groups for the deterministic final sort.
func (k groupKey) less(o groupKey) bool {
	if k.isStr {
		return k.s < o.s
	}
	return k.i < o.i
}

// segGrouper extracts group keys for one segment: a cheap local int64
// key per row, finalized to the global key space per group.
type segGrouper interface {
	keyAt(local uint32) int64
	finalize(localKey int64) groupKey
}

// groupOut is one group's partial results from one segment, already in
// the global key space.
type groupOut struct {
	key   groupKey
	rows  uint64
	parts []aggPartial
}

// ---- keyers ----

func (c *colState[V]) groupCheck() error {
	if !isIntType[V]() {
		return fmt.Errorf("column %q is %s: GroupBy keys must be integer or string columns",
			c.name, coltype.TypeName[V]())
	}
	return nil
}

//imprintvet:locks held=mu.R
func (c *colState[V]) grouper(s int) segGrouper { return numGrouper[V]{vals: c.segs[s].vals} }

type numGrouper[V coltype.Value] struct{ vals []V }

func (g numGrouper[V]) keyAt(local uint32) int64  { return int64(g.vals[local]) }
func (g numGrouper[V]) finalize(k int64) groupKey { return groupKey{i: k} }

func (c *strColState) groupCheck() error { return nil }

//imprintvet:locks held=mu.R
func (c *strColState) grouper(s int) segGrouper {
	seg := c.segs[s]
	return strGrouper{seg: seg, codes: seg.codes()}
}

// strGrouper groups by segment-local dictionary code — one int64
// compare per row — and decodes each group's code to its symbol once,
// remapping the segment's private code space to the global key space.
type strGrouper struct {
	seg   *strSegment
	codes []int32
}

func (g strGrouper) keyAt(local uint32) int64 { return int64(g.codes[local]) }
func (g strGrouper) finalize(k int64) groupKey {
	return groupKey{s: g.seg.dict.Symbol(int32(k)), isStr: true}
}

// ---- execution ----

// groupSegment is the per-segment grouping worker: every qualifying
// row reads its key and folds into that group's accumulators. Keys
// vary row to row, so grouped aggregation always visits rows (no
// summary or wholesale pushdown); exact runs still skip the residual
// check.
//
//imprintvet:locks held=mu.R
func (g *GroupedQuery) groupSegment(en *execNode, s int, binds []aggBind, keyCol anyColumn) segOut {
	var o segOut
	q := g.q
	t := q.t
	ev := t.evalSegment(en, s, q.opts, &o.st, false)
	grouper := keyCol.grouper(s)
	type groupAcc struct {
		rows uint64
		accs []segAgg
	}
	groups := map[int64]*groupAcc{}
	fold := func(local uint32) {
		k := grouper.keyAt(local)
		ga := groups[k]
		if ga == nil {
			ga = &groupAcc{accs: make([]segAgg, len(binds))}
			for i, b := range binds {
				if b.col != nil {
					ga.accs[i] = b.col.aggAcc(b.spec.op, s)
				}
			}
			groups[k] = ga
		}
		ga.rows++
		o.count++
		for _, acc := range ga.accs {
			if acc != nil {
				acc.addRow(local)
			}
		}
	}
	t.aggWalk(s, ev, &o.st,
		func(from, to int) {
			for local := from; local < to; local++ {
				fold(uint32(local))
			}
		},
		func(base int, mask uint64) {
			for mask != 0 {
				i := bits.TrailingZeros64(mask)
				mask &= mask - 1
				fold(uint32(base + i))
			}
		})
	releaseEval(&ev)
	// Emit in sorted key order so map iteration order never leaks into
	// the merge: per-key float folds then happen in a fixed order at
	// every parallelism level (same defense as shardagg's dkeys sort).
	keys := make([]int64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	o.groups = make([]groupOut, 0, len(groups))
	for _, k := range keys {
		ga := groups[k]
		out := groupOut{key: grouper.finalize(k), rows: ga.rows, parts: make([]aggPartial, len(binds))}
		for i, acc := range ga.accs {
			if acc != nil {
				out.parts[i] = acc.partial()
			} else {
				out.parts[i] = aggPartial{rows: ga.rows}
			}
		}
		o.groups = append(o.groups, out)
	}
	return o
}

// Aggregate executes the grouped aggregation: per-segment partial
// groups merged in segment order (each group's partials merge
// commutatively, so results are identical at every parallelism level),
// then sorted ascending by key. Limit does not apply to grouped
// aggregation (except Limit(0), which returns no groups).
func (g *GroupedQuery) Aggregate(specs ...AggSpec) (*GroupedResult, core.QueryStats, error) {
	q := g.q
	if q.t.shard != nil {
		return g.shardAggregate(specs)
	}
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	var st core.QueryStats
	if q.order != nil {
		return nil, st, fmt.Errorf("table %s: OrderBy does not apply to GroupBy aggregation", q.t.name)
	}
	if q.limited && q.limit > 0 {
		return nil, st, fmt.Errorf("table %s: Limit does not apply to GroupBy aggregation (drop the limit or use Limit(0))", q.t.name)
	}
	binds, err := q.t.resolveAggs(specs)
	if err != nil {
		return nil, st, err
	}
	if err := q.checkProjection(); err != nil {
		return nil, st, err
	}
	keyCol, ok := q.t.cols[g.key]
	if !ok {
		return nil, st, fmt.Errorf("table %s: no column %q", q.t.name, g.key)
	}
	if err := keyCol.groupCheck(); err != nil {
		return nil, st, fmt.Errorf("table %s: %w", q.t.name, err)
	}
	res := &GroupedResult{Key: g.key}
	if q.limited && q.limit == 0 {
		return res, st, nil
	}
	en, err := q.bind()
	if err != nil {
		return nil, st, err
	}
	type mergedGroup struct {
		rows  uint64
		parts []aggPartial
	}
	merged := map[groupKey]*mergedGroup{}
	nsegs := q.t.segCount()
	if err := q.t.forEachSegment(q.opts.Ctx, nsegs, resolveParallelism(q.opts, nsegs),
		func(s int) segOut { return g.groupSegment(en, s, binds, keyCol) },
		func(s int, o segOut) bool {
			st.Add(o.st)
			for _, gr := range o.groups {
				mg := merged[gr.key]
				if mg == nil {
					mg = &mergedGroup{parts: make([]aggPartial, len(binds))}
					merged[gr.key] = mg
				}
				mg.rows += gr.rows
				for i := range binds {
					mg.parts[i].mergeInto(binds[i].spec.op, gr.parts[i])
				}
			}
			return true
		}); err != nil {
		return nil, st, q.t.abortErr(err)
	}
	// Buffered delta rows fold after the segment merge: per-group delta
	// accumulators produce one partial per group, merged exactly once,
	// so results stay deterministic at every parallelism level.
	if view := q.t.deltaViewLocked(); view != nil {
		match := view.matcher(en)
		kci := view.colIdx(g.key)
		cis := make([]int, len(binds))
		for i, b := range binds {
			if b.col != nil {
				cis[i] = view.colIdx(b.spec.col)
			}
		}
		type deltaGroup struct {
			rows uint64
			accs []deltaAgg
		}
		dgroups := map[groupKey]*deltaGroup{}
		view.scan(match, &st, func(_ int, row []any) bool {
			k := keyCol.deltaGroupKey(row[kci])
			dg := dgroups[k]
			if dg == nil {
				dg = &deltaGroup{accs: make([]deltaAgg, len(binds))}
				for i, b := range binds {
					if b.col != nil {
						dg.accs[i] = b.col.deltaAgg(b.spec.op)
					}
				}
				dgroups[k] = dg
			}
			dg.rows++
			for i, acc := range dg.accs {
				if acc != nil {
					acc.add(row[cis[i]])
				}
			}
			return true
		})
		for k, dg := range dgroups {
			mg := merged[k]
			if mg == nil {
				mg = &mergedGroup{parts: make([]aggPartial, len(binds))}
				merged[k] = mg
			}
			mg.rows += dg.rows
			for i := range binds {
				if dg.accs[i] != nil {
					mg.parts[i].mergeInto(binds[i].spec.op, dg.accs[i].partial())
				} else {
					mg.parts[i].mergeInto(binds[i].spec.op, aggPartial{rows: dg.rows})
				}
			}
		}
	}
	keys := make([]groupKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	res.Groups = make([]Group, len(keys))
	for gi, k := range keys {
		mg := merged[k]
		grp := Group{Key: k.value(), Rows: mg.rows, Aggs: make([]AggValue, len(binds))}
		for i, b := range binds {
			grp.Aggs[i] = mg.parts[i].value(b.spec)
		}
		res.Groups[gi] = grp
	}
	return res, st, nil
}
