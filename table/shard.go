package table

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/coltype"
)

// Sharded tables (shard.go, shardexec.go): TableOptions.Shards > 1
// splits a table into N child shards, each a complete single-shard
// Table with its own RWMutex, segment lists, delta store + background
// sealer, and generation counters. Batch commits, point updates, seal
// installs and merge-compaction on different shards proceed fully
// concurrently — a seal install takes only the owning shard's write
// lock, so readers and writers on every other shard are never blocked
// by it. The parent Table carries no column storage of its own: its
// lock guards only the schema mirror (t.order), which changes solely
// under AddColumn / load.
//
// Global row ids interleave the shards' segments round-robin: global
// segment g lives on shard g%N as that shard's local segment g/N, so
// global id = ((lid/S)*N + c)*S + lid%S for shard c, local id lid,
// and S = SegmentRows. Serial commits fill global segments in order,
// producing exactly the ids an unsharded table would assign — which is
// what lets the oracle pin sharded results byte-identical at every
// shard count. Concurrent commits may leave transient holes in the
// global id space (shards fill at independent rates); queries are
// indifferent, since they enumerate whatever (shard, segment) units
// exist and merge in global-segment order.
//
// Commit routing is lock-free with respect to the shards themselves:
// a committer try-locks the per-shard commit tokens, picks the
// acquired shard whose next free global id is lowest, and appends a
// chunk bounded by that shard's segment boundary. Shard fill levels
// are tracked in per-shard atomic counters so routing never touches a
// shard's RWMutex (which a seal install may hold).
//
// The package-wide lock order (checked by imprintvet's locksafe):
// a sealer's sealMu orders before its table's mu; the parent table's
// mu orders before the commit tokens; the tokens order before any kid
// shard's mu ("kid" is the class of a child Table's mu as seen from
// the parent); the WAL serialization mutex walMu nests inside every
// table lock (commit: mu.R -> walMu; update/delete: mu -> walMu) and
// is never held while waiting for durability; a leaf plan's cacheMu
// nests innermost (taken under an execution's read lock, never
// holding anything else).
//
//imprintvet:lockorder sealMu,mu,tokens,kid,walMu,cacheMu
type shardState struct {
	nshards int
	segRows int
	kids    []*Table
	// tokens serialize commits per shard; they order after the parent
	// lock and before any kid lock (commit: parent.RLock -> token ->
	// kid lock inside kid.Commit; admin: parent.Lock -> all tokens ->
	// kid locks inside kid calls).
	tokens []sync.Mutex
	// rows tracks each shard's total local rows (sealed + delta),
	// updated under the shard's token after a successful commit and
	// refreshed under all tokens after compaction/load. Routing and
	// Rows() read it without any lock.
	rows []atomic.Int64
	// ingest records that EnableDeltaIngest ran (guarded by the parent
	// write lock; enabling is one-way).
	ingest bool
}

func newShardState(segRows, nshards int) *shardState {
	return &shardState{
		nshards: nshards,
		segRows: segRows,
		tokens:  make([]sync.Mutex, nshards),
		rows:    make([]atomic.Int64, nshards),
	}
}

// gidOf maps a shard's local row id to the global id space: local
// segment lid/S of shard c is global segment (lid/S)*N + c.
func (sh *shardState) gidOf(c, lid int) int {
	s := sh.segRows
	return ((lid/s)*sh.nshards+c)*s + lid%s
}

// decode maps a global row id to its owning shard and local id.
// Negative ids route to shard 0 unchanged so the kid's range check
// reports them.
func (sh *shardState) decode(gid int) (c, lid int) {
	if gid < 0 {
		return 0, gid
	}
	s := sh.segRows
	gseg := gid / s
	return gseg % sh.nshards, (gseg/sh.nshards)*s + gid%s
}

// totalRows sums the per-shard row counters (sealed + buffered).
func (sh *shardState) totalRows() int {
	n := 0
	for c := range sh.rows {
		n += int(sh.rows[c].Load())
	}
	return n
}

// lockTokens acquires every commit token in shard order (admin
// operations quiesce commits this way); unlockTokens releases them.
//
//imprintvet:locks returns-held=tokens
func (sh *shardState) lockTokens() {
	for c := range sh.tokens {
		sh.tokens[c].Lock()
	}
}

//imprintvet:locks releases=tokens
func (sh *shardState) unlockTokens() {
	for c := len(sh.tokens) - 1; c >= 0; c-- {
		sh.tokens[c].Unlock()
	}
}

// refreshRowsLocked re-seeds the routing counters from the kids'
// actual row counts; callers hold every commit token.
//
//imprintvet:locks held=tokens
func (sh *shardState) refreshRowsLocked() {
	for c, kid := range sh.kids {
		sh.rows[c].Store(int64(kid.Rows()))
	}
}

// shardRLock read-locks every kid in ascending shard order (query
// executions hold all of them for the duration of the merge, exactly
// as an unsharded execution holds its one table lock).
//
//imprintvet:locks returns-held=kid.R
func (t *Table) shardRLock() {
	for _, kid := range t.shard.kids {
		kid.mu.RLock()
	}
}

//imprintvet:locks releases=kid.R
func (t *Table) shardRUnlock() {
	kids := t.shard.kids
	for i := len(kids) - 1; i >= 0; i-- {
		kids[i].mu.RUnlock()
	}
}

// ---- commit routing ----

// route picks the shard the next commit chunk lands on and returns
// with that shard's token held. It try-locks every free token and
// keeps the acquired shard whose next free global id is lowest — so
// a lone writer fills global segments in exactly unsharded order,
// while concurrent writers spread across whatever shards are free.
//
//imprintvet:locks returns-held=tokens
func (sh *shardState) route() int {
	best := -1
	bestGid := 0
	for c := range sh.tokens {
		if !sh.tokens[c].TryLock() {
			continue
		}
		gid := sh.gidOf(c, int(sh.rows[c].Load()))
		if best < 0 || gid < bestGid {
			if best >= 0 {
				sh.tokens[best].Unlock()
			}
			best, bestGid = c, gid
		} else {
			sh.tokens[c].Unlock()
		}
	}
	if best >= 0 {
		return best
	}
	// Every token is busy: block on the shard that currently looks
	// least filled. The peek is racy, but that only affects placement
	// quality, never correctness.
	best, bestGid = 0, sh.gidOf(0, int(sh.rows[0].Load()))
	for c := 1; c < sh.nshards; c++ {
		if gid := sh.gidOf(c, int(sh.rows[c].Load())); gid < bestGid {
			best, bestGid = c, gid
		}
	}
	sh.tokens[best].Lock()
	return best
}

// commitSharded routes a staged batch across the shards in
// segment-bounded chunks. Rows land contiguously within each chunk;
// a chunk never spans a shard's segment boundary, so every chunk maps
// to one run of global ids. The parent read lock keeps the schema
// stable; it is never write-held by seals, so commits on one shard
// proceed while another shard's sealer installs.
func (b *Batch) commitSharded() error {
	if b.rows <= 0 {
		b.staged = map[string]stagedCol{}
		b.rows = -1
		return nil
	}
	t := b.t
	sh := t.shard
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, name := range t.order {
		if _, ok := b.staged[name]; !ok {
			return fmt.Errorf("table %s: batch is missing column %q", t.name, name)
		}
	}
	for from := 0; from < b.rows; {
		c := sh.route()
		lrows := int(sh.rows[c].Load())
		n := min(b.rows-from, t.segRows-lrows%t.segRows)
		if err := sh.commitChunk(c, b, from, from+n); err != nil {
			sh.tokens[c].Unlock()
			return err
		}
		sh.rows[c].Add(int64(n))
		sh.tokens[c].Unlock()
		from += n
	}
	b.staged = map[string]stagedCol{}
	b.rows = -1
	return nil
}

// commitChunk re-stages rows [from, to) of the parent batch into a
// child batch on shard c and commits it there (the child takes the
// delta-ingest or columnar path on its own); callers hold shard c's
// token.
//
//imprintvet:locks held=tokens acquires=kid
func (sh *shardState) commitChunk(c int, b *Batch, from, to int) error {
	cb := sh.kids[c].NewBatch()
	for _, sc := range b.staged {
		if err := sc.slice(cb, from, to); err != nil {
			return err
		}
	}
	return cb.Commit()
}

// ---- columns ----

// shardDenseSplit partitions a dense global value slice into per-shard
// local slices following the round-robin segment interleave.
func shardDenseSplit[T any](vals []T, segRows, nshards int) [][]T {
	parts := make([][]T, nshards)
	for g := 0; g*segRows < len(vals); g++ {
		lo := g * segRows
		hi := min(lo+segRows, len(vals))
		parts[g%nshards] = append(parts[g%nshards], vals[lo:hi]...)
	}
	return parts
}

// denseKidRows is the local row count shard c holds when total global
// rows are packed densely (no holes): the sum of its owned global
// segments' fills.
func denseKidRows(total, segRows, nshards, c int) int {
	rows := 0
	for g := c; g*segRows < total; g += nshards {
		rows += min(total-g*segRows, segRows)
	}
	return rows
}

// checkShardDense validates a new column definition against the
// sharded layout; callers hold the parent write lock and all tokens.
// Splitting a flat value slice across shards is only well defined when
// the global id space is packed (serial commits, or a fresh/compacted
// table) — concurrent commits can leave holes that no flat slice can
// address.
func (t *Table) checkShardDense(name string, nvals int) error {
	sh := t.shard
	for _, have := range t.order {
		if have == name {
			return fmt.Errorf("table %s: column %q already exists", t.name, name)
		}
	}
	total := 0
	for _, kid := range sh.kids {
		total += kid.Rows()
	}
	if len(t.order) == 0 {
		// First column: the kids are empty and the install seeds each
		// with its dense split — nothing to validate yet.
		return nil
	}
	if nvals != total {
		return fmt.Errorf("table %s: column %q has %d rows, table has %d",
			t.name, name, nvals, total)
	}
	for c, kid := range sh.kids {
		if want := denseKidRows(total, t.segRows, sh.nshards, c); kid.Rows() != want {
			return &ShardDenseError{Table: t.name, Column: name, Shard: c, Have: kid.Rows(), Want: want}
		}
	}
	return nil
}

// addColumnSharded splits the dense global values across the shards
// and installs the column on each; callers own nothing (it locks the
// parent and quiesces commits itself).
func addColumnSharded[V any](t *Table, name string, vals []V, install func(kid *Table, part []V) error) error {
	sh := t.shard
	t.mu.Lock()
	defer t.mu.Unlock()
	sh.lockTokens()
	defer sh.unlockTokens()
	if len(sh.kids) > 0 {
		// The kid check would also catch this, but only after earlier
		// kids applied the change; refuse up front so no shard diverges.
		if sh.kids[0].walPtr() != nil {
			return fmt.Errorf("table %s: schema changes are not supported with a write-ahead log attached", t.name)
		}
	}
	if err := t.checkShardDense(name, len(vals)); err != nil {
		return err
	}
	parts := shardDenseSplit(vals, t.segRows, sh.nshards)
	for c, kid := range sh.kids {
		if err := install(kid, parts[c]); err != nil {
			// The checks a kid install runs are identical across kids and
			// checkShardDense pre-validated counts, so a failure here hits
			// the first kid before anything was applied anywhere.
			return err
		}
	}
	t.order = append(t.order, name)
	sh.refreshRowsLocked()
	return nil
}

// shardColumn materializes a typed column of a sharded table in
// ascending global-id order (sealed segments and buffered delta rows
// of every shard, merged by id).
func shardColumn[V coltype.Value](t *Table, name string) ([]V, error) {
	sh := t.shard
	t.shardRLock()
	defer t.shardRUnlock()
	type ent struct {
		gid int
		v   V
	}
	var out []ent
	for c, kid := range sh.kids {
		cs, err := typedCol[V](kid, name)
		if err != nil {
			return nil, err
		}
		lid := 0
		for _, s := range cs.segs {
			for _, v := range s.vals {
				out = append(out, ent{sh.gidOf(c, lid), v})
				lid++
			}
		}
		if view := kid.deltaViewLocked(); view != nil {
			if ci := view.colIdx(name); ci >= 0 {
				for i, row := range view.rows {
					out = append(out, ent{sh.gidOf(c, view.base+i), row[ci].(V)})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gid < out[j].gid })
	vals := make([]V, len(out))
	for i, e := range out {
		vals[i] = e.v
	}
	return vals, nil
}

// shardStringColumn is shardColumn for dictionary-encoded columns.
func (t *Table) shardStringColumn(name string) ([]string, error) {
	sh := t.shard
	t.shardRLock()
	defer t.shardRUnlock()
	type ent struct {
		gid int
		v   string
	}
	var out []ent
	for c, kid := range sh.kids {
		cs, err := strCol(kid, name)
		if err != nil {
			return nil, err
		}
		for lid, v := range cs.decodeAll() {
			out = append(out, ent{sh.gidOf(c, lid), v})
		}
		if view := kid.deltaViewLocked(); view != nil {
			if ci := view.colIdx(name); ci >= 0 {
				for i, row := range view.rows {
					out = append(out, ent{sh.gidOf(c, view.base+i), row[ci].(string)})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gid < out[j].gid })
	vals := make([]string, len(out))
	for i, e := range out {
		vals[i] = e.v
	}
	return vals, nil
}

// ---- administration ----

// shardIndexStats merges one column's index stats across shards
// (saturation re-weighted by indexed segment counts).
func (t *Table) shardIndexStats(name string) (ColumnIndexStats, error) {
	var st ColumnIndexStats
	var sat float64
	for _, kid := range t.shard.kids {
		ks, err := kid.IndexStats(name)
		if err != nil {
			return ColumnIndexStats{}, err
		}
		st.Segments += ks.Segments
		st.IndexedSegments += ks.IndexedSegments
		st.StoredVectors += ks.StoredVectors
		st.DictEntries += ks.DictEntries
		st.SizeBytes += ks.SizeBytes
		sat += ks.Saturation * float64(ks.IndexedSegments)
	}
	if st.IndexedSegments > 0 {
		st.Saturation = sat / float64(st.IndexedSegments)
	}
	return st, nil
}

// shardCompact compacts every shard with commits quiesced. Each shard
// renumbers its surviving rows locally (no cross-shard id exchange, no
// global stop-the-world beyond the commit tokens), so global ids
// change exactly as each shard's local ids do.
func (t *Table) shardCompact() int {
	sh := t.shard
	t.mu.Lock()
	defer t.mu.Unlock()
	sh.lockTokens()
	defer sh.unlockTokens()
	removed := 0
	for _, kid := range sh.kids {
		removed += kid.Compact()
	}
	sh.refreshRowsLocked()
	return removed
}

// shardMaintain runs the maintenance pass shard by shard and merges
// the reports; commits are quiesced so a triggered compaction cannot
// race the routing counters.
func (t *Table) shardMaintain(opts MaintainOptions) MaintenanceReport {
	sh := t.shard
	sh.lockTokens()
	defer sh.unlockTokens()
	var rep MaintenanceReport
	seen := map[string]bool{}
	for _, kid := range sh.kids {
		kr := kid.Maintain(opts)
		for _, name := range kr.Rebuilt {
			if !seen[name] {
				seen[name] = true
				rep.Rebuilt = append(rep.Rebuilt, name)
			}
		}
		rep.SegmentsRebuilt += kr.SegmentsRebuilt
		rep.Compacted = rep.Compacted || kr.Compacted
		rep.RowsRemoved += kr.RowsRemoved
		rep.DeltaRows += kr.DeltaRows
		rep.MergeBacklog += kr.MergeBacklog
		rep.SealRetries += kr.SealRetries
		rep.SealBackoff = max(rep.SealBackoff, kr.SealBackoff)
	}
	sort.Strings(rep.Rebuilt)
	sh.refreshRowsLocked()
	return rep
}

// ---- ingest control ----

func (t *Table) shardEnableDeltaIngest(opts IngestOptions) error {
	sh := t.shard
	t.mu.Lock()
	defer t.mu.Unlock()
	if sh.ingest {
		return fmt.Errorf("table %s: delta ingest already enabled", t.name)
	}
	for _, kid := range sh.kids {
		if err := kid.EnableDeltaIngest(opts); err != nil {
			return err
		}
	}
	sh.ingest = true
	return nil
}

func (t *Table) shardIngestStats() IngestStats {
	var st IngestStats
	perShard := make([]int, len(t.shard.kids))
	for c, kid := range t.shard.kids {
		ks := kid.IngestStats()
		st.Enabled = st.Enabled || ks.Enabled
		st.DeltaRows += ks.DeltaRows
		st.Seals += ks.Seals
		st.SealedSegments += ks.SealedSegments
		st.SealedRows += ks.SealedRows
		st.SealRetries += ks.SealRetries
		st.Flushes += ks.Flushes
		st.FlushedRows += ks.FlushedRows
		st.Merges += ks.Merges
		st.MergeBacklog += ks.MergeBacklog
		st.Compactions += ks.Compactions
		st.WALEnabled = st.WALEnabled || ks.WALEnabled
		if st.WALError == "" {
			st.WALError = ks.WALError
		}
		if ks.Recovery != nil {
			if st.Recovery == nil {
				st.Recovery = &RecoveryReport{}
			}
			st.Recovery.add(ks.Recovery)
		}
		perShard[c] = ks.DeltaRows
	}
	if st.Enabled {
		st.ShardDeltaRows = perShard
	}
	return st
}
