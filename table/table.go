// Package table provides the columnar-relation substrate around the
// imprints index: a Table is a set of equal-length typed columns with
// per-column secondary indexes (imprints or zonemaps), batch appends
// (Section 4.1), in-place updates with index widening, delete tracking,
// rebuild policies (Section 4.2), tuple reconstruction (ReadRow), whole-
// table persistence, and a composable predicate engine that evaluates
// Range/AtLeast/LessThan/Equals/In leaves (plus StrRange and friends on
// dictionary-encoded string columns) under AND/OR/AND-NOT trees with
// late materialization (Section 3), choosing between index and scan per
// leaf based on estimated selectivity.
//
// Storage is horizontally segmented: every column is split into
// fixed-size segments (TableOptions.SegmentRows rows, 64K by default),
// each owning its value slab and its own secondary index plus a
// min/max summary. Appends land in the active tail segment only, index
// saturation rebuilds are segment-local, and queries evaluate segments
// independently — pruning segments whose summary provably excludes the
// predicate and fanning the rest out across a bounded worker pool
// (SelectOptions.Parallelism), merging in segment order so results are
// deterministic.
//
// The front door is the lazy Query builder:
//
//	q := t.Select("price", "city").Where(pred).Limit(10)
//	for id, row := range q.Rows() { ... }
//
// Queries execute via Rows (a streaming iterator), IDs, Count, and
// Explain, which renders the per-leaf access-path plan including the
// per-segment decisions (pruned / imprints / zonemap / scan).
//
// Execution inside each segment is vectorized: candidate runs are
// walked 64 rows (one machine word) at a time, each predicate leaf
// evaluates a block of its value slab into a selection bitmask with a
// monomorphized branch-light kernel, And/Or/AndNot combine masks
// word-wise, and the deleted bitmap folds in with one word-AND per
// block — so the residual check behind the imprints' cacheline pruning
// costs one dynamic call per leaf per 64 rows, not per row.
// QueryStats.BlocksVectorized (and the Explain preview) make the tier
// observable; SelectOptions.Scalar forces the row-at-a-time baseline,
// which returns byte-identical results and statistics.
//
// Results compose into a segment-parallel aggregation pipeline:
// Aggregate folds typed aggregates inside the segment workers
// (fully-selected, delete-free segments answer Min/Max from their
// summaries and count(*) from the row count without touching values —
// see ExplainAggregate and QueryStats.SummaryAggRows), GroupBy
// partitions by integer or dictionary-encoded string keys, and
// OrderBy + Limit runs a bounded top-k over per-segment heaps:
//
//	res, _, _ := t.Select().Where(pred).Aggregate(table.Sum("qty"), table.CountAll())
//	grp, _, _ := t.Select().Where(pred).GroupBy("city").Aggregate(table.Avg("price"))
//	top, _, _ := t.Select().Where(pred).OrderBy(table.Desc("price")).Limit(10).IDs()
//
// For serving workloads that run the same predicate shape on every
// request, Table.Prepare compiles the tree once into a Prepared
// statement: columns and types are validated up front, every
// placeholder-free leaf is translated exactly once, and named
// placeholders (Param, StrParam, used through the P-suffixed leaf
// constructors) are bound per execution:
//
//	p, _ := t.Prepare(table.RangeP("price",
//	    table.Param[float64]("lo"), table.Param[float64]("hi")), table.SelectOptions{})
//	ids, _, _ := p.Bind("lo", 10.0).Bind("hi", 20.0).IDs()
//
// Ad-hoc queries route through the same compiled representation, so
// there is exactly one evaluator. A Table is safe for concurrent use:
// queries and point reads take a shared lock, while batch commits,
// updates, deletes and maintenance take it exclusively; prepared
// statements are safe for concurrent executions, and because plans
// resolve segments live at execution time — string translations are
// cached per segment and invalidated by that segment's generation
// alone — appending rows never invalidates a plan over already sealed
// segments.
package table

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/coltype"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// IndexMode selects the secondary index maintained for a column.
type IndexMode int

const (
	// Imprints builds a column imprints index (the default).
	Imprints IndexMode = iota
	// NoIndex leaves the column scan-only.
	NoIndex
	// Zonemap maintains a per-cacheline min/max zonemap instead of an
	// imprint (the paper's comparator, useful for near-sorted columns
	// where its two values per zone beat the imprint's bit vector).
	Zonemap
)

// TableOptions configures table-wide storage policy.
type TableOptions struct {
	// SegmentRows is the number of rows per storage segment. 0 means
	// DefaultSegmentRows (64K); other values are rounded up to the next
	// multiple of BlockRows so candidate-run composition always works on
	// whole blocks.
	SegmentRows int
	// Shards splits the table into that many independently locked
	// shards (shard.go): global segments route round-robin across
	// shards, each shard owns its own lock, segment lists and — with
	// EnableDeltaIngest — delta store and background sealer, so commits,
	// updates, seals and merges on different shards run fully
	// concurrently. 0 or 1 means the existing single-shard layout (and
	// the unchanged on-disk v3 format); sharded tables persist as a v4
	// envelope of per-shard v3 images.
	Shards int
}

// anyColumn is the type-erased per-column state.
type anyColumn interface {
	colName() string
	colRows() int
	colType() string
	sizeBytes() int64
	indexBytes() int64
	indexKind() string // access path name: "imprints", "zonemap", "scan"
	segments() int
	// maintain counts the segments whose index is saturated past
	// satLimit and, when rebuild is set, rebuilds exactly those.
	maintain(satLimit float64, rebuild bool) int
	compact(keep []int) // drop deleted rows (ids to keep, ascending)
	valueAt(id int) any
	// persistCRC writes the column's checksummed v5 sections.
	persistCRC(io.Writer) error
	indexStats() ColumnIndexStats
	// compileLeaf translates one predicate leaf against this column
	// exactly once: typed bounds and IN-sets are derived here and
	// nowhere else. The returned plan resolves segments live at
	// execution time (probes, pruning, residual checks and selectivity
	// estimates are all per segment).
	compileLeaf(p *leafPred) (leafPlan, error)
	// aggCheck validates an aggregate operator against the column type
	// (strings reject sum/avg).
	aggCheck(op aggOp) error
	// aggSummary answers op over every live row of segment s purely
	// from the segment summary (value slab untouched); ok is false
	// when the summary cannot answer exactly. The caller guarantees
	// full coverage and a delete-free segment and fills in rows.
	aggSummary(op aggOp, s int) (aggPartial, bool)
	// aggAcc returns a typed fold accumulator for op over segment s.
	aggAcc(op aggOp, s int) segAgg
	// groupCheck validates the column as a GroupBy key (integer and
	// string columns only).
	groupCheck() error
	// grouper returns segment s's group-key extractor: a cheap int64
	// key per row (dictionary code for strings), finalized to the
	// global key space when the segment's groups are emitted.
	grouper(s int) segGrouper
	// topkAcc returns a bounded top-k collector over segment s
	// (unbounded when k <= 0); topkMerge ranks the per-segment
	// partials globally and returns the ordered row ids.
	topkAcc(s int, desc bool, k int) segTopK
	topkMerge(parts []orderPartial, desc bool, k int) []uint32

	// ---- LSM-ingest hooks (delta.go, seal.go) ----
	// absorbAny extends the column tail with its values out of row-major
	// delta rows (position ci of each row); callers hold the write lock.
	absorbAny(rows [][]any, ci int)
	// buildSealed builds one full sealed segment (value slab, exact
	// summary, index/dictionary) from exactly segRows delta rows — run
	// outside any lock; installSealed appends the built segments under
	// the write lock.
	buildSealed(rows [][]any, ci int) any
	installSealed(built any)
	// mergeBacklog counts sealed segments whose summary was widened by
	// updates or whose index saturated past satLimit; mergeOne rewrites
	// the first such segment (exact summary, fresh index) under the
	// write lock and reports whether it found one.
	mergeBacklog(satLimit float64) int
	mergeOne(satLimit float64) bool
	// deltaAgg, deltaGroupKey and deltaOrd fold boxed delta-row values
	// into the same partial domains the segment executors merge.
	deltaAgg(op aggOp) deltaAgg
	deltaGroupKey(v any) groupKey
	deltaOrd(vals []any, ids []uint32) orderPartial
}

// colState is the concrete typed column state: an ordered list of
// fixed-size segments. All segments but the last hold exactly segRows
// values; the last (the active tail) absorbs appends until full.
type colState[V coltype.Value] struct {
	name string
	// segs is written only under the owning table's write lock and read
	// under at least its read lock (snapshotsafe enforces both).
	segs    []*segment[V] //imprintvet:guarded by=mu
	mode    IndexMode
	vpcOpts core.Options
	segRows int
}

// Table is a named relation. All exported methods (and the generic free
// functions operating on a Table) are safe for concurrent use: readers
// share the table, writers exclude everything else.
type Table struct {
	mu      sync.RWMutex
	name    string
	order   []string
	cols    map[string]anyColumn
	rows    int // sealed (columnar) rows; totalRowsLocked adds the delta
	segRows int
	// deleted is lazily sized; nil when nothing deleted.
	deleted *bitvec.Vector //imprintvet:guarded by=mu
	ndel    int
	// delta is the LSM-style ingest state; nil until enabled (the
	// pointer is assigned once under the write lock; the store behind it
	// has its own mutex).
	delta *deltaState //imprintvet:guarded by=mu
	shard *shardState // sharded layout (TableOptions.Shards > 1); nil otherwise
	// fsys is the filesystem WriteFile/checkpointing goes through (nil
	// means the real one); set by Open and EnableWAL.
	fsys faultfs.FS
	// walKeepSeq is the checkpoint baked into the loaded image: WAL
	// records in segments below it are superseded and skipped on
	// replay. Set once at load, read by EnableWAL before any
	// concurrency starts.
	walKeepSeq uint64
	// quarantined lists segments replaced by placeholders because their
	// persisted sections failed checksum verification (LoadOptions.
	// Quarantine); their rows are marked deleted. Set once at load.
	quarantined []QuarantinedSegment
}

// New creates an empty table with default options.
func New(name string) *Table { return NewWithOptions(name, TableOptions{}) }

// NewWithOptions creates an empty table with the given storage policy.
func NewWithOptions(name string, opts TableOptions) *Table {
	t := &Table{name: name, cols: map[string]anyColumn{}, segRows: normalizeSegmentRows(opts.SegmentRows)}
	if opts.Shards > 1 {
		t.shard = newShardState(t.segRows, opts.Shards)
		for c := 0; c < opts.Shards; c++ {
			t.shard.kids = append(t.shard.kids,
				NewWithOptions(name, TableOptions{SegmentRows: t.segRows}))
		}
	}
	return t
}

// normalizeSegmentRows applies the default and rounds up to a whole
// number of BlockRows blocks.
func normalizeSegmentRows(n int) int {
	if n <= 0 {
		return DefaultSegmentRows
	}
	if rem := n % BlockRows; rem != 0 {
		n += BlockRows - rem
	}
	return n
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Rows returns the number of rows, including deleted-but-not-compacted
// ones and rows still buffered in the delta store.
func (t *Table) Rows() int {
	if t.shard != nil {
		return t.shard.totalRows()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.totalRowsLocked()
}

// LiveRows returns the number of rows not marked deleted.
func (t *Table) LiveRows() int {
	if t.shard != nil {
		n := 0
		for _, kid := range t.shard.kids {
			n += kid.LiveRows()
		}
		return n
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.totalRowsLocked() - t.ndel
}

// SegmentRows returns the rows-per-segment storage granularity.
func (t *Table) SegmentRows() int { return t.segRows }

// Segments returns the current number of storage segments.
func (t *Table) Segments() int {
	if t.shard != nil {
		n := 0
		for _, kid := range t.shard.kids {
			n += kid.Segments()
		}
		return n
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.segCount()
}

// segCount returns the segment count for the current row count; callers
// hold a lock.
func (t *Table) segCount() int {
	return (t.rows + t.segRows - 1) / t.segRows
}

// segLen returns the number of rows in segment s; callers hold a lock.
func (t *Table) segLen(s int) int {
	n := t.rows - s*t.segRows
	if n > t.segRows {
		n = t.segRows
	}
	return n
}

// Columns lists column names in definition order.
func (t *Table) Columns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]string(nil), t.order...)
}

// ColumnType returns a column's value type name ("int64", "float64",
// "string", ...), so external planners (e.g. the SQL front-end) can
// choose typed literals without reflection over row values.
func (t *Table) ColumnType(name string) (string, error) {
	if t.shard != nil {
		return t.shard.kids[0].ColumnType(name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.cols[name]
	if !ok {
		return "", fmt.Errorf("table %s: no column %q", t.name, name)
	}
	return c.colType(), nil
}

// SizeBytes returns total column payload bytes.
func (t *Table) SizeBytes() int64 {
	if t.shard != nil {
		var s int64
		for _, kid := range t.shard.kids {
			s += kid.SizeBytes()
		}
		return s
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s int64
	for _, c := range t.cols {
		s += c.sizeBytes()
	}
	return s
}

// IndexBytes returns total secondary index bytes.
func (t *Table) IndexBytes() int64 {
	if t.shard != nil {
		var s int64
		for _, kid := range t.shard.kids {
			s += kid.IndexBytes()
		}
		return s
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s int64
	for _, c := range t.cols {
		s += c.indexBytes()
	}
	return s
}

// ColumnIndexStats aggregates one column's secondary-index state across
// its segments.
type ColumnIndexStats struct {
	Segments        int     // storage segments of the column
	IndexedSegments int     // segments carrying an index
	StoredVectors   int     // imprint vectors stored across segments
	DictEntries     int     // cacheline-dictionary entries across segments
	SizeBytes       int64   // total index footprint
	Saturation      float64 // mean imprint saturation over indexed segments
}

// IndexStats reports the aggregated index state of one column.
func (t *Table) IndexStats(name string) (ColumnIndexStats, error) {
	if t.shard != nil {
		return t.shardIndexStats(name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.cols[name]
	if !ok {
		return ColumnIndexStats{}, fmt.Errorf("table %s: no column %q", t.name, name)
	}
	return c.indexStats(), nil
}

// AddColumn defines a new column with initial values. All columns must
// stay the same length: the first column fixes the row count and later
// ones must match it. The values are copied on ingest — chunked into
// segments of the table's SegmentRows — so the caller's slice stays
// independent of the table.
func AddColumn[V coltype.Value](t *Table, name string, vals []V, mode IndexMode, opts core.Options) error {
	if t.shard != nil {
		return addColumnSharded(t, name, vals, func(kid *Table, part []V) error {
			return AddColumn(kid, name, part, mode, opts)
		})
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkWALSchemaChangeLocked(); err != nil {
		return err
	}
	// Layout changes flush first: the delta's row shape must match
	// t.order, and the new column's values must cover buffered rows too.
	t.flushAllLocked()
	if err := t.checkNewColumn(name, len(vals), opts); err != nil {
		return err
	}
	cs := &colState[V]{name: name, mode: mode, vpcOpts: opts, segRows: t.segRows}
	cs.absorb(vals)
	t.installColumn(name, cs, len(vals))
	return nil
}

// checkWALSchemaChangeLocked refuses layout changes on a WAL-attached
// table: logged commit records carry the column layout they were
// framed under, and replaying them against a different layout would be
// unsound. Detach (Close) and re-enable after the change instead.
//
//imprintvet:locks held=mu.R
func (t *Table) checkWALSchemaChangeLocked() error {
	if t.delta != nil && t.delta.wal != nil {
		return fmt.Errorf("table %s: schema changes are not supported with a write-ahead log attached", t.name)
	}
	return nil
}

// checkNewColumn validates a column definition; callers hold mu.
func (t *Table) checkNewColumn(name string, nvals int, opts core.Options) error {
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("table %s: column %q already exists", t.name, name)
	}
	if len(t.order) > 0 && nvals != t.rows {
		return fmt.Errorf("table %s: column %q has %d rows, table has %d",
			t.name, name, nvals, t.rows)
	}
	if err := validateOptions(opts); err != nil {
		return fmt.Errorf("table %s: column %q: %w", t.name, name, err)
	}
	return nil
}

// validateOptions rejects build options the table cannot evaluate: the
// ValuesPerCacheline override must divide BlockRows (predicate
// composition renormalizes every column's cacheline runs to 64-row
// blocks, which requires a whole number of cachelines per block), and
// MaxBins is restricted to the values core.Build accepts — erroring
// here instead of panicking inside a later rebuild.
func validateOptions(o core.Options) error {
	if vpc := o.ValuesPerCacheline; vpc != 0 && (vpc < 0 || BlockRows%vpc != 0) {
		return fmt.Errorf("ValuesPerCacheline %d must divide %d", vpc, BlockRows)
	}
	switch o.MaxBins {
	case 0, 8, 16, 32, 64:
		return nil
	}
	return fmt.Errorf("MaxBins %d must be 0, 8, 16, 32 or 64", o.MaxBins)
}

// installColumn registers a validated column; callers hold mu.
//
//imprintvet:locks held=mu
func (t *Table) installColumn(name string, c anyColumn, nvals int) {
	t.cols[name] = c
	t.order = append(t.order, name)
	if len(t.order) == 1 {
		t.rows = nvals
	}
	if t.delta != nil {
		// The store was drained before the layout change; re-anchor it
		// on the new layout and row count.
		t.delta.store.SetCols(t.order)
		t.delta.store.SetBase(t.rows)
	}
}

// Column materializes the typed values of a column into a freshly
// allocated slice (segments are concatenated), safe to keep. It
// reflects the table at call time; later updates are not visible
// through it.
func Column[V coltype.Value](t *Table, name string) ([]V, error) {
	if t.shard != nil {
		return shardColumn[V](t, name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	cs, err := typedCol[V](t, name)
	if err != nil {
		return nil, err
	}
	out := make([]V, 0, cs.colRows())
	for _, s := range cs.segs {
		out = append(out, s.vals...)
	}
	if view := t.deltaViewLocked(); view != nil {
		if ci := view.colIdx(name); ci >= 0 {
			for _, row := range view.rows {
				out = append(out, row[ci].(V))
			}
		}
	}
	return out, nil
}

// Index returns the imprints index of a single-segment column, or nil
// if unindexed. Multi-segment columns have one index per segment — use
// SegmentIndex (or IndexStats for aggregates). The returned index is
// the table's live one, outside the table lock: probing it while
// writers are active races — use queries when writers may be running.
func Index[V coltype.Value](t *Table, name string) (*core.Index[V], error) {
	if sh := t.shard; sh != nil {
		if nsegs := t.Segments(); nsegs > 1 {
			return nil, fmt.Errorf("table %s: column %q has %d segments (use SegmentIndex or IndexStats)",
				t.name, name, nsegs)
		}
		return Index[V](sh.kids[0], name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	cs, err := typedCol[V](t, name)
	if err != nil {
		return nil, err
	}
	switch len(cs.segs) {
	case 0:
		return nil, nil
	case 1:
		return cs.segs[0].ix, nil
	}
	return nil, fmt.Errorf("table %s: column %q has %d segments (use SegmentIndex or IndexStats)",
		t.name, name, len(cs.segs))
}

// SegmentIndex returns the imprints index of one segment of a column,
// or nil when that segment is unindexed.
func SegmentIndex[V coltype.Value](t *Table, name string, seg int) (*core.Index[V], error) {
	if sh := t.shard; sh != nil {
		c, lseg := 0, seg
		if seg >= 0 {
			c, lseg = seg%sh.nshards, seg/sh.nshards
		}
		return SegmentIndex[V](sh.kids[c], name, lseg)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	cs, err := typedCol[V](t, name)
	if err != nil {
		return nil, err
	}
	if seg < 0 || seg >= len(cs.segs) {
		return nil, fmt.Errorf("table %s: column %q has no segment %d (of %d)",
			t.name, name, seg, len(cs.segs))
	}
	return cs.segs[seg].ix, nil
}

func typedCol[V coltype.Value](t *Table, name string) (*colState[V], error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("table %s: no column %q", t.name, name)
	}
	cs, ok := c.(*colState[V])
	if !ok {
		return nil, fmt.Errorf("table %s: column %q holds %s, not %s",
			t.name, name, c.colType(), coltype.TypeName[V]())
	}
	return cs, nil
}

// ---- Batch appends (Section 4.1) ----

// Batch stages one append of N rows across all columns. Staged data
// lives inside the batch, so abandoning one never affects the table or
// other batches. A Batch itself is not safe for concurrent use; Commit
// applies it atomically under the table's write lock.
type Batch struct {
	t      *Table
	rows   int                  // -1 until first column staged
	staged map[string]stagedCol // staged data, one entry per column
}

// stagedCol is one column's staged batch data: the columnar commit
// action plus a boxed row accessor so delta-ingest commits can pivot
// the staging into row-major tuples, plus a typed re-stager so sharded
// commits can carve the staging into per-shard child batches.
type stagedCol struct {
	apply func()          // absorb into the columnar tail (write lock held)
	value func(i int) any // i-th staged value, boxed
	// slice stages rows [from, to) into a child batch (sharded tables
	// only; nil otherwise).
	slice func(cb *Batch, from, to int) error
}

// NewBatch starts an append batch.
func (t *Table) NewBatch() *Batch {
	return &Batch{t: t, rows: -1, staged: map[string]stagedCol{}}
}

// Append stages new values for one column of the batch. The values are
// copied, so the caller's slice may be reused afterwards.
func Append[V coltype.Value](b *Batch, name string, vals []V) error {
	if sh := b.t.shard; sh != nil {
		kid := sh.kids[0]
		kid.mu.RLock()
		_, err := typedCol[V](kid, name)
		kid.mu.RUnlock()
		if err != nil {
			return err
		}
		if err := b.stage(name, len(vals)); err != nil {
			return err
		}
		vcopy := append([]V(nil), vals...)
		b.staged[name] = stagedCol{
			value: func(i int) any { return vcopy[i] },
			slice: func(cb *Batch, from, to int) error { return Append(cb, name, vcopy[from:to]) },
		}
		return nil
	}
	b.t.mu.RLock()
	cs, err := typedCol[V](b.t, name)
	b.t.mu.RUnlock()
	if err != nil {
		return err
	}
	if err := b.stage(name, len(vals)); err != nil {
		return err
	}
	vcopy := append([]V(nil), vals...)
	b.staged[name] = stagedCol{
		// The apply closure runs later, under Commit's write lock.
		//imprintvet:allow locksafe apply closures run under Commit's write lock
		apply: func() { cs.absorb(vcopy) },
		value: func(i int) any { return vcopy[i] },
	}
	return nil
}

// AppendStrings stages new values for one string column of the batch.
func (b *Batch) AppendStrings(name string, vals []string) error {
	if sh := b.t.shard; sh != nil {
		kid := sh.kids[0]
		kid.mu.RLock()
		_, err := strCol(kid, name)
		kid.mu.RUnlock()
		if err != nil {
			return err
		}
		if err := b.stage(name, len(vals)); err != nil {
			return err
		}
		vcopy := append([]string(nil), vals...)
		b.staged[name] = stagedCol{
			value: func(i int) any { return vcopy[i] },
			slice: func(cb *Batch, from, to int) error { return cb.AppendStrings(name, vcopy[from:to]) },
		}
		return nil
	}
	b.t.mu.RLock()
	cs, err := strCol(b.t, name)
	b.t.mu.RUnlock()
	if err != nil {
		return err
	}
	if err := b.stage(name, len(vals)); err != nil {
		return err
	}
	vcopy := append([]string(nil), vals...)
	b.staged[name] = stagedCol{
		// The apply closure runs later, under Commit's write lock.
		//imprintvet:allow locksafe apply closures run under Commit's write lock
		apply: func() { cs.absorbStrings(vcopy) },
		value: func(i int) any { return vcopy[i] },
	}
	return nil
}

// stage validates one column's staging against the batch row count.
func (b *Batch) stage(name string, nvals int) error {
	if _, dup := b.staged[name]; dup {
		return fmt.Errorf("table %s: column %q already staged in this batch", b.t.name, name)
	}
	if b.rows == -1 {
		b.rows = nvals
	} else if nvals != b.rows {
		return fmt.Errorf("table %s: batch stages %d rows but column %q got %d",
			b.t.name, b.rows, name, nvals)
	}
	return nil
}

// Commit validates that every column received the same number of new
// rows and applies the batch atomically. With delta ingest enabled the
// rows buffer in the in-memory delta store under the shared lock only
// (writers never block readers; the sealer moves them to columnar
// segments off the query path). Otherwise new rows flow into each
// column's active tail segment (sealing it and opening fresh segments
// as they fill); already sealed segments — and any compiled plans over
// them — are untouched. On error nothing is applied.
func (b *Batch) Commit() error {
	if b.t.shard != nil {
		return b.commitSharded()
	}
	if b.rows <= 0 {
		b.staged = map[string]stagedCol{}
		b.rows = -1
		return nil
	}
	b.t.mu.RLock()
	if d := b.t.delta; d != nil {
		lg, lsn, err := b.commitDeltaLocked(d)
		b.t.mu.RUnlock()
		if err == nil {
			d.kickSeal()
			if lg != nil {
				// Acknowledge only once the logged batch is durable
				// (fsync policy decides what that costs); waiting
				// happens outside every lock.
				err = lg.WaitDurable(lsn)
			}
		}
		return err
	}
	b.t.mu.RUnlock()
	b.t.mu.Lock()
	if d := b.t.delta; d != nil {
		// Delta ingest was enabled between the two lock acquisitions;
		// the exclusive lock satisfies commitDeltaLocked's contract too.
		lg, lsn, err := b.commitDeltaLocked(d)
		b.t.mu.Unlock()
		if err == nil {
			d.kickSeal()
			if lg != nil {
				err = lg.WaitDurable(lsn)
			}
		}
		return err
	}
	defer b.t.mu.Unlock()
	for _, name := range b.t.order {
		if _, ok := b.staged[name]; !ok {
			return fmt.Errorf("table %s: batch is missing column %q", b.t.name, name)
		}
	}
	for _, name := range b.t.order {
		b.staged[name].apply()
	}
	b.t.rows += b.rows
	t := b.t
	if t.deleted != nil {
		grown := bitvec.New(t.rows)
		copy(grown.Words(), t.deleted.Words())
		t.deleted = grown
	}
	b.staged = map[string]stagedCol{}
	b.rows = -1
	return nil
}

// ---- anyColumn implementation ----

func (c *colState[V]) colName() string { return c.name }
func (c *colState[V]) colType() string { return coltype.TypeName[V]() }

//imprintvet:locks held=mu.R
func (c *colState[V]) segments() int { return len(c.segs) }

//imprintvet:locks held=mu.R
func (c *colState[V]) colRows() int {
	if len(c.segs) == 0 {
		return 0
	}
	return (len(c.segs)-1)*c.segRows + len(c.segs[len(c.segs)-1].vals)
}

//imprintvet:locks held=mu.R
func (c *colState[V]) sizeBytes() int64 {
	return int64(c.colRows()) * int64(coltype.Width[V]())
}

//imprintvet:locks held=mu.R
func (c *colState[V]) indexBytes() int64 {
	var n int64
	for _, s := range c.segs {
		n += s.indexBytes()
	}
	return n
}

func (c *colState[V]) indexKind() string {
	switch c.mode {
	case Imprints:
		return "imprints"
	case Zonemap:
		return "zonemap"
	}
	return "scan"
}

//imprintvet:locks held=mu.R
func (c *colState[V]) indexStats() ColumnIndexStats {
	st := ColumnIndexStats{Segments: len(c.segs)}
	var sat float64
	for _, s := range c.segs {
		st.SizeBytes += s.indexBytes()
		if s.ix != nil {
			st.IndexedSegments++
			st.StoredVectors += s.ix.StoredVectors()
			st.DictEntries += s.ix.DictEntries()
			sat += s.ix.Saturation()
		} else if s.zm != nil {
			st.IndexedSegments++
		}
	}
	if st.IndexedSegments > 0 {
		st.Saturation = sat / float64(st.IndexedSegments)
	}
	return st
}

// absorb extends the column with new rows, filling the active tail
// segment and opening fresh segments as it fills. Only the tail's
// index is ever touched.
//
//imprintvet:locks held=mu
func (c *colState[V]) absorb(vals []V) {
	for len(vals) > 0 {
		if len(c.segs) == 0 || len(c.segs[len(c.segs)-1].vals) == c.segRows {
			c.segs = append(c.segs, &segment[V]{})
		}
		tail := c.segs[len(c.segs)-1]
		room := c.segRows - len(tail.vals)
		if room > len(vals) {
			room = len(vals)
		}
		tail.extend(vals[:room], c.mode, c.vpcOpts)
		vals = vals[room:]
	}
}

//imprintvet:locks held=mu.R
func (c *colState[V]) valueAt(id int) any {
	return c.segs[id/c.segRows].vals[id%c.segRows]
}

// maintain applies the Section 4.2 saturation heuristic segment by
// segment: only segments whose own imprint is saturated are rebuilt,
// leaving the rest untouched.
//
//imprintvet:locks held=mu
func (c *colState[V]) maintain(satLimit float64, rebuild bool) int {
	n := 0
	for _, s := range c.segs {
		if s.ix != nil && s.ix.NeedsRebuild(satLimit, 0, 0) {
			n++
			if rebuild {
				s.rebuild(c.mode, c.vpcOpts)
			}
		}
	}
	return n
}

//imprintvet:locks held=mu
func (c *colState[V]) compact(keep []int) {
	out := make([]V, 0, len(keep))
	for _, id := range keep {
		out = append(out, c.segs[id/c.segRows].vals[id%c.segRows])
	}
	c.segs = nil
	c.absorb(out)
}

// ---- Updates and deletes (Section 4.2) ----

// Update changes one value in place and widens the covering segment's
// imprint and summary so queries stay sound (never a false negative).
// Repeated updates saturate that segment's index; Maintain rebuilds it
// — and only it — when they do.
func Update[V coltype.Value](t *Table, name string, id int, v V) error {
	if sh := t.shard; sh != nil {
		c, lid := sh.decode(id)
		return Update(sh.kids[c], name, lid, v)
	}
	lg, lsn, err := updateLocked(t, name, id, v)
	if err != nil || lg == nil {
		return err
	}
	return lg.WaitDurable(lsn)
}

// updateLocked applies the update under the write lock and, with a WAL
// attached, logs it in the same critical section (so log order matches
// apply order); the caller waits for durability after the lock drops.
func updateLocked[V coltype.Value](t *Table, name string, id int, v V) (*wal.Log, int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs, err := typedCol[V](t, name)
	if err != nil {
		return nil, 0, err
	}
	if id < 0 || id >= t.totalRowsLocked() {
		return nil, 0, fmt.Errorf("table %s: row %d out of range", t.name, id)
	}
	if id >= cs.colRows() {
		// Still buffered: replace the delta row copy-on-write; no
		// segment summary widens, no index saturates.
		if err := t.deltaSetLocked(name, id, v); err != nil {
			return nil, 0, err
		}
	} else {
		seg, local := cs.segs[id/cs.segRows], id%cs.segRows
		seg.vals[local] = v
		seg.widen(local, v)
	}
	d := t.delta
	if d == nil || d.wal == nil {
		return nil, 0, nil
	}
	ci := slices.Index(t.order, name)
	tag, _ := walValueTag(any(v))
	return t.walAppendLocked(d, encodeWALUpdate(id, ci, tag, any(v)))
}

// Delete marks a row deleted; it stops appearing in query results.
// Space is reclaimed by Compact.
func (t *Table) Delete(id int) error {
	if sh := t.shard; sh != nil {
		c, lid := sh.decode(id)
		return sh.kids[c].Delete(lid)
	}
	lg, lsn, err := t.deleteLocked(id)
	if err != nil || lg == nil {
		return err
	}
	return lg.WaitDurable(lsn)
}

// deleteLocked marks the row deleted and, with a WAL attached, logs the
// delete in the same critical section.
func (t *Table) deleteLocked(id int) (*wal.Log, int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.totalRowsLocked()
	if id < 0 || id >= total {
		return nil, 0, fmt.Errorf("table %s: row %d out of range", t.name, id)
	}
	if t.deleted == nil {
		t.deleted = bitvec.New(total)
	} else if id >= t.deleted.Len() {
		t.growDeletedTo(total)
	}
	if !t.deleted.Get(id) {
		t.deleted.Set(id)
		t.ndel++
	}
	d := t.delta
	if d == nil || d.wal == nil {
		return nil, 0, nil
	}
	return t.walAppendLocked(d, encodeWALDelete(id))
}

// IsDeleted reports whether a row is deleted.
func (t *Table) IsDeleted(id int) bool {
	if sh := t.shard; sh != nil {
		c, lid := sh.decode(id)
		return sh.kids[c].IsDeleted(lid)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.deletedAt(id)
}

// Compact removes deleted rows, renumbering ids, and rebuilds all
// segments (surviving rows are re-chunked, so all but the last segment
// are full again). It returns the number of rows removed.
func (t *Table) Compact() int {
	if t.shard != nil {
		return t.shardCompact()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compactLocked()
}

//imprintvet:locks held=mu
func (t *Table) compactLocked() int {
	// Fold buffered rows first so the keep-list covers them and ids
	// renumber consistently across sealed and delta rows.
	t.flushAllLocked()
	if t.ndel == 0 {
		return 0
	}
	pre := t.totalRowsLocked()
	keep := make([]int, 0, t.rows-t.ndel)
	for id := 0; id < t.rows; id++ {
		if !t.deleted.Get(id) {
			keep = append(keep, id)
		}
	}
	for _, c := range t.cols {
		c.compact(keep)
	}
	removed := t.ndel
	t.rows = len(keep)
	t.deleted = nil
	t.ndel = 0
	if d := t.delta; d != nil {
		d.store.SetBase(t.rows)
		if d.wal != nil {
			// Compaction renumbers ids, so later logged updates and
			// deletes only replay correctly if recovery re-runs the
			// same compaction at the same point. The record is logical:
			// replay recomputes the identical keep-list from the
			// replayed delete set. No durability wait (the write lock
			// is held); WAL durability is prefix-ordered, so a later
			// durable record implies this one survived too.
			if _, _, err := t.walAppendLocked(d, encodeWALCompact(pre, t.rows)); err != nil {
				// The log has fail-stopped: no later record can be
				// acknowledged, so recovery replays the pre-compaction
				// epoch consistently. Nothing to unwind here.
				_ = err
			}
		}
	}
	return removed
}

// MaintenanceReport describes what one Maintain pass did.
type MaintenanceReport struct {
	// Rebuilt lists the columns with at least one saturated segment
	// index rebuilt, sorted by name.
	Rebuilt []string
	// SegmentsRebuilt counts the segment indexes rebuilt across those
	// columns (rebuilds are segment-local; unsaturated segments keep
	// their index untouched).
	SegmentsRebuilt int
	// Compacted reports whether the deleted-row fraction crossed the
	// threshold and the table was compacted (ids renumbered).
	Compacted bool
	// RowsRemoved is the number of rows reclaimed by that compaction.
	RowsRemoved int
	// DeltaRows is the number of rows still buffered in the in-memory
	// delta store after the pass (0 without delta ingest).
	DeltaRows int
	// MergeBacklog counts sealed segments still awaiting a merge
	// rewrite (widened summary or saturated index) after the pass.
	MergeBacklog int
	// SealRetries counts off-lock seal builds discarded because a
	// concurrent mutation invalidated them (lifetime total);
	// SealBackoff is the retry backoff the sealer is currently applying
	// after consecutive conflicts (0 when the last install succeeded).
	SealRetries uint64
	SealBackoff time.Duration
}

// String renders the report for logs.
func (r MaintenanceReport) String() string {
	var parts []string
	if len(r.Rebuilt) > 0 {
		parts = append(parts, fmt.Sprintf("rebuilt %d segment(s) of %v", r.SegmentsRebuilt, r.Rebuilt))
	}
	if r.Compacted {
		parts = append(parts, fmt.Sprintf("compacted (-%d rows)", r.RowsRemoved))
	}
	if r.DeltaRows > 0 {
		parts = append(parts, fmt.Sprintf("%d delta row(s) buffered", r.DeltaRows))
	}
	if r.MergeBacklog > 0 {
		parts = append(parts, fmt.Sprintf("%d segment(s) awaiting merge", r.MergeBacklog))
	}
	if r.SealBackoff > 0 {
		parts = append(parts, fmt.Sprintf("sealer backing off %v after %d retries", r.SealBackoff, r.SealRetries))
	}
	if len(parts) == 0 {
		return "nothing to do"
	}
	return strings.Join(parts, ", ")
}

// MaintainOptions tunes the Maintain policy. The zero value applies
// the defaults: rebuild at 50% index saturation, never compact.
type MaintainOptions struct {
	// SaturationLimit is the update-saturation fraction past which a
	// segment's index is rebuilt (Section 4.2's heuristic). 0 means the
	// default of 0.5; set above 1 to never rebuild.
	SaturationLimit float64
	// DeletedFraction is the deleted-row fraction past which the table
	// is compacted (ids renumbered). 0 means never compact.
	DeletedFraction float64
}

// Maintain applies the rebuild policy: any segment index saturated by
// updates is rebuilt (segment-locally — the rest of the column is left
// alone), and the table is compacted when the deleted-row fraction
// crosses opts.DeletedFraction.
func (t *Table) Maintain(opts MaintainOptions) MaintenanceReport {
	if t.shard != nil {
		return t.shardMaintain(opts)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	satLimit := opts.SaturationLimit
	if satLimit == 0 {
		satLimit = 0.5
	}
	delFrac := opts.DeletedFraction
	total := t.totalRowsLocked()
	compacting := delFrac > 0 && total > 0 && float64(t.ndel)/float64(total) >= delFrac
	var rep MaintenanceReport
	for _, name := range t.order {
		// Compaction rebuilds every segment anyway; don't build twice.
		if n := t.cols[name].maintain(satLimit, !compacting); n > 0 {
			rep.Rebuilt = append(rep.Rebuilt, name)
			rep.SegmentsRebuilt += n
		}
	}
	sort.Strings(rep.Rebuilt)
	if compacting {
		rep.RowsRemoved = t.compactLocked()
		rep.Compacted = true
	}
	if t.delta != nil {
		rep.DeltaRows = t.delta.store.Len()
		rep.MergeBacklog = t.mergeBacklogLocked(t.delta.mergeSat)
		rep.SealRetries = t.delta.sealRetries.Load()
		rep.SealBackoff = time.Duration(t.delta.backoffNanos.Load())
		t.delta.kickSeal()
	}
	return rep
}

// ReadRow reconstructs one row as a name -> value map (the tuple
// reconstruction of Section 2: values from different columns with the
// same id belong to the same tuple).
func (t *Table) ReadRow(id int) (map[string]any, error) {
	if sh := t.shard; sh != nil {
		c, lid := sh.decode(id)
		return sh.kids[c].ReadRow(lid)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= t.totalRowsLocked() {
		return nil, fmt.Errorf("table %s: row %d out of range", t.name, id)
	}
	if t.deletedAt(id) {
		return nil, fmt.Errorf("table %s: row %d is deleted", t.name, id)
	}
	row := make(map[string]any, len(t.order))
	if id >= t.rows {
		base, drows := t.delta.store.View()
		drow := drows[id-base]
		for ci, name := range t.order {
			row[name] = drow[ci]
		}
		return row, nil
	}
	for _, name := range t.order {
		row[name] = t.cols[name].valueAt(id)
	}
	return row, nil
}
