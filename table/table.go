// Package table provides the columnar-relation substrate around the
// imprints index: a Table is a set of equal-length typed columns with
// per-column secondary indexes (imprints or zonemaps), batch appends
// (Section 4.1), in-place updates with index widening, delete tracking,
// rebuild policies (Section 4.2), tuple reconstruction (ReadRow), whole-
// table persistence, and a composable predicate engine that evaluates
// Range/AtLeast/LessThan/Equals/In leaves (plus StrRange and friends on
// dictionary-encoded string columns) under AND/OR/AND-NOT trees with
// late materialization (Section 3), choosing between index and scan per
// leaf based on estimated selectivity.
//
// The front door is the lazy Query builder:
//
//	q := t.Select("price", "city").Where(pred).Limit(10)
//	for id, row := range q.Rows() { ... }
//
// Queries execute via Rows (a streaming iterator), IDs, Count, and
// Explain, which renders the per-leaf access-path plan.
//
// For serving workloads that run the same predicate shape on every
// request, Table.Prepare compiles the tree once into a Prepared
// statement: columns and types are validated up front, every
// placeholder-free leaf is translated exactly once, and named
// placeholders (Param, StrParam, used through the P-suffixed leaf
// constructors) are bound per execution:
//
//	p, _ := t.Prepare(table.RangeP("price",
//	    table.Param[float64]("lo"), table.Param[float64]("hi")), table.SelectOptions{})
//	ids, _, _ := p.Bind("lo", 10.0).Bind("hi", 20.0).IDs()
//
// Ad-hoc queries route through the same compiled representation, so
// there is exactly one evaluator. A Table is safe for concurrent use:
// queries and point reads take a shared lock, while batch commits,
// updates, deletes and maintenance take it exclusively; prepared
// statements are safe for concurrent executions and recompile
// transparently when the storage shape changes under them.
package table

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/coltype"
	"repro/internal/core"
	"repro/internal/zonemap"
)

// IndexMode selects the secondary index maintained for a column.
type IndexMode int

const (
	// Imprints builds a column imprints index (the default).
	Imprints IndexMode = iota
	// NoIndex leaves the column scan-only.
	NoIndex
	// Zonemap maintains a per-cacheline min/max zonemap instead of an
	// imprint (the paper's comparator, useful for near-sorted columns
	// where its two values per zone beat the imprint's bit vector).
	Zonemap
)

// anyColumn is the type-erased per-column state.
type anyColumn interface {
	colName() string
	colRows() int
	colType() string
	sizeBytes() int64
	indexBytes() int64
	indexKind() string                  // access path name: "imprints", "zonemap", "scan"
	rebuild()                           // rebuild the index from current values
	needsRebuild(satLimit float64) bool // saturation heuristic
	compact(keep []int)                 // drop deleted rows (ids to keep, ascending)
	valueAt(id int) any
	persist(io.Writer) error
	// compileLeaf translates one predicate leaf against this column
	// exactly once: typed bounds, code intervals and IN-sets are derived
	// here and nowhere else; probes, residual checks and selectivity
	// estimates all run off the returned plan.
	compileLeaf(p *leafPred) (leafPlan, error)
}

// colState is the concrete typed column state.
type colState[V coltype.Value] struct {
	name    string
	vals    []V
	ix      *core.Index[V]
	zm      *zonemap.Index[V]
	mode    IndexMode
	vpcOpts core.Options
}

// Table is a named relation. All exported methods (and the generic free
// functions operating on a Table) are safe for concurrent use: readers
// share the table, writers exclude everything else.
type Table struct {
	mu      sync.RWMutex
	name    string
	order   []string
	cols    map[string]anyColumn
	rows    int
	deleted *bitvec.Vector // lazily sized; nil when nothing deleted
	ndel    int
	// gen counts storage shape changes (new columns, batch commits,
	// compactions, dictionary re-encodes). Compiled predicate plans
	// capture value slices, so a Prepared statement recompiles when the
	// generation it was compiled at no longer matches. In-place updates
	// and deletes don't bump it: they mutate values under the existing
	// slices and are observed live.
	gen uint64
}

// New creates an empty table.
func New(name string) *Table {
	return &Table{name: name, cols: map[string]anyColumn{}}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Rows returns the number of rows, including deleted-but-not-compacted
// ones.
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// LiveRows returns the number of rows not marked deleted.
func (t *Table) LiveRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows - t.ndel
}

// Columns lists column names in definition order.
func (t *Table) Columns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]string(nil), t.order...)
}

// SizeBytes returns total column payload bytes.
func (t *Table) SizeBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s int64
	for _, c := range t.cols {
		s += c.sizeBytes()
	}
	return s
}

// IndexBytes returns total secondary index bytes.
func (t *Table) IndexBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s int64
	for _, c := range t.cols {
		s += c.indexBytes()
	}
	return s
}

// AddColumn defines a new column with initial values. All columns must
// stay the same length: the first column fixes the row count and later
// ones must match it. The values are copied on ingest, so the caller's
// slice stays independent of the table (mutating it cannot desync the
// column from its already-built index).
func AddColumn[V coltype.Value](t *Table, name string, vals []V, mode IndexMode, opts core.Options) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkNewColumn(name, len(vals), opts); err != nil {
		return err
	}
	cs := &colState[V]{name: name, vals: append([]V(nil), vals...), mode: mode, vpcOpts: opts}
	cs.rebuild()
	t.installColumn(name, cs, len(vals))
	return nil
}

// checkNewColumn validates a column definition; callers hold mu.
func (t *Table) checkNewColumn(name string, nvals int, opts core.Options) error {
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("table %s: column %q already exists", t.name, name)
	}
	if len(t.order) > 0 && nvals != t.rows {
		return fmt.Errorf("table %s: column %q has %d rows, table has %d",
			t.name, name, nvals, t.rows)
	}
	if err := validateOptions(opts); err != nil {
		return fmt.Errorf("table %s: column %q: %w", t.name, name, err)
	}
	return nil
}

// validateOptions rejects build options the table cannot evaluate: the
// ValuesPerCacheline override must divide BlockRows (predicate
// composition renormalizes every column's cacheline runs to 64-row
// blocks, which requires a whole number of cachelines per block), and
// MaxBins is restricted to the values core.Build accepts — erroring
// here instead of panicking inside a later rebuild.
func validateOptions(o core.Options) error {
	if vpc := o.ValuesPerCacheline; vpc != 0 && (vpc < 0 || BlockRows%vpc != 0) {
		return fmt.Errorf("ValuesPerCacheline %d must divide %d", vpc, BlockRows)
	}
	switch o.MaxBins {
	case 0, 8, 16, 32, 64:
		return nil
	}
	return fmt.Errorf("MaxBins %d must be 0, 8, 16, 32 or 64", o.MaxBins)
}

// installColumn registers a validated column; callers hold mu.
func (t *Table) installColumn(name string, c anyColumn, nvals int) {
	t.cols[name] = c
	t.order = append(t.order, name)
	if len(t.order) == 1 {
		t.rows = nvals
	}
	t.gen++
}

// Column returns the typed values of a column. The slice is a read-only
// view into the table's storage: callers must not mutate it, and a
// concurrent writer may be extending or rewriting the column — use
// queries or ReadRow when writers may be active.
func Column[V coltype.Value](t *Table, name string) ([]V, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cs, err := typedCol[V](t, name)
	if err != nil {
		return nil, err
	}
	return cs.vals, nil
}

// Index returns the imprints index of a column, or nil if unindexed.
// The returned index is the table's live one, outside the table lock:
// probing it while writers (Update, Batch.Commit, Maintain) are active
// races, and maintenance may replace it entirely — use queries when
// writers may be running, and re-fetch after maintenance.
func Index[V coltype.Value](t *Table, name string) (*core.Index[V], error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cs, err := typedCol[V](t, name)
	if err != nil {
		return nil, err
	}
	return cs.ix, nil
}

func typedCol[V coltype.Value](t *Table, name string) (*colState[V], error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("table %s: no column %q", t.name, name)
	}
	cs, ok := c.(*colState[V])
	if !ok {
		return nil, fmt.Errorf("table %s: column %q holds %s, not %s",
			t.name, name, c.colType(), coltype.TypeName[V]())
	}
	return cs, nil
}

// ---- Batch appends (Section 4.1) ----

// Batch stages one append of N rows across all columns. Staged data
// lives inside the batch, so abandoning one never affects the table or
// other batches. A Batch itself is not safe for concurrent use; Commit
// applies it atomically under the table's write lock.
type Batch struct {
	t      *Table
	rows   int               // -1 until first column staged
	staged map[string]func() // commit actions, one per staged column
}

// NewBatch starts an append batch.
func (t *Table) NewBatch() *Batch {
	return &Batch{t: t, rows: -1, staged: map[string]func(){}}
}

// Append stages new values for one column of the batch. The values are
// copied, so the caller's slice may be reused afterwards.
func Append[V coltype.Value](b *Batch, name string, vals []V) error {
	b.t.mu.RLock()
	cs, err := typedCol[V](b.t, name)
	b.t.mu.RUnlock()
	if err != nil {
		return err
	}
	if err := b.stage(name, len(vals)); err != nil {
		return err
	}
	vcopy := append([]V(nil), vals...)
	b.staged[name] = func() { cs.absorb(vcopy) }
	return nil
}

// AppendStrings stages new values for one string column of the batch.
func (b *Batch) AppendStrings(name string, vals []string) error {
	b.t.mu.RLock()
	cs, err := strCol(b.t, name)
	b.t.mu.RUnlock()
	if err != nil {
		return err
	}
	if err := b.stage(name, len(vals)); err != nil {
		return err
	}
	vcopy := append([]string(nil), vals...)
	b.staged[name] = func() { cs.absorbStrings(vcopy) }
	return nil
}

// stage validates one column's staging against the batch row count.
func (b *Batch) stage(name string, nvals int) error {
	if _, dup := b.staged[name]; dup {
		return fmt.Errorf("table %s: column %q already staged in this batch", b.t.name, name)
	}
	if b.rows == -1 {
		b.rows = nvals
	} else if nvals != b.rows {
		return fmt.Errorf("table %s: batch stages %d rows but column %q got %d",
			b.t.name, b.rows, name, nvals)
	}
	return nil
}

// Commit validates that every column received the same number of new
// rows and extends columns and indexes. On error nothing is applied.
func (b *Batch) Commit() error {
	if b.rows <= 0 {
		b.staged = map[string]func(){}
		b.rows = -1
		return nil
	}
	b.t.mu.Lock()
	defer b.t.mu.Unlock()
	for _, name := range b.t.order {
		if _, ok := b.staged[name]; !ok {
			return fmt.Errorf("table %s: batch is missing column %q", b.t.name, name)
		}
	}
	for _, name := range b.t.order {
		b.staged[name]()
	}
	b.t.rows += b.rows
	b.t.gen++
	if b.t.deleted != nil {
		grown := bitvec.New(b.t.rows)
		copy(grown.Words(), b.t.deleted.Words())
		b.t.deleted = grown
	}
	b.staged = map[string]func(){}
	b.rows = -1
	return nil
}

// ---- anyColumn implementation ----

func (c *colState[V]) colName() string { return c.name }
func (c *colState[V]) colRows() int    { return len(c.vals) }
func (c *colState[V]) colType() string { return coltype.TypeName[V]() }
func (c *colState[V]) sizeBytes() int64 {
	return int64(len(c.vals)) * int64(coltype.Width[V]())
}

func (c *colState[V]) indexBytes() int64 {
	switch {
	case c.ix != nil:
		return c.ix.SizeBytes()
	case c.zm != nil:
		return c.zm.SizeBytes()
	}
	return 0
}

func (c *colState[V]) indexKind() string {
	switch {
	case c.ix != nil:
		return "imprints"
	case c.zm != nil:
		return "zonemap"
	}
	return "scan"
}

// absorb extends the column (and its index) with committed batch rows.
func (c *colState[V]) absorb(vals []V) {
	c.vals = append(c.vals, vals...)
	switch c.mode {
	case Imprints:
		if c.ix == nil {
			c.ix = core.Build(c.vals, c.vpcOpts)
		} else {
			c.ix.Append(c.vals)
		}
	case Zonemap:
		if c.zm == nil {
			c.zm = zonemap.Build(c.vals, zonemap.Options{})
		} else {
			c.zm.Append(c.vals)
		}
	}
}

func (c *colState[V]) rebuild() {
	// Drop any previous index first: a compact down to zero rows must
	// not leave a stale index referencing the old values (the next
	// absorb would panic appending to it).
	c.ix, c.zm = nil, nil
	if len(c.vals) == 0 {
		return
	}
	switch c.mode {
	case Imprints:
		c.ix = core.Build(c.vals, c.vpcOpts)
	case Zonemap:
		c.zm = zonemap.Build(c.vals, zonemap.Options{})
	}
}

func (c *colState[V]) valueAt(id int) any { return c.vals[id] }

func (c *colState[V]) needsRebuild(satLimit float64) bool {
	return c.ix != nil && c.ix.NeedsRebuild(satLimit, 0, 0)
}

func (c *colState[V]) compact(keep []int) {
	out := make([]V, 0, len(keep))
	for _, id := range keep {
		out = append(out, c.vals[id])
	}
	c.vals = out
	c.rebuild()
}

// ---- Updates and deletes (Section 4.2) ----

// Update changes one value in place and widens the covering imprint so
// queries stay sound (never a false negative). Repeated updates
// saturate the index; Maintain rebuilds it when they do.
func Update[V coltype.Value](t *Table, name string, id int, v V) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs, err := typedCol[V](t, name)
	if err != nil {
		return err
	}
	if id < 0 || id >= len(cs.vals) {
		return fmt.Errorf("table %s: row %d out of range", t.name, id)
	}
	cs.vals[id] = v
	if cs.ix != nil {
		cs.ix.MarkUpdated(id, v)
	}
	if cs.zm != nil {
		cs.zm.Widen(id, v)
	}
	return nil
}

// Delete marks a row deleted; it stops appearing in query results.
// Space is reclaimed by Compact.
func (t *Table) Delete(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= t.rows {
		return fmt.Errorf("table %s: row %d out of range", t.name, id)
	}
	if t.deleted == nil {
		t.deleted = bitvec.New(t.rows)
	}
	if !t.deleted.Get(id) {
		t.deleted.Set(id)
		t.ndel++
	}
	return nil
}

// IsDeleted reports whether a row is deleted.
func (t *Table) IsDeleted(id int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.deleted != nil && t.deleted.Get(id)
}

// Compact removes deleted rows, renumbering ids, and rebuilds all
// indexes. It returns the number of rows removed.
func (t *Table) Compact() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compactLocked()
}

func (t *Table) compactLocked() int {
	if t.ndel == 0 {
		return 0
	}
	keep := make([]int, 0, t.rows-t.ndel)
	for id := 0; id < t.rows; id++ {
		if !t.deleted.Get(id) {
			keep = append(keep, id)
		}
	}
	for _, c := range t.cols {
		c.compact(keep)
	}
	removed := t.ndel
	t.rows = len(keep)
	t.deleted = nil
	t.ndel = 0
	t.gen++
	return removed
}

// MaintenanceReport describes what one Maintain pass did.
type MaintenanceReport struct {
	// Rebuilt lists the columns whose saturated index was rebuilt,
	// sorted by name.
	Rebuilt []string
	// Compacted reports whether the deleted-row fraction crossed the
	// threshold and the table was compacted (ids renumbered).
	Compacted bool
	// RowsRemoved is the number of rows reclaimed by that compaction.
	RowsRemoved int
}

// String renders the report for logs.
func (r MaintenanceReport) String() string {
	var parts []string
	if len(r.Rebuilt) > 0 {
		parts = append(parts, fmt.Sprintf("rebuilt %v", r.Rebuilt))
	}
	if r.Compacted {
		parts = append(parts, fmt.Sprintf("compacted (-%d rows)", r.RowsRemoved))
	}
	if len(parts) == 0 {
		return "nothing to do"
	}
	return strings.Join(parts, ", ")
}

// MaintainOptions tunes the Maintain policy. The zero value applies
// the defaults: rebuild at 50% index saturation, never compact.
type MaintainOptions struct {
	// SaturationLimit is the update-saturation fraction past which a
	// column's index is rebuilt (Section 4.2's heuristic). 0 means the
	// default of 0.5; set above 1 to never rebuild.
	SaturationLimit float64
	// DeletedFraction is the deleted-row fraction past which the table
	// is compacted (ids renumbered). 0 means never compact.
	DeletedFraction float64
}

// Maintain applies the rebuild policy: any index saturated by updates
// is rebuilt, and the table is compacted when the deleted-row fraction
// crosses opts.DeletedFraction.
func (t *Table) Maintain(opts MaintainOptions) MaintenanceReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	satLimit := opts.SaturationLimit
	if satLimit == 0 {
		satLimit = 0.5
	}
	delFrac := opts.DeletedFraction
	compacting := delFrac > 0 && t.rows > 0 && float64(t.ndel)/float64(t.rows) >= delFrac
	var rep MaintenanceReport
	for _, name := range t.order {
		c := t.cols[name]
		if c.needsRebuild(satLimit) {
			// Compaction rebuilds every index anyway; don't build twice.
			if !compacting {
				c.rebuild()
			}
			rep.Rebuilt = append(rep.Rebuilt, name)
		}
	}
	sort.Strings(rep.Rebuilt)
	if compacting {
		rep.RowsRemoved = t.compactLocked()
		rep.Compacted = true
	}
	return rep
}

// ReadRow reconstructs one row as a name -> value map (the tuple
// reconstruction of Section 2: values from different columns with the
// same id belong to the same tuple).
func (t *Table) ReadRow(id int) (map[string]any, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= t.rows {
		return nil, fmt.Errorf("table %s: row %d out of range", t.name, id)
	}
	if t.deleted != nil && t.deleted.Get(id) {
		return nil, fmt.Errorf("table %s: row %d is deleted", t.name, id)
	}
	row := make(map[string]any, len(t.order))
	for _, name := range t.order {
		row[name] = t.cols[name].valueAt(id)
	}
	return row, nil
}
