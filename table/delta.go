package table

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/coltype"
	"repro/internal/delta"
	"repro/internal/wal"
)

// LSM-style ingest (delta.go, seal.go, snapshot.go): with delta ingest
// enabled, batch commits append row-major tuples to an in-memory delta
// store (internal/delta) instead of the columnar tail, updates and
// deletes of buffered rows never touch sealed segments, and a
// background sealer cuts the delta into immutable full segments —
// building their imprints, zonemaps, summaries and dictionaries off
// the query path — installing them atomically under the table lock.
// Readers union the sealed segments (the unchanged vectorized block
// walk) with an exact scan of the delta watermark they captured, so
// streaming writers never block readers and readers never see a
// half-applied batch. A merge-compactor rewrites segments whose
// summary was widened by updates or whose index saturated, restoring
// exact summaries (and aggregate pushdown) off the write path.

// IngestOptions configures EnableDeltaIngest.
type IngestOptions struct {
	// AutoSeal starts a background sealer goroutine that cuts full
	// segments off the delta after commits and runs the
	// merge-compactor. Without it, sealing is driven manually through
	// SealDelta / FlushDelta (or implicitly by Save, AddColumn,
	// Compact).
	AutoSeal bool
	// MaxSealSegments bounds how many full segments one seal pass
	// builds off-lock before installing (memory bound). 0 means 4.
	MaxSealSegments int
	// MergeSaturation is the index-saturation fraction past which the
	// merge-compactor rewrites a sealed segment. 0 means 0.5; set
	// above 1 to only rewrite widened summaries.
	MergeSaturation float64
	// CompactFraction is the deleted-row fraction past which the
	// background worker folds the delete bitmap with a full Compact
	// (ids renumber). 0 means never.
	CompactFraction float64
}

// deltaState is the per-table ingest state: the row-major store plus
// the sealer bookkeeping and counters.
type deltaState struct {
	store *delta.Store

	// sealMu serializes seal passes (background and manual); it is
	// never held while waiting on table commits, and t.mu write
	// sections never acquire it, so lock order is always sealMu then
	// t.mu.
	sealMu      sync.Mutex
	autoSeal    bool
	maxSealSegs int
	mergeSat    float64
	compactFrac float64

	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// walMu serializes WAL appends with delta-store appends so the
	// log's record order is exactly the memory order; it nests inside
	// the table locks (mu -> walMu) and is never held while waiting for
	// durability. wal, walTags, recovery and pendingCut are assigned
	// once by EnableWAL under the table write lock and read under at
	// least the read lock afterwards.
	walMu      sync.Mutex
	wal        *wal.Log
	walTags    []byte
	recovery   *RecoveryReport
	pendingCut walCut

	// conflictStreak counts consecutive optimistic seal-install
	// conflicts; backoffNanos is the current retry backoff the streak
	// selected (both reset on the next successful install).
	conflictStreak atomic.Uint32
	backoffNanos   atomic.Int64

	seals       atomic.Uint64
	sealedSegs  atomic.Uint64
	sealedRows  atomic.Uint64
	sealRetries atomic.Uint64
	flushes     atomic.Uint64
	flushedRows atomic.Uint64
	merges      atomic.Uint64
	compactions atomic.Uint64
}

// kickSeal wakes the background sealer without blocking the committer.
func (d *deltaState) kickSeal() {
	if !d.autoSeal {
		return
	}
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// EnableDeltaIngest switches the table to the LSM-style write path:
// subsequent batch commits buffer rows in an in-memory delta store
// (visible to every query through an exact scan unioned with the
// sealed segments) until they are sealed into full immutable segments
// — by the background worker when opts.AutoSeal is set, or by
// SealDelta / FlushDelta / Save otherwise. Enabling is one-way for the
// table's lifetime; Close stops the background worker.
func (t *Table) EnableDeltaIngest(opts IngestOptions) error {
	if t.shard != nil {
		return t.shardEnableDeltaIngest(opts)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.delta != nil {
		return fmt.Errorf("table %s: delta ingest already enabled", t.name)
	}
	maxSegs := opts.MaxSealSegments
	if maxSegs <= 0 {
		maxSegs = 4
	}
	sat := opts.MergeSaturation
	if sat == 0 {
		sat = 0.5
	}
	d := &deltaState{
		store:       delta.NewStore(t.rows, t.order),
		autoSeal:    opts.AutoSeal,
		maxSealSegs: maxSegs,
		mergeSat:    sat,
		compactFrac: opts.CompactFraction,
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	t.delta = d
	if d.autoSeal {
		go t.sealLoop(d)
	} else {
		close(d.done)
	}
	return nil
}

// Close stops the background sealer, waiting for an in-flight pass to
// finish. Buffered delta rows stay queryable; flush them explicitly
// (FlushDelta or Save) if they must reach columnar storage. Close is
// idempotent and a no-op without delta ingest.
func (t *Table) Close() error {
	if t.shard != nil {
		var err error
		for _, kid := range t.shard.kids {
			err = errors.Join(err, kid.Close())
		}
		return err
	}
	d := t.deltaPtr()
	if d == nil {
		return nil
	}
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
	if lg := t.walPtr(); lg != nil {
		return lg.Close()
	}
	return nil
}

// deltaPtr reads the ingest state under the read lock (it is assigned
// once, under the write lock).
func (t *Table) deltaPtr() *deltaState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.delta
}

// totalRowsLocked returns sealed plus buffered rows (including
// deleted-but-not-compacted ones); callers hold a lock.
//
//imprintvet:locks held=mu.R
func (t *Table) totalRowsLocked() int {
	if t.delta == nil {
		return t.rows
	}
	return t.rows + t.delta.store.Len()
}

// DeltaRows returns the number of rows currently buffered in the
// delta store (0 without delta ingest).
func (t *Table) DeltaRows() int {
	if t.shard != nil {
		n := 0
		for _, kid := range t.shard.kids {
			n += kid.DeltaRows()
		}
		return n
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.delta == nil {
		return 0
	}
	return t.delta.store.Len()
}

// deletedAt is the length-guarded deleted-bitmap probe: delta rows may
// sit beyond the bitmap's tail when no delete grew it that far.
// Callers hold a lock.
//
//imprintvet:locks held=mu.R
func (t *Table) deletedAt(id int) bool {
	return t.deleted != nil && id < t.deleted.Len() && t.deleted.Get(id)
}

// growDeletedTo widens a non-nil deleted bitmap to cover n rows,
// preserving set bits; callers hold the write lock. The invariant it
// maintains: whenever the bitmap exists it covers at least every
// sealed row, so the block walk's LiveMask64 never runs off its end.
//
//imprintvet:locks held=mu
func (t *Table) growDeletedTo(n int) {
	if t.deleted == nil || t.deleted.Len() >= n {
		return
	}
	grown := bitvec.New(n)
	copy(grown.Words(), t.deleted.Words())
	t.deleted = grown
}

// ---- commit / update / flush ----

// commitDeltaLocked applies a staged batch to the delta store; callers
// hold at least the read lock (appends contend only on the store's own
// mutex, so streaming writers never block readers). With a WAL
// attached the batch is framed into the log first, under walMu spanning
// both appends so log order equals memory order; the returned log and
// LSN let the caller wait for durability after releasing the table
// lock (the log is nil without a WAL). A log write error fails the
// commit before anything becomes visible.
//
//imprintvet:locks held=mu.R
func (b *Batch) commitDeltaLocked(d *deltaState) (*wal.Log, int64, error) {
	t := b.t
	for _, name := range t.order {
		if _, ok := b.staged[name]; !ok {
			return nil, 0, fmt.Errorf("table %s: batch is missing column %q", t.name, name)
		}
	}
	rows := make([][]any, b.rows)
	for r := range rows {
		row := make([]any, len(t.order))
		for ci, name := range t.order {
			row[ci] = b.staged[name].value(r)
		}
		rows[r] = row
	}
	var lsn int64
	lg := d.wal
	if lg != nil {
		var err error
		if lsn, err = d.logAndBuffer(t, lg, rows); err != nil {
			return nil, 0, err
		}
	} else if err := d.store.Append(rows); err != nil {
		return nil, 0, err
	}
	b.staged = map[string]stagedCol{}
	b.rows = -1
	return lg, lsn, nil
}

// logAndBuffer appends the batch to the WAL and then to the delta
// store under walMu, so log order is exactly memory order. A log
// append failure (the log is fail-stop) rejects the commit before the
// rows become visible.
func (d *deltaState) logAndBuffer(t *Table, lg *wal.Log, rows [][]any) (int64, error) {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	base := d.store.Base() + d.store.Len()
	lsn, err := lg.Append(encodeWALCommit(d.walTags, base, rows))
	if err != nil {
		return 0, fmt.Errorf("table %s: wal append: %w", t.name, err)
	}
	return lsn, d.store.Append(rows)
}

// deltaSetLocked updates one value of a buffered row copy-on-write;
// callers hold the write lock and have range-checked id against the
// buffered window.
//
//imprintvet:locks held=mu
func (t *Table) deltaSetLocked(name string, id int, v any) error {
	d := t.delta
	ci := d.store.ColIndex(name)
	if ci < 0 {
		return fmt.Errorf("table %s: column %q missing from delta layout", t.name, name)
	}
	d.store.Set(id-d.store.Base(), ci, v)
	return nil
}

// flushDeltaLocked folds the first n buffered rows into the columnar
// tail (indexes extend under the lock — the synchronous path used by
// Save, AddColumn, Compact and tail alignment); callers hold the write
// lock.
//
//imprintvet:locks held=mu
func (t *Table) flushDeltaLocked(n int) {
	d := t.delta
	_, rows := d.store.View()
	rows = rows[:n]
	for ci, name := range t.order {
		t.cols[name].absorbAny(rows, ci)
	}
	t.rows += n
	t.growDeletedTo(t.rows)
	d.store.Truncate(n)
	d.flushes.Add(1)
	d.flushedRows.Add(uint64(n))
}

// flushAllLocked drains the whole delta into columnar storage; callers
// hold the write lock. Returns the rows flushed.
//
//imprintvet:locks held=mu
func (t *Table) flushAllLocked() int {
	d := t.delta
	if d == nil {
		return 0
	}
	n := d.store.Len()
	if n > 0 {
		t.flushDeltaLocked(n)
	}
	return n
}

// FlushDelta drains the delta store completely: full chunks seal into
// immutable segments with their indexes built off-lock, and the
// remainder folds into the columnar tail. Returns the rows moved.
func (t *Table) FlushDelta() int {
	if t.shard != nil {
		n := 0
		for _, kid := range t.shard.kids {
			n += kid.FlushDelta()
		}
		return n
	}
	d := t.deltaPtr()
	if d == nil {
		return 0
	}
	moved := t.sealFullChunks(d)
	t.mu.Lock()
	moved += t.flushAllLocked()
	t.mu.Unlock()
	return moved
}

// SealDelta seals every full segment-sized chunk currently buffered
// (indexes built outside the table lock, installed atomically),
// leaving a partial remainder buffered. Returns the rows sealed.
func (t *Table) SealDelta() int {
	if t.shard != nil {
		n := 0
		for _, kid := range t.shard.kids {
			n += kid.SealDelta()
		}
		return n
	}
	d := t.deltaPtr()
	if d == nil {
		return 0
	}
	return t.sealFullChunks(d)
}

// ---- observability ----

// IngestStats reports the health of the LSM-style write path.
type IngestStats struct {
	// Enabled reports whether EnableDeltaIngest was called.
	Enabled bool `json:"enabled"`
	// DeltaRows is the number of rows currently buffered in the
	// in-memory delta store (scanned exactly by every query).
	DeltaRows int `json:"delta_rows"`
	// Seals counts completed seal installs; SealedSegments and
	// SealedRows the segments and rows they moved into columnar
	// storage.
	Seals          uint64 `json:"seals"`
	SealedSegments uint64 `json:"sealed_segments"`
	SealedRows     uint64 `json:"sealed_rows"`
	// SealRetries counts off-lock segment builds discarded because the
	// delta mutated (update, flush) before install.
	SealRetries uint64 `json:"seal_retries"`
	// Flushes counts synchronous folds into the columnar tail (Save,
	// AddColumn, Compact, FlushDelta remainder, tail alignment);
	// FlushedRows the rows they moved.
	Flushes     uint64 `json:"flushes"`
	FlushedRows uint64 `json:"flushed_rows"`
	// Merges counts sealed segments the merge-compactor rewrote
	// (widened summaries restored exact, saturated indexes rebuilt);
	// MergeBacklog the segments currently still awaiting a rewrite.
	Merges       uint64 `json:"merges"`
	MergeBacklog int    `json:"merge_backlog"`
	// Compactions counts delete-folding compactions the background
	// worker triggered (CompactFraction crossed).
	Compactions uint64 `json:"compactions"`
	// WALEnabled reports whether a write-ahead log is attached
	// (EnableWAL); WALError carries the log's sticky fail-stop error,
	// if any — once set, every further commit is refused.
	WALEnabled bool   `json:"wal_enabled,omitempty"`
	WALError   string `json:"wal_error,omitempty"`
	// Recovery is the startup WAL replay report (nil when no replay
	// ran); sharded tables aggregate their shards' reports.
	Recovery *RecoveryReport `json:"recovery,omitempty"`
	// ShardDeltaRows breaks DeltaRows down per shard (one entry per
	// shard, in shard order; a single entry for unsharded tables).
	// Admission control uses the hottest entry as its backpressure
	// signal — one overwhelmed shard sheds load even when the table-wide
	// total looks healthy.
	ShardDeltaRows []int `json:"shard_delta_rows,omitempty"`
}

// MaxShardDeltaRows returns the deepest per-shard delta backlog (the
// hottest shard), 0 when ingest is off.
func (s IngestStats) MaxShardDeltaRows() int {
	m := 0
	for _, n := range s.ShardDeltaRows {
		m = max(m, n)
	}
	return m
}

// IngestStats reports delta/seal/merge health; zero with Enabled false
// when delta ingest is off.
func (t *Table) IngestStats() IngestStats {
	if t.shard != nil {
		return t.shardIngestStats()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	d := t.delta
	if d == nil {
		return IngestStats{}
	}
	st := IngestStats{
		Enabled:        true,
		DeltaRows:      d.store.Len(),
		Seals:          d.seals.Load(),
		SealedSegments: d.sealedSegs.Load(),
		SealedRows:     d.sealedRows.Load(),
		SealRetries:    d.sealRetries.Load(),
		Flushes:        d.flushes.Load(),
		FlushedRows:    d.flushedRows.Load(),
		Merges:         d.merges.Load(),
		MergeBacklog:   t.mergeBacklogLocked(d.mergeSat),
		Compactions:    d.compactions.Load(),
		Recovery:       d.recovery,
		ShardDeltaRows: []int{d.store.Len()},
	}
	if d.wal != nil {
		st.WALEnabled = true
		if err := d.wal.Err(); err != nil {
			st.WALError = err.Error()
		}
	}
	return st
}

// mergeBacklogLocked counts sealed segments awaiting a merge rewrite;
// callers hold a lock.
//
//imprintvet:locks held=mu.R
func (t *Table) mergeBacklogLocked(satLimit float64) int {
	n := 0
	for _, name := range t.order {
		n += t.cols[name].mergeBacklog(satLimit)
	}
	return n
}

// ---- per-column delta adapters ----

// deltaAgg folds boxed delta-row values into the same aggPartial
// domain the segment accumulators produce, so one merge serves both.
type deltaAgg interface {
	add(v any)
	partial() aggPartial
}

//imprintvet:locks held=mu
func (c *colState[V]) absorbAny(rows [][]any, ci int) {
	vals := make([]V, len(rows))
	for r, row := range rows {
		vals[r] = row[ci].(V)
	}
	c.absorb(vals)
}

//imprintvet:locks held=mu
func (c *strColState) absorbAny(rows [][]any, ci int) {
	vals := make([]string, len(rows))
	for r, row := range rows {
		vals[r] = row[ci].(string)
	}
	c.absorbStrings(vals)
}

func (c *colState[V]) deltaAgg(op aggOp) deltaAgg {
	return &numDeltaAgg[V]{numSegAgg[V]{op: op, isInt: isIntType[V]()}}
}

// numDeltaAgg reuses the typed segment accumulator's fold over unboxed
// values.
type numDeltaAgg[V coltype.Value] struct {
	numSegAgg[V]
}

func (a *numDeltaAgg[V]) add(v any) { a.addVal(v.(V)) }

func (c *strColState) deltaAgg(op aggOp) deltaAgg { return &strDeltaAgg{op: op} }

// strDeltaAgg folds min/max over raw strings (delta rows carry
// symbols, not per-segment codes).
type strDeltaAgg struct {
	op   aggOp
	rows uint64
	any  bool
	m    string
}

func (a *strDeltaAgg) add(v any) {
	s := v.(string)
	if !a.any || (a.op == aggMin && s < a.m) || (a.op == aggMax && s > a.m) {
		a.m = s
	}
	a.any = true
	a.rows++
}

func (a *strDeltaAgg) partial() aggPartial {
	p := aggPartial{rows: a.rows}
	if a.rows == 0 {
		return p
	}
	p.kind, p.s = partStr, a.m
	return p
}

func (c *colState[V]) deltaGroupKey(v any) groupKey {
	return groupKey{i: int64(v.(V))}
}

func (c *strColState) deltaGroupKey(v any) groupKey {
	return groupKey{s: v.(string), isStr: true}
}

// deltaOrd builds one order partial from the qualifying delta rows'
// boxed values and global ids, mergeable by the column's topkMerge
// alongside the per-segment partials.
func (c *colState[V]) deltaOrd(vals []any, ids []uint32) orderPartial {
	if len(vals) == 0 {
		return nil
	}
	entries := make([]topEntry[V], len(vals))
	for i, v := range vals {
		entries[i] = topEntry[V]{v: v.(V), id: ids[i]}
	}
	return entries
}

func (c *strColState) deltaOrd(vals []any, ids []uint32) orderPartial {
	if len(vals) == 0 {
		return nil
	}
	entries := make([]strOrdEntry, len(vals))
	for i, v := range vals {
		entries[i] = strOrdEntry{v: v.(string), id: ids[i]}
	}
	return entries
}
